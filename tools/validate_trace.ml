(* Strict validator for the Chrome trace_event files `indaas --trace`
   writes. Used by the @obs-smoke alias: an instrumented audit's trace
   must parse with the repo's strict JSON parser and satisfy the
   structural contract below, or the build fails.

   Usage: validate_trace FILE ROOT [REQUIRED ...]

   Checks that FILE is one JSON object with `traceEvents`,
   `displayTimeUnit` and `metrics`; that every event is a complete
   ("ph":"X") event with non-negative integer ts/dur and a span id;
   that exactly one event is named ROOT; that every REQUIRED span name
   appears at least once; and that all events fit inside the root's
   interval (1us slack per endpoint — microsecond rounding is allowed
   to push a sub-us child past a truncated parent edge). *)

module Json = Indaas_util.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("trace INVALID: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type event = { name : string; ts : int; dur : int }

let decode_event j =
  let field name = Json.member name j in
  let name = Json.to_string_exn "name" (field "name") in
  let ph = Json.to_string_exn "ph" (field "ph") in
  if ph <> "X" then fail "event %S: expected complete event (ph=X), got ph=%S" name ph;
  let ts = Json.to_int_exn "ts" (field "ts") in
  let dur = Json.to_int_exn "dur" (field "dur") in
  if ts < 0 then fail "event %S: negative ts %d" name ts;
  if dur < 0 then fail "event %S: negative dur %d" name dur;
  ignore (Json.to_int_exn "pid" (field "pid"));
  ignore (Json.to_int_exn "tid" (field "tid"));
  (match field "args" with
  | Some (Json.Obj _ as args) ->
      ignore (Json.to_string_exn "args.id" (Json.member "id" args))
  | _ -> fail "event %S: missing args object" name);
  { name; ts; dur }

let () =
  let path, root_name, required =
    match Array.to_list Sys.argv with
    | _ :: path :: root :: required -> (path, root, required)
    | _ ->
        prerr_endline "usage: validate_trace FILE ROOT [REQUIRED ...]";
        exit 2
  in
  let json =
    match Json.of_string (read_file path) with
    | json -> json
    | exception Json.Parse_error msg -> fail "%s: %s" path msg
  in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List events) -> List.map decode_event events
    | _ -> fail "%s: no traceEvents array" path
  in
  if events = [] then fail "%s: empty traceEvents" path;
  (match Json.member "displayTimeUnit" json with
  | Some (Json.String _) -> ()
  | _ -> fail "%s: missing displayTimeUnit" path);
  (match Json.member "metrics" json with
  | Some (Json.Obj _) -> ()
  | _ -> fail "%s: missing metrics object" path);
  let roots = List.filter (fun e -> e.name = root_name) events in
  let root =
    match roots with
    | [ root ] -> root
    | _ -> fail "expected exactly one %S root span, found %d" root_name (List.length roots)
  in
  List.iter
    (fun name ->
      if not (List.exists (fun e -> e.name = name) events) then
        fail "required span %S not recorded" name)
    required;
  List.iter
    (fun e ->
      if e.ts + 1 < root.ts || e.ts + e.dur > root.ts + root.dur + 1 then
        fail "span %S [%d,%d]us escapes root %S [%d,%d]us" e.name e.ts
          (e.ts + e.dur) root.name root.ts (root.ts + root.dur))
    events;
  Printf.printf "trace OK: %d events under %S (%dus)\n" (List.length events)
    root.name root.dur
