(* Shared helpers for the benchmark harness. *)

module Timing = Indaas_util.Timing
module Table = Indaas_util.Table
module Json = Indaas_util.Json

(* Workload scale: "quick" for CI-style smoke runs, "standard" for the
   default shape-reproducing run, "full" to push closer to paper
   scale (minutes to hours). Selected with --quick / --full or
   INDAAS_BENCH_MODE. *)
type mode = Quick | Standard | Full

let mode = ref Standard

let mode_of_string = function
  | "quick" -> Some Quick
  | "standard" -> Some Standard
  | "full" -> Some Full
  | _ -> None

let scale ~quick ~standard ~full =
  match !mode with Quick -> quick | Standard -> standard | Full -> full

let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title bar

let subheading title = Printf.printf "\n-- %s --\n" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "   %s\n" s) fmt

let seconds = Timing.format_seconds
let bytes = Timing.format_bytes

(* Pretty-printed JSON artifact with a trailing newline — every
   benchmark that persists a baseline goes through here. *)
let write_json ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:true json);
      output_char oc '\n');
  note "wrote %s" path

(* Run a thunk under a fresh enabled observability scope and return
   its result together with the recorded root spans — the per-phase
   breakdown benchmarks embed next to their timings. *)
let with_spans f =
  let result, scoped = Indaas_obs.Registry.with_scope (fun _ -> f ()) in
  (result, Indaas_obs.Registry.roots scoped)
