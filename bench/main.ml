(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§6).

     dune exec bench/main.exe                 # everything, standard scale
     dune exec bench/main.exe -- table2 fig7  # selected experiments
     dune exec bench/main.exe -- --quick      # smoke-run sizes
     dune exec bench/main.exe -- --full       # closer to paper scale

   INDAAS_BENCH_MODE=quick|standard|full overrides the scale too. *)

let experiments =
  [
    ("table2", "Table 2: PIA Jaccard ranking of 4 clouds", Bench_tables.table2);
    ("table3", "Table 3: generated fat-tree topologies", Bench_tables.table3);
    ("fig7", "Figure 7: minimal RG vs failure sampling", Bench_fig7.run);
    ("fig8", "Figure 8: P-SOP vs KS overheads", Bench_fig8.run);
    ("fig9", "Figure 9: SIA vs PIA overheads", Bench_fig9.run);
    ("case-network", "Case 6.2.1: network dependency", Bench_cases.network);
    ("case-hardware", "Case 6.2.2: hardware dependency", Bench_cases.hardware);
    ("case-software", "Case 6.2.3: software dependency", Bench_cases.software);
    ("kernels", "Bechamel kernel micro-benchmarks", Bench_kernels.run);
    ( "kernels-smoke",
      "Tiny RG-engine comparison (enum vs BDD) + BENCH_kernels.json",
      Bench_kernels.run_smoke );
    ( "service",
      "Serving stack: req/s and tail latency, cold vs warm cache",
      Bench_service.run );
    ("ablation", "Ablations of DESIGN.md choices", Bench_ablation.run);
    ("validation", "Validation: audits vs simulated availability", Bench_validation.run);
  ]

let usage () =
  print_endline "usage: main.exe [--quick|--standard|--full] [EXPERIMENT...]";
  print_endline "experiments:";
  List.iter (fun (name, doc, _) -> Printf.printf "  %-14s %s\n" name doc) experiments;
  exit 1

let () =
  (match Sys.getenv_opt "INDAAS_BENCH_MODE" with
  | Some m -> (
      match Bench_common.mode_of_string m with
      | Some mode -> Bench_common.mode := mode
      | None -> ())
  | None -> ());
  let selected = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> Bench_common.mode := Bench_common.Quick
        | "--standard" -> Bench_common.mode := Bench_common.Standard
        | "--full" -> Bench_common.mode := Bench_common.Full
        | "--help" | "-h" -> usage ()
        | name -> (
            match List.find_opt (fun (n, _, _) -> n = name) experiments with
            | Some e -> selected := e :: !selected
            | None ->
                Printf.eprintf "unknown experiment %S\n" name;
                usage ()))
    Sys.argv;
  let to_run =
    match !selected with [] -> experiments | l -> List.rev l
  in
  let mode_name =
    match !Bench_common.mode with
    | Bench_common.Quick -> "quick"
    | Bench_common.Standard -> "standard"
    | Bench_common.Full -> "full"
  in
  Printf.printf "INDaaS benchmark harness — %d experiment(s), %s scale\n"
    (List.length to_run) mode_name;
  let total =
    Indaas_util.Timing.time_only (fun () ->
        List.iter (fun (_, _, run) -> run ()) to_run)
  in
  Printf.printf "\nAll experiments completed in %s.\n"
    (Indaas_util.Timing.format_seconds total)
