(* Bechamel micro-benchmarks of the computational kernels every
   experiment is built from: bignum modexp (the unit of P-SOP/KS
   cost), hashing, fault-graph evaluation (the unit of sampling cost),
   minimal-cut-set computation, and one P-SOP element operation.

   Also the RG-engine comparison: the bitset-kernel enumeration engine
   vs the BDD minimal-solutions engine on sparse and dense graphs,
   with the results persisted to BENCH_kernels.json as the repo's perf
   baseline. *)

open Bechamel
open Toolkit
module Nat = Indaas_bignum.Nat
module Prime = Indaas_bignum.Prime
module Digest = Indaas_crypto.Digest
module Commutative = Indaas_crypto.Commutative
module Paillier = Indaas_crypto.Paillier
module Oracle = Indaas_crypto.Oracle
module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset
module Bdd = Indaas_faultgraph.Bdd
module Fattree = Indaas_topology.Fattree
module Depdb = Indaas_depdata.Depdb
module Builder = Indaas_sia.Builder
module Prng = Indaas_util.Prng
module Json = Indaas_util.Json
module Timing = Indaas_util.Timing

let rng = Prng.of_int 0xBE7C

(* Pre-built inputs, shared across iterations. *)
let modulus_256 = Prime.generate rng ~bits:256
let base_256 = Nat.random_below rng modulus_256
let exp_256 = Nat.random_below rng modulus_256
let modulus_1024 = Prime.oakley_group2
let exp_1024 = Nat.random_below rng modulus_1024

let comm_params = Commutative.params_pohlig_hellman ~bits:256 rng
let comm_key = Commutative.generate_key rng comm_params
let group_element = Oracle.hash_to_group "bench" ~modulus:(Commutative.modulus comm_params)

let paillier = Paillier.generate ~bits:128 rng
let paillier_ct = Paillier.encrypt rng paillier.Paillier.public (Nat.of_int 41)

let one_kb = String.init 1024 (fun i -> Char.chr (i land 0xFF))

let fat_graph =
  let t = Fattree.create ~k:16 in
  let db = Depdb.create () in
  List.iter
    (fun s -> Depdb.add_all db (Fattree.network_records t ~server:s))
    [ 0; Fattree.server_count t - 1 ];
  Builder.build db
    (Builder.spec [ Fattree.server_name t 0; Fattree.server_name t (Fattree.server_count t - 1) ])

let eval_values = Array.make (Graph.node_count fat_graph) false
let eval_rng = Prng.of_int 5

let small_graph =
  Graph.of_component_sets
    [
      ("E1", List.init 12 (Printf.sprintf "a%d"));
      ("E2", List.init 12 (Printf.sprintf "b%d"));
    ]

let tests =
  [
    Test.make ~name:"nat.mod_pow (256-bit)" (Staged.stage (fun () ->
        ignore (Nat.mod_pow ~base:base_256 ~exp:exp_256 ~modulus:modulus_256)));
    Test.make ~name:"nat.mod_pow (1024-bit)" (Staged.stage (fun () ->
        ignore (Nat.mod_pow ~base:Nat.two ~exp:exp_1024 ~modulus:modulus_1024)));
    Test.make ~name:"sha256 (1 KiB)" (Staged.stage (fun () ->
        ignore (Digest.sha256 one_kb)));
    Test.make ~name:"md5 (1 KiB)" (Staged.stage (fun () ->
        ignore (Digest.md5 one_kb)));
    Test.make ~name:"psop element op (hash+encrypt, 256-bit)"
      (Staged.stage (fun () ->
           ignore (Commutative.encrypt comm_params comm_key group_element)));
    Test.make ~name:"paillier.scalar_mul (128-bit)" (Staged.stage (fun () ->
        ignore
          (Paillier.scalar_mul paillier.Paillier.public (Nat.of_int 123456) paillier_ct)));
    Test.make ~name:"sampling round (k=16 fault graph)" (Staged.stage (fun () ->
        Array.iter
          (fun id -> eval_values.(id) <- Prng.bool eval_rng)
          (Graph.basic_ids fat_graph);
        Graph.evaluate_into fat_graph ~values:eval_values));
    Test.make ~name:"minimal cut sets (2x12 component sets)"
      (Staged.stage (fun () -> ignore (Cutset.minimal_risk_groups small_graph)));
    Test.make ~name:"BDD minsol (2x12 component sets)"
      (Staged.stage (fun () -> ignore (Bdd.minimal_risk_groups small_graph)));
  ]

(* --- RG engine comparison -------------------------------------------- *)

type engine_outcome =
  | Completed of { rgs : int; seconds : float }
  | Budget_exceeded of { family : int; seconds : float }

type engine_case = {
  case_name : string;
  graph : Graph.t;
  budget : int option; (* max_family for the enumeration engine *)
}

(* [shared] components appear in every source: absorption keeps the
   minimized family small, which is the enumeration engine's happy
   path. Disjoint sources multiply instead — the family is the full
   c^s cross-product and only the BDD engine's shared structure
   survives. *)
let component_set_case name ~sources ~comps ~shared ~budget =
  let source i =
    ( Printf.sprintf "E%d" i,
      List.init shared (Printf.sprintf "shared%d")
      @ List.init comps (fun j -> Printf.sprintf "s%d_c%d" i j) )
  in
  {
    case_name = name;
    graph = Graph.of_component_sets (List.init sources source);
    budget;
  }

let kofn_case name ~k ~sources ~comps ~budget =
  let b = Graph.Builder.create () in
  let gate i =
    let ids =
      List.init comps (fun j ->
          Graph.Builder.add_basic b (Printf.sprintf "s%d_c%d" i j))
    in
    Graph.Builder.add_gate b ~name:(Printf.sprintf "E%d" i) Graph.Or ids
  in
  let gates = List.init sources gate in
  let top = Graph.Builder.add_gate b ~name:"top" (Graph.Kofn k) gates in
  { case_name = name; graph = Graph.Builder.build b ~top; budget }

let engine_cases ~smoke =
  if smoke then
    [
      component_set_case "sparse shared (3x4 + 1 shared)" ~sources:3 ~comps:4
        ~shared:1 ~budget:None;
      component_set_case "dense product (2x8, budget 20)" ~sources:2 ~comps:8
        ~shared:0 ~budget:(Some 20);
      kofn_case "2-of-3 x 4 (budget 10)" ~k:2 ~sources:3 ~comps:4
        ~budget:(Some 10);
    ]
  else
    let comps = Bench_common.scale ~quick:40 ~standard:100 ~full:300 in
    let budget = Bench_common.scale ~quick:500 ~standard:2_000 ~full:20_000 in
    let tri = Bench_common.scale ~quick:10 ~standard:15 ~full:25 in
    let kofn_comps = Bench_common.scale ~quick:8 ~standard:12 ~full:20 in
    [
      component_set_case "2-way sparse (2x20 + 1 shared)" ~sources:2 ~comps:20
        ~shared:1 ~budget:None;
      component_set_case
        (Printf.sprintf "3-way dense (3x%d + 1 shared)" tri)
        ~sources:3 ~comps:tri ~shared:1 ~budget:None;
      component_set_case
        (Printf.sprintf "dense product (2x%d, budget %d)" comps budget)
        ~sources:2 ~comps ~shared:0 ~budget:(Some budget);
      kofn_case
        (Printf.sprintf "3-of-8 x %d (budget %d)" kofn_comps budget)
        ~k:3 ~sources:8 ~comps:kofn_comps ~budget:(Some budget);
    ]

let run_enum { graph; budget; _ } =
  let f () =
    match budget with
    | None -> Cutset.minimal_risk_groups graph
    | Some max_family -> Cutset.minimal_risk_groups ~max_family graph
  in
  match Timing.time (fun () -> try Ok (f ()) with e -> Error e) with
  | Ok rgs, seconds -> (Completed { rgs = List.length rgs; seconds }, Some rgs)
  | Error (Cutset.Too_many_cut_sets n), seconds ->
      (Budget_exceeded { family = n; seconds }, None)
  | Error e, _ -> raise e

let run_bdd { graph; _ } =
  let rgs, seconds = Timing.time (fun () -> Bdd.minimal_risk_groups graph) in
  (Completed { rgs = List.length rgs; seconds }, Some rgs)

let outcome_cell = function
  | Completed { rgs; seconds } ->
      Printf.sprintf "%d RGs in %s" rgs (Bench_common.seconds seconds)
  | Budget_exceeded { family; seconds } ->
      Printf.sprintf "budget trip (%d) in %s" family
        (Bench_common.seconds seconds)

let outcome_json budget = function
  | Completed { rgs; seconds } ->
      Json.Obj
        [
          ("status", Json.String "ok");
          ("rgs", Json.Int rgs);
          ("seconds", Json.Float seconds);
        ]
  | Budget_exceeded { family; seconds } ->
      Json.Obj
        [
          ("status", Json.String "budget_exceeded");
          ("family", Json.Int family);
          ( "budget",
            match budget with Some b -> Json.Int b | None -> Json.Null );
          ("seconds", Json.Float seconds);
        ]

let compare_engines ~smoke =
  Bench_common.subheading "RG engines: enumeration (bitset kernel) vs BDD minsol";
  let table =
    Indaas_util.Table.create
      ~aligns:Indaas_util.Table.[ Left; Right; Right; Left ]
      [ "case"; "enum"; "bdd"; "families" ]
  in
  let cases = engine_cases ~smoke in
  let rows =
    List.map
      (fun case ->
        (* Both engine runs happen under one observability scope, so
           the emitted baseline carries their span breakdown
           (rg.enum / rg.bdd, with node and family counts) next to
           the wall-clock numbers. *)
        let (enum_outcome, enum_rgs, bdd_outcome, bdd_rgs), spans =
          Bench_common.with_spans (fun () ->
              let enum_outcome, enum_rgs = run_enum case in
              let bdd_outcome, bdd_rgs = run_bdd case in
              (enum_outcome, enum_rgs, bdd_outcome, bdd_rgs))
        in
        let families_equal =
          match (enum_rgs, bdd_rgs) with
          | Some a, Some b -> Some (a = b)
          | _ -> None
        in
        let verdict =
          match families_equal with
          | Some true -> "identical"
          | Some false -> "DIVERGED"
          | None -> "bdd only"
        in
        Indaas_util.Table.add_row table
          [
            case.case_name;
            outcome_cell enum_outcome;
            outcome_cell bdd_outcome;
            verdict;
          ];
        (case, enum_outcome, bdd_outcome, families_equal, spans))
      cases
  in
  Indaas_util.Table.print table;
  (match
     List.find_opt
       (fun (_, enum_outcome, bdd_outcome, _, _) ->
         match (enum_outcome, bdd_outcome) with
         | Budget_exceeded _, Completed _ -> true
         | _ -> false)
       rows
   with
  | Some (case, _, _, _, _) ->
      Bench_common.note
        "BDD engine completed %S where enumeration exceeded its budget"
        case.case_name
  | None -> Bench_common.note "no case tripped the enumeration budget");
  List.iter
    (fun (case, _, _, families_equal, _) ->
      if families_equal = Some false then
        failwith
          (Printf.sprintf "bench_kernels: engines diverged on %S" case.case_name))
    rows;
  rows

let baseline_file = "BENCH_kernels.json"

let emit_json ~smoke rows =
  let mode_name =
    if smoke then "smoke"
    else
      match !Bench_common.mode with
      | Bench_common.Quick -> "quick"
      | Bench_common.Standard -> "standard"
      | Bench_common.Full -> "full"
  in
  let json =
    Json.Obj
      [
        ("benchmark", Json.String "kernels");
        ("mode", Json.String mode_name);
        ( "cases",
          Json.List
            (List.map
               (fun (case, enum_outcome, bdd_outcome, families_equal, spans) ->
                 Json.Obj
                   [
                     ("name", Json.String case.case_name);
                     ("nodes", Json.Int (Graph.node_count case.graph));
                     ( "basics",
                       Json.Int (Array.length (Graph.basic_ids case.graph)) );
                     ( "budget",
                       match case.budget with
                       | Some b -> Json.Int b
                       | None -> Json.Null );
                     ("enum", outcome_json case.budget enum_outcome);
                     ("bdd", outcome_json None bdd_outcome);
                     ( "families_equal",
                       match families_equal with
                       | Some b -> Json.Bool b
                       | None -> Json.Null );
                     ( "spans",
                       Json.List (List.map Indaas_obs.Span.to_json spans) );
                   ])
               rows) );
      ]
  in
  Bench_common.write_json ~path:baseline_file json

let run_smoke () =
  Bench_common.heading "Kernel smoke: RG engine comparison";
  emit_json ~smoke:true (compare_engines ~smoke:true)

let run () =
  Bench_common.heading "Kernel micro-benchmarks (bechamel)";
  emit_json ~smoke:false (compare_engines ~smoke:false);
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.8) () in
  let analysis =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let result = Analyze.all analysis Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Bench_common.seconds (est *. 1e-9)
            | Some _ | None -> "n/a"
          in
          Printf.printf "   %-45s %s/op\n" name estimate)
        result)
    tests
