(* Serving-stack benchmark: requests/sec and tail latency of the audit
   daemon's request path, cold cache vs warm cache.

   A fat-tree DepDB is submitted over the protocol, then every server
   pair is audited twice: the first sweep computes (and caches) each
   report, the second is answered entirely from the result cache. The
   measured per-request latencies land in BENCH_service.json as the
   serving-path perf baseline. *)

module Fattree = Indaas_topology.Fattree
module Dependency = Indaas_depdata.Dependency
module Stats = Indaas_util.Stats
module Table = Indaas_util.Table
module Timing = Indaas_util.Timing
module Json = Indaas_util.Json
module Server = Indaas_service.Server
module Client = Indaas_service.Client
module Cache = Indaas_service.Cache
module Frame = Indaas_service.Frame

let ok_exn (r : Frame.response) =
  match r.Frame.result with
  | Ok payload -> payload
  | Error e ->
      failwith (Printf.sprintf "bench_service: %s: %s" e.Frame.code e.Frame.message)

(* One audit request per server pair: every spec digest differs, so
   the cold sweep cannot hit the cache. *)
let requests tree pairs =
  List.mapi
    (fun i (a, b) ->
      Client.audit ~id:(i + 2)
        ~options:{ Client.audit_options with seed = Some 7 }
        ~servers:[ Fattree.server_name tree a; Fattree.server_name tree b ]
        ())
    pairs

let sweep srv reqs =
  let latencies =
    List.map
      (fun req ->
        let t0 = Timing.now_ns () in
        let response = Server.handle srv req in
        let t1 = Timing.now_ns () in
        ignore (ok_exn response);
        Int64.to_float (Int64.sub t1 t0) /. 1e9)
      reqs
  in
  Array.of_list latencies

let phase_row table name latencies =
  let n = Array.length latencies in
  let total = Stats.sum latencies in
  let p50 = Stats.percentile latencies 50. in
  let p99 = Stats.percentile latencies 99. in
  Table.add_row table
    [
      name;
      string_of_int n;
      Timing.format_seconds total;
      Printf.sprintf "%.0f" (float_of_int n /. total);
      Timing.format_seconds p50;
      Timing.format_seconds p99;
    ];
  (total, p50, p99)

let phase_json name latencies (total, p50, p99) =
  ( name,
    Json.Obj
      [
        ("requests", Json.Int (Array.length latencies));
        ("seconds", Json.Float total);
        ( "requests_per_second",
          Json.Float (float_of_int (Array.length latencies) /. total) );
        ("p50_seconds", Json.Float p50);
        ("p99_seconds", Json.Float p99);
      ] )

let run () =
  Bench_common.heading "Serving stack: request throughput, cold vs warm cache";
  let k = Bench_common.scale ~quick:4 ~standard:8 ~full:16 in
  let pair_count = Bench_common.scale ~quick:8 ~standard:48 ~full:200 in
  let tree = Fattree.create ~k in
  let servers = Fattree.server_count tree in
  let pairs =
    (* Pairs fanning out from a handful of anchors: distinct specs,
       overlapping graph structure — the cache is the only thing that
       distinguishes the two sweeps. *)
    List.init pair_count (fun i ->
        let a = i mod (servers / 2) and b = servers - 1 - (i mod (servers / 2)) in
        if a = b then (0, servers - 1) else (a, b))
    |> List.sort_uniq compare
  in
  let records =
    Dependency.to_xml_many
      (List.concat_map
         (fun s -> Fattree.network_records tree ~server:s)
         (List.sort_uniq compare
            (List.concat_map (fun (a, b) -> [ a; b ]) pairs)))
  in
  let srv = Server.create () in
  let submit_seconds =
    Timing.time_only (fun () ->
        ignore
          (ok_exn
             (Server.handle srv
                (Client.submit_deps ~id:1 ~source:"fattree" ~records ()))))
  in
  Bench_common.note "fat-tree k=%d: %d byte(s) of records submitted in %s"
    k (String.length records)
    (Timing.format_seconds submit_seconds);
  let reqs = requests tree pairs in
  let cold = sweep srv reqs in
  let warm = sweep srv reqs in
  let stats = Server.cache_stats srv in
  assert (stats.Cache.hits >= Array.length warm);
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right ]
      [ "phase"; "requests"; "total"; "req/s"; "p50"; "p99" ]
  in
  let cold_summary = phase_row table "cold (compute + fill)" cold in
  let warm_summary = phase_row table "warm (cache hits)" warm in
  Table.print table;
  Bench_common.note "cache: %d entr(ies), %d hit(s), %d miss(es)"
    stats.Cache.entries stats.Cache.hits stats.Cache.misses;
  Bench_common.write_json ~path:"BENCH_service.json"
    (Json.Obj
       [
         ("benchmark", Json.String "service");
         ("fattree_k", Json.Int k);
         ("distinct_specs", Json.Int (List.length pairs));
         ("submit_seconds", Json.Float submit_seconds);
         phase_json "cold" cold cold_summary;
         phase_json "warm" warm warm_summary;
         ("cache", Cache.stats_to_json stats);
       ])
