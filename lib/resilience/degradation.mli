(** Degradation records — the honest accounting attached to every
    audit run.

    The paper's risk-group analysis (§3) only sees the dependencies
    the sources reported: missing records can hide shared risk, so an
    audit over incomplete data can only {e overestimate} independence.
    A degradation record says exactly how incomplete the data was —
    which sources failed, how many records were lost, and an overall
    completeness ratio in [0, 1] that is [1.] exactly when nothing was
    lost. *)

type status =
  | Ok
  | Degraded of string  (** partial loss, with a reason *)
  | Failed of string  (** nothing collected, with the final error *)

type source_report = {
  source : string;
  status : status;
  attempts : int;  (** collector calls, including retries *)
  modules_total : int;
  modules_failed : int;  (** modules whose retry budget was exhausted *)
  records : int;  (** records actually contributed *)
  records_lost : int;  (** known losses (e.g. injected drops) *)
}

type t = {
  sources : source_report list;
  completeness : float;
      (** mean per-source completeness; a fully failed source scores
          0, a lossy one [records / (records + records_lost)] scaled
          by its surviving module fraction *)
  retries : int;  (** total retries spent across all sources *)
}

val source_completeness : source_report -> float

val make : retries:int -> source_report list -> t
(** Computes the completeness ratio. Guaranteed in [0, 1], and equal
    to [1.] iff every source has [modules_failed = 0] and
    [records_lost = 0]. *)

val complete : sources:string list -> t
(** The non-degraded record (completeness 1) for runs with nothing to
    report, e.g. legacy fail-fast collection. *)

val degraded : t -> bool
(** [completeness < 1.] or any source not [Ok]. *)

val failed_sources : t -> string list
val records_lost : t -> int
val attempts : t -> int

val render : t -> string
(** A prominent multi-line banner for text reports; short and calm
    when nothing was lost. *)

val to_json : t -> Indaas_util.Json.t
