(** A virtual clock.

    Every time-dependent resilience primitive — retry backoff,
    per-source deadlines, circuit-breaker cooldowns, injected timeouts
    and message delays — reads and advances a [Vclock.t] instead of
    the wall clock. Tests and the chaos harness therefore never sleep:
    a 30-second backoff schedule executes in microseconds and is
    byte-reproducible from a seed. *)

type t
(** Mutable monotonic clock. Not thread-safe; one per run. *)

val create : ?start:float -> unit -> t
(** A clock reading [start] (default [0.]) virtual seconds. *)

val now : t -> float
(** Current virtual time in seconds. *)

val advance : t -> float -> unit
(** Move time forward. Raises [Invalid_argument] on a negative
    duration: the clock is monotonic. *)

val sleep : t -> float -> unit
(** Synonym for {!advance}, named for call sites that model a party
    waiting (backoff, injected delay). *)
