module Prng = Indaas_util.Prng
module Collectors = Indaas_depdata.Collectors
module Dependency = Indaas_depdata.Dependency

type kind =
  | Crash
  | Flaky_until of int
  | Timeout of float
  | Drop_fraction of float
  | Corrupt_fraction of float
  | Message_loss of float
  | Message_delay of float

exception Injected of { target : string; fault : string }

let () =
  Printexc.register_printer (function
    | Injected { target; fault } ->
        Some (Printf.sprintf "fault injected (%s): %s" target fault)
    | _ -> None)

let describe = function
  | Injected { target; fault } -> Printf.sprintf "%s: %s" target fault
  | Failure msg -> msg
  | e -> Printexc.to_string e

type plan = { seed : int; plan_entries : (string * kind) list }

let validate_kind = function
  | Crash -> ()
  | Flaky_until k ->
      if k < 0 then invalid_arg "Fault.plan: flaky count must be non-negative"
  | Timeout s | Message_delay s ->
      if s < 0. then invalid_arg "Fault.plan: negative duration"
  | Drop_fraction f | Corrupt_fraction f | Message_loss f ->
      if f < 0. || f > 1. then
        invalid_arg "Fault.plan: fraction must be in [0, 1]"

let plan ?(seed = 0) entries =
  List.iter (fun (_, k) -> validate_kind k) entries;
  { seed; plan_entries = entries }

let empty = { seed = 0; plan_entries = [] }
let is_empty p = p.plan_entries = []
let entries p = p.plan_entries

let kind_to_string = function
  | Crash -> "crash"
  | Flaky_until k -> Printf.sprintf "flaky:%d" k
  | Timeout s -> Printf.sprintf "timeout:%g" s
  | Drop_fraction f -> Printf.sprintf "drop:%g" f
  | Corrupt_fraction f -> Printf.sprintf "corrupt:%g" f
  | Message_loss p -> Printf.sprintf "msg-loss:%g" p
  | Message_delay s -> Printf.sprintf "msg-delay:%g" s

let grammar =
  "crash | flaky:K | timeout:SECS | drop:FRACTION | corrupt:FRACTION | \
   msg-loss:PROB | msg-delay:SECS"

let kind_of_string s =
  let fail () = failwith (Printf.sprintf "bad fault spec %S (expected %s)" s grammar) in
  let name, arg =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
        (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  let int_arg () = match arg with Some a -> int_of_string a | None -> fail () in
  let float_arg () = match arg with Some a -> float_of_string a | None -> fail () in
  let kind =
    try
      match name with
      | "crash" -> if arg = None then Crash else fail ()
      | "flaky" -> Flaky_until (int_arg ())
      | "timeout" -> Timeout (float_arg ())
      | "drop" -> Drop_fraction (float_arg ())
      | "corrupt" -> Corrupt_fraction (float_arg ())
      | "msg-loss" -> Message_loss (float_arg ())
      | "msg-delay" -> Message_delay (float_arg ())
      | _ -> fail ()
    with Failure _ -> fail ()
  in
  (try validate_kind kind with Invalid_argument msg -> failwith msg);
  kind

let entry_of_string s =
  match String.index_opt s '=' with
  | None ->
      failwith
        (Printf.sprintf "bad fault entry %S (expected TARGET=SPEC, SPEC one of %s)"
           s grammar)
  | Some i ->
      let target = String.sub s 0 i in
      let spec = String.sub s (i + 1) (String.length s - i - 1) in
      if target = "" then failwith (Printf.sprintf "bad fault entry %S: empty target" s);
      (target, kind_of_string spec)

type injector = {
  inj_plan : plan;
  inj_clock : Vclock.t;
  rng : Prng.t;
  calls : (string, int) Hashtbl.t;
  dropped : (string, int) Hashtbl.t;
  corrupted : (string, int) Hashtbl.t;
  mutable inj_crashes : int;
  mutable inj_timeouts : int;
  mutable inj_messages_dropped : int;
  mutable inj_messages_delayed : int;
}

let injector ?seed ?clock p =
  let seed = Option.value seed ~default:p.seed in
  {
    inj_plan = p;
    inj_clock = (match clock with Some c -> c | None -> Vclock.create ());
    rng = Prng.of_int seed;
    calls = Hashtbl.create 8;
    dropped = Hashtbl.create 8;
    corrupted = Hashtbl.create 8;
    inj_crashes = 0;
    inj_timeouts = 0;
    inj_messages_dropped = 0;
    inj_messages_delayed = 0;
  }

let clock inj = inj.inj_clock
let injector_plan inj = inj.inj_plan

let matches pattern name = pattern = "*" || pattern = name

let faults_for inj name =
  List.filter_map
    (fun (target, kind) -> if matches target name then Some kind else None)
    inj.inj_plan.plan_entries

let bump table key =
  let n = (match Hashtbl.find_opt table key with Some n -> n | None -> 0) + 1 in
  Hashtbl.replace table key n;
  n

let add table key n =
  let prev = match Hashtbl.find_opt table key with Some v -> v | None -> 0 in
  Hashtbl.replace table key (prev + n)

let count table key =
  match Hashtbl.find_opt table key with Some n -> n | None -> 0

let mangle name = name ^ "~corrupt"

let corrupt_record = function
  | Dependency.Network n ->
      Dependency.network ~src:n.Dependency.src ~dst:n.Dependency.dst
        ~route:(List.map mangle n.Dependency.route)
  | Dependency.Hardware h ->
      Dependency.hardware ~hw:h.Dependency.hw ~hw_type:h.Dependency.hw_type
        ~dep:(mangle h.Dependency.dep)
  | Dependency.Software s ->
      Dependency.software ~pgm:s.Dependency.pgm ~host:s.Dependency.host
        ~deps:(List.map mangle s.Dependency.deps)

let wrap_collector inj ~source (m : Collectors.t) =
  let faults = faults_for inj source in
  if faults = [] then m
  else
    let key = source ^ "/" ^ m.Collectors.name in
    let collect () =
      let call = bump inj.calls key in
      List.iter
        (function
          | Crash ->
              inj.inj_crashes <- inj.inj_crashes + 1;
              raise (Injected { target = source; fault = "crash" })
          | Flaky_until k ->
              if call <= k then
                raise
                  (Injected
                     {
                       target = source;
                       fault = Printf.sprintf "flaky (call %d of %d failing)" call k;
                     })
          | Timeout s ->
              Vclock.advance inj.inj_clock s;
              inj.inj_timeouts <- inj.inj_timeouts + 1;
              raise
                (Injected
                   { target = source; fault = Printf.sprintf "timeout after %gs" s })
          | Drop_fraction _ | Corrupt_fraction _ | Message_loss _
          | Message_delay _ ->
              ())
        faults;
      let records = m.Collectors.collect () in
      List.fold_left
        (fun acc fault ->
          match fault with
          | Drop_fraction f ->
              List.filter
                (fun _ ->
                  if Prng.bernoulli inj.rng f then begin
                    add inj.dropped source 1;
                    false
                  end
                  else true)
                acc
          | Corrupt_fraction f ->
              List.map
                (fun r ->
                  if Prng.bernoulli inj.rng f then begin
                    add inj.corrupted source 1;
                    corrupt_record r
                  end
                  else r)
                acc
          | _ -> acc)
        records faults
    in
    { m with Collectors.collect }

let transport_interceptor inj ~target ~src ~dst ~bytes =
  ignore bytes;
  let faults = faults_for inj target in
  let rec decide = function
    | [] -> `Deliver
    | Message_loss p :: rest ->
        if Prng.bernoulli inj.rng p then begin
          inj.inj_messages_dropped <- inj.inj_messages_dropped + 1;
          ignore (src, dst);
          `Drop
        end
        else decide rest
    | Message_delay s :: rest ->
        inj.inj_messages_delayed <- inj.inj_messages_delayed + 1;
        Vclock.advance inj.inj_clock s;
        (match decide rest with `Drop -> `Drop | _ -> `Delay s)
    | _ :: rest -> decide rest
  in
  decide faults

let records_dropped inj ~source = count inj.dropped source
let records_corrupted inj ~source = count inj.corrupted source
let crashes inj = inj.inj_crashes
let timeouts inj = inj.inj_timeouts
let messages_dropped inj = inj.inj_messages_dropped
let messages_delayed inj = inj.inj_messages_delayed
