(** Retry policies: exponential backoff with full jitter, deadlines,
    retry budgets, and per-source circuit breakers.

    All waiting happens on a {!Vclock.t}, so a 30-second backoff
    schedule costs no wall time, and the jitter stream comes from a
    seeded {!Indaas_util.Prng.t}, so every retry sequence is exactly
    reproducible. *)

type policy = {
  retries : int;
      (** the retry budget: attempts allowed {e after} the first, so a
          [Fault.Flaky_until k] target succeeds iff [retries >= k] *)
  base_delay : float;  (** first backoff cap, virtual seconds *)
  max_delay : float;  (** backoff cap ceiling *)
  deadline : float option;
      (** give up once the next backoff would push the elapsed virtual
          time past this many seconds since the first attempt *)
}

val policy :
  ?retries:int -> ?base_delay:float -> ?max_delay:float -> ?deadline:float ->
  unit -> policy
(** Defaults: [retries = 3], [base_delay = 0.1], [max_delay = 5.],
    no deadline. Raises [Invalid_argument] on negative values. *)

val default : policy
(** [policy ~deadline:30. ()] — the agent's per-source default. *)

(** {1 Circuit breakers} *)

type breaker
(** Per-source breaker: after [threshold] consecutive failures it
    opens for [cooldown] virtual seconds, during which calls fail
    immediately; the first call after the cooldown is a half-open
    probe that closes the breaker on success and re-opens it on
    failure. *)

val breaker : ?threshold:int -> ?cooldown:float -> clock:Vclock.t -> string -> breaker
(** [breaker ~clock name]. Defaults: [threshold = 5],
    [cooldown = 30.] virtual seconds. *)

val breaker_state : breaker -> [ `Closed | `Open | `Half_open ]
val trips : breaker -> int
(** How many times the breaker has opened. *)

val record_failure : breaker -> unit
val record_success : breaker -> unit
(** Manual accounting, for callers driving a breaker without
    {!call}. *)

(** {1 Running} *)

type 'a outcome = {
  result : ('a, string) result;  (** the value, or the last error *)
  attempts : int;  (** calls actually made (0 if the breaker was open) *)
  backoff : float;  (** total virtual seconds slept between attempts *)
}

val call :
  ?policy:policy ->
  ?breaker:breaker ->
  clock:Vclock.t ->
  rng:Indaas_util.Prng.t ->
  label:string ->
  (unit -> 'a) ->
  'a outcome
(** Runs the thunk under the policy. {!Fault.Injected} and [Failure]
    are transient and retried with full-jitter exponential backoff
    (sleep uniform in [\[0, min max_delay (base_delay * 2^(n-1))\]]);
    any other exception propagates immediately. Never raises for
    transient errors: exhausted budgets and open breakers come back
    as [Error]. *)
