module Prng = Indaas_util.Prng

let log_src = Logs.Src.create "indaas.retry" ~doc:"Retry/backoff engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type policy = {
  retries : int;
  base_delay : float;
  max_delay : float;
  deadline : float option;
}

let policy ?(retries = 3) ?(base_delay = 0.1) ?(max_delay = 5.) ?deadline () =
  if retries < 0 then invalid_arg "Retry.policy: negative retry budget";
  if base_delay < 0. || max_delay < 0. then
    invalid_arg "Retry.policy: negative delay";
  (match deadline with
  | Some d when d < 0. -> invalid_arg "Retry.policy: negative deadline"
  | _ -> ());
  { retries; base_delay; max_delay; deadline }

let default = policy ~deadline:30. ()

type breaker = {
  name : string;
  threshold : int;
  cooldown : float;
  clock : Vclock.t;
  mutable consecutive_failures : int;
  mutable open_until : float option;
  mutable trip_count : int;
}

let breaker ?(threshold = 5) ?(cooldown = 30.) ~clock name =
  if threshold <= 0 then invalid_arg "Retry.breaker: threshold must be positive";
  if cooldown < 0. then invalid_arg "Retry.breaker: negative cooldown";
  {
    name;
    threshold;
    cooldown;
    clock;
    consecutive_failures = 0;
    open_until = None;
    trip_count = 0;
  }

let blocked b =
  match b.open_until with
  | Some t -> Vclock.now b.clock < t
  | None -> false

let breaker_state b =
  if blocked b then `Open
  else if b.open_until <> None then `Half_open
  else `Closed

let trips b = b.trip_count

let record_success b =
  b.consecutive_failures <- 0;
  b.open_until <- None

let record_failure b =
  b.consecutive_failures <- b.consecutive_failures + 1;
  if b.consecutive_failures >= b.threshold then begin
    b.open_until <- Some (Vclock.now b.clock +. b.cooldown);
    b.trip_count <- b.trip_count + 1
  end

type 'a outcome = {
  result : ('a, string) result;
  attempts : int;
  backoff : float;
}

let transient = function Fault.Injected _ | Failure _ -> true | _ -> false

let call ?(policy = default) ?breaker ~clock ~rng ~label f =
  let start = Vclock.now clock in
  let total_backoff = ref 0. in
  let breaker_open () =
    match breaker with Some b -> blocked b | None -> false
  in
  (* [attempts] counts calls already made. *)
  let rec go attempts =
    if breaker_open () then begin
      Log.debug (fun m -> m "%s: circuit breaker open, not calling" label);
      {
        result =
          Error
            (Printf.sprintf "circuit breaker %S is open"
               (match breaker with Some b -> b.name | None -> label));
        attempts;
        backoff = !total_backoff;
      }
    end
    else
      match f () with
      | v ->
          Option.iter record_success breaker;
          { result = Ok v; attempts = attempts + 1; backoff = !total_backoff }
      | exception e when transient e ->
          Option.iter record_failure breaker;
          let attempts = attempts + 1 in
          let error = Fault.describe e in
          if attempts > policy.retries then
            { result = Error error; attempts; backoff = !total_backoff }
          else begin
            let cap =
              Float.min policy.max_delay
                (policy.base_delay *. (2. ** float_of_int (attempts - 1)))
            in
            let sleep = Prng.float rng *. cap in
            match policy.deadline with
            | Some d when Vclock.now clock +. sleep -. start > d ->
                {
                  result = Error (error ^ " (retry deadline exhausted)");
                  attempts;
                  backoff = !total_backoff;
                }
            | _ ->
                Log.debug (fun m ->
                    m "%s: attempt %d failed (%s), backing off %.3fs" label
                      attempts error sleep);
                Vclock.sleep clock sleep;
                total_backoff := !total_backoff +. sleep;
                go attempts
          end
  in
  go 0
