module Json = Indaas_util.Json

type status = Ok | Degraded of string | Failed of string

type source_report = {
  source : string;
  status : status;
  attempts : int;
  modules_total : int;
  modules_failed : int;
  records : int;
  records_lost : int;
}

type t = {
  sources : source_report list;
  completeness : float;
  retries : int;
}

let fully_ok s = s.modules_failed = 0 && s.records_lost = 0

let source_completeness s =
  if s.modules_total = 0 then 1.
  else
    let module_fraction =
      float_of_int (s.modules_total - s.modules_failed)
      /. float_of_int s.modules_total
    in
    let record_fraction =
      if s.records + s.records_lost = 0 then 1.
      else float_of_int s.records /. float_of_int (s.records + s.records_lost)
    in
    module_fraction *. record_fraction

let completeness_of sources =
  match sources with
  | [] -> 1.
  | _ when List.for_all fully_ok sources -> 1.
  | _ ->
      let sum =
        List.fold_left (fun acc s -> acc +. source_completeness s) 0. sources
      in
      let mean = sum /. float_of_int (List.length sources) in
      (* Something was lost, so the ratio must be < 1 even if float
         rounding of the mean says otherwise. *)
      Float.max 0. (Float.min mean (Float.pred 1.))

let make ~retries sources =
  { sources; completeness = completeness_of sources; retries }

let complete ~sources =
  make ~retries:0
    (List.map
       (fun source ->
         {
           source;
           status = Ok;
           attempts = 0;
           modules_total = 0;
           modules_failed = 0;
           records = 0;
           records_lost = 0;
         })
       sources)

let degraded t =
  t.completeness < 1. || List.exists (fun s -> s.status <> Ok) t.sources

let failed_sources t =
  List.filter_map
    (fun s -> match s.status with Failed _ -> Some s.source | _ -> None)
    t.sources

let records_lost t = List.fold_left (fun acc s -> acc + s.records_lost) 0 t.sources
let attempts t = List.fold_left (fun acc s -> acc + s.attempts) 0 t.sources

let status_to_string = function
  | Ok -> "ok"
  | Degraded _ -> "degraded"
  | Failed _ -> "failed"

let status_reason = function Ok -> None | Degraded r | Failed r -> Some r

let render t =
  if not (degraded t) then "collection complete: all sources healthy"
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "*** DEGRADED AUDIT *** completeness %.2f — incomplete dependency \
          data can only OVERESTIMATE independence\n"
         t.completeness);
    List.iter
      (fun s ->
        match s.status with
        | Ok -> ()
        | Degraded reason ->
            Buffer.add_string buf
              (Printf.sprintf "  - source %s: degraded: %s (%d attempts)\n"
                 s.source reason s.attempts)
        | Failed reason ->
            Buffer.add_string buf
              (Printf.sprintf "  - source %s: FAILED: %s (%d attempts)\n"
                 s.source reason s.attempts))
      t.sources;
    Buffer.add_string buf
      (Printf.sprintf "  %d record(s) lost, %d retr%s spent" (records_lost t)
         t.retries
         (if t.retries = 1 then "y" else "ies"));
    Buffer.contents buf
  end

let source_to_json s =
  Json.Obj
    [
      ("source", Json.String s.source);
      ("status", Json.String (status_to_string s.status));
      ( "reason",
        match status_reason s.status with
        | Some r -> Json.String r
        | None -> Json.Null );
      ("attempts", Json.Int s.attempts);
      ("modules_total", Json.Int s.modules_total);
      ("modules_failed", Json.Int s.modules_failed);
      ("records", Json.Int s.records);
      ("records_lost", Json.Int s.records_lost);
    ]

let to_json t =
  Json.Obj
    [
      ("degraded", Json.Bool (degraded t));
      ("completeness", Json.Float t.completeness);
      ("retries", Json.Int t.retries);
      ("sources", Json.List (List.map source_to_json t.sources));
    ]
