(** Deterministic fault injection.

    A {!plan} names targets (data-source names, or ["transport"] for
    the PIA message layer, or ["*"] for everything) and the faults to
    inject at each. An {!injector} instantiates a plan with a seed and
    a {!Vclock.t}; wrapping a collector or a transport through it
    produces the exact same fault sequence for the same seed, so chaos
    runs and tests are byte-reproducible and never sleep.

    The fault model covers the failure classes a production INDaaS
    deployment meets in the wild (paper §2, §5.2: data sources are
    independent, possibly lossy parties): process crashes, timeouts,
    transient flakiness, partial record loss, record corruption, and
    message loss/delay inside the private protocols. *)

(** One fault kind. Record-level fractions and message probabilities
    are evaluated per record/message with the injector's seeded
    generator. *)
type kind =
  | Crash  (** every call raises — a permanently dead source *)
  | Flaky_until of int
      (** the first [k] calls raise, later calls succeed — a source
          that recovers; succeeds iff the retry budget is at least
          [k] *)
  | Timeout of float
      (** each call consumes this much virtual time, then raises —
          a hung source hitting its deadline *)
  | Drop_fraction of float
      (** each collected record is independently dropped with this
          probability — lossy, partial acquisition *)
  | Corrupt_fraction of float
      (** each collected record's component identifiers are mangled
          with this probability *)
  | Message_loss of float
      (** transport: each message is dropped with this probability *)
  | Message_delay of float
      (** transport: every message is delayed this many virtual
          seconds *)

exception Injected of { target : string; fault : string }
(** Raised by wrapped collectors and transports when a crash, flaky
    call, timeout or message drop fires. The retry engine treats it
    as transient and retries; anything else propagates. *)

val describe : exn -> string
(** Human-readable form of an injected (or any other) exception. *)

type plan
(** A seed plus [(target, kind)] entries. The same target may appear
    several times; all its faults apply. *)

val plan : ?seed:int -> (string * kind) list -> plan
(** Raises [Invalid_argument] on an out-of-range fraction or
    probability, a negative duration, or a negative flaky count. *)

val empty : plan
(** No faults: wrapping through an injector of the empty plan is an
    identity (the wrapped collector returns exactly the records of
    the original). *)

val is_empty : plan -> bool
val entries : plan -> (string * kind) list

val kind_to_string : kind -> string
(** CLI spelling, e.g. ["crash"], ["flaky:3"], ["drop:0.25"]. *)

val kind_of_string : string -> kind
(** Inverse of {!kind_to_string}. Accepts [crash], [flaky:K],
    [timeout:SECS], [drop:FRACTION], [corrupt:FRACTION],
    [msg-loss:PROB], [msg-delay:SECS]. Raises [Failure] with the
    accepted grammar otherwise. *)

val entry_of_string : string -> string * kind
(** Parses ["TARGET=SPEC"] (e.g. ["S2=crash"]). Raises [Failure]. *)

(** {1 Injectors} *)

type injector
(** Mutable instantiation of a plan: seeded PRNG, virtual clock,
    per-target call counters and loss statistics. Create one per
    run/trial. *)

val injector : ?seed:int -> ?clock:Vclock.t -> plan -> injector
(** [seed] overrides the plan's seed; [clock] defaults to a fresh
    clock at 0. *)

val clock : injector -> Vclock.t
val injector_plan : injector -> plan

val wrap_collector :
  injector -> source:string -> Indaas_depdata.Collectors.t -> Indaas_depdata.Collectors.t
(** The returned module injects every fault whose target is [source]
    (or ["*"]) on each [collect] call: crash/flaky/timeout faults
    raise {!Injected}; drop/corrupt faults thin or mangle the record
    list. Message faults are ignored here. *)

val transport_interceptor :
  injector ->
  target:string ->
  src:int ->
  dst:int ->
  bytes:int ->
  [ `Deliver | `Drop | `Delay of float ]
(** A per-message decision function for {!Indaas_pia.Transport}-style
    layers, applying the [Message_loss]/[Message_delay] faults whose
    target is [target] (or ["*"]). [`Delay] also advances the
    injector's clock. *)

(** {1 Statistics} *)

val records_dropped : injector -> source:string -> int
(** Records dropped so far for [source] by [Drop_fraction] faults —
    how the agent learns the known loss of a degraded source. *)

val records_corrupted : injector -> source:string -> int
val crashes : injector -> int
val timeouts : injector -> int
val messages_dropped : injector -> int
val messages_delayed : injector -> int
