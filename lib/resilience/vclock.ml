type t = { mutable now : float }

let create ?(start = 0.) () =
  if start < 0. then invalid_arg "Vclock.create: negative start time";
  { now = start }

let now t = t.now

let advance t seconds =
  if seconds < 0. then invalid_arg "Vclock.advance: time cannot move backwards";
  t.now <- t.now +. seconds

let sleep = advance
