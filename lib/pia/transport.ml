module Fault = Indaas_resilience.Fault
module Obs = Indaas_obs.Registry

type action = [ `Deliver | `Drop | `Delay of float ]
type interceptor = src:int -> dst:int -> bytes:int -> action

type t = {
  n : int;
  sent : int array;
  received : int array;
  mutable message_count : int;
  mutable dropped : int;
  mutable delay : float;
  mutable interceptor : interceptor option;
}

let create ~parties =
  if parties <= 0 then
    invalid_arg
      (Printf.sprintf "Transport.create: parties must be positive (got %d)"
         parties);
  {
    n = parties;
    sent = Array.make parties 0;
    received = Array.make parties 0;
    message_count = 0;
    dropped = 0;
    delay = 0.;
    interceptor = None;
  }

let set_interceptor t interceptor = t.interceptor <- Some interceptor

let send t ~src ~dst bytes =
  if src < 0 || src >= t.n then
    invalid_arg
      (Printf.sprintf "Transport.send: src %d outside [0, %d)" src t.n);
  if dst < 0 || dst >= t.n then
    invalid_arg
      (Printf.sprintf "Transport.send: dst %d outside [0, %d)" dst t.n);
  if src = dst then
    invalid_arg
      (Printf.sprintf "Transport.send: party %d cannot send to itself" src);
  if bytes < 0 then
    invalid_arg
      (Printf.sprintf "Transport.send: negative size %d on %d -> %d" bytes src
         dst);
  let deliver () =
    t.sent.(src) <- t.sent.(src) + bytes;
    t.received.(dst) <- t.received.(dst) + bytes;
    t.message_count <- t.message_count + 1;
    Obs.incr "pia.messages";
    Obs.incr ~by:bytes "pia.bytes"
  in
  match t.interceptor with
  | None -> deliver ()
  | Some intercept -> (
      match intercept ~src ~dst ~bytes with
      | `Deliver -> deliver ()
      | `Delay d ->
          t.delay <- t.delay +. d;
          deliver ()
      | `Drop ->
          t.dropped <- t.dropped + 1;
          Obs.incr "pia.messages_dropped";
          raise
            (Fault.Injected
               {
                 target = Printf.sprintf "transport %d -> %d" src dst;
                 fault = Printf.sprintf "message of %d bytes dropped" bytes;
               }))

let broadcast t ~src bytes =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst bytes
  done

let parties t = t.n
let messages t = t.message_count
let bytes_sent_by t i = t.sent.(i)
let bytes_received_by t i = t.received.(i)
let total_bytes t = Array.fold_left ( + ) 0 t.sent
let max_party_bytes t = Array.fold_left max 0 t.sent
let messages_dropped t = t.dropped
let delay_seconds t = t.delay
