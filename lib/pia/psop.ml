module Commutative = Indaas_crypto.Commutative
module Oracle = Indaas_crypto.Oracle
module Digest = Indaas_crypto.Digest
module Prng = Indaas_util.Prng
module Nat = Indaas_bignum.Nat
module Obs = Indaas_obs.Registry

let log_src = Logs.Src.create "indaas.psop" ~doc:"P-SOP protocol"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  intersection : int;
  union : int;
  jaccard : float;
  transport : Transport.t;
  crypto_ops : int;
}

(* The protocol core: returns the fully-encrypted dataset of every
   party (as comparable ciphertext strings) plus accounting. *)
let encrypt_all ~params ~hash ?interceptor g datasets =
  let k = Array.length datasets in
  if k < 2 then invalid_arg "Psop.run: need at least two parties";
  let transport = Transport.create ~parties:k in
  Option.iter (Transport.set_interceptor transport) interceptor;
  let crypto_ops = ref 0 in
  let keys = Array.init k (fun _ -> Commutative.generate_key g params) in
  let modulus = Commutative.modulus params in
  let ciphertext_bytes = Commutative.modulus_bytes params in
  (* Step 1: each party disambiguates duplicates, hashes every element
     into the group and encrypts under its own key, then permutes. *)
  let batches =
    Array.mapi
      (fun i elements ->
        let unique = Componentset.multiset_elements elements in
        let encrypted =
          List.map
            (fun e ->
              incr crypto_ops;
              Commutative.encrypt params keys.(i)
                (Oracle.hash_to_group ~algorithm:hash e ~modulus))
            unique
        in
        Prng.shuffle_list g encrypted)
      datasets
  in
  (* Steps 2..k: forward around the ring; each hop re-encrypts under
     the receiver's key and re-permutes. After k-1 hops, batch j has
     been encrypted by all parties and sits at party (j + k-1) mod k. *)
  let current = Array.copy batches in
  for hop = 1 to k - 1 do
    ignore hop;
    let next = Array.make k [] in
    Array.iteri
      (fun owner batch ->
        let holder = (owner + hop - 1) mod k in
        let successor = (holder + 1) mod k in
        Transport.send transport ~src:holder ~dst:successor
          (List.length batch * ciphertext_bytes);
        let re_encrypted =
          List.map
            (fun c ->
              incr crypto_ops;
              Commutative.encrypt params keys.(successor) c)
            batch
        in
        next.(owner) <- Prng.shuffle_list g re_encrypted)
      current;
    Array.blit next 0 current 0 k
  done;
  (* Final sharing: each fully-encrypted batch is broadcast so that
     every party can count common elements. *)
  Array.iteri
    (fun owner batch ->
      let holder = (owner + k - 1) mod k in
      Transport.broadcast transport ~src:holder
        (List.length batch * ciphertext_bytes))
    current;
  let as_strings =
    Array.map
      (fun batch -> List.map (Commutative.ciphertext_to_string params) batch)
      current
  in
  (as_strings, transport, !crypto_ops)

let count_cardinalities encrypted_batches =
  let sets =
    Array.map (fun batch -> Componentset.of_list batch) encrypted_batches
  in
  let sets = Array.to_list sets in
  ( Componentset.cardinal (Componentset.inter_many sets),
    Componentset.cardinal (Componentset.union_many sets) )

let run ?params ?(hash = Digest.SHA256) ?interceptor g datasets =
  let params =
    match params with
    | Some p -> p
    | None -> Commutative.params_pohlig_hellman ~bits:256 g
  in
  let encrypted, transport, crypto_ops =
    encrypt_all ~params ~hash ?interceptor g datasets
  in
  Obs.incr ~by:crypto_ops "psop.crypto_ops";
  let intersection, union = count_cardinalities encrypted in
  Log.debug (fun f ->
      f "P-SOP: %d parties, %d crypto ops, %d bytes, |inter|=%d |union|=%d"
        (Array.length datasets) crypto_ops
        (Transport.total_bytes transport) intersection union);
  {
    intersection;
    union;
    jaccard = Jaccard.of_cardinalities ~intersection ~union;
    transport;
    crypto_ops;
  }

let run_minhash ?params ?(hash = Digest.SHA256) ?interceptor ~m g datasets =
  let signatures =
    Array.map
      (fun elements ->
        Minhash.signature_elements ~m (Componentset.of_list elements))
      datasets
  in
  let result = run ?params ~hash ?interceptor g signatures in
  (* δ = number of agreeing positions = |∩ signatures|. *)
  {
    result with
    union = m;
    jaccard = float_of_int result.intersection /. float_of_int m;
  }
