(** P-SOP — private set intersection cardinality over a ring of
    parties using commutative encryption (Vaidya & Clifton 2005;
    paper §4.2.2, §6.1.2).

    Each party hashes its (duplicate-disambiguated) elements into the
    shared group, encrypts them under its own commutative key,
    permutes them, and forwards the batch around the logical ring;
    after [k] hops every element is encrypted under all [k] keys, in
    an order-insensitive way — so equal plaintexts at different
    parties end in equal ciphertexts, and the parties can count
    [|∩S_i|] and [|∪S_i|] on the shared ciphertext multisets without
    learning any plaintext. The paper's prototype instantiates the
    pieces with MD5 + commutative RSA; the default here is SHA-256 +
    Pohlig–Hellman (both selectable). *)

type result = {
  intersection : int;  (** [|∩ S_i|] *)
  union : int;  (** [|∪ S_i|] *)
  jaccard : float;
  transport : Transport.t;  (** traffic accounting for Figure 8(a) *)
  crypto_ops : int;  (** total commutative encryptions performed *)
}

val run :
  ?params:Indaas_crypto.Commutative.params ->
  ?hash:Indaas_crypto.Digest.algorithm ->
  ?interceptor:Transport.interceptor ->
  Indaas_util.Prng.t ->
  string list array ->
  result
(** [run g datasets] executes the protocol among
    [Array.length datasets] parties (at least 2). Fresh 256-bit
    Pohlig–Hellman parameters are generated unless [params] is given.
    [interceptor] puts the ring's transport under a fault plan: a
    dropped hop or broadcast raises
    [Indaas_resilience.Fault.Injected], modelling a party vanishing
    mid-protocol. Raises [Invalid_argument] with fewer than two
    parties. *)

val run_minhash :
  ?params:Indaas_crypto.Commutative.params ->
  ?hash:Indaas_crypto.Digest.algorithm ->
  ?interceptor:Transport.interceptor ->
  m:int ->
  Indaas_util.Prng.t ->
  string list array ->
  result
(** The large-dataset variant of §4.2.4: each party first compresses
    its set to an [m]-position MinHash signature, and the signatures
    are run through P-SOP. [jaccard] is then [δ/m]; [union] reports
    [m]. *)
