(** Simulated message transport with traffic accounting.

    PIA's protocols run between co-located simulated parties; this
    module records who sent how many bytes to whom, so the Figure 8(a)
    bandwidth-overhead series can be measured rather than modelled.

    An optional {!interceptor} puts the transport under a fault plan:
    each message may be delivered, dropped (the send raises
    {!Indaas_resilience.Fault.Injected} naming the endpoints — how a
    provider "drops out" mid-protocol) or delayed (accounted in
    {!delay_seconds}; virtual time, no sleeping). *)

type t

type action = [ `Deliver | `Drop | `Delay of float ]

type interceptor = src:int -> dst:int -> bytes:int -> action
(** Per-message decision, e.g.
    {!Indaas_resilience.Fault.transport_interceptor}. *)

val create : parties:int -> t
(** Raises [Invalid_argument] unless [parties] is positive. *)

val set_interceptor : t -> interceptor -> unit
(** Installs the fault interceptor for all subsequent sends. *)

val send : t -> src:int -> dst:int -> int -> unit
(** [send t ~src ~dst bytes] accounts one message. Zero-byte messages
    are legal and count as messages. Raises [Invalid_argument] naming
    the offending endpoint on an out-of-range [src]/[dst], [src = dst]
    or a negative size; raises [Indaas_resilience.Fault.Injected] when
    the interceptor drops the message. *)

val broadcast : t -> src:int -> int -> unit
(** One message of the given size to every other party. With a single
    party there is no other party: the broadcast is a no-op. If the
    interceptor drops one copy, the exception propagates and the
    remaining copies are not sent — a mid-broadcast crash. *)

val parties : t -> int
val messages : t -> int
val bytes_sent_by : t -> int -> int
val bytes_received_by : t -> int -> int
val total_bytes : t -> int
val max_party_bytes : t -> int
(** Largest per-party outbound total — the per-provider overhead the
    paper plots. *)

val messages_dropped : t -> int
(** Messages the interceptor dropped. *)

val delay_seconds : t -> float
(** Total virtual delay the interceptor injected into delivered
    messages. *)
