module Prng = Indaas_util.Prng
module Table = Indaas_util.Table
module Obs = Indaas_obs.Registry
module Fault = Indaas_resilience.Fault
module Retry = Indaas_resilience.Retry
module Vclock = Indaas_resilience.Vclock

type protocol =
  | Psop of { params : Indaas_crypto.Commutative.params option }
  | Psop_minhash of {
      params : Indaas_crypto.Commutative.params option;
      m : int;
    }
  | Ks of { key_bits : int }
  | Bloom of { bits : int; hashes : int; flip : float }
  | Cleartext

type provider = { name : string; components : Componentset.t }

let provider ~name components =
  { name; components = Componentset.of_list components }

type deployment_result = {
  providers : string list;
  jaccard : float;
  intersection : int option;
  union : int option;
  correlated : bool;
}

type round_failure = { group : string list; error : string; attempts : int }

type report = {
  way : int;
  results : deployment_result list;
  failures : round_failure list;
}

(* Duplicate provider names would silently produce duplicate subsets
   downstream; reject them at the boundary, naming the duplicate. *)
let check_unique_names ~what providers =
  let rec go seen = function
    | [] -> ()
    | p :: rest ->
        if List.mem p.name seen then
          invalid_arg (Printf.sprintf "%s: duplicate provider name %S" what p.name)
        else go (p.name :: seen) rest
  in
  go [] providers

let subsets_of_size k l =
  let rec go k l =
    match (k, l) with
    | 0, _ -> [ [] ]
    | _, [] -> []
    | k, x :: rest ->
        List.map (fun s -> x :: s) (go (k - 1) rest) @ go k rest
  in
  go k l

let protocol_label = function
  | Psop _ -> "psop"
  | Psop_minhash _ -> "psop_minhash"
  | Ks _ -> "ks"
  | Bloom _ -> "bloom"
  | Cleartext -> "cleartext"

let evaluate ?interceptor protocol rng group =
  let names = List.map (fun p -> p.name) group in
  Obs.with_span "pia.round"
    ~attrs:
      [
        ("protocol", protocol_label protocol);
        ("providers", String.concat "&" names);
      ]
  @@ fun () ->
  Obs.incr "pia.rounds";
  let datasets =
    Array.of_list (List.map (fun p -> Componentset.to_list p.components) group)
  in
  match protocol with
  | Cleartext ->
      let sets = List.map (fun p -> p.components) group in
      let inter = Componentset.cardinal (Componentset.inter_many sets) in
      let union = Componentset.cardinal (Componentset.union_many sets) in
      let j = Jaccard.of_cardinalities ~intersection:inter ~union in
      (names, j, Some inter, Some union)
  | Psop { params } ->
      let r = Psop.run ?params ?interceptor rng datasets in
      (names, r.Psop.jaccard, Some r.Psop.intersection, Some r.Psop.union)
  | Psop_minhash { params; m } ->
      let r = Psop.run_minhash ?params ?interceptor ~m rng datasets in
      (names, r.Psop.jaccard, None, None)
  | Bloom { bits; hashes; flip } ->
      let r = Bloompsi.run ~bits ~hashes ~flip rng datasets in
      ( names,
        r.Bloompsi.jaccard,
        Some (int_of_float (Float.round r.Bloompsi.intersection_estimate)),
        Some (int_of_float (Float.round r.Bloompsi.union_estimate)) )
  | Ks { key_bits } ->
      let r = Ks.run ~key_bits rng datasets in
      let inter = r.Ks.intersection in
      (* Union from public cardinalities: exact for two parties; for
         more, fall back to the pairwise-union bound computed from
         each party's size (documented in the interface). *)
      let sizes = List.map (fun p -> Componentset.cardinal p.components) group in
      let union =
        match sizes with
        | [ a; b ] -> Some (a + b - inter)
        | _ -> None
      in
      let j =
        match union with
        | Some u -> Jaccard.of_cardinalities ~intersection:inter ~union:u
        | None ->
            (* Conservative estimate against the smallest provider. *)
            let smallest = List.fold_left min max_int sizes in
            if smallest = 0 then 0.
            else float_of_int inter /. float_of_int smallest
      in
      (names, j, Some inter, union)

let audit ?(protocol = Cleartext) ?(rng = Prng.of_int 0x91A) ?faults ?retry ~way
    providers =
  check_unique_names ~what:"Audit.audit" providers;
  let n = List.length providers in
  if way < 2 then invalid_arg "Audit.audit: way must be >= 2";
  if way > n then invalid_arg "Audit.audit: way exceeds provider count";
  (* With a fault injector or a retry policy, each protocol round is
     retried under backoff and a round that still fails is reported
     in [failures] instead of crashing the whole audit. *)
  let resilient = faults <> None || retry <> None in
  let interceptor =
    Option.map (fun f -> Fault.transport_interceptor f ~target:"transport") faults
  in
  let clock =
    match faults with Some f -> Fault.clock f | None -> Vclock.create ()
  in
  let policy = Option.value retry ~default:Retry.default in
  let retry_rng = Prng.split rng in
  let measured =
    subsets_of_size way providers
    |> List.map (fun group ->
           let names = List.map (fun p -> p.name) group in
           let eval () = evaluate ?interceptor protocol rng group in
           if not resilient then Either.Left (eval ())
           else
             let outcome =
               Retry.call ~policy ~clock ~rng:retry_rng
                 ~label:(String.concat " & " names) eval
             in
             match outcome.Retry.result with
             | Ok r -> Either.Left r
             | Error error ->
                 Obs.incr "pia.round_failures";
                 Either.Right
                   { group = names; error; attempts = outcome.Retry.attempts })
  in
  let results =
    List.filter_map
      (function
        | Either.Left (providers, jaccard, intersection, union) ->
            Some
              {
                providers;
                jaccard;
                intersection;
                union;
                correlated = Jaccard.significantly_correlated jaccard;
              }
        | Either.Right _ -> None)
      measured
    |> List.sort (fun a b ->
           match compare a.jaccard b.jaccard with
           | 0 -> compare a.providers b.providers
           | c -> c)
  in
  let failures =
    List.filter_map
      (function Either.Right f -> Some f | Either.Left _ -> None)
      measured
    |> List.sort (fun a b -> compare a.group b.group)
  in
  { way; results; failures }

let render report =
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right ]
      [
        "Rank";
        Printf.sprintf "%d-Way Redundancy Deployment" report.way;
        "Jaccard";
        "correlated?";
      ]
  in
  List.iteri
    (fun i r ->
      Table.add_row t
        [
          string_of_int (i + 1);
          String.concat " & " r.providers;
          Printf.sprintf "%.4f" r.jaccard;
          (if r.correlated then "YES" else "no");
        ])
    report.results;
  let rendered = Table.render t in
  match report.failures with
  | [] -> rendered
  | failures ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf rendered;
      Buffer.add_string buf
        (Printf.sprintf
           "\n*** DEGRADED AUDIT *** %d deployment(s) could not be measured:\n"
           (List.length failures));
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "  - %s: failed: %s (%d attempts)\n"
               (String.concat " & " f.group) f.error f.attempts))
        failures;
      Buffer.add_string buf
        "  unmeasured deployments are missing from the ranking above";
      Buffer.contents buf

let best report =
  match report.results with
  | best :: _ -> best
  | [] -> invalid_arg "Audit.best: empty report"

type nofm_result = {
  group : string list;
  full_jaccard : float;
  worst_quorum : string list;
  worst_quorum_jaccard : float;
}

let audit_nofm ?(protocol = Cleartext) ?(rng = Prng.of_int 0x90F) ~n ~m providers =
  check_unique_names ~what:"Audit.audit_nofm" providers;
  let count = List.length providers in
  if n < 2 || n > m || m > count then
    invalid_arg "Audit.audit_nofm: need 2 <= n <= m <= #providers";
  let jaccard_of group =
    let _, j, _, _ = evaluate protocol rng group in
    j
  in
  subsets_of_size m providers
  |> List.map (fun group ->
         let full_jaccard = jaccard_of group in
         let quorums = subsets_of_size n group in
         let worst =
           List.fold_left
             (fun acc quorum ->
               let j = jaccard_of quorum in
               match acc with
               | Some (_, best_j) when best_j >= j -> acc
               | _ -> Some (quorum, j))
             None quorums
         in
         let worst_quorum, worst_quorum_jaccard =
           match worst with
           | Some (q, j) -> (List.map (fun p -> p.name) q, j)
           | None -> ([], 0.)
         in
         {
           group = List.map (fun p -> p.name) group;
           full_jaccard;
           worst_quorum;
           worst_quorum_jaccard;
         })
  |> List.sort (fun a b ->
         match compare a.worst_quorum_jaccard b.worst_quorum_jaccard with
         | 0 -> (
             match compare a.full_jaccard b.full_jaccard with
             | 0 -> compare a.group b.group
             | c -> c)
         | c -> c)

let render_nofm ~n results =
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Left; Table.Right ]
      [
        "Rank"; "Deployment (m providers)"; "J(all m)";
        Printf.sprintf "worst %d-quorum" n; "J(quorum)";
      ]
  in
  List.iteri
    (fun i r ->
      Table.add_row t
        [
          string_of_int (i + 1);
          String.concat " & " r.group;
          Printf.sprintf "%.4f" r.full_jaccard;
          String.concat " & " r.worst_quorum;
          Printf.sprintf "%.4f" r.worst_quorum_jaccard;
        ])
    results;
  Table.render t

module Json = Indaas_util.Json

let to_json report =
  Json.Obj
    [
      ("way", Json.Int report.way);
      ( "results",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ( "providers",
                     Json.List (List.map (fun p -> Json.String p) r.providers) );
                   ("jaccard", Json.Float r.jaccard);
                   ( "intersection",
                     match r.intersection with
                     | Some i -> Json.Int i
                     | None -> Json.Null );
                   ( "union",
                     match r.union with Some u -> Json.Int u | None -> Json.Null );
                   ("correlated", Json.Bool r.correlated);
                 ])
             report.results) );
      ("degraded", Json.Bool (report.failures <> []));
      ( "failures",
        Json.List
          (List.map
             (fun (f : round_failure) ->
               Json.Obj
                 [
                   ( "providers",
                     Json.List (List.map (fun p -> Json.String p) f.group) );
                   ("error", Json.String f.error);
                   ("attempts", Json.Int f.attempts);
                 ])
             report.failures) );
    ]
