(** The Private Independence Auditing protocol end-to-end (paper
    §4.2): normalize component sets, run a private set intersection
    cardinality protocol per candidate redundancy deployment, rank
    deployments by Jaccard similarity, and render the report the
    auditing agent sends the client (§4.2.5). *)

(** Which private protocol quantifies the overlap. *)
type protocol =
  | Psop of { params : Indaas_crypto.Commutative.params option }
      (** the paper's choice *)
  | Psop_minhash of {
      params : Indaas_crypto.Commutative.params option;
      m : int;
    }  (** for large component sets (§4.2.4) *)
  | Ks of { key_bits : int }
      (** homomorphic baseline; intersection only, so Jaccard uses the
          (public) set sizes for the union via inclusion–exclusion of
          cardinalities — exact for two parties, and the protocol
          additionally reveals pairwise counts for more *)
  | Bloom of { bits : int; hashes : int; flip : float }
      (** Bloom-filter estimation (see {!Bloompsi}): hashing-only
          cost, estimated cardinalities, leaks noised membership
          bits *)
  | Cleartext  (** non-private reference (a trusted auditor) *)

type provider = { name : string; components : Componentset.t }

val provider : name:string -> string list -> provider

type deployment_result = {
  providers : string list;
  jaccard : float;
  intersection : int option;  (** not exposed by the MinHash variant *)
  union : int option;
  correlated : bool;  (** [jaccard >= 0.75] *)
}

type round_failure = {
  group : string list;  (** the deployment that could not be measured *)
  error : string;  (** the last error after retries *)
  attempts : int;
}

type report = {
  way : int;  (** deployments of this many providers *)
  results : deployment_result list;  (** ranked, most independent first *)
  failures : round_failure list;
      (** protocol rounds that kept failing after retries — empty for
          a healthy run; a non-empty list marks the audit degraded *)
}

val audit :
  ?protocol:protocol ->
  ?rng:Indaas_util.Prng.t ->
  ?faults:Indaas_resilience.Fault.injector ->
  ?retry:Indaas_resilience.Retry.policy ->
  way:int ->
  provider list ->
  report
(** Evaluates every [way]-subset of the providers (Table 2 evaluates
    [way = 2] and [way = 3] over four clouds). Defaults: [Cleartext]
    — pass [Psop] for the private protocol — and a fixed seed.

    When [faults] and/or [retry] is given the audit runs resiliently:
    the injector's ["transport"] faults intercept the P-SOP ring, each
    protocol round is retried under the policy (default
    {!Indaas_resilience.Retry.default}) on the injector's virtual
    clock, and a round whose budget is exhausted — e.g. a provider
    that keeps dropping out mid-P-SOP — lands in [failures] instead
    of crashing the run. Without either option behaviour is the
    legacy fail-fast one.

    Raises [Invalid_argument] if [way < 2], [way] exceeds the
    provider count, or two providers share a name (the message names
    the duplicate). *)

val render : report -> string
(** Paper-style Table 2: rank, deployment, Jaccard. Degraded audits
    get a prominent trailer listing the unmeasured deployments. *)

val best : report -> deployment_result
(** The most independent deployment. *)

(** {1 n-of-m deployments}

    For an n-of-m redundancy deployment the paper's agent "needs to
    obtain the Jaccard similarity across all the n cloud providers and
    the similarity across all the m cloud providers" (§4.2.5): the
    service survives while any [n] providers are alive, so the
    overlap of the {e full} group bounds total wipe-out risk, and the
    worst [n]-subset shows the weakest quorum the service may end up
    depending on. *)

type nofm_result = {
  group : string list;  (** the m providers of this deployment *)
  full_jaccard : float;  (** across all m *)
  worst_quorum : string list;  (** the n-subset with the highest J *)
  worst_quorum_jaccard : float;
}

val audit_nofm :
  ?protocol:protocol ->
  ?rng:Indaas_util.Prng.t ->
  n:int ->
  m:int ->
  provider list ->
  nofm_result list
(** Evaluates every [m]-subset of the providers; within each, every
    [n]-subset. Ranked by [worst_quorum_jaccard] then [full_jaccard]
    (most independent first). Raises [Invalid_argument] unless
    [2 <= n <= m <= #providers], or on a duplicate provider name. *)

val render_nofm : n:int -> nofm_result list -> string

val to_json : report -> Indaas_util.Json.t
(** Machine-readable ranking. *)
