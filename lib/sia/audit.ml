module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset
module Bdd = Indaas_faultgraph.Bdd
module Sampling = Indaas_faultgraph.Sampling
module Prng = Indaas_util.Prng
module Obs = Indaas_obs.Registry

type rg_algorithm =
  | Minimal_rg of { max_size : int option; max_family : int option }
  | Minimal_rg_bdd of { max_size : int option }
  | Auto_rg of { max_size : int option; max_family : int option }
  | Failure_sampling of Sampling.config

let minimal_rg = Minimal_rg { max_size = None; max_family = None }
let minimal_rg_bdd = Minimal_rg_bdd { max_size = None }
let auto_rg = Auto_rg { max_size = None; max_family = None }

let failure_sampling ~rounds =
  Failure_sampling { Sampling.default_config with Sampling.rounds }

type ranking = Size_based | Probability_based

type request = {
  spec : Builder.spec;
  algorithm : rg_algorithm;
  ranking : ranking;
  top_n : int option;
}

let request ?required ?component_probability ?(algorithm = minimal_rg)
    ?(ranking = Size_based) ?top_n servers =
  {
    spec = Builder.spec ?required ?component_probability servers;
    algorithm;
    ranking;
    top_n;
  }

type deployment_report = {
  servers : string list;
  graph : Graph.t;
  ranked : Rank.ranked list;
  unexpected : Rank.ranked list;
  independence_score : float;
  failure_probability : float option;
  expected_rg_size : int;
  diagnostics : Indaas_lint.Diagnostic.t list;
}

let algorithm_label = function
  | Minimal_rg _ -> "minimal_rg"
  | Minimal_rg_bdd _ -> "minimal_rg_bdd"
  | Auto_rg _ -> "auto_rg"
  | Failure_sampling _ -> "failure_sampling"

let determine_rgs rng algorithm graph =
  match algorithm with
  | Minimal_rg { max_size; max_family } ->
      Cutset.minimal_risk_groups ?max_size ?max_family graph
  | Minimal_rg_bdd { max_size } -> Bdd.minimal_risk_groups ?max_size graph
  | Auto_rg { max_size; max_family } -> (
      (* Enumeration with absorption is the fast path on the sparse
         graphs audits usually see; when its family budget trips, the
         symbolic engine computes the identical family without ever
         materializing intermediate ones. *)
      try Cutset.minimal_risk_groups ?max_size ?max_family graph
      with Cutset.Too_many_cut_sets _ -> Bdd.minimal_risk_groups ?max_size graph)
  | Failure_sampling config ->
      (Sampling.run ~config rng graph).Sampling.risk_groups

let audit ?(rng = Prng.of_int 0xD1CE) db request =
  let graph = Builder.build db request.spec in
  let rgs =
    Obs.with_span "minimize"
      ~attrs:[ ("algorithm", algorithm_label request.algorithm) ]
    @@ fun () ->
    let rgs = determine_rgs rng request.algorithm graph in
    Obs.span_attr "risk_groups" (string_of_int (List.length rgs));
    rgs
  in
  let ranked, score, failure_probability =
    Obs.with_span "rank" @@ fun () ->
    if Obs.on () then
      List.iter
        (fun rg ->
          Obs.observe
            ~bounds:[| 1.; 2.; 3.; 5.; 8.; 13.; 21. |]
            "rg.size"
            (float_of_int (Array.length rg)))
        rgs;
    match request.ranking with
    | Size_based ->
        let ranked = Rank.size_based graph rgs in
        (ranked, Rank.independence_score_size ?top_n:request.top_n ranked, None)
    | Probability_based ->
        let ranked = Rank.probability_based rng graph rgs in
        ( ranked,
          Rank.independence_score_importance ?top_n:request.top_n ranked,
          Some (Rank.top_probability rng graph rgs) )
  in
  let expected_rg_size = Builder.expected_rg_size request.spec in
  (* Structural pre-checks ride along with every report (hints are
     noise at this level: built graphs legitimately contain
     single-child pass-through gates). *)
  let diagnostics =
    Indaas_lint.Lint.run [ Indaas_lint.Lint.Fault_graph graph ]
    |> List.filter (fun d ->
           d.Indaas_lint.Diagnostic.severity <> Indaas_lint.Diagnostic.Hint)
  in
  {
    servers = request.spec.Builder.servers;
    graph;
    ranked;
    unexpected = Rank.unexpected ~expected_size:expected_rg_size ranked;
    independence_score = score;
    failure_probability;
    expected_rg_size;
    diagnostics;
  }

let compare_reports a b =
  match compare (List.length a.unexpected) (List.length b.unexpected) with
  | 0 -> (
      match (a.failure_probability, b.failure_probability) with
      | Some pa, Some pb when pa <> pb -> compare pa pb
      | _ ->
          (* Size-based score: higher is more independent. Full ties
             keep candidate order (stable sort below). *)
          compare b.independence_score a.independence_score)
  | c -> c

let audit_candidates ?rng db ~candidates request =
  List.map
    (fun servers ->
      audit ?rng db { request with spec = { request.spec with Builder.servers } })
    candidates
  |> List.stable_sort compare_reports

let choose_best ?rng db ~candidates request =
  match audit_candidates ?rng db ~candidates request with
  | best :: _ -> best
  | [] -> invalid_arg "Audit.choose_best: no candidates"
