module Depdb = Indaas_depdata.Depdb
module Dependency = Indaas_depdata.Dependency
module Graph = Indaas_faultgraph.Graph
module Obs = Indaas_obs.Registry

type spec = {
  servers : string list;
  required : int;
  component_probability : string -> float option;
}

let spec ?(required = 1) ?(component_probability = fun _ -> None) servers =
  { servers; required; component_probability }

let uniform_probability p _ = Some p

let expected_rg_size s = List.length s.servers - s.required + 1

let build db s =
  let m = List.length s.servers in
  if m = 0 then invalid_arg "Builder.build: no servers";
  if s.required < 1 || s.required > m then
    invalid_arg "Builder.build: required out of range";
  Obs.with_span "build" ~attrs:[ ("servers", string_of_int m) ] @@ fun () ->
  let b = Graph.Builder.create () in
  let basic name = Graph.Builder.add_basic b ?prob:(s.component_probability name) name in
  let server_gate server =
    (* Step 5: network — redundant paths under an AND, devices on a
       path under an OR. *)
    let paths = Depdb.network_paths db ~src:server in
    let network =
      match paths with
      | [] -> None
      | _ ->
          let path_gates =
            List.mapi
              (fun i (p : Dependency.network) ->
                let devices = List.map basic p.Dependency.route in
                match devices with
                | [] ->
                    (* A recorded route with no intermediate device is a
                       direct link: it cannot fail through a component,
                       so the path-AND can never fire. Model it as an
                       unfailable leaf is wrong; instead skip the whole
                       network gate below by signalling with None. *)
                    None
                | _ ->
                    Some
                      (Graph.Builder.add_gate b
                         ~name:(Printf.sprintf "%s/path%d" server i)
                         Graph.Or devices))
              paths
          in
          if List.exists Option.is_none path_gates then None
          else
            Some
              (Graph.Builder.add_gate b
                 ~name:(server ^ "/network")
                 Graph.And
                 (List.map Option.get path_gates))
    in
    (* Step 4: hardware — any component failure fails the server. *)
    let hw_records = Depdb.hardware_of db ~machine:server in
    let hardware =
      match hw_records with
      | [] -> None
      | _ ->
          let components =
            List.map (fun (h : Dependency.hardware) -> basic h.Dependency.dep) hw_records
          in
          Some (Graph.Builder.add_gate b ~name:(server ^ "/hardware") Graph.Or components)
    in
    (* Step 6: software — OR over programs, each an OR over its
       packages. *)
    let sw_records = Depdb.software_on db ~machine:server in
    let software =
      match sw_records with
      | [] -> None
      | _ ->
          let program_gates =
            List.map
              (fun (sw : Dependency.software) ->
                match sw.Dependency.deps with
                | [] -> basic sw.Dependency.pgm (* leaf program: its own failure event *)
                | deps ->
                    Graph.Builder.add_gate b
                      ~name:(Printf.sprintf "%s/%s" server sw.Dependency.pgm)
                      Graph.Or
                      (List.map basic deps))
              sw_records
          in
          Some (Graph.Builder.add_gate b ~name:(server ^ "/software") Graph.Or program_gates)
    in
    (* Step 3: the server fails when any dependency category fails. *)
    match List.filter_map Fun.id [ network; hardware; software ] with
    | [] ->
        invalid_arg
          (Printf.sprintf "Builder.build: no dependency records for server %S" server)
    | children -> Graph.Builder.add_gate b ~name:server Graph.Or children
  in
  (* Step 2: servers under the redundancy gate. *)
  let server_gates = List.map server_gate s.servers in
  let threshold = m - s.required + 1 in
  let gate = if threshold = m then Graph.And else Graph.Kofn threshold in
  let top = Graph.Builder.add_gate b ~name:"deployment" gate server_gates in
  let g = Graph.Builder.build b ~top in
  if Obs.on () then begin
    let nodes = Graph.node_count g in
    let basics = Array.length (Graph.basic_ids g) in
    Obs.incr ~by:(nodes - basics) "build.gates";
    Obs.incr ~by:basics "build.basic_events";
    Obs.span_attr "nodes" (string_of_int nodes)
  end;
  g
