module Table = Indaas_util.Table
module Lint_diagnostic = Indaas_lint.Diagnostic

let braces names = "{" ^ String.concat ", " names ^ "}"

let opt_float = function
  | None -> "-"
  | Some f -> Printf.sprintf "%.6g" f

let render_deployment ?(max_rgs = 20) (r : Audit.deployment_report) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Deployment: %s\n" (braces r.Audit.servers));
  Buffer.add_string buf
    (Printf.sprintf "  fault graph: %s\n"
       (Format.asprintf "%a" Indaas_faultgraph.Graph.pp r.Audit.graph));
  Buffer.add_string buf
    (Printf.sprintf "  risk groups: %d (expected minimal size %d)\n"
       (List.length r.Audit.ranked) r.Audit.expected_rg_size);
  Buffer.add_string buf
    (Printf.sprintf "  unexpected RGs: %d\n" (List.length r.Audit.unexpected));
  Buffer.add_string buf
    (Printf.sprintf "  independence score: %.6g\n" r.Audit.independence_score);
  (match r.Audit.failure_probability with
  | Some p -> Buffer.add_string buf (Printf.sprintf "  Pr(deployment fails): %.6g\n" p)
  | None -> ());
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  lint: %s %s: %s\n" d.Lint_diagnostic.code
           (Lint_diagnostic.severity_to_string d.Lint_diagnostic.severity)
           d.Lint_diagnostic.message))
    r.Audit.diagnostics;
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "rank"; "risk group"; "size"; "Pr(C)"; "importance" ]
  in
  List.iteri
    (fun i (rg : Rank.ranked) ->
      if i < max_rgs then
        Table.add_row t
          [
            string_of_int (i + 1);
            braces rg.Rank.rg_names;
            string_of_int rg.Rank.size;
            opt_float rg.Rank.probability;
            opt_float rg.Rank.importance;
          ])
    r.Audit.ranked;
  Buffer.add_string buf (Table.render t);
  if List.length r.Audit.ranked > max_rgs then
    Buffer.add_string buf
      (Printf.sprintf "\n  (%d more risk groups omitted)"
         (List.length r.Audit.ranked - max_rgs));
  Buffer.contents buf

let summary_line (r : Audit.deployment_report) =
  Printf.sprintf "%s: %d RGs, %d unexpected, score %.6g%s"
    (braces r.Audit.servers)
    (List.length r.Audit.ranked)
    (List.length r.Audit.unexpected)
    r.Audit.independence_score
    (match r.Audit.failure_probability with
    | Some p -> Printf.sprintf ", Pr(fail) %.6g" p
    | None -> "")

let render_comparison ?(max_rows = 30) reports =
  let t =
    Table.create
      ~aligns:
        [ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "rank"; "deployment"; "#RGs"; "#unexpected"; "score"; "Pr(fail)" ]
  in
  List.iteri
    (fun i (r : Audit.deployment_report) ->
      if i < max_rows then
        Table.add_row t
          [
            string_of_int (i + 1);
            braces r.Audit.servers;
            string_of_int (List.length r.Audit.ranked);
            string_of_int (List.length r.Audit.unexpected);
            Printf.sprintf "%.6g" r.Audit.independence_score;
            opt_float r.Audit.failure_probability;
          ])
    reports;
  let rendered = Table.render t in
  if List.length reports > max_rows then
    rendered
    ^ Printf.sprintf "\n(%d more deployments omitted)"
        (List.length reports - max_rows)
  else rendered

module Json = Indaas_util.Json

let ranked_to_json (rg : Rank.ranked) =
  Json.Obj
    [
      ("components", Json.List (List.map (fun n -> Json.String n) rg.Rank.rg_names));
      ("size", Json.Int rg.Rank.size);
      ( "probability",
        match rg.Rank.probability with Some p -> Json.Float p | None -> Json.Null );
      ( "importance",
        match rg.Rank.importance with Some i -> Json.Float i | None -> Json.Null );
    ]

let deployment_to_json (r : Audit.deployment_report) =
  Json.Obj
    [
      ("servers", Json.List (List.map (fun s -> Json.String s) r.Audit.servers));
      ("expected_rg_size", Json.Int r.Audit.expected_rg_size);
      ("risk_groups", Json.List (List.map ranked_to_json r.Audit.ranked));
      ("unexpected", Json.List (List.map ranked_to_json r.Audit.unexpected));
      ("independence_score", Json.Float r.Audit.independence_score);
      ( "failure_probability",
        match r.Audit.failure_probability with
        | Some p -> Json.Float p
        | None -> Json.Null );
      ( "diagnostics",
        Json.List (List.map Lint_diagnostic.to_json r.Audit.diagnostics) );
    ]

let comparison_to_json reports =
  Json.List (List.map deployment_to_json reports)
