(** The Structural Independence Auditing protocol (paper §4.1):
    build the dependency graph, determine risk groups, rank them, and
    produce a report — for one deployment or across all candidate
    deployments. *)

module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset
module Bdd = Indaas_faultgraph.Bdd
module Sampling = Indaas_faultgraph.Sampling

(** Pluggable RG-determination backend (§4.1.2). The three exact
    backends return the identical family in identical order. *)
type rg_algorithm =
  | Minimal_rg of { max_size : int option; max_family : int option }
      (** bottom-up enumeration with absorption; exact, worst-case
          exponential, raises {!Cutset.Too_many_cut_sets} past the
          family budget *)
  | Minimal_rg_bdd of { max_size : int option }
      (** exact symbolic extraction: BDD compilation + Rauzy's
          minimal-solutions pass ({!Bdd.minimal_risk_groups}) —
          no family budget, slower on small sparse graphs *)
  | Auto_rg of { max_size : int option; max_family : int option }
      (** enumeration first; falls back to the BDD engine when the
          enumeration budget trips *)
  | Failure_sampling of Sampling.config  (** linear-time, incomplete *)

val minimal_rg : rg_algorithm
(** [Minimal_rg] with no size bound and the default family budget. *)

val minimal_rg_bdd : rg_algorithm
(** [Minimal_rg_bdd] with no size bound. *)

val auto_rg : rg_algorithm
(** [Auto_rg] with no size bound and the default family budget. *)

val failure_sampling : rounds:int -> rg_algorithm
(** Sampling with the paper's fair coins and witness shrinking. *)

(** Ranking discipline (§4.1.3). *)
type ranking = Size_based | Probability_based

type request = {
  spec : Builder.spec;
  algorithm : rg_algorithm;
  ranking : ranking;
  top_n : int option;  (** RGs included in the independence score *)
}

val request :
  ?required:int ->
  ?component_probability:(string -> float option) ->
  ?algorithm:rg_algorithm ->
  ?ranking:ranking ->
  ?top_n:int ->
  string list ->
  request
(** Defaults: exact minimal-RG algorithm, size-based ranking, all RGs
    scored. *)

type deployment_report = {
  servers : string list;
  graph : Graph.t;
  ranked : Rank.ranked list;
  unexpected : Rank.ranked list;
      (** minimal RGs smaller than the intended size — empty for a
          truly independent deployment *)
  independence_score : float;
  failure_probability : float option;
      (** [Pr(T)] when probability ranking was used *)
  expected_rg_size : int;
  diagnostics : Indaas_lint.Diagnostic.t list;
      (** static-analysis findings over the deployment's fault graph
          (error and warning severities; hints are dropped) — the
          linter's structural pre-checks attached to every report *)
}

val audit :
  ?rng:Indaas_util.Prng.t -> Indaas_depdata.Depdb.t -> request -> deployment_report
(** Audit one deployment. [rng] drives sampling and Monte-Carlo
    estimation (defaults to a fixed seed for reproducibility). *)

val compare_reports : deployment_report -> deployment_report -> int
(** Deployment preference order for the final report: fewest
    unexpected RGs first, then lower failure probability (when
    available), then higher independence score, then server names. *)

val audit_candidates :
  ?rng:Indaas_util.Prng.t ->
  Indaas_depdata.Depdb.t ->
  candidates:string list list ->
  request ->
  deployment_report list
(** Audits every candidate server set (the request's own server list
    is ignored) and returns the reports best-first. This is how the
    client picks “the most independent redundancy deployment”
    (§4.1.4). *)

val choose_best :
  ?rng:Indaas_util.Prng.t ->
  Indaas_depdata.Depdb.t ->
  candidates:string list list ->
  request ->
  deployment_report
(** First element of {!audit_candidates}. Raises [Invalid_argument]
    on an empty candidate list. *)
