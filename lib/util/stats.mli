(** Small statistics helpers used by benchmarks and reports. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val stddev : float array -> float

val median : float array -> float
(** Median (average of middle pair for even lengths). Does not modify
    its argument. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in \[0,100\], nearest-rank with linear
    interpolation. *)

val min_max : float array -> float * float

val sum : float array -> float

val histogram : bins:int -> float array -> (float * int) array
(** [histogram ~bins xs] returns [(left_edge, count)] pairs covering
    the data range with [bins] equal-width bins. *)

module Welford : sig
  (** Streaming mean/variance accumulator. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  val mean : t -> float
  (** Raises [Invalid_argument] on an empty accumulator — the same
      contract as {!Stats.mean} on an empty array. *)

  val variance : t -> float
  val stddev : t -> float
end
