let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_only f = snd (time f)

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* NaN fails every comparison and negatives fall through to the
   microsecond branch, so both used to print garbage ("0m0-5e+06s",
   "-2000000us"); handle the degenerate inputs before the unit
   ladder. *)
let rec format_seconds s =
  if Float.is_nan s then "nan"
  else if s < 0. then "-" ^ format_seconds (-.s)
  else if s = Float.infinity then "inf"
  else if s = 0. then "0s"
  else if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.1fms" (s *. 1e3)
  else if s < 60. then Printf.sprintf "%.2fs" s
  else
    let minutes = int_of_float (s /. 60.) in
    let rest = s -. (float_of_int minutes *. 60.) in
    Printf.sprintf "%dm%02.0fs" minutes rest

let format_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%dB" n
  else if f < 1024. *. 1024. then Printf.sprintf "%.1fKB" (f /. 1024.)
  else if f < 1024. *. 1024. *. 1024. then
    Printf.sprintf "%.2fMB" (f /. (1024. *. 1024.))
  else Printf.sprintf "%.2fGB" (f /. (1024. *. 1024. *. 1024.))
