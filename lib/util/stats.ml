let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty array")

let sum xs = Array.fold_left ( +. ) 0. xs

let mean xs =
  check_nonempty "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let median xs =
  check_nonempty "median" xs;
  let c = sorted_copy xs in
  let n = Array.length c in
  if n mod 2 = 1 then c.(n / 2) else (c.((n / 2) - 1) +. c.(n / 2)) /. 2.

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let c = sorted_copy xs in
  let n = Array.length c in
  if n = 1 then c.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    c.(lo) +. (frac *. (c.(hi) -. c.(lo)))

let min_max xs =
  check_nonempty "min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0))
    xs

let histogram ~bins xs =
  check_nonempty "histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = if i >= bins then bins - 1 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n

  let mean t =
    (* Raising matches Stats.mean on an empty array: a silent nan
       poisons downstream aggregates instead of failing at the source. *)
    if t.n = 0 then invalid_arg "Stats.Welford.mean: empty accumulator"
    else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
end
