(** Minimal JSON emitter (no parser) for machine-readable reports.

    Deliberately tiny: auditing reports need to be consumed by
    dashboards and ticketing systems, not round-tripped. Numbers are
    emitted with enough precision to reconstruct doubles; strings are
    escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two-space
    indentation. Raises [Invalid_argument] on NaN or infinite floats
    (they have no JSON representation). *)

val escape_string : string -> string
(** The quoted, escaped form of a string literal. *)

(** {1 Parsing}

    A strict RFC 8259 recursive-descent parser, added so diagnostics
    (and other machine-readable reports) can be round-tripped in
    tests and consumed back from files. *)

exception Parse_error of string

val of_string : string -> t
(** Parses one JSON document. Numbers without [.]/[e] parse as {!Int},
    all others as {!Float}; [\u] escapes decode to UTF-8, pairing
    UTF-16 surrogates into a single astral-plane code point and
    rejecting lone surrogates. Raises {!Parse_error} on malformed
    input or trailing garbage. *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an {!Obj}, [None] when
    absent or when [json] is not an object. *)

val to_string_exn : string -> t option -> string
(** [to_string_exn name field] unwraps [Some (String s)]; raises
    {!Parse_error} mentioning [name] otherwise. Decoder helper. *)

val to_int_exn : string -> t option -> int
(** Same for integers. *)
