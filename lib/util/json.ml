type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  if Float.is_nan f || not (Float.is_finite f) then
    invalid_arg "Json: non-finite float"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = false) value =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        newline ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (key, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            Buffer.add_string buf (escape_string key);
            Buffer.add_string buf (if indent then ": " else ":");
            emit (depth + 1) v)
          fields;
        newline ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 value;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Recursive-descent parser over the string; [pos] is the cursor. Kept
   deliberately strict: it accepts exactly RFC 8259 JSON, which is all
   {!to_string} ever emits. *)
let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_error "Json.of_string: expected %C at %d, got %C" c !pos c'
    | None -> parse_error "Json.of_string: expected %C, got end of input" c
  in
  let expect_word w value =
    if !pos + String.length w <= len && String.sub s !pos (String.length w) = w
    then begin
      pos := !pos + String.length w;
      value
    end
    else parse_error "Json.of_string: invalid literal at %d" !pos
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then parse_error "Json.of_string: unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= len then parse_error "Json.of_string: unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             let hex_escape () =
               if !pos + 4 > len then
                 parse_error "Json.of_string: truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               match int_of_string_opt ("0x" ^ hex) with
               | Some c -> c
               | None -> parse_error "Json.of_string: bad \\u escape %S" hex
             in
             let code = hex_escape () in
             (* UTF-16 surrogate pairs encode one astral-plane code
                point across two \u escapes; either half alone is not
                a character (RFC 8259 §7). *)
             if code >= 0xD800 && code <= 0xDBFF then begin
               if
                 not
                   (!pos + 1 < len && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
               then
                 parse_error
                   "Json.of_string: lone high surrogate \\u%04X" code;
               pos := !pos + 2;
               let low = hex_escape () in
               if low < 0xDC00 || low > 0xDFFF then
                 parse_error
                   "Json.of_string: high surrogate \\u%04X followed by \
                    \\u%04X, not a low surrogate"
                   code low;
               add_utf8 buf
                 (0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00)))
             end
             else if code >= 0xDC00 && code <= 0xDFFF then
               parse_error "Json.of_string: lone low surrogate \\u%04X" code
             else add_utf8 buf code
         | e -> parse_error "Json.of_string: bad escape \\%c" e);
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < len
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_error "Json.of_string: bad number %S" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer literal too wide for [int]: keep it as a float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> parse_error "Json.of_string: bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "Json.of_string: empty input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> expect_word "true" (Bool true)
    | Some 'f' -> expect_word "false" (Bool false)
    | Some 'n' -> expect_word "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (key, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some '-' | Some ('0' .. '9') -> parse_number ()
    | Some c -> parse_error "Json.of_string: unexpected %C at %d" c !pos
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then
    parse_error "Json.of_string: trailing garbage at %d" !pos;
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_exn name = function
  | Some (String s) -> s
  | _ -> parse_error "Json: expected string field %S" name

let to_int_exn name = function
  | Some (Int i) -> i
  | _ -> parse_error "Json: expected int field %S" name
