(** Wall-clock timing helpers for the benchmark harness. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns the result together with the
    elapsed wall-clock seconds. *)

val time_only : (unit -> 'a) -> float
(** [time_only f] is [snd (time f)]. *)

val now_ns : unit -> int64
(** Wall-clock nanoseconds since the epoch (microsecond resolution —
    the granularity of [Unix.gettimeofday]). The timestamp source of
    the real-clock observability spans in [lib/obs]. *)

val format_seconds : float -> string
(** Human-readable duration: ["735us"], ["12.3ms"], ["4.56s"],
    ["3m12s"]. Degenerate inputs stay readable: ["0s"], ["nan"],
    ["inf"], and negative durations render as ["-"] plus the
    magnitude. *)

val format_bytes : int -> string
(** Human-readable byte count: ["512B"], ["13.2KB"], ["4.7MB"]. *)
