(** Rendering of lint findings: ASCII table for humans, JSON for
    machines, and the severity-based process exit code. *)

val render : Diagnostic.t list -> string
(** Findings as a [code | severity | location | message] table
    followed by a summary line; ["no findings"] when empty. The input
    is sorted and de-duplicated first (errors lead). *)

val summary : Diagnostic.t list -> string
(** E.g. ["2 errors, 1 warning, 0 hints"]. *)

val to_json : Diagnostic.t list -> Indaas_util.Json.t
(** An object with a [summary] (per-severity counts) and the sorted
    [diagnostics] array, each via {!Diagnostic.to_json}. *)

val exit_code : Diagnostic.t list -> int
(** [1] when any finding is an [Error], [0] otherwise — warnings and
    hints never fail a run. *)
