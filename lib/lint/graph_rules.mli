(** Static checks over fault graphs (paper §4.1.1).

    Checks run over a lightweight {!view} rather than over
    {!Indaas_faultgraph.Graph.t} directly: the sealed graph type
    cannot represent most of the defects these rules look for (its
    builder rejects them at construction time), but a view can — which
    keeps every rule exercisable in tests and lets the linter act as
    defense in depth for graphs deserialized from elsewhere.

    Codes and default severities:
    - [IND-G001] (error) [Kofn k] gate with [k < 1] or [k] exceeding
      the child count.
    - [IND-G002] (error) gate with no children.
    - [IND-G003] (hint) gate with exactly one child (pass-through).
    - [IND-G004] (error) basic-event probability outside \[0, 1\].
    - [IND-G005] (warning) node unreachable from the top event.
    - [IND-G006] (warning) single point of failure: a basic event
      whose lone failure fires the top event — a size-1 risk group
      detected by direct evaluation, without running the cut-set
      algorithm.
    - [IND-G007] (error) fault-graph construction failure; emitted by
      {!Lint.construction_failure}, never by a view rule. *)

type vnode = {
  id : int;
  name : string;
  kind : Indaas_faultgraph.Graph.node_kind;
  children : int list;
}

type view = { nodes : vnode list; top : int }

val of_graph : Indaas_faultgraph.Graph.t -> view
(** The exact node table and top event of a sealed graph. *)

val rules : view Rule.t list

val single_points_of_failure : view -> string list
(** Names of the basic events flagged by [IND-G006], sorted and
    duplicate-free — the SPOF pre-check on its own. *)
