(** Lint findings — the currency of the static-analysis engine.

    Every check emits zero or more diagnostics. A diagnostic carries a
    {e stable} error code (e.g. [IND-D004]) so reports can be filtered,
    suppressed and documented; a severity; a human message; and a
    structured location pointing at the offending dependency record,
    fault-graph node, machine or link. *)

type severity = Error | Warning | Hint

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["hint"]. *)

val severity_of_string : string -> severity
(** Inverse of {!severity_to_string}; raises [Failure] otherwise. *)

val severity_rank : severity -> int
(** [Error] ranks 0 (most severe), then [Warning], then [Hint]. *)

(** Where a finding points. [Record] carries the offending dependency
    record itself (re-rendered in the Table 1 wire format for
    display); [Node] a fault-graph node; [Machine] a machine or
    component identifier; [Link] an attachment or adjacency; [Whole]
    the artifact as a whole. *)
type location =
  | Record of Indaas_depdata.Dependency.t
  | Node of { id : int; name : string }
  | Machine of string
  | Link of string * string
  | Whole

type t = {
  code : string;  (** stable identifier, [IND-<area><number>] *)
  severity : severity;
  message : string;
  location : location;
}

val make : code:string -> severity:severity -> location:location -> string -> t

val equal : t -> t -> bool
val compare : t -> t -> int
(** Orders by severity (errors first), then code, then location, then
    message — the order reports are rendered in. *)

val location_to_string : location -> string
(** Short display form, e.g. [record <pgm="Riak1" .../>] or
    [node 3 "ToR1"]. *)

val pp : Format.formatter -> t -> unit
(** [IND-D004 error @ <loc>: <message>]. *)

val to_json : t -> Indaas_util.Json.t
val of_json : Indaas_util.Json.t -> t
(** Inverse of {!to_json}; raises [Indaas_util.Json.Parse_error] or
    [Failure] on malformed input. [of_json (to_json d) = d] for every
    diagnostic. *)
