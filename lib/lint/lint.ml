module D = Diagnostic

type target =
  | Db of Indaas_depdata.Depdb.t
  | Fault_graph of Indaas_faultgraph.Graph.t
  | Graph_view of Graph_rules.view
  | Topology of Topo_rules.view

let construction_failure msg =
  D.make ~code:"IND-G007" ~severity:D.Error ~location:D.Whole
    (Printf.sprintf "fault-graph construction failed: %s" msg)

let g007_registry_row =
  ("IND-G007", D.Error, "fault-graph construction raised instead of building")

let degraded_collection ~completeness ~failed_sources =
  D.make ~code:"IND-R001" ~severity:D.Warning ~location:D.Whole
    (Printf.sprintf
       "report produced from a degraded collection (completeness %.2f%s); \
        missing dependency data can only overestimate independence"
       completeness
       (match failed_sources with
       | [] -> ""
       | l -> "; failed sources: " ^ String.concat ", " l))

let r001_registry_row =
  ( "IND-R001",
    D.Warning,
    "deployment report produced from a degraded dependency collection" )

let no_collector_spans =
  D.make ~code:"IND-O001" ~severity:D.Warning ~location:D.Whole
    "observability is enabled but the audit recorded no collector spans; \
     the trace is missing per-source collection accounting"

let o001_registry_row =
  ( "IND-O001",
    D.Warning,
    "report emitted with observability on but zero recorded collector spans" )

let registry =
  List.map Rule.describe Depdb_rules.rules
  @ List.map Rule.describe Graph_rules.rules
  @ [ g007_registry_row; r001_registry_row; o001_registry_row ]
  @ List.map Rule.describe Topo_rules.rules
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let run ?(disable = []) targets =
  let disabled code = List.mem code disable in
  List.concat_map
    (fun target ->
      match target with
      | Db db -> Rule.apply ~disabled Depdb_rules.rules db
      | Fault_graph g ->
          Rule.apply ~disabled Graph_rules.rules (Graph_rules.of_graph g)
      | Graph_view view -> Rule.apply ~disabled Graph_rules.rules view
      | Topology view -> Rule.apply ~disabled Topo_rules.rules view)
    targets
  |> List.sort_uniq D.compare

let lint_db ?disable db =
  run ?disable [ Db db; Topology (Topo_rules.of_db db) ]

let errors ds = List.filter (fun d -> d.D.severity = D.Error) ds
