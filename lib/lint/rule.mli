(** The rule registry backbone: a lint rule is a named, documented
    check over one kind of input, producing {!Diagnostic.t}s that all
    carry the rule's stable code and default severity.

    Rules are first-class values so the rule table is extensible (new
    checks register by appearing in a list) and individually
    suppressible ([--disable IND-D003] filters by code without
    touching the table). *)

type 'a t = {
  code : string;  (** stable, e.g. [IND-D001] *)
  severity : Diagnostic.severity;  (** severity of its findings *)
  title : string;  (** one-line summary for registry listings *)
  check : 'a -> Diagnostic.t list;
}

val make :
  code:string ->
  severity:Diagnostic.severity ->
  title:string ->
  ('a -> Diagnostic.t list) ->
  'a t

val diag :
  'a t ->
  ?severity:Diagnostic.severity ->
  location:Diagnostic.location ->
  ('b, unit, string, Diagnostic.t) format4 ->
  'b
(** [diag rule ~location fmt ...] builds a finding stamped with the
    rule's code and (default) severity. *)

val apply : disabled:(string -> bool) -> 'a t list -> 'a -> Diagnostic.t list
(** Runs every non-disabled rule of the table over the input and
    concatenates the findings. *)

val describe : 'a t -> string * Diagnostic.severity * string
(** [(code, severity, title)] — one registry row. *)
