module Depdb = Indaas_depdata.Depdb
module Dependency = Indaas_depdata.Dependency
module Fattree = Indaas_topology.Fattree
module D = Diagnostic

type view = { hosts : (string * string list list) list }

let of_db db =
  let hosts =
    List.filter_map
      (fun machine ->
        match Depdb.network_paths db ~src:machine with
        | [] -> None
        | paths ->
            Some
              ( machine,
                List.map (fun (n : Dependency.network) -> n.Dependency.route) paths
              ))
      (Depdb.machines db)
  in
  { hosts }

let of_fattree t =
  let hosts =
    List.init (Fattree.server_count t) (fun s ->
        (Fattree.server_name t s, Fattree.routes_to_core t ~server:s))
  in
  { hosts }

(* --- IND-T001: partitioned topology ------------------------------------ *)

(* Union-find over host and device names. *)
let components view =
  let parent = Hashtbl.create 64 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None ->
        Hashtbl.replace parent x x;
        x
    | Some p when p = x -> x
    | Some p ->
        let root = find p in
        Hashtbl.replace parent x root;
        root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun (host, routes) ->
      ignore (find host);
      List.iter
        (fun route ->
          ignore
            (List.fold_left
               (fun prev device ->
                 union prev device;
                 device)
               host route))
        routes)
    view.hosts;
  let groups = Hashtbl.create 8 in
  Hashtbl.iter
    (fun x _ ->
      let root = find x in
      let members = Option.value ~default:[] (Hashtbl.find_opt groups root) in
      Hashtbl.replace groups root (x :: members))
    parent;
  Hashtbl.fold (fun _ members acc -> List.sort compare members :: acc) groups []
  |> List.sort compare

let partitioned =
  Rule.make ~code:"IND-T001" ~severity:D.Warning
    ~title:"network topology splits into disconnected islands"
    (fun view ->
      match components view with
      | [] | [ _ ] -> []
      | main :: rest ->
          let show members =
            let shown = List.filteri (fun i _ -> i < 4) members in
            String.concat ", " shown
            ^ if List.length members > 4 then ", ..." else ""
          in
          List.map
            (fun members ->
              D.make ~code:"IND-T001" ~severity:D.Warning
                ~location:(D.Machine (List.hd members))
                (Printf.sprintf
                   "island {%s} has no recorded link to {%s}; the topology is \
                    partitioned"
                   (show members) (show main)))
            rest)

(* --- IND-T002: duplicate host attachments -------------------------------- *)

module SS = Set.Make (String)

let duplicate_attachment =
  Rule.make ~code:"IND-T002" ~severity:D.Warning
    ~title:"host attached to more than one first-hop switch"
    (fun view ->
      List.filter_map
        (fun (host, routes) ->
          let first_hops =
            SS.elements
              (SS.of_list (List.filter_map (function [] -> None | d :: _ -> Some d) routes))
          in
          match first_hops with
          | [] | [ _ ] -> None
          | hops ->
              Some
                (D.make ~code:"IND-T002" ~severity:D.Warning
                   ~location:(D.Machine host)
                   (Printf.sprintf
                      "host %S attaches to %d distinct first-hop switches (%s)"
                      host (List.length hops) (String.concat ", " hops))))
        view.hosts)

let rules = [ partitioned; duplicate_attachment ]
