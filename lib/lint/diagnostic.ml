module Dependency = Indaas_depdata.Dependency
module Json = Indaas_util.Json

type severity = Error | Warning | Hint

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_of_string = function
  | "error" -> Error
  | "warning" -> Warning
  | "hint" -> Hint
  | s -> failwith (Printf.sprintf "Diagnostic.severity_of_string: %S" s)

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

type location =
  | Record of Dependency.t
  | Node of { id : int; name : string }
  | Machine of string
  | Link of string * string
  | Whole

type t = {
  code : string;
  severity : severity;
  message : string;
  location : location;
}

let make ~code ~severity ~location message =
  { code; severity; message; location }

let location_to_string = function
  | Record r -> "record " ^ Dependency.to_xml r
  | Node { id; name } -> Printf.sprintf "node %d %S" id name
  | Machine m -> Printf.sprintf "machine %S" m
  | Link (a, b) -> Printf.sprintf "link %S-%S" a b
  | Whole -> "-"

let compare_location a b =
  let tag = function
    | Record _ -> 0
    | Node _ -> 1
    | Machine _ -> 2
    | Link _ -> 3
    | Whole -> 4
  in
  match (a, b) with
  | Record r1, Record r2 -> Dependency.compare r1 r2
  | Node n1, Node n2 -> compare (n1.id, n1.name) (n2.id, n2.name)
  | Machine m1, Machine m2 -> String.compare m1 m2
  | Link (a1, b1), Link (a2, b2) -> compare (a1, b1) (a2, b2)
  | Whole, Whole -> 0
  | _ -> compare (tag a) (tag b)

let compare a b =
  match compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match String.compare a.code b.code with
      | 0 -> (
          match compare_location a.location b.location with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp fmt d =
  Format.fprintf fmt "%s %s @ %s: %s" d.code
    (severity_to_string d.severity)
    (location_to_string d.location)
    d.message

let location_to_json = function
  | Record r ->
      Json.Obj [ ("kind", Json.String "record");
                 ("record", Json.String (Dependency.to_xml r)) ]
  | Node { id; name } ->
      Json.Obj [ ("kind", Json.String "node");
                 ("id", Json.Int id);
                 ("name", Json.String name) ]
  | Machine m ->
      Json.Obj [ ("kind", Json.String "machine");
                 ("name", Json.String m) ]
  | Link (a, b) ->
      Json.Obj [ ("kind", Json.String "link");
                 ("from", Json.String a);
                 ("to", Json.String b) ]
  | Whole -> Json.Obj [ ("kind", Json.String "whole") ]

let location_of_json j =
  match Json.to_string_exn "kind" (Json.member "kind" j) with
  | "record" ->
      Record (Dependency.of_xml (Json.to_string_exn "record" (Json.member "record" j)))
  | "node" ->
      Node
        {
          id = Json.to_int_exn "id" (Json.member "id" j);
          name = Json.to_string_exn "name" (Json.member "name" j);
        }
  | "machine" -> Machine (Json.to_string_exn "name" (Json.member "name" j))
  | "link" ->
      Link
        ( Json.to_string_exn "from" (Json.member "from" j),
          Json.to_string_exn "to" (Json.member "to" j) )
  | "whole" -> Whole
  | k -> failwith (Printf.sprintf "Diagnostic.location_of_json: kind %S" k)

let to_json d =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_to_string d.severity));
      ("message", Json.String d.message);
      ("location", location_to_json d.location);
    ]

let of_json j =
  match Json.member "location" j with
  | None -> failwith "Diagnostic.of_json: missing location"
  | Some loc ->
      {
        code = Json.to_string_exn "code" (Json.member "code" j);
        severity =
          severity_of_string
            (Json.to_string_exn "severity" (Json.member "severity" j));
        message = Json.to_string_exn "message" (Json.member "message" j);
        location = location_of_json loc;
      }
