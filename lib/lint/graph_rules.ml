module Graph = Indaas_faultgraph.Graph
module D = Diagnostic

type vnode = {
  id : int;
  name : string;
  kind : Graph.node_kind;
  children : int list;
}

type view = { nodes : vnode list; top : int }

let of_graph g =
  let nodes =
    List.init (Graph.node_count g) (fun id ->
        let n = Graph.node g id in
        {
          id = n.Graph.id;
          name = n.Graph.name;
          kind = n.Graph.kind;
          children = Array.to_list n.Graph.children;
        })
  in
  { nodes; top = Graph.top g }

let node_tbl view =
  let tbl = Hashtbl.create (List.length view.nodes) in
  List.iter (fun n -> Hashtbl.replace tbl n.id n) view.nodes;
  tbl

let loc n = D.Node { id = n.id; name = n.name }

(* --- IND-G001 / IND-G002 / IND-G003: degenerate gates ------------------ *)

let kofn_range =
  Rule.make ~code:"IND-G001" ~severity:D.Error
    ~title:"k-of-n gate with k out of range"
    (fun view ->
      List.filter_map
        (fun n ->
          match n.kind with
          | Graph.Gate (Graph.Kofn k)
            when k < 1 || k > List.length n.children ->
              Some
                (D.make ~code:"IND-G001" ~severity:D.Error ~location:(loc n)
                   (Printf.sprintf "gate %S requires %d of %d children; it %s"
                      n.name k (List.length n.children)
                      (if k < 1 then "fires unconditionally (k < 1)"
                       else "can never fire (k exceeds the child count)")))
          | _ -> None)
        view.nodes)

let empty_gate =
  Rule.make ~code:"IND-G002" ~severity:D.Error ~title:"gate with no children"
    (fun view ->
      List.filter_map
        (fun n ->
          match n.kind with
          | Graph.Gate _ when n.children = [] ->
              Some
                (D.make ~code:"IND-G002" ~severity:D.Error ~location:(loc n)
                   (Printf.sprintf
                      "gate %S has no children; it can never propagate a failure"
                      n.name))
          | _ -> None)
        view.nodes)

let single_child_gate =
  Rule.make ~code:"IND-G003" ~severity:D.Hint
    ~title:"gate with exactly one child (pass-through)"
    (fun view ->
      List.filter_map
        (fun n ->
          match n.kind with
          | Graph.Gate _ when List.length n.children = 1 ->
              Some
                (D.make ~code:"IND-G003" ~severity:D.Hint ~location:(loc n)
                   (Printf.sprintf
                      "gate %S has a single child and adds no structure" n.name))
          | _ -> None)
        view.nodes)

(* --- IND-G004: probabilities outside [0, 1] ---------------------------- *)

let probability_range =
  Rule.make ~code:"IND-G004" ~severity:D.Error
    ~title:"basic-event probability outside [0, 1]"
    (fun view ->
      List.filter_map
        (fun n ->
          match n.kind with
          | Graph.Basic (Some p) when not (p >= 0. && p <= 1.) ->
              Some
                (D.make ~code:"IND-G004" ~severity:D.Error ~location:(loc n)
                   (Printf.sprintf
                      "basic event %S has failure probability %g, outside [0, 1]"
                      n.name p))
          | _ -> None)
        view.nodes)

(* --- IND-G005: unreachable nodes ---------------------------------------- *)

let reachable_set view =
  let tbl = node_tbl view in
  let seen = Hashtbl.create (List.length view.nodes) in
  let rec mark id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      match Hashtbl.find_opt tbl id with
      | Some n -> List.iter mark n.children
      | None -> ()
    end
  in
  mark view.top;
  seen

let unreachable =
  Rule.make ~code:"IND-G005" ~severity:D.Warning
    ~title:"node unreachable from the top event"
    (fun view ->
      let seen = reachable_set view in
      List.filter_map
        (fun n ->
          if Hashtbl.mem seen n.id then None
          else
            Some
              (D.make ~code:"IND-G005" ~severity:D.Warning ~location:(loc n)
                 (Printf.sprintf
                    "node %S is not reachable from the top event; every \
                     analysis ignores it"
                    n.name)))
        view.nodes)

(* --- IND-G006: single points of failure ---------------------------------- *)

(* Memoized recursive evaluation over the view with a visiting guard,
   so even malformed (cyclic) views terminate. Empty gates never fire
   (IND-G002 reports them); out-of-range k-of-n uses the natural
   [count >= k] reading (IND-G001 reports it). *)
let evaluate_with view ~failed_id =
  let tbl = node_tbl view in
  let memo = Hashtbl.create 64 in
  let rec eval visiting id =
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
        if List.mem id visiting then false
        else
          let v =
            match Hashtbl.find_opt tbl id with
            | None -> false
            | Some n -> (
                match n.kind with
                | Graph.Basic _ -> id = failed_id
                | Graph.Gate _ when n.children = [] -> false
                | Graph.Gate gate ->
                    let vs = List.map (eval (id :: visiting)) n.children in
                    let count = List.length (List.filter Fun.id vs) in
                    (match gate with
                    | Graph.And -> count = List.length vs
                    | Graph.Or -> count >= 1
                    | Graph.Kofn k -> count >= k))
          in
          Hashtbl.replace memo id v;
          v
  in
  eval [] view.top

let single_points_of_failure view =
  let seen = reachable_set view in
  List.filter_map
    (fun n ->
      match n.kind with
      | Graph.Basic _
        when Hashtbl.mem seen n.id && evaluate_with view ~failed_id:n.id ->
          Some n.name
      | _ -> None)
    view.nodes
  |> List.sort_uniq compare

let spof =
  Rule.make ~code:"IND-G006" ~severity:D.Warning
    ~title:"single point of failure (size-1 risk group)"
    (fun view ->
      let names = single_points_of_failure view in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun n ->
          match n.kind with
          | Graph.Basic _ -> Hashtbl.replace tbl n.name n
          | Graph.Gate _ -> ())
        view.nodes;
      List.map
        (fun name ->
          let location =
            match Hashtbl.find_opt tbl name with
            | Some n -> loc n
            | None -> D.Machine name
          in
          D.make ~code:"IND-G006" ~severity:D.Warning ~location
            (Printf.sprintf
               "component %S alone fails the whole deployment (size-1 risk \
                group)"
               name))
        names)

let rules =
  [ kofn_range; empty_gate; single_child_gate; probability_range; unreachable;
    spof ]
