(** The lint engine entry point: run the registered static checks
    over dependency databases, fault graphs and topologies — without
    executing any audit.

    The rule table is the concatenation of {!Depdb_rules.rules},
    {!Graph_rules.rules} and {!Topo_rules.rules}; every rule is
    individually suppressible by its stable code. *)

type target =
  | Db of Indaas_depdata.Depdb.t
  | Fault_graph of Indaas_faultgraph.Graph.t
  | Graph_view of Graph_rules.view
      (** raw view, for graphs that never went through the builder *)
  | Topology of Topo_rules.view

val registry : (string * Diagnostic.severity * string) list
(** Every registered rule as [(code, default severity, title)], in
    code order — the linter's self-documentation. *)

val run : ?disable:string list -> target list -> Diagnostic.t list
(** Runs every applicable, non-disabled rule over every target and
    returns the sorted, de-duplicated findings (errors first).
    [disable] lists codes to suppress, e.g. [["IND-D003"]]; unknown
    codes are ignored. *)

val lint_db : ?disable:string list -> Indaas_depdata.Depdb.t -> Diagnostic.t list
(** [run] over the database plus the topology its route records imply
    — what [indaas lint --db] executes. *)

val construction_failure : string -> Diagnostic.t
(** The [IND-G007] finding: fault-graph construction raised instead
    of producing a graph. Callers that build graphs from lint targets
    catch [Invalid_argument]/[Failure] and turn the message into this
    diagnostic. *)

val degraded_collection :
  completeness:float -> failed_sources:string list -> Diagnostic.t
(** The [IND-R001] finding: this deployment report was produced from
    a degraded dependency collection (source failures or record
    loss), so its independence verdict is an overestimate. The agent
    attaches it to every report of a degraded run; [--strict] CLI
    users refuse such audits. *)

val no_collector_spans : Diagnostic.t
(** The [IND-O001] finding: a report was emitted with observability
    enabled, yet the run recorded no collector spans — the trace and
    metrics are missing per-source collection accounting (typically a
    sign that collection ran before the registry was enabled). The CLI
    attaches it when [--trace]/[--metrics] is on; suppressible with
    [--disable IND-O001] like every other code. *)

val errors : Diagnostic.t list -> Diagnostic.t list
(** The error-severity findings only. *)
