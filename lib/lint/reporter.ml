module Table = Indaas_util.Table
module Json = Indaas_util.Json
module D = Diagnostic

let sorted ds = List.sort_uniq D.compare ds

let count severity ds =
  List.length (List.filter (fun d -> d.D.severity = severity) ds)

let summary ds =
  let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  Printf.sprintf "%s, %s, %s"
    (plural (count D.Error ds) "error")
    (plural (count D.Warning ds) "warning")
    (plural (count D.Hint ds) "hint")

let render ds =
  match sorted ds with
  | [] -> "no findings"
  | ds ->
      let t =
        Table.create
          ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left ]
          [ "code"; "severity"; "location"; "message" ]
      in
      List.iter
        (fun d ->
          Table.add_row t
            [
              d.D.code;
              D.severity_to_string d.D.severity;
              D.location_to_string d.D.location;
              d.D.message;
            ])
        ds;
      Table.render t ^ "\n" ^ summary ds

let to_json ds =
  let ds = sorted ds in
  Json.Obj
    [
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (count D.Error ds));
            ("warnings", Json.Int (count D.Warning ds));
            ("hints", Json.Int (count D.Hint ds));
          ] );
      ("diagnostics", Json.List (List.map D.to_json ds));
    ]

let exit_code ds = if List.exists (fun d -> d.D.severity = D.Error) ds then 1 else 0
