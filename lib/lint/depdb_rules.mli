(** Static checks over a dependency database (paper §3, Table 1) —
    referential integrity between network, hardware and software
    records, route sanity, and dependency-cycle detection. None of
    them builds a fault graph or runs an audit.

    Codes and default severities:
    - [IND-D001] (error) dangling software host: a software record's
      machine has neither hardware nor network records.
    - [IND-D002] (warning) degenerate route: an empty route (which
      silently disables the server's whole network AND-gate during
      fault-graph construction) or a route that passes through its own
      endpoint.
    - [IND-D003] (warning) duplicate or conflicting routes: the same
      device recorded twice on one route, or two records for the same
      (src, dst) pair traversing the same device set.
    - [IND-D004] (error) cyclic software dependencies.
    - [IND-D005] (error) machine with no usable dependency gate: fault
      graph construction for it raises instead of producing a graph.
    - [IND-D006] (hint) software record with no package dependencies
      (the program becomes its own failure leaf). *)

val rules : Indaas_depdata.Depdb.t Rule.t list
