module Depdb = Indaas_depdata.Depdb
module Dependency = Indaas_depdata.Dependency
module D = Diagnostic

let network_records db =
  List.filter_map
    (function Dependency.Network n -> Some n | _ -> None)
    (Depdb.records db)

let software_records db =
  List.filter_map
    (function Dependency.Software s -> Some s | _ -> None)
    (Depdb.records db)

(* --- IND-D001: dangling software host ------------------------------- *)

let dangling_host =
  Rule.make ~code:"IND-D001" ~severity:D.Error
    ~title:
      "software record hosted on a machine with no hardware or network records"
    (fun db ->
      List.filter_map
        (fun (s : Dependency.software) ->
          if
            Depdb.hardware_of db ~machine:s.Dependency.host = []
            && Depdb.network_paths db ~src:s.Dependency.host = []
          then
            Some
              (D.make ~code:"IND-D001" ~severity:D.Error
                 ~location:(D.Record (Dependency.Software s))
                 (Printf.sprintf
                    "program %S runs on machine %S, but no hardware or \
                     network record describes that machine"
                    s.Dependency.pgm s.Dependency.host))
          else None)
        (software_records db))

(* --- IND-D002: degenerate routes ------------------------------------ *)

let degenerate_route =
  Rule.make ~code:"IND-D002" ~severity:D.Warning
    ~title:"empty or self-referential network route"
    (fun db ->
      List.concat_map
        (fun (n : Dependency.network) ->
          let loc = D.Record (Dependency.Network n) in
          let empty =
            if n.Dependency.route = [] then
              [
                D.make ~code:"IND-D002" ~severity:D.Warning ~location:loc
                  (Printf.sprintf
                     "route %s -> %s has no intermediate devices; fault-graph \
                      construction drops the whole network gate of %S"
                     n.Dependency.src n.Dependency.dst n.Dependency.src);
              ]
            else []
          in
          let self =
            List.filter_map
              (fun endpoint ->
                if List.mem endpoint n.Dependency.route then
                  Some
                    (D.make ~code:"IND-D002" ~severity:D.Warning ~location:loc
                       (Printf.sprintf
                          "route %s -> %s passes through its own endpoint %S"
                          n.Dependency.src n.Dependency.dst endpoint))
                else None)
              [ n.Dependency.src; n.Dependency.dst ]
          in
          empty @ self)
        (network_records db))

(* --- IND-D003: duplicate or conflicting routes ----------------------- *)

module SS = Set.Make (String)

let duplicate_routes =
  Rule.make ~code:"IND-D003" ~severity:D.Warning
    ~title:"duplicate device on a route, or two routes over the same device set"
    (fun db ->
      let repeated =
        List.filter_map
          (fun (n : Dependency.network) ->
            let dups =
              List.filter
                (fun d ->
                  List.length (List.filter (String.equal d) n.Dependency.route) > 1)
                (SS.elements (SS.of_list n.Dependency.route))
            in
            match dups with
            | [] -> None
            | d :: _ ->
                Some
                  (D.make ~code:"IND-D003" ~severity:D.Warning
                     ~location:(D.Record (Dependency.Network n))
                     (Printf.sprintf "route %s -> %s lists device %S twice"
                        n.Dependency.src n.Dependency.dst d)))
          (network_records db)
      in
      (* Two records for the same (src, dst) with equal device sets:
         they cannot be distinct redundant paths, so the AND over
         paths is weaker than the data suggests. *)
      let seen = Hashtbl.create 16 in
      let conflicting =
        List.filter_map
          (fun (n : Dependency.network) ->
            let key =
              ( n.Dependency.src,
                n.Dependency.dst,
                SS.elements (SS.of_list n.Dependency.route) )
            in
            if Hashtbl.mem seen key then
              Some
                (D.make ~code:"IND-D003" ~severity:D.Warning
                   ~location:(D.Record (Dependency.Network n))
                   (Printf.sprintf
                      "route %s -> %s traverses the same device set as an \
                       earlier record; it adds no path redundancy"
                      n.Dependency.src n.Dependency.dst))
            else begin
              Hashtbl.add seen key ();
              None
            end)
          (network_records db)
      in
      repeated @ conflicting)

(* --- IND-D004: cyclic software dependencies --------------------------- *)

let software_cycles =
  Rule.make ~code:"IND-D004" ~severity:D.Error
    ~title:"cyclic software dependencies"
    (fun db ->
      (* Edges pgm -> dep, restricted to deps that are themselves
         recorded programs. Colored DFS; each cycle is reported once,
         keyed by its member set. *)
      let sw = software_records db in
      let is_pgm p = Depdb.software_named db ~pgm:p <> [] in
      let adj = Hashtbl.create 16 in
      List.iter
        (fun (s : Dependency.software) ->
          let deps = List.filter is_pgm s.Dependency.deps in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt adj s.Dependency.pgm)
          in
          Hashtbl.replace adj s.Dependency.pgm (prev @ deps))
        sw;
      let color = Hashtbl.create 16 in (* 1 = on stack, 2 = done *)
      let reported = Hashtbl.create 4 in
      let findings = ref [] in
      let rec visit stack p =
        match Hashtbl.find_opt color p with
        | Some 2 -> ()
        | Some _ ->
            (* Back edge: the cycle is the stack suffix from [p]. *)
            let rec take acc = function
              | [] -> acc
              | q :: rest -> if q = p then q :: acc else take (q :: acc) rest
            in
            let cycle = take [] stack in
            let key = List.sort compare cycle in
            if not (Hashtbl.mem reported key) then begin
              Hashtbl.add reported key ();
              let loc =
                match Depdb.software_named db ~pgm:p with
                | s :: _ -> D.Record (Dependency.Software s)
                | [] -> D.Machine p
              in
              findings :=
                D.make ~code:"IND-D004" ~severity:D.Error ~location:loc
                  (Printf.sprintf "cyclic software dependency: %s -> %s"
                     (String.concat " -> " cycle) p)
                :: !findings
            end
        | None ->
            Hashtbl.replace color p 1;
            List.iter
              (visit (p :: stack))
              (Option.value ~default:[] (Hashtbl.find_opt adj p));
            Hashtbl.replace color p 2
      in
      List.iter (fun (s : Dependency.software) -> visit [] s.Dependency.pgm) sw;
      List.rev !findings)

(* --- IND-D005: machine with no usable dependency gate ------------------ *)

let unbuildable_machine =
  Rule.make ~code:"IND-D005" ~severity:D.Error
    ~title:"machine whose records yield no usable dependency gate"
    (fun db ->
      List.filter_map
        (fun machine ->
          let hw = Depdb.hardware_of db ~machine in
          let sw = Depdb.software_on db ~machine in
          let paths = Depdb.network_paths db ~src:machine in
          let network_usable =
            paths <> []
            && List.for_all
                 (fun (n : Dependency.network) -> n.Dependency.route <> [])
                 paths
          in
          if hw = [] && sw = [] && not network_usable then
            Some
              (D.make ~code:"IND-D005" ~severity:D.Error
                 ~location:(D.Machine machine)
                 (Printf.sprintf
                    "machine %S has no hardware, software or complete network \
                     dependencies; building its fault graph raises instead of \
                     auditing"
                    machine))
          else None)
        (Depdb.machines db))

(* --- IND-D006: program with no recorded packages ----------------------- *)

let leaf_program =
  Rule.make ~code:"IND-D006" ~severity:D.Hint
    ~title:"software record with an empty dependency list"
    (fun db ->
      List.filter_map
        (fun (s : Dependency.software) ->
          if s.Dependency.deps = [] then
            Some
              (D.make ~code:"IND-D006" ~severity:D.Hint
                 ~location:(D.Record (Dependency.Software s))
                 (Printf.sprintf
                    "program %S has no recorded package dependencies; it is \
                     modelled as its own failure leaf"
                    s.Dependency.pgm))
          else None)
        (software_records db))

let rules =
  [
    dangling_host;
    degenerate_route;
    duplicate_routes;
    software_cycles;
    unbuildable_machine;
    leaf_program;
  ]
