type 'a t = {
  code : string;
  severity : Diagnostic.severity;
  title : string;
  check : 'a -> Diagnostic.t list;
}

let make ~code ~severity ~title check = { code; severity; title; check }

let diag rule ?severity ~location fmt =
  Printf.ksprintf
    (fun message ->
      Diagnostic.make ~code:rule.code
        ~severity:(Option.value severity ~default:rule.severity)
        ~location message)
    fmt

let apply ~disabled rules input =
  List.concat_map
    (fun rule -> if disabled rule.code then [] else rule.check input)
    rules

let describe rule = (rule.code, rule.severity, rule.title)
