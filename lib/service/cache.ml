module Json = Indaas_util.Json
module Obs = Indaas_obs.Registry

type key = {
  snapshot_digest : string;
  spec_digest : string;
  engine : string;
  budget : int option;
}

type entry = { value : Json.t; mutable used : int }

type t = {
  capacity : int;
  table : (key, entry) Hashtbl.t;
  mutable tick : int;  (** recency counter — deterministic LRU order *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidated : int;
  mutable evicted : int;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    invalidated = 0;
    evicted = 0;
  }

let touch t e =
  t.tick <- t.tick + 1;
  e.used <- t.tick

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      Obs.incr "service.cache.hit";
      touch t e;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      Obs.incr "service.cache.miss";
      None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, used) when used <= e.used -> acc
        | _ -> Some (key, e.used))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evicted <- t.evicted + 1;
      Obs.incr "service.cache.evicted"
  | None -> ()

let add t key value =
  if Hashtbl.mem t.table key then Hashtbl.remove t.table key
  else if Hashtbl.length t.table >= t.capacity then evict_lru t;
  let e = { value; used = 0 } in
  touch t e;
  Hashtbl.replace t.table key e

let invalidate_snapshot t ~digest =
  let doomed =
    Hashtbl.fold
      (fun key _ acc ->
        if key.snapshot_digest = digest then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  let n = List.length doomed in
  t.invalidated <- t.invalidated + n;
  if n > 0 then Obs.incr ~by:n "service.cache.invalidated";
  n

type stats = {
  entries : int;
  hits : int;
  misses : int;
  invalidated : int;
  evicted : int;
}

let stats t =
  {
    entries = Hashtbl.length t.table;
    hits = t.hits;
    misses = t.misses;
    invalidated = t.invalidated;
    evicted = t.evicted;
  }

let stats_to_json s =
  Json.Obj
    [
      ("entries", Json.Int s.entries);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("invalidated", Json.Int s.invalidated);
      ("evicted", Json.Int s.evicted);
    ]
