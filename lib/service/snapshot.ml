module Depdb = Indaas_depdata.Depdb
module Dependency = Indaas_depdata.Dependency
module Json = Indaas_util.Json
module SM = Map.Make (String)

type snap = { version : int; by_source : Dependency.t list SM.t }
type store = { mutable snaps : snap SM.t }

type view = {
  name : string;
  version : int;
  digest : string;
  db : Depdb.t;
  sources : (string * int) list;
}

let create () = { snaps = SM.empty }

(* Sources merge in name order, so the union DepDB (and with it record
   iteration order everywhere downstream) is a pure function of the
   snapshot's contents, not of submission history. The digest is
   order-invariant anyway; this keeps reports deterministic too. *)
let view_of ~name snap =
  let db = Depdb.create () in
  SM.iter (fun _ records -> Depdb.add_all db records) snap.by_source;
  {
    name;
    version = snap.version;
    digest = Depdb.digest db;
    db;
    sources = SM.bindings (SM.map List.length snap.by_source);
  }

let submit store ~snapshot ~source records =
  let prev =
    match SM.find_opt snapshot store.snaps with
    | Some s -> s
    | None -> { version = 0; by_source = SM.empty }
  in
  let by_source =
    match records with
    | [] -> SM.remove source prev.by_source
    | records -> SM.add source records prev.by_source
  in
  let snap = { version = prev.version + 1; by_source } in
  store.snaps <- SM.add snapshot snap store.snaps;
  view_of ~name:snapshot snap

let get store ~snapshot =
  Option.map (view_of ~name:snapshot) (SM.find_opt snapshot store.snaps)

let names store = List.map fst (SM.bindings store.snaps)

let to_json store =
  Json.List
    (List.map
       (fun (name, snap) ->
         let v = view_of ~name snap in
         Json.Obj
           [
             ("snapshot", Json.String name);
             ("version", Json.Int v.version);
             ("digest", Json.String v.digest);
             ("records", Json.Int (Depdb.size v.db));
             ( "sources",
               Json.Obj
                 (List.map (fun (s, n) -> (s, Json.Int n)) v.sources) );
           ])
       (SM.bindings store.snaps))
