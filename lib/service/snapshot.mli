(** Versioned in-memory DepDB snapshots with incremental delta
    submissions.

    Providers submit dependency records per {e source} (a data-source
    name); a snapshot is the union of its sources' current records.
    Re-submitting one source replaces only that source's records — a
    provider updates one collector's view without re-uploading the
    world. Every accepted submission bumps the snapshot's version and
    recomputes its content digest ({!Indaas_depdata.Depdb.digest}),
    which is what audit result caching keys on: a delta that does not
    change the record set keeps the digest, so cached results stay
    valid. *)

module Depdb := Indaas_depdata.Depdb
module Dependency := Indaas_depdata.Dependency

type store

type view = {
  name : string;
  version : int;  (** 1 on first submission, +1 per accepted delta *)
  digest : string;  (** canonical content digest of [db] *)
  db : Depdb.t;  (** union of all sources, rebuilt per delta *)
  sources : (string * int) list;
      (** source name -> record count, sorted by name *)
}

val create : unit -> store

val submit :
  store -> snapshot:string -> source:string -> Dependency.t list -> view
(** Replace [source]'s records inside [snapshot] (creating either as
    needed) and return the new view. Submitting an empty list drops
    the source. *)

val get : store -> snapshot:string -> view option

val names : store -> string list
(** Snapshot names, sorted. *)

val to_json : store -> Indaas_util.Json.t
(** Per-snapshot version/digest/source summary (for the [stats]
    method), snapshots in name order. *)
