type t = {
  read : bytes -> int -> int -> int;
  write : string -> unit;
  close : unit -> unit;
}

let of_channels ic oc =
  {
    read =
      (fun buf off len ->
        match input ic buf off len with n -> n | exception End_of_file -> 0);
    write =
      (fun s ->
        output_string oc s;
        flush oc);
    close = (fun () -> flush oc);
  }

(* One direction of the loopback: a growable byte queue with an EOF
   mark. *)
type pipe = {
  data : Buffer.t;
  mutable pos : int;  (** bytes already consumed from [data] *)
  mutable closed : bool;
}

let pipe () = { data = Buffer.create 256; pos = 0; closed = false }

let pipe_read p ~chunk buf off len =
  let available = Buffer.length p.data - p.pos in
  if available = 0 then
    if p.closed then 0
    else
      failwith
        "Transport.loopback: read on an empty pipe (peer has not written)"
  else begin
    let n = min (min available len) chunk in
    Buffer.blit p.data p.pos buf off n;
    p.pos <- p.pos + n;
    n
  end

let endpoint ~chunk ~inbound ~outbound =
  {
    read = (fun buf off len -> pipe_read inbound ~chunk buf off len);
    write =
      (fun s ->
        if outbound.closed then
          failwith "Transport.loopback: write on a closed pipe";
        Buffer.add_string outbound.data s);
    close = (fun () -> outbound.closed <- true);
  }

let loopback ?(chunk = max_int) () =
  if chunk < 1 then invalid_arg "Transport.loopback: chunk must be positive";
  let ab = pipe () and ba = pipe () in
  (endpoint ~chunk ~inbound:ba ~outbound:ab,
   endpoint ~chunk ~inbound:ab ~outbound:ba)
