(** The INDaaS audit daemon: protocol dispatch over the snapshot
    store, the request scheduler and the result cache.

    Method set (protocol v1):

    - [submit-deps] — create/update one source of one snapshot from
      Table 1 wire text; invalidates the affected snapshot's cache
      entries when the content digest changes.
    - [audit] — structural independence audit of one deployment over a
      snapshot; the result is byte-identical to the batch
      [indaas sia --json] report for the same DepDB/spec/seed.
    - [compare] — rank candidate deployments ([indaas compare]'s
      JSON).
    - [rg-query] — just the minimal risk groups of a deployment.
    - [stats] — snapshots, cache and scheduler counters.
    - [shutdown] — stop accepting input ({!serve} drains and returns).

    Every request is dispatched inside a [service.request] span and
    counted; cache and scheduler activity surfaces as
    [service.cache.*] / [service.sched.*] metrics. Responses are a
    deterministic function of (request stream, seed): byte-identical
    across runs, same contract as chaos/obs. *)

type config = {
  seed : int;  (** default audit seed when a request states none *)
  max_queue : int;
  default_deadline : float option;  (** virtual seconds, queue wait *)
  cache_capacity : int;
}

val default_config : config
(** seed 42, queue 64, no deadline, 1024 cache entries. *)

type t

val create : ?config:config -> unit -> t

val clock : t -> Indaas_resilience.Vclock.t
(** The scheduler's virtual clock — point the obs registry's clock
    here for byte-identical traces. *)

val handle : t -> Frame.request -> Frame.response
(** Dispatch one request immediately, bypassing the queue (used by
    tests and benchmarks). Never raises: failures come back as error
    responses. *)

val serve : t -> Transport.t -> unit
(** One-shot serving: read frames until end of stream (or a
    [shutdown] request), admitting each through the scheduler, then
    dispatch the queue and write every response — in request arrival
    order — before returning. A corrupt frame stream produces a final
    [id = -1] [bad-frame] error response for the undecodable suffix. *)

val scheduler : t -> Scheduler.t
val cache_stats : t -> Cache.stats
val stats_json : t -> Indaas_util.Json.t
(** The [stats] method's payload. *)
