module Json = Indaas_util.Json

let version = 1
let max_frame = 16 * 1024 * 1024

exception Protocol_error of string
exception Bad_frame of string

let protocol_error fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt
let bad_frame fmt = Printf.ksprintf (fun m -> raise (Bad_frame m)) fmt

type request = { id : int; version : int; meth : string; params : Json.t }
type error = { code : string; message : string }
type response = { id : int; result : (Json.t, error) result }

(* --- encoding --------------------------------------------------------- *)

let frame payload =
  let n = String.length payload in
  if n = 0 then protocol_error "Frame.frame: empty payload";
  if n > max_frame then
    protocol_error "Frame.frame: payload of %d bytes exceeds max %d" n max_frame;
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let request_to_json r =
  Json.Obj
    [
      ("v", Json.Int r.version);
      ("id", Json.Int r.id);
      ("method", Json.String r.meth);
      ("params", r.params);
    ]

let response_to_json r =
  match r.result with
  | Ok payload -> Json.Obj [ ("id", Json.Int r.id); ("ok", payload) ]
  | Error e ->
      Json.Obj
        [
          ("id", Json.Int r.id);
          ( "error",
            Json.Obj
              [
                ("code", Json.String e.code); ("message", Json.String e.message);
              ] );
        ]

let encode_request r = frame (Json.to_string (request_to_json r))
let encode_response r = frame (Json.to_string (response_to_json r))

(* --- request/response validation -------------------------------------- *)

let int_field name json =
  match Json.member name json with
  | Some (Json.Int i) -> i
  | Some _ -> bad_frame "frame field %S must be an integer" name
  | None -> bad_frame "frame is missing the %S field" name

let request_of_json json =
  match json with
  | Json.Obj fields ->
      let id = int_field "id" json in
      let v = int_field "v" json in
      let meth =
        match Json.member "method" json with
        | Some (Json.String m) when m <> "" -> m
        | Some _ -> bad_frame "frame field \"method\" must be a string"
        | None -> bad_frame "frame is missing the \"method\" field"
      in
      let params =
        match Json.member "params" json with
        | Some (Json.Obj _ as p) -> p
        | Some Json.Null | None -> Json.Null
        | Some _ -> bad_frame "frame field \"params\" must be an object"
      in
      List.iter
        (fun (k, _) ->
          match k with
          | "v" | "id" | "method" | "params" -> ()
          | k -> bad_frame "unknown request field %S" k)
        fields;
      { id; version = v; meth; params }
  | _ -> bad_frame "request frame must be a JSON object"

let response_of_json json =
  match json with
  | Json.Obj _ -> (
      let id = int_field "id" json in
      match (Json.member "ok" json, Json.member "error" json) with
      | Some payload, None -> { id; result = Ok payload }
      | None, Some err ->
          let str name =
            match Json.member name err with
            | Some (Json.String s) -> s
            | _ -> bad_frame "error frame is missing the %S field" name
          in
          { id; result = Error { code = str "code"; message = str "message" } }
      | Some _, Some _ -> bad_frame "response carries both \"ok\" and \"error\""
      | None, None -> bad_frame "response carries neither \"ok\" nor \"error\"")
  | _ -> bad_frame "response frame must be a JSON object"

(* --- incremental decoding ---------------------------------------------- *)

(* Unconsumed bytes accumulate in [buf] past [off]; [compact] reclaims
   the consumed prefix once it dominates the buffer, keeping feeding
   linear overall. *)
type decoder = {
  mutable buf : Bytes.t;
  mutable off : int;  (** first unconsumed byte *)
  mutable fill : int;  (** bytes valid in [buf] *)
  mutable poisoned : bool;
}

let decoder () = { buf = Bytes.create 256; off = 0; fill = 0; poisoned = false }

let pending_bytes d = d.fill - d.off

let compact d =
  if d.off > 0 && (d.off = d.fill || d.off > Bytes.length d.buf / 2) then begin
    Bytes.blit d.buf d.off d.buf 0 (d.fill - d.off);
    d.fill <- d.fill - d.off;
    d.off <- 0
  end

let feed d ?(off = 0) ?len s =
  if d.poisoned then protocol_error "Frame.feed: decoder is poisoned";
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Frame.feed: substring out of bounds";
  compact d;
  let needed = d.fill + len in
  if needed > Bytes.length d.buf then begin
    let cap = ref (max 256 (Bytes.length d.buf)) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf 0 bigger 0 d.fill;
    d.buf <- bigger
  end;
  Bytes.blit_string s off d.buf d.fill len;
  d.fill <- d.fill + len

let poison d msg =
  d.poisoned <- true;
  protocol_error "%s" msg

let next d =
  if d.poisoned then protocol_error "Frame.next: decoder is poisoned";
  if pending_bytes d < 4 then None
  else begin
    let n = Int32.to_int (Bytes.get_int32_be d.buf d.off) in
    if n <= 0 then
      poison d (Printf.sprintf "Frame.next: invalid frame length %d" n)
    else if n > max_frame then
      poison d
        (Printf.sprintf "Frame.next: frame length %d exceeds max %d" n
           max_frame)
    else if pending_bytes d < 4 + n then None
    else begin
      let payload = Bytes.sub_string d.buf (d.off + 4) n in
      d.off <- d.off + 4 + n;
      compact d;
      match Json.of_string payload with
      | json -> Some json
      | exception Json.Parse_error msg ->
          poison d (Printf.sprintf "Frame.next: payload is not JSON: %s" msg)
    end
  end
