module Json = Indaas_util.Json

let request ~id ~meth params =
  {
    Frame.id;
    version = Frame.version;
    meth;
    params = (match params with [] -> Json.Null | params -> Json.Obj params);
  }

let submit_deps ~id ?(snapshot = "default") ~source ~records () =
  request ~id ~meth:"submit-deps"
    [
      ("snapshot", Json.String snapshot);
      ("source", Json.String source);
      ("records", Json.String records);
    ]

type audit_options = {
  snapshot : string option;
  required : int option;
  engine : string option;
  max_family : int option;
  algorithm : string option;
  rounds : int option;
  prob : float option;
  seed : int option;
  deadline : float option;
}

let audit_options =
  {
    snapshot = None;
    required = None;
    engine = None;
    max_family = None;
    algorithm = None;
    rounds = None;
    prob = None;
    seed = None;
    deadline = None;
  }

(* Only stated options travel: the daemon owns the defaults, so a
   bare request and an explicitly-default one share a cache entry. *)
let option_params o =
  let field name value to_json =
    match value with Some v -> [ (name, to_json v) ] | None -> []
  in
  field "snapshot" o.snapshot (fun s -> Json.String s)
  @ field "required" o.required (fun i -> Json.Int i)
  @ field "engine" o.engine (fun s -> Json.String s)
  @ field "max-family" o.max_family (fun i -> Json.Int i)
  @ field "algorithm" o.algorithm (fun s -> Json.String s)
  @ field "rounds" o.rounds (fun i -> Json.Int i)
  @ field "prob" o.prob (fun f -> Json.Float f)
  @ field "seed" o.seed (fun i -> Json.Int i)
  @ field "deadline" o.deadline (fun f -> Json.Float f)

let audit ~id ?(options = audit_options) ~servers () =
  request ~id ~meth:"audit"
    (("servers", Json.List (List.map (fun s -> Json.String s) servers))
    :: option_params options)

let compare_deployments ~id ?(options = audit_options) ~candidates () =
  request ~id ~meth:"compare"
    (( "candidates",
       Json.List
         (List.map
            (fun c -> Json.List (List.map (fun s -> Json.String s) c))
            candidates) )
    :: option_params options)

let rg_query ~id ?(options = audit_options) ~servers () =
  request ~id ~meth:"rg-query"
    (("servers", Json.List (List.map (fun s -> Json.String s) servers))
    :: option_params options)

let stats ~id = request ~id ~meth:"stats" []
let shutdown ~id = request ~id ~meth:"shutdown" []

let read_response transport dec =
  let buf = Bytes.create 8192 in
  let rec loop () =
    match Frame.next dec with
    | Some json -> Frame.response_of_json json
    | None ->
        let n = transport.Transport.read buf 0 (Bytes.length buf) in
        if n = 0 then failwith "Client.call: stream ended before the response";
        Frame.feed dec (Bytes.sub_string buf 0 n);
        loop ()
  in
  loop ()

let call transport req =
  transport.Transport.write (Frame.encode_request req);
  read_response transport (Frame.decoder ())

let decode_responses bytes =
  let dec = Frame.decoder () in
  Frame.feed dec bytes;
  let rec loop acc =
    match Frame.next dec with
    | Some json -> loop (Frame.response_of_json json :: acc)
    | None ->
        if Frame.pending_bytes dec > 0 then
          failwith "Client.decode_responses: truncated trailing frame";
        List.rev acc
  in
  loop []
