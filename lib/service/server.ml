module Json = Indaas_util.Json
module Prng = Indaas_util.Prng
module Obs = Indaas_obs.Registry
module Depdb = Indaas_depdata.Depdb
module Dependency = Indaas_depdata.Dependency
module Vclock = Indaas_resilience.Vclock
module Builder = Indaas_sia.Builder
module Sia_audit = Indaas_sia.Audit
module Sia_report = Indaas_sia.Report
module Cutset = Indaas_faultgraph.Cutset
module Bdd = Indaas_faultgraph.Bdd

type config = {
  seed : int;
  max_queue : int;
  default_deadline : float option;
  cache_capacity : int;
}

let default_config =
  { seed = 42; max_queue = 64; default_deadline = None; cache_capacity = 1024 }

type t = {
  config : config;
  store : Snapshot.store;
  cache : Cache.t;
  sched : Scheduler.t;
}

let create ?(config = default_config) () =
  {
    config;
    store = Snapshot.create ();
    cache = Cache.create ~capacity:config.cache_capacity ();
    sched =
      Scheduler.create ~max_queue:config.max_queue
        ?default_deadline:config.default_deadline ();
  }

let clock t = Scheduler.clock t.sched
let scheduler t = t.sched
let cache_stats t = Cache.stats t.cache

(* --- error plumbing ---------------------------------------------------- *)

(* Dispatch failures unwind as (code, message) pairs and come back to
   the client as error responses; the daemon itself never dies on a
   request. *)
exception Reply_error of string * string

let fail_code code fmt =
  Printf.ksprintf (fun m -> raise (Reply_error (code, m))) fmt

let bad fmt = fail_code "bad-request" fmt

(* --- parameter decoding ------------------------------------------------ *)

let str_param ?default name params =
  match Json.member name params with
  | Some (Json.String s) -> s
  | Some _ -> bad "parameter %S must be a string" name
  | None -> (
      match default with
      | Some d -> d
      | None -> bad "missing parameter %S" name)

let int_param ~default name params =
  match Json.member name params with
  | Some (Json.Int i) -> i
  | Some _ -> bad "parameter %S must be an integer" name
  | None -> default

let int_opt_param name params =
  match Json.member name params with
  | Some (Json.Int i) -> Some i
  | Some _ -> bad "parameter %S must be an integer" name
  | None -> None

let float_opt_param name params =
  match Json.member name params with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some _ -> bad "parameter %S must be a number" name
  | None -> None

let string_list_param name params =
  match Json.member name params with
  | Some (Json.List items) ->
      Some
        (List.map
           (function
             | Json.String s -> s
             | _ -> bad "parameter %S must be a list of strings" name)
           items)
  | Some _ -> bad "parameter %S must be a list of strings" name
  | None -> None

let engine_param params =
  match str_param ~default:"auto" "engine" params with
  | "enum" -> `Enum
  | "bdd" -> `Bdd
  | "auto" -> `Auto
  | e -> bad "unknown engine %S (enum, bdd or auto)" e

(* --- audit parameter block --------------------------------------------- *)

(* Everything a deterministic audit result is a function of, beyond
   the snapshot contents. [canonical] is the compact JSON of the
   normalized fields — the spec half of the cache key. *)
type audit_params = {
  snapshot : string;
  servers : string list;
  required : int;
  engine : [ `Enum | `Bdd | `Auto ];
  max_family : int option;
  algorithm : [ `Minimal | `Sampling ];
  rounds : int;
  prob : float option;
  audit_seed : int;
}

let audit_params t params =
  let algorithm =
    match str_param ~default:"minimal" "algorithm" params with
    | "minimal" -> `Minimal
    | "sampling" -> `Sampling
    | a -> bad "unknown algorithm %S (minimal or sampling)" a
  in
  {
    snapshot = str_param ~default:"default" "snapshot" params;
    servers =
      (match string_list_param "servers" params with
      | Some [] -> bad "parameter \"servers\" must not be empty"
      | Some servers -> servers
      | None -> bad "missing parameter \"servers\"");
    required = int_param ~default:1 "required" params;
    engine = engine_param params;
    max_family = int_opt_param "max-family" params;
    algorithm;
    rounds = int_param ~default:10_000 "rounds" params;
    prob = float_opt_param "prob" params;
    audit_seed = int_param ~default:t.config.seed "seed" params;
  }

let engine_name p =
  match p.algorithm with
  | `Sampling -> "sampling"
  | `Minimal -> (
      match p.engine with `Enum -> "enum" | `Bdd -> "bdd" | `Auto -> "auto")

(* The engine and family budget live in their own cache-key fields;
   the spec digest covers the rest of the request. *)
let spec_digest ~meth p =
  let prob =
    match p.prob with Some f -> Json.Float f | None -> Json.Null
  in
  Indaas_crypto.Digest.sha256_hex
    (Json.to_string
       (Json.Obj
          [
            ("method", Json.String meth);
            ("servers", Json.List (List.map (fun s -> Json.String s) p.servers));
            ("required", Json.Int p.required);
            ("algorithm", Json.String
               (match p.algorithm with
               | `Minimal -> "minimal"
               | `Sampling -> "sampling"));
            ("rounds", Json.Int p.rounds);
            ("prob", prob);
            ("seed", Json.Int p.audit_seed);
          ]))

let cache_key ~meth ~(view : Snapshot.view) p =
  {
    Cache.snapshot_digest = view.Snapshot.digest;
    spec_digest = spec_digest ~meth p;
    engine = engine_name p;
    budget = p.max_family;
  }

let sia_request p =
  let algorithm =
    match p.algorithm with
    | `Minimal -> (
        match p.engine with
        | `Enum ->
            Sia_audit.Minimal_rg { max_size = None; max_family = p.max_family }
        | `Bdd -> Sia_audit.Minimal_rg_bdd { max_size = None }
        | `Auto ->
            Sia_audit.Auto_rg { max_size = None; max_family = p.max_family })
    | `Sampling -> Sia_audit.failure_sampling ~rounds:p.rounds
  in
  let component_probability = Option.map Builder.uniform_probability p.prob in
  let ranking =
    match p.prob with
    | Some _ -> Sia_audit.Probability_based
    | None -> Sia_audit.Size_based
  in
  Sia_audit.request ~required:p.required ?component_probability ~algorithm
    ~ranking p.servers

let lookup_snapshot t name =
  match Snapshot.get t.store ~snapshot:name with
  | Some view -> view
  | None ->
      fail_code "unknown-snapshot"
        "no snapshot %S (submit dependency data first)" name

(* Audit computations can die many ways; every one must come back as
   an error response, not kill the daemon. *)
let guarded f =
  match f () with
  | result -> result
  | exception Cutset.Too_many_cut_sets n ->
      fail_code "budget-exceeded"
        "minimal-RG enumeration reached %d cut sets, over the family \
         budget; retry with engine \"bdd\" or a larger \"max-family\""
        n
  | exception Invalid_argument msg -> bad "%s" msg
  | exception Failure msg -> fail_code "audit-error" "%s" msg

let cached t key compute =
  match Cache.find t.cache key with
  | Some json -> json
  | None ->
      let json = Obs.with_span "service.compute" compute in
      Cache.add t.cache key json;
      json

(* --- methods ------------------------------------------------------------ *)

let submit_deps t params =
  let snapshot = str_param ~default:"default" "snapshot" params in
  let source = str_param "source" params in
  let text = str_param ~default:"" "records" params in
  let records =
    match Dependency.of_xml_many text with
    | records -> records
    | exception Failure msg -> bad "cannot parse records: %s" msg
  in
  let old = Snapshot.get t.store ~snapshot in
  let view = Snapshot.submit t.store ~snapshot ~source records in
  let invalidated =
    match old with
    | Some o when o.Snapshot.digest <> view.Snapshot.digest ->
        Cache.invalidate_snapshot t.cache ~digest:o.Snapshot.digest
    | _ -> 0
  in
  Obs.incr "service.submissions";
  Json.Obj
    [
      ("snapshot", Json.String view.Snapshot.name);
      ("version", Json.Int view.Snapshot.version);
      ("digest", Json.String view.Snapshot.digest);
      ("records", Json.Int (Depdb.size view.Snapshot.db));
      ( "sources",
        Json.Obj
          (List.map (fun (s, n) -> (s, Json.Int n)) view.Snapshot.sources) );
      ("invalidated", Json.Int invalidated);
    ]

let audit t params =
  let p = audit_params t params in
  let view = lookup_snapshot t p.snapshot in
  cached t (cache_key ~meth:"audit" ~view p) @@ fun () ->
  guarded @@ fun () ->
  let report =
    Sia_audit.audit ~rng:(Prng.of_int p.audit_seed) view.Snapshot.db
      (sia_request p)
  in
  Sia_report.deployment_to_json report

let compare_deployments t params =
  let candidates =
    match Json.member "candidates" params with
    | Some (Json.List lists) ->
        List.map
          (function
            | Json.List names ->
                List.map
                  (function
                    | Json.String s -> s
                    | _ ->
                        bad
                          "parameter \"candidates\" must be a list of server \
                           lists")
                  names
            | _ -> bad "parameter \"candidates\" must be a list of server lists")
          lists
    | Some _ -> bad "parameter \"candidates\" must be a list of server lists"
    | None -> bad "missing parameter \"candidates\""
  in
  if candidates = [] then bad "parameter \"candidates\" must not be empty";
  (* [audit_params] wants a servers list; the candidate sets flatten
     into that slot (";"-delimited) so the canonical spec digest
     covers them unambiguously. *)
  let flat =
    List.concat_map (fun c -> List.map (fun s -> Json.String s) c
                              @ [ Json.String ";" ])
      candidates
  in
  let p =
    audit_params t
      (match params with
      | Json.Obj fields ->
          Json.Obj
            (("servers", Json.List flat) :: List.remove_assoc "servers" fields)
      | _ -> Json.Obj [ ("servers", Json.List flat) ])
  in
  let view = lookup_snapshot t p.snapshot in
  cached t (cache_key ~meth:"compare" ~view p) @@ fun () ->
  guarded @@ fun () ->
  let reports =
    Sia_audit.audit_candidates ~rng:(Prng.of_int p.audit_seed)
      view.Snapshot.db ~candidates (sia_request { p with servers = [] })
  in
  Sia_report.comparison_to_json reports

let rg_query t params =
  let p = audit_params t params in
  let view = lookup_snapshot t p.snapshot in
  cached t (cache_key ~meth:"rg-query" ~view p) @@ fun () ->
  guarded @@ fun () ->
  let spec = Builder.spec ~required:p.required p.servers in
  let graph = Builder.build view.Snapshot.db spec in
  let rgs =
    match p.engine with
    | `Bdd -> Bdd.minimal_risk_groups graph
    | `Enum -> Cutset.minimal_risk_groups ?max_family:p.max_family graph
    | `Auto -> (
        try Cutset.minimal_risk_groups ?max_family:p.max_family graph
        with Cutset.Too_many_cut_sets _ -> Bdd.minimal_risk_groups graph)
  in
  Json.Obj
    [
      ("count", Json.Int (List.length rgs));
      ("expected_size", Json.Int (Builder.expected_rg_size spec));
      ( "risk_groups",
        Json.List
          (List.map
             (fun rg ->
               Json.List
                 (List.map
                    (fun name -> Json.String name)
                    (Cutset.names graph rg)))
             rgs) );
    ]

let stats_json t =
  Json.Obj
    [
      ("snapshots", Snapshot.to_json t.store);
      ("cache", Cache.stats_to_json (Cache.stats t.cache));
      ("scheduler", Scheduler.stats_to_json (Scheduler.stats t.sched));
      ("virtual_seconds", Json.Float (Vclock.now (clock t)));
    ]

(* --- dispatch ----------------------------------------------------------- *)

let shutdown_payload = Json.Obj [ ("stopping", Json.Bool true) ]

let dispatch t (req : Frame.request) =
  match req.Frame.meth with
  | "submit-deps" -> submit_deps t req.Frame.params
  | "audit" -> audit t req.Frame.params
  | "compare" -> compare_deployments t req.Frame.params
  | "rg-query" -> rg_query t req.Frame.params
  | "stats" -> stats_json t
  | "shutdown" -> shutdown_payload
  | m ->
      fail_code "unknown-method"
        "unknown method %S (protocol v%d: submit-deps, audit, compare, \
         rg-query, stats, shutdown)"
        m Frame.version

let error_response id code message =
  { Frame.id; result = Error { Frame.code; message } }

let handle t (req : Frame.request) =
  Obs.with_span "service.request"
    ~attrs:[ ("method", req.Frame.meth); ("id", string_of_int req.Frame.id) ]
  @@ fun () ->
  Obs.incr "service.requests";
  if req.Frame.version <> Frame.version then
    error_response req.Frame.id "unsupported-version"
      (Printf.sprintf "request speaks protocol v%d, this daemon speaks v%d"
         req.Frame.version Frame.version)
  else
    match dispatch t req with
    | payload -> { Frame.id = req.Frame.id; result = Ok payload }
    | exception Reply_error (code, message) ->
        Obs.incr "service.errors";
        error_response req.Frame.id code message

(* --- serving ------------------------------------------------------------ *)

(* Nominal per-method virtual cost, for deadline arithmetic. Binary
   fractions keep accumulated virtual time exactly representable. *)
let cost_of meth =
  match meth with
  | "audit" | "compare" | "rg-query" -> 1.0
  | "submit-deps" -> 0.25
  | _ -> 0.03125

(* The scheduling deadline rides outside [params] — it shapes when a
   request runs, not what it computes, so it stays out of the cache
   key. *)
let deadline_of (req : Frame.request) =
  match Json.member "deadline" req.Frame.params with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let serve t transport =
  let dec = Frame.decoder () in
  let buf = Bytes.create 8192 in
  (* Response slots in arrival order: every admitted, shed or
     malformed request gets exactly one, filled by the time the queue
     drains. *)
  let slots = ref [] in
  let push_slot () =
    let slot = ref None in
    slots := slot :: !slots;
    slot
  in
  let stop = ref None in
  let stream_error = ref None in
  let admit json =
    match Frame.request_of_json json with
    | req ->
        let slot = push_slot () in
        if req.Frame.meth = "shutdown" then begin
          (* Answer immediately and stop accepting input; already
             admitted work still runs. *)
          slot := Some (handle t req);
          stop := Some `Shutdown
        end
        else
          Scheduler.submit t.sched ?deadline:(deadline_of req)
            ~cost:(cost_of req.Frame.meth)
            ~run:(fun () -> slot := Some (handle t req))
            ~shed:(fun ~reason ->
              slot :=
                Some
                  (error_response req.Frame.id reason
                     (Printf.sprintf "request shed by the scheduler: %s"
                        reason)))
            ()
    | exception Frame.Bad_frame msg ->
        let id =
          match Json.member "id" json with Some (Json.Int i) -> i | _ -> -1
        in
        let slot = push_slot () in
        slot := Some (error_response id "bad-frame" msg)
  in
  (try
     while !stop = None do
       match Frame.next dec with
       | Some json -> admit json
       | None ->
           let n = transport.Transport.read buf 0 (Bytes.length buf) in
           if n = 0 then stop := Some `Eof
           else Frame.feed dec (Bytes.sub_string buf 0 n)
     done;
     (* [next] returned None right before the EOF read, so no complete
        frame can be pending — leftover bytes are a truncated frame.
        After a shutdown, leftover input is deliberately dropped. *)
     if !stop = Some `Eof && Frame.pending_bytes dec > 0 then
       stream_error :=
         Some
           (Printf.sprintf "truncated frame: %d byte(s) at end of stream"
              (Frame.pending_bytes dec))
   with Frame.Protocol_error msg -> stream_error := Some msg);
  Scheduler.run_all t.sched;
  (match !stream_error with
  | Some msg -> (push_slot ()) := Some (error_response (-1) "bad-frame" msg)
  | None -> ());
  List.iter
    (fun slot ->
      match !slot with
      | Some response ->
          transport.Transport.write (Frame.encode_response response)
      | None -> ())
    (List.rev !slots);
  transport.Transport.close ()
