(** Request scheduling: a bounded FIFO queue with admission control
    and per-request deadlines on a virtual clock.

    The daemon sheds load instead of stalling. Admission rejects a
    request outright once the queue is full ([overloaded]); at
    dispatch, a request whose virtual queueing delay already exceeds
    its deadline is shed unrun ([deadline-exceeded]). Execution
    advances the {!Indaas_resilience.Vclock} by the request's cost, so
    deadline arithmetic — like every other timestamp in the serving
    stack — is a deterministic function of the request stream, and a
    whole serve run replays byte-identically.

    Shedding is accounted the same way degraded audits are: an
    {!Indaas_resilience.Degradation} record reporting how many
    admitted requests were actually served. *)

module Vclock := Indaas_resilience.Vclock
module Degradation := Indaas_resilience.Degradation

type t

val create : ?clock:Vclock.t -> ?max_queue:int -> ?default_deadline:float ->
  unit -> t
(** [max_queue] bounds the pending-request count (default 64;
    [Invalid_argument] if non-positive). [default_deadline] (virtual
    seconds, measured from admission to dispatch) applies to requests
    that state none; absent by default, meaning no deadline. *)

val clock : t -> Vclock.t

val submit :
  t ->
  ?deadline:float ->
  cost:float ->
  run:(unit -> unit) ->
  shed:(reason:string -> unit) ->
  unit ->
  unit
(** Enqueue a job. [cost] is the virtual seconds its execution
    charges. When the queue is full, [shed ~reason:"overloaded"] fires
    immediately and the job is never run. *)

val run_all : t -> unit
(** Dispatch the queue in FIFO order: each job either runs (advancing
    the clock by its cost) or, if its deadline expired while queued,
    its [shed ~reason:"deadline-exceeded"] fires instead. A raising
    job propagates its exception; jobs not yet dispatched remain
    queued. *)

type stats = {
  submitted : int;
  admitted : int;
  served : int;
  shed_overload : int;
  shed_deadline : int;
}

val stats : t -> stats
val stats_to_json : stats -> Indaas_util.Json.t

val degradation : t -> Degradation.t option
(** [None] until something was shed; then a record whose completeness
    is the served fraction of submitted requests. *)
