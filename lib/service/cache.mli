(** The RG/audit result cache.

    Entries are keyed by (snapshot content digest, request spec
    digest, engine, family budget) — everything a deterministic audit
    result is a function of. Both digests are canonical, so two
    textually different submissions with equal record sets share
    entries, and a delta submission that changes the record set
    changes the snapshot digest, orphaning the old entries; the server
    then calls {!invalidate_snapshot} with the {e old} digest to
    reclaim exactly the affected snapshot's entries and nothing else.

    Hits and misses are counted locally (for the [stats] method) and
    mirrored into {!Indaas_obs} as [service.cache.hit] /
    [service.cache.miss], so they surface under [--metrics]. *)

module Json := Indaas_util.Json

type key = {
  snapshot_digest : string;
  spec_digest : string;
  engine : string;  (** ["enum"], ["bdd"], ["auto"], ["sampling"] *)
  budget : int option;  (** the enumeration engine's family budget *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the entry count (default 1024); inserting past
    it evicts the least recently used entry. Raises
    [Invalid_argument] on a non-positive capacity. *)

val find : t -> key -> Json.t option
(** Counts a hit or a miss, and refreshes recency on hit. *)

val add : t -> key -> Json.t -> unit
(** Inserting an existing key refreshes its value and recency. *)

val invalidate_snapshot : t -> digest:string -> int
(** Drop every entry whose [snapshot_digest] equals [digest]; returns
    how many were dropped (also counted as invalidations). *)

type stats = {
  entries : int;
  hits : int;
  misses : int;
  invalidated : int;  (** entries dropped by {!invalidate_snapshot} *)
  evicted : int;  (** entries dropped by the capacity bound *)
}

val stats : t -> stats
val stats_to_json : stats -> Json.t
