(** Pluggable byte-stream transports for the wire protocol.

    A transport is just three closures over an ordered, reliable byte
    stream; {!Frame} does the framing on top. Two implementations
    ship: an in-process loopback pair for deterministic tests, and a
    channel pair for the CLI's stdio pipe. *)

type t = {
  read : bytes -> int -> int -> int;
      (** [read buf off len] blocks for at least one byte and returns
          how many were read, or [0] at end of stream. May return
          fewer than [len] bytes — framing must tolerate short
          reads. *)
  write : string -> unit;
  close : unit -> unit;
      (** Signals end of stream to the peer. Idempotent. *)
}

val of_channels : in_channel -> out_channel -> t
(** A transport over a channel pair. [write] flushes per call so a
    piped peer sees complete frames promptly; [close] flushes the
    output but closes neither channel (stdio belongs to the caller). *)

val loopback : ?chunk:int -> unit -> t * t
(** [loopback ()] is a connected in-process endpoint pair [(a, b)]:
    bytes written on [a] are read from [b] and vice versa, in order.
    Reads return at most [chunk] bytes per call (default unbounded) —
    [~chunk:1] simulates maximally adversarial packetization. Reading
    an empty buffer before the peer closed raises [Failure]: the
    loopback is single-threaded, so a blocking read can never be
    satisfied later. *)
