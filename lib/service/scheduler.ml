module Vclock = Indaas_resilience.Vclock
module Degradation = Indaas_resilience.Degradation
module Json = Indaas_util.Json
module Obs = Indaas_obs.Registry

type job = {
  arrival : float;  (** virtual admission time *)
  deadline : float option;
  cost : float;
  run : unit -> unit;
  shed : reason:string -> unit;
}

type t = {
  clock : Vclock.t;
  max_queue : int;
  default_deadline : float option;
  queue : job Queue.t;
  mutable submitted : int;
  mutable admitted : int;
  mutable served : int;
  mutable shed_overload : int;
  mutable shed_deadline : int;
}

let create ?clock ?(max_queue = 64) ?default_deadline () =
  if max_queue < 1 then
    invalid_arg "Scheduler.create: max_queue must be positive";
  (match default_deadline with
  | Some d when d < 0. ->
      invalid_arg "Scheduler.create: default_deadline must be non-negative"
  | _ -> ());
  {
    clock = (match clock with Some c -> c | None -> Vclock.create ());
    max_queue;
    default_deadline;
    queue = Queue.create ();
    submitted = 0;
    admitted = 0;
    served = 0;
    shed_overload = 0;
    shed_deadline = 0;
  }

let clock t = t.clock

let submit t ?deadline ~cost ~run ~shed () =
  if cost < 0. then invalid_arg "Scheduler.submit: cost must be non-negative";
  t.submitted <- t.submitted + 1;
  if Queue.length t.queue >= t.max_queue then begin
    t.shed_overload <- t.shed_overload + 1;
    Obs.incr "service.sched.shed.overload";
    shed ~reason:"overloaded"
  end
  else begin
    t.admitted <- t.admitted + 1;
    Obs.incr "service.sched.admitted";
    let deadline =
      match deadline with Some _ as d -> d | None -> t.default_deadline
    in
    Queue.add
      { arrival = Vclock.now t.clock; deadline; cost; run; shed }
      t.queue
  end

let run_all t =
  while not (Queue.is_empty t.queue) do
    let job = Queue.pop t.queue in
    let waited = Vclock.now t.clock -. job.arrival in
    match job.deadline with
    | Some d when waited > d ->
        t.shed_deadline <- t.shed_deadline + 1;
        Obs.incr "service.sched.shed.deadline";
        Obs.observe "service.sched.wait_seconds" waited;
        job.shed ~reason:"deadline-exceeded"
    | _ ->
        Vclock.advance t.clock job.cost;
        t.served <- t.served + 1;
        Obs.incr "service.sched.served";
        Obs.observe "service.sched.wait_seconds" waited;
        job.run ()
  done

type stats = {
  submitted : int;
  admitted : int;
  served : int;
  shed_overload : int;
  shed_deadline : int;
}

let stats (t : t) =
  {
    submitted = t.submitted;
    admitted = t.admitted;
    served = t.served;
    shed_overload = t.shed_overload;
    shed_deadline = t.shed_deadline;
  }

let stats_to_json s =
  Json.Obj
    [
      ("submitted", Json.Int s.submitted);
      ("admitted", Json.Int s.admitted);
      ("served", Json.Int s.served);
      ("shed_overload", Json.Int s.shed_overload);
      ("shed_deadline", Json.Int s.shed_deadline);
    ]

let degradation (t : t) =
  let shed = t.shed_overload + t.shed_deadline in
  if shed = 0 then None
  else
    Some
      (Degradation.make ~retries:0
         [
           {
             Degradation.source = "scheduler";
             status =
               Degradation.Degraded
                 (Printf.sprintf "%d of %d request(s) shed" shed t.submitted);
             attempts = t.served;
             modules_total = t.submitted;
             modules_failed = shed;
             records = t.served;
             records_lost = shed;
           };
         ])
