(** The INDaaS wire protocol, v1: length-prefixed JSON frames.

    A frame is a 4-byte big-endian payload length followed by exactly
    that many bytes of UTF-8 JSON. Requests and responses are JSON
    objects:

    {v
    request:  {"v": 1, "id": N, "method": "audit", "params": {...}}
    response: {"id": N, "ok": RESULT}
            | {"id": N, "error": {"code": "...", "message": "..."}}
    v}

    The method set is versioned by the top-level ["v"] field; this
    module speaks exactly {!version}. Encoding is canonical (compact
    JSON, fields in the order above), so a frame is a pure function of
    its content — the serving determinism contract builds on that.

    {!type:decoder} is incremental: feed it arbitrary byte chunks from
    any transport and pop complete frames as they materialize. Split
    length prefixes, 1-byte reads and concatenated frames all
    reassemble to the same frame sequence. *)

module Json := Indaas_util.Json

val version : int
(** Protocol version, [1]. *)

val max_frame : int
(** Hard payload-size ceiling (16 MiB): a length prefix above it is a
    protocol error, not an allocation request. *)

exception Protocol_error of string
(** Unrecoverable stream corruption: an oversized or zero length
    prefix, or a payload that is not valid JSON. After raising, a
    decoder refuses further input — framing is lost for good. *)

exception Bad_frame of string
(** A structurally valid JSON frame that is not a well-formed request
    or response (missing [id], non-string [method], ...). The stream
    itself is still in sync; the peer can answer with an error and
    keep going. *)

type request = {
  id : int;  (** client-chosen correlation id, echoed in the response *)
  version : int;  (** the ["v"] field *)
  meth : string;
  params : Json.t;  (** [Obj] of method parameters; [Null] if absent *)
}

type error = { code : string; message : string }

type response = { id : int; result : (Json.t, error) result }

(** {1 Encoding} *)

val frame : string -> string
(** Wrap a payload in a length prefix. Raises {!Protocol_error} if the
    payload is empty or exceeds {!max_frame}. *)

val request_to_json : request -> Json.t
val response_to_json : response -> Json.t

val encode_request : request -> string
(** A complete frame: prefix plus compact JSON. *)

val encode_response : response -> string

(** {1 Decoding} *)

val request_of_json : Json.t -> request
(** Raises {!Bad_frame} on a malformed request object. A missing
    ["v"] field is {!Bad_frame} too: every request states its
    version. *)

val response_of_json : Json.t -> response
(** Raises {!Bad_frame} on a malformed response object. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> ?off:int -> ?len:int -> string -> unit
(** Append raw transport bytes. Raises {!Protocol_error} if the
    decoder is already poisoned, and [Invalid_argument] on an
    out-of-bounds substring. *)

val next : decoder -> Json.t option
(** The next complete frame's parsed payload, or [None] until more
    bytes arrive. Raises {!Protocol_error} on a corrupt prefix or
    payload (and poisons the decoder). *)

val pending_bytes : decoder -> int
(** Unconsumed buffered bytes — 0 exactly when every fed byte has been
    returned by {!next} as part of a frame. *)
