(** Client-side helpers: build protocol-v1 request frames and decode
    response streams.

    The builders only assemble frames — pair them with any
    {!Transport} (or just concatenate {!Frame.encode_request} outputs
    into a pipe, as [indaas client] does). *)

module Json := Indaas_util.Json

val request : id:int -> meth:string -> (string * Json.t) list -> Frame.request
(** A v1 request with the given params object. *)

val submit_deps :
  id:int -> ?snapshot:string -> source:string -> records:string -> unit ->
  Frame.request
(** [records] is Table 1 wire text. [snapshot] defaults to
    ["default"]. *)

type audit_options = {
  snapshot : string option;
  required : int option;
  engine : string option;
  max_family : int option;
  algorithm : string option;
  rounds : int option;
  prob : float option;
  seed : int option;
  deadline : float option;
}

val audit_options : audit_options
(** All [None]: the server's defaults. *)

val audit :
  id:int -> ?options:audit_options -> servers:string list -> unit ->
  Frame.request

val compare_deployments :
  id:int -> ?options:audit_options -> candidates:string list list -> unit ->
  Frame.request

val rg_query :
  id:int -> ?options:audit_options -> servers:string list -> unit ->
  Frame.request

val stats : id:int -> Frame.request
val shutdown : id:int -> Frame.request

(** {1 Calling over a transport} *)

val call : Transport.t -> Frame.request -> Frame.response
(** Write one request frame, then block for one response frame.
    Raises {!Frame.Protocol_error} / {!Frame.Bad_frame} on a corrupt
    reply, [Failure] if the stream ends first. *)

val decode_responses : string -> Frame.response list
(** Split a byte string into its response frames. Same exceptions. *)
