type t = {
  mutable rev_records : Dependency.t list;
  seen : (Dependency.t, unit) Hashtbl.t;
  by_src : (string, Dependency.network) Hashtbl.t;
  by_machine_hw : (string, Dependency.hardware) Hashtbl.t;
  by_machine_sw : (string, Dependency.software) Hashtbl.t;
  by_pgm : (string, Dependency.software) Hashtbl.t;
}

let create () =
  {
    rev_records = [];
    seen = Hashtbl.create 256;
    by_src = Hashtbl.create 64;
    by_machine_hw = Hashtbl.create 64;
    by_machine_sw = Hashtbl.create 64;
    by_pgm = Hashtbl.create 64;
  }

let add t record =
  if not (Hashtbl.mem t.seen record) then begin
    Hashtbl.add t.seen record ();
    t.rev_records <- record :: t.rev_records;
    match record with
    | Dependency.Network n -> Hashtbl.add t.by_src n.Dependency.src n
    | Dependency.Hardware h -> Hashtbl.add t.by_machine_hw h.Dependency.hw h
    | Dependency.Software s ->
        Hashtbl.add t.by_machine_sw s.Dependency.host s;
        Hashtbl.add t.by_pgm s.Dependency.pgm s
  end

let add_all t records = List.iter (add t) records

let size t = Hashtbl.length t.seen

let records t = List.rev t.rev_records

(* Hashtbl.find_all returns most-recently-added first; reverse to
   restore insertion order. *)
let network_paths t ~src = List.rev (Hashtbl.find_all t.by_src src)
let hardware_of t ~machine = List.rev (Hashtbl.find_all t.by_machine_hw machine)
let software_on t ~machine = List.rev (Hashtbl.find_all t.by_machine_sw machine)
let software_named t ~pgm = List.rev (Hashtbl.find_all t.by_pgm pgm)

module SS = Set.Make (String)

let machines t =
  List.fold_left
    (fun acc r -> SS.add (Dependency.subject r) acc)
    SS.empty (records t)
  |> SS.elements

let component_set t ~machine =
  List.fold_left
    (fun acc r ->
      if Dependency.subject r = machine then
        List.fold_left (fun acc c -> SS.add c acc) acc (Dependency.components r)
      else acc)
    SS.empty (records t)
  |> SS.elements

let to_string t = Dependency.to_xml_many (records t)

(* Canonical form: the wire lines in Dependency.compare order, so two
   databases holding the same record set digest identically no matter
   what order their sources submitted in. *)
let digest t =
  let lines =
    records t |> List.sort Dependency.compare |> List.map Dependency.to_xml
  in
  Indaas_crypto.Digest.sha256_hex (String.concat "\n" lines)

let of_string s =
  let t = create () in
  add_all t (Dependency.of_xml_many s);
  t

let merge a b =
  let t = create () in
  add_all t (records a);
  add_all t (records b);
  t
