(** DepDB — the dependency information database each data source
    maintains (paper §3).

    Dependency acquisition modules store adapted records here; the
    auditing agent queries it while building fault graphs (§4.1.1
    Steps 2–6). Purely in-memory, with text import/export in the
    Table 1 wire format. *)

type t

val create : unit -> t

val add : t -> Dependency.t -> unit
(** Idempotent: re-adding an identical record is a no-op. *)

val add_all : t -> Dependency.t list -> unit

val size : t -> int

val records : t -> Dependency.t list
(** All records, in insertion order. *)

val network_paths : t -> src:string -> Dependency.network list
(** All routes recorded for [src] (§4.1.1 Step 5). *)

val hardware_of : t -> machine:string -> Dependency.hardware list
(** All hardware components of [machine] (§4.1.1 Step 4). *)

val software_on : t -> machine:string -> Dependency.software list
(** All software components running on [machine] (§4.1.1 Step 6). *)

val software_named : t -> pgm:string -> Dependency.software list
(** Software records for a program name (across machines). *)

val machines : t -> string list
(** All machines any record is about, sorted, duplicate-free. *)

val component_set : t -> machine:string -> string list
(** Every component identifier [machine] depends on — the
    component-set level of detail (§4.2.3). Sorted, duplicate-free. *)

val to_string : t -> string
(** Table 1 wire format, one record per line. *)

val digest : t -> string
(** Deterministic content hash: lowercase SHA-256 hex over the
    canonical serialization (wire-format lines in {!Dependency.compare}
    order). Invariant under record insertion order; changes whenever
    the record set changes. Snapshot versioning and audit result
    caching key on it. *)

val of_string : string -> t
(** Inverse of {!to_string}; tolerant of separators and prose between
    tags. *)

val merge : t -> t -> t
(** Union of two databases (deduplicated). *)
