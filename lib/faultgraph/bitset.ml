(* Packed bitsets over a fixed universe of node ids. One OCaml int
   carries [bits_per_word] member bits, so subset / union / equality
   on risk groups cost O(words) machine operations instead of a
   sorted-array merge walk — this is the absorption kernel of the
   enumeration engine. *)

let bits_per_word = Sys.int_size (* 63 on 64-bit systems *)

type t = int array

let words_for width =
  if width < 0 then invalid_arg "Bitset.create: negative width";
  (width + bits_per_word - 1) / bits_per_word

let create ~width = Array.make (max 1 (words_for width)) 0

let mem (t : t) i =
  let w = i / bits_per_word in
  w < Array.length t && t.(w) land (1 lsl (i mod bits_per_word)) <> 0

let add (t : t) i =
  let w = i / bits_per_word in
  if w >= Array.length t then invalid_arg "Bitset.add: out of range";
  t.(w) <- t.(w) lor (1 lsl (i mod bits_per_word))

let of_sorted_array ~width (ids : int array) =
  let t = create ~width in
  Array.iter (fun i -> add t i) ids;
  t

let equal (a : t) (b : t) =
  (* fixed width per universe: arrays have identical lengths *)
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  Array.length b = n && go 0

let subset (a : t) (b : t) =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) land lnot b.(i) = 0 && go (i + 1)) in
  go 0

let union (a : t) (b : t) : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    out.(i) <- a.(i) lor b.(i)
  done;
  out

let hash (t : t) = Hashtbl.hash t

let popcount_word w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let cardinal (t : t) =
  Array.fold_left (fun acc w -> acc + popcount_word w) 0 t

let min_elt_opt (t : t) =
  let n = Array.length t in
  let rec word i =
    if i >= n then None
    else if t.(i) = 0 then word (i + 1)
    else begin
      let w = ref t.(i) and bit = ref 0 in
      while !w land 1 = 0 do
        w := !w lsr 1;
        incr bit
      done;
      Some ((i * bits_per_word) + !bit)
    end
  in
  word 0

let iter f (t : t) =
  Array.iteri
    (fun wi word ->
      let w = ref word and bit = ref 0 in
      while !w <> 0 do
        if !w land 1 <> 0 then f ((wi * bits_per_word) + !bit);
        w := !w lsr 1;
        incr bit
      done)
    t

let to_sorted_array (t : t) =
  let out = Array.make (cardinal t) 0 in
  let k = ref 0 in
  iter
    (fun i ->
      out.(!k) <- i;
      incr k)
    t;
  out

let compare (a : t) (b : t) = Stdlib.compare a b
