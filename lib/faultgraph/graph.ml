type node_id = int

type gate = And | Or | Kofn of int

type node_kind = Basic of float option | Gate of gate

type node = {
  id : node_id;
  name : string;
  kind : node_kind;
  children : node_id array;
}

type t = {
  nodes : node array;
  top_id : node_id;
  order : node_id array; (* topological, children first, reachable only *)
  reachable_basics : node_id array;
  basic_index : (string, node_id) Hashtbl.t;
}

module Builder = struct
  type graph = t

  type t = {
    mutable acc : node list; (* reversed *)
    mutable count : int;
    basics : (string, node_id * float option) Hashtbl.t;
  }

  let create () = { acc = []; count = 0; basics = Hashtbl.create 64 }

  let check_prob = function
    | Some p when not (p >= 0. && p <= 1.) ->
        invalid_arg "Builder.add_basic: probability out of [0,1]"
    | _ -> ()

  let add_basic b ?prob name =
    check_prob prob;
    match Hashtbl.find_opt b.basics name with
    | Some (id, p0) ->
        (* Shared component: must agree with the original declaration. *)
        (match (p0, prob) with
        | _, None -> ()
        | Some p0, Some p when p0 = p -> ()
        | None, Some _ ->
            invalid_arg
              (Printf.sprintf
                 "Builder.add_basic: %S re-added with a probability" name)
        | Some _, Some _ ->
            invalid_arg
              (Printf.sprintf
                 "Builder.add_basic: %S re-added with a different probability"
                 name));
        id
    | None ->
        let id = b.count in
        b.count <- id + 1;
        b.acc <- { id; name; kind = Basic prob; children = [||] } :: b.acc;
        Hashtbl.add b.basics name (id, prob);
        id

  (* Gate names are labels only (risk groups report basic-event
     names), so a gate may share its name with a basic event — e.g. a
     VM appears both as an instance failure leaf and as the gate
     aggregating its dependencies. *)
  let add_gate b ~name gate children =
    if children = [] then
      invalid_arg
        (Printf.sprintf "Builder.add_gate: gate %S has no children" name);
    let n_children = List.length children in
    (match gate with
    | Kofn k when k < 1 || k > n_children ->
        invalid_arg
          (Printf.sprintf
             "Builder.add_gate: gate %S requires %d of %d children (k must be \
              within [1, %d])"
             name k n_children n_children)
    | Kofn _ | And | Or -> ());
    List.iter
      (fun c ->
        if c < 0 || c >= b.count then
          invalid_arg
            (Printf.sprintf
               "Builder.add_gate: gate %S references unknown child id %d" name c))
      children;
    let id = b.count in
    b.count <- id + 1;
    b.acc <-
      { id; name; kind = Gate gate; children = Array.of_list children } :: b.acc;
    id

  let find_basic b name = Option.map fst (Hashtbl.find_opt b.basics name)

  let build b ~top =
    if top < 0 || top >= b.count then invalid_arg "Builder.build: unknown top";
    let nodes = Array.of_list (List.rev b.acc) in
    (* Children always have smaller ids than their parents (add_gate
       only accepts existing ids), so the graph is acyclic by
       construction; a reachability pass computes the topological
       order restricted to the top event's cone. *)
    let reachable = Array.make (Array.length nodes) false in
    let rec mark id =
      if not reachable.(id) then begin
        reachable.(id) <- true;
        Array.iter mark nodes.(id).children
      end
    in
    mark top;
    let order = ref [] in
    for id = Array.length nodes - 1 downto 0 do
      if reachable.(id) then order := id :: !order
    done;
    let order = Array.of_list !order in
    let reachable_basics =
      Array.of_list
        (List.filter
           (fun id -> match nodes.(id).kind with Basic _ -> true | Gate _ -> false)
           (Array.to_list order))
    in
    let basic_index = Hashtbl.create 64 in
    Array.iter
      (fun id -> Hashtbl.replace basic_index nodes.(id).name id)
      reachable_basics;
    { nodes; top_id = top; order; reachable_basics; basic_index }
end

let top g = g.top_id
let node g id = g.nodes.(id)
let node_count g = Array.length g.nodes
let basic_ids g = g.reachable_basics

let name_of g id = g.nodes.(id).name

let prob_of g id =
  match g.nodes.(id).kind with Basic p -> p | Gate _ -> None

let is_basic g id =
  match g.nodes.(id).kind with Basic _ -> true | Gate _ -> false

let basic_names g =
  Array.to_list (Array.map (fun id -> name_of g id) g.reachable_basics)

let find_basic g name = Hashtbl.find_opt g.basic_index name

let topological_order g = g.order

let of_weighted_sets sets =
  if sets = [] then invalid_arg "Graph.of_component_sets: no sources";
  let b = Builder.create () in
  let source_gates =
    List.map
      (fun (source, components) ->
        if components = [] then
          invalid_arg
            (Printf.sprintf "Graph.of_component_sets: source %S is empty" source);
        let children =
          List.map (fun (c, prob) -> Builder.add_basic b ?prob c) components
        in
        Builder.add_gate b ~name:source Or children)
      sets
  in
  let top = Builder.add_gate b ~name:"deployment" And source_gates in
  Builder.build b ~top

let of_component_sets sets =
  of_weighted_sets
    (List.map (fun (s, cs) -> (s, List.map (fun c -> (c, None)) cs)) sets)

let of_fault_sets sets =
  of_weighted_sets
    (List.map
       (fun (s, cs) -> (s, List.map (fun (c, p) -> (c, Some p)) cs))
       sets)

let evaluate_into g ~values =
  if Array.length values <> Array.length g.nodes then
    invalid_arg "Graph.evaluate_into: values length mismatch";
  Array.iter
    (fun id ->
      let n = g.nodes.(id) in
      match n.kind with
      | Basic _ -> ()
      | Gate gate ->
          let children = n.children in
          let value =
            match gate with
            | Or ->
                let rec any i =
                  i < Array.length children
                  && (values.(children.(i)) || any (i + 1))
                in
                any 0
            | And ->
                let rec all i =
                  i >= Array.length children
                  || (values.(children.(i)) && all (i + 1))
                in
                all 0
            | Kofn k ->
                let count = ref 0 in
                Array.iter (fun c -> if values.(c) then incr count) children;
                !count >= k
          in
          values.(id) <- value)
    g.order

let evaluate g ~failed =
  let values = Array.make (Array.length g.nodes) false in
  Array.iter
    (fun id -> if is_basic g id then values.(id) <- failed id)
    g.reachable_basics;
  evaluate_into g ~values;
  values.(g.top_id)

let component_sets g =
  let top_node = g.nodes.(g.top_id) in
  let memo = Hashtbl.create 64 in
  let module S = Set.Make (String) in
  let rec leaves id =
    match Hashtbl.find_opt memo id with
    | Some s -> s
    | None ->
        let n = g.nodes.(id) in
        let s =
          match n.kind with
          | Basic _ -> S.singleton n.name
          | Gate _ ->
              Array.fold_left (fun acc c -> S.union acc (leaves c)) S.empty n.children
        in
        Hashtbl.add memo id s;
        s
  in
  Array.to_list top_node.children
  |> List.map (fun c -> (g.nodes.(c).name, S.elements (leaves c)))

let pp fmt g =
  let basics = Array.length g.reachable_basics in
  let gates = Array.length g.order - basics in
  let gate_name =
    match g.nodes.(g.top_id).kind with
    | Gate And -> "AND"
    | Gate Or -> "OR"
    | Gate (Kofn k) -> Printf.sprintf "%d-of-n" k
    | Basic _ -> "basic"
  in
  Format.fprintf fmt "fault graph: %d nodes (%d basic, %d gates), top=%s(%s)"
    (Array.length g.order) basics gates g.nodes.(g.top_id).name gate_name
