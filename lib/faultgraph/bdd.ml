(* Reduced ordered BDD with hash-consing. Node ids are indexes into
   growable arrays; 0 and 1 are the terminals. Variables are ranks in
   the basic-event order (ascending rank toward the leaves). *)

module Obs = Indaas_obs.Registry

type node = int

type manager = {
  mutable var : int array; (* rank per node *)
  mutable low : int array;
  mutable high : int array;
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t; (* (var, low, high) -> node *)
  apply_cache : (int * int * int, int) Hashtbl.t; (* (op, a, b) -> node *)
  rank_to_basic : Graph.node_id array;
  (* Minimal-solutions (Rauzy) pass: cut-set families live in a
     zero-suppressed sub-store of the same manager. ZDD node 0 is the
     empty family, node 1 the family {∅}; a decision node (x, lo, hi)
     encodes lo ∪ {S ∪ {x} | S ∈ hi}. *)
  mutable zvar : int array;
  mutable zlow : int array;
  mutable zhigh : int array;
  mutable znext : int;
  zunique : (int * int * int, int) Hashtbl.t;
  zop_cache : (int * int * int, int) Hashtbl.t; (* (op, a, b) -> zdd *)
  minsol_cache : (int, int) Hashtbl.t; (* bdd node -> zdd node *)
}

let terminal_false = 0
let terminal_true = 1

let create rank_to_basic =
  let initial = 1024 in
  let m =
    {
      var = Array.make initial max_int;
      low = Array.make initial (-1);
      high = Array.make initial (-1);
      next = 2;
      unique = Hashtbl.create 1024;
      apply_cache = Hashtbl.create 4096;
      rank_to_basic;
      zvar = Array.make initial max_int;
      zlow = Array.make initial (-1);
      zhigh = Array.make initial (-1);
      znext = 2;
      zunique = Hashtbl.create 1024;
      zop_cache = Hashtbl.create 4096;
      minsol_cache = Hashtbl.create 1024;
    }
  in
  (* terminals carry an infinite rank so ordering checks are uniform *)
  m.var.(terminal_false) <- max_int;
  m.var.(terminal_true) <- max_int;
  m.zvar.(terminal_false) <- max_int;
  m.zvar.(terminal_true) <- max_int;
  m

let grow m =
  let n = Array.length m.var in
  let bigger default arr =
    let a = Array.make (2 * n) default in
    Array.blit arr 0 a 0 n;
    a
  in
  m.var <- bigger max_int m.var;
  m.low <- bigger (-1) m.low;
  m.high <- bigger (-1) m.high

let mk m var low high =
  if low = high then low
  else
    let key = (var, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some node -> node
    | None ->
        if m.next >= Array.length m.var then grow m;
        let node = m.next in
        m.next <- node + 1;
        m.var.(node) <- var;
        m.low.(node) <- low;
        m.high.(node) <- high;
        Hashtbl.replace m.unique key node;
        node

type op = Op_and | Op_or

let op_code = function Op_and -> 0 | Op_or -> 1

let terminal_case op a b =
  match op with
  | Op_and ->
      if a = terminal_false || b = terminal_false then Some terminal_false
      else if a = terminal_true then Some b
      else if b = terminal_true then Some a
      else if a = b then Some a
      else None
  | Op_or ->
      if a = terminal_true || b = terminal_true then Some terminal_true
      else if a = terminal_false then Some b
      else if b = terminal_false then Some a
      else if a = b then Some a
      else None

let rec apply m op a b =
  match terminal_case op a b with
  | Some r -> r
  | None ->
      (* commutative ops: canonicalize the cache key *)
      let a, b = if a <= b then (a, b) else (b, a) in
      let key = (op_code op, a, b) in
      (match Hashtbl.find_opt m.apply_cache key with
      | Some r -> r
      | None ->
          let va = m.var.(a) and vb = m.var.(b) in
          let top = min va vb in
          let a_low = if va = top then m.low.(a) else a in
          let a_high = if va = top then m.high.(a) else a in
          let b_low = if vb = top then m.low.(b) else b in
          let b_high = if vb = top then m.high.(b) else b in
          let low = apply m op a_low b_low in
          let high = apply m op a_high b_high in
          let r = mk m top low high in
          Hashtbl.replace m.apply_cache key r;
          r)

let apply_list m op = function
  | [] -> invalid_arg "Bdd.apply_list: empty"
  | first :: rest -> List.fold_left (fun acc x -> apply m op acc x) first rest

let negate m a =
  (* !a computed structurally (no complement edges); memoized through
     the apply cache with a pseudo-op. *)
  let rec neg a =
    if a = terminal_false then terminal_true
    else if a = terminal_true then terminal_false
    else
      let key = (2, a, a) in
      match Hashtbl.find_opt m.apply_cache key with
      | Some r -> r
      | None ->
          let r = mk m m.var.(a) (neg m.low.(a)) (neg m.high.(a)) in
          Hashtbl.replace m.apply_cache key r;
          r
  in
  neg a

(* at-least-k-of over a list of BDDs, with memoization over (k, index)
   — the standard threshold recursion. *)
let kofn m k nodes =
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  let memo = Hashtbl.create 64 in
  let rec go k i =
    if k <= 0 then terminal_true
    else if n - i < k then terminal_false
    else
      match Hashtbl.find_opt memo (k, i) with
      | Some r -> r
      | None ->
          let with_i = go (k - 1) (i + 1) in
          let without_i = go k (i + 1) in
          (* arr.(i) ? with_i : without_i  ==  (x AND with) OR (!x AND without):
             use Shannon-style combination via apply *)
          let x = arr.(i) in
          let r =
            apply m Op_or
              (apply m Op_and x with_i)
              (apply m Op_and (negate m x) without_i)
          in
          Hashtbl.replace memo (k, i) r;
          r
  in
  go k 0

let of_graph g =
  let basics = Graph.basic_ids g in
  let rank_of = Hashtbl.create (Array.length basics) in
  Array.iteri (fun rank id -> Hashtbl.replace rank_of id rank) basics;
  let m = create (Array.copy basics) in
  let memo : node option array = Array.make (Graph.node_count g) None in
  Array.iter
    (fun id ->
      let n = Graph.node g id in
      let bdd =
        match n.Graph.kind with
        | Graph.Basic _ ->
            let rank = Hashtbl.find rank_of id in
            mk m rank terminal_false terminal_true
        | Graph.Gate gate ->
            let children =
              Array.to_list
                (Array.map
                   (fun c ->
                     match memo.(c) with Some b -> b | None -> assert false)
                   n.Graph.children)
            in
            (match gate with
            | Graph.Or -> apply_list m Op_or children
            | Graph.And -> apply_list m Op_and children
            | Graph.Kofn k -> kofn m k children)
      in
      memo.(id) <- Some bdd)
    (Graph.topological_order g);
  let top = match memo.(Graph.top g) with Some b -> b | None -> assert false in
  (m, top)

let size m = m.next - 2

let node_count m node =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if n > terminal_true && not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      go m.low.(n);
      go m.high.(n)
    end
  in
  go node;
  Hashtbl.length seen

let evaluate m node ~failed =
  let rec go n =
    if n = terminal_false then false
    else if n = terminal_true then true
    else if failed m.rank_to_basic.(m.var.(n)) then go m.high.(n)
    else go m.low.(n)
  in
  go node

let probability m node ~prob_of =
  let memo = Hashtbl.create 256 in
  let rec go n =
    if n = terminal_false then 0.
    else if n = terminal_true then 1.
    else
      match Hashtbl.find_opt memo n with
      | Some p -> p
      | None ->
          let p_fail = prob_of m.rank_to_basic.(m.var.(n)) in
          let p = (p_fail *. go m.high.(n)) +. ((1. -. p_fail) *. go m.low.(n)) in
          Hashtbl.replace memo n p;
          p
  in
  go node

let graph_probability g =
  let m, top = of_graph g in
  probability m top ~prob_of:(fun id ->
      match Graph.prob_of g id with
      | Some p -> p
      | None -> raise (Probability.Missing_probability (Graph.name_of g id)))

let sat_count m node ~vars =
  if vars < 0 then invalid_arg "Bdd.sat_count: negative vars";
  (* Count over the full variable space: each skipped level doubles. *)
  let memo = Hashtbl.create 256 in
  let rec go n level =
    (* level = next variable rank to account for *)
    if n = terminal_false then 0.
    else if n = terminal_true then 2. ** float_of_int (vars - level)
    else
      let v = m.var.(n) in
      let skipped = 2. ** float_of_int (v - level) in
      let inner =
        match Hashtbl.find_opt memo n with
        | Some c -> c
        | None ->
            let c = go m.low.(n) (v + 1) +. go m.high.(n) (v + 1) in
            Hashtbl.replace memo n c;
            c
      in
      skipped *. inner
  in
  go node 0

let prob_of_var m node =
  if node <= terminal_true then invalid_arg "Bdd.prob_of_var: terminal";
  m.rank_to_basic.(m.var.(node))

let is_terminal _ node =
  if node = terminal_false then Some false
  else if node = terminal_true then Some true
  else None

(* --- minimal risk groups (Rauzy's minimal-solutions pass) ----------- *)

(* The cut-set families below are zero-suppressed: a node whose
   high-branch family is empty is its low branch, and skipped
   variables mean "absent from every member", so there is no
   don't-care collapse to corrupt set membership. *)

let zgrow m =
  let n = Array.length m.zvar in
  let bigger default arr =
    let a = Array.make (2 * n) default in
    Array.blit arr 0 a 0 n;
    a
  in
  m.zvar <- bigger max_int m.zvar;
  m.zlow <- bigger (-1) m.zlow;
  m.zhigh <- bigger (-1) m.zhigh

let zmk m var low high =
  if high = terminal_false then low
  else
    let key = (var, low, high) in
    match Hashtbl.find_opt m.zunique key with
    | Some node -> node
    | None ->
        if m.znext >= Array.length m.zvar then zgrow m;
        let node = m.znext in
        m.znext <- node + 1;
        m.zvar.(node) <- var;
        m.zlow.(node) <- low;
        m.zhigh.(node) <- high;
        Hashtbl.replace m.zunique key node;
        node

(* Family union (plain set union of members). *)
let rec zunion m a b =
  if a = b then a
  else if a = terminal_false then b
  else if b = terminal_false then a
  else begin
    let a, b = if a <= b then (a, b) else (b, a) in
    let key = (0, a, b) in
    match Hashtbl.find_opt m.zop_cache key with
    | Some r -> r
    | None ->
        let va = m.zvar.(a) and vb = m.zvar.(b) in
        let r =
          if va = vb then
            (* both decision nodes on the same variable (terminals have
               rank max_int and were handled above except a = 1, which
               has no equal-rank partner left) *)
            zmk m va
              (zunion m m.zlow.(a) m.zlow.(b))
              (zunion m m.zhigh.(a) m.zhigh.(b))
          else if va < vb then zmk m va (zunion m m.zlow.(a) b) m.zhigh.(a)
          else zmk m vb (zunion m a m.zlow.(b)) m.zhigh.(b)
        in
        Hashtbl.replace m.zop_cache key r;
        r
  end

(* [zwithout m a b]: the members of [a] that are supersets of no
   member of [b] — Rauzy's "without" (a.k.a. subsume-difference). *)
let rec zwithout m a b =
  if a = terminal_false then terminal_false
  else if b = terminal_false then a
  else if b = terminal_true then terminal_false (* every set ⊇ ∅ *)
  else if a = b then terminal_false
  else if a = terminal_true then
    (* ∅ is a superset of a member iff ∅ itself is one: chase b's
       all-absent chain. *)
    zwithout m a m.zlow.(b)
  else begin
    let key = (1, a, b) in
    match Hashtbl.find_opt m.zop_cache key with
    | Some r -> r
    | None ->
        let va = m.zvar.(a) and vb = m.zvar.(b) in
        let r =
          if va = vb then
            (* members without x are subsumed only by b-members without
               x; members with x by either kind (x dropped). *)
            zmk m va
              (zwithout m m.zlow.(a) m.zlow.(b))
              (zwithout m m.zhigh.(a) (zunion m m.zlow.(b) m.zhigh.(b)))
          else if va < vb then
            (* no b-member contains x = va *)
            zmk m va (zwithout m m.zlow.(a) b) (zwithout m m.zhigh.(a) b)
          else
            (* b-members containing vb cannot subsume: a lacks vb *)
            zwithout m a m.zlow.(b)
        in
        Hashtbl.replace m.zop_cache key r;
        r
  end

(* Minimal solutions of a monotone BDD (Rauzy 1993): with f = ite(x,
   f1, f0) and f0 ⇒ f1, the minimal cut sets are MinCuts(f0) plus
   {x} ∪ C for every C ∈ MinCuts(f1) subsuming no member of
   MinCuts(f0). *)
let rec minsol m n =
  if n = terminal_false then terminal_false
  else if n = terminal_true then terminal_true
  else
    match Hashtbl.find_opt m.minsol_cache n with
    | Some z -> z
    | None ->
        let z0 = minsol m m.low.(n) in
        let z1 = minsol m m.high.(n) in
        let z = zmk m m.var.(n) z0 (zwithout m z1 z0) in
        Hashtbl.replace m.minsol_cache n z;
        z

let family_size m z =
  let memo = Hashtbl.create 256 in
  let rec go z =
    if z = terminal_false then 0
    else if z = terminal_true then 1
    else
      match Hashtbl.find_opt memo z with
      | Some c -> c
      | None ->
          let c = go m.zlow.(z) + go m.zhigh.(z) in
          Hashtbl.replace memo z c;
          c
  in
  go z

let iter_family m f z =
  let rec go acc z =
    if z = terminal_false then ()
    else if z = terminal_true then f (List.rev acc)
    else begin
      go acc m.zlow.(z);
      go (m.zvar.(z) :: acc) m.zhigh.(z)
    end
  in
  go [] z

let minimal_rg_count g =
  let m, top = of_graph g in
  family_size m (minsol m top)

let minimal_risk_groups ?(max_size = max_int) g =
  Obs.with_span "rg.bdd" @@ fun () ->
  let m, top = of_graph g in
  let z = minsol m top in
  if Obs.on () then begin
    Obs.incr ~by:(size m) "bdd.nodes";
    Obs.incr ~by:(m.znext - 2) "bdd.zdd_nodes";
    Obs.span_attr "bdd_nodes" (string_of_int (size m));
    Obs.span_attr "family_size" (string_of_int (family_size m z))
  end;
  let out = ref [] in
  iter_family m
    (fun ranks ->
      if List.length ranks <= max_size then begin
        let rg = Array.of_list (List.map (fun r -> m.rank_to_basic.(r)) ranks) in
        Array.sort compare rg;
        out := rg :: !out
      end)
    z;
  let family = Cutset.sort_family !out in
  if Obs.on () then
    Obs.observe ~bounds:[| 1.; 2.; 5.; 10.; 50.; 100.; 1000.; 10000. |]
      "rg.family_size"
      (float_of_int (List.length family));
  family
