(** Packed int-word bitsets over a fixed universe of node ids.

    The enumeration engine's absorption loop is dominated by subset
    and union tests on risk groups; packing each group into
    [width/63]-word arrays turns both into a handful of machine-word
    operations. All sets over one graph share the same width, so
    operations never reallocate beyond the result. *)

type t

val bits_per_word : int

val create : width:int -> t
(** The empty set over a universe of ids in [\[0, width)]. *)

val of_sorted_array : width:int -> int array -> t

val mem : t -> int -> bool
val add : t -> int -> unit
(** In-place insertion. Raises [Invalid_argument] past the width. *)

val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is [a ⊆ b] in O(words). *)

val union : t -> t -> t
(** Fresh set; O(words). *)

val cardinal : t -> int
val min_elt_opt : t -> int option
val iter : (int -> unit) -> t -> unit
val to_sorted_array : t -> int array
val hash : t -> int
val compare : t -> t -> int
