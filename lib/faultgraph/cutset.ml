module Obs = Indaas_obs.Registry

type rg = Graph.node_id array

exception Too_many_cut_sets of int

(* Hot-loop accounting: plain module-level refs so the absorption
   kernel never pays the observability facade per probe; the deltas
   are published as counters once per [minimal_risk_groups] call when
   recording is on. *)
let subset_probes = ref 0
let absorbed_sets = ref 0

(* --- canonical family order ---------------------------------------- *)

let compare_rg (a : rg) (b : rg) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i >= la then 0
      else
        let c = compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let sort_family family = List.sort compare_rg family

(* --- packed-bitset absorption kernel ------------------------------- *)

(* Families are carried through the bottom-up traversal as packed
   bitsets over the graph's node-id universe (see {!Bitset}): the
   absorption hot loop then costs O(words) per subset test instead of
   a sorted-array merge walk. Sorted arrays only materialize at the
   API boundary. *)

module BsTbl = Hashtbl.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let hash = Bitset.hash
end)

(* Keep only the minimal sets of a family. Candidates are visited
   smallest-first; accepted sets are bucketed by their minimum element
   so a candidate only probes buckets of elements it contains (any
   subset's minimum is one of the candidate's own elements). *)
let minimize (family : Bitset.t list) : Bitset.t list =
  let sized = List.map (fun s -> (Bitset.cardinal s, s)) family in
  let sorted = List.sort (fun (la, _) (lb, _) -> compare la lb) sized in
  let seen = BsTbl.create (List.length family) in
  let by_min : (int, Bitset.t list) Hashtbl.t = Hashtbl.create 64 in
  let has_subset s =
    let found = ref false in
    (try
       Bitset.iter
         (fun x ->
           match Hashtbl.find_opt by_min x with
           | None -> ()
           | Some sets ->
               if
                 List.exists
                   (fun t ->
                     incr subset_probes;
                     Bitset.subset t s)
                   sets
               then begin
                 found := true;
                 raise Exit
               end)
         s
     with Exit -> ());
    !found
  in
  let accepted = ref [] in
  List.iter
    (fun (_, s) ->
      if BsTbl.mem seen s || has_subset s then incr absorbed_sets
      else begin
        BsTbl.replace seen s ();
        (match Bitset.min_elt_opt s with
        | None -> ()
        | Some min_elt ->
            let bucket =
              match Hashtbl.find_opt by_min min_elt with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace by_min min_elt (s :: bucket));
        accepted := s :: !accepted
      end)
    sorted;
  List.rev !accepted

(* --- family combination -------------------------------------------- *)

let check_budget ~max_family n =
  if n > max_family then raise (Too_many_cut_sets n)

(* The budget measures *minimized* family sizes: a gate whose absorbed
   family fits must not abort just because the raw concatenation or
   cross-product transiently overshot. *)

let or_combine ~max_family families =
  let merged = minimize (List.concat families) in
  check_budget ~max_family (List.length merged);
  merged

let and_combine ~max_size ~max_family families =
  let product f1 f2 =
    (* Raw pairwise unions are absorbed in chunks so intermediate
       memory stays O(max_family) while the budget still applies to
       post-minimization growth only. *)
    let flush_at = max 1024 max_family in
    let acc = ref [] and buf = ref [] and buf_n = ref 0 in
    let flush () =
      if !buf_n > 0 then begin
        let merged = minimize (List.rev_append !buf !acc) in
        check_budget ~max_family (List.length merged);
        acc := merged;
        buf := [];
        buf_n := 0
      end
    in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            let u = Bitset.union a b in
            if Bitset.cardinal u <= max_size then begin
              buf := u :: !buf;
              incr buf_n;
              if !buf_n >= flush_at then flush ()
            end)
          f2)
      f1;
    flush ();
    !acc
  in
  match families with
  | [] -> invalid_arg "Cutset.and_combine: empty"
  | first :: rest -> List.fold_left product first rest

(* Enumerate k-subsets of a list, calling [f] on each. *)
let iter_ksubsets k xs f =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let chosen = Array.make k 0 in
  let rec go start depth =
    if depth = k then f (Array.to_list (Array.map (fun i -> arr.(i)) chosen))
    else
      for i = start to n - (k - depth) do
        chosen.(depth) <- i;
        go (i + 1) (depth + 1)
      done
  in
  if k >= 0 && k <= n then go 0 0

let minimal_risk_groups ?(max_size = max_int) ?(max_family = 500_000) g =
  Obs.with_span "rg.enum" @@ fun () ->
  let probes0 = !subset_probes and absorbed0 = !absorbed_sets in
  let width = Graph.node_count g in
  let memo : Bitset.t list option array = Array.make width None in
  Array.iter
    (fun id ->
      let n = Graph.node g id in
      let family =
        match n.Graph.kind with
        | Graph.Basic _ -> [ Bitset.of_sorted_array ~width [| id |] ]
        | Graph.Gate gate ->
            let child_families =
              Array.to_list
                (Array.map
                   (fun c ->
                     match memo.(c) with
                     | Some f -> f
                     | None -> assert false (* topological order *))
                   n.Graph.children)
            in
            (match gate with
            | Graph.Or -> or_combine ~max_family child_families
            | Graph.And -> and_combine ~max_size ~max_family child_families
            | Graph.Kofn k ->
                let acc = ref [] in
                iter_ksubsets k child_families (fun subset ->
                    let f = and_combine ~max_size ~max_family subset in
                    acc := f :: !acc);
                or_combine ~max_family !acc)
      in
      memo.(id) <- Some family)
    (Graph.topological_order g);
  match memo.(Graph.top g) with
  | Some f ->
      let family = sort_family (List.map Bitset.to_sorted_array f) in
      if Obs.on () then begin
        Obs.incr ~by:(!subset_probes - probes0) "cutset.subset_probes";
        Obs.incr ~by:(!absorbed_sets - absorbed0) "cutset.absorbed_sets";
        let n = List.length family in
        Obs.span_attr "family_size" (string_of_int n);
        Obs.observe ~bounds:[| 1.; 2.; 5.; 10.; 50.; 100.; 1000.; 10000. |]
          "rg.family_size" (float_of_int n)
      end;
      family
  | None -> assert false

let names g rg = Array.to_list (Array.map (fun id -> Graph.name_of g id) rg)

let is_risk_group g ids =
  let module IS = Set.Make (Int) in
  let set = IS.of_list ids in
  Graph.evaluate g ~failed:(fun id -> IS.mem id set)

let is_minimal_risk_group g ids =
  is_risk_group g ids
  && List.for_all
       (fun removed ->
         not (is_risk_group g (List.filter (fun x -> x <> removed) ids)))
       ids

module RgTbl = Hashtbl.Make (struct
  type t = rg

  let equal (a : rg) (b : rg) = a = b
  let hash (a : rg) = Hashtbl.hash a
end)

module RgSet = struct
  type t = unit RgTbl.t

  let create () = RgTbl.create 256
  let add t rg = RgTbl.replace t rg ()
  let mem t rg = RgTbl.mem t rg
  let cardinal t = RgTbl.length t
  let to_list t = RgTbl.fold (fun k () acc -> k :: acc) t []
end
