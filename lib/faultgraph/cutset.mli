(** Minimal risk groups by exact cut-set analysis (paper §4.1.2,
    “minimal RG algorithm”).

    A risk group (RG) is a set of basic events whose simultaneous
    failure makes the top event occur; it is minimal if no proper
    subset is an RG. The algorithm traverses the fault graph bottom-up
    computing, for each event, its family of minimal cut sets:
    OR-gates take the minimized union of their children's families,
    AND-gates the minimized cross-product, k-of-n gates the minimized
    union over all k-subsets. This is the classic MOCUS-style
    fault-tree procedure; exact, but worst-case exponential (the paper
    notes NP-hardness via Valiant 1979).

    Internally families are packed {!Bitset} words, making the
    absorption hot loop O(words) per subset/union. For graphs dense
    enough to trip the family budget anyway, {!Bdd.minimal_risk_groups}
    computes the same families symbolically. *)

type rg = Graph.node_id array
(** A risk group as a sorted array of basic-event ids. *)

exception Too_many_cut_sets of int
(** Raised when a minimized family size exceeds the configured budget
    — the signal to fall back to {!Bdd.minimal_risk_groups} or
    {!Sampling}. *)

val minimal_risk_groups :
  ?max_size:int -> ?max_family:int -> Graph.t -> rg list
(** All minimal RGs of the top event, in {!sort_family} order.

    @param max_size discard cut sets larger than this bound during the
    computation (sound for finding all minimal RGs of size up to the
    bound; unbounded by default).
    @param max_family abort with {!Too_many_cut_sets} when any event's
    family {e after absorption} exceeds this many sets (default
    500_000). Raw concatenations and cross-products that minimize back
    under the budget do not abort. *)

val compare_rg : rg -> rg -> int
(** Canonical risk-group order: smaller sets first, then
    lexicographically by ids. *)

val sort_family : rg list -> rg list
(** Sorts a family by {!compare_rg} — the canonical order in which
    both RG engines return their results. *)

val names : Graph.t -> rg -> string list
(** Basic-event names of an RG, sorted by id. *)

val is_risk_group : Graph.t -> Graph.node_id list -> bool
(** [is_risk_group g ids] checks by direct evaluation whether failing
    exactly [ids] makes the top event occur. *)

val is_minimal_risk_group : Graph.t -> Graph.node_id list -> bool
(** Checks {!is_risk_group} and that no single removal keeps it one. *)

module RgSet : sig
  (** Collections of risk groups keyed by canonical form. *)

  type t

  val create : unit -> t
  val add : t -> rg -> unit
  val mem : t -> rg -> bool
  val cardinal : t -> int
  val to_list : t -> rg list
end
