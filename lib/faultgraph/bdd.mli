(** Binary decision diagrams over fault graphs.

    The classic fault-tree analysis literature the paper builds on
    (Vesely et al.; Ramamoorthy et al.) is dominated today by BDD
    methods: compile the top event's structure function into a reduced
    ordered BDD, then compute the exact top-event probability in time
    linear in the BDD — no 2^m inclusion–exclusion over minimal risk
    groups, no Monte-Carlo error. This module provides that third
    exact path and the ablation benchmark compares all three.

    Variables are the graph's basic events, ordered by topological
    position. Hash-consing keeps the diagram reduced; [apply] is
    memoized per operation. *)

type manager
type node

val of_graph : Graph.t -> manager * node
(** Compiles the top event. AND/OR/k-of-n gates are supported. *)

val size : manager -> int
(** Unique decision nodes allocated in the manager. *)

val node_count : manager -> node -> int
(** Decision nodes reachable from [node]. *)

val evaluate : manager -> node -> failed:(Graph.node_id -> bool) -> bool
(** Follows the decision path for one assignment. *)

val probability : manager -> node -> prob_of:(Graph.node_id -> float) -> float
(** Exact [Pr(top event)] under independent basic-event failure
    probabilities. *)

val graph_probability : Graph.t -> float
(** Convenience: compile and evaluate with the graph's attached
    probabilities. Raises
    {!Probability.Missing_probability} if a reachable basic event
    has none. *)

val sat_count : manager -> node -> vars:int -> float
(** Number of failure states: assignments of [vars] variables under
    which the top event occurs (as a float — it can exceed 2^62). *)

val prob_of_var : manager -> node -> Graph.node_id
(** The decision variable of an internal node. Raises
    [Invalid_argument] on a terminal. *)

val is_terminal : manager -> node -> bool option
(** [Some b] when the node is the constant [b]; [None] otherwise. *)

(** {1 Minimal risk groups}

    The second RG engine (besides {!Cutset.minimal_risk_groups}):
    compile the top event into a BDD, then extract its minimal
    solutions with Rauzy's [without]/[minsol] pass. Families are held
    in a zero-suppressed sub-store of the manager, and [minsol],
    [union] and [without] are all memoized there, so shared fault-graph
    structure is minimized once — no explicit family enumeration until
    the final read-out. Sound for the monotone functions fault graphs
    denote (AND/OR/k-of-n over positive events). *)

val minimal_risk_groups :
  ?max_size:int -> Graph.t -> Graph.node_id array list
(** All minimal RGs of the top event, in {!Cutset.sort_family} order —
    the same family (and order) the enumeration engine returns.

    @param max_size drop RGs larger than this bound from the result
    (the symbolic pass itself is unbounded). *)

val minimal_rg_count : Graph.t -> int
(** Number of minimal RGs, counted on the shared family structure
    without materializing any of them. *)
