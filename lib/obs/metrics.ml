module Json = Indaas_util.Json
module Stats = Indaas_util.Stats
module Table = Indaas_util.Table

(* Default histogram bucket upper bounds, in seconds: microseconds up
   to a minute, exponential. Callers measuring something other than
   durations pass their own bounds on first observation. *)
let default_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 60. |]

type histogram = {
  bounds : float array;  (* ascending upper bounds; one overflow bucket *)
  buckets : int array;  (* length = Array.length bounds + 1 *)
  mutable samples : float list;  (* raw values, for exact percentiles *)
  mutable sum : float;
  mutable n : int;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms

let incr t ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic";
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let observe t ?(bounds = default_bounds) name v =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        if Array.length bounds = 0 then
          invalid_arg "Metrics.observe: empty bucket bounds";
        Array.iteri
          (fun i b ->
            if i > 0 && b <= bounds.(i - 1) then
              invalid_arg "Metrics.observe: bucket bounds must ascend")
          bounds;
        let h =
          {
            bounds = Array.copy bounds;
            buckets = Array.make (Array.length bounds + 1) 0;
            samples = [];
            sum = 0.;
            n = 0;
          }
        in
        Hashtbl.replace t.histograms name h;
        h
  in
  let rec bucket i =
    if i >= Array.length h.bounds then i
    else if v <= h.bounds.(i) then i
    else bucket (i + 1)
  in
  h.buckets.(bucket 0) <- h.buckets.(bucket 0) + 1;
  h.samples <- v :: h.samples;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1

let histogram t name = Hashtbl.find_opt t.histograms name

let percentile h p =
  if h.n = 0 then invalid_arg "Metrics.percentile: empty histogram";
  Stats.percentile (Array.of_list h.samples) p

let histogram_count h = h.n
let histogram_sum h = h.sum

(* Sorted name order everywhere below: exports are byte-deterministic
   given deterministic values. *)
let sorted_names tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let counters t =
  List.map (fun n -> (n, counter t n)) (sorted_names t.counters)

let gauges t =
  List.map
    (fun n -> (n, Option.get (gauge t n)))
    (sorted_names t.gauges)

let histograms t =
  List.map
    (fun n -> (n, Option.get (histogram t n)))
    (sorted_names t.histograms)

let is_empty t =
  Hashtbl.length t.counters = 0
  && Hashtbl.length t.gauges = 0
  && Hashtbl.length t.histograms = 0

let histogram_to_json h =
  let pct p = Json.Float (percentile h p) in
  Json.Obj
    [
      ("count", Json.Int h.n);
      ("sum", Json.Float h.sum);
      ("p50", pct 50.);
      ("p90", pct 90.);
      ("p99", pct 99.);
      ( "buckets",
        Json.List
          (Array.to_list
             (Array.mapi
                (fun i count ->
                  Json.Obj
                    [
                      ( "le",
                        if i < Array.length h.bounds then
                          Json.Float h.bounds.(i)
                        else Json.Null );
                      ("count", Json.Int count);
                    ])
                h.buckets)) );
    ]

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (counters t)) );
      ( "gauges",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) (gauges t)) );
      ( "histograms",
        Json.Obj
          (List.map (fun (n, h) -> (n, histogram_to_json h)) (histograms t)) );
    ]

let render t =
  if is_empty t then "no metrics recorded\n"
  else begin
    let buf = Buffer.create 512 in
    let scalars = counters t and gauges = gauges t in
    if scalars <> [] || gauges <> [] then begin
      let tbl =
        Table.create ~aligns:[ Table.Left; Table.Left; Table.Right ]
          [ "metric"; "kind"; "value" ]
      in
      List.iter
        (fun (n, v) -> Table.add_row tbl [ n; "counter"; string_of_int v ])
        scalars;
      List.iter
        (fun (n, v) -> Table.add_row tbl [ n; "gauge"; Printf.sprintf "%.6g" v ])
        gauges;
      Buffer.add_string buf (Table.render tbl);
      Buffer.add_char buf '\n'
    end;
    (match histograms t with
    | [] -> ()
    | hists ->
        let tbl =
          Table.create
            ~aligns:
              [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
            [ "histogram"; "count"; "p50"; "p90"; "p99" ]
        in
        (* Histograms are unit-agnostic (durations in seconds,
           completeness ratios, family sizes), so percentiles render
           as plain numbers, not formatted durations. *)
        List.iter
          (fun (n, h) ->
            let pct p = Printf.sprintf "%.6g" (percentile h p) in
            Table.add_row tbl
              [ n; string_of_int h.n; pct 50.; pct 90.; pct 99. ])
          hists;
        Buffer.add_string buf (Table.render tbl);
        Buffer.add_char buf '\n');
    Buffer.contents buf
  end
