(** Exporters over a registry's recorded spans and metrics: Chrome
    [trace_event] JSON, structured JSON, and ASCII.

    All exports are pure functions of the registry's recorded state,
    listing spans in start order and metrics in name order — so a
    virtual-clocked run exports byte-identically for a fixed seed. *)

val chrome_trace : Registry.t -> Indaas_util.Json.t
(** [{traceEvents: [...]; displayTimeUnit; metrics}] — complete
    ([ph:"X"]) events in integer microseconds on one pid/tid, loadable
    in [about:tracing] / Perfetto (which ignore the extra [metrics]
    key). Durations round up to a whole microsecond so sub-us spans
    stay visible. *)

val write_chrome_trace : Registry.t -> path:string -> unit
(** {!chrome_trace}, compact, to a file with a trailing newline. *)

val to_json : Registry.t -> Indaas_util.Json.t
(** [{spans; metrics}] with full span trees ({!Span.to_json}),
    nanosecond precision. *)

val render_spans : Registry.t -> string
(** ASCII trees of all root spans. *)

val render : Registry.t -> string
(** {!render_spans} plus the metric tables. *)

val summary : Registry.t -> string
(** One line per root span (name, duration, span count); [""] when
    nothing was recorded. Report footer for [--metrics] runs. *)

val span_count : ?name:string -> Registry.t -> int
(** Spans recorded across all completed roots plus the outermost
    still-open span's tree, optionally only those with a given name
    (the IND-O001 lint checks collector spans this way, from inside
    the CLI's root span). *)
