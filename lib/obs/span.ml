module Json = Indaas_util.Json
module Timing = Indaas_util.Timing

type t = {
  id : int64;
  name : string;
  start_ns : int64;
  mutable stop_ns : int64 option;
  mutable attrs : (string * string) list;
  mutable rev_children : t list;
}

let make ~id ~name ~start_ns =
  { id; name; start_ns; stop_ns = None; attrs = []; rev_children = [] }

let stop span ~now_ns =
  match span.stop_ns with
  | Some _ -> invalid_arg (Printf.sprintf "Span.stop: %S already stopped" span.name)
  | None ->
      (* Clamp: the virtual clock never moves backwards, but the real
         clock can step; a span must still contain its children. *)
      span.stop_ns <- Some (if now_ns < span.start_ns then span.start_ns else now_ns)

let add_child parent child = parent.rev_children <- child :: parent.rev_children
let children span = List.rev span.rev_children
let closed span = span.stop_ns <> None

let add_attr span key value =
  (* Last write wins, attrs render in insertion order. *)
  span.attrs <- (key, value) :: List.remove_assoc key span.attrs

let attrs span = List.rev span.attrs

let duration_ns span =
  match span.stop_ns with
  | Some stop -> Int64.sub stop span.start_ns
  | None -> 0L

let duration_seconds span = Int64.to_float (duration_ns span) /. 1e9

let rec iter f span =
  f span;
  List.iter (iter f) span.rev_children

let count span =
  let n = ref 0 in
  iter (fun _ -> incr n) span;
  !n

(* A recorded tree is well-formed when every span was stopped, no span
   stops before it starts, and every child lies inside its parent's
   interval. The qcheck property in test_obs drives random nesting
   programs through the registry and asserts exactly this. *)
let rec well_formed span =
  match span.stop_ns with
  | None -> false
  | Some stop ->
      stop >= span.start_ns
      && List.for_all
           (fun child ->
             child.start_ns >= span.start_ns
             && (match child.stop_ns with
                | None -> false
                | Some cstop -> cstop <= stop)
             && well_formed child)
           span.rev_children

let rec find_all ~name span =
  let here = if span.name = name then [ span ] else [] in
  here @ List.concat_map (find_all ~name) (children span)

let id_hex span = Printf.sprintf "%Lx" span.id

let rec to_json span =
  Json.Obj
    [
      ("id", Json.String (id_hex span));
      ("name", Json.String span.name);
      ("start_ns", Json.Int (Int64.to_int span.start_ns));
      ("duration_ns", Json.Int (Int64.to_int (duration_ns span)));
      ( "attrs",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) (attrs span)) );
      ("children", Json.List (List.map to_json (children span)));
    ]

let summary_line ?(indent = 0) span =
  Printf.sprintf "%s%s %s%s"
    (String.make indent ' ')
    span.name
    (Timing.format_seconds (duration_seconds span))
    (match attrs span with
    | [] -> ""
    | attrs ->
        " ["
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
        ^ "]")

let render span =
  let buf = Buffer.create 256 in
  let rec go indent span =
    Buffer.add_string buf (summary_line ~indent span);
    Buffer.add_char buf '\n';
    List.iter (go (indent + 2)) (children span)
  in
  go 0 span;
  Buffer.contents buf
