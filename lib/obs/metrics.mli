(** Metric stores: monotonic counters, gauges, and fixed-bucket
    histograms with exact p50/p90/p99 (computed over the raw samples
    with {!Indaas_util.Stats.percentile}).

    A store is plain mutable state — no clock, no I/O. Exports list
    metrics in sorted name order, so output is byte-deterministic
    whenever the recorded values are. *)

type histogram
type t

val create : unit -> t
val clear : t -> unit

val incr : t -> ?by:int -> string -> unit
(** Creates the counter at 0 on first use. Raises [Invalid_argument]
    on a negative increment: counters are monotonic. *)

val counter : t -> string -> int
(** 0 for a counter never incremented. *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float option

val observe : t -> ?bounds:float array -> string -> float -> unit
(** Records one sample. [bounds] (ascending bucket upper bounds, plus
    an implicit overflow bucket) only takes effect on the observation
    that creates the histogram; the default suits durations in
    seconds (1us .. 60s, exponential). Raises [Invalid_argument] on
    empty or non-ascending bounds. *)

val histogram : t -> string -> histogram option
val percentile : histogram -> float -> float
(** Exact, over all recorded samples. Raises [Invalid_argument] on an
    empty histogram. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val counters : t -> (string * int) list
(** Sorted by name; likewise below. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * histogram) list
val is_empty : t -> bool

val to_json : t -> Indaas_util.Json.t
(** [{counters; gauges; histograms}]; each histogram carries count,
    sum, p50/p90/p99 and its bucket counts. *)

val render : t -> string
(** Two ASCII tables (counters+gauges, histograms); ["no metrics
    recorded\n"] when empty. *)
