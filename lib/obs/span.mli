(** Hierarchical spans: one timed, attributed interval of the audit
    pipeline, with children strictly contained in their parent.

    Spans are produced by {!Registry.with_span}; this module is the
    data structure plus the invariant checks and serializers. All
    timestamps are nanoseconds from whichever clock the owning
    registry was configured with — the real clock
    ({!Indaas_util.Timing.now_ns}) or a virtual one, under which a
    seeded run records byte-identical trees. *)

type t = {
  id : int64;  (** deterministic, drawn from the registry's PRNG *)
  name : string;
  start_ns : int64;
  mutable stop_ns : int64 option;  (** [None] while the span is open *)
  mutable attrs : (string * string) list;
  mutable rev_children : t list;
}

val make : id:int64 -> name:string -> start_ns:int64 -> t
(** An open span with no children. *)

val stop : t -> now_ns:int64 -> unit
(** Closes the span. A wall clock that stepped backwards is clamped to
    the start timestamp so containment survives. Raises
    [Invalid_argument] when the span is already closed. *)

val add_child : t -> t -> unit
val children : t -> t list
(** In start order. *)

val closed : t -> bool

val add_attr : t -> string -> string -> unit
(** Sets a key; the last write to a key wins. *)

val attrs : t -> (string * string) list
(** In insertion order; rewriting a key moves it to the end. *)

val duration_ns : t -> int64
(** 0 while the span is open. *)

val duration_seconds : t -> float
val iter : (t -> unit) -> t -> unit
val count : t -> int
(** Spans in the tree, including the root. *)

val well_formed : t -> bool
(** Every span in the tree closed, stop >= start, and every child
    interval contained in its parent's. *)

val find_all : name:string -> t -> t list
(** Every span in the tree (root included) with that name. *)

val id_hex : t -> string
val to_json : t -> Indaas_util.Json.t
(** [{id; name; start_ns; duration_ns; attrs; children}], recursively. *)

val summary_line : ?indent:int -> t -> string
val render : t -> string
(** Indented ASCII tree of the whole span, one line per span. *)
