module Json = Indaas_util.Json
module Timing = Indaas_util.Timing

(* --- Chrome trace_event ------------------------------------------------- *)

(* Complete ("ph":"X") events, one per span, timestamps in integer
   microseconds. Flattening loses nothing: viewers rebuild nesting on
   one pid/tid from interval containment. Durations round up so a
   sub-microsecond span stays visible (and containment survives,
   because parents round up at least as much). *)
let us_of_ns ns = Int64.to_int (Int64.div ns 1000L)
let us_ceil_of_ns ns = Int64.to_int (Int64.div (Int64.add ns 999L) 1000L)

let trace_event span =
  Json.Obj
    [
      ("name", Json.String span.Span.name);
      ("ph", Json.String "X");
      ("ts", Json.Int (us_of_ns span.Span.start_ns));
      ("dur", Json.Int (us_ceil_of_ns (Span.duration_ns span)));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ( "args",
        Json.Obj
          (("id", Json.String (Span.id_hex span))
          :: List.map (fun (k, v) -> (k, Json.String v)) (Span.attrs span)) );
    ]

let chrome_trace registry =
  let events = ref [] in
  List.iter
    (Span.iter (fun span -> events := trace_event span :: !events))
    (Registry.roots registry);
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms");
      (* Extra top-level keys are ignored by trace viewers; carrying
         the metrics here makes one --trace file self-contained. *)
      ("metrics", Metrics.to_json (Registry.metrics registry));
    ]

let write_chrome_trace registry ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (chrome_trace registry));
      output_char oc '\n')

(* --- structured JSON ---------------------------------------------------- *)

let to_json registry =
  Json.Obj
    [
      ( "spans",
        Json.List (List.map Span.to_json (Registry.roots registry)) );
      ("metrics", Metrics.to_json (Registry.metrics registry));
    ]

(* --- ASCII -------------------------------------------------------------- *)

let render_spans registry =
  match Registry.roots registry with
  | [] -> "no spans recorded\n"
  | roots -> String.concat "" (List.map Span.render roots)

let render registry =
  render_spans registry ^ "\n" ^ Metrics.render (Registry.metrics registry)

(* One line per root span — the report footer for --metrics runs. *)
let summary registry =
  match Registry.roots registry with
  | [] -> ""
  | roots ->
      String.concat ""
        (List.map
           (fun root ->
             Printf.sprintf "%s: %s (%d spans)\n" root.Span.name
               (Timing.format_seconds (Span.duration_seconds root))
               (Span.count root))
           roots)

let span_count ?name registry =
  let matches span =
    match name with None -> true | Some n -> span.Span.name = n
  in
  (* Completed roots plus the outermost still-open span, so callers
     checking mid-audit (inside their own root span) see the closed
     children recorded so far. *)
  let trees =
    Registry.roots registry
    @
    match List.rev (Registry.open_spans registry) with
    | outermost :: _ -> [ outermost ]
    | [] -> []
  in
  List.fold_left
    (fun acc root ->
      let n = ref 0 in
      Span.iter (fun span -> if matches span then incr n) root;
      acc + !n)
    0 trees
