(** The process-wide observability registry: the span stack, the
    metric stores, the clock, and the deterministic span-id PRNG.

    Instrumentation throughout the INDaaS libraries calls the facade
    functions ({!with_span}, {!incr}, {!observe}, ...) against the
    current global registry. That registry is {e disabled} by default:
    every facade call is then a single load-and-branch (and
    [with_span] just runs its thunk), which keeps the instrumented hot
    paths within noise of the uninstrumented ones. The [indaas] CLI
    enables it for [--trace]/[--metrics]; tests and benchmarks install
    a fresh scoped registry with {!with_scope}.

    Determinism contract: span ids come from a seeded
    {!Indaas_util.Prng} and every timestamp from the registry's
    {!type:clock}. With the clock pointed at a
    {!Indaas_resilience.Vclock} (via {!clock_of_seconds}) an audit
    records byte-identical spans and metrics for a fixed seed — the
    chaos harness and [--fault] runs rely on this. *)

type clock = unit -> int64
(** Nanosecond timestamps. *)

val real_clock : clock
(** {!Indaas_util.Timing.now_ns}. *)

val clock_of_seconds : (unit -> float) -> clock
(** Adapts a seconds-valued clock (e.g. a virtual clock's [now]). *)

type t

val create : ?seed:int -> ?clock:clock -> unit -> t
(** A fresh, disabled registry ([seed] defaults to 0, [clock] to
    {!real_clock}). *)

val current : unit -> t
(** The global registry. *)

val enabled : t -> bool
val on : unit -> bool
(** [enabled (current ())] — the fast check instrumentation uses. *)

val enable : ?clock:clock -> ?seed:int -> t -> unit
(** Resets recorded state (see {!reset}) and turns recording on. *)

val disable : t -> unit

val reset : ?seed:int -> t -> unit
(** Drops every recorded span and metric and re-seeds the span-id
    PRNG ([seed] defaults to the creation seed) — scoped reset for
    tests. Leaves the enabled flag alone. *)

val set_clock : t -> clock -> unit
val now_ns : t -> int64
val metrics : t -> Metrics.t

val roots : t -> Span.t list
(** Completed root spans, oldest first. *)

val open_spans : t -> Span.t list
(** Still-open spans, innermost first; [[]] between instrumented
    calls. *)

(** {1 Explicit span control}

    For call sites that cannot wrap a closure. Prefer {!with_span}. *)

val start_span : t -> ?attrs:(string * string) list -> string -> Span.t
val stop_span : t -> Span.t -> unit
(** Raises [Invalid_argument] unless the span is the innermost open
    one: spans close in LIFO order. *)

val with_span_in :
  t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** {1 Facade over the current registry}

    All no-ops when the registry is disabled. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a fresh child span of the innermost open
    span (a new root when none is open). The span is closed even when
    the thunk raises. *)

val span_attr : string -> string -> unit
(** Attribute on the innermost open span; ignored when none is open. *)

val incr : ?by:int -> string -> unit
val set_gauge : string -> float -> unit
val observe : ?bounds:float array -> string -> float -> unit

val with_scope :
  ?seed:int -> ?clock:clock -> (t -> 'a) -> 'a * t
(** Installs a fresh {e enabled} registry as the current one, runs the
    function, and restores the previous registry (also on exceptions).
    Returns the result and the scoped registry for inspection. *)
