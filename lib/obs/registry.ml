module Prng = Indaas_util.Prng
module Timing = Indaas_util.Timing

type clock = unit -> int64

let real_clock : clock = Timing.now_ns

let clock_of_seconds f () = Int64.of_float (f () *. 1e9)

type t = {
  mutable enabled : bool;
  mutable clock : clock;
  mutable prng : Prng.t;
  seed : int;
  metrics : Metrics.t;
  mutable rev_roots : Span.t list;  (* completed root spans *)
  mutable stack : Span.t list;  (* open spans, innermost first *)
}

let create ?(seed = 0) ?(clock = real_clock) () =
  {
    enabled = false;
    clock;
    prng = Prng.of_int seed;
    seed;
    metrics = Metrics.create ();
    rev_roots = [];
    stack = [];
  }

(* The process-wide registry. Disabled by default so an uninstrumented
   binary pays one load + branch per call site and records nothing. *)
let global : t ref = ref (create ())

let current () = !global
let enabled t = t.enabled
let on () = !global.enabled
let metrics t = t.metrics

let set_clock t clock = t.clock <- clock
let now_ns t = t.clock ()

let reset ?seed t =
  t.prng <- Prng.of_int (Option.value seed ~default:t.seed);
  Metrics.clear t.metrics;
  t.rev_roots <- [];
  t.stack <- []

let enable ?clock ?seed t =
  Option.iter (set_clock t) clock;
  reset ?seed t;
  t.enabled <- true

let disable t = t.enabled <- false

let roots t = List.rev t.rev_roots
let open_spans t = t.stack

(* --- span recording ---------------------------------------------------- *)

let start_span t ?(attrs = []) name =
  let span =
    Span.make ~id:(Prng.next_int64 t.prng) ~name ~start_ns:(t.clock ())
  in
  List.iter (fun (k, v) -> Span.add_attr span k v) attrs;
  (match t.stack with
  | parent :: _ -> Span.add_child parent span
  | [] -> ());
  t.stack <- span :: t.stack;
  span

let stop_span t span =
  match t.stack with
  | top :: rest when top == span ->
      Span.stop span ~now_ns:(t.clock ());
      t.stack <- rest;
      if rest = [] then t.rev_roots <- span :: t.rev_roots
  | _ ->
      invalid_arg
        (Printf.sprintf "Registry.stop_span: %S is not the innermost open span"
           span.Span.name)

let with_span_in t ?attrs name f =
  if not t.enabled then f ()
  else begin
    let span = start_span t ?attrs name in
    Fun.protect ~finally:(fun () -> stop_span t span) f
  end

(* --- facade over the current registry ---------------------------------- *)

let with_span ?attrs name f = with_span_in !global ?attrs name f

let span_attr key value =
  let t = !global in
  if t.enabled then
    match t.stack with
    | span :: _ -> Span.add_attr span key value
    | [] -> ()

let incr ?by name =
  let t = !global in
  if t.enabled then Metrics.incr t.metrics ?by name

let set_gauge name v =
  let t = !global in
  if t.enabled then Metrics.set_gauge t.metrics name v

let observe ?bounds name v =
  let t = !global in
  if t.enabled then Metrics.observe t.metrics ?bounds name v

(* --- scoped registries (tests, benchmarks) ----------------------------- *)

let with_scope ?seed ?clock f =
  let scoped = create ?seed ?clock () in
  scoped.enabled <- true;
  let saved = !global in
  global := scoped;
  let result =
    Fun.protect ~finally:(fun () -> global := saved) (fun () -> f scoped)
  in
  (result, scoped)
