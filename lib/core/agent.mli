(** The auditing agent — the mediator of the paper's workflow (§2).

    Given the client's {!Spec.t} and a set of {!data_source}s, the
    agent executes Steps 2–6: it requests dependency data from each
    source (each source runs its acquisition modules), filters it to
    the dependency kinds the client asked about, and runs either
    structural (SIA) or private (PIA) independence auditing, returning
    the final report.

    Collection can run in two modes. The legacy {!collect} is
    fail-fast: a raising module aborts the audit. The resilient mode
    ({!collect_resilient}, or {!run} with [?faults]/[?retry]) retries
    each module under exponential backoff with full jitter on a
    virtual clock, guarded by a per-source circuit breaker; a module
    that stays down loses its records but not the audit, and the
    {!type:audit_run}'s degradation record accounts for every loss. *)

module Depdb = Indaas_depdata.Depdb
module Collectors = Indaas_depdata.Collectors
module Fault = Indaas_resilience.Fault
module Retry = Indaas_resilience.Retry
module Vclock = Indaas_resilience.Vclock
module Degradation = Indaas_resilience.Degradation

type data_source = {
  source_name : string;
  modules : Collectors.t list;  (** its dependency acquisition modules *)
}

val data_source : name:string -> Collectors.t list -> data_source

type outcome =
  | Sia_outcome of Indaas_sia.Audit.deployment_report list
      (** candidate deployments, best first *)
  | Pia_outcome of Indaas_pia.Audit.report

type audit_run = {
  spec : Spec.t;
  outcome : outcome;
  database_size : int;
      (** records gathered (0 for PIA — the agent never sees them) *)
  degradation : Degradation.t;
      (** how complete the collection was; completeness 1 for
          fail-fast runs that finished *)
}

val collect : Spec.t -> data_source list -> Depdb.t
(** Steps 2–3 only: ask every relevant source to run its modules and
    adapt the records; returns the merged DepDB filtered to the
    requested dependency kinds. Fail-fast: module exceptions
    propagate. *)

val collect_resilient :
  ?faults:Fault.injector ->
  ?retry:Retry.policy ->
  ?clock:Vclock.t ->
  ?rng:Indaas_util.Prng.t ->
  data_source list ->
  Depdb.t * Degradation.t
(** Runs every module of every listed source under the retry engine
    ([retry] defaults to {!Retry.default}) and a per-source circuit
    breaker, optionally wrapping each collector through the fault
    injector. Returns the merged (unfiltered) database plus the
    degradation record; never raises for transient module failures.
    [clock] is ignored when [faults] is given (the injector's clock
    wins), so injected timeouts and retry backoff share one timeline. *)

val run :
  ?rng:Indaas_util.Prng.t ->
  ?rg_algorithm:Indaas_sia.Audit.rg_algorithm ->
  ?pia_protocol:Indaas_pia.Audit.protocol ->
  ?faults:Fault.injector ->
  ?retry:Retry.policy ->
  Spec.t ->
  data_source list ->
  audit_run
(** The full workflow. For SIA metrics each candidate deployment is
    audited over the merged database; for [Jaccard_similarity] each
    source's records stay local — only normalized component sets
    enter the (default P-SOP) private protocol.

    Raises [Invalid_argument] if a specified data source is missing or
    if two sources carry the same name.

    Passing [faults] and/or [retry] turns on resilient mode: SIA
    collection degrades instead of crashing (failed sources are
    reported in the degradation record and every deployment report
    carries the [IND-R001] diagnostic); PIA providers that never
    answer are excluded (raising [Failure] only if fewer than
    [redundancy] remain), and the private protocol itself retries
    rounds under the same policy, reporting still-failed rounds in the
    PIA report instead of crashing. *)

val render : audit_run -> string
(** The report sent back to the client (Step 6), prefixed with the
    degradation banner when the collection was incomplete. *)

val best_deployment : audit_run -> string list
(** The servers/providers of the top-ranked deployment. *)
