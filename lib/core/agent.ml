module Depdb = Indaas_depdata.Depdb
module Dependency = Indaas_depdata.Dependency
module Collectors = Indaas_depdata.Collectors
module Sia_audit = Indaas_sia.Audit
module Sia_report = Indaas_sia.Report
module Pia_audit = Indaas_pia.Audit
module Componentset = Indaas_pia.Componentset
module Prng = Indaas_util.Prng
module Fault = Indaas_resilience.Fault
module Retry = Indaas_resilience.Retry
module Vclock = Indaas_resilience.Vclock
module Degradation = Indaas_resilience.Degradation
module Lint = Indaas_lint.Lint
module Obs = Indaas_obs.Registry

let log_src = Logs.Src.create "indaas.agent" ~doc:"INDaaS auditing agent"

module Log = (val Logs.src_log log_src : Logs.LOG)

type data_source = {
  source_name : string;
  modules : Collectors.t list;
}

let data_source ~name modules = { source_name = name; modules }

type outcome =
  | Sia_outcome of Sia_audit.deployment_report list
  | Pia_outcome of Pia_audit.report

type audit_run = {
  spec : Spec.t;
  outcome : outcome;
  database_size : int;
  degradation : Degradation.t;
}

let kind_of_record = function
  | Dependency.Network _ -> Spec.Network
  | Dependency.Hardware _ -> Spec.Hardware
  | Dependency.Software _ -> Spec.Software

let filter_kinds spec db =
  let filtered = Depdb.create () in
  List.iter
    (fun r -> if Spec.wants spec (kind_of_record r) then Depdb.add filtered r)
    (Depdb.records db);
  filtered

let find_source sources name =
  match List.find_opt (fun s -> s.source_name = name) sources with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Agent: data source %S not available" name)

(* Two data sources under the same name would make [find_source]
   silently pick one of them; reject the ambiguity at the boundary. *)
let check_unique_sources sources =
  let rec go seen = function
    | [] -> ()
    | s :: rest ->
        if List.mem s.source_name seen then
          invalid_arg
            (Printf.sprintf "Agent.run: duplicate data source name %S"
               s.source_name)
        else go (s.source_name :: seen) rest
  in
  go [] sources

let collect spec sources =
  Obs.with_span "collect" @@ fun () ->
  let db = Depdb.create () in
  List.iter
    (fun name ->
      let source = find_source sources name in
      Obs.with_span "collect.source" ~attrs:[ ("source", name) ] @@ fun () ->
      List.iter
        (fun (m : Collectors.t) ->
          let records = m.Collectors.collect () in
          Obs.incr "agent.module_calls";
          Obs.incr ~by:(List.length records) "agent.records";
          Log.debug (fun f ->
              f "source %s: module %s produced %d records" name
                m.Collectors.name (List.length records));
          Depdb.add_all db records)
        source.modules)
    spec.Spec.data_sources;
  let filtered = filter_kinds spec db in
  Log.info (fun f ->
      f "collected %d records from %d data sources (%d after kind filter)"
        (Depdb.size db)
        (List.length spec.Spec.data_sources)
        (Depdb.size filtered));
  filtered

(* Degradation-aware collection: every module call goes through the
   retry engine (per-source circuit breaker, full-jitter backoff on a
   virtual clock), optionally under a fault injector. A module whose
   budget is exhausted loses its records but not the audit; the
   degradation record keeps the honest account. *)
let collect_resilient ?faults ?retry ?clock ?(rng = Prng.of_int 0xC011EC7)
    sources =
  let clock =
    match (faults, clock) with
    | Some f, _ -> Fault.clock f
    | None, Some c -> c
    | None, None -> Vclock.create ()
  in
  let policy = Option.value retry ~default:Retry.default in
  let retry_rng = Prng.split rng in
  Obs.with_span "collect" @@ fun () ->
  let db = Depdb.create () in
  let retries = ref 0 in
  let reports =
    List.map
      (fun source ->
        let name = source.source_name in
        let breaker = Retry.breaker ~clock name in
        let attempts = ref 0 in
        let modules_failed = ref 0 in
        let records = ref 0 in
        let last_error = ref "" in
        let obs = Obs.current () in
        let t0 = if Obs.enabled obs then Obs.now_ns obs else 0L in
        Obs.with_span "collect.source" ~attrs:[ ("source", name) ]
        @@ fun () ->
        List.iter
          (fun (m : Collectors.t) ->
            let m =
              match faults with
              | Some inj -> Fault.wrap_collector inj ~source:name m
              | None -> m
            in
            let outcome =
              Retry.call ~policy ~breaker ~clock ~rng:retry_rng
                ~label:(name ^ "/" ^ m.Collectors.name) (fun () ->
                  m.Collectors.collect ())
            in
            attempts := !attempts + outcome.Retry.attempts;
            retries := !retries + max 0 (outcome.Retry.attempts - 1);
            Obs.incr "agent.module_calls";
            Obs.incr ~by:(max 0 (outcome.Retry.attempts - 1)) "agent.retries";
            match outcome.Retry.result with
            | Ok rs ->
                records := !records + List.length rs;
                Obs.incr ~by:(List.length rs) "agent.records";
                Depdb.add_all db rs
            | Error e ->
                incr modules_failed;
                Obs.incr "agent.module_failures";
                last_error := e;
                Log.warn (fun f ->
                    f "source %s: module %s failed after %d attempt(s): %s"
                      name m.Collectors.name outcome.Retry.attempts e))
          source.modules;
        let records_lost =
          match faults with
          | Some inj -> Fault.records_dropped inj ~source:name
          | None -> 0
        in
        if Obs.enabled obs then begin
          Obs.incr ~by:(Retry.trips breaker) "agent.breaker_trips";
          Obs.incr ~by:records_lost "agent.records_lost";
          Obs.observe "agent.source_seconds"
            (Int64.to_float (Int64.sub (Obs.now_ns obs) t0) /. 1e9)
        end;
        let modules_total = List.length source.modules in
        let status =
          if modules_total > 0 && !modules_failed = modules_total then
            Degradation.Failed !last_error
          else if !modules_failed > 0 then
            Degradation.Degraded
              (Printf.sprintf "%d/%d module(s) failed: %s" !modules_failed
                 modules_total !last_error)
          else if records_lost > 0 then
            Degradation.Degraded
              (Printf.sprintf "%d record(s) dropped" records_lost)
          else Degradation.Ok
        in
        {
          Degradation.source = name;
          status;
          attempts = !attempts;
          modules_total;
          modules_failed = !modules_failed;
          records = !records;
          records_lost;
        })
      sources
  in
  (db, Degradation.make ~retries:!retries reports)

(* In PIA the agent never pools records: each provider derives its own
   normalized component set locally (§4.2.3). A provider's set is the
   union over all machines its records describe. *)
let local_component_set spec source =
  let db = Depdb.create () in
  List.iter
    (fun (m : Collectors.t) -> Depdb.add_all db (m.Collectors.collect ()))
    source.modules;
  let db = filter_kinds spec db in
  Componentset.union_many
    (List.map
       (fun machine -> Componentset.of_depdb db ~machine)
       (Depdb.machines db))

let component_set_of_db spec db =
  let db = filter_kinds spec db in
  Componentset.union_many
    (List.map
       (fun machine -> Componentset.of_depdb db ~machine)
       (Depdb.machines db))

let attach_degradation degradation reports =
  if not (Degradation.degraded degradation) then reports
  else
    let diag =
      Lint.degraded_collection
        ~completeness:degradation.Degradation.completeness
        ~failed_sources:(Degradation.failed_sources degradation)
    in
    List.map
      (fun (r : Sia_audit.deployment_report) ->
        { r with Sia_audit.diagnostics = diag :: r.Sia_audit.diagnostics })
      reports

let run ?(rng = Prng.of_int 0x1DAA5) ?rg_algorithm ?pia_protocol ?faults ?retry
    spec sources =
  check_unique_sources sources;
  let resilient = faults <> None || retry <> None in
  match spec.Spec.metric with
  | Spec.Jaccard_similarity ->
      let selected =
        List.map (find_source sources) spec.Spec.data_sources
      in
      let providers, degradation =
        if not resilient then
          ( List.map
              (fun s ->
                {
                  Pia_audit.name = s.source_name;
                  Pia_audit.components = local_component_set spec s;
                })
              selected,
            Degradation.complete ~sources:spec.Spec.data_sources )
        else
          (* Each provider collects locally under the retry engine; a
             provider that never answers is excluded from the protocol
             and reported in the degradation record. *)
          let per_provider =
            List.map
              (fun s ->
                let db, deg = collect_resilient ?faults ?retry ~rng [ s ] in
                let report = List.hd deg.Degradation.sources in
                let provider =
                  match report.Degradation.status with
                  | Degradation.Failed _ -> None
                  | _ ->
                      Some
                        {
                          Pia_audit.name = s.source_name;
                          Pia_audit.components = component_set_of_db spec db;
                        }
                in
                (provider, report, deg.Degradation.retries))
              selected
          in
          let providers = List.filter_map (fun (p, _, _) -> p) per_provider in
          let retries =
            List.fold_left (fun acc (_, _, r) -> acc + r) 0 per_provider
          in
          let degradation =
            Degradation.make ~retries
              (List.map (fun (_, report, _) -> report) per_provider)
          in
          if List.length providers < spec.Spec.redundancy then
            failwith
              (Printf.sprintf
                 "Agent.run: only %d/%d providers responded — cannot audit \
                  %d-way redundancy"
                 (List.length providers) (List.length selected)
                 spec.Spec.redundancy);
          (providers, degradation)
      in
      let protocol =
        match pia_protocol with
        | Some p -> p
        | None -> Pia_audit.Psop { params = None }
      in
      Log.info (fun f ->
          f "running PIA across %d providers (redundancy %d)"
            (List.length providers) spec.Spec.redundancy);
      let report =
        Pia_audit.audit ~protocol ~rng ?faults ?retry ~way:spec.Spec.redundancy
          providers
      in
      { spec; outcome = Pia_outcome report; database_size = 0; degradation }
  | Spec.Size_ranking | Spec.Probability_ranking _ ->
      let db, degradation =
        if not resilient then
          (collect spec sources, Degradation.complete ~sources:spec.Spec.data_sources)
        else
          let selected =
            List.map (find_source sources) spec.Spec.data_sources
          in
          let db, degradation =
            collect_resilient ?faults ?retry ~rng selected
          in
          (filter_kinds spec db, degradation)
      in
      let ranking, component_probability =
        match spec.Spec.metric with
        | Spec.Size_ranking -> (Sia_audit.Size_based, None)
        | Spec.Probability_ranking { component_probability } ->
            (Sia_audit.Probability_based, Some component_probability)
        | Spec.Jaccard_similarity -> assert false
      in
      let request =
        Sia_audit.request ~required:spec.Spec.required ?component_probability
          ?algorithm:rg_algorithm ~ranking []
      in
      let candidates = Spec.candidate_deployments spec in
      (* A source that contributed no records cannot be audited (the
         graph builder has nothing to build from), so in resilient
         mode candidates that include one are skipped — the
         degradation record and IND-R001 account for the gap. *)
      let candidates =
        if not resilient then candidates
        else
          let machines = Depdb.machines db in
          let viable =
            List.filter (List.for_all (fun s -> List.mem s machines)) candidates
          in
          let skipped = List.length candidates - List.length viable in
          if skipped > 0 then
            Log.warn (fun f ->
                f "skipping %d candidate deployment(s) with failed sources"
                  skipped);
          viable
      in
      Log.info (fun f ->
          f "running SIA over %d candidate deployments" (List.length candidates));
      let reports =
        Sia_audit.audit_candidates ~rng db ~candidates request
        |> attach_degradation degradation
      in
      {
        spec;
        outcome = Sia_outcome reports;
        database_size = Depdb.size db;
        degradation;
      }

let render run =
  let body =
    match run.outcome with
    | Sia_outcome reports -> Sia_report.render_comparison reports
    | Pia_outcome report -> Pia_audit.render report
  in
  if Degradation.degraded run.degradation then
    Degradation.render run.degradation ^ "\n\n" ^ body
  else body

let best_deployment run =
  match run.outcome with
  | Sia_outcome (best :: _) -> best.Sia_audit.servers
  | Sia_outcome [] -> invalid_arg "Agent.best_deployment: empty report"
  | Pia_outcome report -> (Pia_audit.best report).Pia_audit.providers
