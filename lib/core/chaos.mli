(** The chaos harness: repeated audits under a named fault plan.

    A chaos run executes one {e scenario} (a canned spec + data
    sources) for [trials] independent trials under one named fault
    {e plan}, and aggregates how the pipeline held up: how many trials
    finished clean, degraded, or failed outright, how many collector
    attempts and retries were spent, and the distribution of
    completeness ratios.

    Everything is driven by the virtual clock and seeded PRNGs —
    trial [t] of a run with seed [s] uses seed [s + t] — so a chaos
    run never sleeps and two runs with the same seed render
    byte-identically. *)

type summary = {
  scenario : string;
  plan : string;
  plan_text : string;  (** the entries in [TARGET=SPEC] spelling *)
  seed : int;
  trials : int;
  successes : int;  (** trials with completeness 1 and no failures *)
  degraded : int;  (** trials that finished with losses *)
  failed : int;  (** trials where the audit raised *)
  attempts : int;  (** collector + protocol-round attempts *)
  retries : int;  (** retries spent by the backoff engine *)
  completeness : float list;  (** per trial, trial order; 0 when failed *)
  errors : (string * int) list;
      (** distinct error messages with occurrence counts, most
          frequent first *)
}

val scenario_names : string list
(** Currently ["sia-lab"] (three sources, two sharing a switch) and
    ["pia-clouds"] (three software providers under P-SOP). *)

val plan_names : string list
(** ["none"], ["crash-one"], ["flaky"], ["lossy"], ["corrupt"],
    ["slow-source"], ["partition"]. *)

val plan_doc : string -> string
(** One-line description. Raises [Invalid_argument] on an unknown
    plan name. *)

val list_text : unit -> string
(** The scenario and plan catalogue, for [indaas chaos --list]. *)

val run :
  ?seed:int ->
  ?retry:Indaas_resilience.Retry.policy ->
  scenario:string ->
  plan:string ->
  trials:int ->
  unit ->
  summary
(** Runs the trials (default [seed = 42]; [retry] defaults to the
    agent's {!Indaas_resilience.Retry.default}). Raises
    [Invalid_argument] on an unknown scenario or plan, or a
    non-positive trial count. *)

val render : summary -> string
(** Deterministic text report: outcome counts, retry totals,
    completeness min/mean/max plus a bucket histogram, and the
    aggregated error messages. *)

val to_json : summary -> Indaas_util.Json.t
