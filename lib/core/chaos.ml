module Collectors = Indaas_depdata.Collectors
module Dependency = Indaas_depdata.Dependency
module Catalog = Indaas_depdata.Catalog
module Pia_audit = Indaas_pia.Audit
module Commutative = Indaas_crypto.Commutative
module Fault = Indaas_resilience.Fault
module Retry = Indaas_resilience.Retry
module Degradation = Indaas_resilience.Degradation
module Prng = Indaas_util.Prng
module Table = Indaas_util.Table
module Json = Indaas_util.Json
module Vclock = Indaas_resilience.Vclock
module Obs = Indaas_obs.Registry

(* --- Scenarios --------------------------------------------------------- *)

type scenario = {
  scenario_name : string;
  scenario_doc : string;
  spec : Spec.t;
  sources : unit -> Agent.data_source list;
  protocol : Pia_audit.protocol option;
}

let sia_lab_sources () =
  let source name ~switch app =
    Agent.data_source ~name
      [
        Collectors.static ~name:"net"
          [ Dependency.network ~src:name ~dst:"I" ~route:[ switch ] ];
        Collectors.lshw [ Collectors.standard_profile name ];
        Collectors.apt_rdepends [ (app, name) ];
      ]
  in
  [
    source "S1" ~switch:"swA" Catalog.Riak;
    source "S2" ~switch:"swA" Catalog.Redis;
    source "S3" ~switch:"swB" Catalog.MongoDB;
  ]

(* P-SOP parameter generation is the expensive part of a PIA trial;
   chaos trials stress the fault path, not the crypto, so one small
   parameter set is shared by every trial. *)
let pia_params =
  lazy (Commutative.params_pohlig_hellman ~bits:128 (Prng.of_int 0xC4A05))

let pia_cloud_sources () =
  let provider name app =
    Agent.data_source ~name
      [ Collectors.apt_rdepends [ (app, name) ] ]
  in
  [
    provider "Cloud1" Catalog.Riak;
    provider "Cloud2" Catalog.Redis;
    provider "Cloud3" Catalog.MongoDB;
  ]

let scenarios =
  [
    {
      scenario_name = "sia-lab";
      scenario_doc =
        "3-source SIA lab (S1/S2 share a switch), size ranking, 2-way";
      spec = Spec.create ~redundancy:2 [ "S1"; "S2"; "S3" ];
      sources = sia_lab_sources;
      protocol = None;
    };
    {
      scenario_name = "pia-clouds";
      scenario_doc =
        "3-provider PIA (software sets, P-SOP over 128-bit group), 2-way";
      spec =
        Spec.create ~metric:Spec.Jaccard_similarity ~kinds:[ Spec.Software ]
          ~redundancy:2
          [ "Cloud1"; "Cloud2"; "Cloud3" ];
      sources = pia_cloud_sources;
      protocol = Some (Pia_audit.Psop { params = Some (Lazy.force pia_params) });
    };
  ]

let scenario_names = List.map (fun s -> s.scenario_name) scenarios

let find_scenario name =
  match List.find_opt (fun s -> s.scenario_name = name) scenarios with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Chaos: unknown scenario %S (known: %s)" name
           (String.concat ", " scenario_names))

(* --- Fault plans -------------------------------------------------------- *)

let plan_table =
  [
    ("none", "no faults — the control run");
    ("crash-one", "the second data source is permanently down");
    ("flaky", "every source fails its first two calls, then recovers");
    ("lossy", "every source drops 30% of its records");
    ("corrupt", "every source mangles 20% of its component identifiers");
    ("slow-source", "the last source times out on every call");
    ("partition", "the PIA transport loses 20% of messages");
  ]

let plan_names = List.map fst plan_table

let plan_doc name =
  match List.assoc_opt name plan_table with
  | Some doc -> doc
  | None ->
      invalid_arg
        (Printf.sprintf "Chaos: unknown plan %S (known: %s)" name
           (String.concat ", " plan_names))

let plan_entries scenario = function
  | "none" -> []
  | "crash-one" ->
      [ (List.nth scenario.spec.Spec.data_sources 1, Fault.Crash) ]
  | "flaky" -> [ ("*", Fault.Flaky_until 2) ]
  | "lossy" -> [ ("*", Fault.Drop_fraction 0.3) ]
  | "corrupt" -> [ ("*", Fault.Corrupt_fraction 0.2) ]
  | "slow-source" ->
      let sources = scenario.spec.Spec.data_sources in
      [ (List.nth sources (List.length sources - 1), Fault.Timeout 10.) ]
  | "partition" -> [ ("transport", Fault.Message_loss 0.2) ]
  | name -> ignore (plan_doc name); []

(* --- Trials ------------------------------------------------------------- *)

type summary = {
  scenario : string;
  plan : string;
  plan_text : string;  (** the entries in [TARGET=SPEC] spelling *)
  seed : int;
  trials : int;
  successes : int;
  degraded : int;
  failed : int;
  attempts : int;
  retries : int;
  completeness : float list;
  errors : (string * int) list;
}

type trial_outcome =
  | Trial_ok of Agent.audit_run
  | Trial_degraded of Agent.audit_run
  | Trial_failed of string

let run_degraded (run : Agent.audit_run) =
  Degradation.degraded run.Agent.degradation
  ||
  match run.Agent.outcome with
  | Agent.Pia_outcome r -> r.Pia_audit.failures <> []
  | Agent.Sia_outcome _ -> false

let one_trial scenario entries retry ~seed =
  let faults = Fault.injector ~seed (Fault.plan entries) in
  (* Each trial gets a fresh virtual clock (the injector's), so when
     recording is on every span timestamp is a function of the seed
     alone and a chaos trace is byte-identical run to run. *)
  if Obs.on () then
    Obs.set_clock (Obs.current ())
      (Obs.clock_of_seconds (fun () -> Vclock.now (Fault.clock faults)));
  Obs.with_span "chaos.trial" ~attrs:[ ("seed", string_of_int seed) ]
  @@ fun () ->
  let rng = Prng.of_int seed in
  match
    Agent.run ~rng ~faults ?retry ?pia_protocol:scenario.protocol scenario.spec
      (scenario.sources ())
  with
  | run -> if run_degraded run then Trial_degraded run else Trial_ok run
  | exception Failure msg -> Trial_failed msg
  | exception (Fault.Injected _ as e) -> Trial_failed (Fault.describe e)

let source_errors (deg : Degradation.t) =
  List.filter_map
    (fun (r : Degradation.source_report) ->
      match r.Degradation.status with
      | Degradation.Failed e -> Some e
      | Degradation.Degraded _ | Degradation.Ok -> None)
    deg.Degradation.sources

let run ?(seed = 42) ?retry ~scenario ~plan ~trials () =
  if trials < 1 then invalid_arg "Chaos.run: trials must be positive";
  let sc = find_scenario scenario in
  ignore (plan_doc plan);
  let entries = plan_entries sc plan in
  let successes = ref 0 and degraded = ref 0 and failed = ref 0 in
  let attempts = ref 0 and retries = ref 0 in
  let completeness = ref [] and errors = Hashtbl.create 8 in
  let record_error e =
    Hashtbl.replace errors e (1 + Option.value ~default:0 (Hashtbl.find_opt errors e))
  in
  let record_run (r : Agent.audit_run) =
    let deg = r.Agent.degradation in
    attempts := !attempts + Degradation.attempts deg;
    retries := !retries + deg.Degradation.retries;
    completeness := deg.Degradation.completeness :: !completeness;
    List.iter record_error (source_errors deg);
    match r.Agent.outcome with
    | Agent.Pia_outcome pia ->
        List.iter
          (fun (f : Pia_audit.round_failure) ->
            attempts := !attempts + f.Pia_audit.attempts;
            record_error f.Pia_audit.error)
          pia.Pia_audit.failures
    | Agent.Sia_outcome _ -> ()
  in
  let observe_completeness c =
    Obs.observe ~bounds:[| 0.; 0.25; 0.5; 0.75; 1. |] "chaos.completeness" c
  in
  for t = 0 to trials - 1 do
    match one_trial sc entries retry ~seed:(seed + t) with
    | Trial_ok r ->
        incr successes;
        Obs.incr "chaos.trials_ok";
        observe_completeness r.Agent.degradation.Degradation.completeness;
        record_run r
    | Trial_degraded r ->
        incr degraded;
        Obs.incr "chaos.trials_degraded";
        observe_completeness r.Agent.degradation.Degradation.completeness;
        record_run r
    | Trial_failed e ->
        incr failed;
        Obs.incr "chaos.trials_failed";
        observe_completeness 0.;
        completeness := 0. :: !completeness;
        record_error e
  done;
  {
    scenario;
    plan;
    plan_text =
      String.concat ", "
        (List.map
           (fun (target, kind) -> target ^ "=" ^ Fault.kind_to_string kind)
           entries);
    seed;
    trials;
    successes = !successes;
    degraded = !degraded;
    failed = !failed;
    attempts = !attempts;
    retries = !retries;
    completeness = List.rev !completeness;
    errors =
      Hashtbl.fold (fun e n acc -> (e, n) :: acc) errors []
      |> List.sort (fun (e1, n1) (e2, n2) ->
             match compare n2 n1 with 0 -> compare e1 e2 | c -> c);
  }

(* --- Rendering ---------------------------------------------------------- *)

let completeness_stats summary =
  match summary.completeness with
  | [] -> (0., 0., 0.)
  | c :: rest ->
      let lo, hi, sum =
        List.fold_left
          (fun (lo, hi, sum) x -> (Float.min lo x, Float.max hi x, sum +. x))
          (c, c, c) rest
      in
      (lo, sum /. float_of_int (List.length summary.completeness), hi)

let buckets = [ (1., 1.); (0.75, 1.); (0.5, 0.75); (0.25, 0.5); (0., 0.25) ]

let bucket_label (lo, hi) =
  if lo = hi then Printf.sprintf "[%.2f]" lo
  else Printf.sprintf "[%.2f,%.2f)" lo hi

let bucket_count summary (lo, hi) =
  List.length
    (List.filter
       (fun c -> if lo = hi then c = lo else c >= lo && c < hi)
       summary.completeness)

let render summary =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "chaos: scenario %S under plan %S — %d trial(s), seed %d\n"
       summary.scenario summary.plan summary.trials summary.seed);
  Buffer.add_string buf
    (Printf.sprintf "plan: %s\n\n"
       (if summary.plan_text = "" then "(no faults)" else summary.plan_text));
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "Outcome"; "Trials" ] in
  Table.add_row t [ "ok"; string_of_int summary.successes ];
  Table.add_row t [ "degraded"; string_of_int summary.degraded ];
  Table.add_row t [ "failed"; string_of_int summary.failed ];
  Buffer.add_string buf (Table.render t);
  Buffer.add_string buf
    (Printf.sprintf "\ncollector attempts: %d, retries spent: %d\n"
       summary.attempts summary.retries);
  let lo, mean, hi = completeness_stats summary in
  Buffer.add_string buf
    (Printf.sprintf "completeness: min %.2f, mean %.2f, max %.2f\n" lo mean hi);
  Buffer.add_string buf "distribution:";
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf " %s %d" (bucket_label b) (bucket_count summary b)))
    buckets;
  Buffer.add_char buf '\n';
  (match summary.errors with
  | [] -> ()
  | errors ->
      Buffer.add_string buf "errors (by frequency):\n";
      List.iter
        (fun (e, n) ->
          Buffer.add_string buf (Printf.sprintf "  %dx %s\n" n e))
        errors);
  Buffer.contents buf

let to_json summary =
  let lo, mean, hi = completeness_stats summary in
  Json.Obj
    [
      ("scenario", Json.String summary.scenario);
      ("plan", Json.String summary.plan);
      ("plan_text", Json.String summary.plan_text);
      ("seed", Json.Int summary.seed);
      ("trials", Json.Int summary.trials);
      ("ok", Json.Int summary.successes);
      ("degraded", Json.Int summary.degraded);
      ("failed", Json.Int summary.failed);
      ("attempts", Json.Int summary.attempts);
      ("retries", Json.Int summary.retries);
      ( "completeness",
        Json.Obj
          [
            ("min", Json.Float lo);
            ("mean", Json.Float mean);
            ("max", Json.Float hi);
            ( "trials",
              Json.List (List.map (fun c -> Json.Float c) summary.completeness)
            );
          ] );
      ( "errors",
        Json.List
          (List.map
             (fun (e, n) ->
               Json.Obj [ ("error", Json.String e); ("count", Json.Int n) ])
             summary.errors) );
    ]

let list_text () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "scenarios:\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %s\n" s.scenario_name s.scenario_doc))
    scenarios;
  Buffer.add_string buf "plans:\n";
  List.iter
    (fun (name, doc) ->
      Buffer.add_string buf (Printf.sprintf "  %-12s %s\n" name doc))
    plan_table;
  Buffer.contents buf
