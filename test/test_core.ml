module Spec = Indaas.Spec
module Agent = Indaas.Agent
module Scenario = Indaas.Scenario
module Collectors = Indaas_depdata.Collectors
module Dependency = Indaas_depdata.Dependency
module Depdb = Indaas_depdata.Depdb
module Catalog = Indaas_depdata.Catalog
module Sia_audit = Indaas_sia.Audit
module Rank = Indaas_sia.Rank
module Pia_audit = Indaas_pia.Audit
module Prng = Indaas_util.Prng

let check = Alcotest.check

(* --- Spec -------------------------------------------------------------- *)

let test_spec_defaults () =
  let s = Spec.create ~redundancy:2 [ "a"; "b"; "c" ] in
  check Alcotest.int "required" 1 s.Spec.required;
  check Alcotest.bool "wants network" true (Spec.wants s Spec.Network);
  check Alcotest.bool "wants software" true (Spec.wants s Spec.Software);
  check Alcotest.int "all pairs" 3 (List.length (Spec.candidate_deployments s))

let test_spec_explicit_candidates () =
  let s =
    Spec.create ~redundancy:2 ~candidates:[ [ "a"; "b" ] ] [ "a"; "b"; "c" ]
  in
  check Alcotest.int "one candidate" 1 (List.length (Spec.candidate_deployments s))

let test_spec_validation () =
  Alcotest.check_raises "no sources" (Invalid_argument "Spec.create: no data sources")
    (fun () -> ignore (Spec.create ~redundancy:2 []));
  Alcotest.check_raises "redundancy range"
    (Invalid_argument "Spec.create: redundancy out of [2, #sources]") (fun () ->
      ignore (Spec.create ~redundancy:4 [ "a"; "b" ]));
  Alcotest.check_raises "bad candidate size"
    (Invalid_argument "Spec.create: candidate size differs from redundancy")
    (fun () ->
      ignore (Spec.create ~redundancy:2 ~candidates:[ [ "a" ] ] [ "a"; "b" ]));
  Alcotest.check_raises "unknown candidate member"
    (Invalid_argument "Spec.create: candidate member \"z\" unknown") (fun () ->
      ignore (Spec.create ~redundancy:2 ~candidates:[ [ "a"; "z" ] ] [ "a"; "b" ]));
  Alcotest.check_raises "no kinds" (Invalid_argument "Spec.create: no dependency kinds")
    (fun () -> ignore (Spec.create ~redundancy:2 ~kinds:[] [ "a"; "b" ]))

let test_spec_subset_count () =
  let s = Spec.create ~redundancy:3 [ "a"; "b"; "c"; "d"; "e" ] in
  (* C(5,3) = 10 *)
  check Alcotest.int "C(5,3)" 10 (List.length (Spec.candidate_deployments s))

(* --- Agent ------------------------------------------------------------- *)

let lab_sources () =
  [
    Agent.data_source ~name:"S1"
      [
        Collectors.static ~name:"net"
          [ Dependency.network ~src:"S1" ~dst:"I" ~route:[ "sw" ] ];
        Collectors.lshw [ Collectors.standard_profile "S1" ];
        Collectors.apt_rdepends [ (Catalog.Riak, "S1") ];
      ];
    Agent.data_source ~name:"S2"
      [
        Collectors.static ~name:"net"
          [ Dependency.network ~src:"S2" ~dst:"I" ~route:[ "sw" ] ];
        Collectors.lshw [ Collectors.standard_profile "S2" ];
        Collectors.apt_rdepends [ (Catalog.Redis, "S2") ];
      ];
  ]

let test_agent_collect_filters_kinds () =
  let spec = Spec.create ~kinds:[ Spec.Network ] ~redundancy:2 [ "S1"; "S2" ] in
  let db = Agent.collect spec (lab_sources ()) in
  check Alcotest.int "network records only" 2 (Depdb.size db);
  let spec_all = Spec.create ~redundancy:2 [ "S1"; "S2" ] in
  let db_all = Agent.collect spec_all (lab_sources ()) in
  (* 2 network + 8 hardware + 2 software *)
  check Alcotest.int "everything" 12 (Depdb.size db_all)

let test_agent_missing_source () =
  let spec = Spec.create ~redundancy:2 [ "S1"; "ghost" ] in
  Alcotest.check_raises "missing"
    (Invalid_argument "Agent: data source \"ghost\" not available") (fun () ->
      ignore (Agent.collect spec (lab_sources ())))

let test_agent_sia_run () =
  let spec = Spec.create ~redundancy:2 [ "S1"; "S2" ] in
  let run = Agent.run spec (lab_sources ()) in
  check Alcotest.int "db size" 12 run.Agent.database_size;
  match run.Agent.outcome with
  | Agent.Sia_outcome [ report ] ->
      (* shared switch and shared base packages are unexpected *)
      check Alcotest.bool "found unexpected" true
        (List.length report.Sia_audit.unexpected > 0);
      let names = List.concat_map (fun r -> r.Rank.rg_names) report.Sia_audit.unexpected in
      check Alcotest.bool "switch flagged" true (List.mem "sw" names);
      check Alcotest.bool "libc flagged" true (List.mem "libc6-2.13" names)
  | _ -> Alcotest.fail "one SIA report expected"

let test_agent_pia_run () =
  let spec =
    Spec.create ~metric:Spec.Jaccard_similarity ~kinds:[ Spec.Software ]
      ~redundancy:2 [ "S1"; "S2" ]
  in
  let run = Agent.run ~pia_protocol:Pia_audit.Cleartext spec (lab_sources ()) in
  check Alcotest.int "agent sees no records" 0 run.Agent.database_size;
  match run.Agent.outcome with
  | Agent.Pia_outcome report ->
      let r = List.hd report.Pia_audit.results in
      (* Riak vs Redis: J = 25/81 at the component-set level *)
      check (Alcotest.float 1e-4) "jaccard" (25. /. 81.) r.Pia_audit.jaccard
  | _ -> Alcotest.fail "PIA report expected"

let test_agent_render_and_best () =
  let spec = Spec.create ~redundancy:2 [ "S1"; "S2" ] in
  let run = Agent.run spec (lab_sources ()) in
  check (Alcotest.list Alcotest.string) "best" [ "S1"; "S2" ]
    (Agent.best_deployment run);
  check Alcotest.bool "renders" true (String.length (Agent.render run) > 0)

let test_agent_probability_metric () =
  let spec =
    Spec.create
      ~metric:
        (Spec.Probability_ranking
           { component_probability = (fun _ -> Some 0.05) })
      ~redundancy:2 [ "S1"; "S2" ]
  in
  let run = Agent.run spec (lab_sources ()) in
  match run.Agent.outcome with
  | Agent.Sia_outcome [ report ] ->
      check Alcotest.bool "has Pr" true (report.Sia_audit.failure_probability <> None)
  | _ -> Alcotest.fail "one report expected"

(* --- Agent under faults -------------------------------------------------- *)

module Fault = Indaas_resilience.Fault
module Retry = Indaas_resilience.Retry
module Degradation = Indaas_resilience.Degradation
module Diagnostic = Indaas_lint.Diagnostic

let three_lab_sources () =
  lab_sources ()
  @ [
      Agent.data_source ~name:"S3"
        [
          Collectors.static ~name:"net"
            [ Dependency.network ~src:"S3" ~dst:"I" ~route:[ "sw2" ] ];
          Collectors.lshw [ Collectors.standard_profile "S3" ];
          Collectors.apt_rdepends [ (Catalog.MongoDB, "S3") ];
        ];
    ]

(* The issue's acceptance scenario: three sources, one permanently
   down — the audit completes, reports degradation, raises nothing. *)
let test_agent_run_with_crashed_source () =
  let spec = Spec.create ~redundancy:2 [ "S1"; "S2"; "S3" ] in
  let faults = Fault.injector ~seed:42 (Fault.plan [ ("S2", Fault.Crash) ]) in
  let run = Agent.run ~faults spec (three_lab_sources ()) in
  let deg = run.Agent.degradation in
  check Alcotest.bool "degraded" true (Degradation.degraded deg);
  check Alcotest.bool "completeness < 1" true (deg.Degradation.completeness < 1.);
  check (Alcotest.list Alcotest.string) "S2 failed" [ "S2" ]
    (Degradation.failed_sources deg);
  check Alcotest.bool "retries were spent" true (deg.Degradation.retries > 0);
  (match run.Agent.outcome with
  | Agent.Sia_outcome reports ->
      (* Only {S1, S3} survives; candidates including S2 are skipped. *)
      check Alcotest.int "one viable deployment" 1 (List.length reports);
      let r = List.hd reports in
      check (Alcotest.list Alcotest.string) "servers" [ "S1"; "S3" ]
        r.Sia_audit.servers;
      check Alcotest.bool "IND-R001 attached" true
        (List.exists
           (fun d -> d.Diagnostic.code = "IND-R001")
           r.Sia_audit.diagnostics)
  | Agent.Pia_outcome _ -> Alcotest.fail "SIA outcome expected");
  check Alcotest.bool "render flags degradation" true
    (Astring.String.is_infix ~affix:"DEGRADED AUDIT" (Agent.render run))

let test_agent_run_without_faults_is_complete () =
  let spec = Spec.create ~redundancy:2 [ "S1"; "S2" ] in
  let run = Agent.run spec (lab_sources ()) in
  check Alcotest.bool "not degraded" false
    (Degradation.degraded run.Agent.degradation);
  (match run.Agent.outcome with
  | Agent.Sia_outcome [ r ] ->
      check Alcotest.bool "no IND-R001" false
        (List.exists
           (fun d -> d.Diagnostic.code = "IND-R001")
           r.Sia_audit.diagnostics)
  | _ -> Alcotest.fail "one report expected");
  check Alcotest.bool "no banner" false
    (Astring.String.is_infix ~affix:"DEGRADED AUDIT" (Agent.render run))

let test_agent_flaky_source_recovers () =
  (* flaky:2 is within the default budget of 3 retries: the run ends
     complete, with the retries accounted. *)
  let spec = Spec.create ~redundancy:2 [ "S1"; "S2" ] in
  let faults = Fault.injector ~seed:7 (Fault.plan [ ("*", Fault.Flaky_until 2) ]) in
  let run = Agent.run ~faults spec (lab_sources ()) in
  let deg = run.Agent.degradation in
  check Alcotest.bool "complete" false (Degradation.degraded deg);
  check (Alcotest.float 1e-12) "completeness 1" 1. deg.Degradation.completeness;
  check Alcotest.bool "retries accounted" true (deg.Degradation.retries > 0);
  check Alcotest.int "db intact" 12 run.Agent.database_size

let test_agent_duplicate_source_rejected () =
  let spec = Spec.create ~redundancy:2 [ "S1"; "S2" ] in
  let sources = lab_sources () @ [ Agent.data_source ~name:"S1" [] ] in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Agent.run: duplicate data source name \"S1\"") (fun () ->
      ignore (Agent.run spec sources))

let test_agent_pia_excludes_dead_provider () =
  let spec =
    Spec.create ~metric:Spec.Jaccard_similarity ~kinds:[ Spec.Software ]
      ~redundancy:2 [ "S1"; "S2"; "S3" ]
  in
  let faults = Fault.injector ~seed:5 (Fault.plan [ ("S3", Fault.Crash) ]) in
  let run =
    Agent.run ~faults ~pia_protocol:Pia_audit.Cleartext spec
      (three_lab_sources ())
  in
  check Alcotest.bool "degraded" true (Degradation.degraded run.Agent.degradation);
  (match run.Agent.outcome with
  | Agent.Pia_outcome report ->
      (* Only the surviving pair is measured. *)
      check Alcotest.int "one pair" 1 (List.length report.Pia_audit.results);
      check (Alcotest.list Alcotest.string) "S1 & S2"
        [ "S1"; "S2" ]
        (List.hd report.Pia_audit.results).Pia_audit.providers
  | _ -> Alcotest.fail "PIA outcome expected");
  (* With both of the surviving providers needed, a second crash would
     leave fewer than [redundancy] and must raise Failure. *)
  let faults =
    Fault.injector ~seed:5
      (Fault.plan [ ("S3", Fault.Crash); ("S2", Fault.Crash) ])
  in
  check Alcotest.bool "insufficient providers raise" true
    (try
       ignore
         (Agent.run ~faults ~pia_protocol:Pia_audit.Cleartext spec
            (three_lab_sources ()));
       false
     with Failure _ -> true)

let test_collect_resilient_no_faults_matches_collect () =
  let sources = lab_sources () in
  let db, deg = Agent.collect_resilient ~retry:Retry.default sources in
  check Alcotest.bool "complete" false (Degradation.degraded deg);
  let spec = Spec.create ~redundancy:2 [ "S1"; "S2" ] in
  check Alcotest.int "same records as fail-fast collect"
    (Depdb.size (Agent.collect spec sources))
    (Depdb.size db)

(* --- Scenario: §6.2.1 --------------------------------------------------- *)

let network_case = lazy (Scenario.run_network_case ())

let test_network_case_shape () =
  let nc = Lazy.force network_case in
  check Alcotest.int "190 deployments" 190 nc.Scenario.total_deployments;
  check Alcotest.int "36 clean" 36 nc.Scenario.clean_deployments;
  check Alcotest.bool "minority are safe picks" true
    (nc.Scenario.random_success_probability < 0.25)

let test_network_case_best_pair () =
  let nc = Lazy.force network_case in
  check (Alcotest.list Alcotest.int) "rack 5 + rack 29" [ 5; 29 ]
    nc.Scenario.best_pair_racks

let test_network_case_probability_confirms () =
  let nc = Lazy.force network_case in
  check Alcotest.bool "probability cross-check" true
    nc.Scenario.probability_confirms_best;
  (* Pr(fail) for two independent {ToR, core} chains at p = 0.1:
     (1 - 0.9^2)^2 = 0.0361 *)
  match nc.Scenario.lowest_failure_probability with
  | Some p -> check (Alcotest.float 1e-6) "Pr" 0.0361 p
  | None -> Alcotest.fail "probability expected"

let test_network_case_sampling_agrees () =
  let nc = Lazy.force network_case in
  let sampled =
    Scenario.run_network_case
      ~algorithm:(Sia_audit.failure_sampling ~rounds:2000) ()
  in
  check (Alcotest.list Alcotest.int) "same winner" nc.Scenario.best_pair_racks
    sampled.Scenario.best_pair_racks;
  check Alcotest.int "same clean count" nc.Scenario.clean_deployments
    sampled.Scenario.clean_deployments

(* --- Scenario: §6.2.2 ----------------------------------------------------- *)

let hardware_case = lazy (Scenario.run_hardware_case ())

let test_hardware_case_colocated () =
  let hc = Lazy.force hardware_case in
  check Alcotest.bool "replicas co-located" true hc.Scenario.co_located

let test_hardware_case_top4 () =
  let hc = Lazy.force hardware_case in
  (* Top-4 shape of the paper: a host singleton, a switch singleton,
     the core pair, the VM pair. *)
  match hc.Scenario.top4 with
  | [ first; second; third; fourth ] ->
      check Alcotest.int "host singleton" 1 (List.length first);
      check Alcotest.int "switch singleton" 1 (List.length second);
      check (Alcotest.list Alcotest.string) "core pair" [ "Core1"; "Core2" ] third;
      check (Alcotest.list Alcotest.string) "vm pair" [ "VM7"; "VM8" ] fourth
  | _ -> Alcotest.fail "four ranked RGs expected"

let test_hardware_case_fix () =
  let hc = Lazy.force hardware_case in
  check (Alcotest.list Alcotest.string) "recommendation" [ "Server2"; "Server3" ]
    hc.Scenario.recommended_servers;
  check Alcotest.bool "fixed after migration" true hc.Scenario.fixed;
  check Alcotest.int "no unexpected RGs left" 0
    (List.length hc.Scenario.final_report.Sia_audit.unexpected)

let test_hardware_case_initial_unexpected () =
  let hc = Lazy.force hardware_case in
  check Alcotest.bool "initial audit flags risk" true
    (List.length hc.Scenario.initial_report.Sia_audit.unexpected > 0)

(* --- Scenario: §6.2.3 ------------------------------------------------------ *)

let software_case = lazy (Scenario.run_software_case ())

let test_software_case_ranking () =
  let sc = Lazy.force software_case in
  check (Alcotest.list Alcotest.string) "best 2-way" [ "Cloud2"; "Cloud4" ]
    sc.Scenario.best_two_way;
  let two = List.map (fun r -> r.Pia_audit.providers) sc.Scenario.two_way.Pia_audit.results in
  check Alcotest.int "all 6 pairs" 6 (List.length two);
  let three =
    List.map (fun r -> r.Pia_audit.providers) sc.Scenario.three_way.Pia_audit.results
  in
  check (Alcotest.list Alcotest.string) "best 3-way"
    [ "Cloud2"; "Cloud3"; "Cloud4" ] (List.hd three)

let test_software_case_jaccard_values () =
  let sc = Lazy.force software_case in
  (* Values must be close to the paper's Table 2 (±0.05). *)
  let expected =
    [
      ([ "Cloud2"; "Cloud4" ], 0.1419); ([ "Cloud2"; "Cloud3" ], 0.1547);
      ([ "Cloud1"; "Cloud4" ], 0.2081); ([ "Cloud1"; "Cloud3" ], 0.2939);
      ([ "Cloud3"; "Cloud4" ], 0.3489); ([ "Cloud1"; "Cloud2" ], 0.5059);
    ]
  in
  List.iter
    (fun (providers, paper_value) ->
      let r =
        List.find
          (fun r -> r.Pia_audit.providers = providers)
          sc.Scenario.two_way.Pia_audit.results
      in
      check Alcotest.bool
        (String.concat "&" providers)
        true
        (abs_float (r.Pia_audit.jaccard -. paper_value) < 0.05))
    expected

(* --- Scenario helpers -------------------------------------------------------- *)

let test_hardware_sources_shape () =
  let rng = Prng.of_int 1 in
  let cloud = Indaas_iaas.Cloud.create ~servers:Indaas_iaas.Cloud.lab_servers rng in
  ignore (Indaas_iaas.Cloud.boot_vm cloud ~name:"VM1" ~group:"g");
  let sources = Scenario.hardware_case_sources cloud in
  check Alcotest.int "one source" 1 (List.length sources);
  let db =
    Agent.collect (Spec.create ~redundancy:2 [ "lab-cloud"; "lab-cloud" ]) sources
  in
  check Alcotest.bool "has records" true (Depdb.size db > 0)

let test_network_case_database () =
  let db = Scenario.network_case_database () in
  check Alcotest.int "20 records" 20 (Depdb.size db)

let test_software_case_providers () =
  let providers = Scenario.software_case_providers () in
  check Alcotest.int "four clouds" 4 (List.length providers)


(* --- Monitor (periodic audits / drift) ---------------------------------- *)

module Monitor = Indaas.Monitor

let flat_db routes =
  let db = Depdb.create () in
  List.iter
    (fun (src, route) ->
      Depdb.add db (Dependency.network ~src ~dst:"I" ~route))
    routes;
  db

let test_monitor_detects_regression () =
  (* Snapshot 1: disjoint switches. Snapshot 2: consolidation onto a
     shared switch introduces an unexpected RG. *)
  let before = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swB" ]) ] in
  let after = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swA" ]) ] in
  let request = Sia_audit.request [ "S1"; "S2" ] in
  let _, diffs = Monitor.audit_series [ before; after ] request in
  match diffs with
  | [ d ] ->
      check Alcotest.bool "regressed" true d.Monitor.regressed;
      check Alcotest.bool "flags the shared switch" true
        (List.exists
           (function
             | Monitor.Unexpected_appeared r -> r.Rank.rg_names = [ "swA" ]
             | _ -> false)
           d.Monitor.changes);
      check (Alcotest.option Alcotest.int) "first regression" (Some 0)
        (Monitor.first_regression diffs);
      check Alcotest.bool "render mentions REGRESSED" true
        (Astring.String.is_infix ~affix:"REGRESSED" (Monitor.render_diff d))
  | _ -> Alcotest.fail "one diff expected"

let test_monitor_detects_fix () =
  let before = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swA" ]) ] in
  let after = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swB" ]) ] in
  let request = Sia_audit.request [ "S1"; "S2" ] in
  let _, diffs = Monitor.audit_series [ before; after ] request in
  let d = List.hd diffs in
  check Alcotest.bool "not regressed" false d.Monitor.regressed;
  check Alcotest.bool "unexpected resolved" true
    (List.exists
       (function Monitor.Unexpected_resolved [ "swA" ] -> true | _ -> false)
       d.Monitor.changes);
  check (Alcotest.option Alcotest.int) "no regression" None
    (Monitor.first_regression diffs)

let test_monitor_no_changes () =
  let db = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swB" ]) ] in
  let request = Sia_audit.request [ "S1"; "S2" ] in
  let _, diffs = Monitor.audit_series [ db; db ] request in
  let d = List.hd diffs in
  check Alcotest.int "no changes" 0 (List.length d.Monitor.changes);
  check Alcotest.bool "render says so" true
    (Astring.String.is_infix ~affix:"no changes" (Monitor.render_diff d))

let test_monitor_probability_movement () =
  let before = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swB" ]) ] in
  let after = flat_db [ ("S1", [ "swA"; "extra" ]); ("S2", [ "swB" ]) ] in
  let request =
    Sia_audit.request
      ~component_probability:(Indaas_sia.Builder.uniform_probability 0.1)
      ~ranking:Sia_audit.Probability_based [ "S1"; "S2" ]
  in
  let _, diffs = Monitor.audit_series [ before; after ] request in
  let d = List.hd diffs in
  (* The extra device on S1's only path raises Pr(S1 fails), so the
     deployment's failure probability rises: a regression. *)
  check Alcotest.bool "probability regression" true d.Monitor.regressed;
  check Alcotest.bool "probability change reported" true
    (List.exists
       (function
         | Monitor.Failure_probability_changed { before = b; after = a } -> a > b
         | _ -> false)
       d.Monitor.changes)

let test_monitor_validation () =
  let db = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swB" ]) ] in
  let r1 = Sia_audit.audit db (Sia_audit.request [ "S1"; "S2" ]) in
  let r2 = Sia_audit.audit db (Sia_audit.request [ "S2"; "S1" ]) in
  check Alcotest.bool "different deployments rejected" true
    (try
       ignore (Monitor.diff_reports ~before:r1 ~after:r2);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "empty series rejected" true
    (try
       ignore (Monitor.audit_series [] (Sia_audit.request [ "S1" ]));
       false
     with Invalid_argument _ -> true)

let test_monitor_single_snapshot () =
  let db = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swB" ]) ] in
  let reports, diffs = Monitor.audit_series [ db ] (Sia_audit.request [ "S1"; "S2" ]) in
  check Alcotest.int "one report" 1 (List.length reports);
  check Alcotest.int "no diffs" 0 (List.length diffs)

let test_monitor_expected_size_changes () =
  (* S1 grows a second single-path switch: the new RG {swB, swC} is of
     the intended size, so it is reported but does not regress. *)
  let before = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swB" ]) ] in
  let after = flat_db [ ("S1", [ "swA"; "swC" ]); ("S2", [ "swB" ]) ] in
  let request = Sia_audit.request [ "S1"; "S2" ] in
  let _, diffs = Monitor.audit_series [ before; after ] request in
  let d = List.hd diffs in
  check Alcotest.bool "not regressed" false d.Monitor.regressed;
  check Alcotest.bool "expected-size RG appeared" true
    (List.exists
       (function
         | Monitor.Risk_group_appeared r ->
             List.sort compare r.Rank.rg_names = [ "swB"; "swC" ]
         | _ -> false)
       d.Monitor.changes);
  (* And the reverse direction reports it resolved. *)
  let _, diffs = Monitor.audit_series [ after; before ] request in
  let d = List.hd diffs in
  check Alcotest.bool "expected-size RG resolved" true
    (List.exists
       (function
         | Monitor.Risk_group_resolved names ->
             List.sort compare names = [ "swB"; "swC" ]
         | _ -> false)
       d.Monitor.changes)

let test_monitor_first_regression_index () =
  let good = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swB" ]) ] in
  let bad = flat_db [ ("S1", [ "swA" ]); ("S2", [ "swA" ]) ] in
  let request = Sia_audit.request [ "S1"; "S2" ] in
  let reports, diffs = Monitor.audit_series [ good; good; bad ] request in
  check Alcotest.int "three reports" 3 (List.length reports);
  check Alcotest.int "two diffs" 2 (List.length diffs);
  check (Alcotest.option Alcotest.int) "regression in second diff" (Some 1)
    (Monitor.first_regression diffs)

let () =
  Alcotest.run "core"
    [
      ( "spec",
        [
          Alcotest.test_case "defaults" `Quick test_spec_defaults;
          Alcotest.test_case "explicit candidates" `Quick test_spec_explicit_candidates;
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "subset count" `Quick test_spec_subset_count;
        ] );
      ( "agent",
        [
          Alcotest.test_case "collect filters kinds" `Quick
            test_agent_collect_filters_kinds;
          Alcotest.test_case "missing source" `Quick test_agent_missing_source;
          Alcotest.test_case "SIA run" `Quick test_agent_sia_run;
          Alcotest.test_case "PIA run" `Quick test_agent_pia_run;
          Alcotest.test_case "render and best" `Quick test_agent_render_and_best;
          Alcotest.test_case "probability metric" `Quick test_agent_probability_metric;
        ] );
      ( "agent-resilience",
        [
          Alcotest.test_case "crashed source degrades" `Quick
            test_agent_run_with_crashed_source;
          Alcotest.test_case "no faults is complete" `Quick
            test_agent_run_without_faults_is_complete;
          Alcotest.test_case "flaky source recovers" `Quick
            test_agent_flaky_source_recovers;
          Alcotest.test_case "duplicate source rejected" `Quick
            test_agent_duplicate_source_rejected;
          Alcotest.test_case "PIA excludes dead provider" `Quick
            test_agent_pia_excludes_dead_provider;
          Alcotest.test_case "collect_resilient matches collect" `Quick
            test_collect_resilient_no_faults_matches_collect;
        ] );
      ( "network-case",
        [
          Alcotest.test_case "shape" `Quick test_network_case_shape;
          Alcotest.test_case "best pair" `Quick test_network_case_best_pair;
          Alcotest.test_case "probability confirms" `Quick
            test_network_case_probability_confirms;
          Alcotest.test_case "sampling agrees" `Slow test_network_case_sampling_agrees;
          Alcotest.test_case "database" `Quick test_network_case_database;
        ] );
      ( "hardware-case",
        [
          Alcotest.test_case "co-located" `Quick test_hardware_case_colocated;
          Alcotest.test_case "top-4 RGs" `Quick test_hardware_case_top4;
          Alcotest.test_case "fix applied" `Quick test_hardware_case_fix;
          Alcotest.test_case "initial risk flagged" `Quick
            test_hardware_case_initial_unexpected;
          Alcotest.test_case "sources" `Quick test_hardware_sources_shape;
        ] );
      ( "software-case",
        [
          Alcotest.test_case "ranking" `Quick test_software_case_ranking;
          Alcotest.test_case "jaccard near paper" `Quick
            test_software_case_jaccard_values;
          Alcotest.test_case "providers" `Quick test_software_case_providers;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "detects regression" `Quick test_monitor_detects_regression;
          Alcotest.test_case "detects fix" `Quick test_monitor_detects_fix;
          Alcotest.test_case "no changes" `Quick test_monitor_no_changes;
          Alcotest.test_case "probability movement" `Quick
            test_monitor_probability_movement;
          Alcotest.test_case "validation" `Quick test_monitor_validation;
          Alcotest.test_case "single snapshot" `Quick test_monitor_single_snapshot;
          Alcotest.test_case "expected-size changes" `Quick
            test_monitor_expected_size_changes;
          Alcotest.test_case "first regression index" `Quick
            test_monitor_first_regression_index;
        ] );
    ]

