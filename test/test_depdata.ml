module Dependency = Indaas_depdata.Dependency
module Depdb = Indaas_depdata.Depdb
module Catalog = Indaas_depdata.Catalog
module Collectors = Indaas_depdata.Collectors

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let dep = Alcotest.testable Dependency.pp Dependency.equal

(* --- Dependency records and the Table 1 wire format ------------------ *)

let test_to_xml_table1 () =
  (* Byte-for-byte the examples of the paper's Table 1 / Figure 3. *)
  check Alcotest.string "network"
    {|<src="S1" dst="Internet" route="ToR1,Core1"/>|}
    (Dependency.to_xml
       (Dependency.network ~src:"S1" ~dst:"Internet" ~route:[ "ToR1"; "Core1" ]));
  check Alcotest.string "hardware"
    {|<hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>|}
    (Dependency.to_xml
       (Dependency.hardware ~hw:"S1" ~hw_type:"CPU" ~dep:"S1-Intel(R)X5550@2.6GHz"));
  check Alcotest.string "software"
    {|<pgm="Riak1" hw="S1" dep="libc6,libsvn1"/>|}
    (Dependency.to_xml
       (Dependency.software ~pgm:"Riak1" ~host:"S1" ~deps:[ "libc6"; "libsvn1" ]))

let test_of_xml_roundtrip () =
  let records =
    [
      Dependency.network ~src:"S2" ~dst:"Internet" ~route:[ "ToR1"; "Core2" ];
      Dependency.hardware ~hw:"S2" ~hw_type:"Disk" ~dep:"S2-SED900";
      Dependency.software ~pgm:"QueryEngine2" ~host:"S2" ~deps:[ "libc6"; "libgccl" ];
    ]
  in
  List.iter
    (fun r -> check dep "roundtrip" r (Dependency.of_xml (Dependency.to_xml r)))
    records

let test_of_xml_plain_tag () =
  (* Figure 3 uses '>' (no slash) for software records. *)
  check dep "no self-close"
    (Dependency.software ~pgm:"Riak1" ~host:"S1" ~deps:[ "libc6"; "libsvn1" ])
    (Dependency.of_xml {|<pgm="Riak1" hw="S1" dep="libc6,libsvn1">|})

let test_of_xml_whitespace_tolerant () =
  check dep "extra spaces"
    (Dependency.hardware ~hw:"H" ~hw_type:"T" ~dep:"x")
    (Dependency.of_xml {|<hw="H"   type="T"  dep="x" />|})

let test_of_xml_errors () =
  let fails s =
    check Alcotest.bool s true
      (try
         ignore (Dependency.of_xml s);
         false
       with Failure _ -> true)
  in
  fails "not a tag";
  fails "<src=\"A\" dst=\"B\"/>";
  (* missing route *)
  fails "<unknown=\"A\"/>";
  fails "<src=\"unterminated>";
  fails "<>"

let test_of_xml_many () =
  (* A Figure 3-style document with separators and prose. *)
  let doc =
    {|Network dependencies of S1 and S2:
<src="S1" dst="Internet" route="ToR1,Core1"/>
<src="S2" dst="Internet" route="ToR1,Core2"/>
------------------------------------
<hw="S1" type="CPU" dep="S1-X5550"/>
<pgm="Riak1" hw="S1" dep="libc6,libsvn1">|}
  in
  let records = Dependency.of_xml_many doc in
  check Alcotest.int "four records" 4 (List.length records)

let test_empty_route () =
  let r = Dependency.network ~src:"A" ~dst:"B" ~route:[] in
  check dep "empty route roundtrips" r (Dependency.of_xml (Dependency.to_xml r))

let test_subject_components () =
  check Alcotest.string "network subject" "S1"
    (Dependency.subject
       (Dependency.network ~src:"S1" ~dst:"D" ~route:[ "a" ]));
  check
    (Alcotest.list Alcotest.string)
    "software components" [ "p1"; "p2" ]
    (Dependency.components
       (Dependency.software ~pgm:"P" ~host:"H" ~deps:[ "p1"; "p2" ]));
  check
    (Alcotest.list Alcotest.string)
    "hardware components" [ "model" ]
    (Dependency.components (Dependency.hardware ~hw:"H" ~hw_type:"T" ~dep:"model"))

let test_quote_rejected () =
  Alcotest.check_raises "embedded quote"
    (Invalid_argument "Dependency: attribute value contains a quote") (fun () ->
      ignore
        (Dependency.to_xml (Dependency.hardware ~hw:"a\"b" ~hw_type:"T" ~dep:"d")))

(* --- DepDB ------------------------------------------------------------ *)

let sample_db () =
  let db = Depdb.create () in
  Depdb.add_all db
    [
      Dependency.network ~src:"S1" ~dst:"Internet" ~route:[ "ToR1"; "Core1" ];
      Dependency.network ~src:"S1" ~dst:"Internet" ~route:[ "ToR1"; "Core2" ];
      Dependency.network ~src:"S2" ~dst:"Internet" ~route:[ "ToR1"; "Core1" ];
      Dependency.hardware ~hw:"S1" ~hw_type:"CPU" ~dep:"S1-cpu";
      Dependency.hardware ~hw:"S1" ~hw_type:"Disk" ~dep:"S1-disk";
      Dependency.software ~pgm:"Riak1" ~host:"S1" ~deps:[ "libc6"; "libsvn1" ];
      Dependency.software ~pgm:"Riak2" ~host:"S2" ~deps:[ "libc6" ];
    ];
  db

let test_depdb_queries () =
  let db = sample_db () in
  check Alcotest.int "size" 7 (Depdb.size db);
  check Alcotest.int "paths S1" 2 (List.length (Depdb.network_paths db ~src:"S1"));
  check Alcotest.int "paths S2" 1 (List.length (Depdb.network_paths db ~src:"S2"));
  check Alcotest.int "hw S1" 2 (List.length (Depdb.hardware_of db ~machine:"S1"));
  check Alcotest.int "hw S2" 0 (List.length (Depdb.hardware_of db ~machine:"S2"));
  check Alcotest.int "sw S1" 1 (List.length (Depdb.software_on db ~machine:"S1"));
  check Alcotest.int "by pgm" 1 (List.length (Depdb.software_named db ~pgm:"Riak2"))

let test_depdb_idempotent_add () =
  let db = sample_db () in
  let before = Depdb.size db in
  Depdb.add db (Dependency.hardware ~hw:"S1" ~hw_type:"CPU" ~dep:"S1-cpu");
  check Alcotest.int "no duplicate" before (Depdb.size db)

let test_depdb_machines () =
  check (Alcotest.list Alcotest.string) "machines" [ "S1"; "S2" ]
    (Depdb.machines (sample_db ()))

let test_depdb_component_set () =
  check (Alcotest.list Alcotest.string) "S1 components"
    [ "Core1"; "Core2"; "S1-cpu"; "S1-disk"; "ToR1"; "libc6"; "libsvn1" ]
    (Depdb.component_set (sample_db ()) ~machine:"S1")

let test_depdb_serialization_roundtrip () =
  let db = sample_db () in
  let db2 = Depdb.of_string (Depdb.to_string db) in
  check (Alcotest.list dep) "same records" (Depdb.records db) (Depdb.records db2)

let test_depdb_merge () =
  let a = Depdb.create () in
  Depdb.add a (Dependency.hardware ~hw:"X" ~hw_type:"T" ~dep:"d1");
  let b = Depdb.create () in
  Depdb.add b (Dependency.hardware ~hw:"X" ~hw_type:"T" ~dep:"d1");
  Depdb.add b (Dependency.hardware ~hw:"Y" ~hw_type:"T" ~dep:"d2");
  check Alcotest.int "dedup on merge" 2 (Depdb.size (Depdb.merge a b))

let test_depdb_preserves_order () =
  let db = sample_db () in
  let paths = Depdb.network_paths db ~src:"S1" in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "insertion order"
    [ [ "ToR1"; "Core1" ]; [ "ToR1"; "Core2" ] ]
    (List.map (fun (n : Dependency.network) -> n.Dependency.route) paths)

(* --- Catalog ----------------------------------------------------------- *)

let test_catalog_sizes () =
  (* Region structure solved for Table 2 (see catalog.ml). *)
  check Alcotest.int "Riak" 53 (List.length (Catalog.packages Catalog.Riak));
  check Alcotest.int "MongoDB" 70 (List.length (Catalog.packages Catalog.MongoDB));
  check Alcotest.int "Redis" 53 (List.length (Catalog.packages Catalog.Redis));
  check Alcotest.int "CouchDB" 53 (List.length (Catalog.packages Catalog.CouchDB))

let test_catalog_base_shared () =
  List.iter
    (fun app ->
      let pkgs = Catalog.packages app in
      List.iter
        (fun base ->
          check Alcotest.bool
            (Catalog.application_name app ^ " has " ^ base)
            true (List.mem base pkgs))
        Catalog.base_system_packages)
    Catalog.all_applications

let test_catalog_no_duplicates () =
  List.iter
    (fun app ->
      let pkgs = Catalog.packages app in
      check Alcotest.int
        (Catalog.application_name app ^ " duplicate-free")
        (List.length pkgs)
        (List.length (List.sort_uniq compare pkgs)))
    Catalog.all_applications

let test_catalog_software_dependency () =
  match Catalog.software_dependency Catalog.Redis ~host:"S9" with
  | Dependency.Software s ->
      check Alcotest.string "pgm" "Redis" s.Dependency.pgm;
      check Alcotest.string "host" "S9" s.Dependency.host;
      check Alcotest.int "deps" 53 (List.length s.Dependency.deps)
  | _ -> Alcotest.fail "expected software record"

let test_synthetic_sets () =
  let g = Indaas_util.Prng.of_int 77 in
  let sets = Catalog.synthetic_sets g ~providers:3 ~elements:100 ~shared_fraction:0.2 in
  check Alcotest.int "providers" 3 (Array.length sets);
  Array.iter (fun s -> check Alcotest.int "elements" 100 (List.length s)) sets;
  (* exactly the shared pool is common *)
  let module SS = Set.Make (String) in
  let inter =
    Array.fold_left
      (fun acc s -> SS.inter acc (SS.of_list s))
      (SS.of_list sets.(0))
      sets
  in
  check Alcotest.int "shared pool" 20 (SS.cardinal inter)

let test_synthetic_sets_validation () =
  let g = Indaas_util.Prng.of_int 77 in
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Catalog.synthetic_sets: shared_fraction out of [0,1]")
    (fun () ->
      ignore (Catalog.synthetic_sets g ~providers:2 ~elements:10 ~shared_fraction:1.5))

(* --- Collectors --------------------------------------------------------- *)

let test_nsdminer () =
  let m = Collectors.nsdminer ~routes:[ ("S1", "Internet", [ "a"; "b" ]) ] in
  check Alcotest.string "name" "nsdminer" m.Collectors.name;
  match m.Collectors.collect () with
  | [ Dependency.Network n ] ->
      check Alcotest.string "src" "S1" n.Dependency.src;
      check (Alcotest.list Alcotest.string) "route" [ "a"; "b" ] n.Dependency.route
  | _ -> Alcotest.fail "expected one network record"

let test_lshw () =
  let m = Collectors.lshw [ Collectors.standard_profile "S1" ] in
  let records = m.Collectors.collect () in
  check Alcotest.int "four components" 4 (List.length records);
  List.iter
    (fun r ->
      check Alcotest.bool "machine-prefixed" true
        (String.length (List.hd (Dependency.components r)) > 3
        && String.sub (List.hd (Dependency.components r)) 0 3 = "S1-"))
    records

let test_lshw_figure3_identifier () =
  let m = Collectors.lshw [ Collectors.standard_profile "S1" ] in
  let cpus =
    List.filter
      (function Dependency.Hardware h -> h.Dependency.hw_type = "CPU" | _ -> false)
      (m.Collectors.collect ())
  in
  match cpus with
  | [ Dependency.Hardware h ] ->
      check Alcotest.string "figure 3 identifier" "S1-Intel(R)X5550@2.6GHz"
        h.Dependency.dep
  | _ -> Alcotest.fail "expected one CPU"

let test_shared_hardware () =
  let m =
    Collectors.shared_hardware ~machines:[ "S1"; "S2" ] ~hw_type:"PDU" ~dep:"rack-pdu-7"
  in
  let records = m.Collectors.collect () in
  check Alcotest.int "one per machine" 2 (List.length records);
  let deps = List.concat_map Dependency.components records in
  check (Alcotest.list Alcotest.string) "same identifier"
    [ "rack-pdu-7"; "rack-pdu-7" ] deps

let test_apt_rdepends () =
  let m = Collectors.apt_rdepends [ (Catalog.Riak, "S1"); (Catalog.Redis, "S2") ] in
  check Alcotest.int "two records" 2 (List.length (m.Collectors.collect ()))

let test_run_merges () =
  let db =
    Collectors.run
      [
        Collectors.nsdminer ~routes:[ ("S1", "I", [ "x" ]) ];
        Collectors.lshw [ Collectors.standard_profile "S1" ];
        Collectors.static ~name:"extra"
          [ Dependency.hardware ~hw:"S1" ~hw_type:"GPU" ~dep:"S1-gpu" ];
      ]
  in
  check Alcotest.int "all records" 6 (Depdb.size db)


(* --- Flow mining (NSDMiner model) --------------------------------------- *)

module Flowmine = Indaas_depdata.Flowmine

let obs flow src device hop = { Flowmine.flow; src; dst = "Internet"; device; hop }

let test_flowmine_reconstruct () =
  let observations =
    [
      obs 1 "S1" "tor0" 0; obs 1 "S1" "agg0" 1; obs 1 "S1" "core0" 2;
      (* out-of-order delivery of flow 2's observations *)
      obs 2 "S1" "core0" 2; obs 2 "S1" "tor0" 0; obs 2 "S1" "agg0" 1;
      obs 3 "S1" "tor0" 0; obs 3 "S1" "agg1" 1; obs 3 "S1" "core2" 2;
    ]
  in
  let routes = Flowmine.reconstruct observations in
  check Alcotest.int "two distinct routes" 2 (List.length routes);
  let first = List.hd routes in
  check Alcotest.int "majority route count" 2 first.Flowmine.occurrences;
  check (Alcotest.list Alcotest.string) "hop order" [ "tor0"; "agg0"; "core0" ]
    first.Flowmine.devices

let test_flowmine_discards_corrupt () =
  let observations =
    [
      (* two devices claim hop 1: corrupt *)
      obs 1 "S1" "tor0" 0; obs 1 "S1" "agg0" 1; obs 1 "S1" "agg1" 1;
      obs 2 "S1" "tor0" 0; obs 2 "S1" "agg0" 1;
    ]
  in
  let routes = Flowmine.reconstruct observations in
  check Alcotest.int "only the clean flow" 1 (List.length routes);
  check Alcotest.int "count" 1 (List.hd routes).Flowmine.occurrences

let test_flowmine_threshold () =
  let observations =
    [
      obs 1 "S1" "tor0" 0; obs 2 "S1" "tor0" 0; obs 3 "S1" "tor9" 0;
      (* route via tor9 seen once: noise *)
    ]
  in
  let records = Flowmine.mine ~min_occurrences:2 observations in
  check Alcotest.int "noise filtered" 1 (List.length records);
  match records with
  | [ Dependency.Network n ] ->
      check (Alcotest.list Alcotest.string) "route" [ "tor0" ] n.Dependency.route
  | _ -> Alcotest.fail "network record expected"

let test_flowmine_collector () =
  let c = Flowmine.collector ~min_occurrences:1 [ obs 1 "S1" "tor0" 0 ] in
  check Alcotest.string "name" "nsdminer-flows" c.Collectors.name;
  check Alcotest.int "records" 1 (List.length (c.Collectors.collect ()))

(* --- qcheck ------------------------------------------------------------- *)

let ident_gen =
  QCheck.Gen.(
    map (fun s -> "id" ^ String.concat "" (List.map string_of_int s))
      (list_size (int_range 0 6) (int_range 0 9)))

let gen_record =
  QCheck.make
    ~print:Dependency.to_xml
    QCheck.Gen.(
      oneof
        [
          map3
            (fun src dst route -> Dependency.network ~src ~dst ~route)
            ident_gen ident_gen
            (list_size (int_range 0 5) ident_gen);
          map3
            (fun hw hw_type dep -> Dependency.hardware ~hw ~hw_type ~dep)
            ident_gen ident_gen ident_gen;
          map3
            (fun pgm host deps -> Dependency.software ~pgm ~host ~deps)
            ident_gen ident_gen
            (list_size (int_range 0 5) ident_gen);
        ])

let prop_xml_roundtrip =
  QCheck.Test.make ~name:"wire format roundtrip" ~count:500 gen_record (fun r ->
      Dependency.equal r (Dependency.of_xml (Dependency.to_xml r)))

let prop_many_roundtrip =
  QCheck.Test.make ~name:"document roundtrip" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 0 10) gen_record) (fun rs ->
      Dependency.of_xml_many (Dependency.to_xml_many rs) = rs)


(* --- Failure statistics (§5.1) -------------------------------------- *)

module Failure_stats = Indaas_depdata.Failure_stats

let sample_events =
  [
    { Failure_stats.component = "tor1"; component_type = "ToR"; day = 3 };
    { Failure_stats.component = "tor1"; component_type = "ToR"; day = 9 };
    { Failure_stats.component = "tor4"; component_type = "ToR"; day = 30 };
    { Failure_stats.component = "core2"; component_type = "Core"; day = 100 };
  ]

let test_estimate_by_type () =
  let estimates =
    Failure_stats.estimate_by_type ~window_days:365
      ~population:[ ("ToR", 20); ("Core", 4); ("Agg", 8) ]
      sample_events
  in
  let find t = List.find (fun e -> e.Failure_stats.etype = t) estimates in
  (* tor1 failed twice but counts once *)
  check Alcotest.int "ToR distinct failures" 2 (find "ToR").Failure_stats.failed;
  check (Alcotest.float 1e-9) "ToR probability" 0.1 (find "ToR").Failure_stats.probability;
  check (Alcotest.float 1e-9) "Core probability" 0.25 (find "Core").Failure_stats.probability;
  check (Alcotest.float 1e-9) "Agg no failures" 0. (find "Agg").Failure_stats.probability

let test_estimate_validation () =
  check Alcotest.bool "unknown type" true
    (try
       ignore
         (Failure_stats.estimate_by_type ~window_days:10 ~population:[ ("A", 1) ]
            [ { Failure_stats.component = "x"; component_type = "B"; day = 0 } ]);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "event outside window" true
    (try
       ignore
         (Failure_stats.estimate_by_type ~window_days:10 ~population:[ ("A", 1) ]
            [ { Failure_stats.component = "x"; component_type = "A"; day = 10 } ]);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "bad window" true
    (try
       ignore (Failure_stats.estimate_by_type ~window_days:0 ~population:[] []);
       false
     with Invalid_argument _ -> true)

let test_probability_of () =
  let estimates =
    Failure_stats.estimate_by_type ~window_days:365 ~population:[ ("ToR", 10) ]
      []
  in
  check (Alcotest.option (Alcotest.float 1e-9)) "found" (Some 0.)
    (Failure_stats.probability_of estimates ~component_type:"ToR");
  check (Alcotest.option (Alcotest.float 1e-9)) "missing" None
    (Failure_stats.probability_of estimates ~component_type:"GPU")

let test_cvss_mapping () =
  check (Alcotest.float 1e-9) "max score" 0.1 (Failure_stats.probability_of_cvss 10.);
  check (Alcotest.float 1e-9) "zero" 0. (Failure_stats.probability_of_cvss 0.);
  check (Alcotest.float 1e-9) "custom rate" 0.5
    (Failure_stats.probability_of_cvss ~exploit_rate:1.0 5.);
  check Alcotest.bool "out of range" true
    (try
       ignore (Failure_stats.probability_of_cvss 11.);
       false
     with Invalid_argument _ -> true)

let test_cvss_table () =
  let lookup = Failure_stats.cvss_table [ ("openssl-1.0.1", 9.8); ("zlib", 2.0) ] in
  (match lookup "openssl-1.0.1" with
  | Some p -> check (Alcotest.float 1e-9) "heartbleed-grade" 0.098 p
  | None -> Alcotest.fail "expected entry");
  check Alcotest.bool "unlisted" true (lookup "libc6" = None)

let test_classify_by_prefix () =
  let classify =
    Failure_stats.classify_by_prefix [ ("tor", "ToR"); ("core", "Core") ]
  in
  check (Alcotest.option Alcotest.string) "tor12" (Some "ToR") (classify "tor12");
  check (Alcotest.option Alcotest.string) "core1" (Some "Core") (classify "core1");
  check (Alcotest.option Alcotest.string) "server3" None (classify "server3")

let test_lookup_composition () =
  let estimates =
    Failure_stats.estimate_by_type ~window_days:365 ~population:[ ("ToR", 10) ]
      [ { Failure_stats.component = "tor1"; component_type = "ToR"; day = 1 } ]
  in
  let probability =
    Failure_stats.lookup ~default:0.01
      ~device_types:(Failure_stats.classify_by_prefix [ ("tor", "ToR") ])
      ~device_estimates:estimates
      ~software:(Failure_stats.cvss_table [ ("openssl", 10.) ])
  in
  check (Alcotest.option (Alcotest.float 1e-9)) "software first" (Some 0.1)
    (probability "openssl");
  check (Alcotest.option (Alcotest.float 1e-9)) "device estimate" (Some 0.1)
    (probability "tor7");
  check (Alcotest.option (Alcotest.float 1e-9)) "default" (Some 0.01)
    (probability "mystery")

(* --- Depdb.digest ---------------------------------------------------- *)

let digest_records =
  [
    Dependency.network ~src:"S1" ~dst:"Internet" ~route:[ "ToR1"; "Core1" ];
    Dependency.hardware ~hw:"S1" ~hw_type:"Disk" ~dep:"S1-disk";
    Dependency.software ~pgm:"Riak1" ~host:"S1" ~deps:[ "libc6" ];
    Dependency.network ~src:"S2" ~dst:"Internet" ~route:[ "ToR1"; "Core2" ];
  ]

let test_digest_insertion_order_invariant () =
  let forward = Depdb.create () and backward = Depdb.create () in
  Depdb.add_all forward digest_records;
  Depdb.add_all backward (List.rev digest_records);
  check Alcotest.string "same digest" (Depdb.digest forward)
    (Depdb.digest backward);
  check Alcotest.int "hex sha-256" 64 (String.length (Depdb.digest forward))

let test_digest_tracks_content () =
  let db = Depdb.create () in
  Depdb.add_all db digest_records;
  let before = Depdb.digest db in
  (* Re-adding an existing record is a no-op, so the digest holds. *)
  Depdb.add db (List.hd digest_records);
  check Alcotest.string "idempotent add" before (Depdb.digest db);
  Depdb.add db (Dependency.hardware ~hw:"S2" ~hw_type:"Disk" ~dep:"S2-disk");
  check Alcotest.bool "new record, new digest" true (before <> Depdb.digest db);
  check Alcotest.bool "empty differs" true
    (Depdb.digest (Depdb.create ()) <> before)

let prop_digest_order_invariant =
  QCheck.Test.make ~name:"digest invariant under source insertion order"
    ~count:100
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      let g = Indaas_util.Prng.of_int seed in
      let records =
        List.init n (fun i ->
            Dependency.hardware
              ~hw:(Printf.sprintf "M%d" (i mod 5))
              ~hw_type:"Disk"
              ~dep:(Printf.sprintf "c%d" i))
      in
      let a = Depdb.create () and b = Depdb.create () in
      Depdb.add_all a records;
      Depdb.add_all b (Indaas_util.Prng.shuffle_list g records);
      Depdb.digest a = Depdb.digest b)

let () =
  Alcotest.run "depdata"
    [
      ( "dependency",
        [
          Alcotest.test_case "table 1 format" `Quick test_to_xml_table1;
          Alcotest.test_case "roundtrip" `Quick test_of_xml_roundtrip;
          Alcotest.test_case "plain tag" `Quick test_of_xml_plain_tag;
          Alcotest.test_case "whitespace tolerant" `Quick test_of_xml_whitespace_tolerant;
          Alcotest.test_case "parse errors" `Quick test_of_xml_errors;
          Alcotest.test_case "document parse" `Quick test_of_xml_many;
          Alcotest.test_case "empty route" `Quick test_empty_route;
          Alcotest.test_case "subject/components" `Quick test_subject_components;
          Alcotest.test_case "quote rejected" `Quick test_quote_rejected;
          qtest prop_xml_roundtrip;
          qtest prop_many_roundtrip;
        ] );
      ( "depdb",
        [
          Alcotest.test_case "queries" `Quick test_depdb_queries;
          Alcotest.test_case "idempotent add" `Quick test_depdb_idempotent_add;
          Alcotest.test_case "machines" `Quick test_depdb_machines;
          Alcotest.test_case "component_set" `Quick test_depdb_component_set;
          Alcotest.test_case "serialization" `Quick test_depdb_serialization_roundtrip;
          Alcotest.test_case "merge" `Quick test_depdb_merge;
          Alcotest.test_case "order preserved" `Quick test_depdb_preserves_order;
          Alcotest.test_case "digest order-invariant" `Quick
            test_digest_insertion_order_invariant;
          Alcotest.test_case "digest tracks content" `Quick
            test_digest_tracks_content;
          qtest prop_digest_order_invariant;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "closure sizes" `Quick test_catalog_sizes;
          Alcotest.test_case "base shared by all" `Quick test_catalog_base_shared;
          Alcotest.test_case "duplicate-free" `Quick test_catalog_no_duplicates;
          Alcotest.test_case "software record" `Quick test_catalog_software_dependency;
          Alcotest.test_case "synthetic sets" `Quick test_synthetic_sets;
          Alcotest.test_case "synthetic validation" `Quick test_synthetic_sets_validation;
        ] );
      ( "flowmine",
        [
          Alcotest.test_case "reconstruct" `Quick test_flowmine_reconstruct;
          Alcotest.test_case "discards corrupt" `Quick test_flowmine_discards_corrupt;
          Alcotest.test_case "occurrence threshold" `Quick test_flowmine_threshold;
          Alcotest.test_case "collector" `Quick test_flowmine_collector;
        ] );
      ( "collectors",
        [
          Alcotest.test_case "nsdminer" `Quick test_nsdminer;
          Alcotest.test_case "lshw" `Quick test_lshw;
          Alcotest.test_case "figure 3 identifier" `Quick test_lshw_figure3_identifier;
          Alcotest.test_case "shared hardware" `Quick test_shared_hardware;
          Alcotest.test_case "apt_rdepends" `Quick test_apt_rdepends;
          Alcotest.test_case "run merges" `Quick test_run_merges;
        ] );
      ( "failure-stats",
        [
          Alcotest.test_case "estimate by type" `Quick test_estimate_by_type;
          Alcotest.test_case "estimate validation" `Quick test_estimate_validation;
          Alcotest.test_case "probability_of" `Quick test_probability_of;
          Alcotest.test_case "cvss mapping" `Quick test_cvss_mapping;
          Alcotest.test_case "cvss table" `Quick test_cvss_table;
          Alcotest.test_case "classify by prefix" `Quick test_classify_by_prefix;
          Alcotest.test_case "lookup composition" `Quick test_lookup_composition;
        ] );
    ]

