module Span = Indaas_obs.Span
module Metrics = Indaas_obs.Metrics
module Registry = Indaas_obs.Registry
module Export = Indaas_obs.Export
module Json = Indaas_util.Json

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* A deterministic test clock: every read advances by [step] ns. *)
let ticker ?(step = 1_000L) () =
  let t = ref 0L in
  fun () ->
    t := Int64.add !t step;
    !t

(* --- Span ----------------------------------------------------------- *)

let test_span_lifecycle () =
  let s = Span.make ~id:7L ~name:"s" ~start_ns:100L in
  check Alcotest.bool "open" false (Span.closed s);
  check Alcotest.int64 "open duration" 0L (Span.duration_ns s);
  Span.stop s ~now_ns:350L;
  check Alcotest.bool "closed" true (Span.closed s);
  check Alcotest.int64 "duration" 250L (Span.duration_ns s);
  check (Alcotest.float 1e-12) "seconds" 2.5e-7 (Span.duration_seconds s);
  Alcotest.check_raises "double stop"
    (Invalid_argument "Span.stop: \"s\" already stopped") (fun () ->
      Span.stop s ~now_ns:400L)

let test_span_clamps_backwards_clock () =
  let s = Span.make ~id:1L ~name:"s" ~start_ns:500L in
  Span.stop s ~now_ns:200L;
  check Alcotest.int64 "clamped to start" 0L (Span.duration_ns s);
  check Alcotest.bool "still well-formed" true (Span.well_formed s)

let test_span_attrs_last_write_wins () =
  let s = Span.make ~id:1L ~name:"s" ~start_ns:0L in
  Span.add_attr s "k" "v1";
  Span.add_attr s "other" "x";
  Span.add_attr s "k" "v2";
  (* A rewritten key moves to the end: attrs read as most-recent-last. *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "last write wins"
    [ ("other", "x"); ("k", "v2") ]
    (Span.attrs s)

let test_span_children_in_start_order () =
  let p = Span.make ~id:1L ~name:"p" ~start_ns:0L in
  let a = Span.make ~id:2L ~name:"a" ~start_ns:1L in
  let b = Span.make ~id:3L ~name:"b" ~start_ns:2L in
  Span.add_child p a;
  Span.add_child p b;
  check
    (Alcotest.list Alcotest.string)
    "start order" [ "a"; "b" ]
    (List.map (fun (s : Span.t) -> s.Span.name) (Span.children p));
  check Alcotest.int "count includes root" 3 (Span.count p)

let test_span_well_formed_rejects_escape () =
  let p = Span.make ~id:1L ~name:"p" ~start_ns:0L in
  let c = Span.make ~id:2L ~name:"c" ~start_ns:5L in
  Span.add_child p c;
  Span.stop c ~now_ns:50L;
  Span.stop p ~now_ns:20L;
  (* Child interval [5,50] escapes parent [0,20]. *)
  check Alcotest.bool "escaping child" false (Span.well_formed p);
  let q = Span.make ~id:3L ~name:"q" ~start_ns:0L in
  check Alcotest.bool "open span is not well-formed" false (Span.well_formed q)

let test_span_find_all () =
  let p = Span.make ~id:1L ~name:"collect" ~start_ns:0L in
  let c1 = Span.make ~id:2L ~name:"collect.source" ~start_ns:1L in
  let c2 = Span.make ~id:3L ~name:"collect.source" ~start_ns:2L in
  Span.add_child p c1;
  Span.add_child p c2;
  check Alcotest.int "two sources" 2
    (List.length (Span.find_all ~name:"collect.source" p));
  check Alcotest.int "root found" 1
    (List.length (Span.find_all ~name:"collect" p))

let test_span_json_and_render () =
  let p = Span.make ~id:0xABL ~name:"root" ~start_ns:0L in
  Span.add_attr p "k" "v";
  Span.stop p ~now_ns:1500L;
  check Alcotest.string "id hex" "ab" (Span.id_hex p);
  (match Span.to_json p with
  | Json.Obj fields ->
      check Alcotest.bool "has children field" true
        (List.mem_assoc "children" fields);
      check Alcotest.bool "has attrs" true (List.mem_assoc "attrs" fields)
  | _ -> Alcotest.fail "span json must be an object");
  check Alcotest.bool "render mentions name" true
    (Astring.String.is_infix ~affix:"root" (Span.render p))

(* --- Metrics -------------------------------------------------------- *)

let test_counters () =
  let m = Metrics.create () in
  check Alcotest.int "unknown counter reads 0" 0 (Metrics.counter m "x");
  Metrics.incr m "x";
  Metrics.incr m ~by:4 "x";
  check Alcotest.int "accumulates" 5 (Metrics.counter m "x");
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Metrics.incr: counters are monotonic") (fun () ->
      Metrics.incr m ~by:(-1) "x")

let test_gauges () =
  let m = Metrics.create () in
  check (Alcotest.option (Alcotest.float 0.)) "absent" None (Metrics.gauge m "g");
  Metrics.set_gauge m "g" 1.5;
  Metrics.set_gauge m "g" 2.5;
  check
    (Alcotest.option (Alcotest.float 0.))
    "last write" (Some 2.5) (Metrics.gauge m "g")

let test_histograms () =
  let m = Metrics.create () in
  List.iter
    (fun v -> Metrics.observe m ~bounds:[| 1.; 10.; 100. |] "h" v)
    [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ];
  match Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram must exist"
  | Some h ->
      check Alcotest.int "count" 10 (Metrics.histogram_count h);
      check (Alcotest.float 1e-9) "sum" 55. (Metrics.histogram_sum h);
      check (Alcotest.float 1e-9) "p50 exact" 5.5 (Metrics.percentile h 50.);
      check (Alcotest.float 1e-9) "p99" 9.91 (Metrics.percentile h 99.)

let test_histogram_bad_bounds () =
  let m = Metrics.create () in
  Alcotest.check_raises "empty bounds"
    (Invalid_argument "Metrics.observe: empty bucket bounds") (fun () ->
      Metrics.observe m ~bounds:[||] "h" 1.);
  Alcotest.check_raises "non-ascending"
    (Invalid_argument "Metrics.observe: bucket bounds must ascend") (fun () ->
      Metrics.observe m ~bounds:[| 2.; 1. |] "h2" 1.)

let test_metrics_sorted_and_empty () =
  let m = Metrics.create () in
  check Alcotest.bool "fresh is empty" true (Metrics.is_empty m);
  check Alcotest.string "empty render" "no metrics recorded\n"
    (Metrics.render m);
  Metrics.incr m "z";
  Metrics.incr m "a";
  Metrics.incr m "m";
  check
    (Alcotest.list Alcotest.string)
    "sorted by name" [ "a"; "m"; "z" ]
    (List.map fst (Metrics.counters m));
  Metrics.clear m;
  check Alcotest.bool "cleared" true (Metrics.is_empty m)

(* --- Registry ------------------------------------------------------- *)

let test_disabled_facade_is_noop () =
  let before = List.length (Registry.roots (Registry.current ())) in
  check Alcotest.bool "global starts disabled" false (Registry.on ());
  let v = Registry.with_span "nope" (fun () -> 42) in
  Registry.incr "nope";
  Registry.observe "nope" 1.0;
  Registry.span_attr "k" "v";
  check Alcotest.int "thunk still runs" 42 v;
  check Alcotest.int "no spans recorded" before
    (List.length (Registry.roots (Registry.current ())));
  check Alcotest.bool "no metrics recorded" true
    (Metrics.is_empty (Registry.metrics (Registry.current ())))

let test_with_scope_records_and_restores () =
  let outer = Registry.current () in
  let v, scoped =
    Registry.with_scope ~clock:(ticker ()) (fun _ ->
        Registry.with_span "root" (fun () ->
            Registry.with_span "child" (fun () -> Registry.incr "c");
            "done"))
  in
  check Alcotest.string "result" "done" v;
  check Alcotest.bool "previous registry restored" true
    (outer == Registry.current ());
  match Registry.roots scoped with
  | [ root ] ->
      check Alcotest.string "root name" "root" root.Span.name;
      check Alcotest.bool "well-formed" true (Span.well_formed root);
      check
        (Alcotest.list Alcotest.string)
        "nesting" [ "child" ]
        (List.map (fun (s : Span.t) -> s.Span.name) (Span.children root));
      check Alcotest.int "counter" 1 (Metrics.counter (Registry.metrics scoped) "c")
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_with_scope_restores_on_raise () =
  let outer = Registry.current () in
  (try
     ignore
       (Registry.with_scope (fun _ ->
            Registry.with_span "boom" (fun () -> failwith "boom")))
   with Failure _ -> ());
  check Alcotest.bool "restored after raise" true (outer == Registry.current ())

let test_span_closed_on_raise () =
  let (), scoped =
    Registry.with_scope ~clock:(ticker ()) (fun _ ->
        try Registry.with_span "boom" (fun () -> failwith "x")
        with Failure _ -> ())
  in
  match Registry.roots scoped with
  | [ root ] ->
      check Alcotest.bool "closed despite raise" true (Span.closed root);
      check Alcotest.bool "well-formed" true (Span.well_formed root)
  | _ -> Alcotest.fail "expected one root"

let test_stop_span_lifo () =
  let (), _ =
    Registry.with_scope ~clock:(ticker ()) (fun reg ->
        let outer = Registry.start_span reg "outer" in
        let inner = Registry.start_span reg "inner" in
        Alcotest.check_raises "out of order"
          (Invalid_argument
             "Registry.stop_span: \"outer\" is not the innermost open span")
          (fun () -> Registry.stop_span reg outer);
        Registry.stop_span reg inner;
        Registry.stop_span reg outer)
  in
  ()

let test_span_attr_targets_innermost () =
  let (), scoped =
    Registry.with_scope ~clock:(ticker ()) (fun _ ->
        Registry.with_span "outer" (fun () ->
            Registry.with_span "inner" (fun () -> Registry.span_attr "k" "v")))
  in
  match Registry.roots scoped with
  | [ root ] -> (
      match Span.children root with
      | [ inner ] ->
          check
            (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
            "attr on inner" [ ("k", "v") ] (Span.attrs inner);
          check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
            "outer untouched" [] (Span.attrs root)
      | _ -> Alcotest.fail "expected one child")
  | _ -> Alcotest.fail "expected one root"

let test_reset_reseeds_ids () =
  let record reg =
    Registry.with_span_in reg "a" (fun () -> ());
    match Registry.roots reg with
    | [ s ] -> s.Span.id
    | _ -> Alcotest.fail "one root expected"
  in
  let (), _ =
    Registry.with_scope ~seed:9 ~clock:(ticker ()) (fun reg ->
        let id1 = record reg in
        Registry.reset reg;
        let id2 = record reg in
        check Alcotest.int64 "same seed, same id stream" id1 id2;
        Registry.reset ~seed:10 reg;
        let id3 = record reg in
        check Alcotest.bool "different seed differs" true
          (not (Int64.equal id1 id3)))
  in
  ()

(* --- Export --------------------------------------------------------- *)

let field name = function
  | Json.Obj fields -> List.assoc name fields
  | _ -> Alcotest.fail "expected a JSON object"

let test_chrome_trace_shape () =
  let (), scoped =
    Registry.with_scope ~clock:(ticker ~step:100L ()) (fun _ ->
        Registry.with_span "root" ~attrs:[ ("k", "v") ] (fun () -> ()))
  in
  let trace = Export.chrome_trace scoped in
  (match field "traceEvents" trace with
  | Json.List [ ev ] ->
      check Alcotest.string "complete event"
        (Json.to_string (Json.String "X"))
        (Json.to_string (field "ph" ev));
      (* start = 100ns -> 0us truncated; dur = 100ns -> 1us, rounded up
         so the sub-microsecond span stays visible. *)
      check Alcotest.string "ts truncates" "0" (Json.to_string (field "ts" ev));
      check Alcotest.string "dur rounds up" "1"
        (Json.to_string (field "dur" ev));
      check Alcotest.string "attr in args" (Json.to_string (Json.String "v"))
        (Json.to_string (field "k" (field "args" ev)))
  | _ -> Alcotest.fail "expected one trace event");
  match field "metrics" trace with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "metrics key must be an object"

let test_export_deterministic_under_virtual_clock () =
  let run () =
    let out, scoped =
      Registry.with_scope ~seed:3 ~clock:(ticker ()) (fun _ ->
          Registry.with_span "audit" (fun () ->
              Registry.with_span "collect" (fun () -> Registry.incr "records");
              Registry.observe ~bounds:[| 1.; 2. |] "h" 1.5))
    in
    ignore out;
    ( Json.to_string (Export.chrome_trace scoped),
      Json.to_string (Export.to_json scoped),
      Export.render scoped )
  in
  let t1, j1, r1 = run () and t2, j2, r2 = run () in
  check Alcotest.string "chrome trace byte-identical" t1 t2;
  check Alcotest.string "json byte-identical" j1 j2;
  check Alcotest.string "ascii byte-identical" r1 r2

let test_span_count_sees_open_root () =
  let counted, _ =
    Registry.with_scope ~clock:(ticker ()) (fun reg ->
        Registry.with_span "sia.audit" (fun () ->
            Registry.with_span "collect" (fun () ->
                Registry.with_span "collect.source" (fun () -> ()));
            (* From inside the still-open root — exactly where the
               IND-O001 check runs. *)
            ( Export.span_count reg,
              Export.span_count ~name:"collect" reg,
              Export.span_count ~name:"absent" reg )))
  in
  let total, collect, absent = counted in
  check Alcotest.int "total includes open root" 3 total;
  check Alcotest.int "by name" 1 collect;
  check Alcotest.int "absent" 0 absent

let test_summary_lists_roots () =
  let (), scoped =
    Registry.with_scope ~clock:(ticker ()) (fun _ ->
        Registry.with_span "a" (fun () -> ());
        Registry.with_span "b" (fun () -> Registry.with_span "c" (fun () -> ())))
  in
  let summary = Export.summary scoped in
  check Alcotest.bool "mentions a" true
    (Astring.String.is_infix ~affix:"a:" summary);
  check Alcotest.bool "b has two spans" true
    (Astring.String.is_infix ~affix:"(2 spans)" summary);
  let empty, fresh = Registry.with_scope (fun _ -> ()) in
  ignore empty;
  check Alcotest.string "empty summary" "" (Export.summary fresh)

(* --- qcheck: instrumented call trees are well-formed ----------------- *)

(* A random tree shape, driven by the repo PRNG so shrinking stays
   meaningful: [run_shape] replays it as nested instrumented calls. *)
let rec run_shape rng depth =
  let fanout = if depth >= 3 then 0 else Indaas_util.Prng.int rng 4 in
  Registry.with_span "node" (fun () ->
      Registry.incr "nodes";
      for _ = 1 to fanout do
        run_shape rng (depth + 1)
      done)

let prop_span_trees_well_formed =
  QCheck.Test.make ~name:"nested instrumented calls yield well-formed trees"
    ~count:200
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, top) ->
      let (), scoped =
        Registry.with_scope ~seed ~clock:(ticker ()) (fun _ ->
            let rng = Indaas_util.Prng.of_int seed in
            for _ = 1 to top do
              run_shape rng 0
            done)
      in
      let roots = Registry.roots scoped in
      List.length roots = top
      && List.for_all Span.well_formed roots
      && List.fold_left (fun acc s -> acc + Span.count s) 0 roots
         = Metrics.counter (Registry.metrics scoped) "nodes")

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "lifecycle" `Quick test_span_lifecycle;
          Alcotest.test_case "backwards clock clamped" `Quick
            test_span_clamps_backwards_clock;
          Alcotest.test_case "attrs last-write-wins" `Quick
            test_span_attrs_last_write_wins;
          Alcotest.test_case "children in start order" `Quick
            test_span_children_in_start_order;
          Alcotest.test_case "well-formed rejects escape" `Quick
            test_span_well_formed_rejects_escape;
          Alcotest.test_case "find_all" `Quick test_span_find_all;
          Alcotest.test_case "json and render" `Quick test_span_json_and_render;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "bad bounds" `Quick test_histogram_bad_bounds;
          Alcotest.test_case "sorted and empty" `Quick
            test_metrics_sorted_and_empty;
        ] );
      ( "registry",
        [
          Alcotest.test_case "disabled facade is no-op" `Quick
            test_disabled_facade_is_noop;
          Alcotest.test_case "scope records and restores" `Quick
            test_with_scope_records_and_restores;
          Alcotest.test_case "scope restores on raise" `Quick
            test_with_scope_restores_on_raise;
          Alcotest.test_case "span closed on raise" `Quick
            test_span_closed_on_raise;
          Alcotest.test_case "stop_span is LIFO" `Quick test_stop_span_lifo;
          Alcotest.test_case "span_attr targets innermost" `Quick
            test_span_attr_targets_innermost;
          Alcotest.test_case "reset reseeds ids" `Quick test_reset_reseeds_ids;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
          Alcotest.test_case "deterministic under virtual clock" `Quick
            test_export_deterministic_under_virtual_clock;
          Alcotest.test_case "span_count sees open root" `Quick
            test_span_count_sees_open_root;
          Alcotest.test_case "summary" `Quick test_summary_lists_roots;
        ] );
      ("properties", [ qtest prop_span_trees_well_formed ]);
    ]
