The indaas CLI end-to-end. First, a dependency database in the paper's
Table 1 wire format (the Figure 2 storage system):

  $ cat > deps.xml <<'XML'
  > <src="S1" dst="Internet" route="ToR1,Core1"/>
  > <src="S1" dst="Internet" route="ToR1,Core2"/>
  > <src="S2" dst="Internet" route="ToR1,Core1"/>
  > <src="S2" dst="Internet" route="ToR1,Core2"/>
  > <hw="S1" type="Disk" dep="S1-disk"/>
  > <hw="S2" type="Disk" dep="S2-disk"/>
  > <pgm="Riak1" hw="S1" dep="libc6"/>
  > <pgm="Riak2" hw="S2" dep="libc6"/>
  > XML

A structural audit of the {S1, S2} deployment flags the shared ToR
switch and libc6 and exits 2:

  $ indaas sia --db deps.xml --servers S1,S2
  Deployment: {S1, S2}
    fault graph: fault graph: 21 nodes (6 basic, 15 gates), top=deployment(AND)
    risk groups: 4 (expected minimal size 2)
    unexpected RGs: 2
    independence score: 6
    lint: IND-G006 warning: component "ToR1" alone fails the whole deployment (size-1 risk group)
    lint: IND-G006 warning: component "libc6" alone fails the whole deployment (size-1 risk group)
  +------+--------------------+------+-------+------------+
  | rank | risk group         | size | Pr(C) | importance |
  +------+--------------------+------+-------+------------+
  |    1 | {ToR1}             |    1 |     - |          - |
  |    2 | {libc6}            |    1 |     - |          - |
  |    3 | {Core1, Core2}     |    2 |     - |          - |
  |    4 | {S1-disk, S2-disk} |    2 |     - |          - |
  +------+--------------------+------+-------+------------+
  
  WARNING: 2 unexpected risk group(s) — redundancy is undermined.
  [2]

Probability-based ranking with a uniform device failure probability:

  $ indaas sia --db deps.xml --servers S1,S2 --prob 0.1 | grep "Pr(deployment fails)"
    Pr(deployment fails): 0.206119

The fat-tree generator reproduces the paper's Table 3 row for k=48:

  $ indaas topo -k 48
  +-----------------+-------+
  | parameter       | value |
  +-----------------+-------+
  | # switch ports  |    48 |
  | # core routers  |   576 |
  | # agg switches  |  1152 |
  | # ToR switches  |  1152 |
  | # servers       | 27648 |
  | Total # devices | 30528 |
  +-----------------+-------+

Private auditing across two providers' component lists:

  $ printf 'libssl\nlibc6\nnginx\n' > a.txt
  $ printf 'libssl\nlibc6\npostgres\nredis\n' > b.txt
  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --protocol clear
  +------+-----------------------------+---------+-------------+
  | Rank | 2-Way Redundancy Deployment | Jaccard | correlated? |
  +------+-----------------------------+---------+-------------+
  |    1 | CloudA & CloudB             |  0.4000 |          no |
  +------+-----------------------------+---------+-------------+

The same pair through the private P-SOP protocol gives the same answer
without revealing the lists:

  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --protocol psop | grep 0.4000
  |    1 | CloudA & CloudB             |  0.4000 |          no |

Fault-graph export for graphviz:

  $ indaas dot --db deps.xml --servers S1,S2 | head -2
  digraph fault_graph {
    rankdir=BT;

The hardware case study from the paper (§6.2.2):

  $ indaas case hardware
  co-located=true recommended={Server2, Server3} fixed=true
  top4:
    1. {Server4}
    2. {Switch2}
    3. {Core1, Core2}
    4. {VM7, VM8}

Comparing candidate deployments ranks the independent pair first:

  $ cat > flat.xml <<'XML'
  > <src="S1" dst="I" route="swA"/>
  > <src="S2" dst="I" route="swA"/>
  > <src="S3" dst="I" route="swB"/>
  > XML
  $ indaas compare --db flat.xml S1,S2 S1,S3
  +------+------------+------+-------------+-------+----------+
  | rank | deployment | #RGs | #unexpected | score | Pr(fail) |
  +------+------------+------+-------------+-------+----------+
  |    1 | {S1, S3}   |    1 |           0 |     2 |        - |
  |    2 | {S1, S2}   |    1 |           1 |     1 |        - |
  +------+------------+------+-------------+-------+----------+

Generating a fat-tree dependency database:

  $ indaas gen -k 4 | head -3
  <src="server0" dst="Internet" route="tor0,agg0,core0"/>
  <src="server0" dst="Internet" route="tor0,agg0,core1"/>
  <src="server0" dst="Internet" route="tor0,agg1,core2"/>

n-of-m auditing: require 2 live providers out of each 3-provider group
(section 4.2.5) — the worst 2-quorum drives the ranking:

  $ printf 'x\ny\nc1\nc2\n' > c.txt
  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --provider CloudC=c.txt --way 3 --nofm 2 --protocol clear
  +------+--------------------------+----------+-----------------+-----------+
  | Rank | Deployment (m providers) | J(all m) | worst 2-quorum  | J(quorum) |
  +------+--------------------------+----------+-----------------+-----------+
  |    1 | CloudA & CloudB & CloudC |   0.0000 | CloudA & CloudB |    0.4000 |
  +------+--------------------------+----------+-----------------+-----------+

Machine-readable output:

  $ indaas compare --db flat.xml S1,S3 --json
  [
    {
      "servers": [
        "S1",
        "S3"
      ],
      "expected_rg_size": 2,
      "risk_groups": [
        {
          "components": [
            "swA",
            "swB"
          ],
          "size": 2,
          "probability": null,
          "importance": null
        }
      ],
      "unexpected": [],
      "independence_score": 2.0,
      "failure_probability": null,
      "diagnostics": []
    }
  ]

Component importance (exact BDD probabilities):

  $ indaas importance --db flat.xml --servers S1,S3 --prob 0.1
  Pr(deployment fails) = 0.01 (exact, BDD)
  
  +------+-----------+----------+----------------+
  | rank | component | Birnbaum | Fussell-Vesely |
  +------+-----------+----------+----------------+
  |    1 | swA       |      0.1 |              1 |
  |    2 | swB       |      0.1 |              1 |
  +------+-----------+----------+----------------+


Static analysis. The Figure 2 database is structurally sound, so the
linter stays silent at the database level:

  $ indaas lint --db deps.xml
  no findings

With --graph it also builds the deployment fault graph and flags the
shared ToR switch and libc6 as single points of failure before any
audit runs (warnings do not fail the run):

  $ indaas lint --db deps.xml --graph | grep IND-G006
  | IND-G006 | warning  | node 0 "ToR1"         | component "ToR1" alone fails the whole deployment (size-1 risk group)  |
  | IND-G006 | warning  | node 8 "libc6"        | component "libc6" alone fails the whole deployment (size-1 risk group) |

A corrupted database: a program on a machine nobody recorded, a
dependency cycle, an empty route, and conflicting duplicate paths:

  $ cat > bad.xml <<'XML'
  > <src="S1" dst="Internet" route="ToR1,Core1"/>
  > <src="S1" dst="Internet" route="Core1,ToR1"/>
  > <src="Lonely" dst="Internet" route=""/>
  > <hw="S1" type="Disk" dep="S1-disk"/>
  > <pgm="A" hw="Ghost" dep="B"/>
  > <pgm="B" hw="S1" dep="A"/>
  > XML
  $ indaas lint --db bad.xml
  +----------+----------+------------------------------------------------------+----------------------------------------------------------------------------------------------------------------------------------+
  | code     | severity | location                                             | message                                                                                                                          |
  +----------+----------+------------------------------------------------------+----------------------------------------------------------------------------------------------------------------------------------+
  | IND-D001 | error    | record <pgm="A" hw="Ghost" dep="B"/>                 | program "A" runs on machine "Ghost", but no hardware or network record describes that machine                                    |
  | IND-D004 | error    | record <pgm="A" hw="Ghost" dep="B"/>                 | cyclic software dependency: A -> B -> A                                                                                          |
  | IND-D005 | error    | machine "Lonely"                                     | machine "Lonely" has no hardware, software or complete network dependencies; building its fault graph raises instead of auditing |
  | IND-D002 | warning  | record <src="Lonely" dst="Internet" route=""/>       | route Lonely -> Internet has no intermediate devices; fault-graph construction drops the whole network gate of "Lonely"          |
  | IND-D003 | warning  | record <src="S1" dst="Internet" route="Core1,ToR1"/> | route S1 -> Internet traverses the same device set as an earlier record; it adds no path redundancy                              |
  | IND-T001 | warning  | machine "Lonely"                                     | island {Lonely} has no recorded link to {Core1, S1, ToR1}; the topology is partitioned                                           |
  | IND-T002 | warning  | machine "S1"                                         | host "S1" attaches to 2 distinct first-hop switches (Core1, ToR1)                                                                |
  +----------+----------+------------------------------------------------------+----------------------------------------------------------------------------------------------------------------------------------+
  3 errors, 4 warnings, 0 hints
  [1]

Rules are individually suppressible by code:

  $ indaas lint --db bad.xml --disable IND-D001,IND-D004,IND-D005 --disable IND-T001,IND-T002,IND-D002,IND-D003
  no findings

Machine-readable findings:

  $ indaas lint --db bad.xml --format json | head -8
  {
    "summary": {
      "errors": 3,
      "warnings": 4,
      "hints": 0
    },
    "diagnostics": [
      {

--strict refuses to audit a database with lint errors and exits 1:

  $ indaas sia --strict --db bad.xml --servers S1 2>&1 | tail -1
  refusing to audit: the dependency database has lint errors
  $ indaas dot --strict --db bad.xml --servers S1 >/dev/null 2>&1
  [1]

On a clean database --strict audits normally (warnings go to stderr):

  $ indaas sia --strict --db deps.xml --servers S1,S2 >/dev/null; echo done
  done

Fault injection: --fault re-collects the database through the retry
engine as a data source named "db". Dropped records degrade the audit
instead of failing it; the report is prefixed with the degradation
banner and carries the IND-R001 diagnostic. Note how the lost records
hide both unexpected risk groups — incomplete data overestimates
independence, which is exactly why degraded audits are flagged:

  $ indaas sia --db deps.xml --servers S1,S2 --fault db=drop:0.4 --seed 7
  *** DEGRADED AUDIT *** completeness 0.50 — incomplete dependency data can only OVERESTIMATE independence
    - source db: degraded: 4 record(s) dropped (1 attempts)
    4 record(s) lost, 0 retries spent
  
  Deployment: {S1, S2}
    fault graph: fault graph: 14 nodes (5 basic, 9 gates), top=deployment(AND)
    risk groups: 4 (expected minimal size 2)
    unexpected RGs: 0
    independence score: 10
    lint: IND-R001 warning: report produced from a degraded collection (completeness 0.50); missing dependency data can only overestimate independence
  +------+-------------------------+------+-------+------------+
  | rank | risk group              | size | Pr(C) | importance |
  +------+-------------------------+------+-------+------------+
  |    1 | {S1-disk, ToR1}         |    2 |     - |          - |
  |    2 | {libc6, ToR1}           |    2 |     - |          - |
  |    3 | {S1-disk, Core1, Core2} |    3 |     - |          - |
  |    4 | {libc6, Core1, Core2}   |    3 |     - |          - |
  +------+-------------------------+------+-------+------------+


A fault that the retry budget absorbs leaves the audit complete — no
banner, no diagnostic, same result as the clean run:

  $ indaas sia --db deps.xml --servers S1,S2 --fault db=flaky:2 --seed 7 | head -1
  Deployment: {S1, S2}

--strict refuses to audit from a degraded collection:

  $ indaas sia --db deps.xml --servers S1,S2 --fault db=drop:0.4 --seed 7 --strict 2>&1 | tail -1
  refusing to audit: dependency collection was degraded
  $ indaas sia --db deps.xml --servers S1,S2 --fault db=drop:0.4 --seed 7 --strict >/dev/null 2>&1
  [1]

The chaos harness: N audit trials under a named fault plan, entirely
on the virtual clock (no sleeping), byte-reproducible for a fixed
seed:

  $ indaas chaos --scenario sia-lab --plan crash-one --trials 5 --seed 42 | tee chaos1.txt
  chaos: scenario "sia-lab" under plan "crash-one" — 5 trial(s), seed 42
  plan: S2=crash
  
  +----------+--------+
  | Outcome  | Trials |
  +----------+--------+
  | ok       |      0 |
  | degraded |      5 |
  | failed   |      0 |
  +----------+--------+
  collector attempts: 55, retries spent: 15
  completeness: min 0.67, mean 0.67, max 0.67
  distribution: [1.00] 0 [0.75,1.00) 0 [0.50,0.75) 5 [0.25,0.50) 0 [0.00,0.25) 0
  errors (by frequency):
    5x circuit breaker "S2" is open


  $ indaas chaos --scenario sia-lab --plan crash-one --trials 5 --seed 42 > chaos2.txt
  $ cmp chaos1.txt chaos2.txt && echo identical
  identical

A transient fault plan inside the retry budget: every trial recovers,
with the retries accounted:

  $ indaas chaos --plan flaky --trials 3 --seed 1
  chaos: scenario "sia-lab" under plan "flaky" — 3 trial(s), seed 1
  plan: *=flaky:2
  
  +----------+--------+
  | Outcome  | Trials |
  +----------+--------+
  | ok       |      3 |
  | degraded |      0 |
  | failed   |      0 |
  +----------+--------+
  collector attempts: 81, retries spent: 54
  completeness: min 1.00, mean 1.00, max 1.00
  distribution: [1.00] 3 [0.75,1.00) 0 [0.50,0.75) 0 [0.25,0.50) 0 [0.00,0.25) 0


The catalogue of scenarios and plans:

  $ indaas chaos --list
  scenarios:
    sia-lab      3-source SIA lab (S1/S2 share a switch), size ranking, 2-way
    pia-clouds   3-provider PIA (software sets, P-SOP over 128-bit group), 2-way
  plans:
    none         no faults — the control run
    crash-one    the second data source is permanently down
    flaky        every source fails its first two calls, then recovers
    lossy        every source drops 30% of its records
    corrupt      every source mangles 20% of its component identifiers
    slow-source  the last source times out on every call
    partition    the PIA transport loses 20% of messages

The registry documents every stable error code:

  $ indaas lint --rules | grep -c IND-
  17

The two exact RG engines return byte-identical reports:

  $ indaas sia --db deps.xml --servers S1,S2 --engine enum > enum.txt; echo "exit $?"
  exit 2
  $ indaas sia --db deps.xml --servers S1,S2 --engine bdd > bdd.txt; echo "exit $?"
  exit 2
  $ cmp enum.txt bdd.txt && echo identical
  identical

A dense deployment (2 servers x 20 disjoint devices, 400 minimal RGs)
overruns a small enumeration budget. With --engine enum that is a clean
diagnostic and exit 3, not a crash:

  $ for i in $(seq 0 19); do
  >   echo "<hw=\"S1\" type=\"T$i\" dep=\"S1-hw$i\"/>"
  >   echo "<hw=\"S2\" type=\"T$i\" dep=\"S2-hw$i\"/>"
  > done > dense.xml
  $ indaas sia --db dense.xml --servers S1,S2 --engine enum --max-family 100
  indaas: minimal-RG enumeration aborted: a minimized cut-set family reached 400 sets, over the --max-family budget of 100.
  Retry with --engine bdd (exact, no family budget) or raise --max-family.
  [3]

The default --engine auto falls back to the BDD engine and completes
the same audit:

  $ indaas sia --db dense.xml --servers S1,S2 --max-family 100 | grep "risk groups:"
    risk groups: 400 (expected minimal size 2)

Graphviz export can highlight one minimal risk group by rank:

  $ indaas dot --db deps.xml --servers S1,S2 --highlight-rg 1 | grep -c fillcolor
  1
  $ indaas dot --db deps.xml --servers S1,S2 --highlight-rg 99
  indaas dot: --highlight-rg 99, but the deployment has only 4 minimal risk group(s)
  [124]

Observability: --metrics appends a span/metric footer to the report.
Under --fault the registry runs on the injector's virtual clock, so
every duration below is a pure function of the seed:

  $ indaas sia --db deps.xml --servers S1,S2 --fault db=flaky:2 --seed 7 --metrics | tail -26
  |    4 | {S1-disk, S2-disk} |    2 |     - |          - |
  +------+--------------------+------+-------+------------+
  
  WARNING: 2 unexpected risk group(s) — redundancy is undermined.
  
  sia.audit: 271.0ms (7 spans)
  +----------------------+---------+-------+
  | metric               | kind    | value |
  +----------------------+---------+-------+
  | agent.breaker_trips  | counter |     0 |
  | agent.module_calls   | counter |     1 |
  | agent.records        | counter |     8 |
  | agent.records_lost   | counter |     0 |
  | agent.retries        | counter |     2 |
  | build.basic_events   | counter |     6 |
  | build.gates          | counter |    15 |
  | cutset.absorbed_sets | counter |    16 |
  | cutset.subset_probes | counter |    17 |
  +----------------------+---------+-------+
  +----------------------+-------+----------+----------+----------+
  | histogram            | count |      p50 |      p90 |      p99 |
  +----------------------+-------+----------+----------+----------+
  | agent.source_seconds |     1 | 0.270954 | 0.270954 | 0.270954 |
  | rg.family_size       |     1 |        4 |        4 |        4 |
  | rg.size              |     4 |      1.5 |        2 |        2 |
  +----------------------+-------+----------+----------+----------+

--trace writes the same audit as a Chrome trace_event file —
byte-identical across runs for a fixed seed:

  $ indaas sia --db deps.xml --servers S1,S2 --fault db=flaky:2 --seed 7 --trace t1.json > /dev/null
  [2]
  $ indaas sia --db deps.xml --servers S1,S2 --fault db=flaky:2 --seed 7 --trace t2.json > /dev/null
  [2]
  $ cmp t1.json t2.json && echo identical
  identical
  $ grep -o '"name":"sia.audit"' t1.json
  "name":"sia.audit"

The chaos harness aggregates per-trial spans and metrics the same
way, still byte-reproducible per seed:

  $ indaas chaos --plan flaky --trials 3 --seed 1 --metrics --trace c1.json | tail -24
  chaos.trial: 1.50s (17 spans)
  chaos.trial: 1.53s (17 spans)
  +----------------------+---------+--------+
  | metric               | kind    |  value |
  +----------------------+---------+--------+
  | agent.breaker_trips  | counter |      0 |
  | agent.module_calls   | counter |     27 |
  | agent.records        | counter |     54 |
  | agent.records_lost   | counter |      0 |
  | agent.retries        | counter |     54 |
  | build.basic_events   | counter |    888 |
  | build.gates          | counter |    117 |
  | chaos.trials_ok      | counter |      3 |
  | cutset.absorbed_sets | counter |  24438 |
  | cutset.subset_probes | counter | 400221 |
  +----------------------+---------+--------+
  +----------------------+-------+---------+----------+----------+
  | histogram            | count |     p50 |      p90 |      p99 |
  +----------------------+-------+---------+----------+----------+
  | agent.source_seconds |     9 | 0.56345 | 0.660326 | 0.688867 |
  | chaos.completeness   |     3 |       1 |        1 |        1 |
  | rg.family_size       |     9 |    1050 |     2298 |     2298 |
  | rg.size              | 11754 |       2 |        2 |        2 |
  +----------------------+-------+---------+----------+----------+
  $ indaas chaos --plan flaky --trials 3 --seed 1 --metrics --trace c2.json > /dev/null
  $ cmp c1.json c2.json && echo identical
  identical

A PIA audit reads provider files rather than instrumented collectors,
so an observability-enabled run records no collector spans — the
IND-O001 tripwire reports that on stderr, and is suppressible like
every other code:

  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --protocol clear --metrics > /dev/null
  +----------+----------+----------+---------------------------------------------------------------------------------------------------------------------------+
  | code     | severity | location | message                                                                                                                   |
  +----------+----------+----------+---------------------------------------------------------------------------------------------------------------------------+
  | IND-O001 | warning  | -        | observability is enabled but the audit recorded no collector spans; the trace is missing per-source collection accounting |
  +----------+----------+----------+---------------------------------------------------------------------------------------------------------------------------+
  0 errors, 1 warning, 0 hints
  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --protocol clear --metrics --disable IND-O001 > /dev/null

Serving mode: the same database content-addressed by its canonical
digest, which versions snapshots and keys result caching in the
daemon:

  $ indaas sia --db deps.xml --servers S1,S2 --print-digest
  080831d462ad9e0b2b24a9ecb7a6dd8243b3ea3e7b92b126c1bc6edddafcb756

`indaas client` encodes a protocol-v1 request stream; the one-shot
daemon reads it from stdin, schedules every request, and answers on
stdout. The audit response is byte-identical to the batch report for
the same DepDB/spec/seed, and the repeated request is served from the
result cache:

  $ indaas client --submit db=deps.xml --audit --servers S1,S2 --seed 7 --repeat 2 --stats --shutdown > req.bin
  $ indaas serve --one-shot --seed 7 --metrics < req.bin > resp.bin 2> serve-metrics.txt
  $ indaas client --decode --only 2 < resp.bin > served-audit.json
  $ indaas sia --db deps.xml --servers S1,S2 --seed 7 --json > batch-audit.json
  [2]
  $ cmp served-audit.json batch-audit.json && echo identical
  identical

The whole response stream is a deterministic function of (request
stream, seed) — a second run replays byte-identically:

  $ indaas serve --one-shot --seed 7 < req.bin | cmp - resp.bin && echo identical
  identical

The cache hit surfaces in --metrics (on stderr: stdout carries the
response frames) and in the stats response:

  $ grep -E 'service\.(cache\.(hit|miss)|requests)' serve-metrics.txt
  | service.cache.hit      | counter |     1 |
  | service.cache.miss     | counter |     1 |
  | service.requests       | counter |     5 |
  $ indaas client --decode --only 4 < resp.bin | grep -E '"(hits|misses|served)"'
      "hits": 1,
      "misses": 1,
      "served": 4,

A delta submission bumps the snapshot's version and invalidates
exactly the affected snapshot's cache entries, so the next audit
recomputes over the new record set:

  $ cat > delta.xml <<'XML'
  > <hw="S1" type="NIC" dep="S1-nic"/>
  > XML
  $ indaas client --submit db=deps.xml --audit --servers S1,S2 --seed 7 > r1.bin
  $ indaas client --submit nic=delta.xml --audit --servers S1,S2 --seed 7 --stats --shutdown > r2.bin
  $ cat r1.bin r2.bin | indaas serve --one-shot --seed 7 | indaas client --decode | grep -E '"(invalidated|hits|misses)"'
    "invalidated": 0
    "invalidated": 1
      "hits": 0,
      "misses": 2,
      "invalidated": 1,
