module Json = Indaas_util.Json
module Prng = Indaas_util.Prng
module Dependency = Indaas_depdata.Dependency
module Depdb = Indaas_depdata.Depdb
module Sia_audit = Indaas_sia.Audit
module Sia_report = Indaas_sia.Report
module Vclock = Indaas_resilience.Vclock
module Degradation = Indaas_resilience.Degradation
module Frame = Indaas_service.Frame
module Transport = Indaas_service.Transport
module Snapshot = Indaas_service.Snapshot
module Cache = Indaas_service.Cache
module Scheduler = Indaas_service.Scheduler
module Server = Indaas_service.Server
module Client = Indaas_service.Client

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let json = Alcotest.testable (Fmt.of_to_string Json.to_string) ( = )

(* --- frames ------------------------------------------------------------- *)

let req ?(id = 1) ?(version = Frame.version) ?(params = Json.Null) meth =
  { Frame.id; version; meth; params }

let drain dec =
  let rec go acc =
    match Frame.next dec with Some j -> go (j :: acc) | None -> List.rev acc
  in
  go []

let test_frame_roundtrip () =
  let r =
    req ~id:7 "audit"
      ~params:(Json.Obj [ ("servers", Json.List [ Json.String "S1" ]) ])
  in
  let dec = Frame.decoder () in
  Frame.feed dec (Frame.encode_request r);
  (match drain dec with
  | [ j ] ->
      let r' = Frame.request_of_json j in
      check Alcotest.int "id" r.Frame.id r'.Frame.id;
      check Alcotest.int "v" r.Frame.version r'.Frame.version;
      check Alcotest.string "method" r.Frame.meth r'.Frame.meth;
      check json "params" r.Frame.params r'.Frame.params
  | frames -> Alcotest.failf "expected 1 frame, got %d" (List.length frames));
  check Alcotest.int "drained" 0 (Frame.pending_bytes dec);
  let ok = { Frame.id = 7; result = Ok (Json.Int 3) } in
  let err =
    { Frame.id = 8; result = Error { Frame.code = "c"; message = "m" } }
  in
  List.iter
    (fun r ->
      let dec = Frame.decoder () in
      Frame.feed dec (Frame.encode_response r);
      match drain dec with
      | [ j ] ->
          check Alcotest.bool "response roundtrip" true
            (Frame.response_of_json j = r)
      | _ -> Alcotest.fail "expected 1 response frame")
    [ ok; err ]

let test_frame_concatenated () =
  let frames =
    List.map
      (fun i -> Frame.encode_request (req ~id:i "stats"))
      [ 1; 2; 3 ]
  in
  let dec = Frame.decoder () in
  Frame.feed dec (String.concat "" frames);
  let ids =
    List.map (fun j -> (Frame.request_of_json j).Frame.id) (drain dec)
  in
  check Alcotest.(list int) "all frames, in order" [ 1; 2; 3 ] ids

let test_frame_split_prefix () =
  (* The length prefix itself arrives one byte at a time. *)
  let data = Frame.encode_request (req ~id:9 "stats") in
  let dec = Frame.decoder () in
  let got = ref [] in
  String.iteri
    (fun i _ ->
      Frame.feed dec ~off:i ~len:1 data;
      got := !got @ drain dec)
    data;
  (match !got with
  | [ j ] -> check Alcotest.int "id survives" 9 (Frame.request_of_json j).Frame.id
  | _ -> Alcotest.fail "expected exactly 1 frame");
  check Alcotest.int "no leftovers" 0 (Frame.pending_bytes dec)

let prefix_of n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.to_string b

let protocol_error f =
  match f () with
  | _ -> Alcotest.fail "expected Protocol_error"
  | exception Frame.Protocol_error _ -> ()

let bad_frame f =
  match f () with
  | _ -> Alcotest.fail "expected Bad_frame"
  | exception Frame.Bad_frame _ -> ()

let test_frame_protocol_errors () =
  protocol_error (fun () -> Frame.frame "");
  protocol_error (fun () -> Frame.frame (String.make (Frame.max_frame + 1) 'x'));
  (* Zero, negative and oversized length prefixes poison the decoder. *)
  List.iter
    (fun n ->
      let dec = Frame.decoder () in
      Frame.feed dec (prefix_of n);
      protocol_error (fun () -> Frame.next dec))
    [ 0; -1; Frame.max_frame + 1 ];
  (* A payload that is not JSON is unrecoverable too... *)
  let dec = Frame.decoder () in
  Frame.feed dec (prefix_of 8 ^ "not json");
  protocol_error (fun () -> Frame.next dec);
  (* ...and the poisoned decoder refuses everything afterwards. *)
  protocol_error (fun () -> Frame.feed dec "x");
  protocol_error (fun () -> Frame.next dec)

let test_frame_malformed_requests () =
  let parse fields = Frame.request_of_json (Json.Obj fields) in
  let v = ("v", Json.Int 1) in
  let id = ("id", Json.Int 1) in
  let meth = ("method", Json.String "stats") in
  bad_frame (fun () -> parse [ id; meth ]) (* missing v *);
  bad_frame (fun () -> parse [ v; meth ]) (* missing id *);
  bad_frame (fun () -> parse [ v; id ]) (* missing method *);
  bad_frame (fun () -> parse [ v; id; ("method", Json.Int 3) ]);
  bad_frame (fun () -> parse [ v; ("id", Json.String "x"); meth ]);
  bad_frame (fun () -> parse [ v; id; meth; ("extra", Json.Null) ]);
  bad_frame (fun () -> Frame.request_of_json (Json.List []));
  (* Responses: exactly one of ok/error. *)
  bad_frame (fun () -> Frame.response_of_json (Json.Obj [ ("id", Json.Int 1) ]));
  bad_frame (fun () ->
      Frame.response_of_json
        (Json.Obj
           [ ("id", Json.Int 1); ("ok", Json.Null);
             ("error", Json.Obj [ ("code", Json.String "c");
                                  ("message", Json.String "m") ]) ]))

(* qcheck: any request sequence survives any packetization — including
   1-byte reads, split prefixes and concatenated frames — through the
   loopback transport. *)
let gen_requests =
  QCheck.(
    list_of_size Gen.(int_range 1 6)
      (triple small_nat printable_string
         (small_list (pair (string_of_size Gen.(int_range 1 5)) small_nat))))

let prop_chunked_roundtrip =
  QCheck.Test.make ~name:"frames reassemble under adversarial chunking"
    ~count:200
    QCheck.(pair gen_requests (pair (int_range 1 7) small_nat))
    (fun (specs, (chunk, skew)) ->
      let reqs =
        List.mapi
          (fun i (id, meth, params) ->
            req ~id:(id + i) ("m" ^ meth)
              ~params:
                (Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) params)))
          specs
      in
      let a, b = Transport.loopback ~chunk:(1 + ((chunk + skew) mod 7)) () in
      List.iter (fun r -> a.Transport.write (Frame.encode_request r)) reqs;
      a.Transport.close ();
      let dec = Frame.decoder () in
      let buf = Bytes.create 3 in
      let got = ref [] in
      let rec pump () =
        got := !got @ drain dec;
        let n = b.Transport.read buf 0 (Bytes.length buf) in
        if n > 0 then begin
          Frame.feed dec (Bytes.sub_string buf 0 n);
          pump ()
        end
      in
      pump ();
      got := !got @ drain dec;
      !got = List.map Frame.request_to_json reqs
      && Frame.pending_bytes dec = 0)

(* --- snapshot store ------------------------------------------------------ *)

let record i =
  Dependency.hardware
    ~hw:(Printf.sprintf "S%d" (1 + (i mod 3)))
    ~hw_type:"Disk"
    ~dep:(Printf.sprintf "c%d" i)

let test_snapshot_versions_and_deltas () =
  let store = Snapshot.create () in
  let v1 = Snapshot.submit store ~snapshot:"a" ~source:"net" [ record 0 ] in
  check Alcotest.int "first version" 1 v1.Snapshot.version;
  check Alcotest.int "records" 1 (Depdb.size v1.Snapshot.db);
  let v2 =
    Snapshot.submit store ~snapshot:"a" ~source:"hw" [ record 1; record 2 ]
  in
  check Alcotest.int "second version" 2 v2.Snapshot.version;
  check Alcotest.int "union of sources" 3 (Depdb.size v2.Snapshot.db);
  check
    Alcotest.(list (pair string int))
    "sources sorted" [ ("hw", 2); ("net", 1) ] v2.Snapshot.sources;
  (* Replacing one source touches only that source's records. *)
  let v3 = Snapshot.submit store ~snapshot:"a" ~source:"hw" [ record 3 ] in
  check Alcotest.int "replaced, not merged" 2 (Depdb.size v3.Snapshot.db);
  (* Submitting an empty list drops the source. *)
  let v4 = Snapshot.submit store ~snapshot:"a" ~source:"hw" [] in
  check
    Alcotest.(list (pair string int))
    "source dropped" [ ("net", 1) ] v4.Snapshot.sources;
  check Alcotest.bool "digest tracks content" true
    (v4.Snapshot.digest <> v3.Snapshot.digest);
  check Alcotest.bool "other snapshots untouched" true
    (Snapshot.get store ~snapshot:"b" = None);
  check Alcotest.(list string) "names" [ "a" ]
    (Snapshot.names store)

let test_snapshot_digest_source_invariant () =
  (* The digest is a function of the record set, not of how it was
     split across sources. *)
  let one = Snapshot.create () and two = Snapshot.create () in
  let all = [ record 0; record 1; record 2; record 3 ] in
  let v_one = Snapshot.submit one ~snapshot:"s" ~source:"only" all in
  ignore (Snapshot.submit two ~snapshot:"s" ~source:"x" [ record 2; record 3 ]);
  let v_two =
    Snapshot.submit two ~snapshot:"s" ~source:"y" [ record 0; record 1 ]
  in
  check Alcotest.string "same digest" v_one.Snapshot.digest
    v_two.Snapshot.digest

(* --- result cache -------------------------------------------------------- *)

let key ?(snap = "d1") ?(spec = "s1") ?(engine = "auto") ?budget () =
  { Cache.snapshot_digest = snap; spec_digest = spec; engine; budget }

let test_cache_hits_and_misses () =
  let c = Cache.create () in
  check Alcotest.bool "cold miss" true (Cache.find c (key ()) = None);
  Cache.add c (key ()) (Json.Int 1);
  check json "hit" (Json.Int 1) (Option.get (Cache.find c (key ())));
  (* Engine and budget are part of the key. *)
  check Alcotest.bool "engine differs" true
    (Cache.find c (key ~engine:"bdd" ()) = None);
  check Alcotest.bool "budget differs" true
    (Cache.find c (key ~budget:10 ()) = None);
  let s = Cache.stats c in
  check Alcotest.int "hits" 1 s.Cache.hits;
  check Alcotest.int "misses" 3 s.Cache.misses;
  check Alcotest.int "entries" 1 s.Cache.entries

let test_cache_invalidation_is_scoped () =
  let c = Cache.create () in
  Cache.add c (key ~snap:"old" ~spec:"a" ()) Json.Null;
  Cache.add c (key ~snap:"old" ~spec:"b" ()) Json.Null;
  Cache.add c (key ~snap:"other" ~spec:"a" ()) Json.Null;
  check Alcotest.int "exactly the affected entries" 2
    (Cache.invalidate_snapshot c ~digest:"old");
  check Alcotest.bool "survivor still cached" true
    (Cache.find c (key ~snap:"other" ~spec:"a" ()) <> None);
  check Alcotest.int "gone" 0
    (Cache.invalidate_snapshot c ~digest:"old");
  check Alcotest.int "accounted" 2 (Cache.stats c).Cache.invalidated

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c (key ~spec:"a" ()) (Json.Int 1);
  Cache.add c (key ~spec:"b" ()) (Json.Int 2);
  ignore (Cache.find c (key ~spec:"a" ()));
  (* "b" is now least recently used and goes first. *)
  Cache.add c (key ~spec:"c" ()) (Json.Int 3);
  check Alcotest.bool "lru evicted" true (Cache.find c (key ~spec:"b" ()) = None);
  check Alcotest.bool "recent kept" true (Cache.find c (key ~spec:"a" ()) <> None);
  check Alcotest.int "evictions counted" 1 (Cache.stats c).Cache.evicted

(* --- scheduler ------------------------------------------------------------ *)

let test_scheduler_overload_shedding () =
  let s = Scheduler.create ~max_queue:2 () in
  let ran = ref [] and shed = ref [] in
  for i = 1 to 3 do
    Scheduler.submit s ~cost:1.0
      ~run:(fun () -> ran := i :: !ran)
      ~shed:(fun ~reason -> shed := (i, reason) :: !shed)
      ()
  done;
  check Alcotest.(list (pair int string)) "third shed at admission"
    [ (3, "overloaded") ] !shed;
  Scheduler.run_all s;
  check Alcotest.(list int) "fifo order" [ 1; 2 ] (List.rev !ran);
  let st = Scheduler.stats s in
  check Alcotest.int "submitted" 3 st.Scheduler.submitted;
  check Alcotest.int "served" 2 st.Scheduler.served;
  check Alcotest.int "shed" 1 st.Scheduler.shed_overload;
  check Alcotest.bool "degradation recorded" true
    (match Scheduler.degradation s with
    | Some d -> Degradation.degraded d
    | None -> false)

let test_scheduler_deadline_on_virtual_clock () =
  let s = Scheduler.create () in
  let outcomes = ref [] in
  let submit i ?deadline () =
    Scheduler.submit s ?deadline ~cost:1.0
      ~run:(fun () -> outcomes := (i, "ran") :: !outcomes)
      ~shed:(fun ~reason -> outcomes := (i, reason) :: !outcomes)
      ()
  in
  submit 1 ();
  submit 2 ~deadline:0.5 ();
  submit 3 ~deadline:2.0 ();
  Scheduler.run_all s;
  (* Job 1 advances the clock to 1.0 > 0.5: job 2's deadline expired
     while it queued; job 3's did not. *)
  check
    Alcotest.(list (pair int string))
    "deadline arithmetic"
    [ (1, "ran"); (2, "deadline-exceeded"); (3, "ran") ]
    (List.rev !outcomes);
  check (Alcotest.float 1e-9) "clock advanced by served costs" 2.0
    (Vclock.now (Scheduler.clock s));
  check Alcotest.int "shed_deadline" 1 (Scheduler.stats s).Scheduler.shed_deadline

(* --- server ---------------------------------------------------------------- *)

let table1 =
  String.concat "\n"
    [
      {|<src="S1" dst="Internet" route="ToR1,Core1"/>|};
      {|<src="S1" dst="Internet" route="ToR1,Core2"/>|};
      {|<src="S2" dst="Internet" route="ToR1,Core1"/>|};
      {|<src="S2" dst="Internet" route="ToR1,Core2"/>|};
      {|<hw="S1" type="Disk" dep="S1-disk"/>|};
      {|<hw="S2" type="Disk" dep="S2-disk"/>|};
      {|<pgm="Riak1" hw="S1" dep="libc6"/>|};
      {|<pgm="Riak2" hw="S2" dep="libc6"/>|};
    ]

let ok_exn (r : Frame.response) =
  match r.Frame.result with
  | Ok payload -> payload
  | Error e -> Alcotest.failf "unexpected error %s: %s" e.Frame.code e.Frame.message

let error_code (r : Frame.response) =
  match r.Frame.result with
  | Ok _ -> Alcotest.fail "expected an error response"
  | Error e -> e.Frame.code

let submitted_server () =
  let srv = Server.create () in
  ignore
    (ok_exn
       (Server.handle srv
          (Client.submit_deps ~id:1 ~source:"db" ~records:table1 ())));
  srv

let audit_req ~id ?options servers = Client.audit ~id ?options ~servers ()

let test_server_audit_matches_batch () =
  let srv = submitted_server () in
  let served =
    ok_exn (Server.handle srv (audit_req ~id:2 [ "S1"; "S2" ]))
  in
  (* The serving path answers with exactly the batch pipeline's report
     JSON: same DepDB, same request defaults, same seed (42). *)
  let direct =
    let db = Depdb.of_string table1 in
    let request =
      Sia_audit.request ~required:1
        ~algorithm:(Sia_audit.Auto_rg { max_size = None; max_family = None })
        ~ranking:Sia_audit.Size_based [ "S1"; "S2" ]
    in
    Sia_report.deployment_to_json
      (Sia_audit.audit ~rng:(Prng.of_int 42) db request)
  in
  check json "byte-identical report" direct served

let test_server_caches_repeats () =
  let srv = submitted_server () in
  let first = ok_exn (Server.handle srv (audit_req ~id:2 [ "S1"; "S2" ])) in
  let second = ok_exn (Server.handle srv (audit_req ~id:3 [ "S1"; "S2" ])) in
  check json "same payload" first second;
  let s = Server.cache_stats srv in
  check Alcotest.int "one computation" 1 s.Cache.misses;
  check Alcotest.int "one hit" 1 s.Cache.hits;
  (* A different spec is a different entry. *)
  let options = { Client.audit_options with required = Some 2 } in
  ignore (ok_exn (Server.handle srv (audit_req ~id:4 ~options [ "S1"; "S2" ])));
  check Alcotest.int "distinct spec misses" 2 (Server.cache_stats srv).Cache.misses

let test_server_delta_invalidates_exactly () =
  let srv = Server.create () in
  let submit ~id ~snapshot ~source records =
    ok_exn (Server.handle srv (Client.submit_deps ~id ~snapshot ~source ~records ()))
  in
  ignore (submit ~id:1 ~snapshot:"a" ~source:"db" table1);
  ignore (submit ~id:2 ~snapshot:"b" ~source:"db" table1);
  let audit ~id snapshot =
    let options = { Client.audit_options with snapshot = Some snapshot } in
    ok_exn (Server.handle srv (audit_req ~id ~options [ "S1"; "S2" ]))
  in
  ignore (audit ~id:3 "a");
  ignore (audit ~id:4 "b");
  (* A delta to snapshot "a" orphans exactly its entry... *)
  let result =
    submit ~id:5 ~snapshot:"a" ~source:"hw2"
      {|<hw="S1" type="NIC" dep="S1-nic"/>|}
  in
  check json "one entry invalidated" (Json.Int 1)
    (Option.get (Json.member "invalidated" result));
  (* ...so "b" still hits while "a" recomputes. *)
  ignore (audit ~id:6 "b");
  ignore (audit ~id:7 "a");
  let s = Server.cache_stats srv in
  check Alcotest.int "b cached across the delta" 1 s.Cache.hits;
  check Alcotest.int "a recomputed" 3 s.Cache.misses;
  (* A no-op delta (same record set) keeps the digest and the cache. *)
  let result = submit ~id:8 ~snapshot:"b" ~source:"db" table1 in
  check json "no-op delta invalidates nothing" (Json.Int 0)
    (Option.get (Json.member "invalidated" result));
  ignore (audit ~id:9 "b");
  check Alcotest.int "still cached" 2 (Server.cache_stats srv).Cache.hits

let test_server_error_responses () =
  let srv = submitted_server () in
  let code req = error_code (Server.handle srv req) in
  check Alcotest.string "unknown method" "unknown-method"
    (code (req ~id:2 "frobnicate"));
  check Alcotest.string "unsupported version" "unsupported-version"
    (code (req ~id:3 ~version:2 "stats"));
  check Alcotest.string "unknown snapshot" "unknown-snapshot"
    (code
       (audit_req ~id:4
          ~options:{ Client.audit_options with snapshot = Some "nope" }
          [ "S1" ]));
  check Alcotest.string "missing servers" "bad-request"
    (code (req ~id:5 "audit"));
  check Alcotest.string "empty servers" "bad-request"
    (code (req ~id:6 "audit" ~params:(Json.Obj [ ("servers", Json.List []) ])));
  check Alcotest.string "unknown server" "bad-request"
    (code (audit_req ~id:7 [ "S1"; "Nope" ]));
  check Alcotest.string "bad engine" "bad-request"
    (code
       (audit_req ~id:8
          ~options:{ Client.audit_options with engine = Some "quantum" }
          [ "S1" ]));
  check Alcotest.string "unparsable records" "bad-request"
    (error_code
       (Server.handle srv
          (Client.submit_deps ~id:9 ~source:"db" ~records:"<garbage" ())))

(* One-shot serving over the loopback: write the whole request stream,
   serve, then decode the whole response stream. *)
let serve_bytes ?config bytes =
  let a, b = Transport.loopback () in
  a.Transport.write bytes;
  a.Transport.close ();
  let srv = Server.create ?config () in
  Server.serve srv b;
  let buf = Bytes.create 4096 in
  let out = Buffer.create 256 in
  let rec pump () =
    let n = a.Transport.read buf 0 (Bytes.length buf) in
    if n > 0 then begin
      Buffer.add_subbytes out buf 0 n;
      pump ()
    end
  in
  pump ();
  Buffer.contents out

let encode_requests reqs =
  String.concat "" (List.map Frame.encode_request reqs)

let standard_session =
  lazy
    (encode_requests
       [
         Client.submit_deps ~id:1 ~source:"db" ~records:table1 ();
         audit_req ~id:2 [ "S1"; "S2" ];
         audit_req ~id:3 [ "S1"; "S2" ];
         Client.stats ~id:4;
         Client.shutdown ~id:5;
       ])

let test_serve_end_to_end () =
  let responses =
    Client.decode_responses (serve_bytes (Lazy.force standard_session))
  in
  check Alcotest.(list int) "arrival order, one response each"
    [ 1; 2; 3; 4; 5 ]
    (List.map (fun (r : Frame.response) -> r.Frame.id) responses);
  List.iter (fun r -> ignore (ok_exn r)) responses;
  let payload i = ok_exn (List.nth responses i) in
  check json "repeat served the cached payload" (payload 1) (payload 2);
  let stats = payload 3 in
  let cache = Option.get (Json.member "cache" stats) in
  check json "hit visible in stats" (Json.Int 1)
    (Option.get (Json.member "hits" cache))

let test_serve_deterministic () =
  let bytes = Lazy.force standard_session in
  check Alcotest.string "responses byte-identical across runs"
    (serve_bytes bytes) (serve_bytes bytes)

let test_serve_truncated_stream () =
  let bytes = Lazy.force standard_session in
  let truncated = String.sub bytes 0 (String.length bytes - 3) in
  let responses = Client.decode_responses (serve_bytes truncated) in
  (* Complete frames are still answered; the torn tail earns a final
     id = -1 bad-frame error. *)
  let last = List.nth responses (List.length responses - 1) in
  check Alcotest.int "sentinel id" (-1) last.Frame.id;
  check Alcotest.string "bad-frame" "bad-frame" (error_code last);
  check Alcotest.int "other requests still served"
    4
    (List.length (List.filter (fun (r : Frame.response) ->
         match r.Frame.result with Ok _ -> true | Error _ -> false) responses))

let test_serve_sheds_over_capacity () =
  let config = { Server.default_config with max_queue = 2 } in
  let bytes =
    encode_requests
      [
        audit_req ~id:1 [ "S1" ];
        audit_req ~id:2 [ "S1"; "S2" ];
        audit_req ~id:3 [ "S2" ];
      ]
  in
  let responses = Client.decode_responses (serve_bytes ~config bytes) in
  let codes =
    List.map
      (fun (r : Frame.response) ->
        match r.Frame.result with
        | Ok _ -> "ok"
        | Error e -> e.Frame.code)
      responses
  in
  (* No snapshot was ever submitted, so admitted requests fail with
     unknown-snapshot — but the third never even runs. *)
  check Alcotest.(list string) "admission control"
    [ "unknown-snapshot"; "unknown-snapshot"; "overloaded" ] codes

let () =
  Alcotest.run "service"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "concatenated" `Quick test_frame_concatenated;
          Alcotest.test_case "split prefix" `Quick test_frame_split_prefix;
          Alcotest.test_case "protocol errors" `Quick test_frame_protocol_errors;
          Alcotest.test_case "malformed requests" `Quick
            test_frame_malformed_requests;
          qtest prop_chunked_roundtrip;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "versions and deltas" `Quick
            test_snapshot_versions_and_deltas;
          Alcotest.test_case "digest source-invariant" `Quick
            test_snapshot_digest_source_invariant;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hits and misses" `Quick test_cache_hits_and_misses;
          Alcotest.test_case "scoped invalidation" `Quick
            test_cache_invalidation_is_scoped;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "overload shedding" `Quick
            test_scheduler_overload_shedding;
          Alcotest.test_case "virtual deadlines" `Quick
            test_scheduler_deadline_on_virtual_clock;
        ] );
      ( "server",
        [
          Alcotest.test_case "audit matches batch" `Quick
            test_server_audit_matches_batch;
          Alcotest.test_case "caches repeats" `Quick test_server_caches_repeats;
          Alcotest.test_case "delta invalidation" `Quick
            test_server_delta_invalidates_exactly;
          Alcotest.test_case "error responses" `Quick test_server_error_responses;
          Alcotest.test_case "serve end to end" `Quick test_serve_end_to_end;
          Alcotest.test_case "serve deterministic" `Quick test_serve_deterministic;
          Alcotest.test_case "truncated stream" `Quick test_serve_truncated_stream;
          Alcotest.test_case "overload over the wire" `Quick
            test_serve_sheds_over_capacity;
        ] );
    ]
