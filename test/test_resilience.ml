module Vclock = Indaas_resilience.Vclock
module Fault = Indaas_resilience.Fault
module Retry = Indaas_resilience.Retry
module Degradation = Indaas_resilience.Degradation
module Collectors = Indaas_depdata.Collectors
module Dependency = Indaas_depdata.Dependency
module Prng = Indaas_util.Prng
module Chaos = Indaas.Chaos

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Vclock ------------------------------------------------------------- *)

let test_vclock () =
  let c = Vclock.create () in
  check (Alcotest.float 1e-12) "starts at 0" 0. (Vclock.now c);
  Vclock.advance c 1.5;
  Vclock.sleep c 0.5;
  check (Alcotest.float 1e-12) "advances" 2. (Vclock.now c);
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Vclock.advance: time cannot move backwards") (fun () ->
      Vclock.advance c (-1.))

(* --- Fault plans --------------------------------------------------------- *)

let records =
  [
    Dependency.network ~src:"S1" ~dst:"I" ~route:[ "sw" ];
    Dependency.network ~src:"S1" ~dst:"I" ~route:[ "sw2" ];
    Dependency.network ~src:"S1" ~dst:"I" ~route:[ "sw3" ];
  ]

let static_module () = Collectors.static ~name:"net" records

let test_plan_validation () =
  check Alcotest.bool "empty is empty" true (Fault.is_empty Fault.empty);
  List.iter
    (fun entries ->
      check Alcotest.bool
        (Fault.kind_to_string (snd (List.hd entries)))
        true
        (try
           ignore (Fault.plan entries);
           false
         with Invalid_argument _ -> true))
    [
      [ ("a", Fault.Flaky_until (-1)) ];
      [ ("a", Fault.Timeout (-1.)) ];
      [ ("a", Fault.Drop_fraction 1.5) ];
      [ ("a", Fault.Corrupt_fraction (-0.1)) ];
      [ ("a", Fault.Message_loss 2.) ];
      [ ("a", Fault.Message_delay (-3.)) ];
    ]

let test_kind_strings_roundtrip () =
  List.iter
    (fun k ->
      check Alcotest.string
        (Fault.kind_to_string k)
        (Fault.kind_to_string k)
        (Fault.kind_to_string (Fault.kind_of_string (Fault.kind_to_string k))))
    [
      Fault.Crash; Fault.Flaky_until 3; Fault.Timeout 2.5;
      Fault.Drop_fraction 0.25; Fault.Corrupt_fraction 0.1;
      Fault.Message_loss 0.5; Fault.Message_delay 1.;
    ];
  check Alcotest.bool "entry_of_string" true
    (Fault.entry_of_string "S2=crash" = ("S2", Fault.Crash));
  check Alcotest.bool "bad spec raises" true
    (try
       ignore (Fault.entry_of_string "S2=warp:9");
       false
     with Failure _ -> true)

let test_crash_fault () =
  let inj = Fault.injector ~seed:1 (Fault.plan [ ("S1", Fault.Crash) ]) in
  let m = Fault.wrap_collector inj ~source:"S1" (static_module ()) in
  check Alcotest.bool "raises Injected" true
    (try
       ignore (m.Collectors.collect ());
       false
     with Fault.Injected { target; fault } -> target = "S1" && fault = "crash");
  check Alcotest.int "counted" 1 (Fault.crashes inj);
  (* Another source is untouched. *)
  let other = Fault.wrap_collector inj ~source:"S9" (static_module ()) in
  check Alcotest.int "other source unaffected" 3
    (List.length (other.Collectors.collect ()))

let test_timeout_advances_clock () =
  let inj = Fault.injector ~seed:1 (Fault.plan [ ("S1", Fault.Timeout 10.) ]) in
  let m = Fault.wrap_collector inj ~source:"S1" (static_module ()) in
  (try ignore (m.Collectors.collect ()) with Fault.Injected _ -> ());
  check Alcotest.bool "virtual time moved" true
    (Vclock.now (Fault.clock inj) >= 10.);
  check Alcotest.int "counted" 1 (Fault.timeouts inj)

let test_drop_fraction_counts () =
  let inj = Fault.injector ~seed:5 (Fault.plan [ ("*", Fault.Drop_fraction 0.5) ]) in
  let m = Fault.wrap_collector inj ~source:"S1" (static_module ()) in
  let out = m.Collectors.collect () in
  check Alcotest.int "dropped + kept = total" 3
    (List.length out + Fault.records_dropped inj ~source:"S1")

let test_corrupt_fraction_mangles () =
  let inj = Fault.injector ~seed:5 (Fault.plan [ ("S1", Fault.Corrupt_fraction 1.0) ]) in
  let m = Fault.wrap_collector inj ~source:"S1" (static_module ()) in
  let out = m.Collectors.collect () in
  check Alcotest.int "nothing dropped" 3 (List.length out);
  check Alcotest.int "all corrupted" 3 (Fault.records_corrupted inj ~source:"S1");
  check Alcotest.bool "identifiers mangled" true (out <> records)

(* --- Retry engine --------------------------------------------------------- *)

let flaky_thunk k =
  let calls = ref 0 in
  fun () ->
    incr calls;
    if !calls <= k then failwith (Printf.sprintf "flaky call %d" !calls)
    else !calls

let test_retry_succeeds_within_budget () =
  let clock = Vclock.create () in
  let outcome =
    Retry.call
      ~policy:(Retry.policy ~retries:3 ())
      ~clock ~rng:(Prng.of_int 1) ~label:"t" (flaky_thunk 3)
  in
  check Alcotest.bool "ok" true (outcome.Retry.result = Ok 4);
  check Alcotest.int "four attempts" 4 outcome.Retry.attempts;
  check Alcotest.bool "slept virtually" true (outcome.Retry.backoff > 0.);
  check (Alcotest.float 1e-9) "clock advanced by backoff"
    outcome.Retry.backoff (Vclock.now clock)

let test_retry_budget_exhausted () =
  let outcome =
    Retry.call
      ~policy:(Retry.policy ~retries:2 ())
      ~clock:(Vclock.create ()) ~rng:(Prng.of_int 1) ~label:"t" (flaky_thunk 3)
  in
  (match outcome.Retry.result with
  | Error e ->
      check Alcotest.bool "last error reported" true
        (Astring.String.is_infix ~affix:"flaky call 3" e)
  | Ok _ -> Alcotest.fail "expected failure");
  check Alcotest.int "three attempts" 3 outcome.Retry.attempts

let test_retry_deadline () =
  let clock = Vclock.create () in
  let outcome =
    Retry.call
      ~policy:(Retry.policy ~retries:1000 ~base_delay:10. ~max_delay:10. ~deadline:15. ())
      ~clock ~rng:(Prng.of_int 3) ~label:"t" (flaky_thunk 1000)
  in
  (match outcome.Retry.result with
  | Error e ->
      check Alcotest.bool "deadline reported" true
        (Astring.String.is_infix ~affix:"deadline" e)
  | Ok _ -> Alcotest.fail "expected failure");
  check Alcotest.bool "stopped early" true (outcome.Retry.attempts < 10)

let test_retry_non_transient_propagates () =
  check Alcotest.bool "Invalid_argument propagates" true
    (try
       ignore
         (Retry.call ~clock:(Vclock.create ()) ~rng:(Prng.of_int 1) ~label:"t"
            (fun () -> invalid_arg "no"));
       false
     with Invalid_argument _ -> true)

let test_breaker_opens_and_recovers () =
  let clock = Vclock.create () in
  let b = Retry.breaker ~threshold:2 ~cooldown:30. ~clock "src" in
  check Alcotest.bool "closed" true (Retry.breaker_state b = `Closed);
  Retry.record_failure b;
  Retry.record_failure b;
  check Alcotest.bool "open" true (Retry.breaker_state b = `Open);
  check Alcotest.int "one trip" 1 (Retry.trips b);
  (* While open, calls fail without attempting. *)
  let outcome =
    Retry.call ~breaker:b ~clock ~rng:(Prng.of_int 1) ~label:"t" (fun () -> 1)
  in
  check Alcotest.int "no attempts" 0 outcome.Retry.attempts;
  (* After the cooldown a half-open probe closes it on success. *)
  Vclock.advance clock 31.;
  check Alcotest.bool "half-open" true (Retry.breaker_state b = `Half_open);
  let outcome =
    Retry.call ~breaker:b ~clock ~rng:(Prng.of_int 1) ~label:"t" (fun () -> 1)
  in
  check Alcotest.bool "probe succeeded" true (outcome.Retry.result = Ok 1);
  check Alcotest.bool "closed again" true (Retry.breaker_state b = `Closed)

(* --- Degradation ---------------------------------------------------------- *)

let source_report ?(status = Degradation.Ok) ?(modules_failed = 0)
    ?(records_lost = 0) ?(records = 10) name =
  {
    Degradation.source = name;
    status;
    attempts = 1;
    modules_total = 2;
    modules_failed;
    records;
    records_lost;
  }

let test_degradation_complete () =
  let d = Degradation.complete ~sources:[ "a"; "b" ] in
  check (Alcotest.float 1e-12) "completeness 1" 1. d.Degradation.completeness;
  check Alcotest.bool "not degraded" false (Degradation.degraded d)

let test_degradation_accounting () =
  let d =
    Degradation.make ~retries:4
      [
        source_report "a";
        source_report "b"
          ~status:(Degradation.Failed "boom") ~modules_failed:2 ~records:0;
        source_report "c" ~status:(Degradation.Degraded "lossy") ~records_lost:10;
      ]
  in
  check Alcotest.bool "degraded" true (Degradation.degraded d);
  check (Alcotest.list Alcotest.string) "failed sources" [ "b" ]
    (Degradation.failed_sources d);
  check Alcotest.int "records lost" 10 (Degradation.records_lost d);
  check Alcotest.bool "completeness < 1" true (d.Degradation.completeness < 1.);
  let text = Degradation.render d in
  check Alcotest.bool "banner" true
    (Astring.String.is_infix ~affix:"DEGRADED AUDIT" text);
  check Alcotest.bool "names the failed source" true
    (Astring.String.is_infix ~affix:"b" text)

(* --- Chaos determinism ----------------------------------------------------- *)

let test_chaos_same_seed_renders_identically () =
  let go () =
    Chaos.render
      (Chaos.run ~seed:11 ~scenario:"sia-lab" ~plan:"lossy" ~trials:4 ())
  in
  check Alcotest.string "byte-identical" (go ()) (go ())

let test_chaos_crash_plan_degrades () =
  let s = Chaos.run ~seed:3 ~scenario:"sia-lab" ~plan:"crash-one" ~trials:3 () in
  check Alcotest.int "no trial crashed the harness" 0 s.Chaos.failed;
  check Alcotest.int "every trial degraded" 3 s.Chaos.degraded;
  List.iter
    (fun c -> check Alcotest.bool "completeness < 1" true (c < 1.))
    s.Chaos.completeness

let test_chaos_validation () =
  check Alcotest.bool "unknown scenario" true
    (try
       ignore (Chaos.run ~scenario:"nope" ~plan:"none" ~trials:1 ());
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "unknown plan" true
    (try
       ignore (Chaos.run ~scenario:"sia-lab" ~plan:"nope" ~trials:1 ());
       false
     with Invalid_argument _ -> true)

(* --- qcheck properties ------------------------------------------------------ *)

(* Property (a): the empty fault plan is an identity wrapper. *)
let prop_empty_plan_identity =
  QCheck.Test.make ~name:"empty plan wraps as identity" ~count:50
    QCheck.(small_list (pair small_string small_string))
    (fun routes ->
      let records =
        List.map
          (fun (src, sw) ->
            Dependency.network ~src:("s" ^ src) ~dst:"I" ~route:[ "sw" ^ sw ])
          routes
      in
      let m = Collectors.static ~name:"net" records in
      let inj = Fault.injector ~seed:1 Fault.empty in
      let wrapped = Fault.wrap_collector inj ~source:"s" m in
      wrapped.Collectors.collect () = records)

(* Property (b): Flaky_until k succeeds iff the retry budget is >= k. *)
let prop_flaky_vs_budget =
  QCheck.Test.make ~name:"flaky:k succeeds iff retries >= k" ~count:100
    QCheck.(pair (int_range 0 6) (int_range 0 6))
    (fun (k, retries) ->
      let inj =
        Fault.injector ~seed:(k + (7 * retries))
          (Fault.plan [ ("S", Fault.Flaky_until k) ])
      in
      let m = Fault.wrap_collector inj ~source:"S" (static_module ()) in
      let outcome =
        Retry.call
          ~policy:(Retry.policy ~retries ())
          ~clock:(Fault.clock inj)
          ~rng:(Prng.of_int 9) ~label:"S/net"
          (fun () -> m.Collectors.collect ())
      in
      Result.is_ok outcome.Retry.result = (retries >= k))

(* Property (c): completeness is in [0,1], and = 1 exactly when no
   source failed anything. *)
let gen_source_reports =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (fun (mf, rl, r) -> Printf.sprintf "(%d,%d,%d)" mf rl r)
           l))
    QCheck.Gen.(
      list_size (int_range 1 6)
        (triple (int_range 0 2) (int_range 0 5) (int_range 0 5)))

let prop_completeness_bounds =
  QCheck.Test.make ~name:"completeness in [0,1], 1 iff nothing failed"
    ~count:300 gen_source_reports (fun specs ->
      let reports =
        List.mapi
          (fun i (modules_failed, records_lost, records) ->
            let status =
              if modules_failed >= 2 then Degradation.Failed "down"
              else if modules_failed > 0 || records_lost > 0 then
                Degradation.Degraded "lossy"
              else Degradation.Ok
            in
            {
              Degradation.source = Printf.sprintf "s%d" i;
              status;
              attempts = 1;
              modules_total = 2;
              modules_failed;
              records;
              records_lost;
            })
          specs
      in
      let d = Degradation.make ~retries:0 reports in
      let c = d.Degradation.completeness in
      let all_ok =
        List.for_all
          (fun (mf, rl, _) -> mf = 0 && rl = 0)
          specs
      in
      c >= 0. && c <= 1. && (c = 1.) = all_ok)

(* Property (d): chaos runs are deterministic in the seed. *)
let prop_chaos_deterministic =
  QCheck.Test.make ~name:"same-seed chaos runs render identically" ~count:5
    QCheck.(int_range 0 1000)
    (fun seed ->
      let go () =
        Chaos.render
          (Chaos.run ~seed ~scenario:"sia-lab" ~plan:"flaky" ~trials:2 ())
      in
      go () = go ())

let () =
  Alcotest.run "resilience"
    [
      ("vclock", [ Alcotest.test_case "advance/sleep" `Quick test_vclock ]);
      ( "fault",
        [
          Alcotest.test_case "plan validation" `Quick test_plan_validation;
          Alcotest.test_case "kind strings" `Quick test_kind_strings_roundtrip;
          Alcotest.test_case "crash" `Quick test_crash_fault;
          Alcotest.test_case "timeout" `Quick test_timeout_advances_clock;
          Alcotest.test_case "drop fraction" `Quick test_drop_fraction_counts;
          Alcotest.test_case "corrupt fraction" `Quick
            test_corrupt_fraction_mangles;
          qtest prop_empty_plan_identity;
        ] );
      ( "retry",
        [
          Alcotest.test_case "succeeds within budget" `Quick
            test_retry_succeeds_within_budget;
          Alcotest.test_case "budget exhausted" `Quick test_retry_budget_exhausted;
          Alcotest.test_case "deadline" `Quick test_retry_deadline;
          Alcotest.test_case "non-transient propagates" `Quick
            test_retry_non_transient_propagates;
          Alcotest.test_case "breaker" `Quick test_breaker_opens_and_recovers;
          qtest prop_flaky_vs_budget;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "complete" `Quick test_degradation_complete;
          Alcotest.test_case "accounting" `Quick test_degradation_accounting;
          qtest prop_completeness_bounds;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "same seed renders identically" `Quick
            test_chaos_same_seed_renders_identically;
          Alcotest.test_case "crash plan degrades" `Quick
            test_chaos_crash_plan_degrades;
          Alcotest.test_case "validation" `Quick test_chaos_validation;
          qtest prop_chaos_deterministic;
        ] );
    ]
