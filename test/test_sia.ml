module Builder = Indaas_sia.Builder
module Rank = Indaas_sia.Rank
module Audit = Indaas_sia.Audit
module Report = Indaas_sia.Report
module Depdb = Indaas_depdata.Depdb
module Dependency = Indaas_depdata.Dependency
module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset
module Prng = Indaas_util.Prng

let check = Alcotest.check

(* The Figure 2 distributed storage system: S1 and S2 behind a shared
   ToR1, redundant cores, per-server hardware, and software stacks
   sharing libc6. *)
let figure2_db () =
  let db = Depdb.create () in
  Depdb.add_all db
    [
      Dependency.network ~src:"S1" ~dst:"Internet" ~route:[ "ToR1"; "Core1" ];
      Dependency.network ~src:"S1" ~dst:"Internet" ~route:[ "ToR1"; "Core2" ];
      Dependency.network ~src:"S2" ~dst:"Internet" ~route:[ "ToR1"; "Core1" ];
      Dependency.network ~src:"S2" ~dst:"Internet" ~route:[ "ToR1"; "Core2" ];
      Dependency.hardware ~hw:"S1" ~hw_type:"CPU" ~dep:"S1-cpu";
      Dependency.hardware ~hw:"S1" ~hw_type:"Disk" ~dep:"S1-disk";
      Dependency.hardware ~hw:"S2" ~hw_type:"CPU" ~dep:"S2-cpu";
      Dependency.hardware ~hw:"S2" ~hw_type:"Disk" ~dep:"S2-disk";
      Dependency.software ~pgm:"QueryEngine1" ~host:"S1" ~deps:[ "libc6"; "libgccl" ];
      Dependency.software ~pgm:"Riak1" ~host:"S1" ~deps:[ "libc6"; "libsvn1" ];
      Dependency.software ~pgm:"QueryEngine2" ~host:"S2" ~deps:[ "libc6"; "libgccl" ];
      Dependency.software ~pgm:"Riak2" ~host:"S2" ~deps:[ "libc6"; "libsvn1" ];
    ];
  db

let rg_names g rgs = List.sort compare (List.map (Cutset.names g) rgs)

(* --- Builder ----------------------------------------------------------- *)

let test_build_figure2 () =
  let g = Builder.build (figure2_db ()) (Builder.spec [ "S1"; "S2" ]) in
  let rgs = rg_names g (Cutset.minimal_risk_groups g) in
  (* shared singletons *)
  check Alcotest.bool "ToR1 singleton" true (List.mem [ "ToR1" ] rgs);
  check Alcotest.bool "libc6 singleton" true (List.mem [ "libc6" ] rgs);
  check Alcotest.bool "libgccl singleton" true (List.mem [ "libgccl" ] rgs);
  check Alcotest.bool "libsvn1 singleton" true (List.mem [ "libsvn1" ] rgs);
  check Alcotest.bool "core pair" true (List.mem [ "Core1"; "Core2" ] rgs);
  (* private hardware only fails in cross-server pairs *)
  check Alcotest.bool "disk pair" true (List.mem [ "S1-disk"; "S2-disk" ] rgs);
  check Alcotest.bool "no hw singleton" false (List.mem [ "S1-disk" ] rgs)

let test_build_validation () =
  let db = figure2_db () in
  Alcotest.check_raises "no servers" (Invalid_argument "Builder.build: no servers")
    (fun () -> ignore (Builder.build db (Builder.spec [])));
  Alcotest.check_raises "required range"
    (Invalid_argument "Builder.build: required out of range") (fun () ->
      ignore (Builder.build db (Builder.spec ~required:3 [ "S1"; "S2" ])));
  Alcotest.check_raises "unknown server"
    (Invalid_argument "Builder.build: no dependency records for server \"ghost\"")
    (fun () -> ignore (Builder.build db (Builder.spec [ "S1"; "ghost" ])))

let test_build_with_probabilities () =
  let spec =
    Builder.spec ~component_probability:(Builder.uniform_probability 0.1)
      [ "S1"; "S2" ]
  in
  let g = Builder.build (figure2_db ()) spec in
  Array.iter
    (fun id ->
      check (Alcotest.option (Alcotest.float 1e-12)) "prob attached" (Some 0.1)
        (Graph.prob_of g id))
    (Graph.basic_ids g)

let test_expected_rg_size () =
  check Alcotest.int "1-of-3" 3 (Builder.expected_rg_size (Builder.spec [ "a"; "b"; "c" ]));
  check Alcotest.int "2-of-3" 2
    (Builder.expected_rg_size (Builder.spec ~required:2 [ "a"; "b"; "c" ]))

let test_build_kofn () =
  (* 2-of-3 required: any 2 server failures break the service, so a
     pair of private disks is a minimal RG. *)
  let db = Depdb.create () in
  List.iter
    (fun s ->
      Depdb.add db (Dependency.hardware ~hw:s ~hw_type:"Disk" ~dep:(s ^ "-disk")))
    [ "S1"; "S2"; "S3" ];
  let g = Builder.build db (Builder.spec ~required:2 [ "S1"; "S2"; "S3" ]) in
  let rgs = rg_names g (Cutset.minimal_risk_groups g) in
  check Alcotest.int "three pairs" 3 (List.length rgs);
  check Alcotest.bool "disk pair" true (List.mem [ "S1-disk"; "S2-disk" ] rgs)

let test_network_only_server () =
  (* A server with only network records still builds. *)
  let db = Depdb.create () in
  Depdb.add db (Dependency.network ~src:"S1" ~dst:"I" ~route:[ "sw" ]);
  Depdb.add db (Dependency.network ~src:"S2" ~dst:"I" ~route:[ "sw" ]);
  let g = Builder.build db (Builder.spec [ "S1"; "S2" ]) in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "shared switch" [ [ "sw" ] ]
    (rg_names g (Cutset.minimal_risk_groups g))

let test_direct_route_unfailable () =
  (* A server with an empty (direct) route has an unfailable network;
     only its other dependencies matter. *)
  let db = Depdb.create () in
  Depdb.add db (Dependency.network ~src:"S1" ~dst:"I" ~route:[]);
  Depdb.add db (Dependency.hardware ~hw:"S1" ~hw_type:"Disk" ~dep:"d1");
  Depdb.add db (Dependency.hardware ~hw:"S2" ~hw_type:"Disk" ~dep:"d2");
  let g = Builder.build db (Builder.spec [ "S1"; "S2" ]) in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "disks only" [ [ "d1"; "d2" ] ]
    (rg_names g (Cutset.minimal_risk_groups g))

(* --- Rank --------------------------------------------------------------- *)

let ranked_graph () =
  let g =
    Graph.of_fault_sets
      [
        ("E1", [ ("A1", 0.1); ("A2", 0.2) ]);
        ("E2", [ ("A2", 0.2); ("A3", 0.3) ]);
      ]
  in
  (g, Cutset.minimal_risk_groups g)

let test_size_based_order () =
  let g, rgs = ranked_graph () in
  let ranked = Rank.size_based g rgs in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "smallest first"
    [ [ "A2" ]; [ "A1"; "A3" ] ]
    (List.map (fun r -> r.Rank.rg_names) ranked)

let test_probability_based_order () =
  let g, rgs = ranked_graph () in
  let ranked = Rank.probability_based (Prng.of_int 1) g rgs in
  (* A2 has importance 0.8929 > 0.1339 *)
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "by importance"
    [ [ "A2" ]; [ "A1"; "A3" ] ]
    (List.map (fun r -> r.Rank.rg_names) ranked);
  match ranked with
  | [ first; second ] ->
      check (Alcotest.float 1e-4) "I(A2)" 0.8929 (Option.get first.Rank.importance);
      check (Alcotest.float 1e-4) "Pr(A1,A3)" 0.03 (Option.get second.Rank.probability)
  | _ -> Alcotest.fail "two RGs expected"

let test_independence_scores () =
  let g, rgs = ranked_graph () in
  let ranked = Rank.size_based g rgs in
  check (Alcotest.float 1e-9) "sum of sizes" 3. (Rank.independence_score_size ranked);
  check (Alcotest.float 1e-9) "top-1" 1. (Rank.independence_score_size ~top_n:1 ranked);
  let weighted = Rank.probability_based (Prng.of_int 1) g rgs in
  check (Alcotest.float 1e-3) "sum of importances" 1.0268
    (Rank.independence_score_importance weighted);
  Alcotest.check_raises "missing importance"
    (Invalid_argument "Rank.independence_score_importance: missing importance")
    (fun () -> ignore (Rank.independence_score_importance ranked))

let test_unexpected_filter () =
  let g, rgs = ranked_graph () in
  let ranked = Rank.size_based g rgs in
  let u = Rank.unexpected ~expected_size:2 ranked in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "singletons are unexpected" [ [ "A2" ] ]
    (List.map (fun r -> r.Rank.rg_names) u);
  check Alcotest.int "none at level 1" 0
    (List.length (Rank.unexpected ~expected_size:1 ranked))

(* --- Audit --------------------------------------------------------------- *)

let test_audit_minimal_vs_sampling_agree () =
  let db = figure2_db () in
  let exact = Audit.audit db (Audit.request [ "S1"; "S2" ]) in
  let sampled =
    Audit.audit db
      (Audit.request ~algorithm:(Audit.failure_sampling ~rounds:3000) [ "S1"; "S2" ])
  in
  let names r =
    List.sort compare (List.map (fun x -> x.Rank.rg_names) r.Audit.ranked)
  in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "same RGs" (names exact) (names sampled)

let test_audit_unexpected_detection () =
  let db = figure2_db () in
  let report = Audit.audit db (Audit.request [ "S1"; "S2" ]) in
  let unexpected =
    List.sort compare (List.map (fun r -> r.Rank.rg_names) report.Audit.unexpected)
  in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "all shared singletons"
    [ [ "ToR1" ]; [ "libc6" ]; [ "libgccl" ]; [ "libsvn1" ] ]
    unexpected

let test_audit_probability_ranking () =
  let db = figure2_db () in
  let report =
    Audit.audit db
      (Audit.request
         ~component_probability:(Builder.uniform_probability 0.01)
         ~ranking:Audit.Probability_based [ "S1"; "S2" ])
  in
  match report.Audit.failure_probability with
  | None -> Alcotest.fail "Pr(T) expected"
  | Some p ->
      (* dominated by the four shared singletons: ~4 * 0.01 *)
      check Alcotest.bool "plausible Pr" true (p > 0.03 && p < 0.05)

let test_audit_candidates_ranking () =
  (* Three servers: S1/S2 share everything network-side, S3 is clean. *)
  let db = Depdb.create () in
  Depdb.add_all db
    [
      Dependency.network ~src:"S1" ~dst:"I" ~route:[ "swA" ];
      Dependency.network ~src:"S2" ~dst:"I" ~route:[ "swA" ];
      Dependency.network ~src:"S3" ~dst:"I" ~route:[ "swB" ];
    ];
  let reports =
    Audit.audit_candidates db
      ~candidates:[ [ "S1"; "S2" ]; [ "S1"; "S3" ]; [ "S2"; "S3" ] ]
      (Audit.request [])
  in
  let best = List.hd reports in
  check Alcotest.bool "clean pair wins" true
    (best.Audit.servers = [ "S1"; "S3" ] || best.Audit.servers = [ "S2"; "S3" ]);
  check Alcotest.int "no unexpected" 0 (List.length best.Audit.unexpected);
  let worst = List.nth reports 2 in
  check (Alcotest.list Alcotest.string) "shared pair last" [ "S1"; "S2" ]
    worst.Audit.servers

let test_choose_best_empty () =
  let db = figure2_db () in
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Audit.choose_best: no candidates") (fun () ->
      ignore (Audit.choose_best db ~candidates:[] (Audit.request [])))

module Bdd = Indaas_faultgraph.Bdd

let test_audit_bdd_engine_agrees () =
  let db = figure2_db () in
  let names r =
    List.sort compare (List.map (fun x -> x.Rank.rg_names) r.Audit.ranked)
  in
  let enum = Audit.audit db (Audit.request [ "S1"; "S2" ]) in
  let bdd =
    Audit.audit db (Audit.request ~algorithm:Audit.minimal_rg_bdd [ "S1"; "S2" ])
  in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "same RGs" (names enum) (names bdd)

(* Two servers with 20 disjoint hardware dependencies each: 400 minimal
   RGs, far over a budget of 100. *)
let dense_db () =
  let db = Depdb.create () in
  List.iter
    (fun server ->
      List.iter
        (fun i ->
          Depdb.add db
            (Dependency.hardware ~hw:server
               ~hw_type:(Printf.sprintf "T%d" i)
               ~dep:(Printf.sprintf "%s-hw%d" server i)))
        (List.init 20 Fun.id))
    [ "S1"; "S2" ];
  db

let test_audit_auto_falls_back_to_bdd () =
  let db = dense_db () in
  let budgeted max_family =
    Audit.Auto_rg { max_size = None; max_family = Some max_family }
  in
  (* the plain enumeration algorithm refuses this budget... *)
  check Alcotest.bool "enum refuses" true
    (try
       ignore
         (Audit.audit db
            (Audit.request
               ~algorithm:(Audit.Minimal_rg { max_size = None; max_family = Some 100 })
               [ "S1"; "S2" ]));
       false
     with Cutset.Too_many_cut_sets _ -> true);
  (* ...while Auto silently switches to the BDD engine and completes *)
  let report =
    Audit.audit db (Audit.request ~algorithm:(budgeted 100) [ "S1"; "S2" ])
  in
  check Alcotest.int "all 400 RGs" 400 (List.length report.Audit.ranked)

let test_audit_auto_uses_enum_within_budget () =
  let db = figure2_db () in
  let auto =
    Audit.audit db (Audit.request ~algorithm:Audit.auto_rg [ "S1"; "S2" ])
  in
  let enum = Audit.audit db (Audit.request [ "S1"; "S2" ]) in
  let names r = List.map (fun x -> x.Rank.rg_names) r.Audit.ranked in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "identical ranked output" (names enum) (names auto)

(* Acceptance: on every examples/db database, both engines return
   byte-identical minimal RG families for a representative deployment. *)
let example_deployments =
  [
    ("figure2.xml", [ "S1"; "S2" ]);
    ("webtier.xml", [ "web1"; "web2"; "web3" ]);
    ("fattree-k4.xml", [ "server0"; "server5"; "server15" ]);
  ]

(* cwd is test/ under `dune runtest` but the project root under
   `dune exec test/test_sia.exe` *)
let example_path name =
  let candidates =
    [ Filename.concat "../examples/db" name; Filename.concat "examples/db" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate examples/db/" ^ name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_examples_engines_identical () =
  List.iter
    (fun (name, servers) ->
      let path = example_path name in
      let db = Depdb.of_string (read_file path) in
      let g = Builder.build db (Builder.spec servers) in
      let enum = Indaas_faultgraph.Cutset.minimal_risk_groups g in
      let bdd = Bdd.minimal_risk_groups g in
      check Alcotest.bool (path ^ ": identical families") true (enum = bdd);
      check Alcotest.bool (path ^ ": non-empty") true (enum <> []))
    example_deployments

(* --- Report ---------------------------------------------------------------- *)

let test_render_deployment () =
  let db = figure2_db () in
  let report = Audit.audit db (Audit.request [ "S1"; "S2" ]) in
  let text = Report.render_deployment report in
  List.iter
    (fun fragment ->
      check Alcotest.bool fragment true (Astring.String.is_infix ~affix:fragment text))
    [ "S1"; "S2"; "risk group"; "unexpected RGs: 4"; "ToR1" ]

let test_render_truncation () =
  let db = figure2_db () in
  let report = Audit.audit db (Audit.request [ "S1"; "S2" ]) in
  let text = Report.render_deployment ~max_rgs:1 report in
  check Alcotest.bool "omission note" true
    (Astring.String.is_infix ~affix:"more risk groups omitted" text)

let test_render_comparison () =
  let db = figure2_db () in
  let reports = Audit.audit_candidates db ~candidates:[ [ "S1"; "S2" ] ] (Audit.request []) in
  let text = Report.render_comparison reports in
  check Alcotest.bool "has header" true
    (Astring.String.is_infix ~affix:"#unexpected" text)

let test_summary_line () =
  let db = figure2_db () in
  let report = Audit.audit db (Audit.request [ "S1"; "S2" ]) in
  let line = Report.summary_line report in
  check Alcotest.bool "mentions unexpected" true
    (Astring.String.is_infix ~affix:"4 unexpected" line)


let test_json_report () =
  let db = figure2_db () in
  let report =
    Audit.audit db
      (Audit.request
         ~component_probability:(Builder.uniform_probability 0.1)
         ~ranking:Audit.Probability_based [ "S1"; "S2" ])
  in
  let json =
    Indaas_util.Json.to_string (Report.deployment_to_json report)
  in
  List.iter
    (fun fragment ->
      check Alcotest.bool fragment true
        (Astring.String.is_infix ~affix:fragment json))
    [
      {|"servers":["S1","S2"]|};
      {|"expected_rg_size":2|};
      {|"failure_probability":|};
      {|"ToR1"|};
    ];
  (* comparison serializes to a list *)
  let cmp = Indaas_util.Json.to_string (Report.comparison_to_json [ report ]) in
  check Alcotest.bool "list" true (String.length cmp > 2 && cmp.[0] = '[')

let () =
  Alcotest.run "sia"
    [
      ( "builder",
        [
          Alcotest.test_case "figure 2 graph" `Quick test_build_figure2;
          Alcotest.test_case "validation" `Quick test_build_validation;
          Alcotest.test_case "probabilities" `Quick test_build_with_probabilities;
          Alcotest.test_case "expected RG size" `Quick test_expected_rg_size;
          Alcotest.test_case "k-of-n deployment" `Quick test_build_kofn;
          Alcotest.test_case "network-only server" `Quick test_network_only_server;
          Alcotest.test_case "direct route" `Quick test_direct_route_unfailable;
        ] );
      ( "rank",
        [
          Alcotest.test_case "size-based order" `Quick test_size_based_order;
          Alcotest.test_case "probability-based order" `Quick
            test_probability_based_order;
          Alcotest.test_case "independence scores" `Quick test_independence_scores;
          Alcotest.test_case "unexpected filter" `Quick test_unexpected_filter;
        ] );
      ( "audit",
        [
          Alcotest.test_case "algorithms agree" `Quick
            test_audit_minimal_vs_sampling_agree;
          Alcotest.test_case "unexpected detection" `Quick
            test_audit_unexpected_detection;
          Alcotest.test_case "probability ranking" `Quick test_audit_probability_ranking;
          Alcotest.test_case "candidate ranking" `Quick test_audit_candidates_ranking;
          Alcotest.test_case "choose_best empty" `Quick test_choose_best_empty;
          Alcotest.test_case "BDD engine agrees" `Quick test_audit_bdd_engine_agrees;
          Alcotest.test_case "auto falls back to BDD" `Quick
            test_audit_auto_falls_back_to_bdd;
          Alcotest.test_case "auto uses enumeration within budget" `Quick
            test_audit_auto_uses_enum_within_budget;
          Alcotest.test_case "examples/db: engines byte-identical" `Quick
            test_examples_engines_identical;
        ] );
      ( "report",
        [
          Alcotest.test_case "render deployment" `Quick test_render_deployment;
          Alcotest.test_case "truncation" `Quick test_render_truncation;
          Alcotest.test_case "render comparison" `Quick test_render_comparison;
          Alcotest.test_case "summary line" `Quick test_summary_line;
          Alcotest.test_case "json report" `Quick test_json_report;
        ] );
    ]
