module Prng = Indaas_util.Prng
module Stats = Indaas_util.Stats
module Table = Indaas_util.Table
module Timing = Indaas_util.Timing
module Json = Indaas_util.Json

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Prng ---------------------------------------------------------- *)

let test_determinism () =
  let a = Prng.of_int 42 and b = Prng.of_int 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_different_seeds () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      distinct := true
  done;
  check Alcotest.bool "streams differ" true !distinct

let test_copy () =
  let a = Prng.of_int 7 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_split_independent () =
  let a = Prng.of_int 7 in
  let b = Prng.split a in
  (* The split-off stream differs from the parent's continuation. *)
  let same = ref 0 in
  for _ = 1 to 20 do
    if Int64.equal (Prng.next_int64 a) (Prng.next_int64 b) then incr same
  done;
  check Alcotest.bool "streams diverge" true (!same < 3)

let test_int_bounds () =
  let g = Prng.of_int 3 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int g 1 in
    check Alcotest.int "bound 1" 0 v
  done

let test_int_rejects_nonpositive () =
  let g = Prng.of_int 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_int_uniformity () =
  let g = Prng.of_int 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      check Alcotest.bool "within 5% of uniform" true
        (abs (c - expected) < expected / 20))
    buckets

let test_float_range () =
  let g = Prng.of_int 5 in
  for _ = 1 to 10_000 do
    let v = Prng.float g in
    check Alcotest.bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_bernoulli_extremes () =
  let g = Prng.of_int 5 in
  for _ = 1 to 100 do
    check Alcotest.bool "p=0 never" false (Prng.bernoulli g 0.);
    check Alcotest.bool "p=1 always" true (Prng.bernoulli g 1.)
  done

let test_bernoulli_rate () =
  let g = Prng.of_int 5 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "rate near 0.3" true (abs_float (rate -. 0.3) < 0.01)

let test_bytes_length () =
  let g = Prng.of_int 9 in
  List.iter
    (fun n -> check Alcotest.int "length" n (Bytes.length (Prng.bytes g n)))
    [ 0; 1; 7; 8; 9; 63; 64; 100 ]

let test_shuffle_permutation () =
  let g = Prng.of_int 13 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same elements" (Array.init 50 Fun.id) sorted

let test_shuffle_list_permutation () =
  let g = Prng.of_int 13 in
  let l = List.init 20 Fun.id in
  let s = Prng.shuffle_list g l in
  check (Alcotest.list Alcotest.int) "same elements" l (List.sort compare s)

let test_sample_without_replacement () =
  let g = Prng.of_int 17 in
  let arr = Array.init 30 Fun.id in
  let s = Prng.sample_without_replacement g 10 arr in
  check Alcotest.int "size" 10 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  check Alcotest.int "distinct" 10 (List.length distinct);
  Alcotest.check_raises "k too large"
    (Invalid_argument "Prng.sample_without_replacement: k > length") (fun () ->
      ignore (Prng.sample_without_replacement g 31 arr))

let test_pick_empty () =
  let g = Prng.of_int 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick g [||]))

let test_exponential_positive () =
  let g = Prng.of_int 23 in
  for _ = 1 to 1000 do
    check Alcotest.bool "positive" true (Prng.exponential g 2.5 >= 0.)
  done

let test_exponential_mean () =
  let g = Prng.of_int 23 in
  let acc = ref 0. in
  let n = 50_000 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential g 2.0
  done;
  let mean = !acc /. float_of_int n in
  check Alcotest.bool "mean near 1/lambda" true (abs_float (mean -. 0.5) < 0.02)

(* --- Stats --------------------------------------------------------- *)

let feq = Alcotest.float 1e-9

let test_mean_median () =
  check feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  check feq "median even" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |]);
  check feq "median odd" 3. (Stats.median [| 5.; 1.; 3. |]);
  check feq "singleton" 7. (Stats.mean [| 7. |])

let test_variance () =
  check feq "variance" 2.5 (Stats.variance [| 1.; 2.; 3.; 4.; 5. |]);
  check feq "stddev" (sqrt 2.5) (Stats.stddev [| 1.; 2.; 3.; 4.; 5. |]);
  check feq "singleton variance" 0. (Stats.variance [| 3. |])

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. |] in
  check feq "p0" 1. (Stats.percentile xs 0.);
  check feq "p100" 10. (Stats.percentile xs 100.);
  check feq "p50" 5.5 (Stats.percentile xs 50.)

let test_min_max_sum () =
  let xs = [| 3.; -1.; 4. |] in
  let lo, hi = Stats.min_max xs in
  check feq "min" (-1.) lo;
  check feq "max" 4. hi;
  check feq "sum" 6. (Stats.sum xs)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.; 0.1; 0.9; 1. |] in
  check Alcotest.int "bins" 2 (Array.length h);
  check Alcotest.int "total count" 4 (Array.fold_left (fun a (_, c) -> a + c) 0 h)

let test_empty_raises () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_welford_matches_batch () =
  let g = Prng.of_int 31 in
  let xs = Array.init 1000 (fun _ -> Prng.float g) in
  let w = Stats.Welford.create () in
  Array.iter (Stats.Welford.add w) xs;
  check Alcotest.int "count" 1000 (Stats.Welford.count w);
  check (Alcotest.float 1e-9) "mean" (Stats.mean xs) (Stats.Welford.mean w);
  check (Alcotest.float 1e-9) "variance" (Stats.variance xs)
    (Stats.Welford.variance w)

let test_welford_empty_raises () =
  (* Same contract as Stats.mean on an empty array — no silent nan. *)
  let w = Stats.Welford.create () in
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Stats.Welford.mean: empty accumulator") (fun () ->
      ignore (Stats.Welford.mean w));
  (* variance/stddev of an empty accumulator stay 0, matching the
     n < 2 convention of Stats.variance *)
  check (Alcotest.float 1e-12) "variance 0" 0. (Stats.Welford.variance w)

(* --- Table --------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  check Alcotest.bool "contains header" true
    (Astring.String.is_infix ~affix:"name" s);
  check Alcotest.bool "right-aligned" true
    (Astring.String.is_infix ~affix:"| 22 |" s);
  check Alcotest.bool "left-aligned" true
    (Astring.String.is_infix ~affix:"| alpha |" s)

let test_table_arity_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_separator () =
  let t = Table.create [ "x" ] in
  Table.add_row t [ "1" ];
  Table.add_separator t;
  Table.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (* top rule, header, rule, row, rule, row, bottom rule *)
  check Alcotest.int "line count" 7 (List.length lines)

(* --- Timing -------------------------------------------------------- *)

let test_format_seconds () =
  check Alcotest.string "us" "500us" (Timing.format_seconds 0.0005);
  check Alcotest.string "ms" "12.0ms" (Timing.format_seconds 0.012);
  check Alcotest.string "s" "4.50s" (Timing.format_seconds 4.5);
  check Alcotest.string "m" "2m05s" (Timing.format_seconds 125.)

let test_format_bytes () =
  check Alcotest.string "B" "512B" (Timing.format_bytes 512);
  check Alcotest.string "KB" "2.0KB" (Timing.format_bytes 2048);
  check Alcotest.string "MB" "1.00MB" (Timing.format_bytes (1024 * 1024))

let test_format_seconds_degenerate () =
  check Alcotest.string "zero" "0s" (Timing.format_seconds 0.);
  check Alcotest.string "negative zero" "0s" (Timing.format_seconds (-0.));
  check Alcotest.string "nan" "nan" (Timing.format_seconds Float.nan);
  check Alcotest.string "inf" "inf" (Timing.format_seconds Float.infinity);
  check Alcotest.string "-inf" "-inf" (Timing.format_seconds Float.neg_infinity);
  check Alcotest.string "negative ms" "-12.0ms" (Timing.format_seconds (-0.012));
  check Alcotest.string "negative m" "-2m05s" (Timing.format_seconds (-125.))

let test_time_returns_result () =
  let v, elapsed = Timing.time (fun () -> 21 * 2) in
  check Alcotest.int "result" 42 v;
  check Alcotest.bool "non-negative" true (elapsed >= 0.)

let test_now_ns_monotonic_enough () =
  let a = Timing.now_ns () in
  let b = Timing.now_ns () in
  (* gettimeofday can step backwards under NTP, but within one test
     run the two reads should be ordered and in a sane epoch range. *)
  check Alcotest.bool "ordered" true (Int64.compare b a >= 0);
  check Alcotest.bool "after 2001" true (Int64.compare a 1_000_000_000_000_000_000L > 0)


(* --- Json ---------------------------------------------------------- *)

let test_json_scalars () =
  check Alcotest.string "null" "null" (Json.to_string Json.Null);
  check Alcotest.string "bool" "true" (Json.to_string (Json.Bool true));
  check Alcotest.string "int" "-42" (Json.to_string (Json.Int (-42)));
  check Alcotest.string "float int" "2.0" (Json.to_string (Json.Float 2.));
  check Alcotest.string "float frac" "0.25" (Json.to_string (Json.Float 0.25))

let test_json_string_escaping () =
  check Alcotest.string "plain" "\"abc\"" (Json.to_string (Json.String "abc"));
  check Alcotest.string "quote" {|"a\"b"|} (Json.to_string (Json.String {|a"b|}));
  check Alcotest.string "newline" {|"a\nb"|} (Json.to_string (Json.String "a\nb"));
  check Alcotest.string "control" {|"a\u0001b"|}
    (Json.to_string (Json.String "a\001b"))

let test_json_compound () =
  let v =
    Json.Obj
      [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]); ("ok", Json.Bool false) ]
  in
  check Alcotest.string "compact" {|{"xs":[1,2],"ok":false}|} (Json.to_string v);
  check Alcotest.bool "indented nests" true
    (Astring.String.is_infix ~affix:"\n  \"xs\"" (Json.to_string ~indent:true v));
  check Alcotest.string "empty containers" {|{"a":[],"b":{}}|}
    (Json.to_string (Json.Obj [ ("a", Json.List []); ("b", Json.Obj []) ]))

let test_json_nonfinite_rejected () =
  Alcotest.check_raises "nan" (Invalid_argument "Json: non-finite float")
    (fun () -> ignore (Json.to_string (Json.Float Float.nan)));
  Alcotest.check_raises "inf" (Invalid_argument "Json: non-finite float")
    (fun () -> ignore (Json.to_string (Json.Float Float.infinity)))

let parsed_string input =
  match Json.of_string input with
  | Json.String s -> s
  | _ -> Alcotest.fail "expected string"

let test_json_surrogate_pairs () =
  (* U+1F600 is the surrogate pair D83D DE00 in UTF-16,
     f0 9f 98 80 in UTF-8. *)
  check Alcotest.string "astral pair" "\xf0\x9f\x98\x80"
    (parsed_string {|"\uD83D\uDE00"|});
  (* U+1D11E: D834 DD1E -> f0 9d 84 9e. *)
  check Alcotest.string "pair in context" "a\xf0\x9d\x84\x9eb"
    (parsed_string {|"a\uD834\uDD1Eb"|});
  check Alcotest.string "lowercase hex" "\xf0\x9f\x98\x80"
    (parsed_string {|"\ud83d\ude00"|});
  (* BMP escapes are unaffected. *)
  check Alcotest.string "bmp" "\xe2\x82\xac" (parsed_string {|"\u20AC"|})

let parse_fails input =
  match Json.of_string input with
  | exception Json.Parse_error _ -> true
  | _ -> false

let test_json_lone_surrogates_rejected () =
  check Alcotest.bool "lone high at end" true (parse_fails {|"\uD83D"|});
  check Alcotest.bool "high + ordinary char" true (parse_fails {|"\uD83Dx"|});
  check Alcotest.bool "high + non-u escape" true (parse_fails {|"\uD83D\n"|});
  check Alcotest.bool "high + high" true (parse_fails {|"\uD83D\uD83D"|});
  check Alcotest.bool "lone low" true (parse_fails {|"\uDE00"|});
  check Alcotest.bool "low then high" true (parse_fails {|"\uDE00\uD83D"|});
  check Alcotest.bool "truncated second escape" true (parse_fails {|"\uD83D\uDE"|})

(* --- qcheck properties --------------------------------------------- *)

let prop_int_in_range =
  QCheck.Test.make ~name:"Prng.int always in range" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let g = Prng.of_int seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let g = Prng.of_int seed in
      List.sort compare (Prng.shuffle_list g l) = List.sort compare l)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (float_bound_inclusive 100.))
        (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (l, (p1, p2)) ->
      let xs = Array.of_list l in
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "different seeds" `Quick test_different_seeds;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int rejects 0" `Quick test_int_rejects_nonpositive;
          Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Slow test_bernoulli_rate;
          Alcotest.test_case "bytes length" `Quick test_bytes_length;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "shuffle list" `Quick test_shuffle_list_permutation;
          Alcotest.test_case "sampling w/o replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "pick empty" `Quick test_pick_empty;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          qtest prop_int_in_range;
          qtest prop_shuffle_preserves_multiset;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/median" `Quick test_mean_median;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "min/max/sum" `Quick test_min_max_sum;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "welford" `Quick test_welford_matches_batch;
          Alcotest.test_case "welford empty raises" `Quick test_welford_empty_raises;
          qtest prop_percentile_monotone;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity mismatch" `Quick test_table_arity_mismatch;
          Alcotest.test_case "separator" `Quick test_table_separator;
        ] );
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "string escaping" `Quick test_json_string_escaping;
          Alcotest.test_case "compound" `Quick test_json_compound;
          Alcotest.test_case "non-finite rejected" `Quick test_json_nonfinite_rejected;
          Alcotest.test_case "surrogate pairs" `Quick test_json_surrogate_pairs;
          Alcotest.test_case "lone surrogates rejected" `Quick
            test_json_lone_surrogates_rejected;
        ] );
      ( "timing",
        [
          Alcotest.test_case "format seconds" `Quick test_format_seconds;
          Alcotest.test_case "format seconds degenerate" `Quick
            test_format_seconds_degenerate;
          Alcotest.test_case "format bytes" `Quick test_format_bytes;
          Alcotest.test_case "time" `Quick test_time_returns_result;
          Alcotest.test_case "now_ns" `Quick test_now_ns_monotonic_enough;
        ] );
    ]
