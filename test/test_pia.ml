module Componentset = Indaas_pia.Componentset
module Jaccard = Indaas_pia.Jaccard
module Minhash = Indaas_pia.Minhash
module Transport = Indaas_pia.Transport
module Polynomial = Indaas_pia.Polynomial
module Psop = Indaas_pia.Psop
module Ks = Indaas_pia.Ks
module Audit = Indaas_pia.Audit
module Catalog = Indaas_depdata.Catalog
module Commutative = Indaas_crypto.Commutative
module Nat = Indaas_bignum.Nat
module Prng = Indaas_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let nat = Alcotest.testable Nat.pp Nat.equal

let shared_params =
  lazy (Commutative.params_pohlig_hellman ~bits:128 (Prng.of_int 987))

(* --- Componentset ------------------------------------------------------ *)

let test_set_ops () =
  let a = Componentset.of_list [ "x"; "y"; "x" ] in
  check Alcotest.int "dedup" 2 (Componentset.cardinal a);
  check (Alcotest.list Alcotest.string) "sorted" [ "x"; "y" ] (Componentset.to_list a);
  let b = Componentset.of_list [ "y"; "z" ] in
  check Alcotest.int "union" 3 (Componentset.cardinal (Componentset.union a b));
  check Alcotest.int "inter" 1 (Componentset.cardinal (Componentset.inter a b));
  check Alcotest.bool "mem" true (Componentset.mem "x" a);
  check Alcotest.int "union_many" 3
    (Componentset.cardinal (Componentset.union_many [ a; b; Componentset.empty ]))

let test_inter_many_empty () =
  Alcotest.check_raises "empty list"
    (Invalid_argument "Componentset.inter_many: empty list") (fun () ->
      ignore (Componentset.inter_many []))

let test_normalize_router () =
  check Alcotest.string "ok" "router:10.0.0.1"
    (Componentset.normalize_router ~ip:"10.0.0.1");
  List.iter
    (fun bad ->
      check Alcotest.bool bad true
        (try
           ignore (Componentset.normalize_router ~ip:bad);
           false
         with Invalid_argument _ -> true))
    [ "10.0.0"; "10.0.0.256"; "a.b.c.d"; "10..0.1"; "1.2.3.4.5" ]

let test_normalize_package () =
  check Alcotest.string "lowercase" "pkg:openssl=1.0.1"
    (Componentset.normalize_package ~name:"OpenSSL" ~version:"1.0.1")

let test_multiset_elements () =
  check (Alcotest.list Alcotest.string) "disambiguation"
    [ "a#1"; "b#1"; "a#2"; "a#3" ]
    (Componentset.multiset_elements [ "a"; "b"; "a"; "a" ])

let test_of_depdb () =
  let db = Indaas_depdata.Depdb.create () in
  Indaas_depdata.Depdb.add db
    (Indaas_depdata.Dependency.software ~pgm:"P" ~host:"M" ~deps:[ "p1"; "p2" ]);
  let s = Componentset.of_depdb db ~machine:"M" in
  check (Alcotest.list Alcotest.string) "components" [ "p1"; "p2" ]
    (Componentset.to_list s)

(* --- Jaccard ------------------------------------------------------------ *)

let test_jaccard_known () =
  let a = Componentset.of_list [ "1"; "2"; "3" ] in
  let b = Componentset.of_list [ "2"; "3"; "4" ] in
  check (Alcotest.float 1e-12) "2/4" 0.5 (Jaccard.pairwise a b);
  check (Alcotest.float 1e-12) "identical" 1. (Jaccard.pairwise a a);
  check (Alcotest.float 1e-12) "disjoint" 0.
    (Jaccard.pairwise a (Componentset.of_list [ "9" ]));
  check (Alcotest.float 1e-12) "empty sets" 0.
    (Jaccard.pairwise Componentset.empty Componentset.empty)

let test_jaccard_multi () =
  let sets =
    [
      Componentset.of_list [ "a"; "b"; "c" ];
      Componentset.of_list [ "b"; "c"; "d" ];
      Componentset.of_list [ "c"; "b"; "e" ];
    ]
  in
  (* inter {b,c} = 2, union {a,b,c,d,e} = 5 *)
  check (Alcotest.float 1e-12) "3-way" 0.4 (Jaccard.similarity sets)

let test_of_cardinalities_validation () =
  Alcotest.check_raises "inconsistent"
    (Invalid_argument "Jaccard.of_cardinalities: inconsistent cardinalities")
    (fun () -> ignore (Jaccard.of_cardinalities ~intersection:5 ~union:3))

let test_sorensen_dice () =
  let a = Componentset.of_list [ "1"; "2"; "3" ] in
  let b = Componentset.of_list [ "2"; "3"; "4" ] in
  (* D = 2*2/(3+3) = 2/3; J = 1/2; D = 2J/(1+J) *)
  check (Alcotest.float 1e-12) "known" (2. /. 3.) (Jaccard.sorensen_dice a b);
  let j = Jaccard.pairwise a b in
  check (Alcotest.float 1e-12) "D = 2J/(1+J)" (2. *. j /. (1. +. j))
    (Jaccard.sorensen_dice a b);
  check (Alcotest.float 1e-12) "empty" 0.
    (Jaccard.sorensen_dice Componentset.empty Componentset.empty);
  check (Alcotest.float 1e-12) "identical" 1. (Jaccard.sorensen_dice a a)

let test_correlated_threshold () =
  check Alcotest.bool "0.75" true (Jaccard.significantly_correlated 0.75);
  check Alcotest.bool "0.74" false (Jaccard.significantly_correlated 0.74)

(* --- MinHash ------------------------------------------------------------ *)

let test_minhash_identical_sets () =
  let s = Componentset.of_list (List.init 50 string_of_int) in
  check (Alcotest.float 1e-12) "J(s,s) = 1" 1. (Minhash.estimate_jaccard ~m:64 [ s; s ])

let test_minhash_disjoint_sets () =
  let a = Componentset.of_list (List.init 50 (Printf.sprintf "a%d")) in
  let b = Componentset.of_list (List.init 50 (Printf.sprintf "b%d")) in
  check Alcotest.bool "near 0" true (Minhash.estimate_jaccard ~m:128 [ a; b ] < 0.05)

let test_minhash_accuracy () =
  (* J = 1/3 by construction (50 shared / 150 union). *)
  let shared = List.init 50 (Printf.sprintf "s%d") in
  let a = Componentset.of_list (shared @ List.init 50 (Printf.sprintf "a%d")) in
  let b = Componentset.of_list (shared @ List.init 50 (Printf.sprintf "b%d")) in
  let estimate = Minhash.estimate_jaccard ~m:512 [ a; b ] in
  check Alcotest.bool "within 3 std errors" true
    (abs_float (estimate -. (1. /. 3.)) < 3. *. Minhash.expected_error ~m:512)

let test_minhash_more_hashes_tighter () =
  check Alcotest.bool "error shrinks" true
    (Minhash.expected_error ~m:400 < Minhash.expected_error ~m:100)

let test_signature_elements_positional () =
  let s = Componentset.of_list [ "x"; "y" ] in
  let elems = Minhash.signature_elements ~m:8 s in
  check Alcotest.int "m elements" 8 (List.length elems);
  List.iteri
    (fun i e ->
      check Alcotest.bool "position prefix" true
        (Astring.String.is_prefix ~affix:(string_of_int i ^ ":") e))
    elems

let test_minhash_validation () =
  Alcotest.check_raises "empty set" (Invalid_argument "Minhash.signature: empty set")
    (fun () -> ignore (Minhash.signature ~m:4 Componentset.empty));
  Alcotest.check_raises "m=0" (Invalid_argument "Minhash.signature: m must be positive")
    (fun () -> ignore (Minhash.signature ~m:0 (Componentset.of_list [ "x" ])));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Minhash.estimate: signature length mismatch") (fun () ->
      ignore (Minhash.estimate [ [| 1L |]; [| 1L; 2L |] ]))

(* --- Transport ----------------------------------------------------------- *)

let test_transport_accounting () =
  let t = Transport.create ~parties:3 in
  Transport.send t ~src:0 ~dst:1 100;
  Transport.send t ~src:1 ~dst:2 50;
  Transport.broadcast t ~src:2 10;
  check Alcotest.int "messages" 4 (Transport.messages t);
  check Alcotest.int "sent by 0" 100 (Transport.bytes_sent_by t 0);
  check Alcotest.int "sent by 2" 20 (Transport.bytes_sent_by t 2);
  check Alcotest.int "received by 1" 110 (Transport.bytes_received_by t 1);
  check Alcotest.int "total" 170 (Transport.total_bytes t);
  check Alcotest.int "max party" 100 (Transport.max_party_bytes t)

let test_transport_validation () =
  let t = Transport.create ~parties:2 in
  Alcotest.check_raises "self-send"
    (Invalid_argument "Transport.send: party 0 cannot send to itself") (fun () ->
      Transport.send t ~src:0 ~dst:0 1);
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Transport.send: dst 5 outside [0, 2)") (fun () ->
      Transport.send t ~src:0 ~dst:5 1);
  Alcotest.check_raises "bad src"
    (Invalid_argument "Transport.send: src -1 outside [0, 2)") (fun () ->
      Transport.send t ~src:(-1) ~dst:1 1);
  Alcotest.check_raises "negative"
    (Invalid_argument "Transport.send: negative size -1 on 0 -> 1") (fun () ->
      Transport.send t ~src:0 ~dst:1 (-1));
  Alcotest.check_raises "no parties"
    (Invalid_argument "Transport.create: parties must be positive (got 0)")
    (fun () -> ignore (Transport.create ~parties:0))

let test_transport_zero_byte_send () =
  (* Zero-byte messages are legal: they count as messages without
     moving any bytes (a pure control round). *)
  let t = Transport.create ~parties:2 in
  Transport.send t ~src:0 ~dst:1 0;
  check Alcotest.int "one message" 1 (Transport.messages t);
  check Alcotest.int "no bytes" 0 (Transport.total_bytes t)

let test_transport_single_party_broadcast () =
  (* A single party has nobody to broadcast to: legal no-op. *)
  let t = Transport.create ~parties:1 in
  Transport.broadcast t ~src:0 100;
  check Alcotest.int "no messages" 0 (Transport.messages t);
  check Alcotest.int "no bytes" 0 (Transport.total_bytes t)

let test_transport_interceptor_drop () =
  let t = Transport.create ~parties:2 in
  Transport.set_interceptor t (fun ~src:_ ~dst:_ ~bytes:_ -> `Drop);
  check Alcotest.bool "drop raises Injected" true
    (try
       Transport.send t ~src:0 ~dst:1 7;
       false
     with Indaas_resilience.Fault.Injected { target; fault } ->
       target = "transport 0 -> 1" && fault = "message of 7 bytes dropped");
  check Alcotest.int "counted" 1 (Transport.messages_dropped t);
  check Alcotest.int "not delivered" 0 (Transport.messages t)

let test_transport_interceptor_delay () =
  let t = Transport.create ~parties:2 in
  Transport.set_interceptor t (fun ~src:_ ~dst:_ ~bytes:_ -> `Delay 1.5);
  Transport.send t ~src:0 ~dst:1 10;
  Transport.send t ~src:1 ~dst:0 10;
  check Alcotest.int "delivered" 2 (Transport.messages t);
  check (Alcotest.float 1e-9) "delay accounted" 3. (Transport.delay_seconds t)

(* --- Polynomial ------------------------------------------------------------ *)

let m17 = Nat.of_int 17

let test_poly_from_roots () =
  (* (x-2)(x-3) = x^2 - 5x + 6 = x^2 + 12x + 6 mod 17 *)
  let p = Polynomial.from_roots ~modulus:m17 [ Nat.of_int 2; Nat.of_int 3 ] in
  check Alcotest.int "degree" 2 (Polynomial.degree p);
  check Alcotest.bool "root 2" true (Polynomial.is_root p (Nat.of_int 2));
  check Alcotest.bool "root 3" true (Polynomial.is_root p (Nat.of_int 3));
  check Alcotest.bool "non-root 5" false (Polynomial.is_root p (Nat.of_int 5));
  let coeffs = Polynomial.coefficients p in
  check nat "constant term" (Nat.of_int 6) coeffs.(0);
  check nat "linear term" (Nat.of_int 12) coeffs.(1)

let test_poly_empty_roots () =
  let p = Polynomial.from_roots ~modulus:m17 [] in
  check Alcotest.int "degree 0" 0 (Polynomial.degree p);
  check nat "eval = 1" Nat.one (Polynomial.eval p (Nat.of_int 9))

let test_poly_add_mul () =
  let p = Polynomial.of_coefficients ~modulus:m17 [| Nat.of_int 1; Nat.of_int 2 |] in
  let q = Polynomial.of_coefficients ~modulus:m17 [| Nat.of_int 3 |] in
  let s = Polynomial.add p q in
  check nat "sum constant" (Nat.of_int 4) (Polynomial.coefficients s).(0);
  let prod = Polynomial.mul p q in
  check nat "product linear" (Nat.of_int 6) (Polynomial.coefficients prod).(1);
  (* eval homomorphism *)
  let x = Nat.of_int 7 in
  check nat "eval(p*q) = eval p * eval q"
    (Nat.rem (Nat.mul (Polynomial.eval p x) (Polynomial.eval q x)) m17)
    (Polynomial.eval prod x)

let test_poly_zero () =
  let z = Polynomial.zero ~modulus:m17 in
  check Alcotest.int "degree -1" (-1) (Polynomial.degree z);
  check nat "eval 0" Nat.zero (Polynomial.eval z (Nat.of_int 5));
  let p = Polynomial.of_coefficients ~modulus:m17 [| Nat.of_int 4 |] in
  check Alcotest.bool "z + p = p" true (Polynomial.equal p (Polynomial.add z p));
  check Alcotest.bool "z * p = z" true (Polynomial.equal z (Polynomial.mul z p))

let test_poly_scale () =
  let p = Polynomial.of_coefficients ~modulus:m17 [| Nat.of_int 5; Nat.of_int 6 |] in
  let s = Polynomial.scale p (Nat.of_int 3) in
  check nat "scaled" (Nat.of_int 15) (Polynomial.coefficients s).(0);
  check nat "scaled high" (Nat.of_int 1) (Polynomial.coefficients s).(1)

let test_poly_trim () =
  let p = Polynomial.of_coefficients ~modulus:m17 [| Nat.of_int 1; Nat.of_int 17 |] in
  check Alcotest.int "trailing zero trimmed" 0 (Polynomial.degree p)

(* --- P-SOP ------------------------------------------------------------------ *)

let test_psop_exact_cardinalities () =
  let g = Prng.of_int 400 in
  let params = Lazy.force shared_params in
  let r = Psop.run ~params g [| [ "a"; "b"; "c" ]; [ "b"; "c"; "d" ] |] in
  check Alcotest.int "intersection" 2 r.Psop.intersection;
  check Alcotest.int "union" 4 r.Psop.union;
  check (Alcotest.float 1e-12) "jaccard" 0.5 r.Psop.jaccard

let test_psop_three_parties () =
  let g = Prng.of_int 401 in
  let params = Lazy.force shared_params in
  let r =
    Psop.run ~params g [| [ "a"; "b" ]; [ "b"; "c" ]; [ "b"; "d" ] |]
  in
  check Alcotest.int "intersection" 1 r.Psop.intersection;
  check Alcotest.int "union" 4 r.Psop.union

let test_psop_duplicates_as_multiset () =
  let g = Prng.of_int 402 in
  let params = Lazy.force shared_params in
  (* "a" twice on both sides -> both copies match *)
  let r = Psop.run ~params g [| [ "a"; "a" ]; [ "a"; "a"; "b" ] |] in
  check Alcotest.int "multiset intersection" 2 r.Psop.intersection;
  check Alcotest.int "multiset union" 3 r.Psop.union

let test_psop_disjoint () =
  let g = Prng.of_int 403 in
  let params = Lazy.force shared_params in
  let r = Psop.run ~params g [| [ "a" ]; [ "b" ] |] in
  check Alcotest.int "intersection" 0 r.Psop.intersection;
  check (Alcotest.float 1e-12) "jaccard 0" 0. r.Psop.jaccard

let test_psop_single_party_rejected () =
  let g = Prng.of_int 404 in
  Alcotest.check_raises "one party"
    (Invalid_argument "Psop.run: need at least two parties") (fun () ->
      ignore (Psop.run ~params:(Lazy.force shared_params) g [| [ "a" ] |]))

let test_psop_traffic_and_ops () =
  let g = Prng.of_int 405 in
  let params = Lazy.force shared_params in
  let n = 10 in
  let datasets = [| List.init n (Printf.sprintf "a%d"); List.init n (Printf.sprintf "b%d") |] in
  let r = Psop.run ~params g datasets in
  (* k parties, n elements each: k*n first-pass + (k-1)*k*n re-encryptions *)
  check Alcotest.int "crypto ops" (2 * n * 2) r.Psop.crypto_ops;
  let cbytes = Commutative.modulus_bytes params in
  (* ring pass: k-1 hops x k batches... = 2 sends of n ciphertexts;
     final: each holder broadcasts to 1 other: 2 sends *)
  check Alcotest.int "total traffic" (4 * n * cbytes)
    (Transport.total_bytes r.Psop.transport)

let test_psop_md5_sra_variant () =
  (* The paper's exact instantiation: MD5 + commutative RSA. *)
  let g = Prng.of_int 406 in
  let params = Commutative.params_sra ~bits:128 g in
  let r =
    Psop.run ~params ~hash:Indaas_crypto.Digest.MD5 g
      [| [ "a"; "b"; "c" ]; [ "b"; "c"; "d" ] |]
  in
  check Alcotest.int "intersection" 2 r.Psop.intersection

let test_psop_minhash () =
  let g = Prng.of_int 407 in
  let params = Lazy.force shared_params in
  let shared = List.init 40 (Printf.sprintf "s%d") in
  let a = shared @ List.init 40 (Printf.sprintf "a%d") in
  let b = shared @ List.init 40 (Printf.sprintf "b%d") in
  let r = Psop.run_minhash ~params ~m:128 g [| a; b |] in
  check Alcotest.int "union reports m" 128 r.Psop.union;
  (* true J = 40/120 = 1/3 *)
  check Alcotest.bool "approximates" true (abs_float (r.Psop.jaccard -. (1. /. 3.)) < 0.15)

let test_psop_matches_cleartext () =
  let g = Prng.of_int 408 in
  let params = Lazy.force shared_params in
  let riak = Catalog.packages Catalog.Riak in
  let mongo = Catalog.packages Catalog.MongoDB in
  let r = Psop.run ~params g [| riak; mongo |] in
  let exact =
    Jaccard.pairwise (Componentset.of_list riak) (Componentset.of_list mongo)
  in
  check (Alcotest.float 1e-12) "private = cleartext" exact r.Psop.jaccard

(* --- KS ---------------------------------------------------------------------- *)

let test_ks_intersection () =
  let g = Prng.of_int 500 in
  let r = Ks.run ~key_bits:128 g [| [ "a"; "b"; "c" ]; [ "b"; "c"; "d" ] |] in
  check Alcotest.int "intersection" 2 r.Ks.intersection

let test_ks_three_parties () =
  let g = Prng.of_int 501 in
  let r = Ks.run ~key_bits:128 g [| [ "a"; "x" ]; [ "x"; "b" ]; [ "x"; "c" ] |] in
  check Alcotest.int "intersection" 1 r.Ks.intersection

let test_ks_disjoint_and_identical () =
  let g = Prng.of_int 502 in
  let r = Ks.run ~key_bits:128 g [| [ "a" ]; [ "b" ] |] in
  check Alcotest.int "disjoint" 0 r.Ks.intersection;
  let r2 = Ks.run ~key_bits:128 g [| [ "a"; "b" ]; [ "a"; "b" ] |] in
  check Alcotest.int "identical" 2 r2.Ks.intersection

let test_ks_matches_exact_reference () =
  let g = Prng.of_int 503 in
  let datasets = [| [ "p"; "q"; "r"; "s" ]; [ "q"; "s"; "t" ] |] in
  check Alcotest.int "reference"
    (Ks.intersection_cardinality_exact datasets)
    (Ks.run ~key_bits:128 g datasets).Ks.intersection

let test_ks_costlier_than_psop () =
  (* The headline of Figure 8(b): KS burns far more crypto ops. *)
  let n = 8 in
  let datasets =
    [| List.init n (Printf.sprintf "a%d"); List.init n (Printf.sprintf "b%d") |]
  in
  let gp = Prng.of_int 504 in
  let psop = Psop.run ~params:(Lazy.force shared_params) gp datasets in
  let gk = Prng.of_int 505 in
  let ks = Ks.run ~key_bits:128 gk datasets in
  check Alcotest.bool "KS ops exceed P-SOP ops" true
    (ks.Ks.crypto_ops > 3 * psop.Psop.crypto_ops)

(* --- PIA audit ----------------------------------------------------------------- *)

let table2_providers () =
  List.mapi
    (fun i app ->
      Audit.provider ~name:(Printf.sprintf "Cloud%d" (i + 1)) (Catalog.packages app))
    Catalog.all_applications

let test_audit_table2_two_way () =
  let report = Audit.audit ~way:2 (table2_providers ()) in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "paper ranking"
    [
      [ "Cloud2"; "Cloud4" ]; [ "Cloud2"; "Cloud3" ]; [ "Cloud1"; "Cloud4" ];
      [ "Cloud1"; "Cloud3" ]; [ "Cloud3"; "Cloud4" ]; [ "Cloud1"; "Cloud2" ];
    ]
    (List.map (fun r -> r.Audit.providers) report.Audit.results)

let test_audit_table2_three_way () =
  let report = Audit.audit ~way:3 (table2_providers ()) in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "paper ranking"
    [
      [ "Cloud2"; "Cloud3"; "Cloud4" ]; [ "Cloud1"; "Cloud2"; "Cloud4" ];
      [ "Cloud1"; "Cloud3"; "Cloud4" ]; [ "Cloud1"; "Cloud2"; "Cloud3" ];
    ]
    (List.map (fun r -> r.Audit.providers) report.Audit.results)

let test_audit_psop_equals_cleartext () =
  let providers = table2_providers () in
  let clear = Audit.audit ~protocol:Audit.Cleartext ~way:2 providers in
  let psop =
    Audit.audit
      ~protocol:(Audit.Psop { params = Some (Lazy.force shared_params) })
      ~way:2 providers
  in
  List.iter2
    (fun a b ->
      check (Alcotest.list Alcotest.string) "same order" a.Audit.providers
        b.Audit.providers;
      check (Alcotest.float 1e-12) "same jaccard" a.Audit.jaccard b.Audit.jaccard)
    clear.Audit.results psop.Audit.results

let test_audit_ks_two_way_matches () =
  let providers =
    [ Audit.provider ~name:"A" [ "x"; "y"; "z" ]; Audit.provider ~name:"B" [ "y"; "z"; "w" ] ]
  in
  let report = Audit.audit ~protocol:(Audit.Ks { key_bits = 128 }) ~way:2 providers in
  let r = List.hd report.Audit.results in
  check (Alcotest.float 1e-12) "jaccard via cardinalities" 0.5 r.Audit.jaccard

let test_audit_validation () =
  let providers = table2_providers () in
  Alcotest.check_raises "way too small" (Invalid_argument "Audit.audit: way must be >= 2")
    (fun () -> ignore (Audit.audit ~way:1 providers));
  Alcotest.check_raises "way too large"
    (Invalid_argument "Audit.audit: way exceeds provider count") (fun () ->
      ignore (Audit.audit ~way:5 providers))

let test_audit_render () =
  let report = Audit.audit ~way:2 (table2_providers ()) in
  let text = Audit.render report in
  check Alcotest.bool "mentions deployment" true
    (Astring.String.is_infix ~affix:"2-Way Redundancy Deployment" text);
  check Alcotest.bool "mentions best" true
    (Astring.String.is_infix ~affix:"Cloud2 & Cloud4" text)

let test_audit_correlated_flag () =
  let providers =
    [ Audit.provider ~name:"A" [ "x"; "y"; "z"; "w" ]; Audit.provider ~name:"B" [ "x"; "y"; "z" ] ]
  in
  let report = Audit.audit ~way:2 providers in
  check Alcotest.bool "flagged" true (List.hd report.Audit.results).Audit.correlated

let test_audit_duplicate_provider () =
  let providers =
    [ Audit.provider ~name:"A" [ "x" ]; Audit.provider ~name:"A" [ "y" ] ]
  in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Audit.audit: duplicate provider name \"A\"") (fun () ->
      ignore (Audit.audit ~way:2 providers));
  Alcotest.check_raises "duplicate nofm"
    (Invalid_argument "Audit.audit_nofm: duplicate provider name \"A\"")
    (fun () -> ignore (Audit.audit_nofm ~n:2 ~m:2 providers))

module Fault = Indaas_resilience.Fault

let test_audit_degrades_under_message_loss () =
  (* A transport that loses every message kills every P-SOP round;
     with a fault plan installed the audit retries, then reports the
     rounds as failed instead of crashing. *)
  let providers =
    [
      Audit.provider ~name:"A" [ "x"; "y" ];
      Audit.provider ~name:"B" [ "y"; "z" ];
      Audit.provider ~name:"C" [ "z"; "w" ];
    ]
  in
  let faults =
    Fault.injector ~seed:7
      (Fault.plan [ ("transport", Fault.Message_loss 1.0) ])
  in
  let report =
    Audit.audit
      ~protocol:(Audit.Psop { params = Some (Lazy.force shared_params) })
      ~faults ~way:2 providers
  in
  check Alcotest.int "no measurements" 0 (List.length report.Audit.results);
  check Alcotest.int "all three rounds failed" 3
    (List.length report.Audit.failures);
  let f = List.hd report.Audit.failures in
  check Alcotest.bool "attempts spent" true (f.Audit.attempts > 1);
  check Alcotest.bool "render flags degradation" true
    (Astring.String.is_infix ~affix:"DEGRADED AUDIT" (Audit.render report))

let test_audit_without_faults_is_complete () =
  let report = Audit.audit ~way:2 (table2_providers ()) in
  check Alcotest.int "no failures" 0 (List.length report.Audit.failures);
  check Alcotest.bool "render has no banner" false
    (Astring.String.is_infix ~affix:"DEGRADED AUDIT" (Audit.render report))

(* --- properties ------------------------------------------------------------------ *)

let gen_sets =
  QCheck.make
    ~print:(fun (a, b) -> String.concat "," a ^ " | " ^ String.concat "," b)
    QCheck.Gen.(
      let elt = map (Printf.sprintf "e%d") (int_range 0 15) in
      pair (list_size (int_range 1 10) elt) (list_size (int_range 1 10) elt))

let prop_psop_matches_cleartext =
  QCheck.Test.make ~name:"P-SOP = cleartext on random sets" ~count:25 gen_sets
    (fun (a, b) ->
      let g = Prng.of_int (Hashtbl.hash (a, b)) in
      let r = Psop.run ~params:(Lazy.force shared_params) g [| a; b |] in
      let sa = Componentset.of_list a and sb = Componentset.of_list b in
      (* multiset semantics: compare against multiset counts *)
      let count l = List.length (Componentset.multiset_elements l) in
      ignore count;
      let inter_low = Componentset.cardinal (Componentset.inter sa sb) in
      r.Psop.intersection >= inter_low

      && r.Psop.union >= Componentset.cardinal (Componentset.union sa sb))

let prop_jaccard_bounds =
  QCheck.Test.make ~name:"jaccard in [0,1]" ~count:200 gen_sets (fun (a, b) ->
      let j =
        Jaccard.pairwise (Componentset.of_list a) (Componentset.of_list b)
      in
      j >= 0. && j <= 1.)

let prop_minhash_in_bounds =
  QCheck.Test.make ~name:"minhash estimate in [0,1]" ~count:50 gen_sets
    (fun (a, b) ->
      let e =
        Minhash.estimate_jaccard ~m:32
          [ Componentset.of_list a; Componentset.of_list b ]
      in
      e >= 0. && e <= 1.)




(* --- Bloom-filter PSI-CA -------------------------------------------------- *)

module Bloompsi = Indaas_pia.Bloompsi

let test_bloom_membership () =
  let f = Bloompsi.Filter.create ~bits:1024 ~hashes:4 in
  let members = List.init 50 (Printf.sprintf "member%d") in
  List.iter (Bloompsi.Filter.add f) members;
  List.iter
    (fun e -> check Alcotest.bool e true (Bloompsi.Filter.mem f e))
    members;
  (* false positives possible but should be rare at this load *)
  let fps =
    List.init 200 (Printf.sprintf "absent%d")
    |> List.filter (Bloompsi.Filter.mem f)
    |> List.length
  in
  check Alcotest.bool "few false positives" true (fps < 10)

let test_bloom_cardinality_estimate () =
  let f = Bloompsi.Filter.create ~bits:4096 ~hashes:4 in
  List.iter (Bloompsi.Filter.add f) (List.init 100 (Printf.sprintf "e%d"));
  let est = Bloompsi.Filter.estimate_cardinality f in
  check Alcotest.bool "within 15%" true (abs_float (est -. 100.) < 15.)

let test_bloom_union () =
  let mk prefix =
    let f = Bloompsi.Filter.create ~bits:512 ~hashes:3 in
    List.iter (Bloompsi.Filter.add f) (List.init 10 (Printf.sprintf "%s%d" prefix));
    f
  in
  let u = Bloompsi.Filter.union (mk "a") (mk "b") in
  check Alcotest.bool "contains both" true
    (Bloompsi.Filter.mem u "a3" && Bloompsi.Filter.mem u "b7");
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Bloompsi.Filter.union: geometry mismatch") (fun () ->
      ignore
        (Bloompsi.Filter.union
           (Bloompsi.Filter.create ~bits:512 ~hashes:3)
           (Bloompsi.Filter.create ~bits:256 ~hashes:3)))

let test_bloom_debias () =
  (* with no flip, debias is the identity *)
  check (Alcotest.float 1e-9) "identity" 100.
    (Bloompsi.Filter.debias ~flip:0. ~observed_ones:100. ~bits:1024);
  (* flipping q of the zeros up and q of the ones down *)
  let true_ones = 200. and bits = 1024 in
  let observed = (true_ones *. 0.9) +. ((1024. -. true_ones) *. 0.1) in
  check Alcotest.bool "recovers truth" true
    (abs_float (Bloompsi.Filter.debias ~flip:0.1 ~observed_ones:observed ~bits -. true_ones)
     < 1e-6)

let test_bloom_psi_two_parties () =
  let rng = Prng.of_int 700 in
  let shared = List.init 60 (Printf.sprintf "s%d") in
  let a = shared @ List.init 60 (Printf.sprintf "a%d") in
  let b = shared @ List.init 60 (Printf.sprintf "b%d") in
  let r = Bloompsi.run ~bits:8192 ~hashes:4 rng [| a; b |] in
  (* true: |inter| = 60, |union| = 180, J = 1/3 *)
  check Alcotest.bool "intersection close" true
    (abs_float (r.Bloompsi.intersection_estimate -. 60.) < 15.);
  check Alcotest.bool "union close" true
    (abs_float (r.Bloompsi.union_estimate -. 180.) < 20.);
  check Alcotest.bool "jaccard close" true
    (abs_float (r.Bloompsi.jaccard -. (1. /. 3.)) < 0.1);
  (* traffic: k filters broadcast *)
  check Alcotest.int "traffic" (2 * 1024) (Transport.total_bytes r.Bloompsi.transport)

let test_bloom_psi_three_parties () =
  let rng = Prng.of_int 701 in
  let shared = List.init 40 (Printf.sprintf "s%d") in
  let sets =
    [| shared @ List.init 30 (Printf.sprintf "a%d");
       shared @ List.init 30 (Printf.sprintf "b%d");
       shared @ List.init 30 (Printf.sprintf "c%d") |]
  in
  let r = Bloompsi.run ~bits:8192 rng sets in
  check Alcotest.bool "3-way intersection" true
    (abs_float (r.Bloompsi.intersection_estimate -. 40.) < 15.)

let test_bloom_psi_noised () =
  let rng = Prng.of_int 702 in
  let shared = List.init 100 (Printf.sprintf "s%d") in
  let a = shared @ List.init 100 (Printf.sprintf "a%d") in
  let b = shared @ List.init 100 (Printf.sprintf "b%d") in
  let r = Bloompsi.run ~bits:16384 ~flip:0.05 rng [| a; b |] in
  (* noise widens the error bars but the estimate must stay in the
     right region: true J = 1/3 *)
  check Alcotest.bool "noised jaccard plausible" true
    (r.Bloompsi.jaccard > 0.15 && r.Bloompsi.jaccard < 0.55)

let test_bloom_validation () =
  let rng = Prng.of_int 703 in
  check Alcotest.bool "one party" true
    (try
       ignore (Bloompsi.run rng [| [ "a" ] |]);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "bad flip" true
    (try
       ignore
         (Bloompsi.Filter.randomize rng ~flip:0.7
            (Bloompsi.Filter.create ~bits:8 ~hashes:1));
       false
     with Invalid_argument _ -> true)

let test_bloom_in_audit () =
  let providers = table2_providers () in
  let report =
    Audit.audit ~protocol:(Audit.Bloom { bits = 65536; hashes = 4; flip = 0. })
      ~way:2 providers
  in
  (* catalog sets are small; at 64k bits the estimates are tight and
     the paper ordering's extremes must hold *)
  let first = List.hd report.Audit.results in
  let last = List.nth report.Audit.results 5 in
  check (Alcotest.list Alcotest.string) "most independent"
    [ "Cloud2"; "Cloud4" ] first.Audit.providers;
  check (Alcotest.list Alcotest.string) "least independent"
    [ "Cloud1"; "Cloud2" ] last.Audit.providers

(* --- n-of-m deployments (§4.2.5) ---------------------------------------- *)

let nofm_providers () =
  [
    Audit.provider ~name:"A" [ "x"; "y"; "a1"; "a2" ];
    Audit.provider ~name:"B" [ "x"; "y"; "b1"; "b2" ];
    Audit.provider ~name:"C" [ "x"; "c1"; "c2"; "c3" ];
    Audit.provider ~name:"D" [ "d1"; "d2"; "d3"; "d4" ];
  ]

let test_nofm_shape () =
  let results = Audit.audit_nofm ~n:2 ~m:3 (nofm_providers ()) in
  (* C(4,3) = 4 deployments *)
  check Alcotest.int "four groups" 4 (List.length results);
  List.iter
    (fun r ->
      check Alcotest.int "m providers" 3 (List.length r.Audit.group);
      check Alcotest.int "n-quorum" 2 (List.length r.Audit.worst_quorum);
      (* the worst quorum's overlap can only exceed the full group's *)
      check Alcotest.bool "quorum J >= full J" true
        (r.Audit.worst_quorum_jaccard >= r.Audit.full_jaccard -. 1e-12))
    results

let test_nofm_ranking () =
  let results = Audit.audit_nofm ~n:2 ~m:3 (nofm_providers ()) in
  (* Groups containing the A&B pair (J = 2/6) inherit it as worst
     quorum; the best group avoids both A and B together... with 4
     providers every 3-subset except {A,C,D}/{B,C,D} contains A&B. *)
  let best = List.hd results in
  check Alcotest.bool "best group avoids the A&B quorum" true
    (not (List.mem "A" best.Audit.group && List.mem "B" best.Audit.group));
  (* monotone in worst_quorum_jaccard *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Audit.worst_quorum_jaccard <= b.Audit.worst_quorum_jaccard +. 1e-12
        && monotone rest
    | _ -> true
  in
  check Alcotest.bool "sorted" true (monotone results)

let test_nofm_validation () =
  check Alcotest.bool "n too small" true
    (try
       ignore (Audit.audit_nofm ~n:1 ~m:2 (nofm_providers ()));
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "m too large" true
    (try
       ignore (Audit.audit_nofm ~n:2 ~m:9 (nofm_providers ()));
       false
     with Invalid_argument _ -> true)

let test_nofm_render () =
  let results = Audit.audit_nofm ~n:2 ~m:3 (nofm_providers ()) in
  let text = Audit.render_nofm ~n:2 results in
  check Alcotest.bool "mentions quorum" true
    (Astring.String.is_infix ~affix:"worst 2-quorum" text)

let test_nofm_psop_agrees_with_clear () =
  let providers = nofm_providers () in
  let clear = Audit.audit_nofm ~protocol:Audit.Cleartext ~n:2 ~m:3 providers in
  let psop =
    Audit.audit_nofm
      ~protocol:(Audit.Psop { params = Some (Lazy.force shared_params) })
      ~n:2 ~m:3 providers
  in
  List.iter2
    (fun a b ->
      check (Alcotest.list Alcotest.string) "group order" a.Audit.group b.Audit.group;
      check (Alcotest.float 1e-12) "full J" a.Audit.full_jaccard b.Audit.full_jaccard;
      check (Alcotest.float 1e-12) "quorum J" a.Audit.worst_quorum_jaccard
        b.Audit.worst_quorum_jaccard)
    clear psop

(* --- Audit trail (§5.2 "trust but leave an audit trail") ----------------- *)

module Audit_trail = Indaas_pia.Audit_trail

let trail_set () = Componentset.of_list [ "router:10.0.0.1"; "pkg:openssl=1.0.1" ]

let test_trail_verify_roundtrip () =
  let rng = Prng.of_int 600 in
  let set = trail_set () in
  let record = Audit_trail.commit ~rng ~provider:"CloudA" ~run_id:"run-1" set in
  check Alcotest.bool "honest dataset verifies" true (Audit_trail.verify record set);
  (* canonicalization: order and duplicates do not matter *)
  let same =
    Componentset.of_list [ "pkg:openssl=1.0.1"; "router:10.0.0.1"; "router:10.0.0.1" ]
  in
  check Alcotest.bool "canonical equality" true (Audit_trail.verify record same)

let test_trail_detects_tampering () =
  let rng = Prng.of_int 601 in
  let set = trail_set () in
  let record = Audit_trail.commit ~rng ~provider:"CloudA" ~run_id:"run-1" set in
  let smaller = Componentset.of_list [ "router:10.0.0.1" ] in
  check Alcotest.bool "under-declared dataset fails" false
    (Audit_trail.verify record smaller);
  let bigger = Componentset.add "pkg:zlib=1.2" set in
  check Alcotest.bool "padded dataset fails" false (Audit_trail.verify record bigger)

let test_trail_commitments_hide_content () =
  let rng = Prng.of_int 602 in
  let r1 = Audit_trail.commit ~rng ~provider:"A" ~run_id:"r" (trail_set ()) in
  let r2 = Audit_trail.commit ~rng ~provider:"A" ~run_id:"r" (trail_set ()) in
  (* fresh nonce -> distinct commitments for equal sets *)
  check Alcotest.bool "nonce blinds" false
    (Audit_trail.commitment_to_hex r1.Audit_trail.commitment
     = Audit_trail.commitment_to_hex r2.Audit_trail.commitment)

let test_trail_hex_roundtrip () =
  let rng = Prng.of_int 603 in
  let r = Audit_trail.commit ~rng ~provider:"A" ~run_id:"r" (trail_set ()) in
  let hex = Audit_trail.commitment_to_hex r.Audit_trail.commitment in
  (match Audit_trail.commitment_of_hex hex with
  | Some c ->
      check Alcotest.string "roundtrip" hex (Audit_trail.commitment_to_hex c)
  | None -> Alcotest.fail "expected parse");
  check Alcotest.bool "garbage rejected" true
    (Audit_trail.commitment_of_hex "not:a_commitment" = None);
  check Alcotest.bool "wrong arity rejected" true
    (Audit_trail.commitment_of_hex "abc" = None)

let test_trail_registry () =
  let rng = Prng.of_int 604 in
  let reg = Audit_trail.Registry.create () in
  let set = trail_set () in
  let r1 = Audit_trail.commit ~rng ~provider:"A" ~run_id:"run-1" set in
  Audit_trail.Registry.add reg r1;
  Audit_trail.Registry.add reg
    (Audit_trail.commit ~rng ~provider:"A" ~run_id:"run-2" set);
  check (Alcotest.list Alcotest.string) "runs" [ "run-1"; "run-2" ]
    (Audit_trail.Registry.runs_of reg ~provider:"A");
  check Alcotest.bool "double commit rejected" true
    (try
       Audit_trail.Registry.add reg r1;
       false
     with Invalid_argument _ -> true);
  (match Audit_trail.Registry.spot_check reg ~provider:"A" ~run_id:"run-1" set with
  | `Verified -> ()
  | _ -> Alcotest.fail "expected Verified");
  (match
     Audit_trail.Registry.spot_check reg ~provider:"A" ~run_id:"run-1"
       (Componentset.of_list [ "x" ])
   with
  | `Mismatch -> ()
  | _ -> Alcotest.fail "expected Mismatch");
  match Audit_trail.Registry.spot_check reg ~provider:"B" ~run_id:"run-1" set with
  | `No_commitment -> ()
  | _ -> Alcotest.fail "expected No_commitment"

let () =
  Alcotest.run "pia"
    [
      ( "componentset",
        [
          Alcotest.test_case "set ops" `Quick test_set_ops;
          Alcotest.test_case "inter_many empty" `Quick test_inter_many_empty;
          Alcotest.test_case "normalize router" `Quick test_normalize_router;
          Alcotest.test_case "normalize package" `Quick test_normalize_package;
          Alcotest.test_case "multiset elements" `Quick test_multiset_elements;
          Alcotest.test_case "of_depdb" `Quick test_of_depdb;
        ] );
      ( "jaccard",
        [
          Alcotest.test_case "known values" `Quick test_jaccard_known;
          Alcotest.test_case "multi-way" `Quick test_jaccard_multi;
          Alcotest.test_case "validation" `Quick test_of_cardinalities_validation;
          Alcotest.test_case "correlation threshold" `Quick test_correlated_threshold;
          Alcotest.test_case "sorensen-dice" `Quick test_sorensen_dice;
          qtest prop_jaccard_bounds;
        ] );
      ( "minhash",
        [
          Alcotest.test_case "identical" `Quick test_minhash_identical_sets;
          Alcotest.test_case "disjoint" `Quick test_minhash_disjoint_sets;
          Alcotest.test_case "accuracy" `Quick test_minhash_accuracy;
          Alcotest.test_case "error scaling" `Quick test_minhash_more_hashes_tighter;
          Alcotest.test_case "positional elements" `Quick
            test_signature_elements_positional;
          Alcotest.test_case "validation" `Quick test_minhash_validation;
          qtest prop_minhash_in_bounds;
        ] );
      ( "transport",
        [
          Alcotest.test_case "accounting" `Quick test_transport_accounting;
          Alcotest.test_case "validation" `Quick test_transport_validation;
          Alcotest.test_case "zero-byte send" `Quick test_transport_zero_byte_send;
          Alcotest.test_case "single-party broadcast" `Quick
            test_transport_single_party_broadcast;
          Alcotest.test_case "interceptor drop" `Quick
            test_transport_interceptor_drop;
          Alcotest.test_case "interceptor delay" `Quick
            test_transport_interceptor_delay;
        ] );
      ( "polynomial",
        [
          Alcotest.test_case "from_roots" `Quick test_poly_from_roots;
          Alcotest.test_case "empty roots" `Quick test_poly_empty_roots;
          Alcotest.test_case "add/mul" `Quick test_poly_add_mul;
          Alcotest.test_case "zero" `Quick test_poly_zero;
          Alcotest.test_case "scale" `Quick test_poly_scale;
          Alcotest.test_case "trim" `Quick test_poly_trim;
        ] );
      ( "psop",
        [
          Alcotest.test_case "exact cardinalities" `Quick test_psop_exact_cardinalities;
          Alcotest.test_case "three parties" `Quick test_psop_three_parties;
          Alcotest.test_case "multiset duplicates" `Quick test_psop_duplicates_as_multiset;
          Alcotest.test_case "disjoint" `Quick test_psop_disjoint;
          Alcotest.test_case "one party rejected" `Quick test_psop_single_party_rejected;
          Alcotest.test_case "traffic and ops" `Quick test_psop_traffic_and_ops;
          Alcotest.test_case "MD5 + SRA variant" `Quick test_psop_md5_sra_variant;
          Alcotest.test_case "minhash variant" `Quick test_psop_minhash;
          Alcotest.test_case "matches cleartext (catalog)" `Quick
            test_psop_matches_cleartext;
          qtest prop_psop_matches_cleartext;
        ] );
      ( "ks",
        [
          Alcotest.test_case "intersection" `Quick test_ks_intersection;
          Alcotest.test_case "three parties" `Quick test_ks_three_parties;
          Alcotest.test_case "disjoint/identical" `Quick test_ks_disjoint_and_identical;
          Alcotest.test_case "matches reference" `Quick test_ks_matches_exact_reference;
          Alcotest.test_case "costlier than P-SOP" `Quick test_ks_costlier_than_psop;
        ] );
      ( "audit",
        [
          Alcotest.test_case "table 2 two-way" `Quick test_audit_table2_two_way;
          Alcotest.test_case "table 2 three-way" `Quick test_audit_table2_three_way;
          Alcotest.test_case "psop = cleartext" `Quick test_audit_psop_equals_cleartext;
          Alcotest.test_case "ks two-way jaccard" `Quick test_audit_ks_two_way_matches;
          Alcotest.test_case "validation" `Quick test_audit_validation;
          Alcotest.test_case "render" `Quick test_audit_render;
          Alcotest.test_case "correlated flag" `Quick test_audit_correlated_flag;
          Alcotest.test_case "duplicate provider" `Quick
            test_audit_duplicate_provider;
          Alcotest.test_case "degrades under message loss" `Quick
            test_audit_degrades_under_message_loss;
          Alcotest.test_case "complete without faults" `Quick
            test_audit_without_faults_is_complete;
          Alcotest.test_case "nofm shape" `Quick test_nofm_shape;
          Alcotest.test_case "nofm ranking" `Quick test_nofm_ranking;
          Alcotest.test_case "nofm validation" `Quick test_nofm_validation;
          Alcotest.test_case "nofm render" `Quick test_nofm_render;
          Alcotest.test_case "nofm psop = clear" `Quick test_nofm_psop_agrees_with_clear;
        ] );
      ( "bloom-psi",
        [
          Alcotest.test_case "membership" `Quick test_bloom_membership;
          Alcotest.test_case "cardinality estimate" `Quick
            test_bloom_cardinality_estimate;
          Alcotest.test_case "union" `Quick test_bloom_union;
          Alcotest.test_case "debias" `Quick test_bloom_debias;
          Alcotest.test_case "two parties" `Quick test_bloom_psi_two_parties;
          Alcotest.test_case "three parties" `Quick test_bloom_psi_three_parties;
          Alcotest.test_case "noised" `Quick test_bloom_psi_noised;
          Alcotest.test_case "validation" `Quick test_bloom_validation;
          Alcotest.test_case "audit integration" `Quick test_bloom_in_audit;
        ] );
      ( "audit-trail",
        [
          Alcotest.test_case "verify roundtrip" `Quick test_trail_verify_roundtrip;
          Alcotest.test_case "detects tampering" `Quick test_trail_detects_tampering;
          Alcotest.test_case "commitments hide content" `Quick
            test_trail_commitments_hide_content;
          Alcotest.test_case "hex roundtrip" `Quick test_trail_hex_roundtrip;
          Alcotest.test_case "registry" `Quick test_trail_registry;
        ] );
    ]
