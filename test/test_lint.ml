module Lint = Indaas_lint.Lint
module D = Indaas_lint.Diagnostic
module Graph_rules = Indaas_lint.Graph_rules
module Topo_rules = Indaas_lint.Topo_rules
module Reporter = Indaas_lint.Reporter
module Depdb = Indaas_depdata.Depdb
module Dependency = Indaas_depdata.Dependency
module Graph = Indaas_faultgraph.Graph
module Fattree = Indaas_topology.Fattree
module Sia_builder = Indaas_sia.Builder
module Sia_audit = Indaas_sia.Audit
module Json = Indaas_util.Json

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let codes findings = List.sort_uniq compare (List.map (fun d -> d.D.code) findings)
let has code findings = List.mem code (codes findings)

(* The paper's Figure 2 storage deployment — structurally sound. *)
let figure2_db () =
  Depdb.of_string
    {|<src="S1" dst="Internet" route="ToR1,Core1"/>
<src="S1" dst="Internet" route="ToR1,Core2"/>
<src="S2" dst="Internet" route="ToR1,Core1"/>
<src="S2" dst="Internet" route="ToR1,Core2"/>
<hw="S1" type="Disk" dep="S1-disk"/>
<hw="S2" type="Disk" dep="S2-disk"/>
<pgm="Riak1" hw="S1" dep="libc6"/>
<pgm="Riak2" hw="S2" dep="libc6"/>|}

(* --- dependency-DB rules --------------------------------------------- *)

let test_clean_db_is_silent () =
  check (Alcotest.list Alcotest.string) "no findings" []
    (codes (Lint.lint_db (figure2_db ())))

let test_dangling_host () =
  let db = Depdb.create () in
  Depdb.add db (Dependency.software ~pgm:"A" ~host:"Ghost" ~deps:[ "libx" ]);
  check Alcotest.bool "fires" true (has "IND-D001" (Lint.lint_db db));
  check Alcotest.bool "not on figure 2" false
    (has "IND-D001" (Lint.lint_db (figure2_db ())))

let test_degenerate_route () =
  let db = figure2_db () in
  Depdb.add db (Dependency.network ~src:"S1" ~dst:"X" ~route:[]);
  check Alcotest.bool "empty route" true (has "IND-D002" (Lint.lint_db db));
  let db2 = figure2_db () in
  Depdb.add db2 (Dependency.network ~src:"S1" ~dst:"X" ~route:[ "sw"; "S1" ]);
  check Alcotest.bool "self endpoint" true (has "IND-D002" (Lint.lint_db db2))

let test_duplicate_routes () =
  let db = figure2_db () in
  Depdb.add db (Dependency.network ~src:"S1" ~dst:"Internet" ~route:[ "Core1"; "ToR1" ]);
  check Alcotest.bool "same device set" true (has "IND-D003" (Lint.lint_db db));
  let db2 = figure2_db () in
  Depdb.add db2 (Dependency.network ~src:"S2" ~dst:"Y" ~route:[ "sw"; "sw" ]);
  check Alcotest.bool "repeated device" true (has "IND-D003" (Lint.lint_db db2))

let test_software_cycle () =
  let db = figure2_db () in
  Depdb.add db (Dependency.software ~pgm:"A" ~host:"S1" ~deps:[ "B" ]);
  Depdb.add db (Dependency.software ~pgm:"B" ~host:"S2" ~deps:[ "C" ]);
  Depdb.add db (Dependency.software ~pgm:"C" ~host:"S1" ~deps:[ "A" ]);
  let findings = Lint.lint_db db in
  check Alcotest.bool "fires" true (has "IND-D004" findings);
  check Alcotest.int "one cycle, reported once" 1
    (List.length (List.filter (fun d -> d.D.code = "IND-D004") findings));
  (* an acyclic chain stays silent *)
  let chain = figure2_db () in
  Depdb.add chain (Dependency.software ~pgm:"A" ~host:"S1" ~deps:[ "B" ]);
  Depdb.add chain (Dependency.software ~pgm:"B" ~host:"S2" ~deps:[ "libz" ]);
  check Alcotest.bool "chain clean" false (has "IND-D004" (Lint.lint_db chain))

let test_unbuildable_machine () =
  let db = figure2_db () in
  Depdb.add db (Dependency.network ~src:"Lonely" ~dst:"Internet" ~route:[]);
  let findings = Lint.lint_db db in
  check Alcotest.bool "fires" true (has "IND-D005" findings);
  (* and the machine indeed cannot be built *)
  check Alcotest.bool "build raises" true
    (try
       ignore (Sia_builder.build db (Sia_builder.spec [ "Lonely" ]));
       false
     with Invalid_argument _ -> true)

let test_leaf_program_hint () =
  let db = figure2_db () in
  Depdb.add db (Dependency.software ~pgm:"standalone" ~host:"S1" ~deps:[]);
  let findings = Lint.lint_db db in
  check Alcotest.bool "fires" true (has "IND-D006" findings);
  check Alcotest.int "hint severity, exit 0" 0 (Reporter.exit_code findings)

(* --- fault-graph rules ------------------------------------------------ *)

let vbasic ?prob id name = { Graph_rules.id; name; kind = Graph.Basic prob; children = [] }
let vgate id name gate children = { Graph_rules.id; name; kind = Graph.Gate gate; children }

let test_kofn_out_of_range () =
  let view =
    { Graph_rules.nodes =
        [ vbasic 0 "a"; vbasic 1 "b"; vgate 2 "top" (Graph.Kofn 5) [ 0; 1 ] ];
      top = 2 }
  in
  check Alcotest.bool "k>n fires" true
    (has "IND-G001" (Lint.run [ Lint.Graph_view view ]));
  let view0 =
    { Graph_rules.nodes =
        [ vbasic 0 "a"; vbasic 1 "b"; vgate 2 "top" (Graph.Kofn 0) [ 0; 1 ] ];
      top = 2 }
  in
  check Alcotest.bool "k<1 fires" true
    (has "IND-G001" (Lint.run [ Lint.Graph_view view0 ]))

let test_empty_gate () =
  let view =
    { Graph_rules.nodes = [ vgate 0 "top" Graph.And [] ]; top = 0 }
  in
  check Alcotest.bool "fires" true
    (has "IND-G002" (Lint.run [ Lint.Graph_view view ]))

let test_single_child_gate () =
  (* buildable through the real Builder: a pass-through OR *)
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add_basic b "x" in
  let g1 = Graph.Builder.add_gate b ~name:"pass" Graph.Or [ x ] in
  let y = Graph.Builder.add_basic b "y" in
  let top = Graph.Builder.add_gate b ~name:"top" Graph.And [ g1; y ] in
  let g = Graph.Builder.build b ~top in
  check Alcotest.bool "fires" true
    (has "IND-G003" (Lint.run [ Lint.Fault_graph g ]))

let test_probability_out_of_range () =
  let view =
    { Graph_rules.nodes =
        [ vbasic ~prob:1.5 0 "a"; vgate 1 "top" Graph.Or [ 0 ] ];
      top = 1 }
  in
  check Alcotest.bool "fires" true
    (has "IND-G004" (Lint.run [ Lint.Graph_view view ]))

let test_unreachable_node () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add_basic b "x" in
  let _orphan = Graph.Builder.add_basic b "orphan" in
  let top = Graph.Builder.add_gate b ~name:"top" Graph.Or [ x ] in
  let g = Graph.Builder.build b ~top in
  let findings = Lint.run [ Lint.Fault_graph g ] in
  check Alcotest.bool "fires" true (has "IND-G005" findings);
  check Alcotest.bool "names the orphan" true
    (List.exists
       (fun d ->
         d.D.code = "IND-G005"
         && (match d.D.location with
            | D.Node { name; _ } -> name = "orphan"
            | _ -> false))
       findings)

let test_spof () =
  (* E1 = {A, B}, E2 = {B, C}: the shared B is a size-1 risk group. *)
  let g =
    Graph.of_component_sets [ ("E1", [ "A"; "B" ]); ("E2", [ "B"; "C" ]) ]
  in
  check (Alcotest.list Alcotest.string) "spof names" [ "B" ]
    (Graph_rules.single_points_of_failure (Graph_rules.of_graph g));
  check Alcotest.bool "fires" true
    (has "IND-G006" (Lint.run [ Lint.Fault_graph g ]));
  (* disjoint component sets: no SPOF *)
  let clean =
    Graph.of_component_sets [ ("E1", [ "A" ]); ("E2", [ "B" ]) ]
  in
  check (Alcotest.list Alcotest.string) "no spof" []
    (Graph_rules.single_points_of_failure (Graph_rules.of_graph clean))

(* --- topology rules ---------------------------------------------------- *)

let test_partitioned_topology () =
  let db =
    Depdb.of_string
      {|<src="S1" dst="I" route="swA"/>
<src="S2" dst="I" route="swA"/>
<src="S3" dst="I" route="swB"/>|}
  in
  let findings = Lint.run [ Lint.Topology (Topo_rules.of_db db) ] in
  check Alcotest.bool "fires" true (has "IND-T001" findings);
  let connected =
    Depdb.of_string
      {|<src="S1" dst="I" route="swA,core"/>
<src="S2" dst="I" route="swB,core"/>|}
  in
  check (Alcotest.list Alcotest.string) "connected clean" []
    (codes (Lint.run [ Lint.Topology (Topo_rules.of_db connected) ]))

let test_duplicate_attachment () =
  let db =
    Depdb.of_string
      {|<src="S1" dst="I" route="swA,core"/>
<src="S1" dst="I" route="swB,core"/>|}
  in
  check Alcotest.bool "fires" true
    (has "IND-T002" (Lint.run [ Lint.Topology (Topo_rules.of_db db) ]))

let test_fattree_is_clean () =
  let t = Fattree.create ~k:4 in
  check (Alcotest.list Alcotest.string) "no findings" []
    (codes (Lint.run [ Lint.Topology (Topo_rules.of_fattree t) ]))

(* --- engine: registry, suppression, reporter ---------------------------- *)

let test_registry () =
  let cs = List.map (fun (c, _, _) -> c) Lint.registry in
  check Alcotest.bool "at least 10 stable codes" true (List.length cs >= 10);
  check (Alcotest.list Alcotest.string) "codes are unique and sorted" cs
    (List.sort_uniq compare cs);
  List.iter
    (fun c ->
      check Alcotest.bool (c ^ " well-formed") true
        (String.length c = 8 && String.sub c 0 4 = "IND-"))
    cs

let test_disable () =
  let db = figure2_db () in
  Depdb.add db (Dependency.software ~pgm:"A" ~host:"Ghost" ~deps:[ "B" ]);
  check Alcotest.bool "present" true (has "IND-D001" (Lint.lint_db db));
  check Alcotest.bool "suppressed" false
    (has "IND-D001" (Lint.lint_db ~disable:[ "IND-D001" ] db))

let test_reporter () =
  let err =
    D.make ~code:"IND-D001" ~severity:D.Error ~location:D.Whole "boom"
  in
  let warn =
    D.make ~code:"IND-T002" ~severity:D.Warning ~location:(D.Machine "S1") "meh"
  in
  check Alcotest.int "error exits 1" 1 (Reporter.exit_code [ warn; err ]);
  check Alcotest.int "warning exits 0" 0 (Reporter.exit_code [ warn ]);
  check Alcotest.string "empty render" "no findings" (Reporter.render []);
  check Alcotest.string "summary" "1 error, 1 warning, 0 hints"
    (Reporter.summary [ err; warn ]);
  let rendered = Reporter.render [ warn; err ] in
  check Alcotest.bool "errors sort first" true
    (Astring.String.find_sub ~sub:"IND-D001" rendered
    < Astring.String.find_sub ~sub:"IND-T002" rendered)

let test_audit_attaches_diagnostics () =
  let report =
    Sia_audit.audit (figure2_db ()) (Sia_audit.request [ "S1"; "S2" ])
  in
  let spofs =
    List.filter (fun d -> d.D.code = "IND-G006") report.Sia_audit.diagnostics
  in
  check Alcotest.int "two SPOF warnings" 2 (List.length spofs);
  check Alcotest.bool "no hints attached" true
    (List.for_all
       (fun d -> d.D.severity <> D.Hint)
       report.Sia_audit.diagnostics)

let test_construction_failure () =
  let d = Lint.construction_failure "no servers" in
  check Alcotest.string "code" "IND-G007" d.D.code;
  check Alcotest.int "error" 1 (Reporter.exit_code [ d ])

(* --- json round-trips --------------------------------------------------- *)

let test_diagnostic_json_cases () =
  let locs =
    [
      D.Whole;
      D.Machine "S1";
      D.Node { id = 3; name = "ToR1" };
      D.Link ("a", "b");
      D.Record (Dependency.network ~src:"S1" ~dst:"I" ~route:[ "sw" ]);
      D.Record (Dependency.hardware ~hw:"S1" ~hw_type:"Disk" ~dep:"d1");
      D.Record (Dependency.software ~pgm:"p" ~host:"S1" ~deps:[ "x"; "y" ]);
    ]
  in
  List.iter
    (fun location ->
      let d =
        D.make ~code:"IND-D001" ~severity:D.Warning ~location
          "message with \"quotes\" and\nnewlines"
      in
      let round = D.of_json (Json.of_string (Json.to_string (D.to_json d))) in
      check Alcotest.bool
        ("round-trip " ^ D.location_to_string location)
        true (D.equal d round))
    locs

(* --- qcheck properties --------------------------------------------------- *)

let gen_word =
  QCheck.Gen.(
    map
      (fun (c, s) -> Printf.sprintf "%c%s" c s)
      (pair (char_range 'a' 'z')
         (string_size ~gen:(char_range 'a' 'z') (int_bound 5))))

let gen_location =
  QCheck.Gen.(
    oneof
      [
        return D.Whole;
        map (fun m -> D.Machine m) gen_word;
        map2 (fun id name -> D.Node { id; name }) (int_bound 1000) gen_word;
        map2 (fun a b -> D.Link (a, b)) gen_word gen_word;
        map2
          (fun src route -> D.Record (Dependency.network ~src ~dst:"I" ~route))
          gen_word
          (list_size (int_bound 3) gen_word);
        map2
          (fun hw dep -> D.Record (Dependency.hardware ~hw ~hw_type:"CPU" ~dep))
          gen_word gen_word;
        map2
          (fun pgm deps -> D.Record (Dependency.software ~pgm ~host:"S1" ~deps))
          gen_word
          (list_size (int_bound 3) gen_word);
      ])

let gen_diagnostic =
  QCheck.make
    ~print:(fun d -> Format.asprintf "%a" D.pp d)
    QCheck.Gen.(
      let code =
        oneofl (List.map (fun (c, _, _) -> c) Lint.registry)
      in
      let severity = oneofl [ D.Error; D.Warning; D.Hint ] in
      map2
        (fun (code, severity, location) message ->
          D.make ~code ~severity ~location message)
        (triple code severity gen_location)
        (string_printable))

let prop_diagnostic_roundtrip =
  QCheck.Test.make ~name:"diagnostics round-trip through JSON" ~count:500
    gen_diagnostic (fun d ->
      let compact = D.of_json (Json.of_string (Json.to_string (D.to_json d))) in
      let pretty =
        D.of_json (Json.of_string (Json.to_string ~indent:true (D.to_json d)))
      in
      D.equal d compact && D.equal d pretty)

(* Random dependency databases over a small machine universe — many of
   them malformed on purpose. *)
let gen_db =
  QCheck.make
    ~print:(fun records -> Dependency.to_xml_many records)
    QCheck.Gen.(
      let machine = map (Printf.sprintf "m%d") (int_bound 3) in
      let device = map (Printf.sprintf "d%d") (int_bound 4) in
      let package = map (Printf.sprintf "p%d") (int_bound 3) in
      let record =
        oneof
          [
            map2
              (fun src route -> Dependency.network ~src ~dst:"I" ~route)
              machine
              (list_size (int_bound 3) device);
            map2
              (fun hw dep -> Dependency.hardware ~hw ~hw_type:"Disk" ~dep)
              machine device;
            map2
              (fun (pgm, host) deps -> Dependency.software ~pgm ~host ~deps)
              (pair package machine)
              (list_size (int_bound 2) package);
          ]
      in
      list_size (int_range 1 10) record)

let prop_clean_db_builds =
  QCheck.Test.make ~name:"a DB that lints clean builds every fault graph"
    ~count:500 gen_db (fun records ->
      let db = Depdb.create () in
      Depdb.add_all db records;
      let findings = Lint.lint_db db in
      Lint.errors findings <> []
      ||
      (* no error-severity findings: every machine must audit without
         raising, alone and jointly *)
      let machines = Depdb.machines db in
      List.for_all
        (fun m ->
          match Sia_builder.build db (Sia_builder.spec [ m ]) with
          | _ -> true
          | exception _ -> false)
        machines
      &&
      match Sia_builder.build db (Sia_builder.spec machines) with
      | _ -> true
      | exception _ -> false)

let prop_lint_is_deterministic =
  QCheck.Test.make ~name:"lint output is stable and duplicate-free" ~count:200
    gen_db (fun records ->
      let db = Depdb.create () in
      Depdb.add_all db records;
      let a = Lint.lint_db db in
      let b = Lint.lint_db db in
      List.equal D.equal a b && List.length (List.sort_uniq D.compare a) = List.length a)

let () =
  Alcotest.run "lint"
    [
      ( "depdb-rules",
        [
          Alcotest.test_case "clean db silent" `Quick test_clean_db_is_silent;
          Alcotest.test_case "IND-D001 dangling host" `Quick test_dangling_host;
          Alcotest.test_case "IND-D002 degenerate route" `Quick test_degenerate_route;
          Alcotest.test_case "IND-D003 duplicate routes" `Quick test_duplicate_routes;
          Alcotest.test_case "IND-D004 software cycle" `Quick test_software_cycle;
          Alcotest.test_case "IND-D005 unbuildable machine" `Quick test_unbuildable_machine;
          Alcotest.test_case "IND-D006 leaf program" `Quick test_leaf_program_hint;
        ] );
      ( "graph-rules",
        [
          Alcotest.test_case "IND-G001 k-of-n range" `Quick test_kofn_out_of_range;
          Alcotest.test_case "IND-G002 empty gate" `Quick test_empty_gate;
          Alcotest.test_case "IND-G003 single child" `Quick test_single_child_gate;
          Alcotest.test_case "IND-G004 probability range" `Quick test_probability_out_of_range;
          Alcotest.test_case "IND-G005 unreachable" `Quick test_unreachable_node;
          Alcotest.test_case "IND-G006 single point of failure" `Quick test_spof;
          Alcotest.test_case "IND-G007 construction failure" `Quick test_construction_failure;
        ] );
      ( "topo-rules",
        [
          Alcotest.test_case "IND-T001 partitioned" `Quick test_partitioned_topology;
          Alcotest.test_case "IND-T002 duplicate attachment" `Quick test_duplicate_attachment;
          Alcotest.test_case "fat-tree clean" `Quick test_fattree_is_clean;
        ] );
      ( "engine",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "disable" `Quick test_disable;
          Alcotest.test_case "reporter" `Quick test_reporter;
          Alcotest.test_case "audit attaches diagnostics" `Quick
            test_audit_attaches_diagnostics;
          Alcotest.test_case "diagnostic json cases" `Quick
            test_diagnostic_json_cases;
        ] );
      ( "properties",
        [
          qtest prop_diagnostic_roundtrip;
          qtest prop_clean_db_builds;
          qtest prop_lint_is_deterministic;
        ] );
    ]
