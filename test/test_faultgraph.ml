module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset
module Sampling = Indaas_faultgraph.Sampling
module Probability = Indaas_faultgraph.Probability
module Compose = Indaas_faultgraph.Compose
module Dot = Indaas_faultgraph.Dot
module Prng = Indaas_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let rg_names g rgs = List.sort compare (List.map (Cutset.names g) rgs)

(* The paper's Figure 4(a): E1 = {A1, A2}, E2 = {A2, A3}. *)
let figure_4a () =
  Graph.of_component_sets [ ("E1", [ "A1"; "A2" ]); ("E2", [ "A2"; "A3" ]) ]

(* Figure 4(b): same with probabilities 0.1, 0.2, 0.3. *)
let figure_4b () =
  Graph.of_fault_sets
    [
      ("E1", [ ("A1", 0.1); ("A2", 0.2) ]);
      ("E2", [ ("A2", 0.2); ("A3", 0.3) ]);
    ]

(* A Figure 4(c)-like deep graph: two servers sharing ToR1, redundant
   cores, shared libc6 and private disks. *)
let figure_4c () =
  let b = Graph.Builder.create () in
  let tor = Graph.Builder.add_basic b "ToR1" in
  let c1 = Graph.Builder.add_basic b "Core1" in
  let c2 = Graph.Builder.add_basic b "Core2" in
  let libc = Graph.Builder.add_basic b "libc6" in
  let d1 = Graph.Builder.add_basic b "S1-disk" in
  let d2 = Graph.Builder.add_basic b "S2-disk" in
  let cores = Graph.Builder.add_gate b ~name:"cores" Graph.And [ c1; c2 ] in
  let server name disk =
    let net = Graph.Builder.add_gate b ~name:(name ^ "/net") Graph.Or [ tor; cores ] in
    let sw = Graph.Builder.add_gate b ~name:(name ^ "/sw") Graph.Or [ libc ] in
    Graph.Builder.add_gate b ~name Graph.Or [ net; sw; disk ]
  in
  let s1 = server "S1" d1 and s2 = server "S2" d2 in
  let top = Graph.Builder.add_gate b ~name:"deployment" Graph.And [ s1; s2 ] in
  Graph.Builder.build b ~top

(* --- Graph ----------------------------------------------------------- *)

let test_builder_shares_basics () =
  let b = Graph.Builder.create () in
  let x1 = Graph.Builder.add_basic b "x" in
  let x2 = Graph.Builder.add_basic b "x" in
  check Alcotest.int "same id" x1 x2;
  check (Alcotest.option Alcotest.int) "find_basic" (Some x1)
    (Graph.Builder.find_basic b "x")

let test_builder_prob_conflicts () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_basic b ~prob:0.5 "x");
  (* re-adding without a prob is fine *)
  ignore (Graph.Builder.add_basic b "x");
  Alcotest.check_raises "conflicting prob"
    (Invalid_argument "Builder.add_basic: \"x\" re-added with a different probability")
    (fun () -> ignore (Graph.Builder.add_basic b ~prob:0.6 "x"))

let test_builder_prob_range () =
  let b = Graph.Builder.create () in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Builder.add_basic: probability out of [0,1]") (fun () ->
      ignore (Graph.Builder.add_basic b ~prob:1.5 "x"))

let test_builder_gate_validation () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add_basic b "x" in
  Alcotest.check_raises "no children"
    (Invalid_argument "Builder.add_gate: gate \"g\" has no children") (fun () ->
      ignore (Graph.Builder.add_gate b ~name:"g" Graph.Or []));
  Alcotest.check_raises "unknown child"
    (Invalid_argument "Builder.add_gate: gate \"g\" references unknown child id 99")
    (fun () -> ignore (Graph.Builder.add_gate b ~name:"g" Graph.Or [ 99 ]));
  Alcotest.check_raises "k too large"
    (Invalid_argument
       "Builder.add_gate: gate \"g\" requires 2 of 1 children (k must be \
        within [1, 1])") (fun () ->
      ignore (Graph.Builder.add_gate b ~name:"g" (Graph.Kofn 2) [ x ]));
  Alcotest.check_raises "k below one"
    (Invalid_argument
       "Builder.add_gate: gate \"g\" requires 0 of 1 children (k must be \
        within [1, 1])") (fun () ->
      ignore (Graph.Builder.add_gate b ~name:"g" (Graph.Kofn 0) [ x ]))

let test_counts () =
  let g = figure_4a () in
  check Alcotest.int "basics" 3 (Array.length (Graph.basic_ids g));
  check (Alcotest.list Alcotest.string) "names" [ "A1"; "A2"; "A3" ]
    (List.sort compare (Graph.basic_names g))

let test_unreachable_excluded () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add_basic b "x" in
  let _orphan = Graph.Builder.add_basic b "orphan" in
  let top = Graph.Builder.add_gate b ~name:"top" Graph.Or [ x ] in
  let g = Graph.Builder.build b ~top in
  check (Alcotest.list Alcotest.string) "only reachable" [ "x" ]
    (Graph.basic_names g)

let test_topological_order () =
  let g = figure_4c () in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun id ->
      Array.iter
        (fun c ->
          check Alcotest.bool "children first" true (Hashtbl.mem seen c))
        (Graph.node g id).Graph.children;
      Hashtbl.replace seen id ())
    (Graph.topological_order g)

let test_evaluate_or_and () =
  let g = figure_4a () in
  let id name = Option.get (Graph.find_basic g name) in
  let eval failed =
    Graph.evaluate g ~failed:(fun i -> List.mem i (List.map id failed))
  in
  check Alcotest.bool "nothing fails" false (eval []);
  check Alcotest.bool "shared kills all" true (eval [ "A2" ]);
  check Alcotest.bool "A1 alone insufficient" false (eval [ "A1" ]);
  check Alcotest.bool "A1+A3" true (eval [ "A1"; "A3" ])

let test_evaluate_kofn () =
  let b = Graph.Builder.create () in
  let ids = List.map (fun i -> Graph.Builder.add_basic b (Printf.sprintf "x%d" i)) [ 1; 2; 3 ] in
  let top = Graph.Builder.add_gate b ~name:"top" (Graph.Kofn 2) ids in
  let g = Graph.Builder.build b ~top in
  let eval failed = Graph.evaluate g ~failed:(fun i -> List.mem i failed) in
  check Alcotest.bool "one is not enough" false (eval [ List.nth ids 0 ]);
  check Alcotest.bool "two fire" true (eval [ List.nth ids 0; List.nth ids 2 ])

let test_component_sets_downgrade () =
  let g = figure_4c () in
  let cs = Graph.component_sets g in
  check Alcotest.int "two sources" 2 (List.length cs);
  let s1 = List.assoc "S1" cs in
  check (Alcotest.list Alcotest.string) "S1 components"
    [ "Core1"; "Core2"; "S1-disk"; "ToR1"; "libc6" ]
    s1

let test_of_component_sets_validation () =
  Alcotest.check_raises "empty sources"
    (Invalid_argument "Graph.of_component_sets: no sources") (fun () ->
      ignore (Graph.of_component_sets []));
  Alcotest.check_raises "empty source"
    (Invalid_argument "Graph.of_component_sets: source \"E\" is empty") (fun () ->
      ignore (Graph.of_component_sets [ ("E", []) ]))

(* --- Cutset ---------------------------------------------------------- *)

let test_minimal_rgs_4a () =
  let g = figure_4a () in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "figure 4a"
    [ [ "A1"; "A3" ]; [ "A2" ] ]
    (rg_names g (Cutset.minimal_risk_groups g))

let test_minimal_rgs_4c () =
  let g = figure_4c () in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "figure 4c"
    [ [ "Core1"; "Core2" ]; [ "S1-disk"; "S2-disk" ]; [ "ToR1" ]; [ "libc6" ] ]
    (rg_names g (Cutset.minimal_risk_groups g))

let test_minimal_rgs_are_minimal () =
  let g = figure_4c () in
  List.iter
    (fun rg ->
      check Alcotest.bool "is minimal RG" true
        (Cutset.is_minimal_risk_group g (Array.to_list rg)))
    (Cutset.minimal_risk_groups g)

let test_kofn_cutsets () =
  let b = Graph.Builder.create () in
  let ids = List.map (fun i -> Graph.Builder.add_basic b (Printf.sprintf "x%d" i)) [ 1; 2; 3 ] in
  let top = Graph.Builder.add_gate b ~name:"top" (Graph.Kofn 2) ids in
  let g = Graph.Builder.build b ~top in
  check Alcotest.int "three pairs" 3 (List.length (Cutset.minimal_risk_groups g));
  List.iter
    (fun rg -> check Alcotest.int "pair" 2 (Array.length rg))
    (Cutset.minimal_risk_groups g)

let test_max_size_prunes () =
  let g = figure_4c () in
  let rgs = Cutset.minimal_risk_groups ~max_size:1 g in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "singletons only"
    [ [ "ToR1" ]; [ "libc6" ] ]
    (rg_names g rgs)

let test_max_family_budget () =
  (* 2 sources x 20 components each: the AND product has 400 cut sets;
     a budget of 100 must abort. *)
  let comps prefix = List.init 20 (fun i -> Printf.sprintf "%s%d" prefix i) in
  let g = Graph.of_component_sets [ ("E1", comps "a"); ("E2", comps "b") ] in
  check Alcotest.bool "raises" true
    (try
       ignore (Cutset.minimal_risk_groups ~max_family:100 g);
       false
     with Cutset.Too_many_cut_sets _ -> true)

let test_or_budget_applies_after_minimize () =
  (* 10 gates OR-ing over the same 20 basics: the raw concatenation is
     200 sets, but absorption collapses it back to 20 singletons. A
     budget of 50 sits between the two — it must NOT abort, because
     max_family bounds minimized families, not raw concatenations. *)
  let b = Graph.Builder.create () in
  let basics =
    List.init 20 (fun i -> Graph.Builder.add_basic b (Printf.sprintf "c%d" i))
  in
  let gates =
    List.init 10 (fun i ->
        Graph.Builder.add_gate b ~name:(Printf.sprintf "g%d" i) Graph.Or basics)
  in
  let top = Graph.Builder.add_gate b ~name:"top" Graph.Or gates in
  let g = Graph.Builder.build b ~top in
  let rgs = Cutset.minimal_risk_groups ~max_family:50 g in
  check Alcotest.int "20 singletons" 20 (List.length rgs);
  List.iter (fun rg -> check Alcotest.int "singleton" 1 (Array.length rg)) rgs

let test_and_budget_applies_after_minimize () =
  (* 2 sources over the SAME 20 components: the raw cross-product is
     400 sets, but every pair {a,b} is absorbed by the singleton {a},
     leaving 20 minimal RGs. A budget of 100 must not abort (contrast
     with test_max_family_budget, where components are disjoint and the
     400 survive minimization). *)
  let comps = List.init 20 (fun i -> Printf.sprintf "c%d" i) in
  let g = Graph.of_component_sets [ ("E1", comps); ("E2", comps) ] in
  let rgs = Cutset.minimal_risk_groups ~max_family:100 g in
  check Alcotest.int "20 singletons" 20 (List.length rgs)

let test_is_risk_group () =
  let g = figure_4a () in
  let id name = Option.get (Graph.find_basic g name) in
  check Alcotest.bool "A2 is RG" true (Cutset.is_risk_group g [ id "A2" ]);
  check Alcotest.bool "A1 is not" false (Cutset.is_risk_group g [ id "A1" ]);
  check Alcotest.bool "A1A2 is RG but not minimal" true
    (Cutset.is_risk_group g [ id "A1"; id "A2" ]);
  check Alcotest.bool "A1A2 not minimal" false
    (Cutset.is_minimal_risk_group g [ id "A1"; id "A2" ])

let test_rgset () =
  let s = Cutset.RgSet.create () in
  Cutset.RgSet.add s [| 1; 2 |];
  Cutset.RgSet.add s [| 1; 2 |];
  Cutset.RgSet.add s [| 3 |];
  check Alcotest.int "dedup" 2 (Cutset.RgSet.cardinal s);
  check Alcotest.bool "mem" true (Cutset.RgSet.mem s [| 1; 2 |]);
  check Alcotest.bool "not mem" false (Cutset.RgSet.mem s [| 2 |])

(* --- Sampling -------------------------------------------------------- *)

let test_sampling_finds_all_4a () =
  let g = figure_4a () in
  let rng = Prng.of_int 50 in
  let res = Sampling.run ~config:{ Sampling.default_config with Sampling.rounds = 2000 } rng g in
  let exact = Cutset.minimal_risk_groups g in
  check (Alcotest.float 1e-9) "full detection" 1.0
    (Sampling.detection_ratio ~found:res.Sampling.risk_groups ~all:exact)

let test_sampling_witnesses_minimal () =
  let g = figure_4c () in
  let rng = Prng.of_int 51 in
  let res = Sampling.run ~config:{ Sampling.default_config with Sampling.rounds = 500 } rng g in
  List.iter
    (fun rg ->
      check Alcotest.bool "shrunk to minimal" true
        (Cutset.is_minimal_risk_group g (Array.to_list rg)))
    res.Sampling.risk_groups

let test_sampling_no_shrink_records_witnesses () =
  let g = figure_4c () in
  let rng = Prng.of_int 52 in
  let config =
    { Sampling.default_config with Sampling.rounds = 500; Sampling.shrink = false }
  in
  let res = Sampling.run ~config rng g in
  (* Raw witnesses are risk groups (possibly non-minimal). *)
  List.iter
    (fun rg ->
      check Alcotest.bool "is RG" true (Cutset.is_risk_group g (Array.to_list rg)))
    res.Sampling.risk_groups

let test_sampling_zero_rounds () =
  let g = figure_4a () in
  let rng = Prng.of_int 53 in
  let res = Sampling.run ~config:{ Sampling.default_config with Sampling.rounds = 0 } rng g in
  check Alcotest.int "no rgs" 0 (List.length res.Sampling.risk_groups);
  check Alcotest.int "no positives" 0 res.Sampling.positive_rounds

let test_sampling_bias_extremes () =
  let g = figure_4a () in
  let rng = Prng.of_int 54 in
  let res =
    Sampling.run
      ~config:{ Sampling.default_config with Sampling.rounds = 50; Sampling.failure_bias = 1.0 }
      rng g
  in
  check Alcotest.int "all rounds positive" 50 res.Sampling.positive_rounds;
  let res0 =
    Sampling.run
      ~config:{ Sampling.default_config with Sampling.rounds = 50; Sampling.failure_bias = 0.0 }
      rng g
  in
  check Alcotest.int "no round positive" 0 res0.Sampling.positive_rounds

let test_sampling_event_probs () =
  (* use_event_probs honours per-event probabilities: prob-1 events
     always fail. *)
  let g =
    Graph.of_fault_sets [ ("E1", [ ("always", 1.0) ]); ("E2", [ ("always", 1.0) ]) ]
  in
  let rng = Prng.of_int 55 in
  let config =
    { Sampling.default_config with Sampling.rounds = 20; Sampling.use_event_probs = true }
  in
  let res = Sampling.run ~config rng g in
  check Alcotest.int "always positive" 20 res.Sampling.positive_rounds

let test_detection_ratio_empty_all () =
  check (Alcotest.float 1e-9) "vacuous" 1.0
    (Sampling.detection_ratio ~found:[] ~all:[])


let test_coverage_full_detection () =
  let g = figure_4a () in
  let rgs = Cutset.minimal_risk_groups g in
  let points =
    Sampling.coverage (Prng.of_int 70) g ~targets:rgs ~checkpoints:[ 10; 2000 ]
  in
  (match points with
  | [ early; late ] ->
      check Alcotest.int "first checkpoint" 10 early.Sampling.rounds;
      check Alcotest.int "second checkpoint" 2000 late.Sampling.rounds;
      check Alcotest.bool "monotone" true
        (late.Sampling.detected >= early.Sampling.detected);
      check (Alcotest.float 1e-9) "full coverage" 1.0 late.Sampling.fraction
  | _ -> Alcotest.fail "two points expected");
  (* empty target list: vacuous full coverage *)
  let vac = Sampling.coverage (Prng.of_int 70) g ~targets:[] ~checkpoints:[ 5 ] in
  check (Alcotest.float 1e-9) "vacuous" 1.0 (List.hd vac).Sampling.fraction

let test_coverage_bias_effect () =
  (* Larger failure bias covers large RGs far faster: the single
     minimal RG here has size 12, so a round covers it with
     probability bias^12 — near-certain over 200 rounds at 0.9,
     hopeless at 0.2. *)
  let sources = List.init 12 (fun i -> (Printf.sprintf "E%d" i, [ Printf.sprintf "c%d" i ])) in
  let g = Graph.of_component_sets sources in
  let rgs = Cutset.minimal_risk_groups g in
  check Alcotest.int "one big RG" 1 (List.length rgs);
  let at bias =
    (List.hd
       (Sampling.coverage ~failure_bias:bias (Prng.of_int 71) g ~targets:rgs
          ~checkpoints:[ 200 ]))
      .Sampling.fraction
  in
  check (Alcotest.float 1e-9) "0.9 covers" 1.0 (at 0.9);
  check (Alcotest.float 1e-9) "0.2 cannot" 0.0 (at 0.2)

let test_coverage_checkpoints_sorted_and_deduped () =
  let g = figure_4a () in
  let rgs = Cutset.minimal_risk_groups g in
  let points =
    Sampling.coverage (Prng.of_int 72) g ~targets:rgs
      ~checkpoints:[ 50; 10; 50 ]
  in
  check (Alcotest.list Alcotest.int) "sorted unique" [ 10; 50 ]
    (List.map (fun p -> p.Sampling.rounds) points)

(* --- Probability ----------------------------------------------------- *)

let test_figure_4b_probability () =
  let g = figure_4b () in
  let rgs = Cutset.minimal_risk_groups g in
  let pr = Probability.top_probability_exact g ~rgs in
  check (Alcotest.float 1e-12) "Pr(T) = 0.224" 0.224 pr;
  List.iter
    (fun rg ->
      let names = Cutset.names g rg in
      let imp =
        Probability.relative_importance ~top_probability:pr
          ~rg_probability:(Probability.rg_probability g rg)
      in
      if names = [ "A2" ] then
        check (Alcotest.float 1e-4) "I(A2)" 0.8929 imp
      else check (Alcotest.float 1e-4) "I(A1,A3)" 0.1339 imp)
    rgs

let test_monte_carlo_agrees () =
  let g = figure_4b () in
  let rgs = Cutset.minimal_risk_groups g in
  let exact = Probability.top_probability_exact g ~rgs in
  let mc = Probability.top_probability_mc ~rounds:200_000 (Prng.of_int 60) g in
  check Alcotest.bool "MC within 1%" true (abs_float (mc -. exact) < 0.01)

let test_missing_probability () =
  let g = figure_4a () in
  let rgs = Cutset.minimal_risk_groups g in
  check Alcotest.bool "raises" true
    (try
       ignore (Probability.top_probability_exact g ~rgs);
       false
     with Probability.Missing_probability _ -> true)

let test_empty_rgs_probability () =
  let g = figure_4b () in
  check (Alcotest.float 1e-12) "no RGs" 0. (Probability.top_probability_exact g ~rgs:[])

let test_dispatcher () =
  let g = figure_4b () in
  let rgs = Cutset.minimal_risk_groups g in
  let rng = Prng.of_int 61 in
  check (Alcotest.float 1e-12) "exact path" 0.224
    (Probability.top_probability ~exact_limit:10 rng g ~rgs);
  let approx = Probability.top_probability ~exact_limit:1 rng g ~rgs in
  check Alcotest.bool "mc path near" true (abs_float (approx -. 0.224) < 0.01)


(* --- Lifetime simulation ---------------------------------------------- *)

module Lifetime = Indaas_faultgraph.Lifetime

let test_lifetime_single_component () =
  (* One component with mtbf 1000, mttr 10: availability ~ 1000/1010. *)
  let g = Graph.of_component_sets [ ("E1", [ "c" ]) ] in
  let config =
    {
      Lifetime.horizon = 200_000.;
      Lifetime.rates_of = (fun _ -> Lifetime.rates ~mtbf:1000. ~mttr:10. ());
    }
  in
  let r = Lifetime.simulate ~config (Prng.of_int 80) g in
  let expected = 1000. /. 1010. in
  check Alcotest.bool "near steady state" true
    (abs_float (r.Lifetime.availability -. expected) < 0.01);
  check Alcotest.bool "transitions happened" true (r.Lifetime.transitions > 100)

let test_lifetime_redundancy_helps () =
  (* AND of two independent components beats a single one. *)
  let single = Graph.of_component_sets [ ("E1", [ "x" ]) ] in
  let pair = Graph.of_component_sets [ ("E1", [ "x" ]); ("E2", [ "y" ]) ] in
  let config =
    {
      Lifetime.horizon = 100_000.;
      Lifetime.rates_of = (fun _ -> Lifetime.rates ~mtbf:100. ~mttr:20. ());
    }
  in
  let a1 = Lifetime.mean_availability ~config ~runs:5 (Prng.of_int 81) single in
  let a2 = Lifetime.mean_availability ~config ~runs:5 (Prng.of_int 81) pair in
  check Alcotest.bool "redundancy helps" true (a2 > a1)

let test_lifetime_shared_component_hurts () =
  (* A deployment sharing one component is less available than a
     fully disjoint one. *)
  let shared =
    Graph.of_component_sets [ ("E1", [ "s"; "a" ]); ("E2", [ "s"; "b" ]) ]
  in
  let disjoint =
    Graph.of_component_sets [ ("E1", [ "p"; "a" ]); ("E2", [ "q"; "b" ]) ]
  in
  let config =
    {
      Lifetime.horizon = 100_000.;
      Lifetime.rates_of = (fun _ -> Lifetime.rates ~mtbf:100. ~mttr:30. ());
    }
  in
  let a_shared = Lifetime.mean_availability ~config ~runs:5 (Prng.of_int 82) shared in
  let a_disjoint =
    Lifetime.mean_availability ~config ~runs:5 (Prng.of_int 82) disjoint
  in
  check Alcotest.bool "shared dependency hurts availability" true
    (a_disjoint > a_shared)

let test_lifetime_accounting_consistent () =
  let g = Graph.of_component_sets [ ("E1", [ "c" ]) ] in
  let config =
    {
      Lifetime.horizon = 10_000.;
      Lifetime.rates_of = (fun _ -> Lifetime.rates ~mtbf:50. ~mttr:50. ());
    }
  in
  let r = Lifetime.simulate ~config (Prng.of_int 83) g in
  let sum =
    List.fold_left (fun acc o -> acc +. o.Lifetime.duration) 0. r.Lifetime.outages
  in
  check (Alcotest.float 1e-6) "downtime = sum of outages" r.Lifetime.downtime sum;
  check (Alcotest.float 1e-6) "availability consistent"
    (1. -. (r.Lifetime.downtime /. r.Lifetime.total_time))
    r.Lifetime.availability;
  List.iter
    (fun o ->
      check Alcotest.bool "outage has a culprit" true
        (o.Lifetime.failed_components <> []))
    r.Lifetime.outages

let test_lifetime_deterministic () =
  let g = figure_4a () in
  let run () = (Lifetime.simulate (Prng.of_int 84) g).Lifetime.availability in
  check (Alcotest.float 1e-12) "same seed, same result" (run ()) (run ())

let test_lifetime_validation () =
  check Alcotest.bool "bad rates" true
    (try
       ignore (Lifetime.rates ~mtbf:0. ());
       false
     with Invalid_argument _ -> true);
  let g = figure_4a () in
  check Alcotest.bool "bad horizon" true
    (try
       ignore
         (Lifetime.simulate
            ~config:{ Lifetime.default_config with Lifetime.horizon = -1. }
            (Prng.of_int 1) g);
       false
     with Invalid_argument _ -> true)


(* --- BDD --------------------------------------------------------------- *)

module Bdd = Indaas_faultgraph.Bdd

let test_bdd_matches_evaluate () =
  let g = figure_4c () in
  let m, top = Bdd.of_graph g in
  let basics = Graph.basic_ids g in
  let rng = Prng.of_int 90 in
  for _ = 1 to 500 do
    let module IS = Set.Make (Int) in
    let failed_set =
      Array.to_list basics |> List.filter (fun _ -> Prng.bool rng) |> IS.of_list
    in
    let failed id = IS.mem id failed_set in
    check Alcotest.bool "BDD = direct evaluation"
      (Graph.evaluate g ~failed)
      (Bdd.evaluate m top ~failed)
  done

let test_bdd_probability_figure_4b () =
  check (Alcotest.float 1e-12) "Pr(T) = 0.224" 0.224
    (Bdd.graph_probability (figure_4b ()))

let test_bdd_probability_matches_inclusion_exclusion () =
  (* random weighted component-set graphs: BDD = inclusion-exclusion *)
  let rng = Prng.of_int 91 in
  for _ = 1 to 30 do
    let sources =
      List.init
        (1 + Prng.int rng 3)
        (fun i ->
          ( Printf.sprintf "E%d" i,
            List.init
              (1 + Prng.int rng 4)
              (fun j -> (Printf.sprintf "c%d" (Prng.int rng 6), 0.1 +. (0.1 *. float_of_int j))) ))
    in
    (* dedup per-source components to avoid prob conflicts *)
    let sources =
      List.map
        (fun (s, cs) ->
          let seen = Hashtbl.create 8 in
          ( s,
            List.filter
              (fun (c, _) ->
                if Hashtbl.mem seen c then false
                else begin
                  Hashtbl.add seen c ();
                  true
                end)
              cs ))
        sources
    in
    (* assign a single consistent probability per name *)
    let prob_of_name = Hashtbl.create 8 in
    let sources =
      List.map
        (fun (s, cs) ->
          ( s,
            List.map
              (fun (c, p) ->
                match Hashtbl.find_opt prob_of_name c with
                | Some p0 -> (c, p0)
                | None ->
                    Hashtbl.add prob_of_name c p;
                    (c, p))
              cs ))
        sources
    in
    let g = Graph.of_fault_sets sources in
    let rgs = Cutset.minimal_risk_groups g in
    let exact = Probability.top_probability_exact g ~rgs in
    check (Alcotest.float 1e-9) "BDD = IE" exact (Bdd.graph_probability g)
  done

let test_bdd_kofn () =
  let b = Graph.Builder.create () in
  let ids =
    List.map
      (fun i -> Graph.Builder.add_basic b ~prob:0.5 (Printf.sprintf "x%d" i))
      [ 1; 2; 3 ]
  in
  let top = Graph.Builder.add_gate b ~name:"top" (Graph.Kofn 2) ids in
  let g = Graph.Builder.build b ~top in
  (* Pr(at least 2 of 3 at p=1/2) = 4/8 *)
  check (Alcotest.float 1e-12) "2-of-3" 0.5 (Bdd.graph_probability g);
  let m, tp = Bdd.of_graph g in
  (* 4 of 8 assignments fail the top event *)
  check (Alcotest.float 1e-9) "sat count" 4. (Bdd.sat_count m tp ~vars:3)

let test_bdd_sat_count () =
  let g = figure_4a () in
  let m, top = Bdd.of_graph g in
  (* failure states: A2 (4 of 8) plus A1&A3&!A2 (1) = 5 *)
  check (Alcotest.float 1e-9) "5 failing states" 5. (Bdd.sat_count m top ~vars:3)

let test_bdd_terminals () =
  let g = figure_4a () in
  let m, top = Bdd.of_graph g in
  check (Alcotest.option Alcotest.bool) "top not terminal" None
    (Bdd.is_terminal m top);
  check Alcotest.bool "has nodes" true (Bdd.node_count m top > 0);
  check Alcotest.bool "manager size sane" true (Bdd.size m >= Bdd.node_count m top)

let test_bdd_shares_structure () =
  (* A graph over n disjoint AND pairs keeps the BDD linear-ish, far
     below 2^n truth-table size. *)
  let sources =
    List.init 8 (fun i ->
        (Printf.sprintf "E%d" i, [ Printf.sprintf "c%d" i; "shared" ]))
  in
  let g = Graph.of_component_sets sources in
  let m, top = Bdd.of_graph g in
  check Alcotest.bool "compact" true (Bdd.node_count m top <= 32)

(* --- BDD minimal-RG engine ---------------------------------------------- *)

let test_bdd_engine_4a () =
  let g = figure_4a () in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "figure 4a"
    [ [ "A1"; "A3" ]; [ "A2" ] ]
    (rg_names g (Bdd.minimal_risk_groups g))

let test_bdd_engine_matches_enum () =
  (* Byte-identical families on the deep figure-4c graph: same RGs, same
     canonical order. *)
  let g = figure_4c () in
  check Alcotest.bool "identical families" true
    (Bdd.minimal_risk_groups g = Cutset.minimal_risk_groups g)

let test_bdd_engine_kofn () =
  let b = Graph.Builder.create () in
  let ids =
    List.map (fun i -> Graph.Builder.add_basic b (Printf.sprintf "x%d" i)) [ 1; 2; 3 ]
  in
  let top = Graph.Builder.add_gate b ~name:"top" (Graph.Kofn 2) ids in
  let g = Graph.Builder.build b ~top in
  check Alcotest.bool "identical families" true
    (Bdd.minimal_risk_groups g = Cutset.minimal_risk_groups g);
  check Alcotest.int "three pairs" 3 (List.length (Bdd.minimal_risk_groups g))

let test_bdd_engine_max_size () =
  let g = figure_4c () in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "singletons only"
    [ [ "ToR1" ]; [ "libc6" ] ]
    (rg_names g (Bdd.minimal_risk_groups ~max_size:1 g))

let test_bdd_engine_count () =
  let g = figure_4c () in
  check Alcotest.int "four minimal RGs" 4 (Bdd.minimal_rg_count g);
  (* counting must agree with materialization on a denser graph *)
  let comps prefix = List.init 12 (fun i -> Printf.sprintf "%s%d" prefix i) in
  let dense = Graph.of_component_sets [ ("E1", comps "a"); ("E2", comps "b") ] in
  check Alcotest.int "144 pairs" 144 (Bdd.minimal_rg_count dense)

let test_bdd_engine_survives_enum_budget () =
  (* The dense case the enumeration budget refuses: 2 x 20 disjoint
     components, 400 minimal RGs. The BDD engine has no family budget
     and must complete. *)
  let comps prefix = List.init 20 (fun i -> Printf.sprintf "%s%d" prefix i) in
  let g = Graph.of_component_sets [ ("E1", comps "a"); ("E2", comps "b") ] in
  check Alcotest.bool "enum refuses" true
    (try
       ignore (Cutset.minimal_risk_groups ~max_family:100 g);
       false
     with Cutset.Too_many_cut_sets _ -> true);
  let rgs = Bdd.minimal_risk_groups g in
  check Alcotest.int "400 pairs" 400 (List.length rgs);
  check Alcotest.bool "matches unbudgeted enum" true
    (rgs = Cutset.minimal_risk_groups g)

(* --- Importance --------------------------------------------------------- *)

module Importance = Indaas_faultgraph.Importance

let test_birnbaum_known () =
  (* Figure 4(b): T = A2 or (A1 and A3).
     Birnbaum(A2) = Pr(T|A2) - Pr(T|!A2) = 1 - 0.03 = 0.97
     Birnbaum(A1) = (0.2 + 0.8*0.3) - 0.2 = 0.24 *)
  let g = figure_4b () in
  let id name = Option.get (Graph.find_basic g name) in
  check (Alcotest.float 1e-9) "A2" 0.97 (Importance.birnbaum g ~component:(id "A2"));
  check (Alcotest.float 1e-9) "A1" 0.24 (Importance.birnbaum g ~component:(id "A1"))

let test_fussell_vesely_known () =
  (* FV(A2) = Pr(A2)/Pr(T) = 0.2/0.224; FV(A1) = Pr(A1*A3)/Pr(T) *)
  let g = figure_4b () in
  let rgs = Cutset.minimal_risk_groups g in
  let id name = Option.get (Graph.find_basic g name) in
  check (Alcotest.float 1e-9) "A2" (0.2 /. 0.224)
    (Importance.fussell_vesely g ~rgs ~component:(id "A2"));
  check (Alcotest.float 1e-9) "A1" (0.03 /. 0.224)
    (Importance.fussell_vesely g ~rgs ~component:(id "A1"))

let test_rank_components () =
  let g = figure_4b () in
  let rgs = Cutset.minimal_risk_groups g in
  let ranked = Importance.rank_components g ~rgs in
  check Alcotest.int "all components" 3 (List.length ranked);
  check Alcotest.string "A2 most important" "A2"
    (List.hd ranked).Importance.component_name;
  let text = Importance.render ranked in
  check Alcotest.bool "renders" true
    (Astring.String.is_infix ~affix:"Fussell-Vesely" text)

let test_importance_requires_probabilities () =
  let g = figure_4a () in
  check Alcotest.bool "raises" true
    (try
       ignore (Importance.birnbaum g ~component:0);
       false
     with Probability.Missing_probability _ -> true)

(* --- Compose --------------------------------------------------------- *)

let test_compose_shares_basics () =
  let g1 = Graph.of_component_sets [ ("E1", [ "shared"; "a" ]) ] in
  let g2 = Graph.of_component_sets [ ("E2", [ "shared"; "b" ]) ] in
  let g = Compose.compose ~name:"combined" Graph.And [ g1; g2 ] in
  let rgs = rg_names g (Cutset.minimal_risk_groups g) in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "shared becomes singleton"
    [ [ "a"; "b" ]; [ "shared" ] ]
    rgs

let test_compose_or () =
  let g1 = Graph.of_component_sets [ ("E1", [ "a" ]) ] in
  let g2 = Graph.of_component_sets [ ("E2", [ "b" ]) ] in
  let g = Compose.compose ~name:"either" Graph.Or [ g1; g2 ] in
  let rgs = rg_names g (Cutset.minimal_risk_groups g) in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "both singletons" [ [ "a" ]; [ "b" ] ] rgs

let test_compose_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Compose.compose: empty list")
    (fun () -> ignore (Compose.compose ~name:"x" Graph.And []))


let test_compose_single_identity () =
  (* composing one graph under an AND keeps its minimal RGs *)
  let g = figure_4a () in
  let composed = Compose.compose ~name:"wrap" Graph.And [ g ] in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "same RGs"
    (rg_names g (Cutset.minimal_risk_groups g))
    (rg_names composed (Cutset.minimal_risk_groups composed))

let test_replace_basic () =
  (* Refine "storage" into its own redundant pair. *)
  let outer = Graph.of_component_sets [ ("E1", [ "storage"; "cpu" ]) ] in
  let sub =
    Graph.of_component_sets [ ("disk1", [ "d1" ]); ("disk2", [ "d2" ]) ]
  in
  let g = Compose.replace_basic_with outer ~basic:"storage" sub in
  let rgs = rg_names g (Cutset.minimal_risk_groups g) in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "storage refined"
    [ [ "cpu" ]; [ "d1"; "d2" ] ]
    rgs

let test_replace_missing_basic () =
  let outer = Graph.of_component_sets [ ("E1", [ "a" ]) ] in
  Alcotest.check_raises "unknown basic"
    (Invalid_argument "Compose.replace_basic_with: no basic event \"nope\"")
    (fun () -> ignore (Compose.replace_basic_with outer ~basic:"nope" outer))

(* --- Dot ------------------------------------------------------------- *)

let test_dot_contains_nodes () =
  let g = figure_4a () in
  let dot = Dot.to_dot g in
  check Alcotest.bool "digraph" true (Astring.String.is_prefix ~affix:"digraph" dot);
  List.iter
    (fun name ->
      check Alcotest.bool name true (Astring.String.is_infix ~affix:name dot))
    [ "A1"; "A2"; "A3"; "AND"; "OR" ]

let test_dot_highlight () =
  let g = figure_4a () in
  let rgs = Cutset.minimal_risk_groups g in
  let dot = Dot.to_dot ~highlight:(List.hd rgs) g in
  check Alcotest.bool "fill color" true
    (Astring.String.is_infix ~affix:"fillcolor" dot)

let test_dot_escapes () =
  let g = Graph.of_component_sets [ ("E\"1", [ "a\"b" ]) ] in
  let dot = Dot.to_dot g in
  check Alcotest.bool "escaped quote" true
    (Astring.String.is_infix ~affix:"\\\"" dot)

(* --- qcheck: random monotone graphs ---------------------------------- *)

(* Random two-level component-set graphs over a small universe. *)
let gen_component_sets =
  QCheck.make
    ~print:(fun sets ->
      String.concat "; "
        (List.map (fun (s, cs) -> s ^ ":" ^ String.concat "," cs) sets))
    QCheck.Gen.(
      let component = map (Printf.sprintf "c%d") (int_range 0 7) in
      let source i =
        map
          (fun cs -> (Printf.sprintf "E%d" i, List.sort_uniq compare cs))
          (list_size (int_range 1 4) component)
      in
      int_range 1 4 >>= fun n -> flatten_l (List.init n source))

let prop_minimal_rgs_are_rgs =
  QCheck.Test.make ~name:"every minimal RG is an RG" ~count:300 gen_component_sets
    (fun sets ->
      let g = Graph.of_component_sets sets in
      List.for_all
        (fun rg -> Cutset.is_minimal_risk_group g (Array.to_list rg))
        (Cutset.minimal_risk_groups g))

let prop_sampling_subset_of_minimal =
  QCheck.Test.make ~name:"sampled (shrunk) RGs are minimal RGs" ~count:100
    gen_component_sets (fun sets ->
      let g = Graph.of_component_sets sets in
      let exact = Cutset.minimal_risk_groups g in
      let tbl = Cutset.RgSet.create () in
      List.iter (Cutset.RgSet.add tbl) exact;
      let res =
        Sampling.run
          ~config:{ Sampling.default_config with Sampling.rounds = 300 }
          (Prng.of_int (Hashtbl.hash sets))
          g
      in
      List.for_all (Cutset.RgSet.mem tbl) res.Sampling.risk_groups)

let prop_top_event_iff_some_rg_contained =
  QCheck.Test.make ~name:"evaluate agrees with cut-set semantics" ~count:200
    gen_component_sets (fun sets ->
      let g = Graph.of_component_sets sets in
      let rgs = Cutset.minimal_risk_groups g in
      let basics = Graph.basic_ids g in
      let rng = Prng.of_int (Hashtbl.hash sets) in
      let ok = ref true in
      for _ = 1 to 20 do
        let failed = Array.map (fun _ -> Prng.bool rng) basics in
        let failed_set =
          Array.to_list basics |> List.filteri (fun i _ -> failed.(i))
        in
        let module IS = Set.Make (Int) in
        let fs = IS.of_list failed_set in
        let evaluated = Graph.evaluate g ~failed:(fun id -> IS.mem id fs) in
        let covered =
          List.exists
            (fun rg -> Array.for_all (fun id -> IS.mem id fs) rg)
            rgs
        in
        if evaluated <> covered then ok := false
      done;
      !ok)

(* Random multi-level DAGs with AND/OR/k-of-n gates, derived
   deterministically from a seed so qcheck can shrink over seeds. *)
let random_dag seed =
  let rng = Prng.of_int seed in
  let b = Graph.Builder.create () in
  let n_basics = 3 + Prng.int rng 6 in
  let basics =
    List.init n_basics (fun i -> Graph.Builder.add_basic b (Printf.sprintf "c%d" i))
  in
  let nodes = ref (Array.of_list basics) in
  let top = ref (List.hd basics) in
  let n_gates = 2 + Prng.int rng 6 in
  for i = 1 to n_gates do
    let pool = !nodes in
    let n_children = 1 + Prng.int rng (min 4 (Array.length pool)) in
    let children =
      List.sort_uniq compare
        (List.init n_children (fun _ -> pool.(Prng.int rng (Array.length pool))))
    in
    let arity = List.length children in
    let kind =
      match Prng.int rng 3 with
      | 0 -> Graph.And
      | 1 -> Graph.Or
      | _ -> Graph.Kofn (1 + Prng.int rng arity)
    in
    let gid = Graph.Builder.add_gate b ~name:(Printf.sprintf "g%d" i) kind children in
    nodes := Array.append pool [| gid |];
    top := gid
  done;
  Graph.Builder.build b ~top:!top

let prop_engines_agree =
  QCheck.Test.make ~name:"BDD and enumeration engines agree on random DAGs"
    ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let g = random_dag seed in
      let enum = Cutset.minimal_risk_groups g in
      let bdd = Bdd.minimal_risk_groups g in
      (* identical families in identical canonical order *)
      enum = bdd
      && List.for_all
           (fun rg -> Cutset.is_minimal_risk_group g (Array.to_list rg))
           bdd)

let prop_engines_agree_component_sets =
  QCheck.Test.make
    ~name:"engines agree on random component sets (with max_size)" ~count:200
    gen_component_sets (fun sets ->
      let g = Graph.of_component_sets sets in
      Cutset.minimal_risk_groups g = Bdd.minimal_risk_groups g
      && Cutset.minimal_risk_groups ~max_size:2 g
         = Bdd.minimal_risk_groups ~max_size:2 g)

let () =
  Alcotest.run "faultgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "builder shares basics" `Quick test_builder_shares_basics;
          Alcotest.test_case "prob conflicts" `Quick test_builder_prob_conflicts;
          Alcotest.test_case "prob range" `Quick test_builder_prob_range;
          Alcotest.test_case "gate validation" `Quick test_builder_gate_validation;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "unreachable excluded" `Quick test_unreachable_excluded;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "evaluate or/and" `Quick test_evaluate_or_and;
          Alcotest.test_case "evaluate k-of-n" `Quick test_evaluate_kofn;
          Alcotest.test_case "component-set downgrade" `Quick
            test_component_sets_downgrade;
          Alcotest.test_case "of_component_sets validation" `Quick
            test_of_component_sets_validation;
        ] );
      ( "cutset",
        [
          Alcotest.test_case "figure 4a" `Quick test_minimal_rgs_4a;
          Alcotest.test_case "figure 4c" `Quick test_minimal_rgs_4c;
          Alcotest.test_case "minimality" `Quick test_minimal_rgs_are_minimal;
          Alcotest.test_case "k-of-n cut sets" `Quick test_kofn_cutsets;
          Alcotest.test_case "max_size prunes" `Quick test_max_size_prunes;
          Alcotest.test_case "max_family budget" `Quick test_max_family_budget;
          Alcotest.test_case "OR budget is post-minimization" `Quick
            test_or_budget_applies_after_minimize;
          Alcotest.test_case "AND budget is post-minimization" `Quick
            test_and_budget_applies_after_minimize;
          Alcotest.test_case "is_risk_group" `Quick test_is_risk_group;
          Alcotest.test_case "RgSet" `Quick test_rgset;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "finds all (4a)" `Quick test_sampling_finds_all_4a;
          Alcotest.test_case "witnesses minimal" `Quick test_sampling_witnesses_minimal;
          Alcotest.test_case "raw witnesses" `Quick
            test_sampling_no_shrink_records_witnesses;
          Alcotest.test_case "zero rounds" `Quick test_sampling_zero_rounds;
          Alcotest.test_case "bias extremes" `Quick test_sampling_bias_extremes;
          Alcotest.test_case "event probs" `Quick test_sampling_event_probs;
          Alcotest.test_case "detection ratio vacuous" `Quick
            test_detection_ratio_empty_all;
          Alcotest.test_case "coverage full detection" `Quick
            test_coverage_full_detection;
          Alcotest.test_case "coverage bias effect" `Quick test_coverage_bias_effect;
          Alcotest.test_case "coverage checkpoints" `Quick
            test_coverage_checkpoints_sorted_and_deduped;
        ] );
      ( "probability",
        [
          Alcotest.test_case "figure 4b" `Quick test_figure_4b_probability;
          Alcotest.test_case "monte carlo agrees" `Slow test_monte_carlo_agrees;
          Alcotest.test_case "missing probability" `Quick test_missing_probability;
          Alcotest.test_case "no RGs" `Quick test_empty_rgs_probability;
          Alcotest.test_case "dispatcher" `Quick test_dispatcher;
        ] );
      ( "compose",
        [
          Alcotest.test_case "shares basics" `Quick test_compose_shares_basics;
          Alcotest.test_case "or composition" `Quick test_compose_or;
          Alcotest.test_case "empty" `Quick test_compose_empty;
          Alcotest.test_case "single identity" `Quick test_compose_single_identity;
          Alcotest.test_case "replace basic" `Quick test_replace_basic;
          Alcotest.test_case "replace missing" `Quick test_replace_missing_basic;
        ] );
      ( "dot",
        [
          Alcotest.test_case "contains nodes" `Quick test_dot_contains_nodes;
          Alcotest.test_case "highlight" `Quick test_dot_highlight;
          Alcotest.test_case "escapes" `Quick test_dot_escapes;
        ] );
      ( "bdd",
        [
          Alcotest.test_case "matches evaluate" `Quick test_bdd_matches_evaluate;
          Alcotest.test_case "figure 4b probability" `Quick
            test_bdd_probability_figure_4b;
          Alcotest.test_case "BDD = inclusion-exclusion" `Quick
            test_bdd_probability_matches_inclusion_exclusion;
          Alcotest.test_case "k-of-n" `Quick test_bdd_kofn;
          Alcotest.test_case "sat count" `Quick test_bdd_sat_count;
          Alcotest.test_case "terminals/size" `Quick test_bdd_terminals;
          Alcotest.test_case "structure sharing" `Quick test_bdd_shares_structure;
        ] );
      ( "bdd-rg-engine",
        [
          Alcotest.test_case "figure 4a" `Quick test_bdd_engine_4a;
          Alcotest.test_case "matches enumeration (4c)" `Quick
            test_bdd_engine_matches_enum;
          Alcotest.test_case "k-of-n" `Quick test_bdd_engine_kofn;
          Alcotest.test_case "max_size filter" `Quick test_bdd_engine_max_size;
          Alcotest.test_case "minimal_rg_count" `Quick test_bdd_engine_count;
          Alcotest.test_case "survives enumeration budget" `Quick
            test_bdd_engine_survives_enum_budget;
        ] );
      ( "importance",
        [
          Alcotest.test_case "birnbaum known" `Quick test_birnbaum_known;
          Alcotest.test_case "fussell-vesely known" `Quick test_fussell_vesely_known;
          Alcotest.test_case "rank components" `Quick test_rank_components;
          Alcotest.test_case "needs probabilities" `Quick
            test_importance_requires_probabilities;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "single component steady state" `Quick
            test_lifetime_single_component;
          Alcotest.test_case "redundancy helps" `Quick test_lifetime_redundancy_helps;
          Alcotest.test_case "shared component hurts" `Quick
            test_lifetime_shared_component_hurts;
          Alcotest.test_case "accounting consistent" `Quick
            test_lifetime_accounting_consistent;
          Alcotest.test_case "deterministic" `Quick test_lifetime_deterministic;
          Alcotest.test_case "validation" `Quick test_lifetime_validation;
        ] );
      ( "properties",
        [
          qtest prop_minimal_rgs_are_rgs;
          qtest prop_sampling_subset_of_minimal;
          qtest prop_top_event_iff_some_rg_contained;
          qtest prop_engines_agree;
          qtest prop_engines_agree_component_sets;
        ] );
    ]
