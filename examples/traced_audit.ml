(* Observability end-to-end: run an instrumented SIA audit under a
   scoped registry on a virtual clock, inspect the span tree and
   metrics from OCaml, and export the run as a Chrome trace_event
   file (open it in about:tracing or https://ui.perfetto.dev).

   Run with: dune exec examples/traced_audit.exe *)

module Depdb = Indaas_depdata.Depdb
module Audit = Indaas_sia.Audit
module Span = Indaas_obs.Span
module Metrics = Indaas_obs.Metrics
module Registry = Indaas_obs.Registry
module Export = Indaas_obs.Export

(* A deterministic stand-in for Resilience.Vclock: each read advances
   one microsecond. With timestamps and span ids both functions of
   the scope's configuration, this program prints byte-identically on
   every run — the same contract `indaas --trace` relies on under
   fault injection. *)
let virtual_clock () =
  let now = ref 0L in
  fun () ->
    now := Int64.add !now 1_000L;
    !now

let () =
  print_endline "== Traced audit ==";
  let db =
    Depdb.of_string
      {|
<src="S1" dst="Internet" route="ToR1,Core1"/>
<src="S1" dst="Internet" route="ToR1,Core2"/>
<src="S2" dst="Internet" route="ToR1,Core1"/>
<src="S2" dst="Internet" route="ToR1,Core2"/>
<hw="S1" type="Disk" dep="S1-disk"/>
<hw="S2" type="Disk" dep="S2-disk"/>
|}
  in

  (* The audit pipeline is instrumented throughout; all of it records
     into whatever registry is current. with_scope installs a fresh
     enabled one and hands the previous registry back afterwards, so
     examples and tests never disturb global state. *)
  let report, scoped =
    Registry.with_scope ~seed:42 ~clock:(virtual_clock ()) (fun _ ->
        Registry.with_span "audit" (fun () ->
            Registry.with_span "collect" (fun () -> db) |> fun db ->
            Audit.audit db (Audit.request [ "S1"; "S2" ])))
  in
  Printf.printf "risk groups: %d (%d unexpected)\n\n"
    (List.length report.Audit.ranked)
    (List.length report.Audit.unexpected);

  (* The span tree: collection, graph build, minimization (with the
     engine choice as an attribute), ranking — durations are virtual. *)
  print_endline "span tree:";
  print_string (Export.render_spans scoped);

  (* The metric stores: counters from the cut-set kernel and the
     builder, histograms of RG and family sizes. *)
  print_endline "";
  print_string (Metrics.render (Registry.metrics scoped));

  (* Every root span is a well-formed tree — children strictly inside
     their parents, everything closed. *)
  let roots = Registry.roots scoped in
  Printf.printf "\nroots well-formed: %b\n"
    (List.for_all Span.well_formed roots);

  (* Chrome trace_event export, the same file `indaas sia --trace`
     writes. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "indaas-traced-audit.json"
  in
  Export.write_chrome_trace scoped ~path;
  Printf.printf "Chrome trace written to %s\n" path
