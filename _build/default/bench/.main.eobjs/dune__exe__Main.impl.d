bench/main.ml: Array Bench_ablation Bench_cases Bench_common Bench_fig7 Bench_fig8 Bench_fig9 Bench_kernels Bench_tables Bench_validation Indaas_util List Printf Sys
