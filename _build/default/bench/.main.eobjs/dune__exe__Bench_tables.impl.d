bench/bench_tables.ml: Bench_common Char Indaas Indaas_depdata Indaas_pia Indaas_topology Indaas_util List Printf String
