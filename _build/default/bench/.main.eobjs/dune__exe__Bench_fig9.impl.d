bench/bench_fig9.ml: Array Bench_common Fun Indaas_crypto Indaas_depdata Indaas_faultgraph Indaas_pia Indaas_util List Printf
