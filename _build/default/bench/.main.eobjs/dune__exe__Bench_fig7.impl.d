bench/bench_fig7.ml: Bench_common Indaas_depdata Indaas_faultgraph Indaas_sia Indaas_topology Indaas_util List Printf
