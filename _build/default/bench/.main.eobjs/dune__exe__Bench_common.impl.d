bench/bench_common.ml: Indaas_util Printf String
