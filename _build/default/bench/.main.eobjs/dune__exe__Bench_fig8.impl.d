bench/bench_fig8.ml: Array Bench_common Indaas_crypto Indaas_depdata Indaas_pia Indaas_smpc Indaas_util List
