bench/main.mli:
