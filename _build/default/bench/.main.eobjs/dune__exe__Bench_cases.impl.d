bench/bench_cases.ml: Bench_common Indaas Indaas_pia Indaas_sia Indaas_util List Printf String
