bench/bench_validation.ml: Array Bench_common Indaas Indaas_depdata Indaas_faultgraph Indaas_pia Indaas_sia Indaas_util List Printf String
