(* Validation: does the audited independence actually predict uptime?

   Not a paper table — a consistency experiment the paper's premise
   implies (§1: unexpected common dependencies cause correlated
   failures): simulate component lifetimes over the audited fault
   graphs and check that

   1. the §6.2.1 winning rack pair out-lives the losing one, and
   2. across the Table 2 clouds, measured availability of each 2-way
      deployment ranks (inversely) with its Jaccard similarity. *)

open Bench_common
module Scenario = Indaas.Scenario
module Sia_audit = Indaas_sia.Audit
module Graph = Indaas_faultgraph.Graph
module Lifetime = Indaas_faultgraph.Lifetime
module Catalog = Indaas_depdata.Catalog
module Jaccard = Indaas_pia.Jaccard
module Componentset = Indaas_pia.Componentset
module Prng = Indaas_util.Prng
module Table = Indaas_util.Table

let config =
  {
    Lifetime.horizon = 200_000.;
    Lifetime.rates_of = (fun _ -> Lifetime.rates ~mtbf:1000. ~mttr:10. ());
  }

let network_validation () =
  subheading "network case: best-ranked vs worst-ranked rack pair";
  let case = Scenario.run_network_case () in
  let runs = scale ~quick:2 ~standard:5 ~full:20 in
  let best = List.hd case.Scenario.reports in
  let worst =
    List.nth case.Scenario.reports (List.length case.Scenario.reports - 1)
  in
  let availability r =
    Lifetime.mean_availability ~config ~runs (Prng.of_int 0x7A) r.Sia_audit.graph
  in
  let a_best = availability best and a_worst = availability worst in
  Printf.printf "   best  %s: availability %.5f (0 unexpected RGs)\n"
    (String.concat "+" best.Sia_audit.servers)
    a_best;
  Printf.printf "   worst %s: availability %.5f (%d unexpected RGs)\n"
    (String.concat "+" worst.Sia_audit.servers)
    a_worst
    (List.length worst.Sia_audit.unexpected);
  note "audited independence ordering %s by simulated uptime"
    (if a_best > a_worst then "CONFIRMED" else "NOT confirmed")

(* Spearman rank correlation between two orderings of the same items. *)
let spearman xs ys =
  let rank values =
    let indexed = List.mapi (fun i v -> (v, i)) values in
    let sorted = List.sort compare indexed in
    let ranks = Array.make (List.length values) 0. in
    List.iteri (fun rank (_, original) -> ranks.(original) <- float_of_int rank) sorted;
    ranks
  in
  let rx = rank xs and ry = rank ys in
  let n = Array.length rx in
  let d2 = ref 0. in
  for i = 0 to n - 1 do
    d2 := !d2 +. ((rx.(i) -. ry.(i)) ** 2.)
  done;
  1. -. (6. *. !d2 /. float_of_int (n * ((n * n) - 1)))

let software_validation () =
  subheading "software case: Jaccard vs simulated availability over all 6 pairs";
  let runs = scale ~quick:2 ~standard:5 ~full:20 in
  let clouds =
    List.mapi
      (fun i app -> (Printf.sprintf "Cloud%d" (i + 1), Catalog.packages app))
      Catalog.all_applications
  in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "deployment"; "Jaccard"; "simulated availability" ]
  in
  let rows =
    pairs clouds
    |> List.map (fun ((name_a, pkgs_a), (name_b, pkgs_b)) ->
           let j =
             Jaccard.pairwise
               (Componentset.of_list pkgs_a)
               (Componentset.of_list pkgs_b)
           in
           let graph =
             Graph.of_component_sets [ (name_a, pkgs_a); (name_b, pkgs_b) ]
           in
           let avail =
             Lifetime.mean_availability ~config ~runs (Prng.of_int 0x7B) graph
           in
           (Printf.sprintf "%s & %s" name_a name_b, j, avail))
  in
  let rows = List.sort (fun (_, j1, _) (_, j2, _) -> compare j1 j2) rows in
  List.iter
    (fun (label, j, avail) ->
      Table.add_row t
        [ label; Printf.sprintf "%.4f" j; Printf.sprintf "%.5f" avail ])
    rows;
  Table.print t;
  let js = List.map (fun (_, j, _) -> j) rows in
  let negated_avail = List.map (fun (_, _, a) -> -.a) rows in
  let rho = spearman js negated_avail in
  note "Spearman rank correlation (Jaccard vs unavailability): %.2f" rho;
  note "(1.0 = audited similarity ranking exactly predicts downtime ranking)"

let run () =
  heading "Validation: independence audits vs simulated availability";
  network_validation ();
  software_validation ()
