(* Figure 8: PIA system overheads — P-SOP vs the Kissner–Song (KS)
   baseline, bandwidth (8a) and computational time (8b), for k = 2, 3,
   4 providers across growing per-provider dataset sizes.

   Scaled per DESIGN.md substitution 3: P-SOP runs with 256-bit
   commutative keys, KS with 64-bit Paillier moduli (a concession that
   *favours* KS; it still loses by orders of magnitude), and dataset
   sizes are in the hundreds rather than 10^3..10^5. Both protocols'
   costs are linear in n per element-operation, so the measured series
   extrapolate directly; the claims that matter — P-SOP's modest,
   linear cost, and KS's much steeper compute growth — are visible
   as measured. *)

open Bench_common
module Catalog = Indaas_depdata.Catalog
module Psop = Indaas_pia.Psop
module Ks = Indaas_pia.Ks
module Transport = Indaas_pia.Transport
module Commutative = Indaas_crypto.Commutative
module Gmw = Indaas_smpc.Gmw
module Garble = Indaas_smpc.Garble
module Bloompsi = Indaas_pia.Bloompsi
module Prng = Indaas_util.Prng
module Table = Indaas_util.Table

let shared_fraction = 0.3

(* The generic-SMPC routes the paper rejects up front (§4.2, Xiao et
   al.): GMW (one oblivious transfer per AND gate) and Yao garbled
   circuits (hashes per AND gate, OT only per evaluator input) over
   the O(n²·ℓ)-AND-gate intersection circuit. Only toy sizes
   terminate; the growth law is the finding. *)
let smpc_rows rng =
  let gmw_sizes = scale ~quick:[ 4; 8 ] ~standard:[ 4; 8; 16; 32 ] ~full:[ 8; 16; 32; 64 ] in
  let yao_sizes =
    scale ~quick:[ 8; 16 ] ~standard:[ 16; 32; 64; 128 ] ~full:[ 32; 64; 128; 256 ]
  in
  let gmw =
    List.map
      (fun n ->
        let datasets =
          Catalog.synthetic_sets rng ~providers:2 ~elements:n ~shared_fraction
        in
        let (r, _), elapsed =
          Indaas_util.Timing.time (fun () ->
              Gmw.intersection_cardinality ~ot_bits:128 ~tag_bits:16 rng
                datasets.(0) datasets.(1))
        in
        (("SMPC-GMW", 2, n), r.Gmw.bytes, r.Gmw.bytes / 2, elapsed))
      gmw_sizes
  in
  let yao =
    List.map
      (fun n ->
        let datasets =
          Catalog.synthetic_sets rng ~providers:2 ~elements:n ~shared_fraction
        in
        let (r, _), elapsed =
          Indaas_util.Timing.time (fun () ->
              Garble.intersection_cardinality ~ot_bits:128 ~tag_bits:16 rng
                datasets.(0) datasets.(1))
        in
        (("SMPC-Yao", 2, n), r.Garble.bytes, r.Garble.bytes / 2, elapsed))
      yao_sizes
  in
  gmw @ yao

(* The hashing-only Bloom-filter estimator (Zander et al., the paper's
   scalable-PSI-CA reference): constant traffic, microsecond compute,
   estimation error instead of exactness. *)
let bloom_rows rng sizes =
  List.map
    (fun n ->
      let datasets =
        Catalog.synthetic_sets rng ~providers:2 ~elements:n ~shared_fraction
      in
      let r, elapsed =
        Indaas_util.Timing.time (fun () -> Bloompsi.run ~bits:65536 rng datasets)
      in
      ( ("Bloom", 2, n),
        Transport.total_bytes r.Bloompsi.transport,
        Transport.max_party_bytes r.Bloompsi.transport,
        elapsed ))
    sizes

let run () =
  heading "Figure 8: PIA system overheads (P-SOP vs KS vs generic SMPC)";
  let provider_counts = [ 2; 3; 4 ] in
  let psop_sizes =
    scale ~quick:[ 100; 250 ] ~standard:[ 250; 500; 1000; 2000 ]
      ~full:[ 500; 1000; 2000; 4000; 8000 ]
  in
  let ks_sizes =
    scale ~quick:[ 25; 50 ] ~standard:[ 50; 100; 200 ] ~full:[ 100; 200; 400 ]
  in
  let rng = Prng.of_int 0xF18 in
  let params = Commutative.params_pohlig_hellman ~bits:256 rng in

  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      [ "protocol"; "k"; "n"; "traffic (total)"; "per party"; "compute" ]
  in
  let psop_rows =
    List.concat_map
      (fun k ->
        List.map
          (fun n ->
            let datasets =
              Catalog.synthetic_sets rng ~providers:k ~elements:n ~shared_fraction
              |> Array.map (fun l -> l)
            in
            let r, elapsed =
              Indaas_util.Timing.time (fun () -> Psop.run ~params rng datasets)
            in
            ( ("P-SOP", k, n),
              Transport.total_bytes r.Psop.transport,
              Transport.max_party_bytes r.Psop.transport,
              elapsed ))
          psop_sizes)
      provider_counts
  in
  let ks_rows =
    List.concat_map
      (fun k ->
        List.map
          (fun n ->
            let datasets =
              Catalog.synthetic_sets rng ~providers:k ~elements:n ~shared_fraction
            in
            let r, elapsed =
              Indaas_util.Timing.time (fun () -> Ks.run ~key_bits:64 rng datasets)
            in
            ( ("KS", k, n),
              Transport.total_bytes r.Ks.transport,
              Transport.max_party_bytes r.Ks.transport,
              elapsed ))
          ks_sizes)
      provider_counts
  in
  let smpc = smpc_rows rng in
  let bloom = bloom_rows rng psop_sizes in
  List.iter
    (fun ((name, k, n), total, per_party, elapsed) ->
      Table.add_row t
        [
          name; string_of_int k; string_of_int n; bytes total; bytes per_party;
          seconds elapsed;
        ])
    (psop_rows @ ks_rows @ smpc @ bloom);
  Table.print t;

  subheading "shape check (paper: KS bandwidth grows faster with k; KS compute";
  note "is orders of magnitude above P-SOP and grows superlinearly in n)";
  let find rows name k n =
    List.find_map
      (fun ((name', k', n'), total, _, elapsed) ->
        if name' = name && k' = k && n' = n then Some (total, elapsed) else None)
      rows
  in
  let psop_n = List.hd (List.rev psop_sizes) in
  let ks_n = List.hd (List.rev ks_sizes) in
  (* SMPC growth: time per doubling of n. *)
  (let gmw_only = List.filter (fun ((nm, _, _), _, _, _) -> nm = "SMPC-GMW") smpc in
   match gmw_only with
   | _ :: _ :: _ ->
       let (_, _, n_last), _, _, t_last = List.nth gmw_only (List.length gmw_only - 1) in
       let (_, _, n_prev), _, _, t_prev = List.nth gmw_only (List.length gmw_only - 2) in
       note "SMPC-GMW: %.1fx more compute from n=%d to n=%d -- quadratic in n;"
         (t_last /. t_prev) n_prev n_last;
       note "Yao's garbled circuits cut the constant (hashes, not OTs, per AND)";
       note "but stay quadratic: at the paper's hundreds of components both are";
       note "hours, which is why INDaaS abandons generic SMPC for P-SOP (4.2)"
   | _ -> ());
  (match (find psop_rows "P-SOP" 2 psop_n, find psop_rows "P-SOP" 4 psop_n) with
  | Some (b2, _), Some (b4, _) ->
      note "P-SOP traffic k=2 -> k=4 at n=%d: %s -> %s (%.1fx)" psop_n (bytes b2)
        (bytes b4)
        (float_of_int b4 /. float_of_int b2)
  | _ -> ());
  (match (find ks_rows "KS" 2 ks_n, find ks_rows "KS" 4 ks_n) with
  | Some (b2, _), Some (b4, _) ->
      note "KS    traffic k=2 -> k=4 at n=%d: %s -> %s (%.1fx)" ks_n (bytes b2)
        (bytes b4)
        (float_of_int b4 /. float_of_int b2)
  | _ -> ());
  (match (find psop_rows "P-SOP" 2 ks_n, find ks_rows "KS" 2 ks_n) with
  | Some (_, tp), Some (_, tk) ->
      note "compute at k=2, n=%d: P-SOP %s vs KS %s (%.0fx) -- despite KS running"
        ks_n (seconds tp) (seconds tk) (tk /. tp);
      note "64-bit keys against P-SOP's 256-bit"
  | _ ->
      (* P-SOP series may not include the small KS size; measure it. *)
      let datasets =
        Catalog.synthetic_sets rng ~providers:2 ~elements:ks_n ~shared_fraction
      in
      let _, tp = Indaas_util.Timing.time (fun () -> Psop.run ~params rng datasets) in
      (match find ks_rows "KS" 2 ks_n with
      | Some (_, tk) ->
          note "compute at k=2, n=%d: P-SOP %s vs KS %s (%.0fx)" ks_n (seconds tp)
            (seconds tk) (tk /. tp)
      | None -> ()))
