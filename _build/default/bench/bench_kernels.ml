(* Bechamel micro-benchmarks of the computational kernels every
   experiment is built from: bignum modexp (the unit of P-SOP/KS
   cost), hashing, fault-graph evaluation (the unit of sampling cost),
   minimal-cut-set computation, and one P-SOP element operation. *)

open Bechamel
open Toolkit
module Nat = Indaas_bignum.Nat
module Prime = Indaas_bignum.Prime
module Digest = Indaas_crypto.Digest
module Commutative = Indaas_crypto.Commutative
module Paillier = Indaas_crypto.Paillier
module Oracle = Indaas_crypto.Oracle
module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset
module Fattree = Indaas_topology.Fattree
module Depdb = Indaas_depdata.Depdb
module Builder = Indaas_sia.Builder
module Prng = Indaas_util.Prng

let rng = Prng.of_int 0xBE7C

(* Pre-built inputs, shared across iterations. *)
let modulus_256 = Prime.generate rng ~bits:256
let base_256 = Nat.random_below rng modulus_256
let exp_256 = Nat.random_below rng modulus_256
let modulus_1024 = Prime.oakley_group2
let exp_1024 = Nat.random_below rng modulus_1024

let comm_params = Commutative.params_pohlig_hellman ~bits:256 rng
let comm_key = Commutative.generate_key rng comm_params
let group_element = Oracle.hash_to_group "bench" ~modulus:(Commutative.modulus comm_params)

let paillier = Paillier.generate ~bits:128 rng
let paillier_ct = Paillier.encrypt rng paillier.Paillier.public (Nat.of_int 41)

let one_kb = String.init 1024 (fun i -> Char.chr (i land 0xFF))

let fat_graph =
  let t = Fattree.create ~k:16 in
  let db = Depdb.create () in
  List.iter
    (fun s -> Depdb.add_all db (Fattree.network_records t ~server:s))
    [ 0; Fattree.server_count t - 1 ];
  Builder.build db
    (Builder.spec [ Fattree.server_name t 0; Fattree.server_name t (Fattree.server_count t - 1) ])

let eval_values = Array.make (Graph.node_count fat_graph) false
let eval_rng = Prng.of_int 5

let small_graph =
  Graph.of_component_sets
    [
      ("E1", List.init 12 (Printf.sprintf "a%d"));
      ("E2", List.init 12 (Printf.sprintf "b%d"));
    ]

let tests =
  [
    Test.make ~name:"nat.mod_pow (256-bit)" (Staged.stage (fun () ->
        ignore (Nat.mod_pow ~base:base_256 ~exp:exp_256 ~modulus:modulus_256)));
    Test.make ~name:"nat.mod_pow (1024-bit)" (Staged.stage (fun () ->
        ignore (Nat.mod_pow ~base:Nat.two ~exp:exp_1024 ~modulus:modulus_1024)));
    Test.make ~name:"sha256 (1 KiB)" (Staged.stage (fun () ->
        ignore (Digest.sha256 one_kb)));
    Test.make ~name:"md5 (1 KiB)" (Staged.stage (fun () ->
        ignore (Digest.md5 one_kb)));
    Test.make ~name:"psop element op (hash+encrypt, 256-bit)"
      (Staged.stage (fun () ->
           ignore (Commutative.encrypt comm_params comm_key group_element)));
    Test.make ~name:"paillier.scalar_mul (128-bit)" (Staged.stage (fun () ->
        ignore
          (Paillier.scalar_mul paillier.Paillier.public (Nat.of_int 123456) paillier_ct)));
    Test.make ~name:"sampling round (k=16 fault graph)" (Staged.stage (fun () ->
        Array.iter
          (fun id -> eval_values.(id) <- Prng.bool eval_rng)
          (Graph.basic_ids fat_graph);
        Graph.evaluate_into fat_graph ~values:eval_values));
    Test.make ~name:"minimal cut sets (2x12 component sets)"
      (Staged.stage (fun () -> ignore (Cutset.minimal_risk_groups small_graph)));
  ]

let run () =
  Bench_common.heading "Kernel micro-benchmarks (bechamel)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.8) () in
  let analysis =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let result = Analyze.all analysis Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Bench_common.seconds (est *. 1e-9)
            | Some _ | None -> "n/a"
          in
          Printf.printf "   %-45s %s/op\n" name estimate)
        result)
    tests
