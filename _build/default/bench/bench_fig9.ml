(* Figure 9: SIA vs PIA — total computational time to find the most
   independent 2-way (9a) and 3-way (9b) redundancy deployment among a
   growing number of cloud providers.

   Four methods, as in the paper:
     - SIA / minimal RG algorithm   (component-set level, trusted auditor)
     - SIA / failure sampling       (ditto)
     - PIA / P-SOP                  (private)
     - PIA / KS                     (private, baseline)

   Scaled per DESIGN.md substitution 3 (paper: 10,000 components per
   provider, 10^6 sampling rounds; here smaller sets, fewer rounds,
   shorter keys — all CLI/env-scalable). The paper's findings are
   shape statements: PIA/P-SOP costs less than twice SIA/sampling,
   while PIA/KS and SIA/minimal-RG blow up — all three relations are
   measured below. *)

open Bench_common
module Catalog = Indaas_depdata.Catalog
module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset
module Sampling = Indaas_faultgraph.Sampling
module Psop = Indaas_pia.Psop
module Ks = Indaas_pia.Ks
module Commutative = Indaas_crypto.Commutative
module Prng = Indaas_util.Prng
module Table = Indaas_util.Table

let rec subsets_of_size k l =
  match (k, l) with
  | 0, _ -> [ [] ]
  | _, [] -> []
  | k, x :: rest ->
      List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
      @ subsets_of_size k rest

(* SIA at the component-set level: for each candidate deployment,
   build the AND-of-ORs graph over the providers' flat component sets
   and determine the risk groups. *)
let sia_minimal sets combo =
  let graph =
    Graph.of_component_sets
      (List.map (fun i -> (Printf.sprintf "P%d" i, sets.(i))) combo)
  in
  ignore (Cutset.minimal_risk_groups ~max_family:5_000_000 graph)

let sia_sampling ~rounds rng sets combo =
  let graph =
    Graph.of_component_sets
      (List.map (fun i -> (Printf.sprintf "P%d" i, sets.(i))) combo)
  in
  ignore
    (Sampling.run
       ~config:{ Sampling.default_config with Sampling.rounds; Sampling.shrink = false }
       rng graph)

let pia_psop ~params rng sets combo =
  ignore (Psop.run ~params rng (Array.of_list (List.map (fun i -> sets.(i)) combo)))

let pia_ks ~key_bits rng sets combo =
  ignore (Ks.run ~key_bits rng (Array.of_list (List.map (fun i -> sets.(i)) combo)))

let run_way ~way ~provider_counts ~elements ~rounds ~ks_max_providers =
  let rng = Prng.of_int 0xF19 in
  (* 128-bit commutative keys here, matching the short KS keys, so
     the four methods differ by algorithm rather than key size. *)
  let params = Commutative.params_pohlig_hellman ~bits:128 rng in
  subheading
    (Printf.sprintf "%d-way redundancy, %d components per provider (KS capped at %d providers)"
       way elements ks_max_providers);
  let t =
    Table.create
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      [ "# providers"; "# deployments"; "SIA minimal"; "SIA sampling";
        "PIA P-SOP"; "PIA KS" ]
  in
  List.iter
    (fun n_providers ->
      let sets =
        Catalog.synthetic_sets rng ~providers:n_providers ~elements
          ~shared_fraction:0.25
      in
      let combos = subsets_of_size way (List.init n_providers Fun.id) in
      let time_all f = Indaas_util.Timing.time_only (fun () -> List.iter f combos) in
      let t_min = time_all (sia_minimal sets) in
      let t_smp = time_all (sia_sampling ~rounds rng sets) in
      let t_psop = time_all (pia_psop ~params rng sets) in
      let t_ks =
        if n_providers <= ks_max_providers then
          Some (time_all (pia_ks ~key_bits:64 rng sets))
        else None
      in
      Table.add_row t
        [
          string_of_int n_providers;
          string_of_int (List.length combos);
          seconds t_min;
          seconds t_smp;
          seconds t_psop;
          (match t_ks with Some s -> seconds s | None -> "(skipped)");
        ])
    provider_counts;
  Table.print t

(* At the bench's scaled-down set sizes the exact minimal-RG pass is
   cheap; the paper ran 10,000-component providers, where its
   quadratic cut-set product dominates everything. This sweep holds
   the provider count fixed and grows the component sets to make that
   growth law measurable: minimal-RG cost rises ~x4 per doubling while
   sampling and P-SOP stay linear. *)
let run_scaling_sweep () =
  subheading "growth in per-provider components (4 providers, all 2-way pairs)";
  let rng = Prng.of_int 0xF19B in
  let params = Commutative.params_pohlig_hellman ~bits:128 rng in
  let sizes = scale ~quick:[ 100; 200 ] ~standard:[ 100; 200; 400; 800 ] ~full:[ 200; 400; 800; 1600; 3200 ] in
  let rounds = scale ~quick:2_000 ~standard:20_000 ~full:200_000 in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "components/provider"; "SIA minimal"; "SIA sampling"; "PIA P-SOP" ]
  in
  List.iter
    (fun elements ->
      let sets =
        Catalog.synthetic_sets rng ~providers:4 ~elements ~shared_fraction:0.25
      in
      let combos = subsets_of_size 2 (List.init 4 Fun.id) in
      let time_all f = Indaas_util.Timing.time_only (fun () -> List.iter f combos) in
      let t_min = time_all (sia_minimal sets) in
      let t_smp = time_all (sia_sampling ~rounds rng sets) in
      let t_psop = time_all (pia_psop ~params rng sets) in
      Table.add_row t
        [ string_of_int elements; seconds t_min; seconds t_smp; seconds t_psop ])
    sizes;
  Table.print t;
  note "minimal-RG time grows ~4x per component doubling (quadratic cut-set";
  note "product) while the others grow linearly -- at the paper's 10k";
  note "components the exact algorithm is the one that cannot keep up"

let run () =
  heading "Figure 9: SIA vs PIA computational overheads";
  let provider_counts =
    scale ~quick:[ 5; 10 ] ~standard:[ 5; 10; 15; 20 ] ~full:[ 5; 10; 15; 20 ]
  in
  let elements = scale ~quick:40 ~standard:100 ~full:300 in
  (* paper: 10^6 rounds on 10k-component providers *)
  let rounds = scale ~quick:2_000 ~standard:20_000 ~full:200_000 in
  let ks_max = scale ~quick:5 ~standard:10 ~full:15 in
  run_way ~way:2 ~provider_counts ~elements ~rounds ~ks_max_providers:ks_max;
  let provider_counts_3way =
    scale ~quick:[ 5; 8 ] ~standard:[ 5; 8; 10; 12 ] ~full:[ 5; 10; 15; 20 ]
  in
  let ks_max_3way = scale ~quick:5 ~standard:5 ~full:10 in
  run_way ~way:3 ~provider_counts:provider_counts_3way ~elements ~rounds
    ~ks_max_providers:ks_max_3way;
  run_scaling_sweep ();
  subheading "shape check";
  note "expected (paper): PIA P-SOP within ~2x of SIA sampling; PIA KS and";
  note "SIA minimal-RG grow much faster and do not scale"
