(* Table 2 (software-dependency Jaccard ranking via PIA) and Table 3
   (generated fat-tree topologies). *)

open Bench_common
module Catalog = Indaas_depdata.Catalog
module Pia_audit = Indaas_pia.Audit
module Fattree = Indaas_topology.Fattree
module Scenario = Indaas.Scenario
module Table = Indaas_util.Table

(* Paper values for side-by-side comparison. *)
let paper_two_way =
  [
    ([ "Cloud2"; "Cloud4" ], 0.1419); ([ "Cloud2"; "Cloud3" ], 0.1547);
    ([ "Cloud1"; "Cloud4" ], 0.2081); ([ "Cloud1"; "Cloud3" ], 0.2939);
    ([ "Cloud3"; "Cloud4" ], 0.3489); ([ "Cloud1"; "Cloud2" ], 0.5059);
  ]

let paper_three_way =
  [
    ([ "Cloud2"; "Cloud3"; "Cloud4" ], 0.1128);
    ([ "Cloud1"; "Cloud2"; "Cloud4" ], 0.1207);
    ([ "Cloud1"; "Cloud3"; "Cloud4" ], 0.1353);
    ([ "Cloud1"; "Cloud2"; "Cloud3" ], 0.1536);
  ]

let render_with_paper report paper =
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right; Table.Left ]
      [ "Rank"; "Redundancy Deployment"; "Jaccard"; "paper"; "order" ]
  in
  List.iteri
    (fun i (r : Pia_audit.deployment_result) ->
      let paper_value = List.assoc_opt r.Pia_audit.providers paper in
      let paper_rank =
        List.find_index (fun (p, _) -> p = r.Pia_audit.providers) paper
      in
      Table.add_row t
        [
          string_of_int (i + 1);
          String.concat " & " r.Pia_audit.providers;
          Printf.sprintf "%.4f" r.Pia_audit.jaccard;
          (match paper_value with
          | Some v -> Printf.sprintf "%.4f" v
          | None -> "-");
          (match paper_rank with
          | Some rank when rank = i -> "match"
          | Some rank -> Printf.sprintf "paper rank %d" (rank + 1)
          | None -> "-");
        ])
    report.Pia_audit.results;
  Table.print t

let table2 () =
  heading "Table 2: Jaccard ranking of redundancy deployments (PIA over P-SOP)";
  note "four clouds: Cloud1=Riak Cloud2=MongoDB Cloud3=Redis Cloud4=CouchDB";
  let case, elapsed =
    Indaas_util.Timing.time (fun () -> Scenario.run_software_case ())
  in
  subheading "two-way deployments";
  render_with_paper case.Scenario.two_way paper_two_way;
  subheading "three-way deployments";
  render_with_paper case.Scenario.three_way paper_three_way;
  note "total audit time (all 10 private P-SOP evaluations): %s" (seconds elapsed)

let table3 () =
  heading "Table 3: configurations of the generated fat-tree topologies";
  let ks = [ 16; 24; 48 ] in
  let trees = List.map (fun k -> Fattree.create ~k) ks in
  let t =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) ks)
      ("parameter" :: List.mapi (fun i _ -> Printf.sprintf "Topology %c" (Char.chr (65 + i))) ks)
  in
  let rows =
    [ "# switch ports"; "# core routers"; "# agg switches"; "# ToR switches";
      "# servers"; "Total # devices" ]
  in
  List.iteri
    (fun row_idx name ->
      Table.add_row t
        (name :: List.map (fun tree -> List.nth (Fattree.table3_row tree) row_idx) trees))
    rows;
  Table.print t;
  note "paper values: A = 64/128/128/1024 (1344), B = 144/288/288/3456 (4176),";
  note "              C = 576/1152/1152/27648 (30528) -- generated identically"
