(* The three §6.2 case studies as benchmarks: each prints its headline
   numbers next to the paper's, with wall-clock time. *)

open Bench_common
module Scenario = Indaas.Scenario
module Sia_audit = Indaas_sia.Audit
module Pia_audit = Indaas_pia.Audit
module Table = Indaas_util.Table

let network () =
  heading "Case study 6.2.1: common network dependency";
  let case, elapsed =
    Indaas_util.Timing.time (fun () -> Scenario.run_network_case ())
  in
  let t = Table.create ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "metric"; "measured"; "paper" ] in
  Table.add_row t
    [ "two-way deployments audited";
      string_of_int case.Scenario.total_deployments; "190" ];
  Table.add_row t
    [ "deployments w/o unexpected RGs";
      string_of_int case.Scenario.clean_deployments; "27" ];
  Table.add_row t
    [ "random-pick success probability";
      Printf.sprintf "%.0f%%" (100. *. case.Scenario.random_success_probability);
      "14%" ];
  Table.add_row t
    [ "most independent deployment";
      "Rack " ^ String.concat " & Rack "
        (List.map string_of_int case.Scenario.best_pair_racks);
      "Rack 5 & Rack 29" ];
  Table.add_row t
    [ "winner also probability argmin (p=0.1)";
      string_of_bool case.Scenario.probability_confirms_best; "true" ];
  Table.print t;
  note "exact audit of all 190 deployments took %s" (seconds elapsed);
  let sampled, sampled_time =
    Indaas_util.Timing.time (fun () ->
        Scenario.run_network_case
          ~algorithm:
            (Sia_audit.failure_sampling
               ~rounds:(scale ~quick:2_000 ~standard:20_000 ~full:1_000_000))
          ())
  in
  note "failure-sampling variant: winner Rack %s, %d clean, %s"
    (String.concat " & Rack " (List.map string_of_int sampled.Scenario.best_pair_racks))
    sampled.Scenario.clean_deployments (seconds sampled_time)

let hardware () =
  heading "Case study 6.2.2: common hardware dependency";
  let case, elapsed =
    Indaas_util.Timing.time (fun () -> Scenario.run_hardware_case ())
  in
  Printf.printf "   placement: %s\n"
    (String.concat ", "
       (List.map (fun (vm, host) -> vm ^ "->" ^ host) case.Scenario.initial_hosts));
  Printf.printf "   co-located: %b (paper: true, via OpenStack's least-loaded random placement)\n"
    case.Scenario.co_located;
  Printf.printf "   top-4 ranked RGs: %s\n"
    (String.concat " "
       (List.map (fun ns -> "{" ^ String.concat "," ns ^ "}") case.Scenario.top4));
  Printf.printf "   paper top-4:      {Server2} {Switch1} {Core1,Core2} {VM7,VM8}\n";
  Printf.printf "   recommendation: {%s} (paper: {Server2, Server3}); fixed after migration: %b\n"
    (String.concat ", " case.Scenario.recommended_servers)
    case.Scenario.fixed;
  note "end-to-end case time: %s" (seconds elapsed)

let software () =
  (* Table 2 *is* this case study; keep a cost-focused summary here. *)
  heading "Case study 6.2.3: common software dependency (see Table 2 for the ranking)";
  let case, elapsed =
    Indaas_util.Timing.time (fun () -> Scenario.run_software_case ())
  in
  Printf.printf "   best 2-way: %s (paper: Cloud2 & Cloud4)\n"
    (String.concat " & " case.Scenario.best_two_way);
  Printf.printf "   best 3-way: %s (paper: Cloud2 & Cloud3 & Cloud4)\n"
    (String.concat " & "
       (Pia_audit.best case.Scenario.three_way).Pia_audit.providers);
  note "10 private P-SOP evaluations in %s" (seconds elapsed)

let run () =
  network ();
  hardware ();
  software ()
