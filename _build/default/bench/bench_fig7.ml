(* Figure 7: minimal-RG algorithm vs failure sampling — % of minimal
   risk groups detected against computational time, across three
   generated topologies of growing size.

   Scaled per DESIGN.md substitution 3: the paper's topologies
   (1.3k/4.2k/30.5k devices) drive its exact algorithm for 17+ hours;
   here the three deployments are sized so the exact algorithm takes
   ~0.5s / ~3s / ~25s (~2.5 min in --full mode), and the sampling
   series shows the same shape — 90%+ of the minimal RGs found in a
   small fraction of the exact algorithm's time, with the gap widening
   as the topology grows. *)

open Bench_common
module Fattree = Indaas_topology.Fattree
module Depdb = Indaas_depdata.Depdb
module Builder = Indaas_sia.Builder
module Cutset = Indaas_faultgraph.Cutset
module Sampling = Indaas_faultgraph.Sampling
module Graph = Indaas_faultgraph.Graph
module Prng = Indaas_util.Prng
module Table = Indaas_util.Table

(* An r-way redundancy deployment across r pods of a k-port fat tree,
   with the full multi-path network dependency structure. *)
let deployment ~k ~r =
  let t = Fattree.create ~k in
  let servers = List.init r (fun i -> i * (Fattree.server_count t / r)) in
  let db = Depdb.create () in
  List.iter
    (fun s -> Depdb.add_all db (Fattree.network_records t ~server:s))
    servers;
  let names = List.map (Fattree.server_name t) servers in
  (t, Builder.build db (Builder.spec names))

(* The paper samples with fair coins; a higher per-event failure bias
   makes each positive witness cover more (and larger) minimal RGs,
   which is what lets the detection ratio climb into the 90%+ regime
   on deep fault graphs (see the ablation bench). The bias grows with
   the topology because the largest minimal RGs do too (up to all
   (k/2)^2 cores). *)
let run_topology label ~k ~r ~bias ~checkpoints =
  let topo, graph = deployment ~k ~r in
  subheading
    (Printf.sprintf "%s: fat-tree k=%d (%d devices), %d-way deployment, %d-node fault graph"
       label k (Fattree.device_count topo) r (Graph.node_count graph));
  let rgs, exact_time =
    Indaas_util.Timing.time (fun () ->
        (* The larger topologies exceed the library's default working-set
           budget mid-computation; raise it — the blow-up is the point. *)
        Cutset.minimal_risk_groups ~max_family:200_000_000 graph)
  in
  Printf.printf "   minimal RG algorithm: %d minimal RGs in %s (100%% by definition)\n"
    (List.length rgs) (seconds exact_time);
  let points =
    Sampling.coverage ~failure_bias:bias (Prng.of_int 0xF16) graph
      ~targets:rgs ~checkpoints
  in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "sampling rounds"; "time"; "% minimal RGs detected"; "vs exact time" ]
  in
  List.iter
    (fun (p : Sampling.coverage_point) ->
      Table.add_row t
        [
          string_of_int p.Sampling.rounds;
          seconds p.Sampling.seconds;
          Printf.sprintf "%.1f%%" (100. *. p.Sampling.fraction);
          Printf.sprintf "%.2fx" (p.Sampling.seconds /. exact_time);
        ])
    points;
  Table.print t;
  (exact_time, points)

let run () =
  heading "Figure 7: minimal RG algorithm vs failure sampling";
  let checkpoints =
    scale
      ~quick:[ 1_000; 10_000; 100_000 ]
      ~standard:[ 1_000; 10_000; 100_000; 300_000; 1_000_000 ]
      ~full:[ 1_000; 10_000; 100_000; 1_000_000; 10_000_000 ]
  in
  let topologies =
    scale
      ~quick:[ ("Topology A'", 12, 2, 0.8); ("Topology B'", 16, 2, 0.8) ]
      ~standard:
        [ ("Topology A'", 16, 2, 0.8); ("Topology B'", 16, 3, 0.8);
          ("Topology C'", 20, 2, 0.85) ]
      ~full:
        [ ("Topology A'", 16, 3, 0.8); ("Topology B'", 20, 2, 0.85);
          ("Topology C'", 20, 3, 0.85) ]
  in
  let results =
    List.map
      (fun (label, k, r, bias) -> (label, run_topology label ~k ~r ~bias ~checkpoints))
      topologies
  in
  subheading "shape check (paper: sampling reaches ~90% far faster than exact)";
  List.iter
    (fun (label, (exact_time, points)) ->
      match
        List.find_opt (fun (p : Sampling.coverage_point) -> p.Sampling.fraction >= 0.9) points
      with
      | Some p ->
          note "%s: 90%% detected after %s -- %.1fx faster than the exact algorithm"
            label (seconds p.Sampling.seconds)
            (exact_time /. p.Sampling.seconds)
      | None ->
          let last = List.nth points (List.length points - 1) in
          note "%s: reached %.1f%% at %d rounds (%s); exact took %s" label
            (100. *. last.Sampling.fraction)
            last.Sampling.rounds (seconds last.Sampling.seconds)
            (seconds exact_time))
    results
