(* Ablations of the design choices DESIGN.md calls out:

   1. sampling witness shrinking (on/off) — what the per-round
      minimization buys in usable minimal RGs;
   2. sampling failure bias — why Figure 7 runs at 0.8;
   3. MinHash signature size m — accuracy vs traffic (§4.2.4);
   4. P-SOP primitive choice — paper's MD5 + commutative RSA vs the
      default SHA-256 + Pohlig–Hellman;
   5. top-event probability method — inclusion-exclusion vs BDD vs
      Monte-Carlo. *)

open Bench_common
module Fattree = Indaas_topology.Fattree
module Depdb = Indaas_depdata.Depdb
module Catalog = Indaas_depdata.Catalog
module Builder = Indaas_sia.Builder
module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset
module Sampling = Indaas_faultgraph.Sampling
module Psop = Indaas_pia.Psop
module Jaccard = Indaas_pia.Jaccard
module Componentset = Indaas_pia.Componentset
module Transport = Indaas_pia.Transport
module Commutative = Indaas_crypto.Commutative
module Digest = Indaas_crypto.Digest
module Prng = Indaas_util.Prng
module Table = Indaas_util.Table

let fat_graph ~k ~r =
  let t = Fattree.create ~k in
  let servers = List.init r (fun i -> i * (Fattree.server_count t / r)) in
  let db = Depdb.create () in
  List.iter
    (fun s -> Depdb.add_all db (Fattree.network_records t ~server:s))
    servers;
  Builder.build db (Builder.spec (List.map (Fattree.server_name t) servers))

let shrink_ablation () =
  subheading "1. witness shrinking (k=12 fat tree, 2-way, 191 minimal RGs)";
  let graph = fat_graph ~k:12 ~r:2 in
  let exact = Cutset.minimal_risk_groups graph in
  let rounds = scale ~quick:2_000 ~standard:20_000 ~full:200_000 in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "variant"; "distinct RGs recorded"; "of which minimal"; "time" ]
  in
  List.iter
    (fun shrink ->
      let config = { Sampling.default_config with Sampling.rounds; Sampling.shrink } in
      let result, elapsed =
        Indaas_util.Timing.time (fun () ->
            Sampling.run ~config (Prng.of_int 0xAB1) graph)
      in
      let minimal =
        List.filter
          (fun rg -> Cutset.is_minimal_risk_group graph (Array.to_list rg))
          result.Sampling.risk_groups
      in
      Table.add_row t
        [
          (if shrink then "shrink on (default)" else "raw witnesses");
          string_of_int (List.length result.Sampling.risk_groups);
          Printf.sprintf "%d (%.0f%% of all)" (List.length minimal)
            (100.
            *. Sampling.detection_ratio ~found:result.Sampling.risk_groups
                 ~all:exact);
          seconds elapsed;
        ])
    [ true; false ];
  Table.print t;
  note "shrinking costs extra evaluations per positive round but every";
  note "recorded RG is actionable (minimal); raw witnesses are mostly";
  note "non-minimal supersets"

let bias_ablation () =
  subheading "2. sampling failure bias (k=16 fat tree, 2-way, coverage at fixed rounds)";
  let graph = fat_graph ~k:16 ~r:2 in
  let exact = Cutset.minimal_risk_groups graph in
  let rounds = scale ~quick:10_000 ~standard:100_000 ~full:1_000_000 in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right ]
      [ "failure bias"; "% minimal RGs detected"; "time" ]
  in
  List.iter
    (fun bias ->
      let points =
        Sampling.coverage ~failure_bias:bias (Prng.of_int 0xAB2) graph
          ~targets:exact ~checkpoints:[ rounds ]
      in
      let p = List.hd points in
      Table.add_row t
        [
          Printf.sprintf "%.1f" bias;
          Printf.sprintf "%.1f%%" (100. *. p.Sampling.fraction);
          seconds p.Sampling.seconds;
        ])
    [ 0.3; 0.5; 0.7; 0.8; 0.9 ];
  Table.print t;
  note "fair coins (0.5, the naive reading of the paper) cannot cover the";
  note "large minimal RGs of deep fault graphs; 0.8 is the sweet spot used";
  note "by the Figure 7 bench (0.9 covers everything but wastes witnesses)"

let minhash_ablation () =
  subheading "3. MinHash m: accuracy vs traffic (Riak vs MongoDB closures, J=0.5185)";
  let rng = Prng.of_int 0xAB3 in
  let params = Commutative.params_pohlig_hellman ~bits:256 rng in
  let a = Catalog.packages Catalog.Riak and b = Catalog.packages Catalog.MongoDB in
  let exact =
    Jaccard.pairwise (Componentset.of_list a) (Componentset.of_list b)
  in
  let full = Psop.run ~params rng [| a; b |] in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "m"; "estimate"; "abs error"; "traffic" ]
  in
  Table.add_row t
    [
      "exact P-SOP";
      Printf.sprintf "%.4f" full.Psop.jaccard;
      "0";
      bytes (Transport.total_bytes full.Psop.transport);
    ];
  List.iter
    (fun m ->
      let r = Psop.run_minhash ~params ~m rng [| a; b |] in
      Table.add_row t
        [
          string_of_int m;
          Printf.sprintf "%.4f" r.Psop.jaccard;
          Printf.sprintf "%.4f" (abs_float (r.Psop.jaccard -. exact));
          bytes (Transport.total_bytes r.Psop.transport);
        ])
    (scale ~quick:[ 64; 256 ] ~standard:[ 64; 128; 256; 512; 1024 ]
       ~full:[ 64; 128; 256; 512; 1024; 4096 ]);
  Table.print t;
  note "error shrinks ~1/sqrt(m) while traffic grows linearly in m; MinHash";
  note "pays off when component sets are much larger than m (here the sets";
  note "have 53/70 elements, so compression only wins below m ~ 128)"

let primitive_ablation () =
  subheading "4. P-SOP primitives: SHA-256 + Pohlig-Hellman vs the paper's MD5 + SRA";
  let n = scale ~quick:100 ~standard:500 ~full:2000 in
  let rng = Prng.of_int 0xAB4 in
  let datasets =
    Catalog.synthetic_sets rng ~providers:2 ~elements:n ~shared_fraction:0.3
  in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "instantiation (256-bit)"; "compute"; "traffic" ]
  in
  let cases =
    [
      ("SHA-256 + Pohlig-Hellman (default)",
       Commutative.params_pohlig_hellman ~bits:256 rng, Digest.SHA256);
      ("MD5 + SRA commutative RSA (paper §6.1.2)",
       Commutative.params_sra ~bits:256 rng, Digest.MD5);
    ]
  in
  List.iter
    (fun (label, params, hash) ->
      let r, elapsed =
        Indaas_util.Timing.time (fun () -> Psop.run ~params ~hash rng datasets)
      in
      Table.add_row t
        [ label; seconds elapsed; bytes (Transport.total_bytes r.Psop.transport) ])
    cases;
  Table.print t;
  note "the cost is dominated by modular exponentiation either way; the";
  note "hash choice is immaterial and the schemes are interchangeable"

(* Three ways to compute Pr(top event): inclusion-exclusion over
   minimal RGs (exponential in the RG count), BDD weighted counting
   (linear in the diagram), Monte-Carlo (error ~ 1/sqrt rounds). *)
let probability_ablation () =
  subheading "5. top-event probability: inclusion-exclusion vs BDD vs Monte-Carlo";
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "workload"; "#minimal RGs"; "incl-excl"; "BDD (exact)"; "Monte-Carlo" ]
  in
  let mc_rounds = scale ~quick:50_000 ~standard:200_000 ~full:1_000_000 in
  List.iter
    (fun (label, k, r) ->
      let topo = Fattree.create ~k in
      let servers = List.init r (fun i -> i * (Fattree.server_count topo / r)) in
      let db = Depdb.create () in
      List.iter
        (fun s -> Depdb.add_all db (Fattree.network_records topo ~server:s))
        servers;
      let graph =
        Builder.build db
          (Builder.spec
             ~component_probability:(Builder.uniform_probability 0.02)
             (List.map (Fattree.server_name topo) servers))
      in
      let rgs = Cutset.minimal_risk_groups graph in
      let ie_cell =
        if List.length rgs <= 20 then begin
          let v, elapsed =
            Indaas_util.Timing.time (fun () ->
                Indaas_faultgraph.Probability.top_probability_exact graph ~rgs)
          in
          Printf.sprintf "%.3e (%s)" v (seconds elapsed)
        end
        else Printf.sprintf "2^%d terms: infeasible" (List.length rgs)
      in
      let bdd_v, bdd_t =
        Indaas_util.Timing.time (fun () ->
            Indaas_faultgraph.Bdd.graph_probability graph)
      in
      let mc_v, mc_t =
        Indaas_util.Timing.time (fun () ->
            Indaas_faultgraph.Probability.top_probability_mc ~rounds:mc_rounds
              (Prng.of_int 0xAB5) graph)
      in
      Table.add_row t
        [
          label;
          string_of_int (List.length rgs);
          ie_cell;
          Printf.sprintf "%.3e (%s)" bdd_v (seconds bdd_t);
          Printf.sprintf "%.3e (%s)" mc_v (seconds mc_t);
        ])
    [ ("tiny (k=4, 2-way)", 4, 2); ("k=12, 2-way", 12, 2); ("k=16, 2-way", 16, 2) ];
  Table.print t;
  note "inclusion-exclusion dies beyond ~20 minimal RGs; the BDD stays exact";
  note "and instant; Monte-Carlo needs ~10^6 rounds to resolve rare events"

let run () =
  heading "Ablations of DESIGN.md choices";
  shrink_ablation ();
  bias_ablation ();
  minhash_ablation ();
  primitive_ablation ();
  probability_ablation ()
