(* Weighted auditing end-to-end: estimate component failure
   probabilities from operational data (paper §5.1), audit with
   probability ranking, and drill down from risk groups to the
   individual components worth fixing first (Birnbaum and
   Fussell-Vesely importance, computed exactly on a BDD).

   Run with: dune exec examples/importance_analysis.exe *)

module Dependency = Indaas_depdata.Dependency
module Depdb = Indaas_depdata.Depdb
module Failure_stats = Indaas_depdata.Failure_stats
module Audit = Indaas_sia.Audit
module Builder = Indaas_sia.Builder
module Report = Indaas_sia.Report
module Cutset = Indaas_faultgraph.Cutset
module Importance = Indaas_faultgraph.Importance
module Bdd = Indaas_faultgraph.Bdd

let () =
  print_endline "== From failure logs to component importance ==";
  print_endline "";

  (* 1. A year of (synthetic) operational failure events, in the shape
     Gill et al. mined from production tickets. *)
  let events =
    [
      { Failure_stats.component = "ToR1"; component_type = "ToR"; day = 12 };
      { Failure_stats.component = "ToR3"; component_type = "ToR"; day = 80 };
      { Failure_stats.component = "ToR1"; component_type = "ToR"; day = 200 };
      { Failure_stats.component = "Core2"; component_type = "Core"; day = 91 };
      { Failure_stats.component = "agg-sw-4"; component_type = "Agg"; day = 150 };
      { Failure_stats.component = "agg-sw-9"; component_type = "Agg"; day = 310 };
    ]
  in
  let estimates =
    Failure_stats.estimate_by_type ~window_days:365
      ~population:[ ("ToR", 20); ("Agg", 16); ("Core", 4) ]
      events
  in
  print_endline "Device failure probabilities (Gill-style, 1-year window):";
  List.iter
    (fun e ->
      Printf.printf "  %-5s %d/%d failed -> Pr = %.3f\n" e.Failure_stats.etype
        e.Failure_stats.failed e.Failure_stats.population
        e.Failure_stats.probability)
    estimates;

  (* CVSS scores stand in for software failure likelihood. *)
  let software = Failure_stats.cvss_table [ ("libssl-1.0.1", 9.8); ("libc6", 2.1) ] in
  let probability =
    Failure_stats.lookup ~default:0.02
      ~device_types:
        (Failure_stats.classify_by_prefix
           [ ("ToR", "ToR"); ("Core", "Core"); ("agg", "Agg") ])
      ~device_estimates:estimates ~software
  in
  print_endline "";
  Printf.printf "  libssl-1.0.1 (CVSS 9.8) -> Pr = %.3f; default for the rest = 0.020\n"
    (Option.get (probability "libssl-1.0.1"));

  (* 2. Weighted SIA audit of the Figure 2-style deployment. *)
  let db =
    Depdb.of_string
      {|
<src="S1" dst="Internet" route="ToR1,Core1"/>
<src="S1" dst="Internet" route="ToR1,Core2"/>
<src="S2" dst="Internet" route="ToR1,Core1"/>
<src="S2" dst="Internet" route="ToR1,Core2"/>
<hw="S1" type="Disk" dep="S1-disk"/>
<hw="S2" type="Disk" dep="S2-disk"/>
<pgm="App1" hw="S1" dep="libssl-1.0.1,libc6"/>
<pgm="App2" hw="S2" dep="libssl-1.0.1,libc6"/>
|}
  in
  let report =
    Audit.audit db
      (Audit.request ~component_probability:probability
         ~ranking:Audit.Probability_based [ "S1"; "S2" ])
  in
  print_endline "";
  print_endline "== Probability-ranked auditing report ==";
  print_endline (Report.render_deployment report);

  (* 3. Exact cross-check and component-level importance. *)
  let graph = report.Audit.graph in
  let bdd_pr = Bdd.graph_probability graph in
  Printf.printf "\nExact Pr(deployment fails) via BDD: %.6f (report: %s)\n" bdd_pr
    (match report.Audit.failure_probability with
    | Some p -> Printf.sprintf "%.6f" p
    | None -> "-");

  let rgs = Cutset.minimal_risk_groups graph in
  print_endline "";
  print_endline "Component importance (what to fix first):";
  print_endline (Importance.render (Importance.rank_components graph ~rgs));
  print_endline "";
  print_endline "The shared ToR switch and the vulnerable TLS library dominate";
  print_endline "both measures — fixing either buys more reliability than any";
  print_endline "disk or core-router change."
