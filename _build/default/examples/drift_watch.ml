(* Periodic audits and configuration drift (paper §2: "Alice might
   also request periodic audits on a deployed configuration to
   identify correlated failure risks that configuration changes or
   evolution might introduce").

   A deployment starts clean; infrastructure evolution — a network
   consolidation and a software convergence — silently introduces
   shared dependencies. The monitor diffs the successive audits and
   raises on the first regression. The availability simulator then
   shows the regression is not academic: simulated uptime drops.

   Run with: dune exec examples/drift_watch.exe *)

module Dependency = Indaas_depdata.Dependency
module Depdb = Indaas_depdata.Depdb
module Monitor = Indaas.Monitor
module Sia_audit = Indaas_sia.Audit
module Lifetime = Indaas_faultgraph.Lifetime
module Prng = Indaas_util.Prng

(* Four quarterly snapshots of the same two-server deployment. *)
let snapshots =
  let db records =
    let d = Depdb.create () in
    Depdb.add_all d records;
    d
  in
  [
    ( "Q1: initial deployment (disjoint switches, distinct stacks)",
      db
        [
          Dependency.network ~src:"S1" ~dst:"I" ~route:[ "swA"; "coreA" ];
          Dependency.network ~src:"S2" ~dst:"I" ~route:[ "swB"; "coreB" ];
          Dependency.software ~pgm:"App1" ~host:"S1" ~deps:[ "libfoo-1" ];
          Dependency.software ~pgm:"App2" ~host:"S2" ~deps:[ "libbar-2" ];
        ] );
    ( "Q2: spare link added to S2 (harmless)",
      db
        [
          Dependency.network ~src:"S1" ~dst:"I" ~route:[ "swA"; "coreA" ];
          Dependency.network ~src:"S2" ~dst:"I" ~route:[ "swB"; "coreB" ];
          Dependency.network ~src:"S2" ~dst:"I" ~route:[ "swB"; "coreC" ];
          Dependency.software ~pgm:"App1" ~host:"S1" ~deps:[ "libfoo-1" ];
          Dependency.software ~pgm:"App2" ~host:"S2" ~deps:[ "libbar-2" ];
        ] );
    ( "Q3: network consolidation moves S2 behind swA (regression!)",
      db
        [
          Dependency.network ~src:"S1" ~dst:"I" ~route:[ "swA"; "coreA" ];
          Dependency.network ~src:"S2" ~dst:"I" ~route:[ "swA"; "coreB" ];
          Dependency.network ~src:"S2" ~dst:"I" ~route:[ "swA"; "coreC" ];
          Dependency.software ~pgm:"App1" ~host:"S1" ~deps:[ "libfoo-1" ];
          Dependency.software ~pgm:"App2" ~host:"S2" ~deps:[ "libbar-2" ];
        ] );
    ( "Q4: both apps migrate to the same TLS library (worse)",
      db
        [
          Dependency.network ~src:"S1" ~dst:"I" ~route:[ "swA"; "coreA" ];
          Dependency.network ~src:"S2" ~dst:"I" ~route:[ "swA"; "coreB" ];
          Dependency.network ~src:"S2" ~dst:"I" ~route:[ "swA"; "coreC" ];
          Dependency.software ~pgm:"App1" ~host:"S1"
            ~deps:[ "libfoo-1"; "libssl-1.0.1" ];
          Dependency.software ~pgm:"App2" ~host:"S2"
            ~deps:[ "libbar-2"; "libssl-1.0.1" ];
        ] );
  ]

let () =
  print_endline "== Drift watch: periodic audits of one deployment ==";
  let request = Sia_audit.request [ "S1"; "S2" ] in
  let reports, diffs = Monitor.audit_series (List.map snd snapshots) request in
  List.iteri
    (fun i (label, _) ->
      Printf.printf "\n%s\n" label;
      let report = List.nth reports i in
      Printf.printf "  audit: %d risk groups, %d unexpected\n"
        (List.length report.Sia_audit.ranked)
        (List.length report.Sia_audit.unexpected);
      if i > 0 then
        print_endline
          ("  " ^ String.concat "\n  "
             (String.split_on_char '\n'
                (Monitor.render_diff (List.nth diffs (i - 1))))))
    snapshots;
  print_endline "";
  (match Monitor.first_regression diffs with
  | Some i ->
      Printf.printf "First regression entering snapshot %d (%s)\n" (i + 2)
        (fst (List.nth snapshots (i + 1)))
  | None -> print_endline "No regression across the series");

  (* Quantify the damage with the availability simulator. *)
  print_endline "";
  print_endline "Simulated availability of each snapshot (mtbf 1000, mttr 10):";
  List.iteri
    (fun i (label, _) ->
      let report = List.nth reports i in
      let avail =
        Lifetime.mean_availability ~runs:3 (Prng.of_int 99)
          report.Sia_audit.graph
      in
      Printf.printf "  %-60s %.5f\n"
        (String.sub label 0 (min 60 (String.length label)))
        avail)
    snapshots;
  print_endline "";
  print_endline "The monitor catches at Q3 what the uptime report would only";
  print_endline "reveal after the shared switch actually fails."
