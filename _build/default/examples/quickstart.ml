(* Quickstart: audit the independence of a small two-server redundancy
   deployment (the paper's Figure 2 storage system), then compare what
   SIA reports at each step.

   Run with: dune exec examples/quickstart.exe *)

module Dependency = Indaas_depdata.Dependency
module Depdb = Indaas_depdata.Depdb
module Audit = Indaas_sia.Audit
module Report = Indaas_sia.Report
module Rank = Indaas_sia.Rank
module Dot = Indaas_faultgraph.Dot

let () =
  print_endline "== INDaaS quickstart ==";
  print_endline "";
  print_endline "Alice replicates her service on servers S1 and S2 and expects";
  print_endline "2-way redundancy. The dependency acquisition modules reported:";
  print_endline "";

  (* Step 1: dependency data, in the paper's Table 1 wire format. This
     is what NSDMiner / lshw / apt-rdepends stand-ins produce. *)
  let raw = {|
<src="S1" dst="Internet" route="ToR1,Core1"/>
<src="S1" dst="Internet" route="ToR1,Core2"/>
<src="S2" dst="Internet" route="ToR1,Core1"/>
<src="S2" dst="Internet" route="ToR1,Core2"/>
<hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>
<hw="S1" type="Disk" dep="S1-SED900"/>
<hw="S2" type="CPU" dep="S2-Intel(R)X5550@2.6GHz"/>
<hw="S2" type="Disk" dep="S2-SED900"/>
<pgm="QueryEngine1" hw="S1" dep="libc6,libgccl"/>
<pgm="Riak1" hw="S1" dep="libc6,libsvn1"/>
<pgm="QueryEngine2" hw="S2" dep="libc6,libgccl"/>
<pgm="Riak2" hw="S2" dep="libc6,libsvn1"/>
|} in
  print_string raw;
  let db = Depdb.of_string raw in

  (* Step 2: the auditing agent builds the fault graph and determines
     the minimal risk groups. *)
  let report = Audit.audit db (Audit.request [ "S1"; "S2" ]) in
  print_endline "";
  print_endline "== SIA auditing report ==";
  print_endline (Report.render_deployment report);

  print_endline "";
  Printf.printf
    "The deployment has %d risk groups; %d are UNEXPECTED (smaller than\n\
     the intended size %d):\n"
    (List.length report.Audit.ranked)
    (List.length report.Audit.unexpected)
    report.Audit.expected_rg_size;
  List.iter
    (fun rg ->
      Printf.printf "  - {%s}: a single failure defeats the redundancy\n"
        (String.concat ", " rg.Rank.rg_names))
    report.Audit.unexpected;

  (* Step 3: export the fault graph for inspection. *)
  let out = Filename.concat (Filename.get_temp_dir_name ()) "indaas-quickstart.dot" in
  Dot.write_file out report.Audit.graph;
  print_endline "";
  Printf.printf "Fault graph written to %s (render with graphviz).\n" out;

  (* Step 4: what the operators should do about it. *)
  print_endline "";
  print_endline "Shared ToR switch and shared packages (libc6, libgccl, libsvn1)";
  print_endline "are single points of failure: move S2 behind its own ToR and";
  print_endline "diversify the software stacks, then re-audit."
