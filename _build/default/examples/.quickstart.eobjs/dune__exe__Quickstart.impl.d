examples/quickstart.ml: Filename Indaas_depdata Indaas_faultgraph Indaas_sia List Printf String
