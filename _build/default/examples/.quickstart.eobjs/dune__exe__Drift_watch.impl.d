examples/drift_watch.ml: Indaas Indaas_depdata Indaas_faultgraph Indaas_sia Indaas_util List Printf String
