examples/quickstart.mli:
