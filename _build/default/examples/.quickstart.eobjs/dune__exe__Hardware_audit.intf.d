examples/hardware_audit.mli:
