examples/drift_watch.mli:
