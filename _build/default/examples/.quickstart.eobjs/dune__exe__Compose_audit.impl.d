examples/compose_audit.ml: Array Indaas_faultgraph List Printf String
