examples/importance_analysis.ml: Indaas_depdata Indaas_faultgraph Indaas_sia List Option Printf
