examples/multicloud_pia.ml: Indaas Indaas_depdata Indaas_pia Indaas_util List Printf String
