examples/compose_audit.mli:
