examples/network_audit.mli:
