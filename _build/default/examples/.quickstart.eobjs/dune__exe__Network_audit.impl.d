examples/network_audit.ml: Indaas Indaas_sia List Printf String
