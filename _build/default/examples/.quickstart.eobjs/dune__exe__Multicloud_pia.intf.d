examples/multicloud_pia.mli:
