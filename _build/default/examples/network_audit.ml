(* Case study §6.2.1 — common network dependency.

   Alice wants to deploy a service replicated across two racks of her
   data center (20 candidate racks, 190 possible pairs). INDaaS audits
   every candidate deployment and points her at a pair whose network
   paths share nothing.

   Run with: dune exec examples/network_audit.exe *)

module Scenario = Indaas.Scenario
module Sia_audit = Indaas_sia.Audit
module Report = Indaas_sia.Report

let () =
  print_endline "== Case study: common network dependency (paper 6.2.1) ==";
  print_endline "";
  let case = Scenario.run_network_case () in
  Printf.printf "Candidate two-way deployments audited : %d\n"
    case.Scenario.total_deployments;
  Printf.printf "Deployments without unexpected RGs    : %d\n"
    case.Scenario.clean_deployments;
  Printf.printf "Success probability of a random pick  : %.0f%%\n"
    (100. *. case.Scenario.random_success_probability);
  print_endline "";
  Printf.printf "Most independent deployment: {Rack %s}\n"
    (String.concat ", Rack "
       (List.map string_of_int case.Scenario.best_pair_racks));
  (match case.Scenario.lowest_failure_probability with
  | Some p ->
      Printf.printf
        "Cross-check with uniform device failure probability 0.1:\n\
         Pr(deployment fails) = %.4f — %s\n"
        p
        (if case.Scenario.probability_confirms_best then
           "the size-ranking winner is also the probability argmin"
         else "NOT the probability argmin")
  | None -> ());
  print_endline "";

  print_endline "Top of the ranking (best first):";
  print_string (Report.render_comparison ~max_rows:5 case.Scenario.reports);
  print_endline "";
  print_endline "";

  print_endline "Bottom of the ranking (deployments to avoid):";
  let worst =
    List.filteri
      (fun i _ -> i >= List.length case.Scenario.reports - 3)
      case.Scenario.reports
  in
  List.iter (fun r -> print_endline ("  " ^ Report.summary_line r)) worst;
  print_endline "";

  (* Show why a bad pair is bad. *)
  let bad = List.nth case.Scenario.reports (List.length case.Scenario.reports - 1) in
  print_endline "Details of the worst deployment:";
  print_endline (Report.render_deployment ~max_rgs:5 bad);

  print_endline "";
  print_endline "The failure-sampling algorithm (paper ran 10^6 rounds) reaches";
  print_endline "the same conclusion without the exponential exact analysis:";
  let sampled =
    Scenario.run_network_case
      ~algorithm:(Sia_audit.failure_sampling ~rounds:20_000) ()
  in
  Printf.printf "  sampling winner: {Rack %s}, %d clean deployments (exact: %d)\n"
    (String.concat ", Rack " (List.map string_of_int sampled.Scenario.best_pair_racks))
    sampled.Scenario.clean_deployments case.Scenario.clean_deployments
