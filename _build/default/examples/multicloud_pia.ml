(* Case study §6.2.3 — common software dependency, audited privately.

   Alice wants reliable storage across multiple cloud providers (as
   iCloud rents both EC2 and Azure). Four candidate clouds each run a
   key-value store; none will reveal its software inventory. INDaaS's
   PIA protocol ranks every 2-way and 3-way redundancy deployment by
   Jaccard similarity of the providers' component sets, computed with
   the P-SOP private set intersection cardinality protocol — the
   auditing agent and the other providers never see any plaintext.

   Run with: dune exec examples/multicloud_pia.exe *)

module Scenario = Indaas.Scenario
module Pia_audit = Indaas_pia.Audit
module Psop = Indaas_pia.Psop
module Ks = Indaas_pia.Ks
module Transport = Indaas_pia.Transport
module Catalog = Indaas_depdata.Catalog
module Timing = Indaas_util.Timing
module Prng = Indaas_util.Prng

let () =
  print_endline "== Case study: common software dependency via PIA (paper 6.2.3) ==";
  print_endline "";
  List.iteri
    (fun i app ->
      Printf.printf "  Cloud%d runs %-8s (%d packages in its closure)\n" (i + 1)
        (Catalog.application_name app)
        (List.length (Catalog.packages app)))
    Catalog.all_applications;
  print_endline "";

  let case = Scenario.run_software_case () in
  print_endline "Ranked 2-way redundancy deployments (cf. paper Table 2):";
  print_string (Pia_audit.render case.Scenario.two_way);
  print_endline "";
  print_endline "";
  print_endline "Ranked 3-way redundancy deployments:";
  print_string (Pia_audit.render case.Scenario.three_way);
  print_endline "";
  print_endline "";
  Printf.printf "Recommendation: deploy on %s.\n"
    (String.concat " & " case.Scenario.best_two_way);
  print_endline "";

  (* Peek under the hood of one private evaluation. *)
  print_endline "Protocol internals for the winning pair (P-SOP, 256-bit keys):";
  let g = Prng.of_int 2024 in
  let datasets =
    [| Catalog.packages Catalog.MongoDB; Catalog.packages Catalog.CouchDB |]
  in
  let r, elapsed = Timing.time (fun () -> Psop.run g datasets) in
  Printf.printf
    "  |intersection| = %d, |union| = %d, J = %.4f\n\
    \  commutative encryptions: %d, traffic: %s, wall time: %s\n"
    r.Psop.intersection r.Psop.union r.Psop.jaccard r.Psop.crypto_ops
    (Timing.format_bytes (Transport.total_bytes r.Psop.transport))
    (Timing.format_seconds elapsed);
  print_endline "";

  print_endline "Same pair through the Kissner-Song baseline (Paillier):";
  let rk, elapsed_ks = Timing.time (fun () -> Ks.run ~key_bits:128 g datasets) in
  Printf.printf
    "  |intersection| = %d, Paillier ops: %d, traffic: %s, wall time: %s\n"
    rk.Ks.intersection rk.Ks.crypto_ops
    (Timing.format_bytes (Transport.total_bytes rk.Ks.transport))
    (Timing.format_seconds elapsed_ks);
  Printf.printf "  (KS burns %.0fx more crypto operations — Figure 8's story)\n"
    (float_of_int rk.Ks.crypto_ops /. float_of_int r.Psop.crypto_ops);
  print_endline "";

  print_endline "MinHash compression for large component sets (paper 4.2.4):";
  let rm = Psop.run_minhash ~m:256 g datasets in
  Printf.printf "  m = 256 signatures: J ~ %.4f (exact %.4f), traffic %s\n"
    rm.Psop.jaccard r.Psop.jaccard
    (Timing.format_bytes (Transport.total_bytes rm.Psop.transport))
