(* Case study §6.2.2 — common hardware dependency.

   A lab IaaS cloud (4 servers, 4 switches) runs a Riak storage
   service on two VMs for redundancy. OpenStack's least-loaded-random
   scheduler races two simultaneous placement requests onto the same
   physical server; the SIA audit catches the shared host before the
   service ships, and the operators re-deploy per the report.

   Run with: dune exec examples/hardware_audit.exe *)

module Scenario = Indaas.Scenario
module Report = Indaas_sia.Report
module Sia_audit = Indaas_sia.Audit

let () =
  print_endline "== Case study: common hardware dependency (paper 6.2.2) ==";
  print_endline "";
  let case = Scenario.run_hardware_case () in

  print_endline "OpenStack-like placement of the two Riak VMs:";
  List.iter
    (fun (vm, host) -> Printf.printf "  %s -> %s\n" vm host)
    case.Scenario.initial_hosts;
  Printf.printf "  co-located: %b\n" case.Scenario.co_located;
  print_endline "";

  print_endline "SIA audit of the {VM7, VM8} deployment BEFORE release:";
  print_endline (Report.render_deployment case.Scenario.initial_report);
  print_endline "";
  print_endline "Top-4 ranked risk groups (paper: {Server2} {Switch1} {Core1&Core2} {VM7&VM8}):";
  List.iteri
    (fun i names -> Printf.printf "  %d. {%s}\n" (i + 1) (String.concat ", " names))
    case.Scenario.top4;
  print_endline "";

  Printf.printf
    "The report shows the redundancy effort failed: both VMs share %s.\n"
    (match case.Scenario.initial_hosts with
    | (_, h) :: _ -> h
    | [] -> "?");
  Printf.printf "Consulting the server-level audit, INDaaS recommends {%s}.\n"
    (String.concat ", " case.Scenario.recommended_servers);
  print_endline "Migrating the VMs and re-auditing:";
  print_endline "";
  print_endline (Report.render_deployment case.Scenario.final_report);
  print_endline "";
  Printf.printf "Unexpected risk groups after the fix: %d — %s\n"
    (List.length case.Scenario.final_report.Sia_audit.unexpected)
    (if case.Scenario.fixed then "redundancy restored" else "still broken!")
