(* Aggregate dependency graphs (paper §4.1.1, "composition").

   Models the motivating AWS outage of the paper's introduction: EC2
   instances that look redundant but both depend on the EBS control
   plane. Composing the per-service fault graphs surfaces the shared
   dependency; refining a basic event shows how deeper structure
   changes the verdict.

   Run with: dune exec examples/compose_audit.exe *)

module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset
module Compose = Indaas_faultgraph.Compose
module Probability = Indaas_faultgraph.Probability

let print_rgs g =
  let rgs = Cutset.minimal_risk_groups g in
  Printf.printf "  %d minimal risk groups:\n" (List.length rgs);
  List.iter
    (fun rg -> Printf.printf "    {%s}\n" (String.concat ", " (Cutset.names g rg)))
    (List.sort
       (fun a b -> compare (Array.length a) (Array.length b))
       rgs)

let () =
  print_endline "== Composing per-service fault graphs (AWS-outage shape) ==";
  print_endline "";

  (* Each EC2 instance, audited alone, looks fine: its only
     dependencies are its own rack and the shared EBS service. *)
  let instance name rack =
    Graph.of_fault_sets
      [ (name, [ (rack, 0.05); ("EBS-control-plane", 0.01) ]) ]
  in
  let east = instance "ec2-east" "rack-east" in
  let west = instance "ec2-west" "rack-west" in

  print_endline "Deployment graph = AND(ec2-east, ec2-west) after composition:";
  let combined = Compose.compose ~name:"storage-service" Graph.And [ east; west ] in
  print_rgs combined;
  print_endline "";
  print_endline "  -> {EBS-control-plane} is a size-1 risk group: the 'redundant'";
  print_endline "     instances share their storage backend (the 2012 US-East event).";
  print_endline "";

  let rgs = Cutset.minimal_risk_groups combined in
  let pr = Probability.top_probability_exact combined ~rgs in
  Printf.printf "  Pr(service fails) = %.4f; the shared backend contributes %.0f%%\n"
    pr
    (100.
    *. Probability.relative_importance ~top_probability:pr
         ~rg_probability:0.01);
  print_endline "";

  (* Refinement: EBS itself is internally redundant across two
     replicas... but both replicas run the same buggy agent. *)
  print_endline "Refining the EBS basic event with its own internal structure";
  print_endline "(two replicas, both running the same agent software):";
  let ebs_internal =
    Graph.of_fault_sets
      [
        ("ebs-replica-1", [ ("ebs-server-1", 0.05); ("ebs-agent", 0.01) ]);
        ("ebs-replica-2", [ ("ebs-server-2", 0.05); ("ebs-agent", 0.01) ]);
      ]
  in
  let refined =
    Compose.replace_basic_with combined ~basic:"EBS-control-plane" ebs_internal
  in
  print_rgs refined;
  print_endline "";
  print_endline "  -> the singleton moved one level down: {ebs-agent} is the true";
  print_endline "     common-mode failure; the EBS servers themselves are redundant."
