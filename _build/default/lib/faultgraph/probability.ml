module Prng = Indaas_util.Prng

exception Missing_probability of string

let prob_exn g id =
  match Graph.prob_of g id with
  | Some p -> p
  | None -> raise (Missing_probability (Graph.name_of g id))

let rg_probability g rg =
  Array.fold_left (fun acc id -> acc *. prob_exn g id) 1. rg

(* Pr(union of RG events) by inclusion-exclusion. The probability of
   an intersection of RGs is the product over the union of their
   basic events (independence). *)
let top_probability_exact ?(max_terms = 1 lsl 22) g ~rgs =
  let rgs = Array.of_list rgs in
  let m = Array.length rgs in
  if m = 0 then 0.
  else begin
    if m >= 62 || 1 lsl m > max_terms then
      invalid_arg "Probability.top_probability_exact: too many risk groups";
    let acc = ref 0. in
    for mask = 1 to (1 lsl m) - 1 do
      (* Union of the selected RGs. *)
      let union = Hashtbl.create 16 in
      let bits = ref 0 in
      for i = 0 to m - 1 do
        if mask land (1 lsl i) <> 0 then begin
          incr bits;
          Array.iter (fun id -> Hashtbl.replace union id ()) rgs.(i)
        end
      done;
      let p = Hashtbl.fold (fun id () acc -> acc *. prob_exn g id) union 1. in
      if !bits land 1 = 1 then acc := !acc +. p else acc := !acc -. p
    done;
    !acc
  end

let top_probability_mc ?(rounds = 200_000) rng g =
  if rounds <= 0 then invalid_arg "Probability.top_probability_mc: rounds";
  let basics = Graph.basic_ids g in
  let values = Array.make (Graph.node_count g) false in
  let hits = ref 0 in
  for _ = 1 to rounds do
    Array.iter
      (fun id -> values.(id) <- Prng.bernoulli rng (prob_exn g id))
      basics;
    Graph.evaluate_into g ~values;
    if values.(Graph.top g) then incr hits
  done;
  float_of_int !hits /. float_of_int rounds

let top_probability ?(exact_limit = 20) rng g ~rgs =
  if List.length rgs <= exact_limit then top_probability_exact g ~rgs
  else top_probability_mc rng g

let relative_importance ~top_probability ~rg_probability =
  if top_probability <= 0. then invalid_arg "Probability.relative_importance: Pr(T) = 0";
  rg_probability /. top_probability
