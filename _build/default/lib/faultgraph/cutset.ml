type rg = Graph.node_id array

exception Too_many_cut_sets of int

(* --- sorted-int-array set operations ------------------------------ *)

let is_subset (a : rg) (b : rg) =
  (* a ⊆ b, both sorted ascending *)
  let la = Array.length a and lb = Array.length b in
  if la > lb then false
  else begin
    let i = ref 0 and j = ref 0 in
    while !i < la && !j < lb do
      if a.(!i) = b.(!j) then begin
        incr i;
        incr j
      end
      else if a.(!i) > b.(!j) then incr j
      else j := lb (* a.(!i) missing from b *)
    done;
    !i = la
  end

let union (a : rg) (b : rg) : rg =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la || !j < lb do
    let take_a =
      !j >= lb || (!i < la && a.(!i) <= b.(!j))
    in
    if take_a then begin
      let v = a.(!i) in
      if !j < lb && b.(!j) = v then incr j;
      out.(!k) <- v;
      incr i;
      incr k
    end
    else begin
      out.(!k) <- b.(!j);
      incr j;
      incr k
    end
  done;
  if !k = la + lb then out else Array.sub out 0 !k

(* --- minimization (absorption) ------------------------------------ *)

module RgTbl = Hashtbl.Make (struct
  type t = rg

  let equal (a : rg) (b : rg) = a = b
  let hash (a : rg) = Hashtbl.hash a
end)

(* Does the collection contain a (proper or improper) subset of [s]?
   Two strategies: enumerate the 2^|s| sub-masks of [s] and probe the
   hash table, or scan the accepted sets directly — whichever is
   cheaper for the current sizes. Accepted sets are additionally
   bucketed by their smallest element, so the scan only visits sets
   whose minimum occurs in [s]. *)
let enum_limit = 20

let has_subset_in tbl by_min accepted_count s =
  let n = Array.length s in
  let enum_cost = if n >= enum_limit then max_int else 1 lsl n in
  if enum_cost <= accepted_count * 4 then begin
    (* Iterate over non-empty sub-masks. *)
    let found = ref false in
    let total = 1 lsl n in
    let mask = ref 1 in
    while (not !found) && !mask < total do
      let count = ref 0 in
      for i = 0 to n - 1 do
        if !mask land (1 lsl i) <> 0 then incr count
      done;
      let sub = Array.make !count 0 in
      let k = ref 0 in
      for i = 0 to n - 1 do
        if !mask land (1 lsl i) <> 0 then begin
          sub.(!k) <- s.(i);
          incr k
        end
      done;
      if RgTbl.mem tbl sub then found := true;
      incr mask
    done;
    !found
  end
  else
    (* Any accepted subset of [s] has its minimum element in [s]. *)
    Array.exists
      (fun x ->
        match Hashtbl.find_opt by_min x with
        | None -> false
        | Some sets -> List.exists (fun t -> is_subset t s) sets)
      s

(* Keep only the minimal sets of a family. *)
let minimize (family : rg list) : rg list =
  let sorted =
    List.sort (fun a b -> compare (Array.length a) (Array.length b)) family
  in
  let tbl = RgTbl.create (List.length family) in
  let by_min : (int, rg list) Hashtbl.t = Hashtbl.create 64 in
  let accepted = ref [] in
  let accepted_count = ref 0 in
  List.iter
    (fun s ->
      if
        (not (RgTbl.mem tbl s))
        && not (has_subset_in tbl by_min !accepted_count s)
      then begin
        RgTbl.replace tbl s ();
        (match Array.length s with
        | 0 -> ()
        | _ ->
            let min_elt = s.(0) in
            let bucket =
              match Hashtbl.find_opt by_min min_elt with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace by_min min_elt (s :: bucket));
        accepted := s :: !accepted;
        incr accepted_count
      end)
    sorted;
  List.rev !accepted

(* --- family combination ------------------------------------------- *)

let check_budget ~max_family n =
  if n > max_family then raise (Too_many_cut_sets n)

let or_combine ~max_family families =
  let all = List.concat families in
  check_budget ~max_family (List.length all);
  minimize all

let and_combine ~max_size ~max_family families =
  let product f1 f2 =
    let out = ref [] in
    let n = ref 0 in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            let u = union a b in
            if Array.length u <= max_size then begin
              out := u :: !out;
              incr n;
              check_budget ~max_family !n
            end)
          f2)
      f1;
    minimize !out
  in
  match families with
  | [] -> invalid_arg "Cutset.and_combine: empty"
  | first :: rest -> List.fold_left product first rest

(* Enumerate k-subsets of a list, calling [f] on each. *)
let iter_ksubsets k xs f =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let chosen = Array.make k 0 in
  let rec go start depth =
    if depth = k then f (Array.to_list (Array.map (fun i -> arr.(i)) chosen))
    else
      for i = start to n - (k - depth) do
        chosen.(depth) <- i;
        go (i + 1) (depth + 1)
      done
  in
  if k >= 0 && k <= n then go 0 0

let minimal_risk_groups ?(max_size = max_int) ?(max_family = 500_000) g =
  let memo : rg list option array = Array.make (Graph.node_count g) None in
  Array.iter
    (fun id ->
      let n = Graph.node g id in
      let family =
        match n.Graph.kind with
        | Graph.Basic _ -> [ [| id |] ]
        | Graph.Gate gate ->
            let child_families =
              Array.to_list
                (Array.map
                   (fun c ->
                     match memo.(c) with
                     | Some f -> f
                     | None -> assert false (* topological order *))
                   n.Graph.children)
            in
            (match gate with
            | Graph.Or -> or_combine ~max_family child_families
            | Graph.And -> and_combine ~max_size ~max_family child_families
            | Graph.Kofn k ->
                let acc = ref [] in
                iter_ksubsets k child_families (fun subset ->
                    let f = and_combine ~max_size ~max_family subset in
                    acc := f :: !acc);
                or_combine ~max_family !acc)
      in
      memo.(id) <- Some family)
    (Graph.topological_order g);
  match memo.(Graph.top g) with Some f -> f | None -> assert false

let names g rg = Array.to_list (Array.map (fun id -> Graph.name_of g id) rg)

let is_risk_group g ids =
  let module IS = Set.Make (Int) in
  let set = IS.of_list ids in
  Graph.evaluate g ~failed:(fun id -> IS.mem id set)

let is_minimal_risk_group g ids =
  is_risk_group g ids
  && List.for_all
       (fun removed ->
         not (is_risk_group g (List.filter (fun x -> x <> removed) ids)))
       ids

module RgSet = struct
  type t = unit RgTbl.t

  let create () = RgTbl.create 256
  let add t rg = RgTbl.replace t rg ()
  let mem t rg = RgTbl.mem t rg
  let cardinal t = RgTbl.length t
  let to_list t = RgTbl.fold (fun k () acc -> k :: acc) t []
end
