module Prng = Indaas_util.Prng

type component_rates = { mtbf : float; mttr : float }

let rates ?mttr ~mtbf () =
  let mttr = match mttr with Some m -> m | None -> mtbf /. 100. in
  if mtbf <= 0. || mttr <= 0. then
    invalid_arg "Lifetime.rates: times must be positive";
  { mtbf; mttr }

type config = {
  horizon : float;
  rates_of : string -> component_rates;
}

let default_config =
  { horizon = 100_000.; rates_of = (fun _ -> rates ~mtbf:1000. ()) }

type outage = {
  start : float;
  duration : float;
  failed_components : string list;
}

type result = {
  total_time : float;
  downtime : float;
  availability : float;
  outages : outage list;
  transitions : int;
}

(* Event-driven simulation with a simple binary heap keyed on event
   time. Each basic event always has exactly one pending transition
   (its next flip); we re-draw it whenever it fires. *)
module Heap = struct
  type entry = { time : float; component : int }

  type t = { mutable data : entry array; mutable size : int }

  let create capacity =
    { data = Array.make (max capacity 1) { time = 0.; component = -1 }; size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h entry =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) h.data.(0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- entry;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && h.data.((!i - 1) / 2).time > h.data.(!i).time do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then invalid_arg "Lifetime.Heap.pop: empty";
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.data.(l).time < h.data.(!smallest).time then smallest := l;
      if r < h.size && h.data.(r).time < h.data.(!smallest).time then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    top
end

let simulate ?(config = default_config) rng g =
  if config.horizon <= 0. then invalid_arg "Lifetime.simulate: horizon";
  let basics = Graph.basic_ids g in
  let values = Array.make (Graph.node_count g) false in
  let rates =
    Array.map (fun id -> config.rates_of (Graph.name_of g id)) basics
  in
  (* index of each basic id within [basics] *)
  let slot_of = Hashtbl.create (Array.length basics) in
  Array.iteri (fun slot id -> Hashtbl.replace slot_of id slot) basics;
  let heap = Heap.create (Array.length basics) in
  Array.iteri
    (fun slot _ ->
      Heap.push heap
        { Heap.time = Prng.exponential rng (1. /. rates.(slot).mtbf); component = slot })
    basics;
  Graph.evaluate_into g ~values;
  let top = Graph.top g in
  let down_since = ref None in
  let downtime = ref 0. in
  let outages = ref [] in
  let transitions = ref 0 in
  let now = ref 0. in
  let continue = ref true in
  while !continue do
    let next = Heap.pop heap in
    if next.Heap.time > config.horizon then continue := false
    else begin
      now := next.Heap.time;
      incr transitions;
      let slot = next.Heap.component in
      let id = basics.(slot) in
      values.(id) <- not values.(id);
      let dwell =
        if values.(id) then rates.(slot).mttr (* now down; next flip = repair *)
        else rates.(slot).mtbf
      in
      Heap.push heap
        { Heap.time = !now +. Prng.exponential rng (1. /. dwell); component = slot };
      Graph.evaluate_into g ~values;
      match (!down_since, values.(top)) with
      | None, true ->
          let failed =
            Array.to_list basics
            |> List.filter (fun b -> values.(b))
            |> List.map (Graph.name_of g)
          in
          down_since := Some (!now, failed)
      | Some (start, failed), false ->
          downtime := !downtime +. (!now -. start);
          outages :=
            { start; duration = !now -. start; failed_components = failed }
            :: !outages;
          down_since := None
      | None, false | Some _, true -> ()
    end
  done;
  (* Close an outage still open at the horizon. *)
  (match !down_since with
  | Some (start, failed) ->
      downtime := !downtime +. (config.horizon -. start);
      outages :=
        {
          start;
          duration = config.horizon -. start;
          failed_components = failed;
        }
        :: !outages
  | None -> ());
  {
    total_time = config.horizon;
    downtime = !downtime;
    availability = 1. -. (!downtime /. config.horizon);
    outages = List.rev !outages;
    transitions = !transitions;
  }

let mean_availability ?config ~runs rng g =
  if runs <= 0 then invalid_arg "Lifetime.mean_availability: runs";
  let acc = ref 0. in
  for _ = 1 to runs do
    acc := !acc +. (simulate ?config rng g).availability
  done;
  !acc /. float_of_int runs
