(** Component importance measures from classic fault-tree analysis
    (Vesely et al., the Fault Tree Handbook the paper adapts).

    The paper ranks {e risk groups} by relative importance (§4.1.3);
    these complementary measures rank {e individual components}, which
    is what an operator fixes:

    - {b Birnbaum} importance: [Pr(T | c failed) − Pr(T | c working)]
      — how much the component's state moves the top event. Computed
      exactly on the BDD.
    - {b Fussell–Vesely} importance: [Pr(∪ RGs containing c) / Pr(T)]
      — the share of system failure risk flowing through the
      component. Computed by inclusion–exclusion over the minimal RGs
      containing the component.

    All functions require every reachable basic event to carry a
    failure probability
    ({!Probability.Missing_probability} otherwise). *)

type component_importance = {
  component : Graph.node_id;
  component_name : string;
  birnbaum : float;
  fussell_vesely : float;
}

val birnbaum : Graph.t -> component:Graph.node_id -> float
(** Exact, via BDD conditioning. *)

val fussell_vesely :
  ?max_terms:int ->
  Graph.t ->
  rgs:Cutset.rg list ->
  component:Graph.node_id ->
  float
(** [rgs] must be the complete minimal RG list. Inclusion–exclusion
    over the RGs containing the component; [max_terms] bounds the
    2^m blow-up as in {!Probability.top_probability_exact}. *)

val rank_components :
  ?max_terms:int -> Graph.t -> rgs:Cutset.rg list -> component_importance list
(** All reachable basic events, sorted by Birnbaum importance
    descending (ties by name). *)

val render : component_importance list -> string
(** Report table. *)
