module Prng = Indaas_util.Prng

type config = {
  rounds : int;
  failure_bias : float;
  shrink : bool;
  use_event_probs : bool;
}

let default_config =
  { rounds = 10_000; failure_bias = 0.5; shrink = true; use_event_probs = false }

type result = {
  risk_groups : Cutset.rg list;
  rounds_run : int;
  positive_rounds : int;
}

(* Greedily clear failed basics that the top event does not need; on a
   monotone graph the surviving set is an inclusion-minimal RG. The
   clearing order is randomized per round — a fixed order would bias
   every witness toward the same few minimal RGs and cap the
   detection ratio well below what the round budget allows. *)
let shrink_witness rng g values basics scratch =
  Array.blit basics 0 scratch 0 (Array.length basics);
  Prng.shuffle rng scratch;
  Array.iter
    (fun id ->
      if values.(id) then begin
        values.(id) <- false;
        Graph.evaluate_into g ~values;
        if not values.(Graph.top g) then begin
          values.(id) <- true;
          Graph.evaluate_into g ~values
        end
      end)
    scratch

let run ?(config = default_config) rng g =
  if config.rounds < 0 then invalid_arg "Sampling.run: negative rounds";
  if not (config.failure_bias >= 0. && config.failure_bias <= 1.) then
    invalid_arg "Sampling.run: failure_bias out of [0,1]";
  let basics = Graph.basic_ids g in
  let scratch = Array.copy basics in
  let values = Array.make (Graph.node_count g) false in
  let found = Cutset.RgSet.create () in
  let positives = ref 0 in
  let prob_of id =
    if config.use_event_probs then
      match Graph.prob_of g id with
      | Some p -> p
      | None -> config.failure_bias
    else config.failure_bias
  in
  for _ = 1 to config.rounds do
    Array.iter (fun id -> values.(id) <- Prng.bernoulli rng (prob_of id)) basics;
    Graph.evaluate_into g ~values;
    if values.(Graph.top g) then begin
      incr positives;
      if config.shrink then shrink_witness rng g values basics scratch;
      let witness =
        Array.of_list
          (List.filter (fun id -> values.(id)) (Array.to_list basics))
      in
      Cutset.RgSet.add found witness
    end
  done;
  {
    risk_groups = Cutset.RgSet.to_list found;
    rounds_run = config.rounds;
    positive_rounds = !positives;
  }

let detection_ratio ~found ~all =
  match all with
  | [] -> 1.
  | _ ->
      let tbl = Cutset.RgSet.create () in
      List.iter (Cutset.RgSet.add tbl) found;
      let hit = List.filter (Cutset.RgSet.mem tbl) all in
      float_of_int (List.length hit) /. float_of_int (List.length all)

type coverage_point = {
  rounds : int;
  seconds : float;
  detected : int;
  fraction : float;
}

let coverage ?(failure_bias = 0.5) rng g ~targets ~checkpoints =
  let checkpoints = List.sort_uniq compare checkpoints in
  (match checkpoints with
  | c :: _ when c < 0 -> invalid_arg "Sampling.coverage: negative checkpoint"
  | _ -> ());
  let total_targets = List.length targets in
  let basics = Graph.basic_ids g in
  let values = Array.make (Graph.node_count g) false in
  (* Undetected minimal RGs, scanned and filtered on each positive
     round; detection = witness contains the RG. *)
  let undetected = ref targets in
  let detected = ref 0 in
  let start = Unix.gettimeofday () in
  let points = ref [] in
  let round = ref 0 in
  List.iter
    (fun checkpoint ->
      while !round < checkpoint do
        incr round;
        Array.iter
          (fun id -> values.(id) <- Prng.bernoulli rng failure_bias)
          basics;
        Graph.evaluate_into g ~values;
        if values.(Graph.top g) && !undetected <> [] then begin
          let survivors =
            List.filter
              (fun rg ->
                let covered = Array.for_all (fun id -> values.(id)) rg in
                if covered then incr detected;
                not covered)
              !undetected
          in
          undetected := survivors
        end
      done;
      points :=
        {
          rounds = !round;
          seconds = Unix.gettimeofday () -. start;
          detected = !detected;
          fraction =
            (if total_targets = 0 then 1.
             else float_of_int !detected /. float_of_int total_targets);
        }
        :: !points)
    checkpoints;
  List.rev !points
