type component_importance = {
  component : Graph.node_id;
  component_name : string;
  birnbaum : float;
  fussell_vesely : float;
}

let prob_exn g id =
  match Graph.prob_of g id with
  | Some p -> p
  | None -> raise (Probability.Missing_probability (Graph.name_of g id))

let conditioned_probability g ~component ~value =
  let m, top = Bdd.of_graph g in
  Bdd.probability m top ~prob_of:(fun id ->
      if id = component then (if value then 1. else 0.) else prob_exn g id)

let birnbaum g ~component =
  conditioned_probability g ~component ~value:true
  -. conditioned_probability g ~component ~value:false

let fussell_vesely ?max_terms g ~rgs ~component =
  let containing =
    List.filter (fun rg -> Array.exists (fun id -> id = component) rg) rgs
  in
  let top = Probability.top_probability_exact ?max_terms g ~rgs in
  if top <= 0. then 0.
  else
    Probability.top_probability_exact ?max_terms g ~rgs:containing /. top

let rank_components ?max_terms g ~rgs =
  Array.to_list (Graph.basic_ids g)
  |> List.map (fun component ->
         {
           component;
           component_name = Graph.name_of g component;
           birnbaum = birnbaum g ~component;
           fussell_vesely = fussell_vesely ?max_terms g ~rgs ~component;
         })
  |> List.sort (fun a b ->
         match compare b.birnbaum a.birnbaum with
         | 0 -> compare a.component_name b.component_name
         | c -> c)

let render importances =
  let t =
    Indaas_util.Table.create
      ~aligns:
        [ Indaas_util.Table.Right; Indaas_util.Table.Left;
          Indaas_util.Table.Right; Indaas_util.Table.Right ]
      [ "rank"; "component"; "Birnbaum"; "Fussell-Vesely" ]
  in
  List.iteri
    (fun i c ->
      Indaas_util.Table.add_row t
        [
          string_of_int (i + 1);
          c.component_name;
          Printf.sprintf "%.6g" c.birnbaum;
          Printf.sprintf "%.6g" c.fussell_vesely;
        ])
    importances;
  Indaas_util.Table.render t
