(** Graphviz (DOT) export of fault graphs, for inspecting audits. *)

val to_dot : ?highlight:Cutset.rg -> Graph.t -> string
(** Renders the cone of the top event. Basic events are boxes
    (annotated with their failure probability when present), gates are
    ellipses labelled AND/OR/k-of-n, and the top event is drawn with a
    double border. Events in [highlight] are filled red. *)

val write_file : ?highlight:Cutset.rg -> string -> Graph.t -> unit
(** [write_file path g] writes [to_dot g] to [path]. *)
