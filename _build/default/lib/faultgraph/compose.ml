(* Both operations rebuild into a fresh builder, copying each source
   graph's reachable cone. Basic events merge by name; gate nodes are
   always duplicated (their names carry no identity). *)

let copy_into b ?(substitute = fun _ _ -> None) g =
  let mapping = Hashtbl.create 64 in
  Array.iter
    (fun id ->
      let n = Graph.node g id in
      let new_id =
        match substitute n.Graph.name n.Graph.kind with
        | Some forced -> forced
        | None -> (
            match n.Graph.kind with
            | Graph.Basic prob -> Graph.Builder.add_basic b ?prob n.Graph.name
            | Graph.Gate gate ->
                let children =
                  Array.to_list
                    (Array.map (fun c -> Hashtbl.find mapping c) n.Graph.children)
                in
                Graph.Builder.add_gate b ~name:n.Graph.name gate children)
      in
      Hashtbl.replace mapping id new_id)
    (Graph.topological_order g);
  Hashtbl.find mapping (Graph.top g)

let compose ~name gate graphs =
  if graphs = [] then invalid_arg "Compose.compose: empty list";
  let b = Graph.Builder.create () in
  let tops = List.map (fun g -> copy_into b g) graphs in
  let top = Graph.Builder.add_gate b ~name gate tops in
  Graph.Builder.build b ~top

let replace_basic_with g ~basic sub =
  (match Graph.find_basic g basic with
  | Some _ -> ()
  | None ->
      invalid_arg
        (Printf.sprintf "Compose.replace_basic_with: no basic event %S" basic));
  let b = Graph.Builder.create () in
  let sub_top = copy_into b sub in
  let substitute nm kind =
    match kind with
    | Graph.Basic _ when nm = basic -> Some sub_top
    | Graph.Basic _ | Graph.Gate _ -> None
  in
  let top = copy_into b ~substitute g in
  Graph.Builder.build b ~top
