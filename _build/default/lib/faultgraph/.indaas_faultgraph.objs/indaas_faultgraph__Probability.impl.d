lib/faultgraph/probability.ml: Array Graph Hashtbl Indaas_util List
