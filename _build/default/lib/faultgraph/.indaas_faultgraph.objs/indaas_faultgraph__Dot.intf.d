lib/faultgraph/dot.mli: Cutset Graph
