lib/faultgraph/importance.mli: Cutset Graph
