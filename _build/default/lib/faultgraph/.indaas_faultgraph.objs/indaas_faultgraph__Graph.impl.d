lib/faultgraph/graph.ml: Array Format Hashtbl List Option Printf Set String
