lib/faultgraph/compose.mli: Graph
