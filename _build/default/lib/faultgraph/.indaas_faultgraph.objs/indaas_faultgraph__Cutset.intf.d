lib/faultgraph/cutset.mli: Graph
