lib/faultgraph/sampling.mli: Cutset Graph Indaas_util
