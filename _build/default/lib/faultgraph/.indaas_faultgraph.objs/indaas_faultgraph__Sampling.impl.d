lib/faultgraph/sampling.ml: Array Cutset Graph Indaas_util List Unix
