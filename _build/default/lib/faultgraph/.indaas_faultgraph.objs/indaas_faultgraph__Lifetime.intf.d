lib/faultgraph/lifetime.mli: Graph Indaas_util
