lib/faultgraph/compose.ml: Array Graph Hashtbl List Printf
