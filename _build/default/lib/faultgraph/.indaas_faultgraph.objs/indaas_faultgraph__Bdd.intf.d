lib/faultgraph/bdd.mli: Graph
