lib/faultgraph/lifetime.ml: Array Graph Hashtbl Indaas_util List
