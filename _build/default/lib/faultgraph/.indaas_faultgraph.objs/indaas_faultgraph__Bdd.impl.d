lib/faultgraph/bdd.ml: Array Graph Hashtbl List Probability
