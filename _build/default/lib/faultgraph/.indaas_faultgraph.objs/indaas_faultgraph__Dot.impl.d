lib/faultgraph/dot.ml: Array Buffer Fun Graph Int Printf Set String
