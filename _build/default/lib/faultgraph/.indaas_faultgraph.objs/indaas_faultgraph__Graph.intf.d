lib/faultgraph/graph.mli: Format
