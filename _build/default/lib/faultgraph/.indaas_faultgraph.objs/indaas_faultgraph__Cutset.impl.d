lib/faultgraph/cutset.ml: Array Graph Hashtbl Int List Set
