lib/faultgraph/importance.ml: Array Bdd Graph Indaas_util List Printf Probability
