lib/faultgraph/probability.mli: Cutset Graph Indaas_util
