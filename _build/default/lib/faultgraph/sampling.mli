(** Risk-group detection by random failure sampling (paper §4.1.2,
    “failure sampling algorithm”).

    Each round flips a coin for every basic event, propagates values
    bottom-up, and — when the top event fails — records the witness
    set of failed basic events. Following the paper's observation that
    sampled witnesses are not necessarily minimal, each witness is
    optionally {e shrunk} to a genuine minimal RG by greedily clearing
    failed events that are not needed for the top event to fail (fault
    graphs are monotone, so the result is inclusion-minimal). Linear
    time per round, non-deterministic and incomplete — the trade-off
    the paper evaluates in Figure 7. *)

type config = {
  rounds : int;  (** sampling rounds to execute *)
  failure_bias : float;
      (** probability of marking each basic event failed; the paper
          uses fair coins (0.5). Lower biases favour small RGs. *)
  shrink : bool;
      (** reduce each witness to a minimal RG (default behaviour);
          when [false], raw witness sets are recorded instead. *)
  use_event_probs : bool;
      (** when [true], a basic event with an attached failure
          probability fails with that probability instead of
          [failure_bias]. *)
}

val default_config : config
(** 10^4 rounds, fair coins, shrinking on, event probabilities off. *)

type result = {
  risk_groups : Cutset.rg list;  (** distinct RGs found *)
  rounds_run : int;
  positive_rounds : int;  (** rounds in which the top event failed *)
}

val run : ?config:config -> Indaas_util.Prng.t -> Graph.t -> result

val detection_ratio : found:Cutset.rg list -> all:Cutset.rg list -> float
(** Fraction of [all] (e.g. the exact minimal RGs) that appear in
    [found]. *)

(** {1 Coverage analysis — the Figure 7 experiment}

    The paper measures the {e fraction of minimal RGs detected} after
    a number of sampling rounds, where a minimal RG counts as detected
    once some positive round's witness set contains it (witnesses are
    not minimal; they are supersets of one or more minimal RGs). This
    incremental runner reports that fraction at the requested round
    checkpoints of a single sampling run. *)

type coverage_point = {
  rounds : int;  (** cumulative rounds executed *)
  seconds : float;  (** cumulative wall-clock time *)
  detected : int;  (** minimal RGs covered so far *)
  fraction : float;  (** detected / #targets *)
}

val coverage :
  ?failure_bias:float ->
  Indaas_util.Prng.t ->
  Graph.t ->
  targets:Cutset.rg list ->
  checkpoints:int list ->
  coverage_point list
(** [coverage g ~targets ~checkpoints] samples up to
    [max checkpoints] rounds and reports one point per checkpoint
    (sorted). [targets] is typically the exact minimal RG list. *)
