let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(highlight = [||]) g =
  let module IS = Set.Make (Int) in
  let marked = IS.of_list (Array.to_list highlight) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph fault_graph {\n  rankdir=BT;\n";
  Array.iter
    (fun id ->
      let n = Graph.node g id in
      let shape, label =
        match n.Graph.kind with
        | Graph.Basic None -> ("box", escape n.Graph.name)
        | Graph.Basic (Some p) ->
            ("box", Printf.sprintf "%s\\np=%.4g" (escape n.Graph.name) p)
        | Graph.Gate Graph.And ->
            ("ellipse", Printf.sprintf "%s\\nAND" (escape n.Graph.name))
        | Graph.Gate Graph.Or ->
            ("ellipse", Printf.sprintf "%s\\nOR" (escape n.Graph.name))
        | Graph.Gate (Graph.Kofn k) ->
            ("ellipse", Printf.sprintf "%s\\n%d-of-%d" (escape n.Graph.name) k
               (Array.length n.Graph.children))
      in
      let extra =
        (if id = Graph.top g then ", peripheries=2" else "")
        ^
        if IS.mem id marked then ", style=filled, fillcolor=\"#ff9999\""
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=%s, label=\"%s\"%s];\n" id shape label
           extra))
    (Graph.topological_order g);
  Array.iter
    (fun id ->
      let n = Graph.node g id in
      Array.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" c id))
        n.Graph.children)
    (Graph.topological_order g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?highlight path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?highlight g))
