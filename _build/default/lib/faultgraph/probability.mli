(** Failure-probability computations over fault graphs (paper
    §4.1.3).

    Basic events are assumed to fail independently with their attached
    probabilities. [Pr(T)], the top-event probability, is computed by
    inclusion–exclusion over the minimal risk groups (exact, 2^m
    terms) or estimated by Monte-Carlo simulation when the RG count
    makes inclusion–exclusion intractable. *)

exception Missing_probability of string
(** A basic event reachable from the top has no attached probability. *)

val rg_probability : Graph.t -> Cutset.rg -> float
(** Probability that all events of one RG occur simultaneously. *)

val top_probability_exact :
  ?max_terms:int -> Graph.t -> rgs:Cutset.rg list -> float
(** Inclusion–exclusion over [rgs] (which should be the complete set
    of minimal RGs). Raises [Invalid_argument] when [2^|rgs|] exceeds
    [max_terms] (default 2^22). *)

val top_probability_mc :
  ?rounds:int -> Indaas_util.Prng.t -> Graph.t -> float
(** Monte-Carlo estimate of [Pr(T)] (default 200_000 rounds). *)

val top_probability :
  ?exact_limit:int -> Indaas_util.Prng.t -> Graph.t -> rgs:Cutset.rg list -> float
(** Exact when [|rgs| <= exact_limit] (default 20), Monte-Carlo
    otherwise. *)

val relative_importance :
  top_probability:float -> rg_probability:float -> float
(** [I_C = Pr(C) / Pr(T)] as defined in §4.1.3. *)
