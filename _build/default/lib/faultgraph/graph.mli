(** Fault graphs: directed acyclic AND/OR/k-of-n dependency structures
    (paper §4.1.1).

    A fault graph has {e basic events} (leaves — individual component
    failures, optionally weighted with a failure probability), {e
    intermediate events} (gates over child events) and one {e top
    event} whose occurrence means the audited redundancy deployment
    fails. The same type also covers the paper's two lower levels of
    detail: a component-set graph is a two-level AND-of-ORs graph with
    unweighted leaves, and a fault-set graph is the same with weighted
    leaves. *)

type node_id = int

(** Gate semantics: how child failures propagate. [Kofn k] fires when
    at least [k] children fail; [And] over [n] children is [Kofn n],
    [Or] is [Kofn 1] — kept distinct for reporting fidelity. *)
type gate = And | Or | Kofn of int

type node_kind =
  | Basic of float option  (** leaf; optional failure probability *)
  | Gate of gate

type node = private {
  id : node_id;
  name : string;
  kind : node_kind;
  children : node_id array;  (** empty iff [kind] is [Basic]. *)
}

type t
(** An immutable, validated fault graph. *)

(** {1 Construction} *)

module Builder : sig
  type graph = t
  type t

  val create : unit -> t

  val add_basic : t -> ?prob:float -> string -> node_id
  (** Adds a leaf. Re-adding an existing basic name returns the
      original id (shared components appear once). Raises
      [Invalid_argument] if the name was previously added as a gate,
      or if [prob] is outside \[0, 1\] or contradicts the probability
      the name was first added with. *)

  val add_gate : t -> name:string -> gate -> node_id list -> node_id
  (** Adds an internal event over existing children. Gate names need
      not be unique. Raises [Invalid_argument] on unknown children, an
      empty child list, or a [Kofn k] with [k < 1] or [k] exceeding
      the child count. *)

  val find_basic : t -> string -> node_id option

  val build : t -> top:node_id -> graph
  (** Seals the graph with [top] as the top event. Nodes unreachable
      from [top] are retained but ignored by analyses. Raises
      [Invalid_argument] if [top] is unknown. *)
end

val of_component_sets : (string * string list) list -> t
(** [of_component_sets [(source, components); ...]] builds the
    two-level AND-of-ORs graph of Figure 4(a): the deployment fails
    when every source fails; a source fails when any of its
    components fails. Components with equal names are shared. *)

val of_fault_sets : (string * (string * float) list) list -> t
(** Same structure with failure probabilities — Figure 4(b). *)

(** {1 Accessors} *)

val top : t -> node_id
val node : t -> node_id -> node
val node_count : t -> int
val basic_ids : t -> node_id array
(** All basic events reachable from the top event. *)

val basic_names : t -> string list
val name_of : t -> node_id -> string
val prob_of : t -> node_id -> float option
val find_basic : t -> string -> node_id option
val is_basic : t -> node_id -> bool

val topological_order : t -> node_id array
(** Children before parents; covers exactly the nodes reachable from
    the top event. *)

val component_sets : t -> (string * string list) list
(** Downgrade to the component-set level of detail: for each child of
    the top event, the names of the basic events it (transitively)
    depends on. Component lists are sorted and duplicate-free. *)

val evaluate : t -> failed:(node_id -> bool) -> bool
(** [evaluate g ~failed] computes the top event value given an
    assignment of basic-event failures. *)

val evaluate_into : t -> values:bool array -> unit
(** In-place evaluation for hot loops: [values] is indexed by node id;
    basic entries must be pre-set, gate entries are overwritten. Its
    length must be [node_count g]. *)

val pp : Format.formatter -> t -> unit
(** Structural summary (node and leaf counts, top gate). *)
