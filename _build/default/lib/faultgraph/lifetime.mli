(** Continuous-time failure/repair simulation over fault graphs.

    INDaaS's premise is that structural independence predicts fewer
    correlated outages (§1). This module closes the loop: it simulates
    component lifetimes — each basic event alternates between up and
    down with exponential time-to-failure and time-to-repair — and
    measures how often and for how long the top event (the audited
    deployment) is down. Deployments that the auditor ranks more
    independent should measure higher availability; the validation
    benchmark checks exactly that.

    The simulation is an exact event-driven competing-exponentials
    process: state changes one component at a time, and the top event
    is re-evaluated at each transition. *)

type component_rates = {
  mtbf : float;  (** mean time between failures (up-state dwell) *)
  mttr : float;  (** mean time to repair (down-state dwell) *)
}

val rates : ?mttr:float -> mtbf:float -> unit -> component_rates
(** Default [mttr] is [mtbf /. 100.] (components are up ~99% of the
    time). Raises [Invalid_argument] on non-positive rates. *)

type config = {
  horizon : float;  (** simulated time span *)
  rates_of : string -> component_rates;
      (** per-component lifetimes, by basic-event name *)
}

type outage = {
  start : float;
  duration : float;
  failed_components : string list;
      (** basic events down when the outage began *)
}

type result = {
  total_time : float;
  downtime : float;
  availability : float;  (** 1 - downtime/total_time *)
  outages : outage list;  (** in chronological order *)
  transitions : int;  (** component state changes simulated *)
}

val simulate : ?config:config -> Indaas_util.Prng.t -> Graph.t -> result
(** Default config: horizon 100_000, every component at
    [rates ~mtbf:1000. ()]. *)

val mean_availability :
  ?config:config -> runs:int -> Indaas_util.Prng.t -> Graph.t -> float
(** Average availability over several independent simulations. *)

val default_config : config
