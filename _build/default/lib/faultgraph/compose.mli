(** Composition of fault graphs (paper §4.1.1, “dependency graph
    composition”; details in the companion technical report).

    Composing the graphs of individual services yields the aggregate
    graph of a deployment that uses them together — e.g. EC2 instances
    depending on both EBS and ELB. Basic events with equal names are
    identified across the composed graphs, which is how shared
    components (and hence cross-service correlated failures) surface. *)

val compose : name:string -> Graph.gate -> Graph.t list -> Graph.t
(** [compose ~name gate graphs] builds a new graph whose top event
    [name] combines the top events of [graphs] under [gate]. Basic
    events are merged by name (probabilities must agree; a missing
    probability defers to the other graph's). Raises
    [Invalid_argument] on an empty list or conflicting
    probabilities. *)

val replace_basic_with : Graph.t -> basic:string -> Graph.t -> Graph.t
(** [replace_basic_with g ~basic sub] refines [g] by substituting the
    basic event named [basic] with the whole graph [sub] (its top
    event takes the basic event's place) — modelling e.g. “this
    storage backend is itself a redundant system”. Raises
    [Invalid_argument] if [basic] is not a basic event of [g]. *)
