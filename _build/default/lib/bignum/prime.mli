(** Probabilistic primality testing and prime generation, used by the
    PIA crypto substrate (commutative encryption and Paillier key
    generation, paper §4.2.2). *)

val small_primes : int array
(** Primes below 1000, for trial division. *)

val is_probably_prime : ?rounds:int -> Indaas_util.Prng.t -> Nat.t -> bool
(** Miller–Rabin with [rounds] random bases (default 24) after trial
    division. Error probability at most 4^-rounds for composites. *)

val generate : ?rounds:int -> Indaas_util.Prng.t -> bits:int -> Nat.t
(** [generate g ~bits] returns a probable prime of exactly [bits] bits
    (top bit set). [bits] must be at least 2. *)

val generate_distinct_pair : ?rounds:int -> Indaas_util.Prng.t -> bits:int -> Nat.t * Nat.t
(** Two distinct probable primes of [bits] bits each (for RSA/Paillier
    moduli). *)

val oakley_group2 : Nat.t
(** The well-known 1024-bit safe prime from RFC 2409 (Oakley group 2),
    usable as a fixed modulus for commutative encryption at paper-scale
    key size without paying generation cost. *)
