module Prng = Indaas_util.Prng

let small_primes =
  (* Sieve of Eratosthenes below 1000, computed once at load. *)
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  let i = ref 2 in
  while !i * !i <= limit do
    if sieve.(!i) then begin
      let j = ref (!i * !i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + !i
      done
    end;
    incr i
  done;
  let out = ref [] in
  for k = limit downto 2 do
    if sieve.(k) then out := k :: !out
  done;
  Array.of_list !out

let divisible_by_small_prime n =
  let found = ref false in
  let i = ref 0 in
  let len = Array.length small_primes in
  while (not !found) && !i < len do
    let p = small_primes.(!i) in
    (match Nat.to_int_opt n with
    | Some v when v = p -> () (* n IS the small prime, not divisible-strictly *)
    | _ ->
        let _, r = Nat.divmod n (Nat.of_int p) in
        if Nat.is_zero r then found := true);
    incr i
  done;
  !found

(* One Miller–Rabin round: is [a] a witness of compositeness for [n]?
   n - 1 = d * 2^s with d odd. *)
let mr_witness ~n ~n_minus_1 ~d ~s a =
  let x = ref (Nat.mod_pow ~base:a ~exp:d ~modulus:n) in
  if Nat.is_one !x || Nat.equal !x n_minus_1 then false
  else begin
    let witness = ref true in
    let r = ref 1 in
    while !witness && !r < s do
      x := Nat.rem (Nat.mul !x !x) n;
      if Nat.equal !x n_minus_1 then witness := false;
      incr r
    done;
    !witness
  end

let is_probably_prime ?(rounds = 24) g n =
  match Nat.to_int_opt n with
  | Some v when v < 2 -> false
  | Some 2 | Some 3 -> true
  | _ ->
      if Nat.is_even n then false
      else if divisible_by_small_prime n then false
      else begin
        let n_minus_1 = Nat.sub n Nat.one in
        (* Factor n-1 = d * 2^s. *)
        let s = ref 0 in
        let d = ref n_minus_1 in
        while Nat.is_even !d do
          d := Nat.shift_right !d 1;
          incr s
        done;
        let composite = ref false in
        let round = ref 0 in
        while (not !composite) && !round < rounds do
          (* Base in [2, n-2]. *)
          let a =
            Nat.add (Nat.random_below g (Nat.sub n (Nat.of_int 3))) Nat.two
          in
          if mr_witness ~n ~n_minus_1 ~d:!d ~s:!s a then composite := true;
          incr round
        done;
        not !composite
      end

let generate ?(rounds = 24) g ~bits =
  if bits < 2 then invalid_arg "Prime.generate: bits must be >= 2";
  let rec attempt () =
    let candidate = Nat.random_bits g bits in
    (* Force the top bit (exact width) and the bottom bit (odd). *)
    let top = Nat.shift_left Nat.one (bits - 1) in
    let candidate =
      if Nat.testbit candidate (bits - 1) then candidate
      else Nat.add candidate top
    in
    let candidate =
      if Nat.is_even candidate then Nat.add candidate Nat.one else candidate
    in
    if Nat.bit_length candidate = bits && is_probably_prime ~rounds g candidate
    then candidate
    else attempt ()
  in
  attempt ()

let generate_distinct_pair ?(rounds = 24) g ~bits =
  let p = generate ~rounds g ~bits in
  let rec next () =
    let q = generate ~rounds g ~bits in
    if Nat.equal p q then next () else q
  in
  (p, next ())

let oakley_group2 =
  Nat.of_hex
    ("FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
   ^ "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
   ^ "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
   ^ "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF")
