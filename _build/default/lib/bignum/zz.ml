(* Sign-magnitude: [sign] is -1, 0 or 1, and [mag] is zero iff [sign]
   is 0. *)
type t = { sign : int; mag : Nat.t }

let make sign mag =
  if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign; mag }

let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let minus_one = { sign = -1; mag = Nat.one }

let of_nat n = make 1 n

let of_int n =
  if n >= 0 then make 1 (Nat.of_int n) else make (-1) (Nat.of_int (-n))

let to_nat t =
  if t.sign < 0 then invalid_arg "Zz.to_nat: negative" else t.mag

let to_int t =
  let v = Nat.to_int t.mag in
  if t.sign < 0 then -v else v

let sign t = t.sign
let abs t = t.mag
let neg t = make (-t.sign) t.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (Nat.sub a.mag b.mag)
    else make b.sign (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b = make (a.sign * b.sign) (Nat.mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q_mag, r_mag = Nat.divmod a.mag b.mag in
  if a.sign >= 0 then (make b.sign q_mag, make 1 r_mag)
  else if Nat.is_zero r_mag then (make (-b.sign) q_mag, zero)
  else
    (* Round the quotient toward -infinity so the remainder is
       non-negative: a = q*b + r with 0 <= r < |b|. *)
    (make (-b.sign) (Nat.add q_mag Nat.one), make 1 (Nat.sub b.mag r_mag))

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else a.sign * Nat.compare a.mag b.mag

let equal a b = compare a b = 0

let erem a m =
  if Nat.is_zero m then raise Division_by_zero;
  let r = Nat.rem a.mag m in
  if a.sign >= 0 || Nat.is_zero r then r else Nat.sub m r

let egcd a b =
  let r0 = ref (of_nat a) and r1 = ref (of_nat b) in
  let x0 = ref one and x1 = ref zero in
  let y0 = ref zero and y1 = ref one in
  while !r1.sign <> 0 do
    let q, r = divmod !r0 !r1 in
    r0 := !r1;
    r1 := r;
    let nx = sub !x0 (mul q !x1) in
    x0 := !x1;
    x1 := nx;
    let ny = sub !y0 (mul q !y1) in
    y0 := !y1;
    y1 := ny
  done;
  (to_nat !r0, !x0, !y0)

let to_string t =
  match t.sign with
  | 0 -> "0"
  | s when s > 0 -> Nat.to_decimal t.mag
  | _ -> "-" ^ Nat.to_decimal t.mag

let pp fmt t = Format.pp_print_string fmt (to_string t)
