lib/bignum/zz.ml: Format Nat Stdlib
