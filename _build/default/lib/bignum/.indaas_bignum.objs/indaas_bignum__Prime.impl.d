lib/bignum/prime.ml: Array Indaas_util Nat
