lib/bignum/nat.ml: Array Buffer Bytes Char Format Indaas_util Int64 List Printf Stdlib String
