lib/bignum/nat.mli: Format Indaas_util
