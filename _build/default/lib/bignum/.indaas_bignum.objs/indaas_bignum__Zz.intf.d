lib/bignum/zz.mli: Format Nat
