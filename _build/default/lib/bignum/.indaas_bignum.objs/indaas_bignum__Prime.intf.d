lib/bignum/prime.mli: Indaas_util Nat
