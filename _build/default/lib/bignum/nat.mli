(** Arbitrary-precision natural numbers.

    Pure-OCaml replacement for the subset of zarith the INDaaS crypto
    substrate needs: the commutative-encryption and Paillier schemes of
    the PIA protocols (paper §4.2) require modular exponentiation over
    multi-hundred-bit moduli, and the sealed build environment has no
    bignum package.

    Representation: little-endian array of base-2^31 limbs with no
    trailing zero limb; the value 0 is the empty array. All operations
    are functional (inputs never mutated). *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int
(** Raises [Failure] if the value exceeds [max_int]. *)

val to_int_opt : t -> int option

val of_int64 : int64 -> t
(** Raises [Invalid_argument] on negative input. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t
val add_int : t -> int -> t

val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val sub_int : t -> int -> t

val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero] if
    [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val testbit : t -> int -> bool
(** [testbit a i] is bit [i] (little-endian); [false] beyond the top. *)

val pow : t -> int -> t
(** [pow a k] is [a^k] by repeated squaring; [k >= 0]. *)

val mod_pow : base:t -> exp:t -> modulus:t -> t
(** [mod_pow ~base ~exp ~modulus] is [base^exp mod modulus].
    Raises [Division_by_zero] if [modulus] is zero. *)

val gcd : t -> t -> t

val mod_inverse : t -> t -> t option
(** [mod_inverse a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1], else [None]. *)

val of_bytes_be : string -> t
(** Big-endian bytes to natural. The empty string is 0. *)

val to_bytes_be : t -> string
(** Minimal big-endian encoding; 0 encodes to the empty string. *)

val byte_length : t -> int
(** Length of [to_bytes_be]. *)

val of_hex : string -> t
(** Parses a hexadecimal string (no prefix). Raises [Invalid_argument]
    on non-hex characters or empty input. *)

val to_hex : t -> string

val of_decimal : string -> t
(** Parses a decimal string. Raises [Invalid_argument] on bad input. *)

val to_decimal : t -> string

val pp : Format.formatter -> t -> unit
(** Prints in decimal. *)

val random_bits : Indaas_util.Prng.t -> int -> t
(** [random_bits g n] is uniform over \[0, 2^n). *)

val random_below : Indaas_util.Prng.t -> t -> t
(** [random_below g bound] is uniform over \[0, bound); [bound] must be
    positive. *)
