(* Little-endian base-2^31 limbs, no trailing zero limb. Base 2^31 is
   chosen so that a limb product plus carries stays below OCaml's
   63-bit native [max_int]: (2^31-1)^2 + 2*(2^31-1) < 2^62 - 1. *)

type t = int array

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero a = Array.length a = 0
let is_one a = Array.length a = 1 && a.(0) = 1
let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec limbs acc n = if n = 0 then List.rev acc else limbs ((n land mask) :: acc) (n lsr limb_bits) in
    Array.of_list (limbs [] n)
  end

let of_int64 n =
  if Int64.compare n 0L < 0 then invalid_arg "Nat.of_int64: negative";
  (* Peel 31-bit limbs directly from the int64. *)
  let rec peel acc v =
    if Int64.equal v 0L then List.rev acc
    else
      peel
        (Int64.to_int (Int64.logand v (Int64.of_int mask)) :: acc)
        (Int64.shift_right_logical v limb_bits)
  in
  normalize (Array.of_list (peel [] n))

let rec bit_length_int v = if v = 0 then 0 else 1 + bit_length_int (v lsr 1)

let to_int_opt a =
  let la = Array.length a in
  let bits =
    if la = 0 then 0 else ((la - 1) * limb_bits) + bit_length_int a.(la - 1)
  in
  if bits > 62 then None
  else begin
    let v = ref 0 in
    for i = la - 1 downto 0 do
      v := (!v lsl limb_bits) lor a.(i)
    done;
    Some !v
  end

let to_int a =
  match to_int_opt a with
  | Some v -> v
  | None -> failwith "Nat.to_int: overflow"

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  normalize out

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: underflow";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let add_int a n =
  if n < 0 then invalid_arg "Nat.add_int: negative" else add a (of_int n)

let sub_int a n =
  if n < 0 then invalid_arg "Nat.sub_int: negative" else sub a (of_int n)

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let p = (ai * b.(j)) + out.(i + j) + !carry in
        out.(i + j) <- p land mask;
        carry := p lsr limb_bits
      done;
      (* Propagate the final carry (may itself carry further). *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = out.(!k) + !carry in
        out.(!k) <- s land mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize out
  end

let mul_int a n =
  if n < 0 then invalid_arg "Nat.mul_int: negative";
  mul a (of_int n)

let bit_length (a : t) =
  let n = Array.length a in
  if n = 0 then 0 else ((n - 1) * limb_bits) + bit_length_int a.(n - 1)

let testbit (a : t) i =
  if i < 0 then invalid_arg "Nat.testbit: negative index";
  let limb = i / limb_bits and off = i mod limb_bits in
  if limb >= Array.length a then false else (a.(limb) lsr off) land 1 = 1

let shift_left (a : t) k =
  if k < 0 then invalid_arg "Nat.shift_left: negative";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let out = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 out limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bits) lor !carry in
        out.(i + limbs) <- v land mask;
        carry := v lsr limb_bits
      done;
      out.(la + limbs) <- !carry
    end;
    normalize out
  end

let shift_right (a : t) k =
  if k < 0 then invalid_arg "Nat.shift_right: negative";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let out = Array.make n 0 in
      if bits = 0 then Array.blit a limbs out 0 n
      else
        for i = 0 to n - 1 do
          let lo = a.(i + limbs) lsr bits in
          let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land mask else 0 in
          out.(i) <- lo lor hi
        done;
      normalize out
    end
  end

(* Division by a single positive limb; returns quotient and int
   remainder. Used by Knuth division and decimal conversion. *)
let divmod_small (a : t) (d : int) : t * int =
  if d <= 0 || d > mask then invalid_arg "Nat.divmod_small: bad divisor";
  let la = Array.length a in
  let out = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    out.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize out, !r)

(* Knuth algorithm D. *)
let divmod_knuth (a : t) (b : t) : t * t =
  let n = Array.length b in
  (* Normalize so the top limb of the divisor has its high bit set. *)
  let shift =
    let rec go s v = if v land (1 lsl (limb_bits - 1)) <> 0 then s else go (s + 1) (v lsl 1) in
    go 0 b.(n - 1)
  in
  let u_nat = shift_left a shift in
  let v = shift_left b shift in
  let m = Array.length u_nat - n in
  (* Working copy of the dividend with one extra top limb. *)
  let u = Array.make (Array.length u_nat + 1) 0 in
  Array.blit u_nat 0 u 0 (Array.length u_nat);
  let q = Array.make (max (m + 1) 1) 0 in
  let vtop = v.(n - 1) in
  let vsecond = if n >= 2 then v.(n - 2) else 0 in
  for j = m downto 0 do
    let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
    let qhat = ref (num / vtop) in
    let rhat = ref (num mod vtop) in
    if !qhat >= base then begin
      qhat := base - 1;
      rhat := num - ((base - 1) * vtop)
    end;
    let continue_adjust = ref true in
    while !continue_adjust do
      if
        !rhat < base
        && n >= 2
        && !qhat * vsecond > (!rhat lsl limb_bits) lor u.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vtop
      end
      else continue_adjust := false
    done;
    (* u[j .. j+n] -= qhat * v *)
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !borrow in
      let d = u.(i + j) - (p land mask) in
      if d < 0 then begin
        u.(i + j) <- d + base;
        borrow := (p lsr limb_bits) + 1
      end
      else begin
        u.(i + j) <- d;
        borrow := p lsr limb_bits
      end
    done;
    let d = u.(j + n) - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add the divisor back. *)
      u.(j + n) <- d + base;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = u.(i + j) + v.(i) + !carry in
        u.(i + j) <- s land mask;
        carry := s lsr limb_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry) land mask
    end
    else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub u 0 n) in
  (normalize q, shift_right r shift)

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow a k =
  if k < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (k lsr 1)
    end
  in
  go one a k

let mod_pow ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if is_one modulus then zero
  else begin
    let b = rem b modulus in
    let bits = bit_length exp in
    let result = ref one in
    let acc = ref b in
    for i = 0 to bits - 1 do
      if testbit exp i then result := rem (mul !result !acc) modulus;
      if i < bits - 1 then acc := rem (mul !acc !acc) modulus
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Extended Euclid over naturals, tracking signed Bezout coefficients
   as (sign, magnitude) pairs to avoid a dependency on the signed
   module (which is built on top of this one). *)
let mod_inverse a m =
  if is_zero m then invalid_arg "Nat.mod_inverse: zero modulus";
  let a = rem a m in
  if is_zero a then None
  else begin
    (* Iterative egcd: r0 = m, r1 = a; t0 = 0, t1 = 1 with signs. *)
    let r0 = ref m and r1 = ref a in
    let t0 = ref (zero, 1) and t1 = ref (one, 1) in
    let signed_sub (x, sx) (y, sy) =
      (* (x,sx) - (y,sy) on sign-magnitude pairs *)
      if sx = sy then
        if compare x y >= 0 then (sub x y, sx) else (sub y x, -sx)
      else (add x y, sx)
    in
    let signed_mul_nat (x, sx) k = (mul x k, sx) in
    while not (is_zero !r1) do
      let q, r = divmod !r0 !r1 in
      let t2 = signed_sub !t0 (signed_mul_nat !t1 q) in
      r0 := !r1;
      r1 := r;
      t0 := !t1;
      t1 := t2
    done;
    if not (is_one !r0) then None
    else begin
      let x, s = !t0 in
      let x = rem x m in
      if is_zero x then Some zero
      else if s >= 0 then Some x
      else Some (sub m x)
    end
  end

let of_bytes_be s =
  let n = String.length s in
  let acc = ref zero in
  for i = 0 to n - 1 do
    acc := add (shift_left !acc 8) (of_int (Char.code s.[i]))
  done;
  !acc

let byte_length a = (bit_length a + 7) / 8

let to_bytes_be a =
  let n = byte_length a in
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    (* Byte i (from the left) holds bits [8*(n-1-i) .. 8*(n-1-i)+7]. *)
    let lo = 8 * (n - 1 - i) in
    let v = ref 0 in
    for bit = 7 downto 0 do
      v := (!v lsl 1) lor (if testbit a (lo + bit) then 1 else 0)
    done;
    Bytes.set b i (Char.chr !v)
  done;
  Bytes.to_string b

let of_hex s =
  if String.length s = 0 then invalid_arg "Nat.of_hex: empty";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Nat.of_hex: bad digit"
  in
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 4) (of_int (digit c))) s;
  !acc

let to_hex a =
  if is_zero a then "0"
  else begin
    let digits = "0123456789abcdef" in
    let nibbles = (bit_length a + 3) / 4 in
    let buf = Buffer.create nibbles in
    for i = nibbles - 1 downto 0 do
      let v = ref 0 in
      for bit = 3 downto 0 do
        v := (!v lsl 1) lor (if testbit a ((4 * i) + bit) then 1 else 0)
      done;
      Buffer.add_char buf digits.[!v]
    done;
    Buffer.contents buf
  end

let of_decimal s =
  if String.length s = 0 then invalid_arg "Nat.of_decimal: empty";
  String.iter
    (fun c -> if c < '0' || c > '9' then invalid_arg "Nat.of_decimal: bad digit")
    s;
  (* Consume 9 decimal digits at a time: acc = acc*10^9 + chunk. *)
  let acc = ref zero in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let len = min 9 (n - !i) in
    let chunk = int_of_string (String.sub s !i len) in
    let scale = int_of_float (10. ** float_of_int len) in
    acc := add (mul_int !acc scale) (of_int chunk);
    i := !i + len
  done;
  !acc

let to_decimal a =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod_small !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
        let buf = Buffer.create 32 in
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
        Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)

let random_bits g n =
  if n < 0 then invalid_arg "Nat.random_bits: negative";
  if n = 0 then zero
  else begin
    let limbs = (n + limb_bits - 1) / limb_bits in
    let out = Array.make limbs 0 in
    for i = 0 to limbs - 1 do
      out.(i) <- Indaas_util.Prng.bits30 g lor ((Indaas_util.Prng.bits30 g land 1) lsl 30)
    done;
    (* Mask the top limb down to the requested width. *)
    let top_bits = n - ((limbs - 1) * limb_bits) in
    out.(limbs - 1) <- out.(limbs - 1) land ((1 lsl top_bits) - 1);
    normalize out
  end

let random_below g bound =
  if compare bound zero <= 0 then invalid_arg "Nat.random_below: bound must be positive";
  let bits = bit_length bound in
  let rec draw () =
    let candidate = random_bits g bits in
    if compare candidate bound < 0 then candidate else draw ()
  in
  draw ()
