(** Signed arbitrary-precision integers (sign-magnitude over {!Nat}).

    Used where intermediate values can go negative, e.g. extended-gcd
    style computations in tests and the polynomial arithmetic of the
    Kissner–Song baseline. *)

type t

val zero : t
val one : t
val minus_one : t

val of_nat : Nat.t -> t
val of_int : int -> t

val to_nat : t -> Nat.t
(** Raises [Invalid_argument] on negative values. *)

val to_int : t -> int
(** Raises [Failure] on overflow. *)

val sign : t -> int
(** -1, 0 or 1. *)

val abs : t -> Nat.t

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division: remainder is always non-negative and smaller
    than [|b|], and [a = q*b + r]. Raises [Division_by_zero]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val erem : t -> Nat.t -> Nat.t
(** [erem a m] is the representative of [a] in \[0, m). *)

val egcd : Nat.t -> Nat.t -> Nat.t * t * t
(** [egcd a b] returns [(g, x, y)] with [g = gcd a b] and
    [a*x + b*y = g]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
