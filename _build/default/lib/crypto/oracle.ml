module Nat = Indaas_bignum.Nat

(* Counter-mode expansion: H(0 || s) || H(1 || s) || ... gives as many
   pseudo-random bytes as needed, then the result is truncated to the
   requested bit width. *)
let expand algorithm s nbytes =
  let out_len = Digest.output_length algorithm in
  let blocks = (nbytes + out_len - 1) / out_len in
  let buf = Buffer.create (blocks * out_len) in
  for i = 0 to blocks - 1 do
    Buffer.add_string buf (Digest.digest algorithm (Printf.sprintf "%d|%s" i s))
  done;
  Buffer.sub buf 0 nbytes

let hash_to_nat ?(algorithm = Digest.SHA256) s ~bits =
  if bits <= 0 then invalid_arg "Oracle.hash_to_nat: bits must be positive";
  let nbytes = (bits + 7) / 8 in
  let raw = expand algorithm s nbytes in
  let n = Nat.of_bytes_be raw in
  let excess = (nbytes * 8) - bits in
  Nat.shift_right n excess

let hash_to_group ?(algorithm = Digest.SHA256) s ~modulus =
  let bits = Nat.bit_length modulus in
  if bits < 3 then invalid_arg "Oracle.hash_to_group: modulus too small";
  (* Rejection-sample with an appended counter until below modulus-2,
     then shift into [2, modulus-1]. *)
  let limit = Nat.sub modulus Nat.two in
  let rec attempt i =
    let candidate = hash_to_nat ~algorithm (Printf.sprintf "%s#%d" s i) ~bits in
    if Nat.compare candidate limit < 0 then Nat.add candidate Nat.two
    else attempt (i + 1)
  in
  attempt 0

let hash_int ~seed s =
  let d = Digest.sha256 (Printf.sprintf "minhash-%d|%s" seed s) in
  Digest.fold_to_int64 d
