(* 32-bit arithmetic is done on native 63-bit ints with explicit
   masking; [m32] truncates back to 32 bits after additions. *)

let m32 = 0xFFFFFFFF

let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land m32
let rotr32 x n = ((x lsr n) lor (x lsl (32 - n))) land m32

type algorithm = MD5 | SHA1 | SHA256

let output_length = function MD5 -> 16 | SHA1 -> 20 | SHA256 -> 32

(* Message padding shared by all three (64-byte blocks, 64-bit length
   field); [le] selects the byte order of the length field. *)
let pad_message ~le msg =
  let len = String.length msg in
  let bit_len = Int64.of_int (len * 8) in
  let rem = (len + 1 + 8) mod 64 in
  let zeros = if rem = 0 then 0 else 64 - rem in
  let total = len + 1 + zeros + 8 in
  let b = Bytes.make total '\x00' in
  Bytes.blit_string msg 0 b 0 len;
  Bytes.set b len '\x80';
  for i = 0 to 7 do
    let shift = if le then 8 * i else 8 * (7 - i) in
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len shift) 0xFFL) in
    Bytes.set b (total - 8 + i) (Char.chr byte)
  done;
  b

let word_le b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let word_be b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let store32_le out off v =
  Bytes.set out off (Char.chr (v land 0xFF));
  Bytes.set out (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set out (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set out (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let store32_be out off v =
  Bytes.set out off (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set out (off + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set out (off + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set out (off + 3) (Char.chr (v land 0xFF))

(* ------------------------------------------------------------------ *)
(* MD5 (RFC 1321)                                                     *)

let md5_s =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

let md5_k =
  [| 0xd76aa478; 0xe8c7b756; 0x242070db; 0xc1bdceee;
     0xf57c0faf; 0x4787c62a; 0xa8304613; 0xfd469501;
     0x698098d8; 0x8b44f7af; 0xffff5bb1; 0x895cd7be;
     0x6b901122; 0xfd987193; 0xa679438e; 0x49b40821;
     0xf61e2562; 0xc040b340; 0x265e5a51; 0xe9b6c7aa;
     0xd62f105d; 0x02441453; 0xd8a1e681; 0xe7d3fbc8;
     0x21e1cde6; 0xc33707d6; 0xf4d50d87; 0x455a14ed;
     0xa9e3e905; 0xfcefa3f8; 0x676f02d9; 0x8d2a4c8a;
     0xfffa3942; 0x8771f681; 0x6d9d6122; 0xfde5380c;
     0xa4beea44; 0x4bdecfa9; 0xf6bb4b60; 0xbebfbc70;
     0x289b7ec6; 0xeaa127fa; 0xd4ef3085; 0x04881d05;
     0xd9d4d039; 0xe6db99e5; 0x1fa27cf8; 0xc4ac5665;
     0xf4292244; 0x432aff97; 0xab9423a7; 0xfc93a039;
     0x655b59c3; 0x8f0ccc92; 0xffeff47d; 0x85845dd1;
     0x6fa87e4f; 0xfe2ce6e0; 0xa3014314; 0x4e0811a1;
     0xf7537e82; 0xbd3af235; 0x2ad7d2bb; 0xeb86d391 |]

let md5 msg =
  let b = pad_message ~le:true msg in
  let a0 = ref 0x67452301 and b0 = ref 0xefcdab89 in
  let c0 = ref 0x98badcfe and d0 = ref 0x10325476 in
  let blocks = Bytes.length b / 64 in
  for blk = 0 to blocks - 1 do
    let base = blk * 64 in
    let m = Array.init 16 (fun i -> word_le b (base + (4 * i))) in
    let a = ref !a0 and bb = ref !b0 and c = ref !c0 and d = ref !d0 in
    for i = 0 to 63 do
      let f, g =
        if i < 16 then ((!bb land !c) lor (lnot !bb land !d) land m32, i)
        else if i < 32 then ((!d land !bb) lor (lnot !d land !c) land m32, ((5 * i) + 1) mod 16)
        else if i < 48 then (!bb lxor !c lxor !d, ((3 * i) + 5) mod 16)
        else ((!c lxor (!bb lor (lnot !d land m32))) land m32, (7 * i) mod 16)
      in
      let f = (f + !a + md5_k.(i) + m.(g)) land m32 in
      a := !d;
      d := !c;
      c := !bb;
      bb := (!bb + rotl32 f md5_s.(i)) land m32
    done;
    a0 := (!a0 + !a) land m32;
    b0 := (!b0 + !bb) land m32;
    c0 := (!c0 + !c) land m32;
    d0 := (!d0 + !d) land m32
  done;
  let out = Bytes.create 16 in
  store32_le out 0 !a0;
  store32_le out 4 !b0;
  store32_le out 8 !c0;
  store32_le out 12 !d0;
  Bytes.to_string out

(* ------------------------------------------------------------------ *)
(* SHA-1 (FIPS 180-1)                                                 *)

let sha1 msg =
  let b = pad_message ~le:false msg in
  let h0 = ref 0x67452301 and h1 = ref 0xEFCDAB89 and h2 = ref 0x98BADCFE in
  let h3 = ref 0x10325476 and h4 = ref 0xC3D2E1F0 in
  let w = Array.make 80 0 in
  let blocks = Bytes.length b / 64 in
  for blk = 0 to blocks - 1 do
    let base = blk * 64 in
    for i = 0 to 15 do
      w.(i) <- word_be b (base + (4 * i))
    done;
    for i = 16 to 79 do
      w.(i) <- rotl32 (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
    done;
    let a = ref !h0 and bb = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
    for i = 0 to 79 do
      let f, k =
        if i < 20 then (((!bb land !c) lor (lnot !bb land !d)) land m32, 0x5A827999)
        else if i < 40 then (!bb lxor !c lxor !d, 0x6ED9EBA1)
        else if i < 60 then ((!bb land !c) lor (!bb land !d) lor (!c land !d), 0x8F1BBCDC)
        else (!bb lxor !c lxor !d, 0xCA62C1D6)
      in
      let tmp = (rotl32 !a 5 + f + !e + k + w.(i)) land m32 in
      e := !d;
      d := !c;
      c := rotl32 !bb 30;
      bb := !a;
      a := tmp
    done;
    h0 := (!h0 + !a) land m32;
    h1 := (!h1 + !bb) land m32;
    h2 := (!h2 + !c) land m32;
    h3 := (!h3 + !d) land m32;
    h4 := (!h4 + !e) land m32
  done;
  let out = Bytes.create 20 in
  store32_be out 0 !h0;
  store32_be out 4 !h1;
  store32_be out 8 !h2;
  store32_be out 12 !h3;
  store32_be out 16 !h4;
  Bytes.to_string out

(* ------------------------------------------------------------------ *)
(* SHA-256 (FIPS 180-4)                                               *)

let sha256_k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5;
     0x3956c25b; 0x59f111f1; 0x923f82a4; 0xab1c5ed5;
     0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174;
     0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
     0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7;
     0xc6e00bf3; 0xd5a79147; 0x06ca6351; 0x14292967;
     0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3;
     0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5;
     0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f; 0x682e6ff3;
     0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

let sha256 msg =
  let b = pad_message ~le:false msg in
  let h = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
             0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |] in
  let w = Array.make 64 0 in
  let blocks = Bytes.length b / 64 in
  for blk = 0 to blocks - 1 do
    let base = blk * 64 in
    for i = 0 to 15 do
      w.(i) <- word_be b (base + (4 * i))
    done;
    for i = 16 to 63 do
      let s0 = rotr32 w.(i - 15) 7 lxor rotr32 w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
      let s1 = rotr32 w.(i - 2) 17 lxor rotr32 w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
      w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land m32
    done;
    let a = ref h.(0) and bb = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for i = 0 to 63 do
      let s1 = rotr32 !e 6 lxor rotr32 !e 11 lxor rotr32 !e 25 in
      let ch = (!e land !f) lxor (lnot !e land !g) land m32 in
      let t1 = (!hh + s1 + ch + sha256_k.(i) + w.(i)) land m32 in
      let s0 = rotr32 !a 2 lxor rotr32 !a 13 lxor rotr32 !a 22 in
      let maj = (!a land !bb) lxor (!a land !c) lxor (!bb land !c) in
      let t2 = (s0 + maj) land m32 in
      hh := !g;
      g := !f;
      f := !e;
      e := (!d + t1) land m32;
      d := !c;
      c := !bb;
      bb := !a;
      a := (t1 + t2) land m32
    done;
    h.(0) <- (h.(0) + !a) land m32;
    h.(1) <- (h.(1) + !bb) land m32;
    h.(2) <- (h.(2) + !c) land m32;
    h.(3) <- (h.(3) + !d) land m32;
    h.(4) <- (h.(4) + !e) land m32;
    h.(5) <- (h.(5) + !f) land m32;
    h.(6) <- (h.(6) + !g) land m32;
    h.(7) <- (h.(7) + !hh) land m32
  done;
  let out = Bytes.create 32 in
  Array.iteri (fun i v -> store32_be out (4 * i) v) h;
  Bytes.to_string out

(* ------------------------------------------------------------------ *)

let digest = function MD5 -> md5 | SHA1 -> sha1 | SHA256 -> sha256

let to_hex s =
  let digits = "0123456789abcdef" in
  let out = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let v = Char.code c in
      Bytes.set out (2 * i) digits.[v lsr 4];
      Bytes.set out ((2 * i) + 1) digits.[v land 0xF])
    s;
  Bytes.to_string out

let digest_hex alg s = to_hex (digest alg s)

let md5_hex s = to_hex (md5 s)
let sha1_hex s = to_hex (sha1 s)
let sha256_hex s = to_hex (sha256 s)

let fold_to_int64 s =
  if String.length s < 8 then invalid_arg "Digest.fold_to_int64: too short";
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[i]))
  done;
  !v
