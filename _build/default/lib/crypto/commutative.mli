(** Commutative encryption for the P-SOP protocol (paper §4.2.2).

    Two schemes are provided:

    - {b Pohlig–Hellman exponentiation} over a shared prime modulus
      [p]: [E_k(m) = m^k mod p] with [gcd (k, p-1) = 1]. For any two
      keys [E_k1 (E_k2 m) = E_k2 (E_k1 m)], which is exactly the
      property the ring protocol needs.
    - {b SRA} (Shamir–Rivest–Adleman “mental poker”, the paper's
      “commutative RSA”): same construction but over an RSA modulus
      [n = p*q] whose factorization is known to the key issuer.

    Messages are first mapped into the multiplicative group via
    {!Oracle.hash_to_group}. These schemes are deterministic — equal
    plaintexts yield equal ciphertexts under the same key chain, which
    is what allows the parties to count set intersections on
    ciphertexts. *)

type params
(** Shared public parameters (the modulus). All parties in a P-SOP
    ring must use equal parameters. *)

type key
(** A party's private exponent (with its inverse). *)

val params_pohlig_hellman :
  ?bits:int -> Indaas_util.Prng.t -> params
(** Fresh prime-modulus parameters. Default [bits] is 256 (see
    DESIGN.md substitution 3; the paper used 1024). *)

val params_oakley1024 : params
(** Fixed 1024-bit parameters (RFC 2409 group 2 prime) — paper-scale
    key size with zero generation cost. *)

val params_sra : ?bits:int -> Indaas_util.Prng.t -> params
(** RSA-modulus parameters ([bits] is the modulus size; two [bits/2]
    primes are generated). *)

val modulus : params -> Indaas_bignum.Nat.t
val modulus_bytes : params -> int
(** Size of one ciphertext on the wire, in bytes. *)

val generate_key : Indaas_util.Prng.t -> params -> key
(** A fresh exponent coprime with the group order. *)

val encrypt : params -> key -> Indaas_bignum.Nat.t -> Indaas_bignum.Nat.t
(** [encrypt params k m] = [m^k mod modulus]. [m] must already lie in
    the group (use {!Oracle.hash_to_group} first). *)

val decrypt : params -> key -> Indaas_bignum.Nat.t -> Indaas_bignum.Nat.t
(** Inverse of {!encrypt} under the same key. *)

val ciphertext_to_string : params -> Indaas_bignum.Nat.t -> string
(** Fixed-width big-endian encoding, suitable as a wire format and as
    a comparable dictionary key. *)
