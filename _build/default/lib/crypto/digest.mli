(** Cryptographic hash functions, implemented from scratch.

    The paper's P-SOP prototype hashes component identifiers with MD5
    before commutative encryption (§6.1.2); we default to SHA-256
    elsewhere but provide MD5 and SHA-1 for fidelity. All functions
    hash complete strings (one-shot); that is all INDaaS needs. *)

type algorithm = MD5 | SHA1 | SHA256

val digest : algorithm -> string -> string
(** Raw digest bytes: 16 for MD5, 20 for SHA-1, 32 for SHA-256. *)

val digest_hex : algorithm -> string -> string
(** Lowercase hexadecimal of {!digest}. *)

val md5 : string -> string
val sha1 : string -> string
val sha256 : string -> string

val md5_hex : string -> string
val sha1_hex : string -> string
val sha256_hex : string -> string

val output_length : algorithm -> int

val to_hex : string -> string
(** Hex-encode arbitrary bytes. *)

val fold_to_int64 : string -> int64
(** First 8 digest bytes as a big-endian int64 — convenient for
    MinHash-style integer hashing. *)
