module Nat = Indaas_bignum.Nat
module Prime = Indaas_bignum.Prime
module Prng = Indaas_util.Prng

type params = {
  modulus : Nat.t;
  order : Nat.t; (* order of the exponent group: p-1 or lcm(p-1, q-1) *)
}

type key = { e : Nat.t; d : Nat.t }

let params_pohlig_hellman ?(bits = 256) g =
  let p = Prime.generate g ~bits in
  { modulus = p; order = Nat.sub p Nat.one }

let params_oakley1024 =
  let p = Prime.oakley_group2 in
  { modulus = p; order = Nat.sub p Nat.one }

let params_sra ?(bits = 256) g =
  if bits < 16 then invalid_arg "Commutative.params_sra: modulus too small";
  let p, q = Prime.generate_distinct_pair g ~bits:(bits / 2) in
  let p1 = Nat.sub p Nat.one and q1 = Nat.sub q Nat.one in
  let lambda = Nat.div (Nat.mul p1 q1) (Nat.gcd p1 q1) in
  { modulus = Nat.mul p q; order = lambda }

let modulus t = t.modulus
let modulus_bytes t = Nat.byte_length t.modulus

let generate_key g params =
  let rec attempt () =
    let e = Nat.add (Nat.random_below g (Nat.sub params.order Nat.two)) Nat.two in
    match Nat.mod_inverse e params.order with
    | Some d -> { e; d }
    | None -> attempt ()
  in
  attempt ()

let encrypt params key m = Nat.mod_pow ~base:m ~exp:key.e ~modulus:params.modulus
let decrypt params key c = Nat.mod_pow ~base:c ~exp:key.d ~modulus:params.modulus

let ciphertext_to_string params c =
  let width = modulus_bytes params in
  let raw = Nat.to_bytes_be c in
  let padding = width - String.length raw in
  if padding < 0 then invalid_arg "Commutative.ciphertext_to_string: out of range";
  String.make padding '\x00' ^ raw
