module Nat = Indaas_bignum.Nat
module Prime = Indaas_bignum.Prime
module Prng = Indaas_util.Prng

type public_key = { n : Nat.t; n_squared : Nat.t; g : Nat.t }
type private_key = { lambda : Nat.t; mu : Nat.t }
type keypair = { public : public_key; private_ : private_key }

(* L(x) = (x - 1) / n *)
let ell ~n x = Nat.div (Nat.sub x Nat.one) n

let generate ?(bits = 256) g =
  if bits < 16 then invalid_arg "Paillier.generate: modulus too small";
  let rec attempt () =
    let p, q = Prime.generate_distinct_pair g ~bits:(bits / 2) in
    let n = Nat.mul p q in
    let p1 = Nat.sub p Nat.one and q1 = Nat.sub q Nat.one in
    let lambda = Nat.div (Nat.mul p1 q1) (Nat.gcd p1 q1) in
    let n_squared = Nat.mul n n in
    (* Standard simplification: g = n + 1, for which
       L(g^lambda mod n^2) = lambda mod n. *)
    let gen = Nat.add n Nat.one in
    let u = Nat.mod_pow ~base:gen ~exp:lambda ~modulus:n_squared in
    match Nat.mod_inverse (ell ~n u) n with
    | Some mu ->
        {
          public = { n; n_squared; g = gen };
          private_ = { lambda; mu };
        }
    | None -> attempt ()
  in
  attempt ()

let plaintext_space pk = pk.n
let ciphertext_bytes pk = Nat.byte_length pk.n_squared

let random_unit g pk =
  (* r in [1, n) with gcd(r, n) = 1; failures are negligible but we
     check anyway. *)
  let rec attempt () =
    let r = Nat.add (Nat.random_below g (Nat.sub pk.n Nat.one)) Nat.one in
    if Nat.is_one (Nat.gcd r pk.n) then r else attempt ()
  in
  attempt ()

let encrypt g pk m =
  let m = Nat.rem m pk.n in
  let r = random_unit g pk in
  (* g^m * r^n mod n^2; with g = n+1, g^m = 1 + m*n (mod n^2). *)
  let gm = Nat.rem (Nat.add Nat.one (Nat.mul m pk.n)) pk.n_squared in
  let rn = Nat.mod_pow ~base:r ~exp:pk.n ~modulus:pk.n_squared in
  Nat.rem (Nat.mul gm rn) pk.n_squared

let decrypt kp c =
  let pk = kp.public and sk = kp.private_ in
  let u = Nat.mod_pow ~base:c ~exp:sk.lambda ~modulus:pk.n_squared in
  Nat.rem (Nat.mul (ell ~n:pk.n u) sk.mu) pk.n

let add pk c1 c2 = Nat.rem (Nat.mul c1 c2) pk.n_squared

let scalar_mul pk k c = Nat.mod_pow ~base:c ~exp:k ~modulus:pk.n_squared

let encrypt_zero g pk = encrypt g pk Nat.zero

let rerandomize g pk c = add pk c (encrypt_zero g pk)
