lib/crypto/oracle.mli: Digest Indaas_bignum
