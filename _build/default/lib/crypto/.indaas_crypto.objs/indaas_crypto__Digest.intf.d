lib/crypto/digest.mli:
