lib/crypto/commutative.ml: Indaas_bignum Indaas_util String
