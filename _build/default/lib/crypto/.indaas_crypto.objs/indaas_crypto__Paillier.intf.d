lib/crypto/paillier.mli: Indaas_bignum Indaas_util
