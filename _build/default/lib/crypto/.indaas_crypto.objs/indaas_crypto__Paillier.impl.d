lib/crypto/paillier.ml: Indaas_bignum Indaas_util
