lib/crypto/oracle.ml: Buffer Digest Indaas_bignum Printf
