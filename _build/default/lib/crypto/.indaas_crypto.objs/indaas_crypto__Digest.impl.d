lib/crypto/digest.ml: Array Bytes Char Int64 String
