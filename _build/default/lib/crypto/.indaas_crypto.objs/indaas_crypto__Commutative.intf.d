lib/crypto/commutative.mli: Indaas_bignum Indaas_util
