(** Hashing into algebraic structures (random-oracle style). *)

val hash_to_nat :
  ?algorithm:Digest.algorithm -> string -> bits:int -> Indaas_bignum.Nat.t
(** [hash_to_nat s ~bits] deterministically maps [s] to a natural
    below [2^bits], by counter-mode expansion of the underlying hash. *)

val hash_to_group :
  ?algorithm:Digest.algorithm ->
  string ->
  modulus:Indaas_bignum.Nat.t ->
  Indaas_bignum.Nat.t
(** [hash_to_group s ~modulus] maps [s] to a value in \[2, modulus-1\],
    suitable as a plaintext for {!Commutative}. Deterministic:
    equal strings map to equal group elements under equal moduli. *)

val hash_int : seed:int -> string -> int64
(** [hash_int ~seed s] is a 64-bit hash of [s] keyed by [seed] — the
    family of hash functions used by MinHash (paper §4.2.2). *)
