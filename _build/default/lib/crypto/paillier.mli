(** Paillier additively homomorphic encryption (Paillier, EUROCRYPT
    1999).

    Substrate for the Kissner–Song private set-operation baseline the
    paper compares P-SOP against in §6.3.2. Supports:

    - [E(m1) * E(m2) mod n^2 = E(m1 + m2)] — {!add}
    - [E(m)^k mod n^2 = E(k * m)] — {!scalar_mul} *)

type public_key
type private_key

type keypair = { public : public_key; private_ : private_key }

val generate : ?bits:int -> Indaas_util.Prng.t -> keypair
(** [generate g ~bits] creates a keypair with a [bits]-size modulus
    (default 256; the paper used 1024 — see DESIGN.md substitution 3). *)

val plaintext_space : public_key -> Indaas_bignum.Nat.t
(** The modulus [n]; plaintexts live in \[0, n). *)

val ciphertext_bytes : public_key -> int
(** Wire size of one ciphertext (size of n^2). *)

val encrypt :
  Indaas_util.Prng.t -> public_key -> Indaas_bignum.Nat.t -> Indaas_bignum.Nat.t
(** Randomized encryption of [m mod n]. *)

val decrypt : keypair -> Indaas_bignum.Nat.t -> Indaas_bignum.Nat.t

val add :
  public_key -> Indaas_bignum.Nat.t -> Indaas_bignum.Nat.t -> Indaas_bignum.Nat.t
(** Homomorphic addition of plaintexts. *)

val scalar_mul :
  public_key -> Indaas_bignum.Nat.t -> Indaas_bignum.Nat.t -> Indaas_bignum.Nat.t
(** [scalar_mul pk k c] encrypts [k * m] when [c] encrypts [m]. *)

val encrypt_zero : Indaas_util.Prng.t -> public_key -> Indaas_bignum.Nat.t
(** Fresh randomized encryption of 0 (used for re-randomization). *)

val rerandomize :
  Indaas_util.Prng.t -> public_key -> Indaas_bignum.Nat.t -> Indaas_bignum.Nat.t
(** Same plaintext, fresh randomness. *)
