(** The paper's three case studies (§6.2), packaged as reusable
    scenarios shared by the examples, tests and benchmark harness. *)

module Sia_audit = Indaas_sia.Audit

(** {1 §6.2.1 — common network dependency} *)

type network_case = {
  reports : Sia_audit.deployment_report list;  (** all 190 pairs, best first *)
  total_deployments : int;  (** 190 *)
  clean_deployments : int;  (** pairs without unexpected RGs *)
  random_success_probability : float;  (** clean / total *)
  best_pair : string list;  (** replica servers of the winner *)
  best_pair_racks : int list;  (** e.g. [5; 29] *)
  lowest_failure_probability : float option;
      (** Pr(fail) of the winner under uniform device probability 0.1 *)
  probability_confirms_best : bool;
      (** the size-ranking winner is also an argmin of Pr(fail) *)
}

val run_network_case :
  ?algorithm:Sia_audit.rg_algorithm -> ?rng:Indaas_util.Prng.t -> unit ->
  network_case
(** Default algorithm: exact minimal-RG (the graphs are small). The
    paper ran failure sampling with 10^6 rounds; pass
    [~algorithm:(Sia_audit.failure_sampling ~rounds:...)] to match. *)

(** {1 §6.2.2 — common hardware dependency} *)

type hardware_case = {
  initial_hosts : (string * string) list;  (** VM -> server after OpenStack placement *)
  co_located : bool;  (** the two Riak VMs landed on one server *)
  initial_report : Sia_audit.deployment_report;
      (** audit of the {e VM-level} deployment (VM7, VM8) *)
  top4 : string list list;  (** first four ranked RGs, by names *)
  recommended_servers : string list;  (** from the server-level audit *)
  final_report : Sia_audit.deployment_report;
      (** after migrating per the recommendation *)
  fixed : bool;  (** no unexpected RGs remain *)
}

val run_hardware_case : ?rng:Indaas_util.Prng.t -> unit -> hardware_case
(** [rng] drives the OpenStack-like placement. The default seed
    reproduces the paper's incident (both Riak VMs on Server2); other
    seeds still co-locate with probability 1/4 — the audit logic
    handles both outcomes. *)

(** {1 §6.2.3 — common software dependency (PIA)} *)

type software_case = {
  two_way : Indaas_pia.Audit.report;  (** Table 2, upper half *)
  three_way : Indaas_pia.Audit.report;  (** Table 2, lower half *)
  best_two_way : string list;  (** Cloud2 & Cloud4 *)
}

val run_software_case :
  ?protocol:Indaas_pia.Audit.protocol -> ?rng:Indaas_util.Prng.t -> unit ->
  software_case
(** Default protocol: P-SOP with fresh 256-bit parameters (the
    private path, as in the paper). *)

(** {1 Shared building blocks} *)

val network_case_database : unit -> Indaas_depdata.Depdb.t
(** The §6.2.1 data center's network records for all candidate racks. *)

val hardware_case_sources : Indaas_iaas.Cloud.t -> Agent.data_source list
(** Data sources exposing the lab cloud's records (VM hosting +
    switch topology). *)

val software_case_providers : unit -> Indaas_pia.Audit.provider list
(** The four clouds with their key-value stores' package closures. *)
