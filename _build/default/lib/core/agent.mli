(** The auditing agent — the mediator of the paper's workflow (§2).

    Given the client's {!Spec.t} and a set of {!data_source}s, the
    agent executes Steps 2–6: it requests dependency data from each
    source (each source runs its acquisition modules), filters it to
    the dependency kinds the client asked about, and runs either
    structural (SIA) or private (PIA) independence auditing, returning
    the final report. *)

module Depdb = Indaas_depdata.Depdb
module Collectors = Indaas_depdata.Collectors

type data_source = {
  source_name : string;
  modules : Collectors.t list;  (** its dependency acquisition modules *)
}

val data_source : name:string -> Collectors.t list -> data_source

type outcome =
  | Sia_outcome of Indaas_sia.Audit.deployment_report list
      (** candidate deployments, best first *)
  | Pia_outcome of Indaas_pia.Audit.report

type audit_run = {
  spec : Spec.t;
  outcome : outcome;
  database_size : int;
      (** records gathered (0 for PIA — the agent never sees them) *)
}

val collect : Spec.t -> data_source list -> Depdb.t
(** Steps 2–3 only: ask every relevant source to run its modules and
    adapt the records; returns the merged DepDB filtered to the
    requested dependency kinds. *)

val run :
  ?rng:Indaas_util.Prng.t ->
  ?rg_algorithm:Indaas_sia.Audit.rg_algorithm ->
  ?pia_protocol:Indaas_pia.Audit.protocol ->
  Spec.t ->
  data_source list ->
  audit_run
(** The full workflow. For SIA metrics each candidate deployment is
    audited over the merged database; for [Jaccard_similarity] each
    source's records stay local — only normalized component sets
    enter the (default P-SOP) private protocol. Raises
    [Invalid_argument] if a specified data source is missing. *)

val render : audit_run -> string
(** The report sent back to the client (Step 6). *)

val best_deployment : audit_run -> string list
(** The servers/providers of the top-ranked deployment. *)
