(** Periodic re-auditing and drift detection.

    The paper's client "might also request periodic audits on a
    deployed configuration to identify correlated failure risks that
    configuration changes or evolution might introduce" (§2). This
    module compares successive SIA reports of the same deployment and
    surfaces exactly those regressions: risk groups that appeared,
    disappeared, shrank (got more dangerous) — plus score and
    failure-probability movement. *)

module Audit = Indaas_sia.Audit
module Rank = Indaas_sia.Rank

type change =
  | Unexpected_appeared of Rank.ranked
      (** a new RG below the intended size — the alarm case *)
  | Unexpected_resolved of string list
      (** an unexpected RG from the previous audit is gone *)
  | Risk_group_appeared of Rank.ranked  (** new, but of expected size *)
  | Risk_group_resolved of string list
  | Failure_probability_changed of { before : float; after : float }
      (** only reported when the relative change exceeds 1%. *)

type diff = {
  servers : string list;
  changes : change list;
  regressed : bool;
      (** some [Unexpected_appeared], or failure probability rose *)
}

val diff_reports :
  before:Audit.deployment_report -> after:Audit.deployment_report -> diff
(** Compares two audits of the same deployment (RGs are matched by
    their component-name sets). Raises [Invalid_argument] when the
    server lists differ. *)

val audit_series :
  ?rng:Indaas_util.Prng.t ->
  Indaas_depdata.Depdb.t list ->
  Audit.request ->
  Audit.deployment_report list * diff list
(** [audit_series snapshots request] audits the deployment under each
    successive dependency-database snapshot and returns the reports
    plus the consecutive diffs (length one less than the input).
    Raises [Invalid_argument] on fewer than one snapshot. *)

val render_diff : diff -> string
(** Human-readable change report; ["no changes"] when empty. *)

val first_regression : diff list -> int option
(** Index (into the diff list) of the first regressed diff. *)
