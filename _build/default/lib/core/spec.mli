(** The auditing client's specification — what Alice submits to the
    auditing agent in Step 1 of the paper's workflow (§2): the
    relevant data sources, the desired level of redundancy, the types
    of dependencies to consider, and the independence metric. *)

type dependency_kind = Network | Hardware | Software

type metric =
  | Size_ranking  (** SIA, size-based RG ranking (§4.1.3) *)
  | Probability_ranking of { component_probability : string -> float option }
      (** SIA, relative-importance ranking — needs failure
          probabilities (§4.1.3, §5.1) *)
  | Jaccard_similarity  (** PIA over component sets (§4.2) *)

type t = {
  data_sources : string list;
      (** names of the data sources (servers or cloud providers) *)
  redundancy : int;  (** deploy across this many sources (n-way) *)
  required : int;  (** replicas that must stay alive (default 1) *)
  kinds : dependency_kind list;  (** dependency types to audit *)
  metric : metric;
  candidates : string list list option;
      (** explicit deployments to compare; [None] = all
          [redundancy]-subsets of [data_sources] *)
}

val create :
  ?required:int ->
  ?kinds:dependency_kind list ->
  ?metric:metric ->
  ?candidates:string list list ->
  redundancy:int ->
  string list ->
  t
(** [create ~redundancy sources]. Defaults: all dependency kinds,
    [Size_ranking], [required = 1], all subsets as candidates.
    Raises [Invalid_argument] on an empty source list, a redundancy
    outside \[2, #sources\], [required] outside \[1, redundancy\], an
    empty [kinds], or a candidate that is not a [redundancy]-subset
    of the sources. *)

val candidate_deployments : t -> string list list
(** The deployments the audit will compare (explicit candidates, or
    all subsets). *)

val wants : t -> dependency_kind -> bool
