module Audit = Indaas_sia.Audit
module Rank = Indaas_sia.Rank
module Prng = Indaas_util.Prng

type change =
  | Unexpected_appeared of Rank.ranked
  | Unexpected_resolved of string list
  | Risk_group_appeared of Rank.ranked
  | Risk_group_resolved of string list
  | Failure_probability_changed of { before : float; after : float }

type diff = {
  servers : string list;
  changes : change list;
  regressed : bool;
}

module NameSet = Set.Make (struct
  type t = string list

  let compare = compare
end)

let keys ranked = NameSet.of_list (List.map (fun r -> r.Rank.rg_names) ranked)

let diff_reports ~before ~after =
  if before.Audit.servers <> after.Audit.servers then
    invalid_arg "Monitor.diff_reports: different deployments";
  let before_all = keys before.Audit.ranked in
  let after_all = keys after.Audit.ranked in
  let before_unexpected = keys before.Audit.unexpected in
  let after_unexpected = keys after.Audit.unexpected in
  let appeared =
    List.filter
      (fun r -> not (NameSet.mem r.Rank.rg_names before_all))
      after.Audit.ranked
  in
  let resolved =
    NameSet.elements (NameSet.diff before_all after_all)
  in
  let changes =
    List.map
      (fun r ->
        if NameSet.mem r.Rank.rg_names after_unexpected then
          Unexpected_appeared r
        else Risk_group_appeared r)
      appeared
    @ List.map
        (fun names ->
          if NameSet.mem names before_unexpected then Unexpected_resolved names
          else Risk_group_resolved names)
        resolved
  in
  let changes =
    match (before.Audit.failure_probability, after.Audit.failure_probability) with
    | Some b, Some a when b > 0. && abs_float (a -. b) /. b > 0.01 ->
        changes @ [ Failure_probability_changed { before = b; after = a } ]
    | _ -> changes
  in
  let regressed =
    List.exists
      (function
        | Unexpected_appeared _ -> true
        | Failure_probability_changed { before; after } -> after > before
        | Unexpected_resolved _ | Risk_group_appeared _ | Risk_group_resolved _
          ->
            false)
      changes
  in
  { servers = after.Audit.servers; changes; regressed }

let audit_series ?rng snapshots request =
  if snapshots = [] then invalid_arg "Monitor.audit_series: no snapshots";
  let reports = List.map (fun db -> Audit.audit ?rng db request) snapshots in
  let rec diffs = function
    | a :: (b :: _ as rest) -> diff_reports ~before:a ~after:b :: diffs rest
    | [ _ ] | [] -> []
  in
  (reports, diffs reports)

let braces names = "{" ^ String.concat ", " names ^ "}"

let render_change = function
  | Unexpected_appeared r ->
      Printf.sprintf "!! new UNEXPECTED risk group %s (size %d)"
        (braces r.Rank.rg_names) r.Rank.size
  | Unexpected_resolved names ->
      Printf.sprintf "   unexpected risk group %s resolved" (braces names)
  | Risk_group_appeared r ->
      Printf.sprintf "   new risk group %s (size %d)" (braces r.Rank.rg_names)
        r.Rank.size
  | Risk_group_resolved names ->
      Printf.sprintf "   risk group %s resolved" (braces names)
  | Failure_probability_changed { before; after } ->
      Printf.sprintf "%s Pr(deployment fails): %.6g -> %.6g"
        (if after > before then "!!" else "  ")
        before after

let render_diff d =
  if d.changes = [] then Printf.sprintf "%s: no changes" (braces d.servers)
  else
    Printf.sprintf "%s:%s\n%s" (braces d.servers)
      (if d.regressed then " REGRESSED" else "")
      (String.concat "\n" (List.map render_change d.changes))

let first_regression diffs =
  let rec go i = function
    | [] -> None
    | d :: rest -> if d.regressed then Some i else go (i + 1) rest
  in
  go 0 diffs
