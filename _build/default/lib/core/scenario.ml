module Depdb = Indaas_depdata.Depdb
module Collectors = Indaas_depdata.Collectors
module Catalog = Indaas_depdata.Catalog
module Dependency = Indaas_depdata.Dependency
module Datacenter = Indaas_topology.Datacenter
module Cloud = Indaas_iaas.Cloud
module Sia_audit = Indaas_sia.Audit
module Builder = Indaas_sia.Builder
module Rank = Indaas_sia.Rank
module Pia_audit = Indaas_pia.Audit
module Prng = Indaas_util.Prng

(* ------------------------------------------------------------------ *)
(* §6.2.1 — common network dependency                                  *)

type network_case = {
  reports : Sia_audit.deployment_report list;
  total_deployments : int;
  clean_deployments : int;
  random_success_probability : float;
  best_pair : string list;
  best_pair_racks : int list;
  lowest_failure_probability : float option;
  probability_confirms_best : bool;
}

let network_case_database () =
  let dc = Datacenter.create () in
  let db = Depdb.create () in
  Depdb.add_all db (Datacenter.all_network_records dc);
  db

let rack_of_server_name name =
  (* "serverR5" -> 5 *)
  match String.index_opt name 'R' with
  | Some i -> int_of_string (String.sub name (i + 1) (String.length name - i - 1))
  | None -> invalid_arg ("Scenario.rack_of_server_name: " ^ name)

let run_network_case ?(algorithm = Sia_audit.minimal_rg)
    ?(rng = Prng.of_int 0x6201) () =
  let dc = Datacenter.create () in
  let db = network_case_database () in
  let servers =
    List.map Datacenter.server_of_rack (Datacenter.candidate_racks dc)
  in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> [ x; y ]) rest @ pairs rest
  in
  let candidates = pairs servers in
  let request =
    Sia_audit.request
      ~component_probability:
        (Builder.uniform_probability Datacenter.device_failure_probability)
      ~algorithm ~ranking:Sia_audit.Probability_based []
  in
  let reports = Sia_audit.audit_candidates ~rng db ~candidates request in
  let clean =
    List.filter (fun r -> r.Sia_audit.unexpected = []) reports
  in
  let best = List.hd reports in
  let min_probability =
    List.fold_left
      (fun acc r ->
        match r.Sia_audit.failure_probability with
        | Some p -> min acc p
        | None -> acc)
      infinity reports
  in
  {
    reports;
    total_deployments = List.length reports;
    clean_deployments = List.length clean;
    random_success_probability =
      float_of_int (List.length clean) /. float_of_int (List.length reports);
    best_pair = best.Sia_audit.servers;
    best_pair_racks = List.map rack_of_server_name best.Sia_audit.servers;
    lowest_failure_probability = best.Sia_audit.failure_probability;
    probability_confirms_best =
      (match best.Sia_audit.failure_probability with
      | Some p -> p <= min_probability +. 1e-12
      | None -> false);
  }

(* ------------------------------------------------------------------ *)
(* §6.2.2 — common hardware dependency                                 *)

type hardware_case = {
  initial_hosts : (string * string) list;
  co_located : bool;
  initial_report : Sia_audit.deployment_report;
  top4 : string list list;
  recommended_servers : string list;
  final_report : Sia_audit.deployment_report;
  fixed : bool;
}

(* The lab topology of Figure 6(b): four servers behind two ToR
   switches, which uplink redundantly through two core switches. *)
let lab_topology_records () =
  let tor_of s = if s = "Server1" || s = "Server2" then "Switch1" else "Switch2" in
  List.concat_map
    (fun s ->
      [
        Dependency.network ~src:s ~dst:"Internet" ~route:[ tor_of s; "Core1" ];
        Dependency.network ~src:s ~dst:"Internet" ~route:[ tor_of s; "Core2" ];
      ])
    Cloud.lab_servers

(* A VM inherits its host's network position and depends on the host
   itself as hardware. *)
let vm_records cloud vm =
  match Cloud.host_of cloud vm with
  | None -> invalid_arg ("Scenario.vm_records: unknown VM " ^ vm)
  | Some host ->
      let tor = if host = "Server1" || host = "Server2" then "Switch1" else "Switch2" in
      [
        (* The VM instance itself can fail (crash, corruption) — the
           intended RG {VM7, VM8} of the case study's ranked list. *)
        Dependency.hardware ~hw:vm ~hw_type:"VMInstance" ~dep:vm;
        Dependency.hardware ~hw:vm ~hw_type:"HostServer" ~dep:host;
        Dependency.network ~src:vm ~dst:"Internet" ~route:[ tor; "Core1" ];
        Dependency.network ~src:vm ~dst:"Internet" ~route:[ tor; "Core2" ];
      ]

let hardware_case_sources cloud =
  [
    Agent.data_source ~name:"lab-cloud"
      [
        Collectors.static ~name:"topology" (lab_topology_records ());
        Collectors.static ~name:"vm-hosting"
          (List.concat_map (vm_records cloud) (Cloud.vm_names cloud));
      ];
  ]

let audit_vm_deployment cloud vms =
  let db = Depdb.create () in
  Depdb.add_all db (List.concat_map (vm_records cloud) vms);
  Sia_audit.audit db (Sia_audit.request vms)

(* The default seed is one under which the concurrent placement race
   actually co-locates the two replicas, reproducing the incident. *)
let run_hardware_case ?(rng = Prng.of_int 1) () =
  let cloud = Cloud.create ~servers:Cloud.lab_servers rng in
  (* Background VMs occupy resources first, as in a shared lab cloud;
     then the two redundancy-motivated Riak VMs are booted. *)
  for i = 1 to 6 do
    ignore (Cloud.boot_vm cloud ~name:(Printf.sprintf "VM%d" i) ~group:"misc")
  done;
  (* The two Riak replicas are requested together; their scheduling
     races against the same load snapshot (the OpenStack behaviour
     that produced the paper's incident). *)
  let placements =
    Cloud.boot_vms_concurrently cloud [ ("VM7", "riak"); ("VM8", "riak") ]
  in
  let h7 = List.assoc "VM7" placements in
  let h8 = List.assoc "VM8" placements in
  let initial_report = audit_vm_deployment cloud [ "VM7"; "VM8" ] in
  let top4 =
    List.filteri (fun i _ -> i < 4) initial_report.Sia_audit.ranked
    |> List.map (fun r -> r.Rank.rg_names)
  in
  (* Server-level audit to pick an independent pair of hosts, as the
     case study does before re-deploying. *)
  let server_db = Depdb.create () in
  Depdb.add_all server_db (lab_topology_records ());
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> [ x; y ]) rest @ pairs rest
  in
  (* Server1 runs the cloud controller in the lab, so operators
     prefer placing replicas elsewhere: it is considered last among
     otherwise-equivalent candidates. *)
  let preference = [ "Server2"; "Server3"; "Server4"; "Server1" ] in
  let best_servers =
    Sia_audit.choose_best server_db ~candidates:(pairs preference)
      (Sia_audit.request [])
  in
  let recommended = best_servers.Sia_audit.servers in
  (match recommended with
  | [ a; b ] ->
      Cloud.migrate cloud ~vm:"VM7" ~to_server:a;
      Cloud.migrate cloud ~vm:"VM8" ~to_server:b
  | _ -> assert false);
  let final_report = audit_vm_deployment cloud [ "VM7"; "VM8" ] in
  {
    initial_hosts = [ ("VM7", h7); ("VM8", h8) ];
    co_located = h7 = h8;
    initial_report;
    top4;
    recommended_servers = recommended;
    final_report;
    fixed = final_report.Sia_audit.unexpected = [];
  }

(* ------------------------------------------------------------------ *)
(* §6.2.3 — common software dependency (PIA)                           *)

type software_case = {
  two_way : Pia_audit.report;
  three_way : Pia_audit.report;
  best_two_way : string list;
}

let software_case_providers () =
  List.mapi
    (fun i app ->
      Pia_audit.provider
        ~name:(Printf.sprintf "Cloud%d" (i + 1))
        (Catalog.packages app))
    Catalog.all_applications

let run_software_case ?protocol ?(rng = Prng.of_int 0x6203) () =
  let providers = software_case_providers () in
  let protocol =
    match protocol with
    | Some p -> p
    | None ->
        Pia_audit.Psop
          {
            params =
              Some (Indaas_crypto.Commutative.params_pohlig_hellman ~bits:256 rng);
          }
  in
  let two_way = Pia_audit.audit ~protocol ~rng ~way:2 providers in
  let three_way = Pia_audit.audit ~protocol ~rng ~way:3 providers in
  {
    two_way;
    three_way;
    best_two_way = (Pia_audit.best two_way).Pia_audit.providers;
  }
