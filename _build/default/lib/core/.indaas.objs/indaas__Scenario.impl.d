lib/core/scenario.ml: Agent Indaas_crypto Indaas_depdata Indaas_iaas Indaas_pia Indaas_sia Indaas_topology Indaas_util List Printf String
