lib/core/monitor.mli: Indaas_depdata Indaas_sia Indaas_util
