lib/core/agent.mli: Indaas_depdata Indaas_pia Indaas_sia Indaas_util Spec
