lib/core/monitor.ml: Indaas_sia Indaas_util List Printf Set String
