lib/core/spec.mli:
