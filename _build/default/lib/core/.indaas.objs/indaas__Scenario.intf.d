lib/core/scenario.mli: Agent Indaas_depdata Indaas_iaas Indaas_pia Indaas_sia Indaas_util
