lib/core/agent.ml: Indaas_depdata Indaas_pia Indaas_sia Indaas_util List Logs Printf Spec
