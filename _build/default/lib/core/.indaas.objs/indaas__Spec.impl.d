lib/core/spec.ml: List Printf
