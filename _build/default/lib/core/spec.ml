type dependency_kind = Network | Hardware | Software

type metric =
  | Size_ranking
  | Probability_ranking of { component_probability : string -> float option }
  | Jaccard_similarity

type t = {
  data_sources : string list;
  redundancy : int;
  required : int;
  kinds : dependency_kind list;
  metric : metric;
  candidates : string list list option;
}

let rec subsets_of_size k l =
  match (k, l) with
  | 0, _ -> [ [] ]
  | _, [] -> []
  | k, x :: rest ->
      List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
      @ subsets_of_size k rest

let create ?(required = 1) ?(kinds = [ Network; Hardware; Software ])
    ?(metric = Size_ranking) ?candidates ~redundancy data_sources =
  let n = List.length data_sources in
  if n = 0 then invalid_arg "Spec.create: no data sources";
  if redundancy < 2 || redundancy > n then
    invalid_arg "Spec.create: redundancy out of [2, #sources]";
  if required < 1 || required > redundancy then
    invalid_arg "Spec.create: required out of [1, redundancy]";
  if kinds = [] then invalid_arg "Spec.create: no dependency kinds";
  (match candidates with
  | None -> ()
  | Some cs ->
      List.iter
        (fun c ->
          if List.length c <> redundancy then
            invalid_arg "Spec.create: candidate size differs from redundancy";
          List.iter
            (fun s ->
              if not (List.mem s data_sources) then
                invalid_arg
                  (Printf.sprintf "Spec.create: candidate member %S unknown" s))
            c)
        cs);
  { data_sources; redundancy; required; kinds; metric; candidates }

let candidate_deployments t =
  match t.candidates with
  | Some cs -> cs
  | None -> subsets_of_size t.redundancy t.data_sources

let wants t kind = List.mem kind t.kinds
