module Depdb = Indaas_depdata.Depdb
module Dependency = Indaas_depdata.Dependency
module Collectors = Indaas_depdata.Collectors
module Sia_audit = Indaas_sia.Audit
module Sia_report = Indaas_sia.Report
module Pia_audit = Indaas_pia.Audit
module Componentset = Indaas_pia.Componentset
module Prng = Indaas_util.Prng

let log_src = Logs.Src.create "indaas.agent" ~doc:"INDaaS auditing agent"

module Log = (val Logs.src_log log_src : Logs.LOG)

type data_source = {
  source_name : string;
  modules : Collectors.t list;
}

let data_source ~name modules = { source_name = name; modules }

type outcome =
  | Sia_outcome of Sia_audit.deployment_report list
  | Pia_outcome of Pia_audit.report

type audit_run = {
  spec : Spec.t;
  outcome : outcome;
  database_size : int;
}

let kind_of_record = function
  | Dependency.Network _ -> Spec.Network
  | Dependency.Hardware _ -> Spec.Hardware
  | Dependency.Software _ -> Spec.Software

let filter_kinds spec db =
  let filtered = Depdb.create () in
  List.iter
    (fun r -> if Spec.wants spec (kind_of_record r) then Depdb.add filtered r)
    (Depdb.records db);
  filtered

let find_source sources name =
  match List.find_opt (fun s -> s.source_name = name) sources with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Agent: data source %S not available" name)

let collect spec sources =
  let db = Depdb.create () in
  List.iter
    (fun name ->
      let source = find_source sources name in
      List.iter
        (fun (m : Collectors.t) ->
          let records = m.Collectors.collect () in
          Log.debug (fun f ->
              f "source %s: module %s produced %d records" name
                m.Collectors.name (List.length records));
          Depdb.add_all db records)
        source.modules)
    spec.Spec.data_sources;
  let filtered = filter_kinds spec db in
  Log.info (fun f ->
      f "collected %d records from %d data sources (%d after kind filter)"
        (Depdb.size db)
        (List.length spec.Spec.data_sources)
        (Depdb.size filtered));
  filtered

(* In PIA the agent never pools records: each provider derives its own
   normalized component set locally (§4.2.3). A provider's set is the
   union over all machines its records describe. *)
let local_component_set spec source =
  let db = Depdb.create () in
  List.iter
    (fun (m : Collectors.t) -> Depdb.add_all db (m.Collectors.collect ()))
    source.modules;
  let db = filter_kinds spec db in
  Componentset.union_many
    (List.map
       (fun machine -> Componentset.of_depdb db ~machine)
       (Depdb.machines db))

let run ?(rng = Prng.of_int 0x1DAA5) ?rg_algorithm ?pia_protocol spec sources =
  match spec.Spec.metric with
  | Spec.Jaccard_similarity ->
      let providers =
        List.map
          (fun name ->
            {
              Pia_audit.name;
              Pia_audit.components = local_component_set spec (find_source sources name);
            })
          spec.Spec.data_sources
      in
      let protocol =
        match pia_protocol with
        | Some p -> p
        | None -> Pia_audit.Psop { params = None }
      in
      Log.info (fun f ->
          f "running PIA across %d providers (redundancy %d)"
            (List.length providers) spec.Spec.redundancy);
      let report =
        Pia_audit.audit ~protocol ~rng ~way:spec.Spec.redundancy providers
      in
      { spec; outcome = Pia_outcome report; database_size = 0 }
  | Spec.Size_ranking | Spec.Probability_ranking _ ->
      let db = collect spec sources in
      let ranking, component_probability =
        match spec.Spec.metric with
        | Spec.Size_ranking -> (Sia_audit.Size_based, None)
        | Spec.Probability_ranking { component_probability } ->
            (Sia_audit.Probability_based, Some component_probability)
        | Spec.Jaccard_similarity -> assert false
      in
      let request =
        Sia_audit.request ~required:spec.Spec.required ?component_probability
          ?algorithm:rg_algorithm ~ranking []
      in
      let candidates = Spec.candidate_deployments spec in
      Log.info (fun f ->
          f "running SIA over %d candidate deployments" (List.length candidates));
      let reports = Sia_audit.audit_candidates ~rng db ~candidates request in
      { spec; outcome = Sia_outcome reports; database_size = Depdb.size db }

let render run =
  match run.outcome with
  | Sia_outcome reports -> Sia_report.render_comparison reports
  | Pia_outcome report -> Pia_audit.render report

let best_deployment run =
  match run.outcome with
  | Sia_outcome (best :: _) -> best.Sia_audit.servers
  | Sia_outcome [] -> invalid_arg "Agent.best_deployment: empty report"
  | Pia_outcome report -> (Pia_audit.best report).Pia_audit.providers
