(** Miniature IaaS substrate for the §6.2.2 hardware case study.

    Models the lab cloud of Figure 6(b): physical servers behind ToR
    and core switches, virtual machines placed on servers by a
    scheduler, and services deployed on VMs. The interesting
    behaviour is the placement policy: OpenStack's automatic scheduler
    "randomly selects from the least loaded resources to host a VM",
    which is exactly what let two redundancy-motivated VMs land on the
    same physical server. *)

type t

type placement_policy =
  | Least_loaded_random
      (** pick uniformly among the servers with minimum VM count — the
          OpenStack behaviour that caused the §6.2.2 incident. *)
  | Anti_affinity
      (** least-loaded among servers hosting no VM of the same
          service group — what the audit report's recommendation
          amounts to. *)
  | Pinned of (string * string) list
      (** explicit [vm -> server] assignment; placement falls back to
          [Least_loaded_random] for unlisted VMs. *)

val create :
  ?policy:placement_policy ->
  servers:string list ->
  Indaas_util.Prng.t ->
  t
(** A cloud with the given physical servers. The PRNG drives placement
    randomness. *)

val lab_servers : string list
(** The case study's four servers: Server1–Server4. *)

val boot_vm : t -> name:string -> group:string -> string
(** [boot_vm t ~name ~group] places a VM and returns the hosting
    server. [group] identifies the service the VM belongs to (used by
    [Anti_affinity]). Raises [Invalid_argument] if [name] is taken or
    no server is eligible. *)

val boot_vms_concurrently : t -> (string * string) list -> (string * string) list
(** [boot_vms_concurrently t [(name, group); ...]] places several VMs
    whose scheduling requests race: under [Least_loaded_random] every
    placement is computed against the {e same} load snapshot, so two
    replicas can land on one server — the §6.2.2 incident. An
    [Anti_affinity] policy is race-free (it accounts for the in-batch
    placements of the same group). Returns [(vm, host)] pairs. *)

val host_of : t -> string -> string option
(** The server hosting a VM. *)

val vms_on : t -> string -> string list
(** VMs hosted by a server, in boot order. *)

val vm_names : t -> string list
(** All VMs, in boot order. *)

val migrate : t -> vm:string -> to_server:string -> unit
(** Re-places an existing VM (the §6.2.2 re-deployment). Raises
    [Invalid_argument] on unknown VM or server. *)

val hardware_records : t -> Indaas_depdata.Dependency.t list
(** Table 1 hardware records: each VM depends on its hosting server
    as a shared hardware component — how VM co-location becomes
    visible to the auditor. *)
