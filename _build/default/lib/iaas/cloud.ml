module Prng = Indaas_util.Prng
module Dependency = Indaas_depdata.Dependency

type placement_policy =
  | Least_loaded_random
  | Anti_affinity
  | Pinned of (string * string) list

type vm = { vm_name : string; group : string; mutable host : string }

type t = {
  policy : placement_policy;
  servers : string array;
  rng : Prng.t;
  mutable vms : vm list; (* reversed boot order *)
}

let lab_servers = [ "Server1"; "Server2"; "Server3"; "Server4" ]

let create ?(policy = Least_loaded_random) ~servers rng =
  if servers = [] then invalid_arg "Cloud.create: no servers";
  { policy; servers = Array.of_list servers; rng; vms = [] }

let load t server =
  List.length (List.filter (fun v -> v.host = server) t.vms)

let find_vm t name = List.find_opt (fun v -> v.vm_name = name) t.vms

let server_exists t s = Array.exists (fun x -> x = s) t.servers

let least_loaded_among t candidates =
  match candidates with
  | [] -> None
  | _ ->
      let min_load =
        List.fold_left (fun acc s -> min acc (load t s)) max_int candidates
      in
      let pool =
        Array.of_list (List.filter (fun s -> load t s = min_load) candidates)
      in
      Some (Prng.pick t.rng pool)

let place t ~name ~group =
  let all = Array.to_list t.servers in
  match t.policy with
  | Least_loaded_random -> least_loaded_among t all
  | Anti_affinity -> (
      let hosts_group s =
        List.exists (fun v -> v.host = s && v.group = group) t.vms
      in
      match least_loaded_among t (List.filter (fun s -> not (hosts_group s)) all) with
      | Some s -> Some s
      | None -> least_loaded_among t all (* group larger than the cloud *))
  | Pinned assignment -> (
      match List.assoc_opt name assignment with
      | Some s ->
          if not (server_exists t s) then
            invalid_arg (Printf.sprintf "Cloud.boot_vm: unknown server %S" s);
          Some s
      | None -> least_loaded_among t all)

let boot_vm t ~name ~group =
  if find_vm t name <> None then
    invalid_arg (Printf.sprintf "Cloud.boot_vm: VM %S already exists" name);
  match place t ~name ~group with
  | None -> invalid_arg "Cloud.boot_vm: no eligible server"
  | Some host ->
      t.vms <- { vm_name = name; group; host } :: t.vms;
      host

let boot_vms_concurrently t requests =
  List.iter
    (fun (name, _) ->
      if find_vm t name <> None then
        invalid_arg (Printf.sprintf "Cloud.boot_vms_concurrently: VM %S exists" name))
    requests;
  (* Snapshot of the load every racing request observes. *)
  let snapshot = Array.map (load t) t.servers in
  let batch_hosts : (string * string * string) list ref = ref [] in
  let placements =
    List.map
      (fun (name, group) ->
        let host =
          match t.policy with
          | Anti_affinity -> (
              (* Race-free: also avoid in-batch same-group hosts. *)
              let taken s =
                List.exists (fun v -> v.host = s && v.group = group) t.vms
                || List.exists (fun (_, g, h) -> h = s && g = group) !batch_hosts
              in
              let eligible =
                Array.to_list t.servers |> List.filter (fun s -> not (taken s))
              in
              match least_loaded_among t eligible with
              | Some s -> s
              | None -> (
                  match least_loaded_among t (Array.to_list t.servers) with
                  | Some s -> s
                  | None -> assert false))
          | Least_loaded_random | Pinned _ ->
              (* Pick from the stale snapshot: concurrent schedulers do
                 not see each other's decisions. *)
              let min_load = Array.fold_left min max_int snapshot in
              let pool = ref [] in
              Array.iteri
                (fun i s -> if snapshot.(i) = min_load then pool := s :: !pool)
                t.servers;
              Prng.pick t.rng (Array.of_list (List.rev !pool))
        in
        batch_hosts := (name, group, host) :: !batch_hosts;
        (name, group, host))
      requests
  in
  List.map
    (fun (name, group, host) ->
      t.vms <- { vm_name = name; group; host } :: t.vms;
      (name, host))
    placements

let host_of t name = Option.map (fun v -> v.host) (find_vm t name)

let vms_on t server =
  List.rev t.vms
  |> List.filter (fun v -> v.host = server)
  |> List.map (fun v -> v.vm_name)

let vm_names t = List.rev_map (fun v -> v.vm_name) t.vms

let migrate t ~vm ~to_server =
  if not (server_exists t to_server) then
    invalid_arg (Printf.sprintf "Cloud.migrate: unknown server %S" to_server);
  match find_vm t vm with
  | None -> invalid_arg (Printf.sprintf "Cloud.migrate: unknown VM %S" vm)
  | Some v -> v.host <- to_server

let hardware_records t =
  List.rev_map
    (fun v ->
      Dependency.hardware ~hw:v.vm_name ~hw_type:"HostServer" ~dep:v.host)
    t.vms
