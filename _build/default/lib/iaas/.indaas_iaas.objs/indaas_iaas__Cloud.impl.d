lib/iaas/cloud.ml: Array Indaas_depdata Indaas_util List Option Printf
