lib/iaas/cloud.mli: Indaas_depdata Indaas_util
