(** Rendering of SIA auditing reports — what the auditing agent
    returns to the client in Step 6 of paper §2. *)

val render_deployment : ?max_rgs:int -> Audit.deployment_report -> string
(** Human-readable report for one deployment: the ranked RG list
    (truncated to [max_rgs], default 20), unexpected RGs, independence
    score and failure probability. *)

val render_comparison : ?max_rows:int -> Audit.deployment_report list -> string
(** Ranking table across candidate deployments, best first — the
    paper's final auditing report. *)

val summary_line : Audit.deployment_report -> string
(** One-line digest: servers, #RGs, #unexpected, score. *)

val deployment_to_json : Audit.deployment_report -> Indaas_util.Json.t
(** Machine-readable form of one deployment report (risk groups with
    sizes/probabilities/importances, unexpected flags, scores). *)

val comparison_to_json : Audit.deployment_report list -> Indaas_util.Json.t
