(** Fault-graph construction from dependency data — the auditing
    agent's Steps 1–6 of paper §4.1.1.

    Given the client's server list and the DepDB contents, builds the
    deployment's fault graph:

    - the top event is the failure of the whole redundancy deployment
      (a k-of-n gate over the servers: with [required] replicas needed
      alive out of [m], the deployment fails once [m - required + 1]
      servers fail; the default [required = 1] is the plain AND of
      Figure 4);
    - each server fails when its network, hardware or software fails
      (OR);
    - the network fails when every redundant path fails (AND), a path
      failing when any device on it fails (OR);
    - hardware fails when any physical component fails (OR);
    - software fails when any program fails, a program failing when
      any of its packages fails (OR over ORs).

    Components with equal identifiers are shared across the whole
    graph — that is precisely how common dependencies appear. *)

type spec = {
  servers : string list;  (** the redundant units to audit *)
  required : int;
      (** replicas that must stay alive; [1 <= required <= #servers] *)
  component_probability : string -> float option;
      (** failure probability per component identifier; return [None]
          for the unweighted (component-set / plain fault graph)
          levels of detail *)
}

val spec :
  ?required:int ->
  ?component_probability:(string -> float option) ->
  string list ->
  spec
(** [spec servers] with defaults: [required = 1], no probabilities. *)

val uniform_probability : float -> string -> float option
(** [uniform_probability p] assigns [p] to every component — the
    §6.2.1 cross-check assumption. *)

val build : Indaas_depdata.Depdb.t -> spec -> Indaas_faultgraph.Graph.t
(** Raises [Invalid_argument] if [spec.servers] is empty, [required]
    is out of range, or a server has no records at all in the
    database (auditing a machine the DAMs never saw is a
    specification error, not an independent deployment). *)

val expected_rg_size : spec -> int
(** The intended minimal RG size: [#servers - required + 1]. A
    minimal RG strictly smaller is an {e unexpected RG} (§1). *)
