module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset
module Probability = Indaas_faultgraph.Probability

type ranked = {
  rg : Cutset.rg;
  rg_names : string list;
  size : int;
  probability : float option;
  importance : float option;
}

let make g rg =
  {
    rg;
    rg_names = Cutset.names g rg;
    size = Array.length rg;
    probability = None;
    importance = None;
  }

let size_based g rgs =
  List.map (make g) rgs
  |> List.sort (fun a b ->
         match compare a.size b.size with
         | 0 -> compare a.rg_names b.rg_names
         | c -> c)

let top_probability rng g rgs = Probability.top_probability rng g ~rgs

let probability_based rng g rgs =
  let pr_top = top_probability rng g rgs in
  List.map
    (fun rg ->
      let p = Probability.rg_probability g rg in
      let importance =
        if pr_top > 0. then
          Some (Probability.relative_importance ~top_probability:pr_top ~rg_probability:p)
        else None
      in
      { (make g rg) with probability = Some p; importance })
    rgs
  |> List.sort (fun a b ->
         match (a.importance, b.importance) with
         | Some ia, Some ib -> (
             match compare ib ia with 0 -> compare a.rg_names b.rg_names | c -> c)
         | _ -> compare a.rg_names b.rg_names)

let take n l = List.filteri (fun i _ -> i < n) l

let independence_score_size ?top_n ranked =
  let selected =
    match top_n with Some n -> take n ranked | None -> ranked
  in
  List.fold_left (fun acc r -> acc +. float_of_int r.size) 0. selected

let independence_score_importance ?top_n ranked =
  let selected =
    match top_n with Some n -> take n ranked | None -> ranked
  in
  List.fold_left
    (fun acc r ->
      match r.importance with
      | Some i -> acc +. i
      | None ->
          invalid_arg "Rank.independence_score_importance: missing importance")
    0. selected

let unexpected ~expected_size ranked =
  List.filter (fun r -> r.size < expected_size) ranked
