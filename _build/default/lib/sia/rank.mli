(** Risk-group ranking and independence scores (paper §4.1.3–§4.1.4). *)

module Graph = Indaas_faultgraph.Graph
module Cutset = Indaas_faultgraph.Cutset

type ranked = {
  rg : Cutset.rg;
  rg_names : string list;
  size : int;
  probability : float option;  (** Pr(all events in the RG occur) *)
  importance : float option;  (** I_C = Pr(C)/Pr(T), when weighted *)
}

val size_based : Graph.t -> Cutset.rg list -> ranked list
(** Ascending by size (smallest — most alarming — first); ties in
    deterministic name order. [probability]/[importance] are [None]. *)

val probability_based :
  Indaas_util.Prng.t -> Graph.t -> Cutset.rg list -> ranked list
(** Descending by relative importance. Requires every basic event to
    carry a probability ({!Indaas_faultgraph.Probability.Missing_probability}
    otherwise). [Pr(T)] uses inclusion–exclusion when tractable,
    Monte-Carlo otherwise. *)

val top_probability :
  Indaas_util.Prng.t -> Graph.t -> Cutset.rg list -> float
(** The [Pr(T)] used by {!probability_based}. *)

val independence_score_size : ?top_n:int -> ranked list -> float
(** [indep(R) = Σ size(c_i)] over the first [top_n] ranked RGs
    (default: all). Higher = more independent. *)

val independence_score_importance : ?top_n:int -> ranked list -> float
(** [indep(R) = Σ I_{c_i}] over the first [top_n] ranked RGs. Lower =
    more independent (the mass is concentrated in unlikely RGs).
    Raises [Invalid_argument] if importances are missing. *)

val unexpected : expected_size:int -> ranked list -> ranked list
(** The RGs strictly smaller than the deployment's intended RG size —
    the unexpected RGs of §1. *)
