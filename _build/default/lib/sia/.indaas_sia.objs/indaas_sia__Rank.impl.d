lib/sia/rank.ml: Array Indaas_faultgraph List
