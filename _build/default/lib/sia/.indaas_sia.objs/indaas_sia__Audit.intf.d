lib/sia/audit.mli: Builder Indaas_depdata Indaas_faultgraph Indaas_util Rank
