lib/sia/rank.mli: Indaas_faultgraph Indaas_util
