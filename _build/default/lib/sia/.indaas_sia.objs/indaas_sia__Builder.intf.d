lib/sia/builder.mli: Indaas_depdata Indaas_faultgraph
