lib/sia/builder.ml: Fun Indaas_depdata Indaas_faultgraph List Option Printf
