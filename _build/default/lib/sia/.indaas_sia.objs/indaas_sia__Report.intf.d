lib/sia/report.mli: Audit Indaas_util
