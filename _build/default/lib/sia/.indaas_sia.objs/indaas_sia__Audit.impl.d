lib/sia/audit.ml: Builder Indaas_faultgraph Indaas_util List Rank
