lib/sia/report.ml: Audit Buffer Format Indaas_faultgraph Indaas_util List Printf Rank String
