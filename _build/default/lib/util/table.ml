type align = Left | Right | Center

type line = Row of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable lines : line list; (* reversed *)
  arity : int;
}

let create ?aligns headers =
  let arity = List.length headers in
  let aligns =
    match aligns with
    | None -> List.init arity (fun _ -> Left)
    | Some a ->
        if List.length a <> arity then
          invalid_arg "Table.create: aligns arity mismatch";
        a
  in
  { headers; aligns; lines = []; arity }

let add_row t row =
  if List.length row <> t.arity then invalid_arg "Table.add_row: arity mismatch";
  t.lines <- Row row :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let left = fill / 2 in
        String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render t =
  let lines = List.rev t.lines in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Separator -> ()
      | Row cells ->
          List.iteri
            (fun i c -> widths.(i) <- max widths.(i) (String.length c))
            cells)
    lines;
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i c ->
          let align = List.nth t.aligns i in
          " " ^ pad align widths.(i) c ^ " ")
        cells
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  List.iter
    (fun line ->
      Buffer.add_char buf '\n';
      match line with
      | Separator -> Buffer.add_string buf rule
      | Row cells -> Buffer.add_string buf (render_row cells))
    lines;
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t = print_endline (render t)

let of_rows headers rows =
  let t = create headers in
  List.iter (add_row t) rows;
  render t
