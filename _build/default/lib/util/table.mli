(** Plain-text table rendering for auditing reports and benchmark
    output (paper-style rows). *)

type align = Left | Right | Center

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table. [aligns] defaults to [Left] for
    every column; when given it must have one entry per header. *)

val add_row : t -> string list -> unit
(** Appends a row; raises [Invalid_argument] if the arity differs from
    the header. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between the rows added before and after. *)

val render : t -> string
(** Renders with box-drawing in ASCII ([+-|]). *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a newline. *)

val of_rows : string list -> string list list -> string
(** One-shot: [of_rows headers rows] builds and renders. *)
