lib/util/stats.mli:
