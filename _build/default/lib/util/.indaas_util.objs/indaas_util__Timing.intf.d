lib/util/timing.mli:
