lib/util/table.mli:
