lib/util/timing.ml: Printf Unix
