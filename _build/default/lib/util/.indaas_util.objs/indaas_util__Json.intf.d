lib/util/json.mli:
