(** Deterministic pseudo-random number generation.

    All randomness in the INDaaS libraries flows through this module so
    that simulations, protocol runs, tests and benchmarks are exactly
    reproducible from a seed.  The generator is SplitMix64 (Steele,
    Lea & Flood, OOPSLA 2014): tiny state, excellent statistical
    quality for simulation purposes, and cheap splitting. *)

type t
(** A mutable generator. Not thread-safe; create one per domain. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing
    [g]. Useful to hand separate deterministic streams to
    sub-components. *)

val copy : t -> t
(** [copy g] duplicates the current state of [g]; the two generators
    then produce identical streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in \[0, bound). [bound] must be > 0. *)

val int64_in : t -> int64 -> int64
(** [int64_in g bound] is uniform in \[0, bound). [bound] must be > 0. *)

val float : t -> float
(** Uniform float in \[0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val bytes : t -> int -> Bytes.t
(** [bytes g n] returns [n] random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** [shuffle_list g l] is a uniformly shuffled copy of [l]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument]
    on an empty array. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement g k arr] draws [k] distinct elements.
    Raises [Invalid_argument] if [k > Array.length arr]. *)

val exponential : t -> float -> float
(** [exponential g lambda] draws from Exp(lambda). *)
