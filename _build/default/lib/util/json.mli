(** Minimal JSON emitter (no parser) for machine-readable reports.

    Deliberately tiny: auditing reports need to be consumed by
    dashboards and ticketing systems, not round-tripped. Numbers are
    emitted with enough precision to reconstruct doubles; strings are
    escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two-space
    indentation. Raises [Invalid_argument] on NaN or infinite floats
    (they have no JSON representation). *)

val escape_string : string -> string
(** The quoted, escaped form of a string literal. *)
