type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  if Float.is_nan f || not (Float.is_finite f) then
    invalid_arg "Json: non-finite float"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = false) value =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        newline ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (key, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            Buffer.add_string buf (escape_string key);
            Buffer.add_string buf (if indent then ": " else ":");
            emit (depth + 1) v)
          fields;
        newline ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 value;
  Buffer.contents buf
