type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

(* SplitMix64 finalizer: mix the incremented state to an output word. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = next_int64 g in
  create (mix64 seed)

let copy g = { state = g.state }

let bits30 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 34)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound <= 1 lsl 29 then begin
    (* Rejection sampling on 30 bits to avoid modulo bias. *)
    let mask = bound - 1 in
    if bound land mask = 0 then bits30 g land mask
    else
      let rec draw () =
        let r = bits30 g in
        let v = r mod bound in
        if r - v > (1 lsl 30) - bound then draw () else v
      in
      draw ()
  end
  else
    (* Large bounds: use 62 bits. *)
    let rec draw () =
      let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
      let v = r mod bound in
      if r - v > max_int - bound then draw () else v
    in
    draw ()

let int64_in g bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Prng.int64_in: bound must be positive";
  let rec draw () =
    let r = Int64.shift_right_logical (next_int64 g) 1 in
    let v = Int64.rem r bound in
    if Int64.compare (Int64.sub r v) (Int64.sub Int64.max_int bound) > 0 then draw () else v
  in
  draw ()

let float g =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  r *. 0x1p-53

let bool g = Int64.logand (next_int64 g) 1L = 1L

let bernoulli g p = float g < p

let bytes g n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let word = ref (next_int64 g) in
    let stop = min n (!i + 8) in
    while !i < stop do
      Bytes.set b !i (Char.chr (Int64.to_int (Int64.logand !word 0xFFL)));
      word := Int64.shift_right_logical !word 8;
      incr i
    done
  done;
  b

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list g l =
  let arr = Array.of_list l in
  shuffle g arr;
  Array.to_list arr

let pick g arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int g (Array.length arr))

let sample_without_replacement g k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Prng.sample_without_replacement: k > length";
  let copy = Array.copy arr in
  (* Partial Fisher–Yates: the first k slots end up a uniform sample. *)
  for i = 0 to k - 1 do
    let j = i + int g (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k

let exponential g lambda =
  if lambda <= 0. then invalid_arg "Prng.exponential: lambda must be positive";
  -. log (1. -. float g) /. lambda
