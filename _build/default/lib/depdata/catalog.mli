(** Software package catalog — the stand-in for running
    [apt-rdepends] on live machines (paper §3, §6.2.3).

    Ships the package dependency closures of the four key-value stores
    of the §6.2.3 case study (Riak, MongoDB, Redis, CouchDB). The
    overlap structure between the four closures was solved so that the
    exact pairwise and three-way Jaccard similarities reproduce the
    ordering (and closely approximate the values) of the paper's
    Table 2. *)

type application = Riak | MongoDB | Redis | CouchDB

val all_applications : application list
val application_name : application -> string

val packages : application -> string list
(** Full dependency closure (package names with versions), sorted. *)

val software_dependency : application -> host:string -> Dependency.t
(** The Table 1 software record for [application] deployed on
    [host]. *)

val base_system_packages : string list
(** Packages shared by every application (libc6 and friends). *)

val synthetic_sets :
  Indaas_util.Prng.t ->
  providers:int ->
  elements:int ->
  shared_fraction:float ->
  string list array
(** [synthetic_sets g ~providers ~elements ~shared_fraction] builds
    [providers] component sets of [elements] identifiers each, of
    which a [shared_fraction] is drawn from a common pool (appearing
    in every set) and the rest are provider-unique — the workload
    shape used for the Figure 8/9 protocol benchmarks. *)
