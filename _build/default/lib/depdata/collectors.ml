type t = { name : string; collect : unit -> Dependency.t list }

let run modules =
  let db = Depdb.create () in
  List.iter (fun m -> Depdb.add_all db (m.collect ())) modules;
  db

let nsdminer ~routes =
  {
    name = "nsdminer";
    collect =
      (fun () ->
        List.map
          (fun (src, dst, route) -> Dependency.network ~src ~dst ~route)
          routes);
  }

type machine_profile = {
  machine : string;
  cpu_model : string;
  disk_model : string;
  ram_model : string;
  nic_model : string;
}

let standard_profile ?(cpu = "Intel(R)X5550@2.6GHz") ?(disk = "SED900")
    ?(ram = "DDR3-1333-8GB") ?(nic = "82599ES-10G") machine =
  { machine; cpu_model = cpu; disk_model = disk; ram_model = ram; nic_model = nic }

let lshw profiles =
  {
    name = "lshw";
    collect =
      (fun () ->
        List.concat_map
          (fun p ->
            (* Per-machine physical components get machine-prefixed
               identifiers as in the paper's Figure 3: two machines
               with the same disk model are distinct failure events,
               unless reported via [shared_hardware]. *)
            let dep model = p.machine ^ "-" ^ model in
            [
              Dependency.hardware ~hw:p.machine ~hw_type:"CPU" ~dep:(dep p.cpu_model);
              Dependency.hardware ~hw:p.machine ~hw_type:"Disk" ~dep:(dep p.disk_model);
              Dependency.hardware ~hw:p.machine ~hw_type:"RAM" ~dep:(dep p.ram_model);
              Dependency.hardware ~hw:p.machine ~hw_type:"NIC" ~dep:(dep p.nic_model);
            ])
          profiles);
  }

let shared_hardware ~machines ~hw_type ~dep =
  {
    name = "lshw-shared";
    collect =
      (fun () ->
        List.map (fun m -> Dependency.hardware ~hw:m ~hw_type ~dep) machines);
  }

let apt_rdepends deployments =
  {
    name = "apt-rdepends";
    collect =
      (fun () ->
        List.map
          (fun (app, host) -> Catalog.software_dependency app ~host)
          deployments);
  }

let static ~name records = { name; collect = (fun () -> records) }
