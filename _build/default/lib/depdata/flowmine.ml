type observation = {
  flow : int;
  src : string;
  dst : string;
  device : string;
  hop : int;
}

type mined_route = {
  route_src : string;
  route_dst : string;
  devices : string list;
  occurrences : int;
}

let reconstruct observations =
  (* flow id -> observations *)
  let by_flow = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let existing =
        match Hashtbl.find_opt by_flow o.flow with Some l -> l | None -> []
      in
      Hashtbl.replace by_flow o.flow (o :: existing))
    observations;
  (* route key -> count *)
  let routes = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ obs ->
      let sorted = List.sort (fun a b -> compare a.hop b.hop) obs in
      (* corrupt if two observations claim the same hop, or the flow's
         endpoints disagree *)
      let rec consistent = function
        | a :: (b :: _ as rest) ->
            a.hop <> b.hop && a.src = b.src && a.dst = b.dst && consistent rest
        | [ _ ] | [] -> true
      in
      if consistent sorted then
        match sorted with
        | [] -> ()
        | first :: _ ->
            let key =
              (first.src, first.dst, List.map (fun o -> o.device) sorted)
            in
            let count =
              match Hashtbl.find_opt routes key with Some c -> c | None -> 0
            in
            Hashtbl.replace routes key (count + 1))
    by_flow;
  Hashtbl.fold
    (fun (route_src, route_dst, devices) occurrences acc ->
      { route_src; route_dst; devices; occurrences } :: acc)
    routes []
  |> List.sort (fun a b ->
         match compare b.occurrences a.occurrences with
         | 0 -> compare (a.route_src, a.route_dst, a.devices) (b.route_src, b.route_dst, b.devices)
         | c -> c)

let mine ?(min_occurrences = 2) observations =
  if min_occurrences < 1 then invalid_arg "Flowmine.mine: min_occurrences";
  reconstruct observations
  |> List.filter (fun r -> r.occurrences >= min_occurrences)
  |> List.map (fun r ->
         Dependency.network ~src:r.route_src ~dst:r.route_dst ~route:r.devices)

let collector ?min_occurrences observations =
  {
    Collectors.name = "nsdminer-flows";
    Collectors.collect = (fun () -> mine ?min_occurrences observations);
  }
