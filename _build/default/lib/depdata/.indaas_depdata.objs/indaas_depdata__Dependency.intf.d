lib/depdata/dependency.mli: Format
