lib/depdata/catalog.ml: Array Dependency Float Indaas_util List Printf String
