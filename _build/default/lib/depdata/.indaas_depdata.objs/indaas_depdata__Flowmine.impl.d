lib/depdata/flowmine.ml: Collectors Dependency Hashtbl List
