lib/depdata/catalog.mli: Dependency Indaas_util
