lib/depdata/collectors.mli: Catalog Depdb Dependency
