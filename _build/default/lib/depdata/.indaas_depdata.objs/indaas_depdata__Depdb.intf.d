lib/depdata/depdb.mli: Dependency
