lib/depdata/collectors.ml: Catalog Depdb Dependency List
