lib/depdata/failure_stats.mli:
