lib/depdata/dependency.ml: Format List Printf Stdlib String
