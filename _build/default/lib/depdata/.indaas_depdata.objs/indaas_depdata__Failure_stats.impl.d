lib/depdata/failure_stats.ml: Hashtbl List Printf Set String
