lib/depdata/depdb.ml: Dependency Hashtbl List Set String
