lib/depdata/flowmine.mli: Collectors Dependency
