type application = Riak | MongoDB | Redis | CouchDB

let all_applications = [ Riak; MongoDB; Redis; CouchDB ]

let application_name = function
  | Riak -> "Riak"
  | MongoDB -> "MongoDB"
  | Redis -> "Redis"
  | CouchDB -> "CouchDB"

(* The four closures are unions of disjoint "regions": a base shared
   by all four, regions shared by specific pairs/triples, and unique
   remainders. Region sizes were solved so that the resulting Jaccard
   similarities reproduce Table 2 of the paper:

     base (all four)          15
     Riak & MongoDB           25      Riak & Redis              8
     Riak & CouchDB            3      MongoDB & Redis            1
     MongoDB & CouchDB         0      Redis & CouchDB           12
     Riak & MongoDB & Redis    2
     unique: Riak 0, MongoDB 27, Redis 15, CouchDB 23

   giving J(Riak,MongoDB) = 42/81 = 0.519 vs paper 0.5059 and so on,
   with both the two-way and three-way rankings in Table 2 order. *)

let base_system_packages =
  [
    "libc6-2.13"; "libgcc1-4.7"; "libstdc++6-4.7"; "zlib1g-1.2.7";
    "libssl1.0.0"; "openssl-1.0.1"; "libcurl3-7.26"; "ca-certificates-2012";
    "libpcre3-8.30"; "libreadline6-6.2"; "ncurses-base-5.9"; "libtinfo5-5.9";
    "libselinux1-2.1"; "libattr1-2.4"; "coreutils-8.13";
  ]

(* Flavour names for the first few members of each region, padded with
   generated package names to reach the solved size. *)
let region prefix flavour size =
  let flavour = List.filteri (fun i _ -> i < size) flavour in
  let missing = size - List.length flavour in
  flavour
  @ List.init missing (fun i -> Printf.sprintf "lib%s-extra%d" prefix (i + 1))

let riak_mongodb =
  region "dbcommon"
    [
      "libsnappy1-1.0.4"; "libgoogle-perftools4"; "libboost-system1.49";
      "libboost-thread1.49"; "libboost-filesystem1.49"; "libv8-3.8";
      "libpcap0.8-1.3"; "libyaml-0.1.4"; "libjs-jquery-1.7";
      "python-pymongo-2.2";
    ]
    25

let riak_redis =
  region "kvstore"
    [ "libjemalloc1-3.0"; "liblua5.1-0"; "libatomic-ops1-7.2"; "libev4-4.11" ]
    8

let riak_couchdb =
  region "erlangish" [ "libicu48-4.8"; "libmozjs185-1.0"; "erlang-base-15b" ] 3

let mongodb_redis = region "mr" [ "libtcmalloc-minimal4" ] 1
let mongodb_couchdb = region "mc" [] 0

let redis_couchdb =
  region "rc"
    [
      "libhiredis0.10"; "libjansson4-2.3"; "libuv0.10"; "libltdl7-2.4";
      "libffi5-3.0";
    ]
    12

let riak_mongodb_redis = region "rmr" [ "libprotobuf7-2.4"; "libleveldb1-1.9" ] 2

let riak_unique = region "riak" [] 0

let mongodb_unique =
  region "mongodb"
    [
      "mongodb-clients-2.0"; "mongodb-server-2.0"; "libgoogle-glog0";
      "libsasl2-2-2.1"; "libkrb5-3-1.10"; "libgssapi-krb5-2";
    ]
    27

let redis_unique =
  region "redis"
    [ "redis-server-2.4"; "redis-tools-2.4"; "liblzf1-3.6" ]
    15

let couchdb_unique =
  region "couchdb"
    [
      "couchdb-bin-1.2"; "erlang-crypto-15b"; "erlang-inets-15b";
      "erlang-os-mon-15b"; "erlang-ssl-15b"; "erlang-xmerl-15b";
    ]
    23

let packages app =
  let regions =
    match app with
    | Riak ->
        [ base_system_packages; riak_mongodb; riak_redis; riak_couchdb;
          riak_mongodb_redis; riak_unique ]
    | MongoDB ->
        [ base_system_packages; riak_mongodb; mongodb_redis; mongodb_couchdb;
          riak_mongodb_redis; mongodb_unique ]
    | Redis ->
        [ base_system_packages; riak_redis; mongodb_redis; redis_couchdb;
          riak_mongodb_redis; redis_unique ]
    | CouchDB ->
        [ base_system_packages; riak_couchdb; mongodb_couchdb; redis_couchdb;
          couchdb_unique ]
  in
  List.sort_uniq String.compare (List.concat regions)

let software_dependency app ~host =
  Dependency.software ~pgm:(application_name app) ~host ~deps:(packages app)

let synthetic_sets g ~providers ~elements ~shared_fraction =
  if providers <= 0 then invalid_arg "Catalog.synthetic_sets: providers";
  if elements < 0 then invalid_arg "Catalog.synthetic_sets: elements";
  if not (shared_fraction >= 0. && shared_fraction <= 1.) then
    invalid_arg "Catalog.synthetic_sets: shared_fraction out of [0,1]";
  let shared_count =
    int_of_float (Float.round (shared_fraction *. float_of_int elements))
  in
  let shared =
    List.init shared_count (fun i ->
        Printf.sprintf "shared-component-%d-%06x" i
          (Indaas_util.Prng.int g 0xFFFFFF))
  in
  Array.init providers (fun p ->
      let unique =
        List.init (elements - shared_count) (fun i ->
            Printf.sprintf "provider%d-component-%d-%06x" p i
              (Indaas_util.Prng.int g 0xFFFFFF))
      in
      shared @ unique)
