type network = { src : string; dst : string; route : string list }
type hardware = { hw : string; hw_type : string; dep : string }
type software = { pgm : string; host : string; deps : string list }

type t =
  | Network of network
  | Hardware of hardware
  | Software of software

let network ~src ~dst ~route = Network { src; dst; route }
let hardware ~hw ~hw_type ~dep = Hardware { hw; hw_type; dep }
let software ~pgm ~host ~deps = Software { pgm; host; deps }

let quote s =
  (* The wire format does not support embedded quotes. *)
  if String.contains s '"' then
    invalid_arg "Dependency: attribute value contains a quote";
  "\"" ^ s ^ "\""

let to_xml = function
  | Network { src; dst; route } ->
      Printf.sprintf "<src=%s dst=%s route=%s/>" (quote src) (quote dst)
        (quote (String.concat "," route))
  | Hardware { hw; hw_type; dep } ->
      Printf.sprintf "<hw=%s type=%s dep=%s/>" (quote hw) (quote hw_type)
        (quote dep)
  | Software { pgm; host; deps } ->
      Printf.sprintf "<pgm=%s hw=%s dep=%s/>" (quote pgm) (quote host)
        (quote (String.concat "," deps))

let to_xml_many records = String.concat "\n" (List.map to_xml records)

(* --- parsing ------------------------------------------------------- *)

(* Parse [key="value"] pairs from the inside of a tag. *)
let parse_attributes body =
  let n = String.length body in
  let attrs = ref [] in
  let i = ref 0 in
  let fail msg = failwith (Printf.sprintf "Dependency.of_xml: %s in %S" msg body) in
  while !i < n do
    while !i < n && (body.[!i] = ' ' || body.[!i] = '\t') do incr i done;
    if !i < n then begin
      let key_start = !i in
      while !i < n && body.[!i] <> '=' do incr i done;
      if !i >= n then fail "missing '='";
      let key = String.trim (String.sub body key_start (!i - key_start)) in
      incr i;
      if !i >= n || body.[!i] <> '"' then fail "missing opening quote";
      incr i;
      let value_start = !i in
      while !i < n && body.[!i] <> '"' do incr i done;
      if !i >= n then fail "missing closing quote";
      let value = String.sub body value_start (!i - value_start) in
      incr i;
      attrs := (key, value) :: !attrs
    end
  done;
  List.rev !attrs

let split_commas s =
  if String.trim s = "" then []
  else List.map String.trim (String.split_on_char ',' s)

let of_attributes attrs =
  let find key =
    match List.assoc_opt key attrs with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Dependency.of_xml: missing %S attribute" key)
  in
  match attrs with
  | ("src", _) :: _ ->
      Network { src = find "src"; dst = find "dst"; route = split_commas (find "route") }
  | ("hw", _) :: _ ->
      Hardware { hw = find "hw"; hw_type = find "type"; dep = find "dep" }
  | ("pgm", _) :: _ ->
      Software { pgm = find "pgm"; host = find "hw"; deps = split_commas (find "dep") }
  | (other, _) :: _ ->
      failwith (Printf.sprintf "Dependency.of_xml: unknown record type %S" other)
  | [] -> failwith "Dependency.of_xml: empty tag"

let of_xml s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '<' || s.[n - 1] <> '>' then
    failwith (Printf.sprintf "Dependency.of_xml: not a tag: %S" s);
  let stop = if n >= 3 && s.[n - 2] = '/' then n - 2 else n - 1 in
  of_attributes (parse_attributes (String.sub s 1 (stop - 1)))

let of_xml_many doc =
  (* One record per '<...>' group; everything outside tags is
     ignored (separators, prose). *)
  let records = ref [] in
  let n = String.length doc in
  let i = ref 0 in
  while !i < n do
    match String.index_from_opt doc !i '<' with
    | None -> i := n
    | Some start -> (
        match String.index_from_opt doc start '>' with
        | None -> failwith "Dependency.of_xml_many: unterminated tag"
        | Some stop ->
            let tag = String.sub doc start (stop - start + 1) in
            records := of_xml tag :: !records;
            i := stop + 1)
  done;
  List.rev !records

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp fmt t = Format.pp_print_string fmt (to_xml t)

let subject = function
  | Network { src; _ } -> src
  | Hardware { hw; _ } -> hw
  | Software { host; _ } -> host

let components = function
  | Network { route; _ } -> route
  | Hardware { dep; _ } -> [ dep ]
  | Software { deps; _ } -> deps
