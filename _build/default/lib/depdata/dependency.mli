(** Structural dependency records — the uniform representation that
    dependency acquisition modules emit (paper §3, Table 1).

    Three record types cover the paper's three most common causes of
    correlated failures: network routes, hardware components, and
    software packages. *)

type network = {
  src : string;  (** source endpoint, e.g. a server *)
  dst : string;  (** destination, e.g. ["Internet"] *)
  route : string list;  (** intermediate devices, in order *)
}

type hardware = {
  hw : string;  (** owning machine *)
  hw_type : string;  (** CPU, Disk, RAM, NIC, ... *)
  dep : string;  (** component model identifier *)
}

type software = {
  pgm : string;  (** the software component *)
  host : string;  (** machine it runs on (the [hw] attribute) *)
  deps : string list;  (** packages/libraries it depends on *)
}

type t =
  | Network of network
  | Hardware of hardware
  | Software of software

val network : src:string -> dst:string -> route:string list -> t
val hardware : hw:string -> hw_type:string -> dep:string -> t
val software : pgm:string -> host:string -> deps:string list -> t

val to_xml : t -> string
(** Renders one record in the Table 1 wire format, e.g.
    [<src="S1" dst="Internet" route="ToR1,Core1"/>]. *)

val of_xml : string -> t
(** Parses one record. Accepts both self-closing ([/>]) and plain
    ([>]) tags as in the paper's Figure 3. Raises [Failure] with a
    diagnostic on malformed input. *)

val to_xml_many : t list -> string
(** One record per line. *)

val of_xml_many : string -> t list
(** Parses a whole document: one record per [<...>] group; blank lines
    and [---] separators are ignored. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val subject : t -> string
(** The machine this record is about: [src] for network records, [hw]
    for hardware records, [host] for software records. *)

val components : t -> string list
(** The component identifiers this record names as dependencies:
    route devices, hardware model, or package names. *)
