(** Failure-probability acquisition (paper §5.1).

    The fault-set and weighted-fault-graph levels of detail need
    per-component failure probabilities, which the paper leaves to
    external sources and sketches two of:

    - {b Gill et al. (SIGCOMM 2011)}: estimate a device type's
      probability of failure over a period as the number of devices of
      that type that failed at least once during the period divided by
      the deployed population of the type.
    - {b CVSS}: use vulnerability scores as a proxy for software
      package failure likelihood.

    This module implements both estimators plus the plumbing that
    turns them into the [component_probability] callback the SIA
    builder consumes. *)

(** {1 Event-log estimation (hardware / network devices)} *)

type event = {
  component : string;  (** failed component identifier *)
  component_type : string;  (** e.g. ["ToR"], ["AggSwitch"], ["Core"] *)
  day : int;  (** observation day, 0-based within the window *)
}

type estimate = {
  etype : string;
  population : int;
  failed : int;  (** distinct components that failed at least once *)
  probability : float;  (** failed / population *)
}

val estimate_by_type :
  window_days:int -> population:(string * int) list -> event list -> estimate list
(** [estimate_by_type ~window_days ~population events] computes one
    estimate per component type in [population] from events observed
    during the window. Events for unknown types and events outside
    [0, window_days) are rejected with [Invalid_argument]; a type's
    failed count is capped by its population (re-failures of the same
    component do not double count). *)

val probability_of : estimate list -> component_type:string -> float option

(** {1 CVSS-based estimation (software packages)} *)

val probability_of_cvss : ?exploit_rate:float -> float -> float
(** [probability_of_cvss score] maps a CVSS base score in \[0, 10\] to
    a failure probability: [exploit_rate * score / 10] (default
    [exploit_rate] 0.1 — at most a 10% chance that a maximally-severe
    vulnerable package causes an outage over the period). Raises
    [Invalid_argument] outside \[0, 10\]. *)

val cvss_table : (string * float) list -> string -> float option
(** [cvss_table assignments] turns per-package CVSS scores into a
    probability lookup, [None] for unlisted packages. *)

(** {1 Composition} *)

val classify_by_prefix :
  (string * string) list -> string -> string option
(** [classify_by_prefix rules component] returns the type of the first
    rule whose prefix matches, e.g.
    [classify_by_prefix [("tor", "ToR"); ("core", "Core")] "tor12"]
    is [Some "ToR"]. *)

val lookup :
  ?default:float ->
  device_types:(string -> string option) ->
  device_estimates:estimate list ->
  software:(string -> float option) ->
  string ->
  float option
(** Combine the estimators into a [component_probability] callback:
    software lookup first, then device-type classification and
    estimates, then [default] (if any). *)
