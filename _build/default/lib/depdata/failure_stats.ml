type event = {
  component : string;
  component_type : string;
  day : int;
}

type estimate = {
  etype : string;
  population : int;
  failed : int;
  probability : float;
}

module SS = Set.Make (String)

let estimate_by_type ~window_days ~population events =
  if window_days <= 0 then
    invalid_arg "Failure_stats.estimate_by_type: window_days must be positive";
  List.iter
    (fun (etype, count) ->
      if count <= 0 then
        invalid_arg
          (Printf.sprintf
             "Failure_stats.estimate_by_type: population of %S must be positive"
             etype))
    population;
  let known = List.map fst population in
  List.iter
    (fun e ->
      if not (List.mem e.component_type known) then
        invalid_arg
          (Printf.sprintf "Failure_stats.estimate_by_type: unknown type %S"
             e.component_type);
      if e.day < 0 || e.day >= window_days then
        invalid_arg "Failure_stats.estimate_by_type: event outside window")
    events;
  List.map
    (fun (etype, count) ->
      let distinct_failed =
        List.fold_left
          (fun acc e ->
            if e.component_type = etype then SS.add e.component acc else acc)
          SS.empty events
        |> SS.cardinal
      in
      let failed = min distinct_failed count in
      {
        etype;
        population = count;
        failed;
        probability = float_of_int failed /. float_of_int count;
      })
    population

let probability_of estimates ~component_type =
  List.find_map
    (fun e -> if e.etype = component_type then Some e.probability else None)
    estimates

let probability_of_cvss ?(exploit_rate = 0.1) score =
  if not (score >= 0. && score <= 10.) then
    invalid_arg "Failure_stats.probability_of_cvss: score out of [0, 10]";
  if not (exploit_rate >= 0. && exploit_rate <= 1.) then
    invalid_arg "Failure_stats.probability_of_cvss: exploit_rate out of [0, 1]";
  exploit_rate *. score /. 10.

let cvss_table assignments =
  let tbl = Hashtbl.create (List.length assignments) in
  List.iter
    (fun (pkg, score) -> Hashtbl.replace tbl pkg (probability_of_cvss score))
    assignments;
  fun pkg -> Hashtbl.find_opt tbl pkg

let classify_by_prefix rules component =
  List.find_map
    (fun (prefix, etype) ->
      let plen = String.length prefix in
      if String.length component >= plen && String.sub component 0 plen = prefix
      then Some etype
      else None)
    rules

let lookup ?default ~device_types ~device_estimates ~software component =
  match software component with
  | Some p -> Some p
  | None -> (
      match device_types component with
      | Some etype -> (
          match probability_of device_estimates ~component_type:etype with
          | Some p -> Some p
          | None -> default)
      | None -> default)
