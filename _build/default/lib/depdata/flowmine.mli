(** Network-dependency mining from traffic observations — a working
    model of what NSDMiner does (paper §3).

    The real NSDMiner watches traffic at network devices and infers
    which routes a service's flows take. Here each device that sees a
    packet of a flow contributes an {e observation} (flow id, device,
    hop index); the miner groups observations per flow, reconstructs
    the device sequence, aggregates identical routes across flows, and
    emits Table 1 network records for the routes seen often enough to
    be trusted (rare routes are treated as noise — mirroring
    NSDMiner's occurrence thresholds). *)

type observation = {
  flow : int;  (** flow identifier *)
  src : string;  (** originating server *)
  dst : string;  (** destination, e.g. ["Internet"] *)
  device : string;  (** observing network device *)
  hop : int;  (** position of the device on the path, 0-based *)
}

type mined_route = {
  route_src : string;
  route_dst : string;
  devices : string list;  (** in hop order *)
  occurrences : int;  (** flows that followed this exact route *)
}

val reconstruct : observation list -> mined_route list
(** Groups by flow, orders by hop, aggregates identical routes.
    Flows with conflicting observations (two devices claiming the
    same hop) are discarded as corrupt. Routes are returned in
    decreasing occurrence order. *)

val mine : ?min_occurrences:int -> observation list -> Dependency.t list
(** [mine observations] reconstructs and keeps routes seen at least
    [min_occurrences] times (default 2), as network dependency
    records. *)

val collector : ?min_occurrences:int -> observation list -> Collectors.t
(** Packages the miner as a dependency acquisition module. *)
