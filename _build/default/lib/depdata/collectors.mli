(** Dependency acquisition modules (DAMs, paper §3).

    The paper's prototype shells out to NSDMiner (network traffic
    analysis), HardwareLister/lshw (hardware inventory) and
    apt-rdepends (package closures). A sealed container has no live
    traffic, hardware variety, or package manager, so these modules
    {e simulate} the same collectors from explicit models, emitting
    byte-identical Table 1 records (DESIGN.md substitution 1). *)

type t = {
  name : string;  (** e.g. ["nsdminer"] *)
  collect : unit -> Dependency.t list;
}
(** A pluggable acquisition module: invoked by a data source, returns
    adapted records for the DepDB. *)

val run : t list -> Depdb.t
(** Runs each module and stores all records in a fresh DepDB, as a
    data source does in Step 3 of the paper's workflow. *)

(** {1 The three simulated collectors} *)

val nsdminer : routes:(string * string * string list) list -> t
(** [nsdminer ~routes] simulates NSDMiner output: each
    [(src, dst, devices)] triple becomes a network record. *)

type machine_profile = {
  machine : string;
  cpu_model : string;
  disk_model : string;
  ram_model : string;
  nic_model : string;
}

val standard_profile :
  ?cpu:string -> ?disk:string -> ?ram:string -> ?nic:string -> string ->
  machine_profile
(** A machine with common defaults (Intel X5550 CPU, SED900 disk, ...)
    matching the paper's Figure 3 examples. *)

val lshw : machine_profile list -> t
(** Simulates HardwareLister: one hardware record per component of
    each machine. Component model identifiers are prefixed with the
    machine name, mirroring Figure 3
    (["S1-Intel(R)X5550@2.6GHz"]). *)

val shared_hardware : machines:string list -> hw_type:string -> dep:string -> t
(** A collector reporting one physical component shared by several
    machines under the {e same} identifier — how rack-level PDUs or a
    shared hypervisor host enter the dependency data. *)

val apt_rdepends : (Catalog.application * string) list -> t
(** [apt_rdepends [(app, host); ...]] simulates package-closure
    extraction for each deployed application. *)

val static : name:string -> Dependency.t list -> t
(** Wraps pre-existing records (e.g. parsed from a file) as a
    module. *)
