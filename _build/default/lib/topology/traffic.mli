(** Synthetic traffic generation over fat-tree topologies — the input
    side of the NSDMiner model ({!Indaas_depdata.Flowmine}).

    Each generated flow picks one of the server's equal-cost up-paths
    (ECMP-style) and produces one observation per device on it;
    optionally each observation is dropped with some probability
    (monitoring loss), which exercises the miner's corruption and
    thresholding logic. *)

type config = {
  flows_per_server : int;
  drop_probability : float;  (** per-observation loss, in \[0, 1) *)
}

val default_config : config
(** 50 flows per server, no loss. *)

val generate :
  ?config:config ->
  Indaas_util.Prng.t ->
  Fattree.t ->
  servers:int list ->
  Indaas_depdata.Flowmine.observation list
(** Flows from each listed server toward ["Internet"]. Flow ids are
    unique across the whole batch. *)

val mined_database :
  ?config:config ->
  ?min_occurrences:int ->
  Indaas_util.Prng.t ->
  Fattree.t ->
  servers:int list ->
  Indaas_depdata.Depdb.t
(** Convenience: generate traffic, mine it, store the records — the
    full acquisition path from packets to DepDB. *)
