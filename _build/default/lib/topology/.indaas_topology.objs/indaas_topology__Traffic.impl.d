lib/topology/traffic.ml: Array Fattree Indaas_depdata Indaas_util List
