lib/topology/fattree.ml: Indaas_depdata List Printf
