lib/topology/fattree.mli: Indaas_depdata
