lib/topology/traffic.mli: Fattree Indaas_depdata Indaas_util
