lib/topology/datacenter.ml: Indaas_depdata List Printf
