lib/topology/datacenter.mli: Indaas_depdata
