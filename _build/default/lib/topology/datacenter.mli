(** The §6.2.1 case-study data center.

    Models a real-world-shaped enterprise data center in the spirit of
    the topology the paper takes from Benson et al. (IMC 2010):
    33 Top-of-Rack switches (e1–e33) and four core routers (b1, b2,
    c1, c2). The original measured topology is not public, so this
    module reconstructs one with the same ingredients and the same
    pathology the case study exercises — most candidate racks'
    uplinks funnel through a single core router, so most two-way
    deployments share a single point of failure, and only a minority
    of rack pairs are safe picks (paper: 27 of 190; this
    reconstruction: 36 of 190 — see EXPERIMENTS.md).

    Candidate racks for deployment are racks 5–22 (single-homed
    through core [b1], some sharing ToR switches) plus racks 29 and
    33 (single-homed through core [c1]) — 20 candidates, giving the
    paper's 190 two-way deployments, with {e Rack 5 + Rack 29} the
    first maximally-independent pair in rank order. *)

type t

val create : unit -> t

val rack_ids : t -> int list
(** All rack identifiers (1–33). *)

val candidate_racks : t -> int list
(** The 20 racks Alice's specification names. *)

val rack_name : int -> string
(** ["Rack5"]. *)

val server_of_rack : int -> string
(** The representative replica server in a rack, ["serverR5"]. *)

val tor_of_rack : t -> int -> string
(** The ToR switch a rack's servers attach to (ToRs may be shared
    between racks). *)

val cores_of_rack : t -> int -> string list
(** Core routers reachable from the rack's ToR uplinks. *)

val routes : t -> rack:int -> string list list
(** Up-paths from the rack's replica server to the Internet:
    [[tor; core]] per reachable core. *)

val network_records : t -> rack:int -> Indaas_depdata.Dependency.t list

val all_network_records : t -> Indaas_depdata.Dependency.t list
(** Records for every candidate rack's replica server. *)

val device_failure_probability : float
(** 0.1 — the uniform per-device failure probability the case study
    assumes for its probability cross-check. *)
