module Prng = Indaas_util.Prng
module Flowmine = Indaas_depdata.Flowmine
module Depdb = Indaas_depdata.Depdb

type config = {
  flows_per_server : int;
  drop_probability : float;
}

let default_config = { flows_per_server = 50; drop_probability = 0. }

let generate ?(config = default_config) rng t ~servers =
  if config.flows_per_server <= 0 then
    invalid_arg "Traffic.generate: flows_per_server must be positive";
  if not (config.drop_probability >= 0. && config.drop_probability < 1.) then
    invalid_arg "Traffic.generate: drop_probability out of [0, 1)";
  let flow_counter = ref 0 in
  List.concat_map
    (fun server ->
      let src = Fattree.server_name t server in
      let paths = Array.of_list (Fattree.routes_to_core t ~server) in
      List.concat
        (List.init config.flows_per_server (fun _ ->
             let flow = !flow_counter in
             incr flow_counter;
             (* ECMP: pick one equal-cost path per flow *)
             let path = Prng.pick rng paths in
             List.filteri
               (fun _ _ -> not (Prng.bernoulli rng config.drop_probability))
               (List.mapi
                  (fun hop device ->
                    { Flowmine.flow; src; dst = "Internet"; device; hop })
                  path))))
    servers

let mined_database ?config ?min_occurrences rng t ~servers =
  let observations = generate ?config rng t ~servers in
  let db = Depdb.create () in
  Depdb.add_all db (Flowmine.mine ?min_occurrences observations);
  db
