module Dependency = Indaas_depdata.Dependency

type t = { k : int }

let create ~k =
  if k < 4 || k mod 2 <> 0 then
    invalid_arg "Fattree.create: k must be an even integer >= 4";
  { k }

let k t = t.k
let half t = t.k / 2
let core_count t = half t * half t
let agg_count t = t.k * half t
let edge_count t = t.k * half t
let server_count t = t.k * t.k * t.k / 4
let device_count t = core_count t + agg_count t + edge_count t + server_count t

let check_range what i limit =
  if i < 0 || i >= limit then
    invalid_arg (Printf.sprintf "Fattree.%s: index %d out of range" what i)

let server_name t i =
  check_range "server_name" i (server_count t);
  Printf.sprintf "server%d" i

let edge_name t i =
  check_range "edge_name" i (edge_count t);
  Printf.sprintf "tor%d" i

let agg_name t i =
  check_range "agg_name" i (agg_count t);
  Printf.sprintf "agg%d" i

let core_name t i =
  check_range "core_name" i (core_count t);
  Printf.sprintf "core%d" i

let server_names t = List.init (server_count t) (fun i -> server_name t i)

(* Server i lives under edge switch (i / (k/2)); edge switches are
   numbered globally, pod p owning edges [p*k/2 .. (p+1)*k/2 - 1]. *)
let rack_of_server t i =
  check_range "rack_of_server" i (server_count t);
  i / half t

let servers_of_rack t rack =
  check_range "servers_of_rack" rack (edge_count t);
  List.init (half t) (fun j -> (rack * half t) + j)

let pod_of_server t i = rack_of_server t i / half t

let routes_to_core t ~server =
  check_range "routes_to_core" server (server_count t);
  let h = half t in
  let rack = rack_of_server t server in
  let pod = rack / h in
  List.concat
    (List.init h (fun a ->
         let agg_global = (pod * h) + a in
         List.init h (fun c ->
             let core_global = (a * h) + c in
             [ edge_name t rack; agg_name t agg_global; core_name t core_global ])))

let network_records t ~server =
  let src = server_name t server in
  List.map
    (fun route -> Dependency.network ~src ~dst:"Internet" ~route)
    (routes_to_core t ~server)

let table3_row t =
  [
    string_of_int t.k;
    string_of_int (core_count t);
    string_of_int (agg_count t);
    string_of_int (edge_count t);
    string_of_int (server_count t);
    string_of_int (device_count t);
  ]
