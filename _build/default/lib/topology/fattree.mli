(** Three-stage fat-tree data-center topologies (PortLand-style),
    the generator behind Table 3 and the Figure 7 workloads.

    A [k]-port fat tree has [k] pods; each pod contains [k/2]
    aggregation and [k/2] edge (Top-of-Rack) switches; each edge
    switch serves [k/2] servers; [(k/2)^2] core routers connect the
    pods, with aggregation switch [a] of every pod linked to cores
    [a*k/2 .. a*k/2 + k/2 - 1]. Counts: [(k/2)^2] cores, [k^2/2]
    aggregation switches, [k^2/2] ToR switches, [k^3/4] servers —
    matching the paper's Table 3 for k = 16, 24, 48. *)

type t

val create : k:int -> t
(** [create ~k] requires an even [k >= 4]. *)

val k : t -> int
val core_count : t -> int
val agg_count : t -> int
val edge_count : t -> int
val server_count : t -> int
val device_count : t -> int
(** Switches/routers plus servers — the paper's “Total # devices”. *)

(** {1 Names} — stable identifiers used in dependency records. *)

val server_name : t -> int -> string
(** Servers are numbered [0 .. server_count-1]. *)

val edge_name : t -> int -> string
val agg_name : t -> int -> string
val core_name : t -> int -> string

val server_names : t -> string list

val rack_of_server : t -> int -> int
(** The (global) edge-switch index of a server's rack. *)

val servers_of_rack : t -> int -> int list
(** Server indices attached to edge switch [rack]. *)

val pod_of_server : t -> int -> int

(** {1 Routing} *)

val routes_to_core : t -> server:int -> string list list
(** All distinct up-paths from a server to the core layer, each as
    the device names traversed: [edge; agg; core]. A server has
    [(k/2)^2] of them. *)

val network_records : t -> server:int -> Indaas_depdata.Dependency.t list
(** One Table 1 network record per route, destination ["Internet"]
    (paper Figure 3). *)

val table3_row : t -> string list
(** [#ports; #core; #agg; #tor; #servers; total] as strings — one
    column of the paper's Table 3. *)
