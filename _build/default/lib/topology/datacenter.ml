module Dependency = Indaas_depdata.Dependency

(* Static reconstruction; [t] is a placeholder for future
   parameterized variants. *)
type t = unit

let create () = ()

let rack_ids () = List.init 33 (fun i -> i + 1)

let candidate_racks () = List.init 18 (fun i -> i + 5) @ [ 29; 33 ]

let rack_name r = Printf.sprintf "Rack%d" r

let server_of_rack r = Printf.sprintf "serverR%d" r

(* ToR assignment: candidate racks 5..22 mostly have their own ToR,
   but three ToR switches are shared by rack pairs (5,6), (11,12) and
   (17,18) — the kind of consolidation the measured topology
   exhibits. Non-candidate racks keep private ToRs. *)
let tor_of_rack () r =
  let shared_owner =
    match r with 6 -> Some 5 | 12 -> Some 11 | 18 -> Some 17 | _ -> None
  in
  match shared_owner with
  | Some owner -> Printf.sprintf "e%d" owner
  | None -> Printf.sprintf "e%d" r

(* Core connectivity: racks 1..28 uplink through b1 only (the
   single-core funnel at the heart of the case study); racks 29..33
   uplink through c1 only. Cores b2 and c2 exist as spares wired to
   non-candidate infrastructure. *)
let cores_of_rack () r =
  if r >= 1 && r <= 28 then [ "b1" ]
  else if r >= 29 && r <= 33 then [ "c1" ]
  else invalid_arg (Printf.sprintf "Datacenter.cores_of_rack: rack %d" r)

let routes t ~rack =
  let tor = tor_of_rack t rack in
  List.map (fun core -> [ tor; core ]) (cores_of_rack t rack)

let network_records t ~rack =
  let src = server_of_rack rack in
  List.map
    (fun route -> Dependency.network ~src ~dst:"Internet" ~route)
    (routes t ~rack)

let all_network_records t =
  List.concat_map (fun rack -> network_records t ~rack) (candidate_racks t)

let device_failure_probability = 0.1
