type wire = int

type gate =
  | Input of { party : int }
  | Constant of bool
  | Xor of wire * wire
  | And of wire * wire
  | Not of wire

type t = { gates : gate array; outputs : wire list }

module Builder = struct
  type circuit = t

  type t = { mutable acc : gate list; mutable count : int }

  let create () = { acc = []; count = 0 }

  let push b gate =
    let id = b.count in
    b.count <- id + 1;
    b.acc <- gate :: b.acc;
    id

  let check b w name =
    if w < 0 || w >= b.count then
      invalid_arg (Printf.sprintf "Circuit.Builder.%s: unknown wire %d" name w)

  let input b ~party =
    if party <> 0 && party <> 1 then
      invalid_arg "Circuit.Builder.input: party must be 0 or 1";
    push b (Input { party })

  let constant b v = push b (Constant v)

  let xor b x y =
    check b x "xor";
    check b y "xor";
    push b (Xor (x, y))

  let and_ b x y =
    check b x "and_";
    check b y "and_";
    push b (And (x, y))

  let not_ b x =
    check b x "not_";
    push b (Not x)

  let or_ b x y = not_ b (and_ b (not_ b x) (not_ b y))

  let xnor b x y = not_ b (xor b x y)

  let rec tree op b = function
    | [] -> invalid_arg "Circuit.Builder: empty tree"
    | [ w ] -> w
    | ws ->
        (* pairwise reduction keeps the depth logarithmic *)
        let rec pairs = function
          | a :: b' :: rest -> op a b' :: pairs rest
          | ([ _ ] | []) as rest -> rest
        in
        tree op b (pairs ws)

  let and_tree b ws = tree (and_ b) b ws
  let or_tree b ws = tree (or_ b) b ws

  let equal b xs ys =
    if List.length xs <> List.length ys then
      invalid_arg "Circuit.Builder.equal: width mismatch";
    if xs = [] then invalid_arg "Circuit.Builder.equal: empty words";
    and_tree b (List.map2 (xnor b) xs ys)

  (* Little-endian ripple-carry adder; result is one bit wider. *)
  let add b xs ys =
    if List.length xs <> List.length ys then
      invalid_arg "Circuit.Builder.add: width mismatch";
    let carry = ref (constant b false) in
    let sum_bits =
      List.map2
        (fun x y ->
          let s1 = xor b x y in
          let s = xor b s1 !carry in
          (* carry-out = (x AND y) OR (carry AND (x XOR y)) *)
          let c1 = and_ b x y in
          let c2 = and_ b !carry s1 in
          carry := or_ b c1 c2;
          s)
        xs ys
    in
    sum_bits @ [ !carry ]

  let rec popcount b = function
    | [] -> [ constant b false ]
    | [ w ] -> [ w ]
    | ws ->
        (* split in half, sum recursively, add with padding *)
        let rec split i = function
          | [] -> ([], [])
          | x :: rest ->
              let l, r = split (i + 1) rest in
              if i mod 2 = 0 then (x :: l, r) else (l, x :: r)
        in
        let left, right = split 0 ws in
        let a = popcount b left and c = popcount b right in
        let width = max (List.length a) (List.length c) in
        let pad ws =
          ws @ List.init (width - List.length ws) (fun _ -> constant b false)
        in
        add b (pad a) (pad c)

  let build b ~outputs =
    List.iter (fun w -> check b w "build") outputs;
    { gates = Array.of_list (List.rev b.acc); outputs }
end

let gates c = c.gates
let outputs c = c.outputs
let size c = Array.length c.gates

let and_count c =
  Array.fold_left
    (fun acc g -> match g with And _ -> acc + 1 | _ -> acc)
    0 c.gates

let input_wires c ~party =
  let out = ref [] in
  Array.iteri
    (fun i g ->
      match g with
      | Input { party = p } when p = party -> out := i :: !out
      | Input _ | Constant _ | Xor _ | And _ | Not _ -> ())
    c.gates;
  List.rev !out

let evaluate c ~inputs =
  let values = Array.make (Array.length c.gates) false in
  Array.iteri
    (fun i g ->
      match g with
      | Input _ -> (
          match List.assoc_opt i inputs with
          | Some v -> values.(i) <- v
          | None ->
              invalid_arg
                (Printf.sprintf "Circuit.evaluate: input wire %d unassigned" i))
      | Constant v -> values.(i) <- v
      | Xor (a, b) -> values.(i) <- values.(a) <> values.(b)
      | And (a, b) -> values.(i) <- values.(a) && values.(b)
      | Not a -> values.(i) <- not values.(a))
    c.gates;
  List.map (fun w -> values.(w)) c.outputs

let intersection_cardinality ~bits ~n0 ~n1 =
  if bits <= 0 || n0 <= 0 || n1 <= 0 then
    invalid_arg "Circuit.intersection_cardinality: sizes must be positive";
  let b = Builder.create () in
  let word party = List.init bits (fun _ -> Builder.input b ~party) in
  let party0 = List.init n0 (fun _ -> word 0) in
  let party1 = List.init n1 (fun _ -> word 1) in
  let matched =
    List.map
      (fun x -> Builder.or_tree b (List.map (fun y -> Builder.equal b x y) party1))
      party0
  in
  let count = Builder.popcount b matched in
  (Builder.build b ~outputs:count, (party0, party1))
