(** Oblivious transfer (semi-honest, Bellare–Micali style over a
    prime-order-ish group).

    The GMW protocol consumes one 1-out-of-4 OT per AND gate. The
    receiver publishes public keys of which it knows exactly one
    secret exponent (the others are fixed by a common reference
    element with unknown discrete log), the sender ElGamal-encrypts
    each message under the corresponding key, and the receiver can
    open only its chosen branch. Each OT costs a handful of modular
    exponentiations — which is exactly why circuit-based SMPC drowns
    at O(n²·ℓ) AND gates (paper §4.2). *)

type params
(** Group parameters plus the common reference element. *)

val setup : ?bits:int -> Indaas_util.Prng.t -> params
(** Default 128-bit modulus (short for speed; this baseline exists to
    be measured, not to protect real data — see DESIGN.md). *)

type stats = { mutable exponentiations : int; mutable bytes : int }

val stats : params -> stats
(** Running totals over every transfer under these parameters. *)

val transfer2 :
  params ->
  Indaas_util.Prng.t ->
  messages:(bool * bool) ->
  choice:bool ->
  bool
(** 1-out-of-2 OT of single bits: returns [fst messages] when [choice]
    is [false], [snd messages] otherwise — with the sender learning
    nothing about [choice] and the receiver nothing about the other
    message. *)

val transfer4 :
  params ->
  Indaas_util.Prng.t ->
  messages:(bool * bool * bool * bool) ->
  choice:int ->
  bool
(** 1-out-of-4 OT of single bits; [choice] in \[0, 3\]. *)

val transfer2_bytes :
  params ->
  Indaas_util.Prng.t ->
  messages:(string * string) ->
  choice:bool ->
  string
(** 1-out-of-2 OT of equal-length byte strings (wire labels for
    garbled circuits). Raises [Invalid_argument] on a length
    mismatch. *)
