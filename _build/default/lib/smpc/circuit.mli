(** Boolean circuits for secure multi-party computation.

    The paper's first candidate for private independence auditing was
    generic SMPC (Xiao et al., CCSW 2013), rejected because it
    "performs adequately only on small dependency datasets" (§4.2).
    This module provides the circuit representation the {!Gmw}
    protocol evaluates — and the set-intersection-cardinality circuit
    whose O(n²·ℓ) AND gates are precisely why SMPC loses to P-SOP.

    Wires are numbered; gates are XOR / AND / NOT over earlier wires
    (an acyclic straight-line program). Inputs belong to one of two
    parties. *)

type wire = int

type gate =
  | Input of { party : int }  (** 0 or 1 *)
  | Constant of bool
  | Xor of wire * wire
  | And of wire * wire
  | Not of wire

type t

(** {1 Building} *)

module Builder : sig
  type circuit = t
  type t

  val create : unit -> t
  val input : t -> party:int -> wire
  val constant : t -> bool -> wire
  val xor : t -> wire -> wire -> wire
  val and_ : t -> wire -> wire -> wire
  val not_ : t -> wire -> wire
  val or_ : t -> wire -> wire -> wire
  (** [or_ a b] = [not (not a and not b)] — costs one AND gate. *)

  val xnor : t -> wire -> wire -> wire

  val equal : t -> wire list -> wire list -> wire
  (** Bitwise equality of two equal-length words: ℓ XNORs and an
      (ℓ-1)-AND tree. Raises [Invalid_argument] on length mismatch or
      empty words. *)

  val or_tree : t -> wire list -> wire
  val and_tree : t -> wire list -> wire

  val add : t -> wire list -> wire list -> wire list
  (** Ripple-carry addition of two little-endian words of equal
      length; result has one more bit. *)

  val popcount : t -> wire list -> wire list
  (** Sum of the given bits as a little-endian word (an adder tree). *)

  val build : t -> outputs:wire list -> circuit
  (** Raises [Invalid_argument] on an unknown output wire. *)
end

(** {1 Inspection and evaluation} *)

val gates : t -> gate array
val outputs : t -> wire list
val size : t -> int
val and_count : t -> int
(** Number of AND gates — the unit of GMW cost (XOR and NOT are
    free). *)

val input_wires : t -> party:int -> wire list
(** In declaration order. *)

val evaluate : t -> inputs:(wire * bool) list -> bool list
(** Plaintext reference evaluation. Every input wire must be
    assigned; raises [Invalid_argument] otherwise. *)

(** {1 The SMPC workload} *)

val intersection_cardinality :
  bits:int -> n0:int -> n1:int -> t * (wire list list * wire list list)
(** [intersection_cardinality ~bits ~n0 ~n1] builds the circuit that
    takes [n0] [bits]-wide tags from party 0 and [n1] from party 1 and
    outputs (little-endian) the number of party-0 tags that appear in
    party 1's list — O(n0·n1) equality comparators plus a popcount.
    Also returns the input wires of each element, grouped per element,
    for both parties. *)
