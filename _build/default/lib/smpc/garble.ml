module Prng = Indaas_util.Prng
module Digest = Indaas_crypto.Digest
module Oracle = Indaas_crypto.Oracle

type result = {
  outputs : bool list;
  and_gates : int;
  table_bytes : int;
  ot_count : int;
  ot_exponentiations : int;
  bytes : int;
}

let label_len = 16

let xor_bytes a b =
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

(* point-and-permute color bit *)
let color label = Char.code label.[0] land 1 = 1

let hash_gate a b gate =
  String.sub (Digest.sha256 (Printf.sprintf "garble-%d|%s|%s" gate a b)) 0 label_len

let random_label rng = Bytes.to_string (Prng.bytes rng label_len)

let execute ?(ot_bits = 128) rng circuit ~inputs0 ~inputs1 =
  let params = Ot.setup ~bits:ot_bits rng in
  let gates = Circuit.gates circuit in
  let n = Array.length gates in
  (* Free-XOR: label(true) = label(false) XOR delta, lsb(delta) = 1 so
     the color bits of a wire's two labels always differ. *)
  let delta =
    let d = Bytes.of_string (random_label rng) in
    Bytes.set d 0 (Char.chr (Char.code (Bytes.get d 0) lor 1));
    Bytes.to_string d
  in
  let zero_label = Array.make n "" in
  (* what the evaluator holds: one active label per wire *)
  let active = Array.make n "" in
  let table_bytes = ref 0 in
  let ot_count = ref 0 in
  let lookup inputs w party =
    match List.assoc_opt w inputs with
    | Some v -> v
    | None ->
        invalid_arg
          (Printf.sprintf "Garble.execute: party %d missing input wire %d" party w)
  in
  let label_of w v = if v then xor_bytes zero_label.(w) delta else zero_label.(w) in
  let and_gates = ref 0 in
  Array.iteri
    (fun w gate ->
      match gate with
      | Circuit.Input { party } ->
          zero_label.(w) <- random_label rng;
          if party = 0 then
            (* garbler sends the active label directly *)
            active.(w) <- label_of w (lookup inputs0 w 0)
          else begin
            (* evaluator picks up its label by OT *)
            incr ot_count;
            let v = lookup inputs1 w 1 in
            active.(w) <-
              Ot.transfer2_bytes params rng
                ~messages:(label_of w false, label_of w true)
                ~choice:v
          end
      | Circuit.Constant c ->
          zero_label.(w) <- random_label rng;
          active.(w) <- label_of w c
      | Circuit.Xor (a, b) ->
          (* free-XOR *)
          zero_label.(w) <- xor_bytes zero_label.(a) zero_label.(b);
          active.(w) <- xor_bytes active.(a) active.(b)
      | Circuit.Not a ->
          (* free: negation = swap the label roles *)
          zero_label.(w) <- xor_bytes zero_label.(a) delta;
          active.(w) <- active.(a)
      | Circuit.And (a, b) ->
          incr and_gates;
          zero_label.(w) <- random_label rng;
          (* garble the 4-row table, rows indexed by the input labels'
             color bits *)
          let table = Array.make 4 "" in
          List.iter
            (fun va ->
              List.iter
                (fun vb ->
                  let la = label_of a va and lb = label_of b vb in
                  let row = ((if color la then 2 else 0) lor if color lb then 1 else 0) in
                  table.(row) <-
                    xor_bytes (hash_gate la lb w) (label_of w (va && vb)))
                [ false; true ])
            [ false; true ];
          table_bytes := !table_bytes + (4 * label_len);
          (* evaluation: decrypt the row selected by the active colors *)
          let la = active.(a) and lb = active.(b) in
          let row = ((if color la then 2 else 0) lor if color lb then 1 else 0) in
          active.(w) <- xor_bytes (hash_gate la lb w) table.(row))
    gates;
  (* Output decoding: the garbler reveals color(zero_label) per output. *)
  let outputs =
    List.map
      (fun w -> color active.(w) <> color zero_label.(w))
      (Circuit.outputs circuit)
  in
  let stats = Ot.stats params in
  {
    outputs;
    and_gates = !and_gates;
    table_bytes = !table_bytes;
    ot_count = !ot_count;
    ot_exponentiations = stats.Ot.exponentiations;
    bytes = stats.Ot.bytes + !table_bytes;
  }

let bits_of_tag tag ~tag_bits =
  let h = Oracle.hash_to_nat tag ~bits:tag_bits in
  List.init tag_bits (fun i -> Indaas_bignum.Nat.testbit h i)

let intersection_cardinality ?(ot_bits = 128) ?(tag_bits = 24) rng set0 set1 =
  let set0 = List.sort_uniq compare set0 and set1 = List.sort_uniq compare set1 in
  let circuit, (wires0, wires1) =
    Circuit.intersection_cardinality ~bits:tag_bits ~n0:(List.length set0)
      ~n1:(List.length set1)
  in
  let assign wires elements =
    List.concat
      (List.map2
         (fun ws e -> List.combine ws (bits_of_tag e ~tag_bits))
         wires elements)
  in
  let result =
    execute ~ot_bits rng circuit ~inputs0:(assign wires0 set0)
      ~inputs1:(assign wires1 set1)
  in
  let count =
    List.fold_left
      (fun acc bit -> (2 * acc) + if bit then 1 else 0)
      0
      (List.rev result.outputs)
  in
  (result, count)
