lib/smpc/ot.ml: Array Buffer Char Indaas_bignum Indaas_crypto Indaas_util Printf String
