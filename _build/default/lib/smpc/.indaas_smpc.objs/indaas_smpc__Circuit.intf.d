lib/smpc/circuit.mli:
