lib/smpc/ot.mli: Indaas_util
