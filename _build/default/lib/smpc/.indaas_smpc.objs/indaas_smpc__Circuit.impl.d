lib/smpc/circuit.ml: Array List Printf
