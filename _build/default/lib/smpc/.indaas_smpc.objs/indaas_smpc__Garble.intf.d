lib/smpc/garble.mli: Circuit Indaas_util
