lib/smpc/garble.ml: Array Bytes Char Circuit Indaas_bignum Indaas_crypto Indaas_util List Ot Printf String
