lib/smpc/gmw.mli: Circuit Indaas_util
