lib/smpc/gmw.ml: Array Circuit Indaas_bignum Indaas_crypto Indaas_util List Ot Printf
