(** Two-party semi-honest GMW evaluation of boolean circuits.

    Every wire value is XOR-shared between the two parties; XOR and
    NOT gates are evaluated locally, and each AND gate consumes one
    1-out-of-4 oblivious transfer. This is the generic-SMPC route to
    private independence auditing that the paper evaluates and
    rejects (§4.2): correct on anything expressible as a circuit, but
    the OT-per-AND cost makes the O(n²·ℓ)-gate set-intersection
    circuit hopeless beyond toy sizes — which the [smpc] benchmark
    measures. *)

type result = {
  outputs : bool list;  (** reconstructed output bits *)
  and_gates : int;  (** = OTs performed *)
  ot_exponentiations : int;
  bytes : int;  (** OT traffic *)
}

val execute :
  ?ot_bits:int ->
  Indaas_util.Prng.t ->
  Circuit.t ->
  inputs0:(Circuit.wire * bool) list ->
  inputs1:(Circuit.wire * bool) list ->
  result
(** Runs the protocol between two simulated parties holding the
    respective input assignments. Raises [Invalid_argument] if an
    input wire of either party is missing or assigned by the wrong
    party. *)

val intersection_cardinality :
  ?ot_bits:int ->
  ?tag_bits:int ->
  Indaas_util.Prng.t ->
  string list ->
  string list ->
  result * int
(** The §4.2 use case end-to-end: hash both component lists to
    [tag_bits]-wide tags (default 24), build the
    {!Circuit.intersection_cardinality} circuit, run GMW, and decode
    the counter. Returns the protocol result and the cardinality. *)
