module Nat = Indaas_bignum.Nat
module Prime = Indaas_bignum.Prime
module Digest = Indaas_crypto.Digest
module Oracle = Indaas_crypto.Oracle
module Prng = Indaas_util.Prng

type stats = { mutable exponentiations : int; mutable bytes : int }

type params = {
  p : Nat.t;  (** prime modulus *)
  g : Nat.t;  (** generator (heuristically, a small element) *)
  crs : Nat.t;  (** common reference element with unknown dlog *)
  stats : stats;
}

let setup ?(bits = 128) rng =
  let p = Prime.generate rng ~bits in
  (* A fixed small base; for the semi-honest simulation a full-order
     generator check is unnecessary. *)
  let g = Nat.of_int 5 in
  let crs = Oracle.hash_to_group "ot-crs" ~modulus:p in
  { p; g; crs; stats = { exponentiations = 0; bytes = 0 } }

let stats t = t.stats

let modexp t base exp =
  t.stats.exponentiations <- t.stats.exponentiations + 1;
  Nat.mod_pow ~base ~exp ~modulus:t.p

let account_bytes t n = t.stats.bytes <- t.stats.bytes + n

let group_bytes t = Nat.byte_length t.p

(* Hash a group element to one pad bit, domain-separated by index. *)
let pad_bit element ~index =
  let d = Digest.sha256 (Printf.sprintf "ot-pad-%d|%s" index (Nat.to_hex element)) in
  Char.code d.[0] land 1 = 1

(* Generic 1-out-of-m for single-bit messages. *)
let transfer_m t rng messages ~choice =
  let m = Array.length messages in
  if choice < 0 || choice >= m then invalid_arg "Ot.transfer: bad choice";
  (* Receiver: knows dlog of pk.(choice) only; the other keys are
     forced to crs^i / pk_choice-style combinations. We use the
     standard trick pk_i = crs^i / pk_0' ... simplified: pk_choice =
     g^k; for i <> choice, pk_i = crs * hash-independent shift — for a
     semi-honest simulation it suffices that the receiver cannot know
     two dlogs, which holds because pk_i / pk_choice involves crs. *)
  let k = Nat.random_below rng (Nat.sub t.p Nat.two) in
  let pk_choice = modexp t t.g k in
  let pks =
    Array.init m (fun i ->
        if i = choice then pk_choice
        else begin
          (* crs^(i+1) * pk_choice^-1 mod p *)
          let shifted = modexp t t.crs (Nat.of_int (i + 1)) in
          match Nat.mod_inverse pk_choice t.p with
          | Some inv -> Nat.rem (Nat.mul shifted inv) t.p
          | None -> shifted (* pk_choice not invertible: negligible *)
        end)
  in
  account_bytes t (m * group_bytes t);
  (* Sender: ElGamal-encrypt each message bit under pk_i. *)
  let ciphertexts =
    Array.mapi
      (fun i pk ->
        let r = Nat.random_below rng (Nat.sub t.p Nat.two) in
        let c1 = modexp t t.g r in
        let mask = pad_bit (modexp t pk r) ~index:i in
        (c1, messages.(i) <> mask (* bit XOR pad *)))
      pks
  in
  account_bytes t (m * (group_bytes t + 1));
  (* Receiver opens its branch. *)
  let c1, masked = ciphertexts.(choice) in
  let pad = pad_bit (modexp t c1 k) ~index:choice in
  masked <> pad

(* Expand a group element into a byte pad of the needed length. *)
let pad_bytes element ~index ~len =
  let buf = Buffer.create len in
  let block = ref 0 in
  while Buffer.length buf < len do
    Buffer.add_string buf
      (Digest.sha256
         (Printf.sprintf "ot-padb-%d-%d|%s" index !block (Nat.to_hex element)));
    incr block
  done;
  Buffer.sub buf 0 len

let xor_bytes a b =
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

(* Same key arrangement as [transfer_m], but messages are strings. *)
let transfer_m_bytes t rng messages ~choice =
  let m = Array.length messages in
  if choice < 0 || choice >= m then invalid_arg "Ot.transfer: bad choice";
  let len = String.length messages.(0) in
  Array.iter
    (fun msg ->
      if String.length msg <> len then
        invalid_arg "Ot.transfer2_bytes: length mismatch")
    messages;
  let k = Nat.random_below rng (Nat.sub t.p Nat.two) in
  let pk_choice = modexp t t.g k in
  let pks =
    Array.init m (fun i ->
        if i = choice then pk_choice
        else begin
          let shifted = modexp t t.crs (Nat.of_int (i + 1)) in
          match Nat.mod_inverse pk_choice t.p with
          | Some inv -> Nat.rem (Nat.mul shifted inv) t.p
          | None -> shifted
        end)
  in
  account_bytes t (m * group_bytes t);
  let ciphertexts =
    Array.mapi
      (fun i pk ->
        let r = Nat.random_below rng (Nat.sub t.p Nat.two) in
        let c1 = modexp t t.g r in
        let pad = pad_bytes (modexp t pk r) ~index:i ~len in
        (c1, xor_bytes messages.(i) pad))
      pks
  in
  account_bytes t (m * (group_bytes t + len));
  let c1, masked = ciphertexts.(choice) in
  xor_bytes masked (pad_bytes (modexp t c1 k) ~index:choice ~len)

let transfer2_bytes t rng ~messages:(m0, m1) ~choice =
  transfer_m_bytes t rng [| m0; m1 |] ~choice:(if choice then 1 else 0)

let transfer2 t rng ~messages:(m0, m1) ~choice =
  transfer_m t rng [| m0; m1 |] ~choice:(if choice then 1 else 0)

let transfer4 t rng ~messages:(m0, m1, m2, m3) ~choice =
  transfer_m t rng [| m0; m1; m2; m3 |] ~choice
