module Prng = Indaas_util.Prng
module Oracle = Indaas_crypto.Oracle

type result = {
  outputs : bool list;
  and_gates : int;
  ot_exponentiations : int;
  bytes : int;
}

let execute ?(ot_bits = 128) rng circuit ~inputs0 ~inputs1 =
  let params = Ot.setup ~bits:ot_bits rng in
  let gates = Circuit.gates circuit in
  let n = Array.length gates in
  (* share0 xor share1 = wire value *)
  let share0 = Array.make n false in
  let share1 = Array.make n false in
  let lookup inputs w party =
    match List.assoc_opt w inputs with
    | Some v -> v
    | None ->
        invalid_arg
          (Printf.sprintf "Gmw.execute: party %d missing input wire %d" party w)
  in
  let and_gates = ref 0 in
  Array.iteri
    (fun w gate ->
      match gate with
      | Circuit.Input { party } ->
          let v =
            if party = 0 then lookup inputs0 w 0 else lookup inputs1 w 1
          in
          let r = Prng.bool rng in
          if party = 0 then begin
            share0.(w) <- v <> r;
            share1.(w) <- r
          end
          else begin
            share1.(w) <- v <> r;
            share0.(w) <- r
          end
      | Circuit.Constant c ->
          share0.(w) <- c;
          share1.(w) <- false
      | Circuit.Xor (a, b) ->
          share0.(w) <- share0.(a) <> share0.(b);
          share1.(w) <- share1.(a) <> share1.(b)
      | Circuit.Not a ->
          share0.(w) <- not share0.(a);
          share1.(w) <- share1.(a)
      | Circuit.And (a, b) ->
          incr and_gates;
          (* Party 0 blinds the four possible results with r; party 1
             obliviously picks the entry matching its shares. *)
          let a0 = share0.(a) and b0 = share0.(b) in
          let r = Prng.bool rng in
          let entry a1 b1 = r <> ((a0 <> a1) && (b0 <> b1)) in
          let messages =
            (entry false false, entry false true, entry true false, entry true true)
          in
          let choice =
            (if share1.(a) then 2 else 0) + if share1.(b) then 1 else 0
          in
          share1.(w) <- Ot.transfer4 params rng ~messages ~choice;
          share0.(w) <- r)
    gates;
  let stats = Ot.stats params in
  {
    outputs =
      List.map (fun w -> share0.(w) <> share1.(w)) (Circuit.outputs circuit);
    and_gates = !and_gates;
    ot_exponentiations = stats.Ot.exponentiations;
    bytes = stats.Ot.bytes;
  }

let bits_of_tag tag ~tag_bits =
  let h = Oracle.hash_to_nat tag ~bits:tag_bits in
  List.init tag_bits (fun i -> Indaas_bignum.Nat.testbit h i)

let intersection_cardinality ?(ot_bits = 128) ?(tag_bits = 24) rng set0 set1 =
  let set0 = List.sort_uniq compare set0 and set1 = List.sort_uniq compare set1 in
  let circuit, (wires0, wires1) =
    Circuit.intersection_cardinality ~bits:tag_bits ~n0:(List.length set0)
      ~n1:(List.length set1)
  in
  let assign wires elements =
    List.concat
      (List.map2
         (fun ws e -> List.combine ws (bits_of_tag e ~tag_bits))
         wires elements)
  in
  let result =
    execute ~ot_bits rng circuit ~inputs0:(assign wires0 set0)
      ~inputs1:(assign wires1 set1)
  in
  let count =
    List.fold_left
      (fun acc bit -> (2 * acc) + if bit then 1 else 0)
      0
      (List.rev result.outputs)
  in
  (result, count)
