(** Yao's garbled circuits (two-party, semi-honest), with free-XOR and
    point-and-permute.

    The second classic route to generic SMPC: the garbler (party 0)
    encrypts a truth table per AND gate under hash-derived keys; the
    evaluator (party 1) obtains the labels of its input bits by
    oblivious transfer and then evaluates the whole circuit with {e
    four hashes per AND gate} and no further interaction — constant
    rounds, unlike GMW's OT per AND gate. XOR and NOT gates are free
    (label XOR). Still quadratic on the set-intersection circuit, so
    the conclusion of paper §4.2 stands; the ablation bench
    quantifies the GMW/Yao gap. *)

type result = {
  outputs : bool list;
  and_gates : int;
  table_bytes : int;  (** garbled tables shipped to the evaluator *)
  ot_count : int;  (** one per evaluator input bit *)
  ot_exponentiations : int;
  bytes : int;  (** OT traffic + tables *)
}

val execute :
  ?ot_bits:int ->
  Indaas_util.Prng.t ->
  Circuit.t ->
  inputs0:(Circuit.wire * bool) list ->
  inputs1:(Circuit.wire * bool) list ->
  result
(** Same interface as {!Gmw.execute}. *)

val intersection_cardinality :
  ?ot_bits:int ->
  ?tag_bits:int ->
  Indaas_util.Prng.t ->
  string list ->
  string list ->
  result * int
(** Same interface as {!Gmw.intersection_cardinality}. *)
