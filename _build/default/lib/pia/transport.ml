type t = {
  n : int;
  sent : int array;
  received : int array;
  mutable message_count : int;
}

let create ~parties =
  if parties <= 0 then invalid_arg "Transport.create: parties must be positive";
  {
    n = parties;
    sent = Array.make parties 0;
    received = Array.make parties 0;
    message_count = 0;
  }

let send t ~src ~dst bytes =
  if src < 0 || src >= t.n then invalid_arg "Transport.send: bad src";
  if dst < 0 || dst >= t.n then invalid_arg "Transport.send: bad dst";
  if src = dst then invalid_arg "Transport.send: src = dst";
  if bytes < 0 then invalid_arg "Transport.send: negative size";
  t.sent.(src) <- t.sent.(src) + bytes;
  t.received.(dst) <- t.received.(dst) + bytes;
  t.message_count <- t.message_count + 1

let broadcast t ~src bytes =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst bytes
  done

let parties t = t.n
let messages t = t.message_count
let bytes_sent_by t i = t.sent.(i)
let bytes_received_by t i = t.received.(i)
let total_bytes t = Array.fold_left ( + ) 0 t.sent
let max_party_bytes t = Array.fold_left max 0 t.sent
