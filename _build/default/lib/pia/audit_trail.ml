module Digest = Indaas_crypto.Digest
module Prng = Indaas_util.Prng

type commitment = {
  nonce : string;  (** hex *)
  digest : string;  (** hex SHA-256 *)
  signature : string;  (** hex; simulated identity-keyed MAC *)
}

type record = {
  provider : string;
  run_id : string;
  commitment : commitment;
}

(* Canonical form: sorted unique components, newline-joined — so two
   equal sets always commit identically under equal nonces. *)
let canonical set = String.concat "\n" (Componentset.to_list set)

let digest_of ~nonce set =
  Digest.sha256_hex (Printf.sprintf "indaas-commitment|%s|%s" nonce (canonical set))

(* A stand-in for a real signature: binds provider identity and run to
   the digest. A deployment would use the provider's signing key. *)
let sign ~provider ~run_id digest =
  Digest.sha256_hex (Printf.sprintf "indaas-signature|%s|%s|%s" provider run_id digest)

let commit ~rng ~provider ~run_id set =
  let nonce = Digest.to_hex (Bytes.to_string (Prng.bytes rng 16)) in
  let digest = digest_of ~nonce set in
  {
    provider;
    run_id;
    commitment = { nonce; digest; signature = sign ~provider ~run_id digest };
  }

let verify record set =
  let expected = digest_of ~nonce:record.commitment.nonce set in
  String.equal expected record.commitment.digest
  && String.equal record.commitment.signature
       (sign ~provider:record.provider ~run_id:record.run_id
          record.commitment.digest)

let commitment_to_hex c = Printf.sprintf "%s:%s:%s" c.nonce c.digest c.signature

let commitment_of_hex s =
  match String.split_on_char ':' s with
  | [ nonce; digest; signature ] ->
      let is_hex t =
        t <> ""
        && String.for_all
             (fun ch -> (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'))
             t
      in
      if is_hex nonce && is_hex digest && is_hex signature then
        Some { nonce; digest; signature }
      else None
  | _ -> None

module Registry = struct
  type nonrec t = (string * string, record) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let add t record =
    let key = (record.provider, record.run_id) in
    if Hashtbl.mem t key then
      invalid_arg
        (Printf.sprintf "Audit_trail.Registry.add: %s already committed for run %s"
           record.provider record.run_id);
    Hashtbl.add t key record

  let find t ~provider ~run_id = Hashtbl.find_opt t (provider, run_id)

  let runs_of t ~provider =
    Hashtbl.fold
      (fun (p, run) _ acc -> if p = provider then run :: acc else acc)
      t []
    |> List.sort compare

  let spot_check t ~provider ~run_id set =
    match find t ~provider ~run_id with
    | None -> `No_commitment
    | Some record -> if verify record set then `Verified else `Mismatch
end
