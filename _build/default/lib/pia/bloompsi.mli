(** Bloom-filter private set intersection cardinality estimation
    (after Zander, Andrew & Armitage's capture-recapture PSI-CA, the
    paper's reference for scalable PSI cardinality).

    Each provider summarizes its component set as an [m]-bit Bloom
    filter; the filters are exchanged (optionally randomized-response
    noised, trading leakage for accuracy) and the standard fill-ratio
    inversion estimates each set's and the union's cardinality, hence
    the intersection and the Jaccard similarity. Costs are O(m) bytes
    and hashing only — no public-key operations at all — at the price
    of estimation error and of leaking noisy membership bits, a
    different point in the paper's performance/precision/secrecy
    design space (§1). *)

module Filter : sig
  type t

  val create : bits:int -> hashes:int -> t
  (** Raises [Invalid_argument] unless both are positive. *)

  val add : t -> string -> unit
  val mem : t -> string -> bool
  (** No false negatives (before noising); false positives at the
      usual Bloom rate. *)

  val bits : t -> int
  val hashes : t -> int
  val ones : t -> int
  (** Set bits. *)

  val union : t -> t -> t
  (** Bitwise OR. Raises [Invalid_argument] on mismatched geometry. *)

  val estimate_cardinality : t -> float
  (** [-m/h * ln(1 - ones/m)]; [infinity] when saturated. *)

  val randomize : Indaas_util.Prng.t -> flip:float -> t -> t
  (** Randomized response: each bit flipped independently with
      probability [flip] (in \[0, 0.5)). *)

  val debias : flip:float -> observed_ones:float -> bits:int -> float
  (** Expected true set-bit count given the observed count after
      {!randomize}. *)
end

type result = {
  intersection_estimate : float;
  union_estimate : float;
  jaccard : float;  (** clamped to \[0, 1\] *)
  transport : Transport.t;
}

val run :
  ?bits:int ->
  ?hashes:int ->
  ?flip:float ->
  Indaas_util.Prng.t ->
  string list array ->
  result
(** Defaults: [bits] 4096, [hashes] 4, [flip] 0 (no noise). At least
    two parties. Every party broadcasts one (noised) filter; the
    estimates use inclusion–exclusion on the per-set and union
    cardinality estimates. *)
