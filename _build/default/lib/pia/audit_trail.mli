(** Audit trails for PIA — the paper's “trust but leave an audit
    trail” mechanism against dishonest providers (§5.2).

    A provider might under-declare its component set to appear more
    independent. For most PIA executions the client simply trusts the
    inputs, but each provider must {e commit} to the dataset it fed
    into the protocol by signing a digest of it. During an occasional
    “meta-audit”, a specially-authorized authority (the paper's IRS
    analogy) obtains the actual dataset and checks it against the
    recorded commitment — so persistent cheating eventually surfaces.

    Commitments are hash-based: [H(nonce ‖ canonical dataset)] with a
    per-record nonce, authenticated by a (simulated) signature keyed
    by the provider's identity. This preserves secrecy — the
    commitment reveals nothing about the components — while binding
    the provider to exactly one dataset per protocol run. *)

type commitment
(** What a provider publishes alongside a protocol run. *)

type record = {
  provider : string;
  run_id : string;  (** identifies the PIA execution *)
  commitment : commitment;
}

val commit :
  rng:Indaas_util.Prng.t ->
  provider:string ->
  run_id:string ->
  Componentset.t ->
  record
(** Create the signed commitment a provider stores before
    participating in run [run_id]. *)

val verify : record -> Componentset.t -> bool
(** Meta-audit check: does the revealed dataset match the recorded
    commitment? [false] means the provider fed the protocol different
    data than it later produced. *)

val commitment_to_hex : commitment -> string
(** Stable wire encoding (for logs / registries). *)

val commitment_of_hex : string -> commitment option

module Registry : sig
  (** The auditing agent's log of commitments across runs. *)

  type t

  val create : unit -> t
  val add : t -> record -> unit
  (** Raises [Invalid_argument] if the (provider, run) pair was
      already recorded — one dataset per provider per run. *)

  val find : t -> provider:string -> run_id:string -> record option
  val runs_of : t -> provider:string -> string list

  val spot_check : t -> provider:string -> run_id:string -> Componentset.t ->
    [ `Verified | `Mismatch | `No_commitment ]
  (** The meta-audit entry point. *)
end
