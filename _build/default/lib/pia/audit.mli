(** The Private Independence Auditing protocol end-to-end (paper
    §4.2): normalize component sets, run a private set intersection
    cardinality protocol per candidate redundancy deployment, rank
    deployments by Jaccard similarity, and render the report the
    auditing agent sends the client (§4.2.5). *)

(** Which private protocol quantifies the overlap. *)
type protocol =
  | Psop of { params : Indaas_crypto.Commutative.params option }
      (** the paper's choice *)
  | Psop_minhash of {
      params : Indaas_crypto.Commutative.params option;
      m : int;
    }  (** for large component sets (§4.2.4) *)
  | Ks of { key_bits : int }
      (** homomorphic baseline; intersection only, so Jaccard uses the
          (public) set sizes for the union via inclusion–exclusion of
          cardinalities — exact for two parties, and the protocol
          additionally reveals pairwise counts for more *)
  | Bloom of { bits : int; hashes : int; flip : float }
      (** Bloom-filter estimation (see {!Bloompsi}): hashing-only
          cost, estimated cardinalities, leaks noised membership
          bits *)
  | Cleartext  (** non-private reference (a trusted auditor) *)

type provider = { name : string; components : Componentset.t }

val provider : name:string -> string list -> provider

type deployment_result = {
  providers : string list;
  jaccard : float;
  intersection : int option;  (** not exposed by the MinHash variant *)
  union : int option;
  correlated : bool;  (** [jaccard >= 0.75] *)
}

type report = {
  way : int;  (** deployments of this many providers *)
  results : deployment_result list;  (** ranked, most independent first *)
}

val audit :
  ?protocol:protocol ->
  ?rng:Indaas_util.Prng.t ->
  way:int ->
  provider list ->
  report
(** Evaluates every [way]-subset of the providers (Table 2 evaluates
    [way = 2] and [way = 3] over four clouds). Defaults: [Cleartext]
    — pass [Psop] for the private protocol — and a fixed seed.
    Raises [Invalid_argument] if [way < 2] or exceeds the provider
    count. *)

val render : report -> string
(** Paper-style Table 2: rank, deployment, Jaccard. *)

val best : report -> deployment_result
(** The most independent deployment. *)

(** {1 n-of-m deployments}

    For an n-of-m redundancy deployment the paper's agent "needs to
    obtain the Jaccard similarity across all the n cloud providers and
    the similarity across all the m cloud providers" (§4.2.5): the
    service survives while any [n] providers are alive, so the
    overlap of the {e full} group bounds total wipe-out risk, and the
    worst [n]-subset shows the weakest quorum the service may end up
    depending on. *)

type nofm_result = {
  group : string list;  (** the m providers of this deployment *)
  full_jaccard : float;  (** across all m *)
  worst_quorum : string list;  (** the n-subset with the highest J *)
  worst_quorum_jaccard : float;
}

val audit_nofm :
  ?protocol:protocol ->
  ?rng:Indaas_util.Prng.t ->
  n:int ->
  m:int ->
  provider list ->
  nofm_result list
(** Evaluates every [m]-subset of the providers; within each, every
    [n]-subset. Ranked by [worst_quorum_jaccard] then [full_jaccard]
    (most independent first). Raises [Invalid_argument] unless
    [2 <= n <= m <= #providers]. *)

val render_nofm : n:int -> nofm_result list -> string

val to_json : report -> Indaas_util.Json.t
(** Machine-readable ranking. *)
