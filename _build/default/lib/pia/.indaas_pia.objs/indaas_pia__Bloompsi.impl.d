lib/pia/bloompsi.ml: Array Bytes Char Fun Indaas_crypto Indaas_util Int64 List Transport
