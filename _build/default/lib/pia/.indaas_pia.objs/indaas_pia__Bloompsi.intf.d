lib/pia/bloompsi.mli: Indaas_util Transport
