lib/pia/polynomial.ml: Array Format Indaas_bignum List
