lib/pia/audit_trail.ml: Bytes Componentset Hashtbl Indaas_crypto Indaas_util List Printf String
