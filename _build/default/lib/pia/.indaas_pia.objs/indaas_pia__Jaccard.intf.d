lib/pia/jaccard.mli: Componentset
