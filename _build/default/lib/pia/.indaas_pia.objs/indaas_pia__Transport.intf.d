lib/pia/transport.mli:
