lib/pia/jaccard.ml: Componentset
