lib/pia/transport.ml: Array
