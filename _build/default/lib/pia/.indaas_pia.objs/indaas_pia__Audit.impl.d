lib/pia/audit.ml: Array Bloompsi Componentset Float Indaas_crypto Indaas_util Jaccard Ks List Printf Psop String
