lib/pia/psop.ml: Array Componentset Indaas_bignum Indaas_crypto Indaas_util Jaccard List Logs Minhash Transport
