lib/pia/audit.mli: Componentset Indaas_crypto Indaas_util
