lib/pia/minhash.ml: Array Componentset Indaas_crypto Int64 List Printf
