lib/pia/minhash.mli: Componentset
