lib/pia/componentset.mli: Indaas_depdata
