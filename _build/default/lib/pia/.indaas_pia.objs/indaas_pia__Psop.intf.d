lib/pia/psop.mli: Indaas_crypto Indaas_util Transport
