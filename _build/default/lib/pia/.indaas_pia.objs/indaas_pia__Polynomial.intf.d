lib/pia/polynomial.mli: Format Indaas_bignum
