lib/pia/componentset.ml: Hashtbl Indaas_depdata List Printf Set String
