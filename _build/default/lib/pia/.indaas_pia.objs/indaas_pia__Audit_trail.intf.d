lib/pia/audit_trail.mli: Componentset Indaas_util
