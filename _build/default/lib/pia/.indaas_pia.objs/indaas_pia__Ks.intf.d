lib/pia/ks.mli: Indaas_crypto Indaas_util Transport
