lib/pia/ks.ml: Array Componentset Indaas_bignum Indaas_crypto Indaas_util List Polynomial Transport
