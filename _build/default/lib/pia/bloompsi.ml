module Oracle = Indaas_crypto.Oracle
module Prng = Indaas_util.Prng

module Filter = struct
  type t = { bits : int; hashes : int; data : Bytes.t }

  let create ~bits ~hashes =
    if bits <= 0 || hashes <= 0 then
      invalid_arg "Bloompsi.Filter.create: bits and hashes must be positive";
    { bits; hashes; data = Bytes.make ((bits + 7) / 8) '\x00' }

  let bit_positions t element =
    List.init t.hashes (fun i ->
        Int64.to_int
          (Int64.rem
             (Int64.logand (Oracle.hash_int ~seed:(1000 + i) element)
                Int64.max_int)
             (Int64.of_int t.bits)))

  let get t i = Char.code (Bytes.get t.data (i / 8)) land (1 lsl (i mod 8)) <> 0

  let set t i =
    Bytes.set t.data (i / 8)
      (Char.chr (Char.code (Bytes.get t.data (i / 8)) lor (1 lsl (i mod 8))))

  let add t element = List.iter (set t) (bit_positions t element)
  let mem t element = List.for_all (get t) (bit_positions t element)
  let bits t = t.bits
  let hashes t = t.hashes

  let ones t =
    let count = ref 0 in
    for i = 0 to t.bits - 1 do
      if get t i then incr count
    done;
    !count

  let union a b =
    if a.bits <> b.bits || a.hashes <> b.hashes then
      invalid_arg "Bloompsi.Filter.union: geometry mismatch";
    let out = create ~bits:a.bits ~hashes:a.hashes in
    Bytes.iteri
      (fun i byte ->
        Bytes.set out.data i
          (Char.chr (Char.code byte lor Char.code (Bytes.get b.data i))))
      a.data;
    out

  let estimate_cardinality t =
    let x = float_of_int (ones t) and m = float_of_int t.bits in
    if x >= m then infinity
    else -.m /. float_of_int t.hashes *. log (1. -. (x /. m))

  let randomize rng ~flip t =
    if not (flip >= 0. && flip < 0.5) then
      invalid_arg "Bloompsi.Filter.randomize: flip must be in [0, 0.5)";
    let out = create ~bits:t.bits ~hashes:t.hashes in
    for i = 0 to t.bits - 1 do
      let v = get t i in
      let v = if Prng.bernoulli rng flip then not v else v in
      if v then set out i
    done;
    out

  let debias ~flip ~observed_ones ~bits =
    if flip >= 0.5 then invalid_arg "Bloompsi.Filter.debias: flip must be < 0.5";
    (* E[observed] = true*(1-q) + (m-true)*q  =>  invert *)
    let m = float_of_int bits in
    max 0. (min m ((observed_ones -. (m *. flip)) /. (1. -. (2. *. flip))))
end

type result = {
  intersection_estimate : float;
  union_estimate : float;
  jaccard : float;
  transport : Transport.t;
}

let run ?(bits = 4096) ?(hashes = 4) ?(flip = 0.) rng datasets =
  let k = Array.length datasets in
  if k < 2 then invalid_arg "Bloompsi.run: need at least two parties";
  let transport = Transport.create ~parties:k in
  let filters =
    Array.map
      (fun elements ->
        let f = Filter.create ~bits ~hashes in
        List.iter (Filter.add f) elements;
        if flip > 0. then Filter.randomize rng ~flip f else f)
      datasets
  in
  Array.iteri
    (fun i _ -> Transport.broadcast transport ~src:i ((bits + 7) / 8))
    filters;
  (* Cardinality of any subset-union from the OR of its (noised)
     filters, debiased per party count: the OR of noised filters is
     itself biased; as a practical estimator we debias the observed
     fill before inverting. *)
  let union_cardinality subset =
    let combined =
      match subset with
      | [] -> invalid_arg "Bloompsi: empty subset"
      | first :: rest ->
          List.fold_left (fun acc i -> Filter.union acc filters.(i)) filters.(first) rest
    in
    let observed = float_of_int (Filter.ones combined) in
    let effective_flip =
      (* a zero bit stays zero in the OR only if unflipped in every
         filter of the subset *)
      if flip = 0. then 0.
      else 1. -. ((1. -. flip) ** float_of_int (List.length subset))
    in
    let debiased =
      if flip = 0. then observed
      else Filter.debias ~flip:effective_flip ~observed_ones:observed ~bits
    in
    let x = min debiased (float_of_int bits -. 1.) in
    -.float_of_int bits /. float_of_int hashes
    *. log (1. -. (x /. float_of_int bits))
  in
  (* inclusion-exclusion over all non-empty subsets *)
  let intersection = ref 0. in
  for mask = 1 to (1 lsl k) - 1 do
    let subset = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init k Fun.id) in
    let sign = if List.length subset land 1 = 1 then 1. else -1. in
    intersection := !intersection +. (sign *. union_cardinality subset)
  done;
  let union_estimate = union_cardinality (List.init k Fun.id) in
  let intersection_estimate = max 0. !intersection in
  let jaccard =
    if union_estimate <= 0. then 0.
    else max 0. (min 1. (intersection_estimate /. union_estimate))
  in
  { intersection_estimate; union_estimate; jaccard; transport }
