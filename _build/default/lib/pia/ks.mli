(** Kissner–Song-style private set intersection cardinality (CRYPTO
    2005) — the homomorphic-encryption baseline the paper compares
    P-SOP against in §6.3.2.

    Each party represents its set as the polynomial whose roots are
    the (hashed) elements and publishes the polynomial with
    Paillier-encrypted coefficients. An element [e] lies in every
    other party's set iff every such polynomial vanishes at [e]; each
    evaluation is done {e obliviously} under encryption via
    homomorphic Horner steps, blinded by a random scalar, and the
    blinded sums are decrypted to test for zero. Per element of one
    party this costs [O(n)] ciphertext exponentiations per foreign
    polynomial — the quadratic-ish growth visible in Figure 8(b) —
    versus P-SOP's constant per-element work.

    Honest-but-curious simplification: the first party holds the
    Paillier key (the original uses threshold decryption); this
    preserves the cost structure the benchmark measures. *)

type result = {
  intersection : int;  (** [|∩ S_i|] *)
  transport : Transport.t;
  crypto_ops : int;  (** Paillier ops (encrypt/scalar-mul/add/decrypt) *)
}

val run :
  ?key_bits:int ->
  ?hash:Indaas_crypto.Digest.algorithm ->
  Indaas_util.Prng.t ->
  string list array ->
  result
(** [run g datasets] with at least two parties. [key_bits] (default
    256) sizes the Paillier modulus — the paper used 1024 (DESIGN.md
    substitution 3). False positives (a blinded sum that is zero by
    accident) have probability ~[1/n] per test — negligible at any
    realistic key size. *)

val intersection_cardinality_exact : string list array -> int
(** Plaintext reference for tests. *)
