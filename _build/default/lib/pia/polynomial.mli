(** Dense polynomial arithmetic over Z_n — substrate for the
    Kissner–Song baseline, which represents a set as the polynomial
    whose roots are its elements. *)

module Nat = Indaas_bignum.Nat

type t
(** Coefficients in \[0, n), lowest degree first; the zero polynomial
    has no coefficients. *)

val modulus : t -> Nat.t
val degree : t -> int
(** Degree of the zero polynomial is -1. *)

val coefficients : t -> Nat.t array

val of_coefficients : modulus:Nat.t -> Nat.t array -> t
(** Values are reduced mod n; leading zeros trimmed. *)

val zero : modulus:Nat.t -> t
val constant : modulus:Nat.t -> Nat.t -> t

val from_roots : modulus:Nat.t -> Nat.t list -> t
(** [Π (x - r_i)] — the set polynomial. The empty list gives the
    constant 1. *)

val add : t -> t -> t
val mul : t -> t -> t
val scale : t -> Nat.t -> t

val eval : t -> Nat.t -> Nat.t
(** Horner evaluation mod n. *)

val is_root : t -> Nat.t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
