module Nat = Indaas_bignum.Nat

type t = { n : Nat.t; coeffs : Nat.t array (* low degree first, trimmed *) }

let trim coeffs =
  let len = ref (Array.length coeffs) in
  while !len > 0 && Nat.is_zero coeffs.(!len - 1) do
    decr len
  done;
  if !len = Array.length coeffs then coeffs else Array.sub coeffs 0 !len

let check_modulus n =
  if Nat.compare n Nat.two < 0 then
    invalid_arg "Polynomial: modulus must be >= 2"

let of_coefficients ~modulus coeffs =
  check_modulus modulus;
  { n = modulus; coeffs = trim (Array.map (fun c -> Nat.rem c modulus) coeffs) }

let modulus p = p.n
let degree p = Array.length p.coeffs - 1
let coefficients p = Array.copy p.coeffs

let zero ~modulus =
  check_modulus modulus;
  { n = modulus; coeffs = [||] }

let constant ~modulus c = of_coefficients ~modulus [| c |]

let check_same a b =
  if not (Nat.equal a.n b.n) then invalid_arg "Polynomial: modulus mismatch"

let add a b =
  check_same a b;
  let la = Array.length a.coeffs and lb = Array.length b.coeffs in
  let coeffs =
    Array.init (max la lb) (fun i ->
        let ca = if i < la then a.coeffs.(i) else Nat.zero in
        let cb = if i < lb then b.coeffs.(i) else Nat.zero in
        Nat.rem (Nat.add ca cb) a.n)
  in
  { n = a.n; coeffs = trim coeffs }

let mul a b =
  check_same a b;
  let la = Array.length a.coeffs and lb = Array.length b.coeffs in
  if la = 0 || lb = 0 then { n = a.n; coeffs = [||] }
  else begin
    let out = Array.make (la + lb - 1) Nat.zero in
    for i = 0 to la - 1 do
      for j = 0 to lb - 1 do
        out.(i + j) <-
          Nat.rem (Nat.add out.(i + j) (Nat.mul a.coeffs.(i) b.coeffs.(j))) a.n
      done
    done;
    { n = a.n; coeffs = trim out }
  end

let scale p k =
  let k = Nat.rem k p.n in
  { p with coeffs = trim (Array.map (fun c -> Nat.rem (Nat.mul c k) p.n) p.coeffs) }

let from_roots ~modulus roots =
  check_modulus modulus;
  (* (x - r) = (x + (n - r)) mod n; multiply linear factors in. *)
  List.fold_left
    (fun acc r ->
      let r = Nat.rem r modulus in
      let neg_r = if Nat.is_zero r then Nat.zero else Nat.sub modulus r in
      mul acc (of_coefficients ~modulus [| neg_r; Nat.one |]))
    (constant ~modulus Nat.one)
    roots

let eval p x =
  let x = Nat.rem x p.n in
  let acc = ref Nat.zero in
  for i = Array.length p.coeffs - 1 downto 0 do
    acc := Nat.rem (Nat.add (Nat.mul !acc x) p.coeffs.(i)) p.n
  done;
  !acc

let is_root p x = Nat.is_zero (eval p x)

let equal a b = Nat.equal a.n b.n && a.coeffs = b.coeffs

let pp fmt p =
  if Array.length p.coeffs = 0 then Format.pp_print_string fmt "0"
  else
    Array.iteri
      (fun i c ->
        if i > 0 then Format.pp_print_string fmt " + ";
        Format.fprintf fmt "%a·x^%d" Nat.pp c i)
      p.coeffs
