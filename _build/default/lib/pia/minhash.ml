module Oracle = Indaas_crypto.Oracle

let signature ~m set =
  if m <= 0 then invalid_arg "Minhash.signature: m must be positive";
  let elements = Componentset.to_list set in
  if elements = [] then invalid_arg "Minhash.signature: empty set";
  Array.init m (fun i ->
      List.fold_left
        (fun acc e ->
          let h = Oracle.hash_int ~seed:i e in
          if Int64.unsigned_compare h acc < 0 then h else acc)
        Int64.minus_one (* = max unsigned value *)
        elements)

let signature_elements ~m set =
  Array.to_list
    (Array.mapi
       (fun i v -> Printf.sprintf "%d:%Lx" i v)
       (signature ~m set))

let estimate signatures =
  match signatures with
  | [] -> invalid_arg "Minhash.estimate: no signatures"
  | first :: rest ->
      let m = Array.length first in
      if m = 0 then invalid_arg "Minhash.estimate: empty signature";
      List.iter
        (fun s ->
          if Array.length s <> m then
            invalid_arg "Minhash.estimate: signature length mismatch")
        rest;
      let agree = ref 0 in
      for i = 0 to m - 1 do
        if List.for_all (fun s -> Int64.equal s.(i) first.(i)) rest then
          incr agree
      done;
      float_of_int !agree /. float_of_int m

let estimate_jaccard ~m sets = estimate (List.map (fun s -> signature ~m s) sets)

let expected_error ~m =
  if m <= 0 then invalid_arg "Minhash.expected_error: m must be positive";
  1. /. sqrt (float_of_int m)
