module SS = Set.Make (String)

type t = SS.t

let empty = SS.empty
let of_list l = SS.of_list l
let to_list = SS.elements
let cardinal = SS.cardinal
let mem = SS.mem
let add = SS.add
let union = SS.union
let inter = SS.inter
let union_many = List.fold_left SS.union SS.empty

let inter_many = function
  | [] -> invalid_arg "Componentset.inter_many: empty list"
  | first :: rest -> List.fold_left SS.inter first rest

let equal = SS.equal

let normalize_router ~ip =
  let octets = String.split_on_char '.' ip in
  let valid_octet o =
    match int_of_string_opt o with
    | Some v -> v >= 0 && v <= 255 && o <> "" && String.length o <= 3
    | None -> false
  in
  if List.length octets <> 4 || not (List.for_all valid_octet octets) then
    invalid_arg (Printf.sprintf "Componentset.normalize_router: bad IP %S" ip);
  "router:" ^ ip

let normalize_package ~name ~version =
  Printf.sprintf "pkg:%s=%s" (String.lowercase_ascii name) version

let of_depdb db ~machine =
  of_list (Indaas_depdata.Depdb.component_set db ~machine)

let multiset_elements elements =
  let counts = Hashtbl.create (List.length elements) in
  List.map
    (fun e ->
      let k = (match Hashtbl.find_opt counts e with Some k -> k | None -> 0) + 1 in
      Hashtbl.replace counts e k;
      Printf.sprintf "%s#%d" e k)
    elements
