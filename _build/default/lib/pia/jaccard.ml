let of_cardinalities ~intersection ~union =
  if intersection < 0 || union < 0 || intersection > union then
    invalid_arg "Jaccard.of_cardinalities: inconsistent cardinalities";
  if union = 0 then 0.
  else float_of_int intersection /. float_of_int union

let similarity sets =
  match sets with
  | [] -> invalid_arg "Jaccard.similarity: empty list"
  | _ ->
      let inter = Componentset.inter_many sets in
      let union = Componentset.union_many sets in
      of_cardinalities
        ~intersection:(Componentset.cardinal inter)
        ~union:(Componentset.cardinal union)

let pairwise a b = similarity [ a; b ]

let significantly_correlated j = j >= 0.75

let distance sets = 1. -. similarity sets

let sorensen_dice a b =
  let total = Componentset.cardinal a + Componentset.cardinal b in
  if total = 0 then 0.
  else
    2.
    *. float_of_int (Componentset.cardinal (Componentset.inter a b))
    /. float_of_int total
