(** Jaccard similarity (paper §4.2.2) — the PIA independence metric.

    [J(S_0,…,S_{k-1}) = |∩S_i| / |∪S_i|]; 0 means fully independent
    component sets, 1 identical. Sets with [J >= 0.75] are considered
    significantly correlated (Walsh & Sirer, cited in the paper). *)

val similarity : Componentset.t list -> float
(** Exact Jaccard similarity. By convention the similarity of
    all-empty sets is 0. Raises [Invalid_argument] on an empty list. *)

val pairwise : Componentset.t -> Componentset.t -> float

val of_cardinalities : intersection:int -> union:int -> float
(** The computation PIA performs on P-SOP's outputs. *)

val significantly_correlated : float -> bool
(** [j >= 0.75]. *)

val distance : Componentset.t list -> float
(** [1 - similarity]: an independence score (higher = better). *)

val sorensen_dice : Componentset.t -> Componentset.t -> float
(** The Sørensen–Dice index [2|A∩B| / (|A| + |B|)] — the alternative
    similarity metric the paper considers and passes over in §4.2.2
    (Jaccard extends more readily to more than two datasets). Related
    by [D = 2J/(1+J)]; 0 for two empty sets by convention. *)
