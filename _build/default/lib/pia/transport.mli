(** Simulated message transport with traffic accounting.

    PIA's protocols run between co-located simulated parties; this
    module records who sent how many bytes to whom, so the Figure 8(a)
    bandwidth-overhead series can be measured rather than modelled. *)

type t

val create : parties:int -> t

val send : t -> src:int -> dst:int -> int -> unit
(** [send t ~src ~dst bytes] accounts one message. Raises
    [Invalid_argument] on out-of-range endpoints, [src = dst], or
    negative size. *)

val broadcast : t -> src:int -> int -> unit
(** One message of the given size to every other party. *)

val parties : t -> int
val messages : t -> int
val bytes_sent_by : t -> int -> int
val bytes_received_by : t -> int -> int
val total_bytes : t -> int
val max_party_bytes : t -> int
(** Largest per-party outbound total — the per-provider overhead the
    paper plots. *)
