(** MinHash signatures (Broder 1997; paper §4.2.2).

    A signature is the vector [(h^(i)_min(S))_{i=1..m}] of minima of
    [S] under [m] keyed hash functions. The fraction of positions on
    which the signatures of several sets agree estimates their Jaccard
    similarity with expected error [O(1/sqrt m)]. *)

val signature : m:int -> Componentset.t -> int64 array
(** Raises [Invalid_argument] if [m <= 0] or the set is empty (an
    empty set has no minima). *)

val signature_elements : m:int -> Componentset.t -> string list
(** The signature as a position-tagged element list ["i:<min>"] — the
    “much smaller dataset” fed to P-SOP in the MinHash variant of PIA
    (§4.2.4): the cardinality of the intersection of these lists is
    exactly the number of agreeing positions δ. *)

val estimate : int64 array list -> float
(** [δ/m] across all signatures (they must share [m]). *)

val estimate_jaccard : m:int -> Componentset.t list -> float
(** Convenience: signatures + {!estimate}. *)

val expected_error : m:int -> float
(** [1/sqrt m], the standard-error scale of the estimator. *)
