module Paillier = Indaas_crypto.Paillier
module Oracle = Indaas_crypto.Oracle
module Digest = Indaas_crypto.Digest
module Prng = Indaas_util.Prng
module Nat = Indaas_bignum.Nat

type result = {
  intersection : int;
  transport : Transport.t;
  crypto_ops : int;
}

let intersection_cardinality_exact datasets =
  let sets = Array.map Componentset.of_list datasets in
  Componentset.cardinal (Componentset.inter_many (Array.to_list sets))

let run ?(key_bits = 256) ?(hash = Digest.SHA256) g datasets =
  let k = Array.length datasets in
  if k < 2 then invalid_arg "Ks.run: need at least two parties";
  let transport = Transport.create ~parties:k in
  let ops = ref 0 in
  let keypair = Paillier.generate ~bits:key_bits g in
  let pk = keypair.Paillier.public in
  let n = Paillier.plaintext_space pk in
  let cbytes = Paillier.ciphertext_bytes pk in
  (* Hash elements into Z_n (strictly below n). *)
  let element_bits = Nat.bit_length n - 1 in
  let hashed =
    Array.map
      (fun elements ->
        Componentset.to_list (Componentset.of_list elements)
        |> List.map (fun e -> Oracle.hash_to_nat ~algorithm:hash e ~bits:element_bits))
      datasets
  in
  (* Each party publishes its set polynomial with encrypted
     coefficients to every other party. *)
  let encrypted_polys =
    Array.mapi
      (fun i roots ->
        let poly = Polynomial.from_roots ~modulus:n roots in
        let coeffs = Polynomial.coefficients poly in
        let enc =
          Array.map
            (fun c ->
              incr ops;
              Paillier.encrypt g pk c)
            coeffs
        in
        Transport.broadcast transport ~src:i (Array.length enc * cbytes);
        enc)
      hashed
  in
  (* Oblivious Horner: Enc(f(e)) = Π Enc(c_j)^(e^j). *)
  let eval_encrypted enc_coeffs e =
    let acc = ref (Paillier.encrypt g pk Nat.zero) in
    incr ops;
    let power = ref Nat.one in
    Array.iter
      (fun c ->
        let term = Paillier.scalar_mul pk !power c in
        incr ops;
        acc := Paillier.add pk !acc term;
        incr ops;
        power := Nat.rem (Nat.mul !power e) n)
      enc_coeffs;
    !acc
  in
  let random_blind () = Nat.add (Nat.random_below g (Nat.sub n Nat.one)) Nat.one in
  (* Every party tests each of its elements against all foreign
     polynomials: Enc(Σ_i r_i · f_i(e)) goes to the key holder, who
     decrypts and reports zero / non-zero. *)
  let counts =
    Array.mapi
      (fun j elements ->
        let count = ref 0 in
        List.iter
          (fun e ->
            let combined = ref (Paillier.encrypt g pk Nat.zero) in
            incr ops;
            Array.iteri
              (fun i enc_poly ->
                if i <> j then begin
                  let value = eval_encrypted enc_poly e in
                  let blinded = Paillier.scalar_mul pk (random_blind ()) value in
                  incr ops;
                  combined := Paillier.add pk !combined blinded;
                  incr ops
                end)
              encrypted_polys;
            if j <> 0 then Transport.send transport ~src:j ~dst:0 cbytes;
            let plain = Paillier.decrypt keypair !combined in
            incr ops;
            if Nat.is_zero plain then incr count)
          elements;
        !count)
      hashed
  in
  (* Every perspective counts the same global intersection. *)
  Array.iter (fun c -> assert (c = counts.(0))) counts;
  { intersection = counts.(0); transport; crypto_ops = !ops }
