(** Normalized component sets — the component-set level of detail PIA
    operates on (paper §4.2.3).

    Normalization guarantees that the same third-party component gets
    the same identifier at every cloud provider: routers by reachable
    IP address, software packages by canonical name plus version. *)

type t

val empty : t
val of_list : string list -> t
val to_list : t -> string list
(** Sorted, duplicate-free. *)

val cardinal : t -> int
val mem : string -> t -> bool
val add : string -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val union_many : t list -> t
val inter_many : t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val equal : t -> t -> bool

val normalize_router : ip:string -> string
(** ["router:<ip>"]. Raises [Invalid_argument] on a malformed IPv4
    dotted quad. *)

val normalize_package : name:string -> version:string -> string
(** ["pkg:<lowercased name>=<version>"]. *)

val of_depdb : Indaas_depdata.Depdb.t -> machine:string -> t
(** Every component identifier [machine] depends on, as recorded in
    the database (already-normalized identifiers pass through). *)

val multiset_elements : string list -> string list
(** The paper's duplicate disambiguation: an element [e] appearing [t]
    times becomes [e‖1 … e‖t] (suffixing with ["#k"]), making the
    input to P-SOP duplicate-free while preserving multiplicity. *)
