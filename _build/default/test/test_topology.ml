module Fattree = Indaas_topology.Fattree
module Datacenter = Indaas_topology.Datacenter
module Dependency = Indaas_depdata.Dependency

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- fat tree: Table 3 ------------------------------------------------ *)

let test_table3_counts () =
  (* The paper's Table 3, exactly. *)
  let expect =
    [
      (16, 64, 128, 128, 1_024, 1_344);
      (24, 144, 288, 288, 3_456, 4_176);
      (48, 576, 1_152, 1_152, 27_648, 30_528);
    ]
  in
  List.iter
    (fun (k, cores, aggs, tors, servers, total) ->
      let t = Fattree.create ~k in
      check Alcotest.int "cores" cores (Fattree.core_count t);
      check Alcotest.int "aggs" aggs (Fattree.agg_count t);
      check Alcotest.int "tors" tors (Fattree.edge_count t);
      check Alcotest.int "servers" servers (Fattree.server_count t);
      check Alcotest.int "total" total (Fattree.device_count t))
    expect

let test_table3_row () =
  let t = Fattree.create ~k:16 in
  check (Alcotest.list Alcotest.string) "row"
    [ "16"; "64"; "128"; "128"; "1024"; "1344" ]
    (Fattree.table3_row t)

let test_create_validation () =
  Alcotest.check_raises "odd k"
    (Invalid_argument "Fattree.create: k must be an even integer >= 4") (fun () ->
      ignore (Fattree.create ~k:5));
  Alcotest.check_raises "too small"
    (Invalid_argument "Fattree.create: k must be an even integer >= 4") (fun () ->
      ignore (Fattree.create ~k:2))

let test_rack_structure () =
  let t = Fattree.create ~k:4 in
  (* k=4: 16 servers, 8 edge switches, 2 per rack *)
  check Alcotest.int "servers" 16 (Fattree.server_count t);
  check Alcotest.int "rack of server 0" 0 (Fattree.rack_of_server t 0);
  check Alcotest.int "rack of server 2" 1 (Fattree.rack_of_server t 2);
  check (Alcotest.list Alcotest.int) "servers of rack 1" [ 2; 3 ]
    (Fattree.servers_of_rack t 1);
  check Alcotest.int "pod of server 0" 0 (Fattree.pod_of_server t 0);
  check Alcotest.int "pod of last server" 3 (Fattree.pod_of_server t 15)

let test_routes_structure () =
  let t = Fattree.create ~k:4 in
  let routes = Fattree.routes_to_core t ~server:0 in
  (* (k/2)^2 = 4 paths *)
  check Alcotest.int "path count" 4 (List.length routes);
  List.iter
    (fun route ->
      check Alcotest.int "3 hops" 3 (List.length route);
      match route with
      | [ edge; agg; core ] ->
          check Alcotest.string "edge" "tor0" edge;
          check Alcotest.bool "agg prefix" true (String.length agg > 3 && String.sub agg 0 3 = "agg");
          check Alcotest.bool "core prefix" true
            (String.length core > 4 && String.sub core 0 4 = "core")
      | _ -> Alcotest.fail "route shape")
    routes;
  (* all 4 routes distinct *)
  check Alcotest.int "distinct" 4 (List.length (List.sort_uniq compare routes))

let test_routes_stay_in_pod () =
  let t = Fattree.create ~k:8 in
  let server = 37 in
  let pod = Fattree.pod_of_server t server in
  List.iter
    (fun route ->
      match route with
      | [ _; agg; _ ] ->
          (* agg index within the server's pod: pod*k/2 <= idx < (pod+1)*k/2 *)
          let idx = int_of_string (String.sub agg 3 (String.length agg - 3)) in
          check Alcotest.bool "agg in pod" true (idx >= pod * 4 && idx < (pod + 1) * 4)
      | _ -> Alcotest.fail "route shape")
    (Fattree.routes_to_core t ~server)

let test_agg_core_wiring () =
  (* Aggregation switch a (within pod) connects to cores
     [a*k/2 .. a*k/2+k/2-1]; two servers in different pods with the
     same agg offset must reach the same cores. *)
  let t = Fattree.create ~k:4 in
  let cores_of server =
    Fattree.routes_to_core t ~server
    |> List.map (fun r -> List.nth r 2)
    |> List.sort_uniq compare
  in
  check (Alcotest.list Alcotest.string) "same core set across pods"
    (cores_of 0) (cores_of 15)

let test_network_records () =
  let t = Fattree.create ~k:4 in
  let records = Fattree.network_records t ~server:3 in
  check Alcotest.int "one per route" 4 (List.length records);
  List.iter
    (fun r ->
      match r with
      | Dependency.Network n ->
          check Alcotest.string "src" "server3" n.Dependency.src;
          check Alcotest.string "dst" "Internet" n.Dependency.dst
      | _ -> Alcotest.fail "network record expected")
    records

let test_name_range_checks () =
  let t = Fattree.create ~k:4 in
  Alcotest.check_raises "server range"
    (Invalid_argument "Fattree.server_name: index 16 out of range") (fun () ->
      ignore (Fattree.server_name t 16))

(* --- §6.2.1 datacenter ------------------------------------------------ *)

let test_candidates () =
  let dc = Datacenter.create () in
  let candidates = Datacenter.candidate_racks dc in
  check Alcotest.int "20 candidates" 20 (List.length candidates);
  check Alcotest.bool "rack 5" true (List.mem 5 candidates);
  check Alcotest.bool "rack 29" true (List.mem 29 candidates);
  check Alcotest.bool "rack 1 not a candidate" false (List.mem 1 candidates);
  check Alcotest.int "33 racks" 33 (List.length (Datacenter.rack_ids dc))

let test_core_classes () =
  let dc = Datacenter.create () in
  check (Alcotest.list Alcotest.string) "rack 5 via b1" [ "b1" ]
    (Datacenter.cores_of_rack dc 5);
  check (Alcotest.list Alcotest.string) "rack 29 via c1" [ "c1" ]
    (Datacenter.cores_of_rack dc 29)

let test_shared_tors () =
  let dc = Datacenter.create () in
  check Alcotest.string "rack 6 shares rack 5's ToR" (Datacenter.tor_of_rack dc 5)
    (Datacenter.tor_of_rack dc 6);
  check Alcotest.bool "rack 7 has its own" true
    (Datacenter.tor_of_rack dc 7 <> Datacenter.tor_of_rack dc 5)

let test_routes () =
  let dc = Datacenter.create () in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "rack 9 route"
    [ [ "e9"; "b1" ] ]
    (Datacenter.routes dc ~rack:9)

let test_all_records () =
  let dc = Datacenter.create () in
  let records = Datacenter.all_network_records dc in
  (* single-homed candidates have exactly one route each *)
  check Alcotest.int "20 records" 20 (List.length records)

let test_names () =
  check Alcotest.string "rack name" "Rack7" (Datacenter.rack_name 7);
  check Alcotest.string "server name" "serverR7" (Datacenter.server_of_rack 7)


(* --- traffic + mining end-to-end ---------------------------------------- *)

module Traffic = Indaas_topology.Traffic
module Flowmine = Indaas_depdata.Flowmine
module Depdb = Indaas_depdata.Depdb

let test_traffic_lossless_recovers_paths () =
  (* With enough lossless flows, mining recovers exactly the server's
     equal-cost paths. *)
  let t = Fattree.create ~k:4 in
  let rng = Indaas_util.Prng.of_int 55 in
  let db =
    Traffic.mined_database
      ~config:{ Traffic.flows_per_server = 400; Traffic.drop_probability = 0. }
      ~min_occurrences:2 rng t ~servers:[ 0 ]
  in
  let mined =
    Depdb.network_paths db ~src:"server0"
    |> List.map (fun (n : Dependency.network) -> n.Dependency.route)
    |> List.sort compare
  in
  let truth = List.sort compare (Fattree.routes_to_core t ~server:0) in
  check (Alcotest.list (Alcotest.list Alcotest.string)) "all 4 paths" truth mined

let test_traffic_lossy_still_finds_major_paths () =
  let t = Fattree.create ~k:4 in
  let rng = Indaas_util.Prng.of_int 56 in
  let db =
    Traffic.mined_database
      ~config:{ Traffic.flows_per_server = 600; Traffic.drop_probability = 0.05 }
      ~min_occurrences:20 rng t ~servers:[ 0 ]
  in
  let mined =
    Depdb.network_paths db ~src:"server0"
    |> List.map (fun (n : Dependency.network) -> n.Dependency.route)
  in
  (* the four true 3-hop paths dominate; any truncated variants fall
     under the threshold *)
  let truth = Fattree.routes_to_core t ~server:0 in
  List.iter
    (fun p ->
      check Alcotest.bool "true path mined" true (List.mem p mined))
    truth;
  List.iter
    (fun p -> check Alcotest.int "full length" 3 (List.length p))
    mined

let test_traffic_flow_ids_unique () =
  let t = Fattree.create ~k:4 in
  let rng = Indaas_util.Prng.of_int 57 in
  let observations =
    Traffic.generate
      ~config:{ Traffic.flows_per_server = 5; Traffic.drop_probability = 0. }
      rng t ~servers:[ 0; 1 ]
  in
  let flows =
    List.sort_uniq compare (List.map (fun o -> o.Flowmine.flow) observations)
  in
  check Alcotest.int "10 distinct flows" 10 (List.length flows)

let test_traffic_validation () =
  let t = Fattree.create ~k:4 in
  let rng = Indaas_util.Prng.of_int 58 in
  check Alcotest.bool "bad drop" true
    (try
       ignore
         (Traffic.generate
            ~config:{ Traffic.flows_per_server = 1; Traffic.drop_probability = 1. }
            rng t ~servers:[ 0 ]);
       false
     with Invalid_argument _ -> true)

(* --- qcheck ------------------------------------------------------------ *)

let gen_k = QCheck.make QCheck.Gen.(map (fun i -> 2 * i) (int_range 2 12))

let prop_counts_formulae =
  QCheck.Test.make ~name:"fat-tree counting identities" ~count:50 gen_k (fun k ->
      let t = Fattree.create ~k in
      Fattree.core_count t = k * k / 4
      && Fattree.agg_count t = k * k / 2
      && Fattree.edge_count t = k * k / 2
      && Fattree.server_count t = k * k * k / 4)

let prop_every_server_has_paths =
  QCheck.Test.make ~name:"every server has (k/2)^2 distinct paths" ~count:20 gen_k
    (fun k ->
      let t = Fattree.create ~k in
      let g = Indaas_util.Prng.of_int k in
      let server = Indaas_util.Prng.int g (Fattree.server_count t) in
      let routes = Fattree.routes_to_core t ~server in
      List.length routes = k * k / 4
      && List.length (List.sort_uniq compare routes) = k * k / 4)

let () =
  Alcotest.run "topology"
    [
      ( "fattree",
        [
          Alcotest.test_case "table 3 counts" `Quick test_table3_counts;
          Alcotest.test_case "table 3 row" `Quick test_table3_row;
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "rack structure" `Quick test_rack_structure;
          Alcotest.test_case "routes" `Quick test_routes_structure;
          Alcotest.test_case "routes stay in pod" `Quick test_routes_stay_in_pod;
          Alcotest.test_case "agg-core wiring" `Quick test_agg_core_wiring;
          Alcotest.test_case "network records" `Quick test_network_records;
          Alcotest.test_case "range checks" `Quick test_name_range_checks;
          qtest prop_counts_formulae;
          qtest prop_every_server_has_paths;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "lossless mining exact" `Quick
            test_traffic_lossless_recovers_paths;
          Alcotest.test_case "lossy mining robust" `Quick
            test_traffic_lossy_still_finds_major_paths;
          Alcotest.test_case "unique flow ids" `Quick test_traffic_flow_ids_unique;
          Alcotest.test_case "validation" `Quick test_traffic_validation;
        ] );
      ( "datacenter",
        [
          Alcotest.test_case "candidates" `Quick test_candidates;
          Alcotest.test_case "core classes" `Quick test_core_classes;
          Alcotest.test_case "shared ToRs" `Quick test_shared_tors;
          Alcotest.test_case "routes" `Quick test_routes;
          Alcotest.test_case "all records" `Quick test_all_records;
          Alcotest.test_case "names" `Quick test_names;
        ] );
    ]
