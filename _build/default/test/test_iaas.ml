module Cloud = Indaas_iaas.Cloud
module Dependency = Indaas_depdata.Dependency
module Prng = Indaas_util.Prng

let check = Alcotest.check

let test_boot_least_loaded () =
  let cloud = Cloud.create ~servers:[ "A"; "B" ] (Prng.of_int 1) in
  let h1 = Cloud.boot_vm cloud ~name:"vm1" ~group:"g" in
  let h2 = Cloud.boot_vm cloud ~name:"vm2" ~group:"g" in
  (* sequential least-loaded placement never co-locates while empty
     servers remain *)
  check Alcotest.bool "spread" true (h1 <> h2)

let test_boot_duplicate_rejected () =
  let cloud = Cloud.create ~servers:Cloud.lab_servers (Prng.of_int 1) in
  ignore (Cloud.boot_vm cloud ~name:"vm1" ~group:"g");
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Cloud.boot_vm: VM \"vm1\" already exists") (fun () ->
      ignore (Cloud.boot_vm cloud ~name:"vm1" ~group:"g"))

let test_host_of_and_vms_on () =
  let cloud = Cloud.create ~servers:[ "A" ] (Prng.of_int 1) in
  ignore (Cloud.boot_vm cloud ~name:"vm1" ~group:"g");
  ignore (Cloud.boot_vm cloud ~name:"vm2" ~group:"g");
  check (Alcotest.option Alcotest.string) "host" (Some "A") (Cloud.host_of cloud "vm1");
  check (Alcotest.option Alcotest.string) "unknown" None (Cloud.host_of cloud "nope");
  check (Alcotest.list Alcotest.string) "vms on A" [ "vm1"; "vm2" ]
    (Cloud.vms_on cloud "A");
  check (Alcotest.list Alcotest.string) "boot order" [ "vm1"; "vm2" ]
    (List.sort compare (Cloud.vm_names cloud))

let test_sequential_never_colocates_on_empty () =
  (* With 4 servers and 4 VMs, sequential least-loaded fills all
     servers exactly once, for any seed. *)
  for seed = 0 to 30 do
    let cloud = Cloud.create ~servers:Cloud.lab_servers (Prng.of_int seed) in
    let hosts =
      List.init 4 (fun i ->
          Cloud.boot_vm cloud ~name:(Printf.sprintf "vm%d" i) ~group:"g")
    in
    check Alcotest.int
      (Printf.sprintf "seed %d all distinct" seed)
      4
      (List.length (List.sort_uniq compare hosts))
  done

let test_concurrent_race_can_colocate () =
  (* The §6.2.2 race: placements computed against one snapshot can
     land on the same server. Across seeds this must happen sometimes
     (and not always). *)
  let colocated = ref 0 in
  let trials = 200 in
  for seed = 0 to trials - 1 do
    let cloud = Cloud.create ~servers:Cloud.lab_servers (Prng.of_int seed) in
    for i = 1 to 6 do
      ignore (Cloud.boot_vm cloud ~name:(Printf.sprintf "bg%d" i) ~group:"misc")
    done;
    match Cloud.boot_vms_concurrently cloud [ ("vm7", "riak"); ("vm8", "riak") ] with
    | [ (_, h7); (_, h8) ] -> if h7 = h8 then incr colocated
    | _ -> Alcotest.fail "two placements expected"
  done;
  check Alcotest.bool "race fires sometimes" true (!colocated > 10);
  check Alcotest.bool "race does not always fire" true (!colocated < trials - 10)

let test_concurrent_anti_affinity_never_colocates () =
  for seed = 0 to 50 do
    let cloud =
      Cloud.create ~policy:Cloud.Anti_affinity ~servers:Cloud.lab_servers
        (Prng.of_int seed)
    in
    for i = 1 to 6 do
      ignore (Cloud.boot_vm cloud ~name:(Printf.sprintf "bg%d" i) ~group:"misc")
    done;
    match Cloud.boot_vms_concurrently cloud [ ("vm7", "riak"); ("vm8", "riak") ] with
    | [ (_, h7); (_, h8) ] ->
        check Alcotest.bool (Printf.sprintf "seed %d spread" seed) true (h7 <> h8)
    | _ -> Alcotest.fail "two placements expected"
  done

let test_anti_affinity_sequential () =
  let cloud =
    Cloud.create ~policy:Cloud.Anti_affinity ~servers:[ "A"; "B" ] (Prng.of_int 3)
  in
  let h1 = Cloud.boot_vm cloud ~name:"r1" ~group:"riak" in
  let h2 = Cloud.boot_vm cloud ~name:"r2" ~group:"riak" in
  check Alcotest.bool "different hosts" true (h1 <> h2);
  (* a third VM of the group must go somewhere (fallback) *)
  let h3 = Cloud.boot_vm cloud ~name:"r3" ~group:"riak" in
  check Alcotest.bool "fallback placed" true (h3 = "A" || h3 = "B")

let test_pinned_policy () =
  let cloud =
    Cloud.create
      ~policy:(Cloud.Pinned [ ("vm1", "Server3") ])
      ~servers:Cloud.lab_servers (Prng.of_int 5)
  in
  check Alcotest.string "pinned" "Server3" (Cloud.boot_vm cloud ~name:"vm1" ~group:"g");
  (* unlisted VM falls back to least-loaded *)
  let h = Cloud.boot_vm cloud ~name:"vm2" ~group:"g" in
  check Alcotest.bool "fallback avoids loaded" true (h <> "Server3")

let test_pinned_unknown_server () =
  let cloud =
    Cloud.create ~policy:(Cloud.Pinned [ ("vm1", "nope") ]) ~servers:[ "A" ]
      (Prng.of_int 5)
  in
  Alcotest.check_raises "unknown server"
    (Invalid_argument "Cloud.boot_vm: unknown server \"nope\"") (fun () ->
      ignore (Cloud.boot_vm cloud ~name:"vm1" ~group:"g"))

let test_migrate () =
  let cloud = Cloud.create ~servers:[ "A"; "B" ] (Prng.of_int 6) in
  ignore (Cloud.boot_vm cloud ~name:"vm1" ~group:"g");
  Cloud.migrate cloud ~vm:"vm1" ~to_server:"B";
  check (Alcotest.option Alcotest.string) "migrated" (Some "B")
    (Cloud.host_of cloud "vm1");
  Alcotest.check_raises "unknown vm"
    (Invalid_argument "Cloud.migrate: unknown VM \"ghost\"") (fun () ->
      Cloud.migrate cloud ~vm:"ghost" ~to_server:"A");
  Alcotest.check_raises "unknown server"
    (Invalid_argument "Cloud.migrate: unknown server \"Z\"") (fun () ->
      Cloud.migrate cloud ~vm:"vm1" ~to_server:"Z")

let test_hardware_records () =
  let cloud = Cloud.create ~servers:[ "A" ] (Prng.of_int 7) in
  ignore (Cloud.boot_vm cloud ~name:"vm1" ~group:"g");
  match Cloud.hardware_records cloud with
  | [ Dependency.Hardware h ] ->
      check Alcotest.string "vm" "vm1" h.Dependency.hw;
      check Alcotest.string "host as component" "A" h.Dependency.dep;
      check Alcotest.string "type" "HostServer" h.Dependency.hw_type
  | _ -> Alcotest.fail "one hardware record expected"

let test_create_no_servers () =
  Alcotest.check_raises "no servers" (Invalid_argument "Cloud.create: no servers")
    (fun () -> ignore (Cloud.create ~servers:[] (Prng.of_int 1)))

let prop_placement_balanced =
  QCheck.Test.make ~name:"least-loaded keeps load within 1" ~count:100
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, vms) ->
      let servers = [ "A"; "B"; "C" ] in
      let cloud = Cloud.create ~servers (Prng.of_int seed) in
      for i = 1 to vms do
        ignore (Cloud.boot_vm cloud ~name:(string_of_int i) ~group:"g")
      done;
      let loads = List.map (fun s -> List.length (Cloud.vms_on cloud s)) servers in
      let lo = List.fold_left min max_int loads in
      let hi = List.fold_left max 0 loads in
      hi - lo <= 1)

let () =
  Alcotest.run "iaas"
    [
      ( "cloud",
        [
          Alcotest.test_case "least-loaded boot" `Quick test_boot_least_loaded;
          Alcotest.test_case "duplicate rejected" `Quick test_boot_duplicate_rejected;
          Alcotest.test_case "host_of / vms_on" `Quick test_host_of_and_vms_on;
          Alcotest.test_case "sequential spreads" `Quick
            test_sequential_never_colocates_on_empty;
          Alcotest.test_case "concurrent race co-locates" `Quick
            test_concurrent_race_can_colocate;
          Alcotest.test_case "anti-affinity race-free" `Quick
            test_concurrent_anti_affinity_never_colocates;
          Alcotest.test_case "anti-affinity sequential" `Quick
            test_anti_affinity_sequential;
          Alcotest.test_case "pinned policy" `Quick test_pinned_policy;
          Alcotest.test_case "pinned unknown server" `Quick test_pinned_unknown_server;
          Alcotest.test_case "migrate" `Quick test_migrate;
          Alcotest.test_case "hardware records" `Quick test_hardware_records;
          Alcotest.test_case "create validation" `Quick test_create_no_servers;
          QCheck_alcotest.to_alcotest prop_placement_balanced;
        ] );
    ]
