test/test_depdata.mli:
