test/test_sia.mli:
