test/test_iaas.mli:
