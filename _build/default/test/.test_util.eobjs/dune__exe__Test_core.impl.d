test/test_core.ml: Alcotest Astring Indaas Indaas_depdata Indaas_iaas Indaas_pia Indaas_sia Indaas_util Lazy List String
