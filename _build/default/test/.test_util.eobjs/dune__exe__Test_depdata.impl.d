test/test_depdata.ml: Alcotest Array Indaas_depdata Indaas_util List QCheck QCheck_alcotest Set String
