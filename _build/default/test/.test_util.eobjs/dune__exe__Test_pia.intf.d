test/test_pia.mli:
