test/test_faultgraph.mli:
