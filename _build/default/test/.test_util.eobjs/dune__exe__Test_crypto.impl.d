test/test_crypto.ml: Alcotest Indaas_bignum Indaas_crypto Indaas_util Int64 Lazy List Printf QCheck QCheck_alcotest String
