test/test_bignum.ml: Alcotest Array Indaas_bignum Indaas_util Int64 List QCheck QCheck_alcotest
