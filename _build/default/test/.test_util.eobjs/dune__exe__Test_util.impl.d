test/test_util.ml: Alcotest Array Astring Bytes Float Fun Gen Indaas_util Int64 List QCheck QCheck_alcotest String
