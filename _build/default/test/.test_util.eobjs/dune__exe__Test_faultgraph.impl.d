test/test_faultgraph.ml: Alcotest Array Astring Hashtbl Indaas_faultgraph Indaas_util Int List Option Printf QCheck QCheck_alcotest Set String
