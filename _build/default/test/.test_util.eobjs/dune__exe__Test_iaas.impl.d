test/test_iaas.ml: Alcotest Indaas_depdata Indaas_iaas Indaas_util List Printf QCheck QCheck_alcotest
