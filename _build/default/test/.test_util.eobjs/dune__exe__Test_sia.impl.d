test/test_sia.ml: Alcotest Array Astring Indaas_depdata Indaas_faultgraph Indaas_sia Indaas_util List Option String
