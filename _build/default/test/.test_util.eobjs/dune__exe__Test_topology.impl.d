test/test_topology.ml: Alcotest Indaas_depdata Indaas_topology Indaas_util List QCheck QCheck_alcotest String
