test/test_smpc.mli:
