test/test_smpc.ml: Alcotest Indaas_smpc Indaas_util List Printf QCheck QCheck_alcotest
