test/test_pia.ml: Alcotest Array Astring Hashtbl Indaas_bignum Indaas_crypto Indaas_depdata Indaas_pia Indaas_util Lazy List Printf QCheck QCheck_alcotest String
