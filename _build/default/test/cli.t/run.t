The indaas CLI end-to-end. First, a dependency database in the paper's
Table 1 wire format (the Figure 2 storage system):

  $ cat > deps.xml <<'XML'
  > <src="S1" dst="Internet" route="ToR1,Core1"/>
  > <src="S1" dst="Internet" route="ToR1,Core2"/>
  > <src="S2" dst="Internet" route="ToR1,Core1"/>
  > <src="S2" dst="Internet" route="ToR1,Core2"/>
  > <hw="S1" type="Disk" dep="S1-disk"/>
  > <hw="S2" type="Disk" dep="S2-disk"/>
  > <pgm="Riak1" hw="S1" dep="libc6"/>
  > <pgm="Riak2" hw="S2" dep="libc6"/>
  > XML

A structural audit of the {S1, S2} deployment flags the shared ToR
switch and libc6 and exits 2:

  $ indaas sia --db deps.xml --servers S1,S2
  Deployment: {S1, S2}
    fault graph: fault graph: 21 nodes (6 basic, 15 gates), top=deployment(AND)
    risk groups: 4 (expected minimal size 2)
    unexpected RGs: 2
    independence score: 6
  +------+--------------------+------+-------+------------+
  | rank | risk group         | size | Pr(C) | importance |
  +------+--------------------+------+-------+------------+
  |    1 | {ToR1}             |    1 |     - |          - |
  |    2 | {libc6}            |    1 |     - |          - |
  |    3 | {Core1, Core2}     |    2 |     - |          - |
  |    4 | {S1-disk, S2-disk} |    2 |     - |          - |
  +------+--------------------+------+-------+------------+
  
  WARNING: 2 unexpected risk group(s) — redundancy is undermined.
  [2]

Probability-based ranking with a uniform device failure probability:

  $ indaas sia --db deps.xml --servers S1,S2 --prob 0.1 | grep "Pr(deployment fails)"
    Pr(deployment fails): 0.206119

The fat-tree generator reproduces the paper's Table 3 row for k=48:

  $ indaas topo -k 48
  +-----------------+-------+
  | parameter       | value |
  +-----------------+-------+
  | # switch ports  |    48 |
  | # core routers  |   576 |
  | # agg switches  |  1152 |
  | # ToR switches  |  1152 |
  | # servers       | 27648 |
  | Total # devices | 30528 |
  +-----------------+-------+

Private auditing across two providers' component lists:

  $ printf 'libssl\nlibc6\nnginx\n' > a.txt
  $ printf 'libssl\nlibc6\npostgres\nredis\n' > b.txt
  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --protocol clear
  +------+-----------------------------+---------+-------------+
  | Rank | 2-Way Redundancy Deployment | Jaccard | correlated? |
  +------+-----------------------------+---------+-------------+
  |    1 | CloudA & CloudB             |  0.4000 |          no |
  +------+-----------------------------+---------+-------------+

The same pair through the private P-SOP protocol gives the same answer
without revealing the lists:

  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --protocol psop | grep 0.4000
  |    1 | CloudA & CloudB             |  0.4000 |          no |

Fault-graph export for graphviz:

  $ indaas dot --db deps.xml --servers S1,S2 | head -2
  digraph fault_graph {
    rankdir=BT;

The hardware case study from the paper (§6.2.2):

  $ indaas case hardware
  co-located=true recommended={Server2, Server3} fixed=true
  top4:
    1. {Server4}
    2. {Switch2}
    3. {Core1, Core2}
    4. {VM7, VM8}

Comparing candidate deployments ranks the independent pair first:

  $ cat > flat.xml <<'XML'
  > <src="S1" dst="I" route="swA"/>
  > <src="S2" dst="I" route="swA"/>
  > <src="S3" dst="I" route="swB"/>
  > XML
  $ indaas compare --db flat.xml S1,S2 S1,S3
  +------+------------+------+-------------+-------+----------+
  | rank | deployment | #RGs | #unexpected | score | Pr(fail) |
  +------+------------+------+-------------+-------+----------+
  |    1 | {S1, S3}   |    1 |           0 |     2 |        - |
  |    2 | {S1, S2}   |    1 |           1 |     1 |        - |
  +------+------------+------+-------------+-------+----------+

Generating a fat-tree dependency database:

  $ indaas gen -k 4 | head -3
  <src="server0" dst="Internet" route="tor0,agg0,core0"/>
  <src="server0" dst="Internet" route="tor0,agg0,core1"/>
  <src="server0" dst="Internet" route="tor0,agg1,core2"/>

n-of-m auditing: require 2 live providers out of each 3-provider group
(section 4.2.5) — the worst 2-quorum drives the ranking:

  $ printf 'x\ny\nc1\nc2\n' > c.txt
  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --provider CloudC=c.txt --way 3 --nofm 2 --protocol clear
  +------+--------------------------+----------+-----------------+-----------+
  | Rank | Deployment (m providers) | J(all m) | worst 2-quorum  | J(quorum) |
  +------+--------------------------+----------+-----------------+-----------+
  |    1 | CloudA & CloudB & CloudC |   0.0000 | CloudA & CloudB |    0.4000 |
  +------+--------------------------+----------+-----------------+-----------+

Machine-readable output:

  $ indaas compare --db flat.xml S1,S3 --json
  [
    {
      "servers": [
        "S1",
        "S3"
      ],
      "expected_rg_size": 2,
      "risk_groups": [
        {
          "components": [
            "swA",
            "swB"
          ],
          "size": 2,
          "probability": null,
          "importance": null
        }
      ],
      "unexpected": [],
      "independence_score": 2.0,
      "failure_probability": null
    }
  ]

Component importance (exact BDD probabilities):

  $ indaas importance --db flat.xml --servers S1,S3 --prob 0.1
  Pr(deployment fails) = 0.01 (exact, BDD)
  
  +------+-----------+----------+----------------+
  | rank | component | Birnbaum | Fussell-Vesely |
  +------+-----------+----------+----------------+
  |    1 | swA       |      0.1 |              1 |
  |    2 | swB       |      0.1 |              1 |
  +------+-----------+----------+----------------+
