  $ cat > deps.xml <<'XML'
  > <src="S1" dst="Internet" route="ToR1,Core1"/>
  > <src="S1" dst="Internet" route="ToR1,Core2"/>
  > <src="S2" dst="Internet" route="ToR1,Core1"/>
  > <src="S2" dst="Internet" route="ToR1,Core2"/>
  > <hw="S1" type="Disk" dep="S1-disk"/>
  > <hw="S2" type="Disk" dep="S2-disk"/>
  > <pgm="Riak1" hw="S1" dep="libc6"/>
  > <pgm="Riak2" hw="S2" dep="libc6"/>
  > XML
  $ indaas sia --db deps.xml --servers S1,S2
  $ indaas sia --db deps.xml --servers S1,S2 --prob 0.1 | grep "Pr(deployment fails)"
  $ indaas topo -k 48
  $ printf 'libssl\nlibc6\nnginx\n' > a.txt
  $ printf 'libssl\nlibc6\npostgres\nredis\n' > b.txt
  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --protocol clear
  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --protocol psop | grep 0.4000
  $ indaas dot --db deps.xml --servers S1,S2 | head -2
  $ indaas case hardware
  $ cat > flat.xml <<'XML'
  > <src="S1" dst="I" route="swA"/>
  > <src="S2" dst="I" route="swA"/>
  > <src="S3" dst="I" route="swB"/>
  > XML
  $ indaas compare --db flat.xml S1,S2 S1,S3
  $ indaas gen -k 4 | head -3
  $ printf 'x\ny\nc1\nc2\n' > c.txt
  $ indaas pia --provider CloudA=a.txt --provider CloudB=b.txt --provider CloudC=c.txt --way 3 --nofm 2 --protocol clear
  $ indaas compare --db flat.xml S1,S3 --json
  $ indaas importance --db flat.xml --servers S1,S3 --prob 0.1
