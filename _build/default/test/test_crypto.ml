module Digest = Indaas_crypto.Digest
module Commutative = Indaas_crypto.Commutative
module Paillier = Indaas_crypto.Paillier
module Oracle = Indaas_crypto.Oracle
module Nat = Indaas_bignum.Nat
module Prng = Indaas_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let nat = Alcotest.testable Nat.pp Nat.equal

(* --- digest test vectors (RFC 1321, FIPS 180) ----------------------- *)

let md5_vectors =
  [
    ("", "d41d8cd98f00b204e9800998ecf8427e");
    ("a", "0cc175b9c0f1b6a831c399e269772661");
    ("abc", "900150983cd24fb0d6963f7d28e17f72");
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
    ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
      "d174ab98d277d9f5a5611c2c9f419d9f" );
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "57edf4a22be3c955ac49da2e2107b67a" );
  ]

let sha1_vectors =
  [
    ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1" );
    ("The quick brown fox jumps over the lazy dog",
     "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
  ]

let sha256_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ("The quick brown fox jumps over the lazy dog",
     "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
  ]

let test_vectors name f vectors () =
  List.iter
    (fun (input, expected) ->
      check Alcotest.string (name ^ " " ^ String.escaped input) expected (f input))
    vectors

let test_long_input () =
  (* "a" x 10^6 — classic stress vector. *)
  let input = String.make 1_000_000 'a' in
  check Alcotest.string "md5 million a" "7707d6ae4e027c70eea2a935c2296f21"
    (Digest.md5_hex input);
  check Alcotest.string "sha1 million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Digest.sha1_hex input);
  check Alcotest.string "sha256 million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Digest.sha256_hex input)

let test_padding_boundaries () =
  (* Lengths around the 55/56/64-byte padding boundaries must all
     produce distinct digests and round-trip deterministically. *)
  let lengths = [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ] in
  List.iter
    (fun len ->
      let input = String.make len 'x' in
      check Alcotest.string
        (Printf.sprintf "deterministic at %d" len)
        (Digest.sha256_hex input) (Digest.sha256_hex input))
    lengths;
  let digests = List.map (fun l -> Digest.sha256_hex (String.make l 'x')) lengths in
  check Alcotest.int "all distinct" (List.length lengths)
    (List.length (List.sort_uniq compare digests))

let test_output_lengths () =
  check Alcotest.int "md5" 16 (String.length (Digest.md5 "x"));
  check Alcotest.int "sha1" 20 (String.length (Digest.sha1 "x"));
  check Alcotest.int "sha256" 32 (String.length (Digest.sha256 "x"));
  check Alcotest.int "md5 decl" 16 (Digest.output_length Digest.MD5);
  check Alcotest.int "sha1 decl" 20 (Digest.output_length Digest.SHA1);
  check Alcotest.int "sha256 decl" 32 (Digest.output_length Digest.SHA256)

let test_to_hex () =
  check Alcotest.string "hex" "00ff10" (Digest.to_hex "\x00\xff\x10")

let test_fold_to_int64 () =
  check Alcotest.int64 "big-endian fold" 0x0102030405060708L
    (Digest.fold_to_int64 "\x01\x02\x03\x04\x05\x06\x07\x08tail");
  Alcotest.check_raises "short input"
    (Invalid_argument "Digest.fold_to_int64: too short") (fun () ->
      ignore (Digest.fold_to_int64 "abc"))

(* --- commutative encryption ----------------------------------------- *)

let with_params f () =
  let g = Prng.of_int 100 in
  let params = Commutative.params_pohlig_hellman ~bits:128 g in
  f g params

let test_commutativity =
  with_params (fun g params ->
      for _ = 1 to 20 do
        let k1 = Commutative.generate_key g params in
        let k2 = Commutative.generate_key g params in
        let m = Oracle.hash_to_group "payload" ~modulus:(Commutative.modulus params) in
        check nat "E2(E1(m)) = E1(E2(m))"
          (Commutative.encrypt params k2 (Commutative.encrypt params k1 m))
          (Commutative.encrypt params k1 (Commutative.encrypt params k2 m))
      done)

let test_decrypt_inverts =
  with_params (fun g params ->
      for i = 1 to 20 do
        let k = Commutative.generate_key g params in
        let m =
          Oracle.hash_to_group (Printf.sprintf "m%d" i)
            ~modulus:(Commutative.modulus params)
        in
        check nat "D(E(m)) = m" m (Commutative.decrypt params k (Commutative.encrypt params k m))
      done)

let test_decrypt_order_insensitive =
  with_params (fun g params ->
      let k1 = Commutative.generate_key g params in
      let k2 = Commutative.generate_key g params in
      let m = Oracle.hash_to_group "x" ~modulus:(Commutative.modulus params) in
      let c = Commutative.encrypt params k2 (Commutative.encrypt params k1 m) in
      (* strip in the opposite order of application *)
      check nat "strip k1 then k2" m
        (Commutative.decrypt params k2 (Commutative.decrypt params k1 c)))

let test_deterministic =
  with_params (fun g params ->
      let k = Commutative.generate_key g params in
      let m = Oracle.hash_to_group "det" ~modulus:(Commutative.modulus params) in
      check nat "same ciphertext" (Commutative.encrypt params k m)
        (Commutative.encrypt params k m))

let test_sra_scheme () =
  let g = Prng.of_int 101 in
  let params = Commutative.params_sra ~bits:128 g in
  let k1 = Commutative.generate_key g params in
  let k2 = Commutative.generate_key g params in
  let m = Oracle.hash_to_group "sra" ~modulus:(Commutative.modulus params) in
  check nat "commutes"
    (Commutative.encrypt params k2 (Commutative.encrypt params k1 m))
    (Commutative.encrypt params k1 (Commutative.encrypt params k2 m));
  check nat "inverts" m
    (Commutative.decrypt params k1 (Commutative.encrypt params k1 m))

let test_oakley_params () =
  check Alcotest.int "1024-bit modulus" 128
    (Commutative.modulus_bytes Commutative.params_oakley1024)

let test_ciphertext_to_string =
  with_params (fun g params ->
      let k = Commutative.generate_key g params in
      let m = Oracle.hash_to_group "wire" ~modulus:(Commutative.modulus params) in
      let c = Commutative.encrypt params k m in
      let s = Commutative.ciphertext_to_string params c in
      check Alcotest.int "fixed width" (Commutative.modulus_bytes params)
        (String.length s);
      check nat "roundtrip" c (Nat.of_bytes_be s))

(* --- Paillier -------------------------------------------------------- *)

let with_paillier f () =
  let g = Prng.of_int 200 in
  let kp = Paillier.generate ~bits:128 g in
  f g kp

let test_paillier_roundtrip =
  with_paillier (fun g kp ->
      let pk = kp.Paillier.public in
      for i = 0 to 20 do
        let m = Nat.of_int (i * 991) in
        check nat "D(E(m)) = m" m (Paillier.decrypt kp (Paillier.encrypt g pk m))
      done)

let test_paillier_additive =
  with_paillier (fun g kp ->
      let pk = kp.Paillier.public in
      for _ = 1 to 20 do
        let a = Prng.int g 10_000 and b = Prng.int g 10_000 in
        let ea = Paillier.encrypt g pk (Nat.of_int a) in
        let eb = Paillier.encrypt g pk (Nat.of_int b) in
        check nat "E(a)*E(b) decrypts to a+b" (Nat.of_int (a + b))
          (Paillier.decrypt kp (Paillier.add pk ea eb))
      done)

let test_paillier_scalar =
  with_paillier (fun g kp ->
      let pk = kp.Paillier.public in
      for _ = 1 to 20 do
        let a = Prng.int g 10_000 and k = Prng.int g 50 in
        let ea = Paillier.encrypt g pk (Nat.of_int a) in
        check nat "E(a)^k decrypts to k*a" (Nat.of_int (k * a))
          (Paillier.decrypt kp (Paillier.scalar_mul pk (Nat.of_int k) ea))
      done)

let test_paillier_randomized =
  with_paillier (fun g kp ->
      let pk = kp.Paillier.public in
      let e1 = Paillier.encrypt g pk (Nat.of_int 7) in
      let e2 = Paillier.encrypt g pk (Nat.of_int 7) in
      check Alcotest.bool "ciphertexts differ" false (Nat.equal e1 e2);
      check nat "rerandomize keeps plaintext" (Nat.of_int 7)
        (Paillier.decrypt kp (Paillier.rerandomize g pk e1)))

let test_paillier_zero =
  with_paillier (fun g kp ->
      let pk = kp.Paillier.public in
      check nat "E(0)" Nat.zero (Paillier.decrypt kp (Paillier.encrypt_zero g pk)))

let test_paillier_mod_n =
  with_paillier (fun g kp ->
      let pk = kp.Paillier.public in
      let n = Paillier.plaintext_space pk in
      (* encrypting n+3 is the same plaintext as 3 *)
      check nat "reduction" (Nat.of_int 3)
        (Paillier.decrypt kp (Paillier.encrypt g pk (Nat.add n (Nat.of_int 3)))))

(* --- oracle ---------------------------------------------------------- *)

let test_hash_to_nat_width () =
  List.iter
    (fun bits ->
      let v = Oracle.hash_to_nat "input" ~bits in
      check Alcotest.bool
        (Printf.sprintf "fits %d bits" bits)
        true
        (Nat.bit_length v <= bits))
    [ 1; 8; 64; 128; 300; 1024 ]

let test_hash_to_nat_deterministic () =
  check nat "deterministic" (Oracle.hash_to_nat "x" ~bits:256)
    (Oracle.hash_to_nat "x" ~bits:256);
  check Alcotest.bool "input-sensitive" false
    (Nat.equal (Oracle.hash_to_nat "x" ~bits:256) (Oracle.hash_to_nat "y" ~bits:256))

let test_hash_to_group_range () =
  let g = Prng.of_int 300 in
  let modulus = Indaas_bignum.Prime.generate g ~bits:64 in
  for i = 1 to 200 do
    let v = Oracle.hash_to_group (string_of_int i) ~modulus in
    check Alcotest.bool "in [2, modulus-1]" true
      (Nat.compare v Nat.two >= 0 && Nat.compare v modulus < 0)
  done

let test_hash_int_keyed () =
  check Alcotest.bool "different seeds differ" false
    (Int64.equal (Oracle.hash_int ~seed:0 "e") (Oracle.hash_int ~seed:1 "e"));
  check Alcotest.int64 "deterministic" (Oracle.hash_int ~seed:5 "e")
    (Oracle.hash_int ~seed:5 "e")

(* --- qcheck properties ----------------------------------------------- *)

let prop_digest_deterministic =
  QCheck.Test.make ~name:"sha256 deterministic" ~count:200 QCheck.string
    (fun s -> String.equal (Digest.sha256 s) (Digest.sha256 s))

let prop_digest_injective_observed =
  QCheck.Test.make ~name:"sha256 distinct on distinct strings" ~count:200
    (QCheck.pair QCheck.string QCheck.string) (fun (a, b) ->
      QCheck.assume (a <> b);
      not (String.equal (Digest.sha256 a) (Digest.sha256 b)))

let prop_hex_length =
  QCheck.Test.make ~name:"hex doubles length" ~count:200 QCheck.string (fun s ->
      String.length (Digest.to_hex s) = 2 * String.length s)


(* --- qcheck: scheme-level properties -------------------------------------- *)

let shared_ph = lazy (Commutative.params_pohlig_hellman ~bits:128 (Prng.of_int 888))
let shared_sra = lazy (Commutative.params_sra ~bits:128 (Prng.of_int 889))

let prop_commutes_on_random_messages params_lazy name =
  QCheck.Test.make ~name ~count:30 QCheck.(pair small_int string)
    (fun (seed, payload) ->
      let params = Lazy.force params_lazy in
      let g = Prng.of_int seed in
      let k1 = Commutative.generate_key g params in
      let k2 = Commutative.generate_key g params in
      let m = Oracle.hash_to_group payload ~modulus:(Commutative.modulus params) in
      let c12 = Commutative.encrypt params k2 (Commutative.encrypt params k1 m) in
      let c21 = Commutative.encrypt params k1 (Commutative.encrypt params k2 m) in
      Nat.equal c12 c21
      && Nat.equal m
           (Commutative.decrypt params k1
              (Commutative.decrypt params k2 c12)))

let prop_paillier_homomorphic =
  QCheck.Test.make ~name:"paillier: E(a)*E(b) ~ a+b on random inputs" ~count:20
    QCheck.(triple small_int (int_bound 100_000) (int_bound 100_000))
    (fun (seed, a, b) ->
      let g = Prng.of_int seed in
      let kp = Paillier.generate ~bits:128 g in
      let pk = kp.Paillier.public in
      let ea = Paillier.encrypt g pk (Nat.of_int a) in
      let eb = Paillier.encrypt g pk (Nat.of_int b) in
      Nat.to_int (Paillier.decrypt kp (Paillier.add pk ea eb)) = a + b)

let () =
  Alcotest.run "crypto"
    [
      ( "digest",
        [
          Alcotest.test_case "md5 vectors" `Quick
            (test_vectors "md5" Digest.md5_hex md5_vectors);
          Alcotest.test_case "sha1 vectors" `Quick
            (test_vectors "sha1" Digest.sha1_hex sha1_vectors);
          Alcotest.test_case "sha256 vectors" `Quick
            (test_vectors "sha256" Digest.sha256_hex sha256_vectors);
          Alcotest.test_case "million a" `Slow test_long_input;
          Alcotest.test_case "padding boundaries" `Quick test_padding_boundaries;
          Alcotest.test_case "output lengths" `Quick test_output_lengths;
          Alcotest.test_case "to_hex" `Quick test_to_hex;
          Alcotest.test_case "fold_to_int64" `Quick test_fold_to_int64;
          qtest prop_digest_deterministic;
          qtest prop_digest_injective_observed;
          qtest prop_hex_length;
        ] );
      ( "commutative",
        [
          Alcotest.test_case "commutativity" `Quick test_commutativity;
          Alcotest.test_case "decrypt inverts" `Quick test_decrypt_inverts;
          Alcotest.test_case "decrypt order-insensitive" `Quick
            test_decrypt_order_insensitive;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "SRA scheme" `Quick test_sra_scheme;
          Alcotest.test_case "oakley params" `Quick test_oakley_params;
          Alcotest.test_case "wire format" `Quick test_ciphertext_to_string;
        ] );
      ( "paillier",
        [
          Alcotest.test_case "roundtrip" `Quick test_paillier_roundtrip;
          Alcotest.test_case "additive" `Quick test_paillier_additive;
          Alcotest.test_case "scalar mult" `Quick test_paillier_scalar;
          Alcotest.test_case "randomized" `Quick test_paillier_randomized;
          Alcotest.test_case "zero" `Quick test_paillier_zero;
          Alcotest.test_case "mod n reduction" `Quick test_paillier_mod_n;
        ] );
      ( "scheme-properties",
        [
          qtest (prop_commutes_on_random_messages shared_ph "pohlig-hellman commutes randomly");
          qtest (prop_commutes_on_random_messages shared_sra "SRA commutes randomly");
          qtest prop_paillier_homomorphic;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "hash_to_nat width" `Quick test_hash_to_nat_width;
          Alcotest.test_case "hash_to_nat deterministic" `Quick
            test_hash_to_nat_deterministic;
          Alcotest.test_case "hash_to_group range" `Quick test_hash_to_group_range;
          Alcotest.test_case "hash_int keyed" `Quick test_hash_int_keyed;
        ] );
    ]
