module Nat = Indaas_bignum.Nat
module Zz = Indaas_bignum.Zz
module Prime = Indaas_bignum.Prime
module Prng = Indaas_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let nat = Alcotest.testable Nat.pp Nat.equal

let n = Nat.of_int
let big g bits = Nat.random_bits g bits

(* --- basic constructors and conversions ---------------------------- *)

let test_of_to_int () =
  List.iter
    (fun v -> check Alcotest.int "roundtrip" v (Nat.to_int (n v)))
    [ 0; 1; 2; 1000; max_int / 2; max_int ];
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative")
    (fun () -> ignore (n (-1)))

let test_to_int_overflow () =
  let g = Prng.of_int 1 in
  let huge = big g 200 in
  check (Alcotest.option Alcotest.int) "overflow" None (Nat.to_int_opt huge)

let test_of_int64 () =
  check nat "small" (n 12345) (Nat.of_int64 12345L);
  check nat "zero" Nat.zero (Nat.of_int64 0L);
  check Alcotest.string "max_int64" "9223372036854775807"
    (Nat.to_decimal (Nat.of_int64 Int64.max_int))

let test_predicates () =
  check Alcotest.bool "zero" true (Nat.is_zero Nat.zero);
  check Alcotest.bool "one" true (Nat.is_one Nat.one);
  check Alcotest.bool "two even" true (Nat.is_even Nat.two);
  check Alcotest.bool "one odd" false (Nat.is_even Nat.one);
  check Alcotest.bool "zero even" true (Nat.is_even Nat.zero)

(* --- arithmetic against machine ints ------------------------------- *)

let test_small_arith_cross_check () =
  let g = Prng.of_int 2 in
  for _ = 1 to 5000 do
    let a = Prng.int g 1_000_000 and b = Prng.int g 1_000_000 in
    check Alcotest.int "add" (a + b) (Nat.to_int (Nat.add (n a) (n b)));
    check Alcotest.int "mul" (a * b) (Nat.to_int (Nat.mul (n a) (n b)));
    if a >= b then
      check Alcotest.int "sub" (a - b) (Nat.to_int (Nat.sub (n a) (n b)))
  done

let test_divmod_cross_check () =
  let g = Prng.of_int 3 in
  for _ = 1 to 5000 do
    let a = Prng.int g 1_000_000_000 and b = 1 + Prng.int g 100_000 in
    let q, r = Nat.divmod (n a) (n b) in
    check Alcotest.int "quotient" (a / b) (Nat.to_int q);
    check Alcotest.int "remainder" (a mod b) (Nat.to_int r)
  done

let test_sub_underflow () =
  Alcotest.check_raises "underflow" (Invalid_argument "Nat.sub: underflow")
    (fun () -> ignore (Nat.sub Nat.one Nat.two))

let test_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let test_shift_roundtrip () =
  let g = Prng.of_int 4 in
  for _ = 1 to 200 do
    let a = big g 200 in
    let k = Prng.int g 100 in
    check nat "shift roundtrip" a (Nat.shift_right (Nat.shift_left a k) k)
  done

let test_shift_is_mul_pow2 () =
  let g = Prng.of_int 5 in
  for _ = 1 to 100 do
    let a = big g 150 in
    let k = Prng.int g 64 in
    check nat "shift = mul 2^k" (Nat.mul a (Nat.pow Nat.two k)) (Nat.shift_left a k)
  done

let test_bit_length () =
  check Alcotest.int "zero" 0 (Nat.bit_length Nat.zero);
  check Alcotest.int "one" 1 (Nat.bit_length Nat.one);
  check Alcotest.int "255" 8 (Nat.bit_length (n 255));
  check Alcotest.int "256" 9 (Nat.bit_length (n 256));
  check Alcotest.int "2^100" 101 (Nat.bit_length (Nat.pow Nat.two 100))

let test_testbit () =
  let v = n 0b101101 in
  let bits = List.init 8 (Nat.testbit v) in
  check (Alcotest.list Alcotest.bool) "bits"
    [ true; false; true; true; false; true; false; false ]
    bits

let test_pow () =
  check nat "2^10" (n 1024) (Nat.pow Nat.two 10);
  check nat "x^0" Nat.one (Nat.pow (n 999) 0);
  check nat "0^0" Nat.one (Nat.pow Nat.zero 0);
  check nat "0^5" Nat.zero (Nat.pow Nat.zero 5)

let test_mod_pow_cross_check () =
  let g = Prng.of_int 6 in
  for _ = 1 to 1000 do
    let b = Prng.int g 1000 and e = Prng.int g 30 and m = 2 + Prng.int g 1000 in
    let expected = ref 1 in
    for _ = 1 to e do
      expected := !expected * b mod m
    done;
    check Alcotest.int "mod_pow"
      !expected
      (Nat.to_int (Nat.mod_pow ~base:(n b) ~exp:(n e) ~modulus:(n m)))
  done

let test_mod_pow_fermat () =
  (* 2^(p-1) = 1 mod p for the 1024-bit Oakley prime. *)
  let p = Prime.oakley_group2 in
  check nat "fermat" Nat.one
    (Nat.mod_pow ~base:Nat.two ~exp:(Nat.sub p Nat.one) ~modulus:p)

let test_gcd () =
  check nat "gcd(12,18)" (n 6) (Nat.gcd (n 12) (n 18));
  check nat "gcd(a,0)" (n 7) (Nat.gcd (n 7) Nat.zero);
  check nat "gcd(0,a)" (n 7) (Nat.gcd Nat.zero (n 7));
  check nat "coprime" Nat.one (Nat.gcd (n 35) (n 64))

let test_mod_inverse () =
  let g = Prng.of_int 7 in
  for _ = 1 to 300 do
    let m = Nat.add (big g 120) Nat.two in
    let a = Nat.add (big g 120) Nat.one in
    match Nat.mod_inverse a m with
    | Some x ->
        check nat "a*x = 1 mod m" (Nat.rem Nat.one m)
          (Nat.rem (Nat.mul (Nat.rem a m) x) m)
    | None ->
        check Alcotest.bool "gcd > 1" false (Nat.is_one (Nat.gcd a m))
  done

let test_mod_inverse_known () =
  check (Alcotest.option nat) "3^-1 mod 7" (Some (n 5)) (Nat.mod_inverse (n 3) (n 7));
  check (Alcotest.option nat) "no inverse" None (Nat.mod_inverse (n 4) (n 8))


let test_to_int_boundary () =
  (* max_int itself round-trips; max_int+1 overflows *)
  check Alcotest.int "max_int" max_int (Nat.to_int (n max_int));
  let just_over = Nat.add (n max_int) Nat.one in
  check (Alcotest.option Alcotest.int) "max_int+1" None (Nat.to_int_opt just_over)

let test_shift_right_past_width () =
  check nat "beyond width" Nat.zero (Nat.shift_right (n 12345) 100);
  check nat "zero shifts" Nat.zero (Nat.shift_right Nat.zero 5)

let test_divmod_equal_operands () =
  let g = Prng.of_int 40 in
  for _ = 1 to 50 do
    let a = Nat.add (big g 200) Nat.one in
    let q, r = Nat.divmod a a in
    check nat "a/a = 1" Nat.one q;
    check nat "a mod a = 0" Nat.zero r;
    (* divisor one limb larger than dividend *)
    let b = Nat.add (Nat.shift_left a 31) Nat.one in
    let q2, r2 = Nat.divmod a b in
    check nat "small/big quotient" Nat.zero q2;
    check nat "small/big remainder" a r2
  done

(* --- serialization -------------------------------------------------- *)

let test_decimal_roundtrip () =
  let g = Prng.of_int 8 in
  for _ = 1 to 100 do
    let a = big g 400 in
    check nat "decimal" a (Nat.of_decimal (Nat.to_decimal a))
  done;
  check Alcotest.string "zero" "0" (Nat.to_decimal Nat.zero);
  check nat "leading zeros ok" (n 42) (Nat.of_decimal "0042")

let test_hex_roundtrip () =
  let g = Prng.of_int 9 in
  for _ = 1 to 100 do
    let a = big g 333 in
    check nat "hex" a (Nat.of_hex (Nat.to_hex a))
  done;
  check nat "upper case" (n 255) (Nat.of_hex "FF");
  Alcotest.check_raises "bad digit" (Invalid_argument "Nat.of_hex: bad digit")
    (fun () -> ignore (Nat.of_hex "xyz"))

let test_bytes_roundtrip () =
  let g = Prng.of_int 10 in
  for _ = 1 to 100 do
    let a = big g 250 in
    check nat "bytes" a (Nat.of_bytes_be (Nat.to_bytes_be a))
  done;
  check Alcotest.string "empty for zero" "" (Nat.to_bytes_be Nat.zero);
  check nat "known encoding" (n 0x0102) (Nat.of_bytes_be "\x01\x02")

let test_known_decimal () =
  (* 2^128 *)
  check Alcotest.string "2^128" "340282366920938463463374607431768211456"
    (Nat.to_decimal (Nat.pow Nat.two 128))

(* --- randomness ----------------------------------------------------- *)

let test_random_bits_width () =
  let g = Prng.of_int 11 in
  for _ = 1 to 200 do
    let v = Nat.random_bits g 64 in
    check Alcotest.bool "below 2^64" true (Nat.bit_length v <= 64)
  done

let test_random_below () =
  let g = Prng.of_int 12 in
  let bound = n 1000 in
  for _ = 1 to 1000 do
    check Alcotest.bool "below bound" true
      (Nat.compare (Nat.random_below g bound) bound < 0)
  done

(* --- primes --------------------------------------------------------- *)

let test_small_primes_list () =
  check Alcotest.int "first prime" 2 Prime.small_primes.(0);
  check Alcotest.bool "997 present" true
    (Array.exists (fun p -> p = 997) Prime.small_primes);
  check Alcotest.bool "1000 absent" false
    (Array.exists (fun p -> p >= 1000) Prime.small_primes)

let test_is_probably_prime_small () =
  let g = Prng.of_int 13 in
  let primes = [ 2; 3; 5; 7; 11; 101; 997; 7919 ] in
  let composites = [ 0; 1; 4; 9; 100; 561; 1001; 7917 ] in
  List.iter
    (fun p ->
      check Alcotest.bool (string_of_int p) true (Prime.is_probably_prime g (n p)))
    primes;
  List.iter
    (fun c ->
      check Alcotest.bool (string_of_int c) false (Prime.is_probably_prime g (n c)))
    composites

let test_carmichael_numbers () =
  (* Carmichael numbers fool Fermat but not Miller–Rabin. *)
  let g = Prng.of_int 14 in
  List.iter
    (fun c ->
      check Alcotest.bool (string_of_int c) false (Prime.is_probably_prime g (n c)))
    [ 561; 1105; 1729; 2465; 2821; 6601; 8911; 41041 ]

let test_generate_prime () =
  let g = Prng.of_int 15 in
  List.iter
    (fun bits ->
      let p = Prime.generate g ~bits in
      check Alcotest.int "exact width" bits (Nat.bit_length p);
      check Alcotest.bool "prime" true (Prime.is_probably_prime g p))
    [ 16; 32; 64; 128 ]

let test_generate_distinct_pair () =
  let g = Prng.of_int 16 in
  let p, q = Prime.generate_distinct_pair g ~bits:64 in
  check Alcotest.bool "distinct" false (Nat.equal p q)

let test_oakley_is_prime () =
  let g = Prng.of_int 17 in
  check Alcotest.int "1024 bits" 1024 (Nat.bit_length Prime.oakley_group2);
  check Alcotest.bool "prime" true
    (Prime.is_probably_prime ~rounds:4 g Prime.oakley_group2)

(* --- signed integers ------------------------------------------------ *)

let zz = Alcotest.testable Zz.pp Zz.equal

let test_zz_arith () =
  let a = Zz.of_int (-15) and b = Zz.of_int 4 in
  check zz "add" (Zz.of_int (-11)) (Zz.add a b);
  check zz "sub" (Zz.of_int (-19)) (Zz.sub a b);
  check zz "mul" (Zz.of_int (-60)) (Zz.mul a b);
  check Alcotest.int "sign" (-1) (Zz.sign a);
  check zz "neg" (Zz.of_int 15) (Zz.neg a)

let test_zz_divmod_euclidean () =
  (* Euclidean: remainder always in [0, |b|). *)
  List.iter
    (fun (a, b) ->
      let q, r = Zz.divmod (Zz.of_int a) (Zz.of_int b) in
      check Alcotest.int "r >= 0" 1 (if Zz.sign r >= 0 then 1 else 0);
      check Alcotest.bool "r < |b|" true (Zz.to_int r < abs b);
      check Alcotest.int "a = q*b + r" a ((Zz.to_int q * b) + Zz.to_int r))
    [ (7, 3); (-7, 3); (7, -3); (-7, -3); (6, 3); (-6, 3); (0, 5) ]

let test_zz_erem () =
  check nat "positive" (n 1) (Zz.erem (Zz.of_int 7) (n 3));
  check nat "negative" (n 2) (Zz.erem (Zz.of_int (-7)) (n 3));
  check nat "zero" (n 0) (Zz.erem (Zz.of_int (-6)) (n 3))

let test_zz_egcd () =
  let g = Prng.of_int 18 in
  for _ = 1 to 200 do
    let a = Nat.add (big g 100) Nat.one and b = Nat.add (big g 100) Nat.one in
    let d, x, y = Zz.egcd a b in
    check nat "gcd matches" (Nat.gcd a b) d;
    let lhs = Zz.add (Zz.mul (Zz.of_nat a) x) (Zz.mul (Zz.of_nat b) y) in
    check zz "bezout" (Zz.of_nat d) lhs
  done

let test_zz_to_string () =
  check Alcotest.string "neg" "-42" (Zz.to_string (Zz.of_int (-42)));
  check Alcotest.string "zero" "0" (Zz.to_string Zz.zero)

(* --- qcheck properties ---------------------------------------------- *)

let gen_nat =
  (* random naturals up to ~310 bits, skewed small *)
  QCheck.make
    ~print:(fun a -> Nat.to_decimal a)
    QCheck.Gen.(
      map2
        (fun seed bits ->
          let g = Prng.of_int seed in
          Nat.random_bits g bits)
        int (int_range 0 310))

let prop_add_comm =
  QCheck.Test.make ~name:"add commutative" ~count:300 (QCheck.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_mul_comm =
  QCheck.Test.make ~name:"mul commutative" ~count:300 (QCheck.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_mul_assoc =
  QCheck.Test.make ~name:"mul associative" ~count:200
    (QCheck.triple gen_nat gen_nat gen_nat) (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.mul b c)) (Nat.mul (Nat.mul a b) c))

let prop_distributive =
  QCheck.Test.make ~name:"mul distributes over add" ~count:200
    (QCheck.triple gen_nat gen_nat gen_nat) (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_divmod_identity =
  QCheck.Test.make ~name:"a = q*b + r, r < b" ~count:300
    (QCheck.pair gen_nat gen_nat) (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:300 (QCheck.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal a (Nat.sub (Nat.add a b) b))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:300
    (QCheck.pair gen_nat gen_nat) (fun (a, b) ->
      Nat.compare a b = -Nat.compare b a)

let prop_decimal_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:200 gen_nat (fun a ->
      Nat.equal a (Nat.of_decimal (Nat.to_decimal a)))

let prop_mod_pow_mul =
  (* (a*b) mod m = ((a mod m)*(b mod m)) mod m via mod_pow exp=1 paths *)
  QCheck.Test.make ~name:"mod_pow exponent addition" ~count:100
    (QCheck.triple gen_nat
       (QCheck.pair QCheck.(int_range 0 40) QCheck.(int_range 0 40))
       gen_nat)
    (fun (a, (e1, e2), m) ->
      QCheck.assume (Nat.compare m Nat.two >= 0);
      let pow e = Nat.mod_pow ~base:a ~exp:(Nat.of_int e) ~modulus:m in
      Nat.equal
        (Nat.rem (Nat.mul (pow e1) (pow e2)) m)
        (pow (e1 + e2)))

let () =
  Alcotest.run "bignum"
    [
      ( "nat-basics",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "of_int64" `Quick test_of_int64;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "testbit" `Quick test_testbit;
        ] );
      ( "nat-arith",
        [
          Alcotest.test_case "small cross-check" `Quick test_small_arith_cross_check;
          Alcotest.test_case "divmod cross-check" `Quick test_divmod_cross_check;
          Alcotest.test_case "sub underflow" `Quick test_sub_underflow;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "shift roundtrip" `Quick test_shift_roundtrip;
          Alcotest.test_case "shift = mul 2^k" `Quick test_shift_is_mul_pow2;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "mod_pow cross-check" `Quick test_mod_pow_cross_check;
          Alcotest.test_case "mod_pow fermat 1024" `Slow test_mod_pow_fermat;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "mod_inverse random" `Quick test_mod_inverse;
          Alcotest.test_case "mod_inverse known" `Quick test_mod_inverse_known;
          Alcotest.test_case "to_int boundary" `Quick test_to_int_boundary;
          Alcotest.test_case "shift past width" `Quick test_shift_right_past_width;
          Alcotest.test_case "divmod structure" `Quick test_divmod_equal_operands;
        ] );
      ( "nat-serialization",
        [
          Alcotest.test_case "decimal roundtrip" `Quick test_decimal_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "2^128 decimal" `Quick test_known_decimal;
        ] );
      ( "nat-random",
        [
          Alcotest.test_case "random_bits width" `Quick test_random_bits_width;
          Alcotest.test_case "random_below" `Quick test_random_below;
        ] );
      ( "prime",
        [
          Alcotest.test_case "small primes table" `Quick test_small_primes_list;
          Alcotest.test_case "known primes/composites" `Quick
            test_is_probably_prime_small;
          Alcotest.test_case "carmichael numbers" `Quick test_carmichael_numbers;
          Alcotest.test_case "generate" `Quick test_generate_prime;
          Alcotest.test_case "distinct pair" `Quick test_generate_distinct_pair;
          Alcotest.test_case "oakley group 2" `Slow test_oakley_is_prime;
        ] );
      ( "zz",
        [
          Alcotest.test_case "arith" `Quick test_zz_arith;
          Alcotest.test_case "euclidean divmod" `Quick test_zz_divmod_euclidean;
          Alcotest.test_case "erem" `Quick test_zz_erem;
          Alcotest.test_case "egcd bezout" `Quick test_zz_egcd;
          Alcotest.test_case "to_string" `Quick test_zz_to_string;
        ] );
      ( "properties",
        [
          qtest prop_add_comm;
          qtest prop_mul_comm;
          qtest prop_mul_assoc;
          qtest prop_distributive;
          qtest prop_divmod_identity;
          qtest prop_add_sub_roundtrip;
          qtest prop_compare_total_order;
          qtest prop_decimal_roundtrip;
          qtest prop_mod_pow_mul;
        ] );
    ]
