module Circuit = Indaas_smpc.Circuit
module Ot = Indaas_smpc.Ot
module Gmw = Indaas_smpc.Gmw
module Prng = Indaas_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Circuit ----------------------------------------------------------- *)

let test_gate_basics () =
  let b = Circuit.Builder.create () in
  let x = Circuit.Builder.input b ~party:0 in
  let y = Circuit.Builder.input b ~party:1 in
  let o_xor = Circuit.Builder.xor b x y in
  let o_and = Circuit.Builder.and_ b x y in
  let o_or = Circuit.Builder.or_ b x y in
  let o_not = Circuit.Builder.not_ b x in
  let c = Circuit.Builder.build b ~outputs:[ o_xor; o_and; o_or; o_not ] in
  List.iter
    (fun (vx, vy) ->
      let outputs = Circuit.evaluate c ~inputs:[ (x, vx); (y, vy) ] in
      check (Alcotest.list Alcotest.bool)
        (Printf.sprintf "%b,%b" vx vy)
        [ vx <> vy; vx && vy; vx || vy; not vx ]
        outputs)
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_equal_circuit () =
  let b = Circuit.Builder.create () in
  let xs = List.init 4 (fun _ -> Circuit.Builder.input b ~party:0) in
  let ys = List.init 4 (fun _ -> Circuit.Builder.input b ~party:1) in
  let eq = Circuit.Builder.equal b xs ys in
  let c = Circuit.Builder.build b ~outputs:[ eq ] in
  let assign ws v = List.mapi (fun i w -> (w, (v lsr i) land 1 = 1)) ws in
  for vx = 0 to 15 do
    for vy = 0 to 15 do
      let out = Circuit.evaluate c ~inputs:(assign xs vx @ assign ys vy) in
      check Alcotest.bool
        (Printf.sprintf "%d=%d" vx vy)
        (vx = vy) (List.hd out)
    done
  done

let test_adder () =
  let b = Circuit.Builder.create () in
  let xs = List.init 3 (fun _ -> Circuit.Builder.input b ~party:0) in
  let ys = List.init 3 (fun _ -> Circuit.Builder.input b ~party:1) in
  let sum = Circuit.Builder.add b xs ys in
  let c = Circuit.Builder.build b ~outputs:sum in
  let assign ws v = List.mapi (fun i w -> (w, (v lsr i) land 1 = 1)) ws in
  let decode bits =
    List.fold_left (fun acc bit -> (2 * acc) + if bit then 1 else 0) 0 (List.rev bits)
  in
  for vx = 0 to 7 do
    for vy = 0 to 7 do
      let out = Circuit.evaluate c ~inputs:(assign xs vx @ assign ys vy) in
      check Alcotest.int (Printf.sprintf "%d+%d" vx vy) (vx + vy) (decode out)
    done
  done

let test_popcount () =
  let n = 9 in
  let b = Circuit.Builder.create () in
  let xs = List.init n (fun _ -> Circuit.Builder.input b ~party:0) in
  let count = Circuit.Builder.popcount b xs in
  let c = Circuit.Builder.build b ~outputs:count in
  let decode bits =
    List.fold_left (fun acc bit -> (2 * acc) + if bit then 1 else 0) 0 (List.rev bits)
  in
  let rng = Prng.of_int 5 in
  for _ = 1 to 50 do
    let values = List.map (fun w -> (w, Prng.bool rng)) xs in
    let expected = List.length (List.filter snd values) in
    check Alcotest.int "popcount" expected
      (decode (Circuit.evaluate c ~inputs:values))
  done

let test_circuit_validation () =
  let b = Circuit.Builder.create () in
  let x = Circuit.Builder.input b ~party:0 in
  check Alcotest.bool "unknown wire" true
    (try
       ignore (Circuit.Builder.xor b x 42);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "bad party" true
    (try
       ignore (Circuit.Builder.input b ~party:2);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "width mismatch" true
    (try
       ignore (Circuit.Builder.equal b [ x ] [ x; x ]);
       false
     with Invalid_argument _ -> true)

let test_and_count_and_inputs () =
  let circuit, (w0, w1) = Circuit.intersection_cardinality ~bits:4 ~n0:2 ~n1:3 in
  (* eq gate: 4 xnor + 3-and tree; or_tree of 3 = 2 ands (as ors);
     popcount small. Just sanity-check counts are positive and input
     wires match. *)
  check Alcotest.bool "has AND gates" true (Circuit.and_count circuit > 0);
  check Alcotest.int "party0 words" 2 (List.length w0);
  check Alcotest.int "party1 words" 3 (List.length w1);
  check Alcotest.int "party0 wires" 8
    (List.length (Circuit.input_wires circuit ~party:0));
  check Alcotest.int "party1 wires" 12
    (List.length (Circuit.input_wires circuit ~party:1))

(* --- OT ------------------------------------------------------------------ *)

let test_ot2_correctness () =
  let rng = Prng.of_int 10 in
  let params = Ot.setup ~bits:96 rng in
  List.iter
    (fun (m0, m1) ->
      List.iter
        (fun choice ->
          let got = Ot.transfer2 params rng ~messages:(m0, m1) ~choice in
          check Alcotest.bool
            (Printf.sprintf "m0=%b m1=%b choice=%b" m0 m1 choice)
            (if choice then m1 else m0)
            got)
        [ false; true ])
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_ot4_correctness () =
  let rng = Prng.of_int 11 in
  let params = Ot.setup ~bits:96 rng in
  for mask = 0 to 15 do
    let bit i = mask lsr i land 1 = 1 in
    for choice = 0 to 3 do
      let got =
        Ot.transfer4 params rng ~messages:(bit 0, bit 1, bit 2, bit 3) ~choice
      in
      check Alcotest.bool
        (Printf.sprintf "mask=%d choice=%d" mask choice)
        (bit choice) got
    done
  done

let test_ot_accounting () =
  let rng = Prng.of_int 12 in
  let params = Ot.setup ~bits:96 rng in
  let before = (Ot.stats params).Ot.exponentiations in
  ignore (Ot.transfer2 params rng ~messages:(true, false) ~choice:false);
  let after = (Ot.stats params).Ot.exponentiations in
  check Alcotest.bool "exponentiations counted" true (after > before);
  check Alcotest.bool "bytes counted" true ((Ot.stats params).Ot.bytes > 0)

(* --- GMW ------------------------------------------------------------------ *)

let test_gmw_matches_plain_eval () =
  let rng = Prng.of_int 20 in
  (* A small mixed circuit: ((x0 AND y0) XOR x1) OR (NOT y1) *)
  let b = Circuit.Builder.create () in
  let x0 = Circuit.Builder.input b ~party:0 in
  let x1 = Circuit.Builder.input b ~party:0 in
  let y0 = Circuit.Builder.input b ~party:1 in
  let y1 = Circuit.Builder.input b ~party:1 in
  let expr =
    Circuit.Builder.or_ b
      (Circuit.Builder.xor b (Circuit.Builder.and_ b x0 y0) x1)
      (Circuit.Builder.not_ b y1)
  in
  let c = Circuit.Builder.build b ~outputs:[ expr ] in
  for mask = 0 to 15 do
    let bit i = mask lsr i land 1 = 1 in
    let inputs0 = [ (x0, bit 0); (x1, bit 1) ] in
    let inputs1 = [ (y0, bit 2); (y1, bit 3) ] in
    let plain = Circuit.evaluate c ~inputs:(inputs0 @ inputs1) in
    let secure = Gmw.execute ~ot_bits:96 rng c ~inputs0 ~inputs1 in
    check (Alcotest.list Alcotest.bool)
      (Printf.sprintf "mask %d" mask)
      plain secure.Gmw.outputs
  done

let test_gmw_missing_input () =
  let rng = Prng.of_int 21 in
  let b = Circuit.Builder.create () in
  let x = Circuit.Builder.input b ~party:0 in
  let c = Circuit.Builder.build b ~outputs:[ x ] in
  check Alcotest.bool "missing input" true
    (try
       ignore (Gmw.execute ~ot_bits:96 rng c ~inputs0:[] ~inputs1:[]);
       false
     with Invalid_argument _ -> true)

let test_gmw_cost_accounting () =
  let rng = Prng.of_int 22 in
  let b = Circuit.Builder.create () in
  let x = Circuit.Builder.input b ~party:0 in
  let y = Circuit.Builder.input b ~party:1 in
  let z = Circuit.Builder.and_ b x y in
  let z2 = Circuit.Builder.and_ b z y in
  let c = Circuit.Builder.build b ~outputs:[ z2 ] in
  let r =
    Gmw.execute ~ot_bits:96 rng c ~inputs0:[ (x, true) ] ~inputs1:[ (y, true) ]
  in
  check Alcotest.int "two AND gates = two OTs" 2 r.Gmw.and_gates;
  check Alcotest.bool "exponentiations counted" true (r.Gmw.ot_exponentiations > 0);
  check Alcotest.bool "traffic counted" true (r.Gmw.bytes > 0)

let test_gmw_intersection () =
  let rng = Prng.of_int 23 in
  let _, count =
    Gmw.intersection_cardinality ~ot_bits:96 ~tag_bits:16 rng
      [ "openssl"; "libc6"; "nginx" ]
      [ "libc6"; "postgres"; "openssl"; "redis" ]
  in
  check Alcotest.int "cardinality" 2 count;
  let _, zero =
    Gmw.intersection_cardinality ~ot_bits:96 ~tag_bits:16 rng [ "a" ] [ "b" ]
  in
  check Alcotest.int "disjoint" 0 zero;
  let _, dup =
    Gmw.intersection_cardinality ~ot_bits:96 ~tag_bits:16 rng
      [ "a"; "a"; "b" ] [ "a" ]
  in
  (* set semantics after dedup *)
  check Alcotest.int "dedup" 1 dup

(* --- property: GMW = plain on random circuits ----------------------------- *)

let gen_circuit_seedpair = QCheck.(pair small_int (int_bound 255))

let prop_gmw_random_circuits =
  QCheck.Test.make ~name:"GMW matches plain evaluation" ~count:20
    gen_circuit_seedpair (fun (seed, input_mask) ->
      let rng = Prng.of_int seed in
      (* random straight-line circuit over 3+3 inputs *)
      let b = Circuit.Builder.create () in
      let xs = List.init 3 (fun _ -> Circuit.Builder.input b ~party:0) in
      let ys = List.init 3 (fun _ -> Circuit.Builder.input b ~party:1) in
      let wires = ref (xs @ ys) in
      for _ = 1 to 12 do
        let pick () = List.nth !wires (Prng.int rng (List.length !wires)) in
        let w =
          match Prng.int rng 3 with
          | 0 -> Circuit.Builder.xor b (pick ()) (pick ())
          | 1 -> Circuit.Builder.and_ b (pick ()) (pick ())
          | _ -> Circuit.Builder.not_ b (pick ())
        in
        wires := w :: !wires
      done;
      let c = Circuit.Builder.build b ~outputs:[ List.hd !wires ] in
      let bit i = input_mask lsr i land 1 = 1 in
      let inputs0 = List.mapi (fun i w -> (w, bit i)) xs in
      let inputs1 = List.mapi (fun i w -> (w, bit (i + 3))) ys in
      let plain = Circuit.evaluate c ~inputs:(inputs0 @ inputs1) in
      let secure = Gmw.execute ~ot_bits:96 rng c ~inputs0 ~inputs1 in
      plain = secure.Gmw.outputs)


(* --- Yao garbled circuits --------------------------------------------------- *)

module Garble = Indaas_smpc.Garble

let test_garble_matches_plain_eval () =
  let rng = Prng.of_int 30 in
  let b = Circuit.Builder.create () in
  let x0 = Circuit.Builder.input b ~party:0 in
  let x1 = Circuit.Builder.input b ~party:0 in
  let y0 = Circuit.Builder.input b ~party:1 in
  let y1 = Circuit.Builder.input b ~party:1 in
  let expr =
    Circuit.Builder.or_ b
      (Circuit.Builder.xor b (Circuit.Builder.and_ b x0 y0) x1)
      (Circuit.Builder.not_ b y1)
  in
  let c = Circuit.Builder.build b ~outputs:[ expr ] in
  for mask = 0 to 15 do
    let bit i = mask lsr i land 1 = 1 in
    let inputs0 = [ (x0, bit 0); (x1, bit 1) ] in
    let inputs1 = [ (y0, bit 2); (y1, bit 3) ] in
    let plain = Circuit.evaluate c ~inputs:(inputs0 @ inputs1) in
    let secure = Garble.execute ~ot_bits:96 rng c ~inputs0 ~inputs1 in
    check (Alcotest.list Alcotest.bool)
      (Printf.sprintf "mask %d" mask)
      plain secure.Garble.outputs
  done

let test_garble_costs () =
  let rng = Prng.of_int 31 in
  let b = Circuit.Builder.create () in
  let x = Circuit.Builder.input b ~party:0 in
  let y = Circuit.Builder.input b ~party:1 in
  let z = Circuit.Builder.input b ~party:1 in
  let w = Circuit.Builder.and_ b (Circuit.Builder.and_ b x y) z in
  let c = Circuit.Builder.build b ~outputs:[ w ] in
  let r =
    Garble.execute ~ot_bits:96 rng c ~inputs0:[ (x, true) ]
      ~inputs1:[ (y, true); (z, false) ]
  in
  check Alcotest.int "and gates" 2 r.Garble.and_gates;
  check Alcotest.int "table bytes" (2 * 4 * 16) r.Garble.table_bytes;
  (* OT only per evaluator input bit, not per AND gate *)
  check Alcotest.int "one OT per evaluator input" 2 r.Garble.ot_count;
  check (Alcotest.list Alcotest.bool) "result" [ false ] r.Garble.outputs

let test_garble_intersection () =
  let rng = Prng.of_int 32 in
  let _, count =
    Garble.intersection_cardinality ~ot_bits:96 ~tag_bits:16 rng
      [ "openssl"; "libc6"; "nginx" ]
      [ "libc6"; "postgres"; "openssl"; "redis" ]
  in
  check Alcotest.int "cardinality" 2 count

let test_garble_cheaper_than_gmw () =
  (* Same circuit: Yao pays OTs only for the evaluator's inputs. *)
  let rng = Prng.of_int 33 in
  let datasets = (List.init 4 (Printf.sprintf "a%d"), List.init 4 (Printf.sprintf "b%d")) in
  let gmw, _ =
    Gmw.intersection_cardinality ~ot_bits:96 ~tag_bits:8 (Prng.copy rng)
      (fst datasets) (snd datasets)
  in
  let yao, _ =
    Garble.intersection_cardinality ~ot_bits:96 ~tag_bits:8 (Prng.copy rng)
      (fst datasets) (snd datasets)
  in
  check Alcotest.bool "far fewer exponentiations" true
    (yao.Garble.ot_exponentiations < gmw.Gmw.ot_exponentiations / 4)

let prop_garble_random_circuits =
  QCheck.Test.make ~name:"Yao matches plain evaluation" ~count:20
    gen_circuit_seedpair (fun (seed, input_mask) ->
      let rng = Prng.of_int seed in
      let b = Circuit.Builder.create () in
      let xs = List.init 3 (fun _ -> Circuit.Builder.input b ~party:0) in
      let ys = List.init 3 (fun _ -> Circuit.Builder.input b ~party:1) in
      let wires = ref (xs @ ys) in
      for _ = 1 to 12 do
        let pick () = List.nth !wires (Prng.int rng (List.length !wires)) in
        let w =
          match Prng.int rng 3 with
          | 0 -> Circuit.Builder.xor b (pick ()) (pick ())
          | 1 -> Circuit.Builder.and_ b (pick ()) (pick ())
          | _ -> Circuit.Builder.not_ b (pick ())
        in
        wires := w :: !wires
      done;
      let c = Circuit.Builder.build b ~outputs:[ List.hd !wires ] in
      let bit i = input_mask lsr i land 1 = 1 in
      let inputs0 = List.mapi (fun i w -> (w, bit i)) xs in
      let inputs1 = List.mapi (fun i w -> (w, bit (i + 3))) ys in
      let plain = Circuit.evaluate c ~inputs:(inputs0 @ inputs1) in
      let secure = Garble.execute ~ot_bits:96 rng c ~inputs0 ~inputs1 in
      plain = secure.Garble.outputs)

let () =
  Alcotest.run "smpc"
    [
      ( "circuit",
        [
          Alcotest.test_case "gate basics" `Quick test_gate_basics;
          Alcotest.test_case "equality" `Quick test_equal_circuit;
          Alcotest.test_case "adder" `Quick test_adder;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "validation" `Quick test_circuit_validation;
          Alcotest.test_case "intersection circuit shape" `Quick
            test_and_count_and_inputs;
        ] );
      ( "ot",
        [
          Alcotest.test_case "1-of-2 correctness" `Quick test_ot2_correctness;
          Alcotest.test_case "1-of-4 correctness" `Quick test_ot4_correctness;
          Alcotest.test_case "accounting" `Quick test_ot_accounting;
        ] );
      ( "gmw",
        [
          Alcotest.test_case "matches plain eval" `Quick test_gmw_matches_plain_eval;
          Alcotest.test_case "missing input" `Quick test_gmw_missing_input;
          Alcotest.test_case "cost accounting" `Quick test_gmw_cost_accounting;
          Alcotest.test_case "intersection cardinality" `Slow test_gmw_intersection;
          qtest prop_gmw_random_circuits;
        ] );
      ( "garble",
        [
          Alcotest.test_case "matches plain eval" `Quick test_garble_matches_plain_eval;
          Alcotest.test_case "cost structure" `Quick test_garble_costs;
          Alcotest.test_case "intersection" `Quick test_garble_intersection;
          Alcotest.test_case "cheaper than GMW" `Quick test_garble_cheaper_than_gmw;
          qtest prop_garble_random_circuits;
        ] );
    ]
